package client

import (
	"fmt"
	"sort"

	"github.com/crrlab/crr/internal/wire"
)

// Batch is a column-oriented request payload. Build one with NewBatch plus
// Float64/String calls (zero-copy into the binary encoder), or from
// name-keyed tuple maps with BatchFromMaps. A Batch is write-once: build
// it, send it, drop it. Builder errors (row-count mismatches, duplicate
// columns) are deferred to the first call that uses the batch, so the
// fluent chain needs no error handling.
type Batch struct {
	names []string
	kinds []wire.Kind
	cols  []wire.Col
	rows  int
	set   bool // rows has been fixed by the first column
	err   error
}

// NewBatch starts an empty batch.
func NewBatch() *Batch { return &Batch{} }

// Rows returns the batch's row count.
func (b *Batch) Rows() int { return b.rows }

// Err returns the first builder error, if any. Calls that send the batch
// return it too, so checking here is optional.
func (b *Batch) Err() error { return b.err }

func (b *Batch) addCol(name string, rows int) bool {
	if b.err != nil {
		return false
	}
	for _, n := range b.names {
		if n == name {
			b.err = fmt.Errorf("client: duplicate column %q", name)
			return false
		}
	}
	if b.set && rows != b.rows {
		b.err = fmt.Errorf("client: column %q has %d rows, batch has %d", name, rows, b.rows)
		return false
	}
	b.rows, b.set = rows, true
	b.names = append(b.names, name)
	return true
}

// nullBitmap converts a []bool mask to the wire bitmap, nil when clean.
func nullBitmap(nulls []bool) []uint64 {
	var bm []uint64
	for r, isNull := range nulls {
		if !isNull {
			continue
		}
		if bm == nil {
			bm = make([]uint64, (len(nulls)+63)/64)
		}
		bm[r>>6] |= 1 << (uint(r) & 63)
	}
	return bm
}

// Float64 adds a numeric column. nulls, when non-nil, must be value-aligned
// and marks missing cells (their lane values are ignored). The values slice
// is adopted, not copied.
func (b *Batch) Float64(name string, values []float64, nulls []bool) *Batch {
	if !b.addCol(name, len(values)) {
		return b
	}
	if nulls != nil && len(nulls) != len(values) {
		b.err = fmt.Errorf("client: column %q has %d null flags for %d values", name, len(nulls), len(values))
		return b
	}
	b.kinds = append(b.kinds, wire.Float64)
	b.cols = append(b.cols, wire.Col{Floats: values, Nulls: nullBitmap(nulls)})
	return b
}

// String adds a categorical column, dictionary-encoding the values. nulls,
// when non-nil, marks missing cells (their string values are ignored).
func (b *Batch) String(name string, values []string, nulls []bool) *Batch {
	if !b.addCol(name, len(values)) {
		return b
	}
	if nulls != nil && len(nulls) != len(values) {
		b.err = fmt.Errorf("client: column %q has %d null flags for %d values", name, len(nulls), len(values))
		return b
	}
	codes := make([]uint32, len(values))
	var dict []string
	lookup := map[string]uint32{}
	for r, s := range values {
		if nulls != nil && nulls[r] {
			codes[r] = wire.NullCode
			continue
		}
		code, ok := lookup[s]
		if !ok {
			code = uint32(len(dict))
			lookup[s] = code
			dict = append(dict, s)
		}
		codes[r] = code
	}
	b.kinds = append(b.kinds, wire.String)
	b.cols = append(b.cols, wire.Col{Codes: codes, Dict: dict, Nulls: nullBitmap(nulls)})
	return b
}

// BatchFromMaps columnarizes name-keyed tuples (the JSON request shape):
// float64 values become numeric columns, strings categorical ones, nil or
// absent values nulls. A key whose value is present in no tuple is dropped —
// an absent column already means all-null on every wire format. Mixed types
// under one key are an error.
func BatchFromMaps(tuples []map[string]any) (*Batch, error) {
	b := NewBatch()
	if len(tuples) == 0 {
		return b, nil
	}
	// Deterministic column order: sorted key union.
	keySet := map[string]bool{}
	for _, t := range tuples {
		for k := range t {
			keySet[k] = true
		}
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	for _, k := range keys {
		var kind wire.Kind
		known := false
		for _, t := range tuples {
			v, ok := t[k]
			if !ok || v == nil {
				continue
			}
			var vk wire.Kind
			switch v.(type) {
			case float64:
				vk = wire.Float64
			case string:
				vk = wire.String
			default:
				return nil, fmt.Errorf("client: key %q has unsupported type %T", k, v)
			}
			if known && vk != kind {
				return nil, fmt.Errorf("client: key %q mixes numeric and string values", k)
			}
			kind, known = vk, true
		}
		if !known {
			continue // all-null: absence already means that
		}
		nulls := make([]bool, len(tuples))
		if kind == wire.Float64 {
			vals := make([]float64, len(tuples))
			for r, t := range tuples {
				if v, ok := t[k]; ok && v != nil {
					vals[r] = v.(float64)
				} else {
					nulls[r] = true
				}
			}
			b.Float64(k, vals, nulls)
		} else {
			vals := make([]string, len(tuples))
			for r, t := range tuples {
				if v, ok := t[k]; ok && v != nil {
					vals[r] = v.(string)
				} else {
					nulls[r] = true
				}
			}
			b.String(k, vals, nulls)
		}
	}
	if b.rows == 0 {
		// Every cell of every tuple was null; preserve the row count so the
		// server sees the batch size (JSON spelling: empty objects).
		b.rows, b.set = len(tuples), true
	}
	return b, b.err
}

// wireBatch views the batch as a wire message with the given options.
func (b *Batch) wireBatch(opts map[string]string) (*wire.Batch, error) {
	if b.err != nil {
		return nil, b.err
	}
	wb := &wire.Batch{
		Schema: wire.Schema{Names: b.names, Kinds: b.kinds},
		Rows:   b.rows,
		Cols:   b.cols,
	}
	if len(opts) > 0 {
		wb.Options = opts
	}
	return wb, nil
}

// maps renders the batch as name-keyed tuples — the JSON fallback encoding.
// Null cells are omitted (absent key == null).
func (b *Batch) maps() []map[string]any {
	out := make([]map[string]any, b.rows)
	for r := range out {
		out[r] = make(map[string]any, len(b.names))
	}
	for c, name := range b.names {
		col := &b.cols[c]
		for r := 0; r < b.rows; r++ {
			if col.IsNull(r) {
				continue
			}
			if b.kinds[c] == wire.Float64 {
				out[r][name] = col.Floats[r]
			} else if code := col.Codes[r]; code != wire.NullCode {
				out[r][name] = col.Dict[code]
			}
		}
	}
	return out
}

// mapsFromWire converts a response batch back to name-keyed tuples, null
// cells as explicit nil values (matching the JSON impute response, which
// renders them as JSON nulls).
func mapsFromWire(wb *wire.Batch) ([]map[string]any, error) {
	out := make([]map[string]any, wb.Rows)
	for r := range out {
		out[r] = make(map[string]any, wb.Schema.Cols())
	}
	for c, name := range wb.Schema.Names {
		col := &wb.Cols[c]
		for r := 0; r < wb.Rows; r++ {
			switch {
			case col.IsNull(r):
				out[r][name] = nil
			case wb.Schema.Kinds[c] == wire.Float64:
				out[r][name] = col.Floats[r]
			default:
				code := col.Codes[r]
				if code == wire.NullCode {
					out[r][name] = nil
				} else if int(code) >= len(col.Dict) {
					return nil, fmt.Errorf("client: response code %d outside dictionary of %d", code, len(col.Dict))
				} else {
					out[r][name] = col.Dict[code]
				}
			}
		}
	}
	return out, nil
}
