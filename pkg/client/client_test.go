package client

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
	"github.com/crrlab/crr/internal/serve"
)

// The SDK's contract: every format choice (binary, JSON, auto) yields
// bitwise-identical answers, equal to the in-process classifier.

func taxSetup(t testing.TB) (*dataset.Relation, *core.RuleSet, *httptest.Server) {
	t.Helper()
	rel := dataset.GenerateTax(dataset.TaxConfig{Rows: 800, Noise: 0.5, Seed: 4})
	state := rel.Schema.MustIndex("State")
	preds := predicate.Generate(rel, []int{state}, predicate.GeneratorConfig{})
	res, err := core.Discover(context.Background(), rel, core.WithConfig(core.DiscoverConfig{
		XAttrs:  []int{rel.Schema.MustIndex("Salary")},
		YAttr:   rel.Schema.MustIndex("Tax"),
		RhoM:    60,
		Preds:   preds,
		Trainer: regress.LinearTrainer{},
	}))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewFromRuleSet(serve.Config{}, res.Rules, "test")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return rel, res.Rules, ts
}

// relationBatch builds a client Batch from the relation's columns.
func relationBatch(t testing.TB, rel *dataset.Relation, n int) *Batch {
	t.Helper()
	b := NewBatch()
	for a := 0; a < rel.Schema.Len(); a++ {
		attr := rel.Schema.Attr(a)
		nulls := make([]bool, n)
		if attr.Kind == dataset.Numeric {
			vals := make([]float64, n)
			for r := 0; r < n; r++ {
				vals[r] = rel.Tuples[r][a].Num
				nulls[r] = rel.Tuples[r][a].Null
			}
			b.Float64(attr.Name, vals, nulls)
		} else {
			vals := make([]string, n)
			for r := 0; r < n; r++ {
				vals[r] = rel.Tuples[r][a].Str
				nulls[r] = rel.Tuples[r][a].Null
			}
			b.String(attr.Name, vals, nulls)
		}
	}
	if b.Err() != nil {
		t.Fatal(b.Err())
	}
	return b
}

// TestPredictAllFormats: binary, JSON and auto-negotiated predictions are
// bitwise-identical to in-process PredictViewExplained.
func TestPredictAllFormats(t *testing.T) {
	rel, rules, ts := taxSetup(t)
	n := 200
	wantP, wantC, wantIDs := rules.PredictViewExplained(
		dataset.NewColumnSet(&dataset.Relation{Schema: rel.Schema, Tuples: rel.Tuples[:n]}).View())

	for _, f := range []Format{FormatBinary, FormatJSON, FormatAuto} {
		c := New(ts.URL, WithFormat(f))
		res, err := c.Predict(context.Background(), relationBatch(t, rel, n), WithExplain())
		if err != nil {
			t.Fatalf("format %d: %v", f, err)
		}
		if len(res.Values) != n {
			t.Fatalf("format %d: %d values, want %d", f, len(res.Values), n)
		}
		for i := range wantP {
			if math.Float64bits(res.Values[i]) != math.Float64bits(wantP[i]) ||
				res.Covered[i] != wantC[i] || res.RuleIDs[i] != wantIDs[i] {
				t.Fatalf("format %d tuple %d: (%v,%v,%d), want (%v,%v,%d)",
					f, i, res.Values[i], res.Covered[i], res.RuleIDs[i], wantP[i], wantC[i], wantIDs[i])
			}
		}
	}
}

// TestCheckAndImpute: the two remaining data-plane calls answer identically
// under both formats.
func TestCheckAndImpute(t *testing.T) {
	rel, _, ts := taxSetup(t)
	n := 100
	ytax := rel.Schema.MustIndex("Tax")

	// Shift some targets to force violations, null others for imputation.
	vals := make([]float64, n)
	nulls := make([]bool, n)
	for r := 0; r < n; r++ {
		vals[r] = rel.Tuples[r][ytax].Num
		if r%4 == 0 {
			vals[r] += 500
		}
		if r%5 == 1 {
			nulls[r] = true
		}
	}
	build := func() *Batch {
		b := NewBatch()
		for a := 0; a < rel.Schema.Len(); a++ {
			attr := rel.Schema.Attr(a)
			if a == ytax {
				b.Float64(attr.Name, vals, nulls)
				continue
			}
			if attr.Kind == dataset.Numeric {
				col := make([]float64, n)
				for r := 0; r < n; r++ {
					col[r] = rel.Tuples[r][a].Num
				}
				b.Float64(attr.Name, col, nil)
			} else {
				col := make([]string, n)
				for r := 0; r < n; r++ {
					col[r] = rel.Tuples[r][a].Str
				}
				b.String(attr.Name, col, nil)
			}
		}
		return b
	}

	bin := New(ts.URL, WithFormat(FormatBinary))
	js := New(ts.URL, WithFormat(FormatJSON))

	bc, err := bin.Check(context.Background(), build())
	if err != nil {
		t.Fatal(err)
	}
	jc, err := js.Check(context.Background(), build())
	if err != nil {
		t.Fatal(err)
	}
	if bc.Checked != jc.Checked || len(bc.Violations) != len(jc.Violations) {
		t.Fatalf("check: binary %d/%d, json %d/%d", bc.Checked, len(bc.Violations), jc.Checked, len(jc.Violations))
	}
	if len(bc.Violations) == 0 {
		t.Fatal("no violations; check parity vacuous")
	}
	for i := range bc.Violations {
		bv, jv := bc.Violations[i], jc.Violations[i]
		if bv.Tuple != jv.Tuple || bv.Rule != jv.Rule ||
			math.Float64bits(bv.Observed) != math.Float64bits(jv.Observed) {
			t.Fatalf("violation %d: binary %+v, json %+v", i, bv, jv)
		}
	}

	bi, err := bin.Impute(context.Background(), build(), WithFallback())
	if err != nil {
		t.Fatal(err)
	}
	ji, err := js.Impute(context.Background(), build(), WithFallback())
	if err != nil {
		t.Fatal(err)
	}
	if bi.Imputed != ji.Imputed || bi.Failed != ji.Failed || bi.Column != ji.Column {
		t.Fatalf("impute: binary %s/%d/%d, json %s/%d/%d",
			bi.Column, bi.Imputed, bi.Failed, ji.Column, ji.Imputed, ji.Failed)
	}
	if bi.Imputed == 0 {
		t.Fatal("nothing imputed; parity vacuous")
	}
	for i := range bi.Tuples {
		bb, _ := json.Marshal(bi.Tuples[i])
		jb, _ := json.Marshal(ji.Tuples[i])
		if string(bb) != string(jb) {
			t.Fatalf("tuple %d: binary %s, json %s", i, bb, jb)
		}
	}
}

// TestAutoFallback: against a server that rejects the binary content type
// with 415, FormatAuto retries as JSON, pins it, and succeeds.
func TestAutoFallback(t *testing.T) {
	rel, _, ts := taxSetup(t)

	var binaryAttempts int
	legacy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Content-Type") != "application/json" && r.Header.Get("Content-Type") != "" {
			binaryAttempts++
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusUnsupportedMediaType)
			w.Write([]byte(`{"error":{"code":"unsupported_media_type","message":"json only"}}`))
			return
		}
		proxyTo(w, r, ts.URL)
	}))
	defer legacy.Close()

	c := New(legacy.URL)
	for call := 0; call < 3; call++ {
		res, err := c.Predict(context.Background(), relationBatch(t, rel, 10))
		if err != nil {
			t.Fatalf("call %d: %v", call, err)
		}
		if len(res.Values) != 10 {
			t.Fatalf("call %d: %d values", call, len(res.Values))
		}
	}
	if binaryAttempts != 1 {
		t.Fatalf("binary attempted %d times, want 1 (then pinned to JSON)", binaryAttempts)
	}
}

// proxyTo forwards one request to the real server.
func proxyTo(w http.ResponseWriter, r *http.Request, target string) {
	req, err := http.NewRequest(r.Method, target+r.URL.Path+"?"+r.URL.RawQuery, r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			w.Write(buf[:n])
		}
		if err != nil {
			return
		}
	}
}

// TestRulesReloadHealth: control-plane calls parse and API errors carry the
// stable code.
func TestRulesReloadHealth(t *testing.T) {
	_, rules, ts := taxSetup(t)
	c := New(ts.URL)

	info, err := c.Rules(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Rules != rules.NumRules() || info.Y == "" {
		t.Fatalf("rules info = %+v", info)
	}
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	// A no-path server cannot reload from disk: expect the coded error.
	_, err = c.Reload(context.Background(), nil)
	var aerr *APIError
	if err == nil || !asAPIError(err, &aerr) {
		t.Fatalf("reload error = %v, want *APIError", err)
	}
	if aerr.Code == "" {
		t.Fatalf("reload error carries no code: %+v", aerr)
	}
}

func asAPIError(err error, target **APIError) bool {
	e, ok := err.(*APIError)
	if ok {
		*target = e
	}
	return ok
}

// TestBatchFromMaps: the map form columnarizes to the same answers as the
// typed builder.
func TestBatchFromMaps(t *testing.T) {
	rel, rules, ts := taxSetup(t)
	n := 50
	maps := make([]map[string]any, n)
	for r := 0; r < n; r++ {
		m := map[string]any{}
		for a := 0; a < rel.Schema.Len(); a++ {
			v := rel.Tuples[r][a]
			if v.Null {
				continue
			}
			if rel.Schema.Attr(a).Kind == dataset.Numeric {
				m[rel.Schema.Attr(a).Name] = v.Num
			} else {
				m[rel.Schema.Attr(a).Name] = v.Str
			}
		}
		maps[r] = m
	}
	b, err := BatchFromMaps(maps)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rows() != n {
		t.Fatalf("rows = %d, want %d", b.Rows(), n)
	}
	c := New(ts.URL, WithFormat(FormatBinary))
	res, err := c.Predict(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	wantP, wantC := rules.PredictView(
		dataset.NewColumnSet(&dataset.Relation{Schema: rel.Schema, Tuples: rel.Tuples[:n]}).View())
	for i := range wantP {
		if math.Float64bits(res.Values[i]) != math.Float64bits(wantP[i]) || res.Covered[i] != wantC[i] {
			t.Fatalf("tuple %d: (%v,%v), want (%v,%v)", i, res.Values[i], res.Covered[i], wantP[i], wantC[i])
		}
	}
}

// TestBatchBuilderErrors: mismatched rows and duplicate columns surface at
// call time with a useful message.
func TestBatchBuilderErrors(t *testing.T) {
	b := NewBatch().Float64("x", []float64{1, 2}, nil).Float64("x", []float64{3, 4}, nil)
	if b.Err() == nil {
		t.Fatal("duplicate column accepted")
	}
	b = NewBatch().Float64("x", []float64{1, 2}, nil).String("s", []string{"a"}, nil)
	if b.Err() == nil {
		t.Fatal("row mismatch accepted")
	}
	c := New("http://127.0.0.1:1")
	if _, err := c.Predict(context.Background(), b); err == nil {
		t.Fatal("predict on a broken batch succeeded")
	}
}
