package client

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/crrlab/crr/internal/cluster"
)

// Cluster-aware client features: tenant addressing and optional client-side
// shard-map routing.
//
// WithTenant stamps every request with the X-CRR-Tenant header, so the same
// SDK surface works against a single-tenant crrserve, a multi-tenant node,
// or a crrrouter front door.
//
// WithShardMap turns on direct routing: the client treats its base URL as a
// crrrouter, fetches GET /v1/shardmap (ETag-cached, refreshed every ttl),
// and sends data-plane calls straight to the node that owns its tenant —
// skipping the router hop on the hot path. Any transport failure on the
// direct path invalidates the cached map and retries once through the
// router, which still owns failover, quotas and liveness.

// TenantHeader addresses a tenant on every crr serving endpoint.
const TenantHeader = "X-CRR-Tenant"

// defaultTenant mirrors the server-side default-tenant key.
const defaultTenant = "default"

// WithTenant pins the tenant every call addresses. An empty name means the
// server's default tenant.
func WithTenant(name string) Option { return func(c *Client) { c.tenant = name } }

// WithShardMap enables client-side shard-map routing against a crrrouter
// base URL, re-fetching the map when it is older than ttl (≤ 0 means 30s).
func WithShardMap(ttl time.Duration) Option {
	return func(c *Client) {
		if ttl <= 0 {
			ttl = 30 * time.Second
		}
		c.shard = &shardCache{ttl: ttl}
	}
}

// shardCache is the ETag-cached cluster view behind WithShardMap.
type shardCache struct {
	ttl time.Duration

	mu      sync.Mutex
	m       *cluster.ShardMap
	etag    string
	fetched time.Time
}

// invalidate drops the cached map so the next call re-fetches.
func (s *shardCache) invalidate() {
	s.mu.Lock()
	s.m = nil
	s.etag = ""
	s.mu.Unlock()
}

// routeBase resolves the base URL for one data-plane call: the owning
// node's URL when shard-map routing is on and the map is available, the
// client's own base (the router) otherwise. direct reports whether the
// first return is a node rather than the router.
func (c *Client) routeBase(ctx context.Context) (base string, direct bool) {
	if c.shard == nil {
		return c.base, false
	}
	m := c.shard.current(ctx, c)
	if m == nil {
		return c.base, false
	}
	tenant := c.tenant
	if tenant == "" {
		tenant = defaultTenant
	}
	cands := m.Route(tenant)
	if len(cands) == 0 {
		return c.base, false
	}
	return cands[0].URL, true
}

// current returns a fresh-enough shard map, re-fetching (with If-None-Match)
// when the TTL has lapsed. Fetch failures leave the stale map in place when
// one exists — a stale ring beats no ring — and return nil otherwise.
func (s *shardCache) current(ctx context.Context, c *Client) *cluster.ShardMap {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m != nil && time.Since(s.fetched) < s.ttl {
		return s.m
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/shardmap", nil)
	if err != nil {
		return s.m
	}
	if s.etag != "" {
		req.Header.Set("If-None-Match", s.etag)
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return s.m
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		s.fetched = time.Now()
		return s.m
	case http.StatusOK:
		var m cluster.ShardMap
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			return s.m
		}
		s.m = &m
		s.etag = resp.Header.Get("ETag")
		s.fetched = time.Now()
		return s.m
	default:
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return s.m
	}
}
