// Package client is the public Go SDK for a crrserve rule-serving instance.
// It speaks both wire formats of the /v1 data plane — JSON and the binary
// columnar protocol — and negotiates between them automatically: the first
// data-plane call tries the binary format and pins it on success, falling
// back to JSON if the server answers 415 (an older deployment). Batches
// upload as streams, so a large Predict never buffers its full binary
// encoding in memory.
//
//	c := client.New("http://localhost:8080")
//	b := client.NewBatch().
//		Float64("Salary", salaries, nil).
//		String("State", states, nil)
//	res, err := c.Predict(ctx, b, client.WithExplain())
//
// Per-call deadlines come from the context; New's WithTimeout option sets a
// default applied when the context has none.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"github.com/crrlab/crr/internal/wire"
)

// Format selects the data-plane wire format.
type Format int32

const (
	// FormatAuto tries the binary protocol first and falls back to JSON if
	// the server does not support it. The outcome is pinned per client.
	FormatAuto Format = iota
	// FormatJSON forces the JSON tuple encoding.
	FormatJSON
	// FormatBinary forces the binary columnar encoding; servers without it
	// fail with an *APIError rather than silently degrading.
	FormatBinary
)

// Client talks to one crrserve (or crrrouter) base URL. It is safe for
// concurrent use.
type Client struct {
	base    string
	httpc   *http.Client
	timeout time.Duration
	// format is the pinned negotiation outcome: starts at the configured
	// Format; FormatAuto flips to FormatJSON on the first 415.
	format atomic.Int32
	auto   bool
	// tenant, when non-empty, is stamped on every request (WithTenant).
	tenant string
	// shard, when non-nil, routes data-plane calls straight to the owning
	// node via the router's shard map (WithShardMap).
	shard *shardCache
}

// Option configures New.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (custom transport,
// TLS, proxies). The default is a dedicated client with sane timeouts.
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.httpc = h } }

// WithFormat pins the wire format instead of negotiating.
func WithFormat(f Format) Option {
	return func(c *Client) {
		c.format.Store(int32(f))
		c.auto = f == FormatAuto
	}
}

// WithTimeout sets the default per-call deadline applied when the caller's
// context has none. Zero means no default deadline.
func WithTimeout(d time.Duration) Option { return func(c *Client) { c.timeout = d } }

// New builds a client for the crrserve instance at base, e.g.
// "http://localhost:8080".
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:  strings.TrimRight(base, "/"),
		httpc: &http.Client{Timeout: 5 * time.Minute},
		auto:  true,
	}
	c.format.Store(int32(FormatAuto))
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a structured error answer from the server: the HTTP status
// plus the stable machine-readable code and human message of the error
// envelope (docs/API.md).
type APIError struct {
	Status  int
	Code    string
	Message string
}

func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("server: %s (%s, HTTP %d)", e.Message, e.Code, e.Status)
	}
	return fmt.Sprintf("server: HTTP %d: %s", e.Status, e.Message)
}

// parseAPIError maps a non-2xx response to *APIError. Error bodies are
// always the JSON envelope, whatever format was negotiated.
func parseAPIError(status int, body []byte) *APIError {
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Message != "" {
		return &APIError{Status: status, Code: env.Error.Code, Message: env.Error.Message}
	}
	msg := strings.TrimSpace(string(body))
	if len(msg) > 512 {
		msg = msg[:512]
	}
	return &APIError{Status: status, Message: msg}
}

// Predictions is the Predict answer: one value and coverage flag per input
// row. RuleIDs is non-nil iff the call asked for explain metadata; -1 marks
// a row answered by the fallback.
type Predictions struct {
	Y       string
	Values  []float64
	Covered []bool
	RuleIDs []int
}

// Violation is one integrity-constraint breach reported by Check.
type Violation struct {
	Tuple     int
	Rule      int
	Observed  float64
	Predicted float64
	Excess    float64
	// Repair, when present, is the prediction that would satisfy the rule.
	Repair *float64
}

// CheckReport is the Check answer.
type CheckReport struct {
	Checked    int
	Violations []Violation
}

// ImputeReport is the Impute answer: fill statistics plus the completed
// tuples in the same name-keyed form BatchFromMaps accepts.
type ImputeReport struct {
	Column  string
	Imputed int
	Failed  int
	Tuples  []map[string]any
}

// RuleSetInfo summarizes the served rule set (the /v1/rules answer).
type RuleSetInfo struct {
	Source       string    `json:"source"`
	LoadedAt     time.Time `json:"loaded_at"`
	X            []string  `json:"x"`
	Y            string    `json:"y"`
	CondAttrs    []string  `json:"cond_attrs"`
	Rules        int       `json:"rules"`
	Models       int       `json:"models"`
	Conjunctions int       `json:"conjunctions"`
	MinRho       float64   `json:"min_rho"`
	MaxRho       float64   `json:"max_rho"`
	Fallback     float64   `json:"fallback"`
	Formatted    []string  `json:"formatted"`
}

// ReloadInfo summarizes a successful Reload.
type ReloadInfo struct {
	Rules    int       `json:"rules"`
	Source   string    `json:"source"`
	LoadedAt time.Time `json:"loaded_at"`
}

// PredictOption configures Predict.
type PredictOption func(*predictOpts)

type predictOpts struct{ explain bool }

// WithExplain asks for per-row rule IDs alongside the predictions.
func WithExplain() PredictOption { return func(o *predictOpts) { o.explain = true } }

// ImputeOption configures Impute.
type ImputeOption func(*imputeOpts)

type imputeOpts struct {
	column      string
	useFallback bool
}

// WithColumn overrides the imputation target column (default: the rule
// set's regression target).
func WithColumn(name string) ImputeOption { return func(o *imputeOpts) { o.column = name } }

// WithFallback fills uncovered rows with the training-mean fallback instead
// of leaving them null.
func WithFallback() ImputeOption { return func(o *imputeOpts) { o.useFallback = true } }

// Predict classifies every row of b.
func (c *Client) Predict(ctx context.Context, b *Batch, opts ...PredictOption) (*Predictions, error) {
	var po predictOpts
	for _, o := range opts {
		o(&po)
	}
	path := "/v1/predict"
	if po.explain {
		path += "?explain=1"
	}
	var out *Predictions
	err := c.dataPlane(ctx, path, b, nil,
		func(body io.Reader) error {
			p, err := wire.DecodePredictions(body, wire.DecodeLimits{})
			if err != nil {
				return err
			}
			out = &Predictions{Y: p.Y, Values: p.Values, Covered: p.Covered, RuleIDs: p.RuleIDs}
			return nil
		},
		func(body io.Reader) error {
			var resp struct {
				Y           string `json:"y"`
				Predictions []struct {
					Value   float64 `json:"value"`
					Covered bool    `json:"covered"`
					Rule    *int    `json:"rule"`
				} `json:"predictions"`
			}
			if err := json.NewDecoder(body).Decode(&resp); err != nil {
				return err
			}
			out = &Predictions{
				Y:       resp.Y,
				Values:  make([]float64, len(resp.Predictions)),
				Covered: make([]bool, len(resp.Predictions)),
			}
			if po.explain {
				out.RuleIDs = make([]int, len(resp.Predictions))
			}
			for i, p := range resp.Predictions {
				out.Values[i] = p.Value
				out.Covered[i] = p.Covered
				if po.explain {
					out.RuleIDs[i] = -1
					if p.Rule != nil {
						out.RuleIDs[i] = *p.Rule
					}
				}
			}
			return nil
		})
	return out, err
}

// Check reports the rows of b that violate the served rule set.
func (c *Client) Check(ctx context.Context, b *Batch) (*CheckReport, error) {
	var out *CheckReport
	err := c.dataPlane(ctx, "/v1/check", b, nil,
		func(body io.Reader) error {
			rep, err := wire.DecodeCheck(body, wire.DecodeLimits{})
			if err != nil {
				return err
			}
			out = &CheckReport{Checked: rep.Checked, Violations: make([]Violation, len(rep.Violations))}
			for i, v := range rep.Violations {
				out.Violations[i] = Violation{
					Tuple: v.Tuple, Rule: v.Rule,
					Observed: v.Observed, Predicted: v.Predicted, Excess: v.Excess,
					Repair: v.Repair,
				}
			}
			return nil
		},
		func(body io.Reader) error {
			var resp struct {
				Checked    int         `json:"checked"`
				Violations []Violation `json:"violations"`
			}
			if err := json.NewDecoder(body).Decode(&resp); err != nil {
				return err
			}
			out = &CheckReport{Checked: resp.Checked, Violations: resp.Violations}
			return nil
		})
	return out, err
}

// Impute fills null cells of the target column in b from the served rules
// and returns the completed tuples.
func (c *Client) Impute(ctx context.Context, b *Batch, opts ...ImputeOption) (*ImputeReport, error) {
	var io_ imputeOpts
	for _, o := range opts {
		o(&io_)
	}
	wopts := map[string]string{}
	if io_.column != "" {
		wopts[wire.OptColumn] = io_.column
	}
	if io_.useFallback {
		wopts[wire.OptFallback] = "1"
	}
	var out *ImputeReport
	err := c.dataPlane(ctx, "/v1/impute", b, wopts,
		func(body io.Reader) error {
			rep, err := wire.DecodeImpute(body, wire.DecodeLimits{})
			if err != nil {
				return err
			}
			tuples, err := mapsFromWire(rep.Batch)
			if err != nil {
				return err
			}
			out = &ImputeReport{Column: rep.Column, Imputed: rep.Imputed, Failed: rep.Failed, Tuples: tuples}
			return nil
		},
		func(body io.Reader) error {
			var resp struct {
				Column  string           `json:"column"`
				Imputed int              `json:"imputed"`
				Failed  int              `json:"failed"`
				Tuples  []map[string]any `json:"tuples"`
			}
			if err := json.NewDecoder(body).Decode(&resp); err != nil {
				return err
			}
			out = &ImputeReport{Column: resp.Column, Imputed: resp.Imputed, Failed: resp.Failed, Tuples: resp.Tuples}
			return nil
		})
	return out, err
}

// Rules fetches the served rule-set summary.
func (c *Client) Rules(ctx context.Context) (*RuleSetInfo, error) {
	var info RuleSetInfo
	if err := c.getJSON(ctx, "/v1/rules", &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Health probes /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.getJSON(ctx, "/healthz", &struct{}{})
}

// Reload asks the server to re-read its artifact (artifact == nil) or to
// swap in the artifact streamed from artifact.
func (c *Client) Reload(ctx context.Context, artifact io.Reader) (*ReloadInfo, error) {
	ctx, cancel := c.withDeadline(ctx)
	defer cancel()
	if artifact == nil {
		artifact = bytes.NewReader(nil)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/reload", artifact)
	if err != nil {
		return nil, err
	}
	c.setTenant(req)
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, parseAPIError(resp.StatusCode, body)
	}
	var info ReloadInfo
	if err := json.Unmarshal(body, &info); err != nil {
		return nil, fmt.Errorf("parse reload response: %w", err)
	}
	return &info, nil
}

func (c *Client) withDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, ok := ctx.Deadline(); !ok && c.timeout > 0 {
		return context.WithTimeout(ctx, c.timeout)
	}
	return ctx, func() {}
}

// setTenant stamps the pinned tenant (WithTenant) on a request.
func (c *Client) setTenant(req *http.Request) {
	if c.tenant != "" {
		req.Header.Set(TenantHeader, c.tenant)
	}
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	ctx, cancel := c.withDeadline(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	c.setTenant(req)
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return parseAPIError(resp.StatusCode, body)
	}
	return json.Unmarshal(body, out)
}

// dataPlane runs one negotiated POST: binary first when the pinned format
// allows it (streaming the request through a pipe), JSON otherwise or as
// the 415 fallback. decodeBinary/decodeJSON parse the success body of the
// respective response format. With shard-map routing on, the call goes
// straight to the owning node; a transport failure there invalidates the
// cached map and retries once through the router.
func (c *Client) dataPlane(ctx context.Context, path string, b *Batch, wopts map[string]string,
	decodeBinary, decodeJSON func(io.Reader) error) error {
	if b == nil {
		return fmt.Errorf("client: nil batch")
	}
	if b.err != nil {
		return b.err
	}
	ctx, cancel := c.withDeadline(ctx)
	defer cancel()

	base, direct := c.routeBase(ctx)
	err := c.dataPlaneAt(ctx, base, path, b, wopts, decodeBinary, decodeJSON)
	if err != nil && direct && ctx.Err() == nil {
		var aerr *APIError
		if !errors.As(err, &aerr) {
			// The node never answered. Drop the stale map and let the
			// router — which tracks liveness — place the request.
			c.shard.invalidate()
			return c.dataPlaneAt(ctx, c.base, path, b, wopts, decodeBinary, decodeJSON)
		}
	}
	return err
}

func (c *Client) dataPlaneAt(ctx context.Context, base, path string, b *Batch, wopts map[string]string,
	decodeBinary, decodeJSON func(io.Reader) error) error {
	if Format(c.format.Load()) != FormatJSON {
		err := c.postBinary(ctx, base, path, b, wopts, decodeBinary)
		var aerr *APIError
		if c.auto && errors.As(err, &aerr) && aerr.Status == http.StatusUnsupportedMediaType {
			// Older server without the binary codec: pin JSON and retry.
			c.format.Store(int32(FormatJSON))
		} else {
			return err
		}
	}
	return c.postJSON(ctx, base, path, b, wopts, decodeJSON)
}

// postBinary streams the batch's wire encoding through a pipe — the request
// body is produced frame by frame while the transport sends it, so memory
// stays bounded by the frame chunk, not the batch.
func (c *Client) postBinary(ctx context.Context, base, path string, b *Batch, wopts map[string]string,
	decode func(io.Reader) error) error {
	wb, err := b.wireBatch(wopts)
	if err != nil {
		return err
	}
	pr, pw := io.Pipe()
	go func() {
		pw.CloseWithError(wire.EncodeBatch(pw, wb, wire.EncodeOptions{}))
	}()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, pr)
	if err != nil {
		pr.Close()
		return err
	}
	req.Header.Set("Content-Type", wire.ContentType)
	req.Header.Set("Accept", wire.ContentType)
	c.setTenant(req)
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
		return parseAPIError(resp.StatusCode, body)
	}
	return decode(resp.Body)
}

func (c *Client) postJSON(ctx context.Context, base, path string, b *Batch, wopts map[string]string,
	decode func(io.Reader) error) error {
	env := map[string]any{"tuples": b.maps()}
	if col := wopts[wire.OptColumn]; col != "" {
		env["column"] = col
	}
	if wopts[wire.OptFallback] == "1" {
		env["use_fallback"] = true
	}
	body, err := json.Marshal(env)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	c.setTenant(req)
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		out, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
		return parseAPIError(resp.StatusCode, out)
	}
	return decode(resp.Body)
}
