package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	"github.com/crrlab/crr/internal/cluster"
	"github.com/crrlab/crr/internal/serve"
)

// TestWithTenant: the tenant header reaches the server on every call class
// — data plane, rules, reload — and addresses the right artifact.
func TestWithTenant(t *testing.T) {
	rel, rules, _ := taxSetup(t)
	srv, err := serve.NewFromRuleSet(serve.Config{}, rules, "test-default")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.InstallTenant("acme", rules, "test-acme"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := New(ts.URL, WithTenant("acme"))
	info, err := c.Rules(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Source != "test-acme" {
		t.Fatalf("rules source %q, want the acme artifact", info.Source)
	}
	if _, err := c.Predict(context.Background(), relationBatch(t, rel, 10)); err != nil {
		t.Fatal(err)
	}

	// An unpinned client sees the default artifact.
	info, err = New(ts.URL).Rules(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Source != "test-default" {
		t.Fatalf("default rules source %q", info.Source)
	}

	// Unknown tenant surfaces the stable code.
	_, err = New(ts.URL, WithTenant("ghost")).Predict(context.Background(), relationBatch(t, rel, 1))
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.Code != "unknown_tenant" {
		t.Fatalf("ghost tenant error %v", err)
	}
}

// shardFixture builds one serve node, and a fake "router" that serves a
// shard map pointing at the node plus a counting reverse proxy for
// fall-through traffic.
type shardFixture struct {
	node       *httptest.Server
	router     *httptest.Server
	nodeHits   atomic.Int64
	routerHits atomic.Int64
	mapVersion atomic.Uint64
}

func newShardFixture(t *testing.T, srv *serve.Server) *shardFixture {
	t.Helper()
	f := &shardFixture{}
	f.mapVersion.Store(1)
	inner := srv.Handler()
	f.node = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.nodeHits.Add(1)
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(f.node.Close)

	nodeURL, _ := url.Parse(f.node.URL)
	proxy := httputil.NewSingleHostReverseProxy(nodeURL)
	f.router = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/shardmap" {
			m := cluster.ShardMap{
				Version:  f.mapVersion.Load(),
				VNodes:   cluster.DefaultVNodes,
				Replicas: 1,
				Nodes:    []cluster.NodeInfo{{Name: "n1", URL: f.node.URL, State: cluster.NodeUp}},
			}
			w.Header().Set("ETag", m.ETag())
			if r.Header.Get("If-None-Match") == m.ETag() {
				w.WriteHeader(http.StatusNotModified)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(mustJSON(t, m))
			return
		}
		f.routerHits.Add(1)
		proxy.ServeHTTP(w, r)
	}))
	t.Cleanup(f.router.Close)
	return f
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestShardMapDirectRouting: with WithShardMap the data plane goes straight
// to the owning node, not through the router.
func TestShardMapDirectRouting(t *testing.T) {
	rel, rules, _ := taxSetup(t)
	srv, err := serve.NewFromRuleSet(serve.Config{}, rules, "test")
	if err != nil {
		t.Fatal(err)
	}
	f := newShardFixture(t, srv)

	c := New(f.router.URL, WithShardMap(time.Minute))
	for i := 0; i < 3; i++ {
		if _, err := c.Predict(context.Background(), relationBatch(t, rel, 5)); err != nil {
			t.Fatal(err)
		}
	}
	if f.nodeHits.Load() == 0 {
		t.Fatal("no direct node traffic with shard-map routing on")
	}
	if f.routerHits.Load() != 0 {
		t.Fatalf("%d requests still went through the router", f.routerHits.Load())
	}
}

// TestShardMapFallbackToRouter: when the direct node path fails at the
// transport level, the call retries once through the router and succeeds.
func TestShardMapFallbackToRouter(t *testing.T) {
	rel, rules, _ := taxSetup(t)
	srv, err := serve.NewFromRuleSet(serve.Config{}, rules, "test")
	if err != nil {
		t.Fatal(err)
	}
	// The shard map names a dead node; the router proxy still works.
	f := newShardFixture(t, srv)
	liveNode := f.node.URL
	f.node.Close() // direct path now refuses connections

	// Rebuild the router to proxy to a fresh live server (the map still
	// advertises the dead URL).
	srv2, err := serve.NewFromRuleSet(serve.Config{}, rules, "test")
	if err != nil {
		t.Fatal(err)
	}
	live := httptest.NewServer(srv2.Handler())
	defer live.Close()
	liveURL, _ := url.Parse(live.URL)
	proxy := httputil.NewSingleHostReverseProxy(liveURL)
	router := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/shardmap" {
			m := cluster.ShardMap{
				Version: 1, VNodes: cluster.DefaultVNodes, Replicas: 1,
				Nodes: []cluster.NodeInfo{{Name: "n1", URL: liveNode, State: cluster.NodeUp}},
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(mustJSON(t, m))
			return
		}
		proxy.ServeHTTP(w, r)
	}))
	defer router.Close()

	c := New(router.URL, WithShardMap(time.Minute))
	res, err := c.Predict(context.Background(), relationBatch(t, rel, 5))
	if err != nil {
		t.Fatalf("fallback to router failed: %v", err)
	}
	if len(res.Values) != 5 {
		t.Fatalf("got %d predictions", len(res.Values))
	}
}
