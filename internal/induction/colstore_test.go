package induction_test

import (
	"context"
	"errors"
	"testing"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/experiments"
	"github.com/crrlab/crr/internal/induction"
	"github.com/crrlab/crr/internal/regress"
)

// TestGrowPruneOverColumns: the grow/prune strategy runs entirely on the
// substrate kernels, so it must work — and agree bitwise with the
// relation-backed run — when discovery is column-store-backed.
func TestGrowPruneOverColumns(t *testing.T) {
	spec := experiments.TaxSpec()
	rel := spec.Gen(300)
	cfg := specConfig(spec, rel)
	cfg.Strategy = induction.GrowPrune{}
	relRes, err := core.Discover(context.Background(), rel, core.WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	colRes, err := core.DiscoverColumns(context.Background(), dataset.NewColumnSet(rel), core.WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if !experiments.SameRules(relRes.Rules, colRes.Rules, 0) {
		t.Fatal("growprune output diverged between relation- and column-backed runs")
	}
}

// TestStabilityRequiresTuples: bootstrap resampling needs tuples, so the
// stability strategy must fail a column-backed run with ErrTuplesRequired —
// a diagnostic, not a panic.
func TestStabilityRequiresTuples(t *testing.T) {
	spec := experiments.TaxSpec()
	rel := spec.Gen(100)
	cfg := specConfig(spec, rel)
	cfg.Strategy = induction.Stability{B: 2}
	cfg.Trainer = regress.LinearTrainer{}
	_, err := core.DiscoverColumns(context.Background(), dataset.NewColumnSet(rel), core.WithConfig(cfg))
	if !errors.Is(err, core.ErrTuplesRequired) {
		t.Fatalf("stability over columns: err = %v, want ErrTuplesRequired", err)
	}
}
