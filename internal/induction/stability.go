package induction

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/telemetry"
)

// Stability is bootstrap stability selection over a base strategy (pycre's
// stability_selection, and the consistency line of Margot et al.): the
// relation is honest-split into a discovery half and an inference half; the
// base strategy runs on B bootstrap replicates of the discovery half; and
// only conditions whose normalized conjunction recurs in at least ⌈τ·B⌉
// replicates survive. Survivors are refit on the inference half — data the
// condition was never selected on, so the coefficients are honest — and
// published with ρ equal to the model's actual maximum residual over the
// condition's full selection on the input relation.
//
// Unlike the lattice walk and GrowPrune, Stability does not guarantee
// coverage: rows matched by no recurring condition fall through to the
// rule-set fallback. That is the point — it trades coverage for rules that
// are reproducible under resampling. Deterministic for a fixed Seed (the
// replicates force the sequential engine).
type Stability struct {
	// Base is the strategy run on each replicate; nil means the lattice.
	Base core.Strategy
	// B is the number of bootstrap replicates; 0 means 8.
	B int
	// Tau is the survival threshold fraction: a conjunction must recur in at
	// least ⌈τ·B⌉ replicates. 0 means 0.35.
	Tau float64
}

// Name implements core.Strategy.
func (Stability) Name() string { return "stability" }

// Induce implements core.Strategy.
func (s Stability) Induce(ctx context.Context, sub *core.Substrate) (*core.DiscoverResult, error) {
	cfg := sub.Config()
	out := sub.NewResult()
	all := sub.TrainableRows()
	rel := sub.Relation()
	if len(all) == 0 {
		return out, nil
	}
	if rel == nil {
		// Bootstrap replicates resample tuples into fresh relations; a
		// column-store-backed run has none to resample.
		return nil, fmt.Errorf("induction: stability: %w", core.ErrTuplesRequired)
	}
	b := s.B
	if b <= 0 {
		b = 8
	}
	tau := s.Tau
	if tau <= 0 {
		tau = 0.35
	}
	base := s.Base
	if base == nil {
		base = core.LatticeStrategy{}
	}
	keptC := cfg.Telemetry.Counter(telemetry.MetricInductionStabilityKept)
	droppedC := cfg.Telemetry.Counter(telemetry.MetricInductionStabilityDropped)

	// Honest split: a seeded permutation of the rows, half for replicate
	// discovery, half for the final refit. Both halves are restored to row
	// order so every downstream scan stays deterministic.
	rng := rand.New(rand.NewSource(cfg.Seed))
	perm := rng.Perm(rel.Len())
	mid := rel.Len() / 2
	if mid == 0 {
		mid = rel.Len()
	}
	discRows := append([]int(nil), perm[:mid]...)
	holdRows := append([]int(nil), perm[mid:]...)
	sort.Ints(discRows)
	sort.Ints(holdRows)
	if len(holdRows) == 0 {
		holdRows = discRows // degenerate single-row relations
	}

	// Replicate discovery: the base strategy on B bootstrap samples of the
	// discovery half. Each replicate contributes its normalized conjunctions
	// as a set (recurrence counts replicates, not rules). Builtin shifts from
	// share hits are stripped — survivors are refit from scratch.
	counts := make(map[string]int)
	reps := make(map[string]predicate.Conjunction)
	repCfg := cfg
	repCfg.Strategy = base
	repCfg.Workers = 1 // replicate output must be deterministic
	repCfg.Telemetry = nil
	repCfg.SeedModels = nil
	for i := 0; i < b; i++ {
		if err := ctx.Err(); err != nil {
			return nil, core.Canceled(err)
		}
		sample := make([]int, len(discRows))
		for j := range sample {
			sample[j] = discRows[rng.Intn(len(discRows))]
		}
		sort.Ints(sample)
		boot := dataset.NewRelation(rel.Schema)
		boot.Tuples = make([]dataset.Tuple, len(sample))
		for j, ri := range sample {
			boot.Tuples[j] = rel.Tuples[ri]
		}
		res, err := core.Discover(ctx, boot, core.WithConfig(repCfg))
		if err != nil {
			return nil, fmt.Errorf("induction: stability replicate %d: %w", i, err)
		}
		out.Stats.NodesExpanded += res.Stats.NodesExpanded
		out.Stats.ModelsTrained += res.Stats.ModelsTrained
		out.Stats.ShareHits += res.Stats.ShareHits
		seen := make(map[string]bool)
		for _, r := range res.Rules.Rules {
			for _, c := range r.Cond.Conjs {
				rep := stripBuiltin(c)
				key := conjID(rep)
				if seen[key] {
					continue
				}
				seen[key] = true
				counts[key]++
				if _, ok := reps[key]; !ok {
					reps[key] = rep
				}
			}
		}
	}

	// Survivors: conjunctions recurring in ≥ ⌈τ·B⌉ replicates. When nothing
	// clears the bar (heavy noise, fine-grained cuts), fall back to the modal
	// conjunctions so the strategy still reports its most reproducible
	// conditions rather than nothing.
	threshold := int(math.Ceil(tau * float64(b)))
	if threshold < 1 {
		threshold = 1
	}
	var keys []string
	for k, n := range counts {
		if n >= threshold {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		for k, n := range counts {
			if n == best && best > 0 {
				keys = append(keys, k)
			}
		}
	}
	sort.Strings(keys)

	// Honest refit on the inference half; publish ρ over the full selection.
	trainable := make(map[int]bool, len(all))
	for _, r := range all {
		trainable[r] = true
	}
	holdTrain := make([]int, 0, len(holdRows))
	for _, r := range holdRows {
		if trainable[r] {
			holdTrain = append(holdTrain, r)
		}
	}
	for _, key := range keys {
		if err := ctx.Err(); err != nil {
			return nil, core.Canceled(err)
		}
		rep := reps[key]
		sel := holdTrain
		for _, p := range rep.Preds {
			sel = sub.Filter(sel, p)
		}
		if len(sel) < min(cfg.MinSupport, len(holdTrain)) || len(sel) == 0 {
			droppedC.Inc()
			continue
		}
		model, err := sub.Fit(sel)
		if err != nil {
			droppedC.Inc()
			continue
		}
		out.Stats.ModelsTrained++
		full := all
		for _, p := range rep.Preds {
			full = sub.Filter(full, p)
		}
		rho := sub.MaxAbsError(model, full)
		if rho > cfg.RhoM {
			out.Stats.ForcedRules++
		}
		out.Rules.Rules = append(out.Rules.Rules, core.CRR{
			Model:  model,
			Rho:    rho,
			Cond:   predicate.NewDNF(rep.Normalize()),
			XAttrs: out.Rules.XAttrs,
			YAttr:  cfg.YAttr,
		})
		keptC.Inc()
	}
	return out, nil
}

// stripBuiltin rebuilds a conjunction from the normalized predicates alone,
// dropping any builtin y-shift a share hit attached — survivors are refit,
// so carried shifts would be wrong.
func stripBuiltin(c predicate.Conjunction) predicate.Conjunction {
	out := predicate.NewConjunction()
	for _, p := range c.Normalize().Preds {
		out = out.And(p)
	}
	return out
}

// conjID keys a conjunction for recurrence counting: the sorted multiset of
// its predicate renderings, so the same bounds reached in different
// refinement orders count as the same condition.
func conjID(c predicate.Conjunction) string {
	parts := make([]string, len(c.Preds))
	for i, p := range c.Preds {
		parts[i] = p.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, " ∧ ")
}
