package induction

import (
	"fmt"
	"sort"
	"strings"

	"github.com/crrlab/crr/internal/core"
)

// strategies maps CLI names to fresh default-configured strategy values.
var strategies = map[string]func() core.Strategy{
	"lattice":   func() core.Strategy { return core.LatticeStrategy{} },
	"growprune": func() core.Strategy { return GrowPrune{} },
	"stability": func() core.Strategy { return Stability{} },
}

// Lookup resolves a strategy by its CLI name ("lattice", "growprune",
// "stability"), with default parameters.
func Lookup(name string) (core.Strategy, error) {
	if f, ok := strategies[strings.ToLower(strings.TrimSpace(name))]; ok {
		return f(), nil
	}
	return nil, fmt.Errorf("induction: unknown strategy %q (have %s)", name, strings.Join(Names(), ", "))
}

// Names lists the registered strategy names, sorted.
func Names() []string {
	out := make([]string, 0, len(strategies))
	for n := range strategies {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
