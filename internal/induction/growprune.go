// Package induction contributes rule-induction strategies beyond the
// paper's Algorithm 1 lattice walk, plugged into the discovery engine
// through the core.Strategy seam. Every strategy runs on the shared
// substrate — the columnar part scan, SSE split scoring, Gram-backed
// training and ρ-validation kernels of internal/core — so the hot path is
// never forked, and every strategy's output satisfies the same contract:
// rules whose model is within the published ρ on the rows their condition
// selects.
//
// The strategies:
//
//   - GrowPrune: per-example greedy rule induction in the style of the Rule
//     Induction Partitioning Estimator (Margot et al.) — seed a candidate at
//     each uncovered example, grow its conjunction along the SSE-best splits
//     while the refit bound is violated, then prune predicates that don't
//     pay their coverage cost.
//   - Stability: bootstrap stability selection in the style of pycre and the
//     data-dependent coverings line (Margot et al.) — honest-split discovery
//     over B bootstrap replicates of a base strategy, keeping only
//     conjunctions that recur in ≥ τ·B replicates, refit on the held-out
//     half.
//
// Lookup resolves strategies by name for the CLIs (crrdiscover -strategy,
// crrbench -strategies).
package induction

import (
	"context"
	"fmt"
	"sort"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
	"github.com/crrlab/crr/internal/telemetry"
)

// GrowPrune is per-example greedy rule induction: every trainable row not
// yet covered by an emitted rule seeds a candidate whose condition starts at
// ⊤ and is grown one SSE-best predicate at a time — always descending into
// the split child containing the seed — until the refit satisfies the ρ_M
// bound, the part reaches the MinSupport floor, or no split applies. A
// backward pass then prunes predicates whose removal keeps the (refit) bound
// satisfied, so rules don't carry conditions that never paid for themselves.
//
// Like the lattice walk, GrowPrune covers every trainable row (each seed
// ends up inside its own rule's selection), trains through the Gram fast
// path, and publishes ρ as the model's actual maximum residual on the rule's
// selection. Unlike the lattice walk it never shares models and its rules
// may overlap. Deterministic for a fixed configuration.
type GrowPrune struct {
	// MaxPreds caps the grown conjunction length; 0 means 8.
	MaxPreds int
}

// Name implements core.Strategy.
func (GrowPrune) Name() string { return "growprune" }

// Induce implements core.Strategy.
func (g GrowPrune) Induce(ctx context.Context, sub *core.Substrate) (*core.DiscoverResult, error) {
	cfg := sub.Config()
	out := sub.NewResult()
	all := sub.TrainableRows()
	if len(all) == 0 {
		return out, nil
	}
	maxPreds := g.MaxPreds
	if maxPreds <= 0 {
		maxPreds = 8
	}
	grown := cfg.Telemetry.Counter(telemetry.MetricInductionCandidatesGrown)
	prunedC := cfg.Telemetry.Counter(telemetry.MetricInductionRulesPruned)

	covered := make([]bool, sub.NumRows())
	for _, seed := range all {
		if covered[seed] {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, core.Canceled(err)
		}
		grown.Inc()

		// Grow: descend along the SSE-best split, keeping the seed's child,
		// until the refit bound holds or no useful refinement remains.
		var preds []predicate.Predicate
		sel := all
		var model regress.Model
		var maxErr float64
		for {
			m, err := sub.Fit(sel)
			if err != nil {
				if model == nil {
					return nil, fmt.Errorf("induction: growprune fit on %d rows: %w", len(sel), err)
				}
				break
			}
			model = m
			out.Stats.ModelsTrained++
			maxErr = sub.MaxAbsError(model, sel)
			if maxErr <= cfg.RhoM {
				break
			}
			if len(sel) <= cfg.MinSupport || len(preds) >= maxPreds {
				break
			}
			groups := sub.TopSplits(sel, 1)
			if len(groups) == 0 {
				break
			}
			var child *core.SplitChild
			for i := range groups[0] {
				if containsRow(groups[0][i].Rows, seed) {
					child = &groups[0][i]
					break
				}
			}
			// Stop when the seed's child makes no progress or would fall
			// below the support floor — emitted rules keep
			// support ≥ min(MinSupport, |trainable|).
			if child == nil || len(child.Rows) == len(sel) || len(child.Rows) < cfg.MinSupport {
				break
			}
			preds = append(preds, child.Pred)
			sel = child.Rows
			out.Stats.NodesExpanded++
		}

		// Prune: drop predicates whose removal keeps the refit bound — or,
		// for rules already beyond ρ_M (forced at the support floor), does
		// not worsen it. Each removal re-derives the selection from the full
		// trainable set, so pruned rules stay honest about what they cover.
		prunedAny := false
		for i := 0; i < len(preds); {
			cand := make([]predicate.Predicate, 0, len(preds)-1)
			cand = append(cand, preds[:i]...)
			cand = append(cand, preds[i+1:]...)
			sel2 := all
			for _, p := range cand {
				sel2 = sub.Filter(sel2, p)
			}
			m2, err := sub.Fit(sel2)
			if err != nil {
				i++
				continue
			}
			out.Stats.ModelsTrained++
			e2 := sub.MaxAbsError(m2, sel2)
			if e2 <= cfg.RhoM || (maxErr > cfg.RhoM && e2 <= maxErr) {
				preds, sel, model, maxErr = cand, sel2, m2, e2
				prunedAny = true
				continue // positions shifted; retry index i
			}
			i++
		}
		if prunedAny {
			prunedC.Inc()
		}

		conj := predicate.NewConjunction()
		for _, p := range preds {
			conj = conj.And(p)
		}
		if maxErr > cfg.RhoM {
			out.Stats.ForcedRules++
		}
		out.Rules.Rules = append(out.Rules.Rules, core.CRR{
			Model:  model,
			Rho:    maxErr,
			Cond:   predicate.NewDNF(conj.Normalize()),
			XAttrs: out.Rules.XAttrs,
			YAttr:  cfg.YAttr,
		})
		for _, r := range sel {
			covered[r] = true
		}
	}
	return out, nil
}

// containsRow reports whether the ascending row slice contains row.
func containsRow(rows []int, row int) bool {
	i := sort.SearchInts(rows, row)
	return i < len(rows) && rows[i] == row
}
