package induction_test

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/experiments"
	"github.com/crrlab/crr/internal/induction"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

// specs are the five crrgen evaluation datasets every strategy is checked
// against.
func specs() []experiments.DatasetSpec {
	return []experiments.DatasetSpec{
		experiments.BirdMapSpec(),
		experiments.AirQualitySpec(),
		experiments.ElectricitySpec(),
		experiments.TaxSpec(),
		experiments.AbaloneSpec(),
	}
}

func specConfig(spec experiments.DatasetSpec, rel *dataset.Relation) core.DiscoverConfig {
	preds := predicate.Generate(rel, spec.CondAttrs, predicate.GeneratorConfig{
		Kind: predicate.Binary, Size: 32,
	})
	return core.DiscoverConfig{
		XAttrs:  spec.XAttrs,
		YAttr:   spec.YAttr,
		RhoM:    spec.RhoM,
		Preds:   preds,
		Trainer: regress.LinearTrainer{},
	}
}

// ruleSelection re-derives a rule's fit-usable selection independently of the
// engine: a plain tuple-at-a-time first-match scan (the re-derivation
// pattern of the stream oracle), deliberately NOT the vectorized filters the
// strategies ran on, so selection bugs in either path diverge. Pairs come
// back shifted exactly as training saw them.
func ruleSelection(rel *dataset.Relation, rule *core.CRR) (rows []int, xs [][]float64, ys []float64) {
rows:
	for ti, tp := range rel.Tuples {
		conj, ok := rule.Cond.MatchConjunction(tp)
		if !ok || tp[rule.YAttr].Null {
			continue
		}
		x := make([]float64, len(rule.XAttrs))
		for i, attr := range rule.XAttrs {
			if tp[attr].Null {
				continue rows
			}
			x[i] = tp[attr].Num + conj.Builtin.Shift(attr)
		}
		rows = append(rows, ti)
		xs = append(xs, x)
		ys = append(ys, tp[rule.YAttr].Num-conj.Builtin.YShift)
	}
	return rows, xs, ys
}

// TestStrategyProperty is the cross-strategy re-validation property: on all
// five evaluation datasets, every rule any strategy emits must (1) select a
// non-trivial part, (2) satisfy its published ρ on an independently derived
// selection, and (3) for the strategies that fit their model directly on
// their selection, be reproducible by an independent from-scratch refit.
func TestStrategyProperty(t *testing.T) {
	const n = 400
	for _, spec := range specs() {
		rel := spec.Gen(n)
		trainable := trainableRows(rel, spec.XAttrs, spec.YAttr)
		minSupport := len(spec.XAttrs) + 2
		for _, name := range induction.Names() {
			strat, err := induction.Lookup(name)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			cfg := specConfig(spec, rel)
			cfg.Strategy = strat
			res, err := core.Discover(context.Background(), rel, core.WithConfig(cfg))
			if err != nil {
				t.Fatalf("%s/%s: %v", spec.Name, name, err)
			}
			if res.Rules.NumRules() == 0 {
				t.Fatalf("%s/%s: empty rule set", spec.Name, name)
			}
			for ri := range res.Rules.Rules {
				rule := &res.Rules.Rules[ri]
				rows, xs, ys := ruleSelection(rel, rule)

				// Support: growprune and stability refuse selections below
				// the MinSupport floor (or the whole trainable set when it is
				// smaller); the lattice guarantees non-empty parts.
				floor := 1
				if name != "lattice" {
					floor = minSupport
					if len(trainable) < floor {
						floor = len(trainable)
					}
				}
				if len(rows) < floor {
					t.Errorf("%s/%s rule %d (%s): support %d < floor %d",
						spec.Name, name, ri, rule.Cond.String(), len(rows), floor)
					continue
				}

				// ρ re-validation: the published ρ is the model's actual
				// maximum residual over the rule's own selection.
				scale := 1.0
				for _, y := range ys {
					if a := math.Abs(y); a > scale {
						scale = a
					}
				}
				var rho float64
				for i, x := range xs {
					if d := math.Abs(ys[i] - rule.Model.Predict(x)); d > rho {
						rho = d
					}
				}
				tol := 1e-9 * scale
				if rho > rule.Rho+tol {
					t.Errorf("%s/%s rule %d: residual %g beyond published ρ %g (+%g)",
						spec.Name, name, ri, rho, rule.Rho, tol)
				}
				if name == "growprune" && math.Abs(rho-rule.Rho) > tol {
					t.Errorf("%s/%s rule %d: published ρ %g vs recomputed %g",
						spec.Name, name, ri, rule.Rho, rho)
				}

				// Coefficient refit: growprune fits each model on exactly its
				// selection, so an independent from-scratch refit on the
				// re-derived selection must agree to within float tolerance.
				if name == "growprune" {
					checkRefitParity(t, spec.Name, name, ri, rule, xs, ys, tol)
				}
			}

			// Stability's models are fit on the inference half of its honest
			// split — re-derive that half from the documented Seed contract
			// and check refit parity there.
			if name == "stability" {
				hold := stabilityHoldout(rel, cfg.Seed)
				for ri := range res.Rules.Rules {
					rule := &res.Rules.Rules[ri]
					_, xs, ys := ruleSelectionWithin(rel, rule, hold)
					if len(ys) == 0 {
						continue
					}
					scale := 1.0
					for _, y := range ys {
						if a := math.Abs(y); a > scale {
							scale = a
						}
					}
					checkRefitParity(t, spec.Name, name, ri, rule, xs, ys, 1e-9*scale)
				}
			}
		}
	}
}

// checkRefitParity refits the configured family from scratch on the given
// pairs and requires the rule's model to predict identically within tol.
func checkRefitParity(t *testing.T, ds, strat string, ri int, rule *core.CRR, xs [][]float64, ys []float64, tol float64) {
	t.Helper()
	g := regress.NewGram(len(rule.XAttrs))
	for i, x := range xs {
		g.Add(x, ys[i])
	}
	refit, err := regress.LinearTrainer{}.TrainGram(g)
	if err != nil {
		return // degenerate selection: the strategy fell back to the full pass
	}
	var drift float64
	for _, x := range xs {
		if d := math.Abs(rule.Model.Predict(x) - refit.Predict(x)); d > drift {
			drift = d
		}
	}
	if drift > tol {
		t.Errorf("%s/%s rule %d: model drifts %g from the from-scratch refit (bound %g)",
			ds, strat, ri, drift, tol)
	}
}

// stabilityHoldout reproduces the Stability strategy's documented honest
// split: the rows at positions ⌊n/2⌋.. of the Seed-keyed permutation.
func stabilityHoldout(rel *dataset.Relation, seed int64) map[int]bool {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(rel.Len())
	mid := rel.Len() / 2
	if mid == 0 {
		mid = rel.Len()
	}
	hold := make(map[int]bool, len(perm)-mid)
	for _, r := range perm[mid:] {
		hold[r] = true
	}
	if len(hold) == 0 {
		for _, r := range perm[:mid] {
			hold[r] = true
		}
	}
	return hold
}

// ruleSelectionWithin is ruleSelection restricted to a row subset.
func ruleSelectionWithin(rel *dataset.Relation, rule *core.CRR, within map[int]bool) (rows []int, xs [][]float64, ys []float64) {
	allRows, allXs, allYs := ruleSelection(rel, rule)
	for i, r := range allRows {
		if within[r] {
			rows = append(rows, r)
			xs = append(xs, allXs[i])
			ys = append(ys, allYs[i])
		}
	}
	return rows, xs, ys
}

func trainableRows(rel *dataset.Relation, xattrs []int, yattr int) []int {
	var out []int
rows:
	for i, tp := range rel.Tuples {
		if tp[yattr].Null {
			continue
		}
		for _, a := range xattrs {
			if tp[a].Null {
				continue rows
			}
		}
		out = append(out, i)
	}
	return out
}

// TestGrowPruneCoverage: like the lattice walk, growprune must cover every
// trainable row (each seed ends up inside its own rule's selection).
func TestGrowPruneCoverage(t *testing.T) {
	for _, spec := range specs() {
		rel := spec.Gen(300)
		cfg := specConfig(spec, rel)
		cfg.Strategy = induction.GrowPrune{}
		res, err := core.Discover(context.Background(), rel, core.WithConfig(cfg))
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		covered := make(map[int]bool)
		for ri := range res.Rules.Rules {
			rows, _, _ := ruleSelection(rel, &res.Rules.Rules[ri])
			for _, r := range rows {
				covered[r] = true
			}
		}
		for _, r := range trainableRows(rel, spec.XAttrs, spec.YAttr) {
			if !covered[r] {
				t.Fatalf("%s: trainable row %d not covered by any growprune rule", spec.Name, r)
			}
		}
	}
}

// TestStrategyDeterminism: with Workers ≤ 1 and a fixed Seed, every strategy
// must reproduce its output exactly.
func TestStrategyDeterminism(t *testing.T) {
	spec := experiments.TaxSpec()
	rel := spec.Gen(300)
	for _, name := range induction.Names() {
		strat, _ := induction.Lookup(name)
		run := func() *core.RuleSet {
			cfg := specConfig(spec, rel)
			cfg.Strategy = strat
			cfg.Seed = 7
			res, err := core.Discover(context.Background(), rel, core.WithConfig(cfg))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return res.Rules
		}
		a, b := run(), run()
		if !experiments.SameRules(a, b, 0) {
			t.Fatalf("%s: two identically-seeded runs diverged", name)
		}
	}
}

// TestLookup covers the registry surface.
func TestLookup(t *testing.T) {
	want := []string{"growprune", "lattice", "stability"}
	got := induction.Names()
	sort.Strings(got)
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for _, n := range want {
		s, err := induction.Lookup(n)
		if err != nil || s.Name() != n {
			t.Fatalf("Lookup(%q) = %v, %v", n, s, err)
		}
	}
	if _, err := induction.Lookup("nope"); err == nil {
		t.Fatal("Lookup(nope) did not fail")
	}
}
