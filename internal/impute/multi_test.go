package impute

import (
	"errors"
	"testing"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

// chainSchema: A → B → C where B is predicted from A and C from B, so C's
// holes only become fillable after B's pass.
func chainSchema() *dataset.Schema {
	return dataset.MustSchema(
		dataset.Attribute{Name: "A", Kind: dataset.Numeric},
		dataset.Attribute{Name: "B", Kind: dataset.Numeric},
		dataset.Attribute{Name: "C", Kind: dataset.Numeric},
	)
}

// chainRules builds the exact rule B = 2A and C = B + 1 over all data.
func chainRules(schema *dataset.Schema) (bRules, cRules *core.RuleSet) {
	all := predicate.NewDNF(predicate.NewConjunction())
	bRules = &core.RuleSet{
		Schema: schema, XAttrs: []int{0}, YAttr: 1,
		Rules: []core.CRR{{
			Model: regress.NewLinear(0, 2), Rho: 0.01,
			Cond: all, XAttrs: []int{0}, YAttr: 1,
		}},
	}
	cRules = &core.RuleSet{
		Schema: schema, XAttrs: []int{1}, YAttr: 2,
		Rules: []core.CRR{{
			Model: regress.NewLinear(1, 1), Rho: 0.01,
			Cond: all.Clone(), XAttrs: []int{1}, YAttr: 2,
		}},
	}
	return bRules, cRules
}

func TestFillAllChainedDependencies(t *testing.T) {
	schema := chainSchema()
	rel := dataset.NewRelation(schema)
	// Row with B and C missing: C needs B, which needs A.
	rel.MustAppend(dataset.Tuple{dataset.Num(3), dataset.Null(), dataset.Null()})
	rel.MustAppend(dataset.Tuple{dataset.Num(1), dataset.Num(2), dataset.Num(3)})
	bRules, cRules := chainRules(schema)

	// Adversarial order: C first, so the first pass cannot fill it.
	st, err := FillAll(rel, []ColumnPredictor{
		{Col: 2, Predictor: RuleSetPredictor{Rules: cRules}},
		{Col: 1, Predictor: RuleSetPredictor{Rules: bRules}},
	}, 0)
	if err != nil {
		t.Fatalf("FillAll: %v", err)
	}
	if st.Failed != 0 {
		t.Fatalf("stats = %+v, want no failures", st)
	}
	if st.Passes < 2 {
		t.Errorf("passes = %d, want ≥ 2 (C depends on B)", st.Passes)
	}
	if got := rel.Tuples[0][1].Num; got != 6 {
		t.Errorf("B = %v, want 6", got)
	}
	if got := rel.Tuples[0][2].Num; got != 7 {
		t.Errorf("C = %v, want B+1 = 7", got)
	}
}

func TestFillAllStopsWhenStuck(t *testing.T) {
	schema := chainSchema()
	rel := dataset.NewRelation(schema)
	// A is missing too: nothing can fill it, so B and C stay null.
	rel.MustAppend(dataset.Tuple{dataset.Null(), dataset.Null(), dataset.Null()})
	bRules, cRules := chainRules(schema)
	st, err := FillAll(rel, []ColumnPredictor{
		{Col: 1, Predictor: RuleSetPredictor{Rules: bRules}},
		{Col: 2, Predictor: RuleSetPredictor{Rules: cRules}},
	}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st.Imputed != 0 || st.Failed != 2 {
		t.Errorf("stats = %+v, want 0 imputed / 2 failed", st)
	}
	if st.Passes > 2 {
		t.Errorf("passes = %d; should stop after the first no-progress pass", st.Passes)
	}
}

func TestFillAllRejectsCategorical(t *testing.T) {
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "A", Kind: dataset.Numeric},
		dataset.Attribute{Name: "Tag", Kind: dataset.Categorical},
	)
	rel := dataset.NewRelation(schema)
	_, err := FillAll(rel, []ColumnPredictor{{Col: 1, Predictor: RuleSetPredictor{}}}, 0)
	if !errors.Is(err, ErrColumnKind) {
		t.Errorf("err = %v, want ErrColumnKind", err)
	}
}
