package impute

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

func testSchema() *dataset.Schema {
	return dataset.MustSchema(
		dataset.Attribute{Name: "X", Kind: dataset.Numeric},
		dataset.Attribute{Name: "Y", Kind: dataset.Numeric},
		dataset.Attribute{Name: "Tag", Kind: dataset.Categorical},
	)
}

// exactLine builds tuples on y = 2x and a rule set that predicts it exactly
// for x ≥ 0.
func exactLine(n int) (*dataset.Relation, *core.RuleSet) {
	rel := dataset.NewRelation(testSchema())
	for i := 0; i < n; i++ {
		x := float64(i)
		rel.MustAppend(dataset.Tuple{dataset.Num(x), dataset.Num(2 * x), dataset.Str("a")})
	}
	rs := &core.RuleSet{
		Schema: rel.Schema, XAttrs: []int{0}, YAttr: 1,
		Rules: []core.CRR{{
			Model: regress.NewLinear(0, 2), Rho: 0.1,
			Cond:   predicate.NewDNF(predicate.NewConjunction(predicate.NumPred(0, predicate.Ge, 0))),
			XAttrs: []int{0}, YAttr: 1,
		}},
		Fallback: 42,
	}
	return rel, rs
}

func TestFillImputesNulls(t *testing.T) {
	rel, rs := exactLine(20)
	rng := rand.New(rand.NewSource(1))
	masked := rel.MaskMissing(1, 0.25, rng)
	st, err := Fill(rel, 1, RuleSetPredictor{Rules: rs})
	if err != nil {
		t.Fatalf("Fill: %v", err)
	}
	if st.Imputed != len(masked) || st.Failed != 0 {
		t.Fatalf("stats = %+v, want %d imputed", st, len(masked))
	}
	for _, i := range masked {
		got := rel.Tuples[i][1]
		if got.Null {
			t.Fatalf("row %d still null", i)
		}
		want := 2 * rel.Tuples[i][0].Num
		if got.Num != want {
			t.Errorf("row %d imputed %v, want %v", i, got.Num, want)
		}
	}
}

func TestFillCountsFailed(t *testing.T) {
	rel, rs := exactLine(10)
	// A tuple outside every rule's condition.
	rel.MustAppend(dataset.Tuple{dataset.Num(-5), dataset.Null(), dataset.Str("a")})
	st, err := Fill(rel, 1, RuleSetPredictor{Rules: rs})
	if err != nil {
		t.Fatal(err)
	}
	if st.Failed != 1 {
		t.Errorf("Failed = %d, want 1", st.Failed)
	}
	if !rel.Tuples[10][1].Null {
		t.Error("uncovered cell was filled")
	}
}

func TestFillWithFallback(t *testing.T) {
	rel, rs := exactLine(10)
	rel.MustAppend(dataset.Tuple{dataset.Num(-5), dataset.Null(), dataset.Str("a")})
	st, err := Fill(rel, 1, RuleSetPredictor{Rules: rs, UseFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Failed != 0 {
		t.Errorf("Failed = %d with fallback enabled", st.Failed)
	}
	if got := rel.Tuples[10][1].Num; got != 42 {
		t.Errorf("fallback imputed %v, want 42", got)
	}
}

func TestFillRejectsCategorical(t *testing.T) {
	rel, rs := exactLine(5)
	if _, err := Fill(rel, 2, RuleSetPredictor{Rules: rs}); !errors.Is(err, ErrColumnKind) {
		t.Errorf("err = %v, want ErrColumnKind", err)
	}
}

func TestEvaluateScoresAgainstTruth(t *testing.T) {
	original, rs := exactLine(40)
	masked := original.Clone()
	rng := rand.New(rand.NewSource(2))
	rows := masked.MaskMissing(1, 0.3, rng)
	rmse, st, err := Evaluate(masked, original, 1, rows, RuleSetPredictor{Rules: rs})
	if err != nil {
		t.Fatal(err)
	}
	if rmse != 0 {
		t.Errorf("RMSE = %v on an exact rule, want 0", rmse)
	}
	if st.Imputed != len(rows) {
		t.Errorf("Imputed = %d, want %d", st.Imputed, len(rows))
	}
	// Evaluate must not mutate masked.
	for _, i := range rows {
		if !masked.Tuples[i][1].Null {
			t.Fatal("Evaluate mutated the masked relation")
		}
	}
}

func TestEvaluateSkipsNullTruth(t *testing.T) {
	original, rs := exactLine(5)
	original.Tuples[3] = dataset.Tuple{dataset.Num(3), dataset.Null(), dataset.Str("a")}
	masked := original.Clone()
	rmse, st, err := Evaluate(masked, original, 1, []int{3}, RuleSetPredictor{Rules: rs})
	if err != nil || rmse != 0 || st.Imputed != 0 {
		t.Errorf("Evaluate on null truth: rmse=%v st=%+v err=%v", rmse, st, err)
	}
}

func TestFillCopyOnWrite(t *testing.T) {
	rel, rs := exactLine(10)
	rng := rand.New(rand.NewSource(3))
	rel.MaskMissing(1, 0.2, rng)
	shared := rel.Head(rel.Len()) // shares tuple slice headers
	snapshot := make([]dataset.Tuple, len(shared.Tuples))
	copy(snapshot, shared.Tuples)
	if _, err := Fill(rel, 1, RuleSetPredictor{Rules: rs}); err != nil {
		t.Fatal(err)
	}
	// The snapshot tuples themselves must be unchanged (copy-on-write).
	for i, tp := range snapshot {
		for j := range tp {
			if tp[j] != snapshot[i][j] {
				t.Fatal("Fill mutated shared tuple storage")
			}
		}
	}
}
