package impute_test

import (
	"fmt"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/impute"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

// ExampleFill imputes a missing target cell with a rule set — the paper's
// t6 scenario from Table I.
func ExampleFill() {
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "Date", Kind: dataset.Numeric},
		dataset.Attribute{Name: "Latitude", Kind: dataset.Numeric},
	)
	rel := dataset.NewRelation(schema)
	rel.MustAppend(dataset.Tuple{dataset.Num(100), dataset.Null()}) // missing
	rel.MustAppend(dataset.Tuple{dataset.Num(120), dataset.Num(58)})

	rules := &core.RuleSet{
		Schema: schema, XAttrs: []int{0}, YAttr: 1,
		Rules: []core.CRR{{
			Model: regress.NewConstant(58, 1), Rho: 0.5,
			Cond: predicate.NewDNF(predicate.NewConjunction(
				predicate.NumPred(0, predicate.Ge, 90))),
			XAttrs: []int{0}, YAttr: 1,
		}},
	}
	st, err := impute.Fill(rel, 1, impute.RuleSetPredictor{Rules: rules})
	if err != nil {
		panic(err)
	}
	fmt.Println(st.Imputed, rel.Tuples[0][1].Num)
	// Output: 1 58
}
