// Package impute implements missing-value imputation driven by a CRR set or
// any baseline method — the downstream case study of §VI-E (Fig. 10).
package impute

import (
	"errors"
	"math"
	"time"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
)

// Predictor is anything that proposes a value for a tuple: a *core.RuleSet,
// a baseline.Method, or a bespoke model.
type Predictor interface {
	Predict(t dataset.Tuple) (float64, bool)
}

// viewPredictor is the columnar batch-classification surface (satisfied by
// *core.RuleSet and RuleSetPredictor): one call classifies every selected
// row of a view. Fill and Evaluate use it to answer all imputation targets
// in one columnar pass; results match the per-tuple path exactly.
type viewPredictor interface {
	PredictView(v *dataset.View) ([]float64, []bool)
}

// increasing reports whether rows is strictly increasing — the selection-
// vector precondition of the columnar fast path.
func increasing(rows []int) bool {
	for i := 1; i < len(rows); i++ {
		if rows[i] <= rows[i-1] {
			return false
		}
	}
	return true
}

// Stats reports an imputation run.
type Stats struct {
	// Imputed is the number of cells filled.
	Imputed int
	// Failed is the number of null cells no predictor output covered.
	Failed int
	// Duration is the wall-clock imputation time.
	Duration time.Duration
}

// ErrColumnKind is returned when the imputation target is not numeric.
var ErrColumnKind = errors.New("impute: target column must be numeric")

// Fill imputes every null cell of numeric column col in rel, in place, using
// p. Tuples are copied on write, so other relations sharing tuple storage
// are unaffected.
func Fill(rel *dataset.Relation, col int, p Predictor) (Stats, error) {
	if rel.Schema.Attr(col).Kind != dataset.Numeric {
		return Stats{}, ErrColumnKind
	}
	start := time.Now()
	var st Stats
	if vp, ok := p.(viewPredictor); ok {
		// Columnar fast path: one ColumnSet over the pre-fill snapshot, one
		// batch classification of the null rows. The row path also predicts
		// from unmutated tuples (each fill replaces only its own row), so the
		// snapshot semantics are identical.
		sel := make([]int, 0)
		for i, t := range rel.Tuples {
			if t[col].Null {
				sel = append(sel, i)
			}
		}
		if len(sel) > 0 {
			cs := dataset.NewColumnSet(rel)
			preds, oks := vp.PredictView(&dataset.View{Cols: cs, Sel: sel})
			for j, i := range sel {
				if !oks[j] {
					st.Failed++
					continue
				}
				nt := rel.Tuples[i].Clone()
				nt[col] = dataset.Num(preds[j])
				rel.Tuples[i] = nt
				st.Imputed++
			}
		}
		st.Duration = time.Since(start)
		return st, nil
	}
	for i, t := range rel.Tuples {
		if !t[col].Null {
			continue
		}
		v, ok := p.Predict(t)
		if !ok {
			st.Failed++
			continue
		}
		nt := t.Clone()
		nt[col] = dataset.Num(v)
		rel.Tuples[i] = nt
		st.Imputed++
	}
	st.Duration = time.Since(start)
	return st, nil
}

// Evaluate imputes the null cells of column col in masked (without mutating
// it) and scores the imputations against the ground-truth relation original
// at the given row positions. It returns the imputation RMSE together with
// run stats. Rows whose original cell is null are skipped.
func Evaluate(masked, original *dataset.Relation, col int, rows []int, p Predictor) (rmse float64, st Stats, err error) {
	if masked.Schema.Attr(col).Kind != dataset.Numeric {
		return 0, Stats{}, ErrColumnKind
	}
	start := time.Now()
	var sum float64
	n := 0
	if vp, ok := p.(viewPredictor); ok && increasing(rows) {
		// Columnar fast path: rows with a null ground truth are dropped
		// before classification, exactly as the per-tuple loop skips them
		// without bumping Failed.
		sel := make([]int, 0, len(rows))
		for _, i := range rows {
			if !original.Tuples[i][col].Null {
				sel = append(sel, i)
			}
		}
		preds, oks := vp.PredictView(&dataset.View{Cols: dataset.NewColumnSet(masked), Sel: sel})
		for j, i := range sel {
			if !oks[j] {
				st.Failed++
				continue
			}
			st.Imputed++
			d := original.Tuples[i][col].Num - preds[j]
			sum += d * d
			n++
		}
	} else {
		for _, i := range rows {
			truth := original.Tuples[i][col]
			if truth.Null {
				continue
			}
			v, ok := p.Predict(masked.Tuples[i])
			if !ok {
				st.Failed++
				continue
			}
			st.Imputed++
			d := truth.Num - v
			sum += d * d
			n++
		}
	}
	st.Duration = time.Since(start)
	if n == 0 {
		return 0, st, nil
	}
	return math.Sqrt(sum / float64(n)), st, nil
}

// RuleSetPredictor adapts a *core.RuleSet to the Predictor interface with
// the fallback disabled: imputation should fail visibly rather than fill
// with the global mean, so rule coverage is measurable.
type RuleSetPredictor struct {
	Rules *core.RuleSet
	// UseFallback, when set, falls back to the rule set's training mean for
	// uncovered tuples instead of failing.
	UseFallback bool
}

// Predict implements Predictor.
func (r RuleSetPredictor) Predict(t dataset.Tuple) (float64, bool) {
	p, covered := r.Rules.Predict(t)
	if covered || r.UseFallback {
		return p, true
	}
	return 0, false
}

// PredictView implements the columnar batch surface with the same fallback
// semantics as Predict: uncovered rows carry the rule set's training mean,
// accepted only when UseFallback is set.
func (r RuleSetPredictor) PredictView(v *dataset.View) ([]float64, []bool) {
	preds, covered := r.Rules.PredictView(v)
	if !r.UseFallback {
		return preds, covered
	}
	ok := make([]bool, len(covered))
	for i := range ok {
		ok[i] = true
	}
	return preds, ok
}
