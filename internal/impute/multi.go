package impute

import (
	"fmt"
	"time"

	"github.com/crrlab/crr/internal/dataset"
)

// Multi-column imputation: when several columns have holes, a rule set for
// column A may need column B's value and vice versa. FillAll sweeps the
// columns round-robin, filling what is currently predictable; each pass can
// unlock cells for the next (a MICE-style fixed-point without the
// re-estimation step — the rule sets stay fixed).

// ColumnPredictor binds a target column to the predictor imputing it.
type ColumnPredictor struct {
	Col       int
	Predictor Predictor
}

// MultiStats reports a FillAll run.
type MultiStats struct {
	// Imputed counts filled cells over all columns and passes.
	Imputed int
	// Failed counts cells still null after the final pass.
	Failed int
	// Passes is the number of round-robin sweeps executed.
	Passes int
	// Duration is the total wall-clock time.
	Duration time.Duration
}

// FillAll imputes the null cells of every configured column in place,
// sweeping round-robin until a full pass makes no progress or maxPasses is
// reached (0 means len(columns)+1, enough for any acyclic dependency chain).
func FillAll(rel *dataset.Relation, columns []ColumnPredictor, maxPasses int) (MultiStats, error) {
	var st MultiStats
	start := time.Now()
	for _, c := range columns {
		if rel.Schema.Attr(c.Col).Kind != dataset.Numeric {
			return st, fmt.Errorf("%w: column %d", ErrColumnKind, c.Col)
		}
	}
	if maxPasses <= 0 {
		maxPasses = len(columns) + 1
	}
	for pass := 0; pass < maxPasses; pass++ {
		st.Passes++
		filled := 0
		for _, c := range columns {
			cs, err := Fill(rel, c.Col, c.Predictor)
			if err != nil {
				return st, err
			}
			filled += cs.Imputed
		}
		st.Imputed += filled
		if filled == 0 {
			break
		}
	}
	for _, c := range columns {
		for _, t := range rel.Tuples {
			if t[c.Col].Null {
				st.Failed++
			}
		}
	}
	st.Duration = time.Since(start)
	return st, nil
}
