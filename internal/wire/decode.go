package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrFormat wraps every malformed-stream error, so callers can map any
// decode failure to one "bad request" class without string matching.
var ErrFormat = errors.New("wire: malformed stream")

func formatErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrFormat, fmt.Sprintf(format, args...))
}

// DecodeBatch reads one complete batch stream from r. It never trusts a
// length it has not verified against bytes actually present: frame payloads
// are read fully (bounded by lim.MaxFrameBytes) before parsing, row counts
// are checked against the payload size before any row-proportional
// allocation, and dictionary codes are validated against the dictionary
// received so far. Null float lanes are normalized to zero and NullCode
// cells to set null bits, so a decoded batch has exactly one representation
// per logical value.
func DecodeBatch(r io.Reader, lim DecodeLimits) (*Batch, error) {
	br := getReader(r)
	defer putReader(br)

	if err := readHeader(br, msgBatch); err != nil {
		return nil, err
	}
	opts, err := readOptions(br)
	if err != nil {
		return nil, err
	}
	schema, err := readSchema(br, lim)
	if err != nil {
		return nil, err
	}
	b := &Batch{Schema: schema, Cols: make([]Col, schema.Cols()), Options: opts}
	if err := readFrames(br, b, lim); err != nil {
		return nil, err
	}
	return b, nil
}

// readHeader consumes and validates magic, version and message type.
func readHeader(br *bufio.Reader, wantType byte) error {
	var hdr [6]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return formatErr("short header: %v", err)
	}
	if [4]byte(hdr[:4]) != magic {
		return formatErr("bad magic %q", hdr[:4])
	}
	if hdr[4] != Version {
		return formatErr("unsupported version %d (want %d)", hdr[4], Version)
	}
	if hdr[5] != wantType {
		return formatErr("message type %#x (want %#x)", hdr[5], wantType)
	}
	return nil
}

// maxOptionPairs and maxStringLen bound header strings independently of the
// frame limits; both are far above any legitimate use.
const (
	maxOptionPairs = 256
	maxStringLen   = 1 << 16
)

func readUvarint(br *bufio.Reader) (uint64, error) {
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, formatErr("short varint: %v", err)
	}
	return v, nil
}

// readString reads a length-prefixed string, capped.
func readString(br *bufio.Reader, maxLen int) (string, error) {
	n, err := readUvarint(br)
	if err != nil {
		return "", err
	}
	if n > uint64(maxLen) {
		return "", formatErr("string length %d exceeds cap %d", n, maxLen)
	}
	// Strings are small (capped); read through the bufio buffer without a
	// separate scratch allocation when possible.
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", formatErr("short string: %v", err)
	}
	return string(buf), nil
}

func readOptions(br *bufio.Reader) (map[string]string, error) {
	n, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > maxOptionPairs {
		return nil, formatErr("%d option pairs exceed cap %d", n, maxOptionPairs)
	}
	opts := make(map[string]string, n)
	for i := uint64(0); i < n; i++ {
		k, err := readString(br, maxStringLen)
		if err != nil {
			return nil, err
		}
		v, err := readString(br, maxStringLen)
		if err != nil {
			return nil, err
		}
		opts[k] = v
	}
	return opts, nil
}

func readSchema(br *bufio.Reader, lim DecodeLimits) (Schema, error) {
	n, err := readUvarint(br)
	if err != nil {
		return Schema{}, err
	}
	if n > uint64(lim.maxCols()) {
		return Schema{}, formatErr("%d columns exceed cap %d", n, lim.maxCols())
	}
	s := Schema{Names: make([]string, n), Kinds: make([]Kind, n)}
	for i := range s.Names {
		name, err := readString(br, maxStringLen)
		if err != nil {
			return Schema{}, err
		}
		kind, err := br.ReadByte()
		if err != nil {
			return Schema{}, formatErr("short schema: %v", err)
		}
		if Kind(kind) != Float64 && Kind(kind) != String {
			return Schema{}, formatErr("column %q has unknown kind %d", name, kind)
		}
		s.Names[i] = name
		s.Kinds[i] = Kind(kind)
	}
	return s, nil
}

// cursor walks one fully-read frame payload with bounds-checked reads.
type cursor struct {
	buf []byte
	off int
}

func (c *cursor) remaining() int { return len(c.buf) - c.off }

func (c *cursor) bytes(n int) ([]byte, error) {
	if n < 0 || c.remaining() < n {
		return nil, formatErr("frame truncated: need %d bytes, have %d", n, c.remaining())
	}
	b := c.buf[c.off : c.off+n]
	c.off += n
	return b, nil
}

func (c *cursor) byte1() (byte, error) {
	b, err := c.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (c *cursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.buf[c.off:])
	if n <= 0 {
		return 0, formatErr("frame truncated: bad varint")
	}
	c.off += n
	return v, nil
}

func (c *cursor) str(maxLen int) (string, error) {
	n, err := c.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(maxLen) {
		return "", formatErr("string length %d exceeds cap %d", n, maxLen)
	}
	b, err := c.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// minRowBytes is the guaranteed per-row payload cost of one frame under
// schema s — the check that stops a hostile row count from provoking a
// large allocation the payload cannot back.
func minRowBytes(s Schema) int {
	n := 0
	for _, k := range s.Kinds {
		if k == Float64 {
			n += 8
		} else {
			n += 4
		}
	}
	return n
}

// readFrames accumulates row frames into b until the zero-row terminator.
func readFrames(br *bufio.Reader, b *Batch, lim DecodeLimits) error {
	perRow := minRowBytes(b.Schema)
	payload := getBuf()
	defer putBuf(payload)
	for {
		var lenb [4]byte
		if _, err := io.ReadFull(br, lenb[:]); err != nil {
			return formatErr("short frame length: %v", err)
		}
		frameLen := int(binary.LittleEndian.Uint32(lenb[:]))
		if frameLen < 4 {
			return formatErr("frame payload of %d bytes is shorter than its row count", frameLen)
		}
		if frameLen > lim.maxFrameBytes() {
			return formatErr("frame payload %d exceeds cap %d", frameLen, lim.maxFrameBytes())
		}
		if cap(*payload) < frameLen {
			*payload = make([]byte, frameLen)
		}
		*payload = (*payload)[:frameLen]
		if _, err := io.ReadFull(br, *payload); err != nil {
			return formatErr("short frame: %v", err)
		}
		cur := &cursor{buf: *payload}
		rowsb, _ := cur.bytes(4)
		rows := int(binary.LittleEndian.Uint32(rowsb))
		if rows == 0 {
			if cur.remaining() != 0 {
				return formatErr("terminator frame carries %d trailing bytes", cur.remaining())
			}
			return nil
		}
		if b.Schema.Cols() == 0 {
			return formatErr("%d rows with an empty schema", rows)
		}
		if rows > lim.maxRows()-b.Rows {
			return formatErr("batch exceeds row cap %d", lim.maxRows())
		}
		// Every data frame carries at least flags + dense lanes per column;
		// verify before any rows-sized allocation below.
		if need := b.Schema.Cols() + rows*perRow; cur.remaining() < need {
			return formatErr("frame of %d bytes cannot hold %d rows (needs ≥ %d)", cur.remaining(), rows, need)
		}
		if err := readFrameColumns(cur, b, rows); err != nil {
			return err
		}
		if cur.remaining() != 0 {
			return formatErr("frame carries %d trailing bytes", cur.remaining())
		}
		b.Rows += rows
	}
}

func readFrameColumns(cur *cursor, b *Batch, rows int) error {
	base := b.Rows
	for c := range b.Cols {
		col := &b.Cols[c]
		flags, err := cur.byte1()
		if err != nil {
			return err
		}
		if flags&^byte(1) != 0 {
			return formatErr("column %q has unknown flags %#x", b.Schema.Names[c], flags)
		}
		hasNulls := flags&1 != 0

		var lanes []byte // raw float lanes, decoded after the bitmap is known
		var codes []byte // raw code lanes, validated after the bitmap is known
		switch b.Schema.Kinds[c] {
		case Float64:
			lanes, err = cur.bytes(rows * 8)
			if err != nil {
				return err
			}
		case String:
			add, err := cur.uvarint()
			if err != nil {
				return err
			}
			// Each added entry costs ≥ 1 payload byte (its length varint).
			if add > uint64(cur.remaining()) {
				return formatErr("column %q dictionary addition %d exceeds frame", b.Schema.Names[c], add)
			}
			for i := uint64(0); i < add; i++ {
				s, err := cur.str(maxStringLen)
				if err != nil {
					return err
				}
				col.Dict = append(col.Dict, s)
			}
			codes, err = cur.bytes(rows * 4)
			if err != nil {
				return err
			}
		}
		var bitmap []byte
		if hasNulls {
			bitmap, err = cur.bytes(bitmapWords(rows) * 8)
			if err != nil {
				return err
			}
		}

		// Frame-local null bits merge into the batch-wide bitmap at the
		// frame's base row offset.
		isNull := func(i int) bool {
			return bitmap != nil && bitmap[(i>>6)*8+((i>>3)&7)]&(1<<(uint(i)&7)) != 0
		}
		setNull := func(i int) {
			if col.Nulls == nil {
				col.Nulls = make([]uint64, 0, bitmapWords(base+rows))
			}
			for len(col.Nulls) < bitmapWords(base+rows) {
				col.Nulls = append(col.Nulls, 0)
			}
			r := base + i
			col.Nulls[r>>6] |= 1 << (uint(r) & 63)
		}
		if col.Nulls != nil {
			// Earlier frames had nulls; keep the bitmap row-aligned.
			for len(col.Nulls) < bitmapWords(base+rows) {
				col.Nulls = append(col.Nulls, 0)
			}
		}

		switch b.Schema.Kinds[c] {
		case Float64:
			if cap(col.Floats)-len(col.Floats) < rows {
				grown := make([]float64, len(col.Floats), len(col.Floats)+rows)
				copy(grown, col.Floats)
				col.Floats = grown
			}
			for i := 0; i < rows; i++ {
				v := math.Float64frombits(binary.LittleEndian.Uint64(lanes[i*8:]))
				if isNull(i) {
					// Normalize: a null lane carries exactly what
					// dataset.Null() does — zero.
					v = 0
					setNull(i)
				}
				col.Floats = append(col.Floats, v)
			}
		case String:
			if cap(col.Codes)-len(col.Codes) < rows {
				grown := make([]uint32, len(col.Codes), len(col.Codes)+rows)
				copy(grown, col.Codes)
				col.Codes = grown
			}
			dictLen := uint32(len(col.Dict))
			for i := 0; i < rows; i++ {
				code := binary.LittleEndian.Uint32(codes[i*4:])
				if isNull(i) {
					code = NullCode
				}
				if code == NullCode {
					setNull(i)
				} else if code >= dictLen {
					return formatErr("column %q code %d outside dictionary of %d", b.Schema.Names[c], code, dictLen)
				}
				col.Codes = append(col.Codes, code)
			}
		}
	}
	return nil
}
