package wire

import (
	"bytes"
	"math"
	"testing"
)

// FuzzWireDecode holds the decoder's safety line: arbitrary bytes — bad
// magic, truncated frames, hostile length prefixes, null bitmaps past the
// row count — must produce ErrFormat-class errors, never a panic, and never
// an allocation sized by an unverified length. The limits are kept tiny so
// the fuzzer can reach the cap paths cheaply, and every decoded batch is
// re-encoded and re-decoded to assert the accepted subset round-trips.
func FuzzWireDecode(f *testing.F) {
	// Seed with valid streams of every message type, so mutation starts
	// from deep inside the format instead of dying at the magic check.
	var buf bytes.Buffer
	if err := EncodeBatch(&buf, fuzzSeedBatch(), EncodeOptions{ChunkRows: 3}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	buf = bytes.Buffer{}
	if err := EncodePredictions(&buf, &Predictions{
		Y:       "y",
		Values:  []float64{1, math.Inf(-1), 3},
		Covered: []bool{true, false, true},
		RuleIDs: []int{0, -1, 2},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	repair := 5.0
	buf = bytes.Buffer{}
	if err := EncodeCheck(&buf, &CheckReport{
		Checked:    9,
		Violations: []Violation{{Tuple: 1, Rule: 2, Observed: 3, Predicted: 4, Excess: 1, Repair: &repair}},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	buf = bytes.Buffer{}
	if err := EncodeImpute(&buf, &ImputeReport{Column: "x", Imputed: 1, Batch: fuzzSeedBatch()}, EncodeOptions{}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	// Hand-built hostile streams: giant claimed rows, bitmap flag with no
	// bitmap bytes, dictionary additions past the frame end.
	hostile := appendHeader(nil, msgBatch)
	hostile = append(hostile, 0)
	hostile = appendSchema(hostile, Schema{Names: []string{"x"}, Kinds: []Kind{String}})
	hostile = append(hostile, 12, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f, 1, 0xff, 0xff, 0x01)
	f.Add(hostile)

	lim := DecodeLimits{MaxFrameBytes: 1 << 16, MaxCols: 16, MaxRows: 1 << 12}
	f.Fuzz(func(t *testing.T, data []byte) {
		if b, err := DecodeBatch(bytes.NewReader(data), lim); err == nil {
			// Accepted streams must re-encode and re-decode to the same batch:
			// the decoder's output is always a valid encoder input.
			var out bytes.Buffer
			if err := EncodeBatch(&out, b, EncodeOptions{ChunkRows: 2}); err != nil {
				t.Fatalf("decoded batch does not re-encode: %v", err)
			}
			if _, err := DecodeBatch(&out, lim); err != nil {
				t.Fatalf("re-encoded batch does not decode: %v", err)
			}
		}
		_, _ = DecodePredictions(bytes.NewReader(data), lim)
		_, _ = DecodeCheck(bytes.NewReader(data), lim)
		_, _ = DecodeImpute(bytes.NewReader(data), lim)
	})
}

func fuzzSeedBatch() *Batch {
	return &Batch{
		Schema: Schema{Names: []string{"a", "b"}, Kinds: []Kind{Float64, String}},
		Rows:   5,
		Cols: []Col{
			{Floats: []float64{1, 2, 0, 4, 5}, Nulls: []uint64{0b00100}},
			{Codes: []uint32{0, 1, NullCode, 0, 1}, Dict: []string{"u", "v"}, Nulls: []uint64{0b00100}},
		},
	}
}
