package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
)

// appendString appends a length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// EncodeBatch writes b as one complete batch stream: header, options,
// schema, row frames of at most opt.ChunkRows rows each, and the zero-row
// terminator. Column data is read directly from the Batch slices — no
// intermediate tuple materialization — and the frame scratch buffer is
// pooled, so steady-state encoding allocates only what the io.Writer does.
func EncodeBatch(w io.Writer, b *Batch, opt EncodeOptions) error {
	if err := validateBatch(b); err != nil {
		return err
	}
	chunk := opt.ChunkRows
	if chunk <= 0 {
		chunk = DefaultChunkRows
	}
	buf := getBuf()
	defer putBuf(buf)

	*buf = appendHeader((*buf)[:0], msgBatch)
	*buf = appendOptions(*buf, b.Options)
	*buf = appendSchema(*buf, b.Schema)
	if _, err := w.Write(*buf); err != nil {
		return err
	}

	// dictSent[c] counts dictionary entries already on the wire for column
	// c; each frame carries only the additions since the previous one.
	dictSent := make([]int, b.Schema.Cols())
	for start := 0; start < b.Rows; start += chunk {
		end := start + chunk
		if end > b.Rows {
			end = b.Rows
		}
		if err := writeFrame(w, buf, b, start, end, dictSent); err != nil {
			return err
		}
	}
	// Terminator: a frame whose payload is just rows=0.
	*buf = (*buf)[:0]
	*buf = binary.LittleEndian.AppendUint32(*buf, 4)
	*buf = binary.LittleEndian.AppendUint32(*buf, 0)
	_, err := w.Write(*buf)
	return err
}

func validateBatch(b *Batch) error {
	if b.Schema.Cols() != len(b.Schema.Kinds) {
		return fmt.Errorf("wire: schema has %d names but %d kinds", len(b.Schema.Names), len(b.Schema.Kinds))
	}
	if len(b.Cols) != b.Schema.Cols() {
		return fmt.Errorf("wire: %d columns for a %d-column schema", len(b.Cols), b.Schema.Cols())
	}
	if b.Rows > 0 && b.Schema.Cols() == 0 {
		return fmt.Errorf("wire: %d rows with an empty schema", b.Rows)
	}
	for c := range b.Cols {
		col := &b.Cols[c]
		switch b.Schema.Kinds[c] {
		case Float64:
			if len(col.Floats) != b.Rows {
				return fmt.Errorf("wire: column %q has %d float lanes for %d rows", b.Schema.Names[c], len(col.Floats), b.Rows)
			}
		case String:
			if len(col.Codes) != b.Rows {
				return fmt.Errorf("wire: column %q has %d codes for %d rows", b.Schema.Names[c], len(col.Codes), b.Rows)
			}
			for _, code := range col.Codes {
				if code != NullCode && int(code) >= len(col.Dict) {
					return fmt.Errorf("wire: column %q code %d outside dictionary of %d", b.Schema.Names[c], code, len(col.Dict))
				}
			}
		default:
			return fmt.Errorf("wire: column %q has unsupported kind %d", b.Schema.Names[c], b.Schema.Kinds[c])
		}
		if col.Nulls != nil && len(col.Nulls) < bitmapWords(b.Rows) {
			return fmt.Errorf("wire: column %q null bitmap has %d words for %d rows", b.Schema.Names[c], len(col.Nulls), b.Rows)
		}
	}
	return nil
}

func appendHeader(buf []byte, msgtype byte) []byte {
	buf = append(buf, magic[:]...)
	return append(buf, Version, msgtype)
}

// appendOptions writes the option pairs in sorted key order, so identical
// requests encode identically.
func appendOptions(buf []byte, opts map[string]string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(opts)))
	if len(opts) == 0 {
		return buf
	}
	keys := make([]string, 0, len(opts))
	for k := range opts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		buf = appendString(buf, k)
		buf = appendString(buf, opts[k])
	}
	return buf
}

func appendSchema(buf []byte, s Schema) []byte {
	buf = binary.AppendUvarint(buf, uint64(s.Cols()))
	for i, name := range s.Names {
		buf = appendString(buf, name)
		buf = append(buf, byte(s.Kinds[i]))
	}
	return buf
}

// writeFrame encodes rows [start, end) of every column as one frame.
func writeFrame(w io.Writer, scratch *[]byte, b *Batch, start, end int, dictSent []int) error {
	rows := end - start
	buf := (*scratch)[:0]
	buf = binary.LittleEndian.AppendUint32(buf, 0) // frameLen backpatched below
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rows))
	for c := range b.Cols {
		col := &b.Cols[c]
		hasNulls := frameHasNulls(col.Nulls, start, end)
		flags := byte(0)
		if hasNulls {
			flags |= 1
		}
		buf = append(buf, flags)
		switch b.Schema.Kinds[c] {
		case Float64:
			off := len(buf)
			buf = append(buf, make([]byte, rows*8)...)
			dst := buf[off:]
			for i, v := range col.Floats[start:end] {
				binary.LittleEndian.PutUint64(dst[i*8:], math.Float64bits(v))
			}
		case String:
			add := col.Dict[dictSent[c]:]
			buf = binary.AppendUvarint(buf, uint64(len(add)))
			for _, s := range add {
				buf = appendString(buf, s)
			}
			dictSent[c] = len(col.Dict)
			off := len(buf)
			buf = append(buf, make([]byte, rows*4)...)
			dst := buf[off:]
			for i, code := range col.Codes[start:end] {
				binary.LittleEndian.PutUint32(dst[i*4:], code)
			}
		}
		if hasNulls {
			off := len(buf)
			words := bitmapWords(rows)
			buf = append(buf, make([]byte, words*8)...)
			dst := buf[off:]
			for i := 0; i < rows; i++ {
				if col.IsNull(start + i) {
					dst[(i>>6)*8+((i>>3)&7)] |= 1 << (uint(i) & 7)
				}
			}
		}
	}
	binary.LittleEndian.PutUint32(buf, uint32(len(buf)-4))
	*scratch = buf
	_, err := w.Write(buf)
	return err
}

// frameHasNulls reports whether any row of [start, end) is null.
func frameHasNulls(bitmap []uint64, start, end int) bool {
	if bitmap == nil {
		return false
	}
	for r := start; r < end; r++ {
		if bitmap[r>>6]&(1<<(uint(r)&63)) != 0 {
			return true
		}
	}
	return false
}
