package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Endpoint results travel in the same dialect as batches: fixed header,
// then dense typed payloads. Predictions are the hot path — a 1000-tuple
// answer is ~8 KiB of float64 lanes plus a 16-word coverage bitmap, encoded
// straight out of the classifier's output slices.

// Predictions is the /v1/predict result: one value and coverage flag per
// input row, plus the rule that supplied each prediction when the caller
// asked for explain metadata (RuleIDs non-nil; -1 marks an uncovered row).
type Predictions struct {
	Y       string
	Values  []float64
	Covered []bool
	RuleIDs []int
}

// EncodePredictions writes p as one predictions message.
func EncodePredictions(w io.Writer, p *Predictions) error {
	if len(p.Covered) != len(p.Values) {
		return fmt.Errorf("wire: %d covered flags for %d values", len(p.Covered), len(p.Values))
	}
	if p.RuleIDs != nil && len(p.RuleIDs) != len(p.Values) {
		return fmt.Errorf("wire: %d rule ids for %d values", len(p.RuleIDs), len(p.Values))
	}
	buf := getBuf()
	defer putBuf(buf)
	b := appendHeader((*buf)[:0], msgPredictions)
	b = appendString(b, p.Y)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p.Values)))
	flags := byte(0)
	if p.RuleIDs != nil {
		flags |= 1
	}
	b = append(b, flags)
	off := len(b)
	b = append(b, make([]byte, len(p.Values)*8)...)
	for i, v := range p.Values {
		binary.LittleEndian.PutUint64(b[off+i*8:], math.Float64bits(v))
	}
	words := bitmapWords(len(p.Covered))
	off = len(b)
	b = append(b, make([]byte, words*8)...)
	for i, c := range p.Covered {
		if c {
			b[off+(i>>6)*8+((i>>3)&7)] |= 1 << (uint(i) & 7)
		}
	}
	if p.RuleIDs != nil {
		off = len(b)
		b = append(b, make([]byte, len(p.RuleIDs)*4)...)
		for i, id := range p.RuleIDs {
			binary.LittleEndian.PutUint32(b[off+i*4:], uint32(int32(id)))
		}
	}
	*buf = b
	_, err := w.Write(b)
	return err
}

// DecodePredictions reads one predictions message. Large arrays are read
// in bounded chunks, so a hostile count cannot provoke an allocation the
// stream does not back.
func DecodePredictions(r io.Reader, lim DecodeLimits) (*Predictions, error) {
	br := getReader(r)
	defer putReader(br)
	if err := readHeader(br, msgPredictions); err != nil {
		return nil, err
	}
	y, err := readString(br, maxStringLen)
	if err != nil {
		return nil, err
	}
	var cntb [4]byte
	if _, err := io.ReadFull(br, cntb[:]); err != nil {
		return nil, formatErr("short count: %v", err)
	}
	count := int(binary.LittleEndian.Uint32(cntb[:]))
	if count > lim.maxRows() {
		return nil, formatErr("prediction count %d exceeds cap %d", count, lim.maxRows())
	}
	flags, err := br.ReadByte()
	if err != nil {
		return nil, formatErr("short flags: %v", err)
	}
	if flags&^byte(1) != 0 {
		return nil, formatErr("unknown prediction flags %#x", flags)
	}
	p := &Predictions{Y: y}
	raw, err := readChunked(br, count*8)
	if err != nil {
		return nil, err
	}
	p.Values = make([]float64, count)
	for i := range p.Values {
		p.Values[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	bitmap, err := readChunked(br, bitmapWords(count)*8)
	if err != nil {
		return nil, err
	}
	p.Covered = make([]bool, count)
	for i := range p.Covered {
		p.Covered[i] = bitmap[(i>>6)*8+((i>>3)&7)]&(1<<(uint(i)&7)) != 0
	}
	if flags&1 != 0 {
		raw, err := readChunked(br, count*4)
		if err != nil {
			return nil, err
		}
		p.RuleIDs = make([]int, count)
		for i := range p.RuleIDs {
			p.RuleIDs[i] = int(int32(binary.LittleEndian.Uint32(raw[i*4:])))
		}
	}
	return p, nil
}

// readChunked reads exactly n bytes, growing the result as data actually
// arrives (64 KiB steps) instead of allocating n upfront.
func readChunked(br io.Reader, n int) ([]byte, error) {
	if n < 0 {
		return nil, formatErr("negative length")
	}
	const step = 64 << 10
	out := make([]byte, 0, min(n, step))
	for len(out) < n {
		take := min(n-len(out), step)
		off := len(out)
		out = append(out, make([]byte, take)...)
		if _, err := io.ReadFull(br, out[off:]); err != nil {
			return nil, formatErr("short payload: %v", err)
		}
	}
	return out, nil
}

// Violation is one (tuple, rule) constraint breach on the wire, with the
// optional repair value (the first covering rule's prediction).
type Violation struct {
	Tuple     int
	Rule      int
	Observed  float64
	Predicted float64
	Excess    float64
	Repair    *float64
}

// CheckReport is the /v1/check result.
type CheckReport struct {
	Checked    int
	Violations []Violation
}

// EncodeCheck writes rep as one check message.
func EncodeCheck(w io.Writer, rep *CheckReport) error {
	buf := getBuf()
	defer putBuf(buf)
	b := appendHeader((*buf)[:0], msgCheck)
	b = binary.LittleEndian.AppendUint32(b, uint32(rep.Checked))
	b = binary.AppendUvarint(b, uint64(len(rep.Violations)))
	for i := range rep.Violations {
		v := &rep.Violations[i]
		b = binary.AppendUvarint(b, uint64(v.Tuple))
		b = binary.AppendUvarint(b, uint64(v.Rule))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.Observed))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.Predicted))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.Excess))
		if v.Repair != nil {
			b = append(b, 1)
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(*v.Repair))
		} else {
			b = append(b, 0)
		}
	}
	*buf = b
	_, err := w.Write(b)
	return err
}

// DecodeCheck reads one check message. Violations are appended as records
// actually parse, so the count varint cannot drive allocation.
func DecodeCheck(r io.Reader, lim DecodeLimits) (*CheckReport, error) {
	br := getReader(r)
	defer putReader(br)
	if err := readHeader(br, msgCheck); err != nil {
		return nil, err
	}
	var cntb [4]byte
	if _, err := io.ReadFull(br, cntb[:]); err != nil {
		return nil, formatErr("short count: %v", err)
	}
	rep := &CheckReport{Checked: int(binary.LittleEndian.Uint32(cntb[:]))}
	n, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		var v Violation
		tuple, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		rule, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		var f [25]byte // observed + predicted + excess + repair flag
		if _, err := io.ReadFull(br, f[:]); err != nil {
			return nil, formatErr("short violation: %v", err)
		}
		v.Tuple = int(tuple)
		v.Rule = int(rule)
		v.Observed = math.Float64frombits(binary.LittleEndian.Uint64(f[0:]))
		v.Predicted = math.Float64frombits(binary.LittleEndian.Uint64(f[8:]))
		v.Excess = math.Float64frombits(binary.LittleEndian.Uint64(f[16:]))
		switch f[24] {
		case 0:
		case 1:
			var rb [8]byte
			if _, err := io.ReadFull(br, rb[:]); err != nil {
				return nil, formatErr("short repair: %v", err)
			}
			rv := math.Float64frombits(binary.LittleEndian.Uint64(rb[:]))
			v.Repair = &rv
		default:
			return nil, formatErr("bad repair flag %d", f[24])
		}
		rep.Violations = append(rep.Violations, v)
	}
	return rep, nil
}

// ImputeReport is the /v1/impute result: fill statistics plus the completed
// batch, re-encoded in the same columnar dialect as requests.
type ImputeReport struct {
	Column  string
	Imputed int
	Failed  int
	Batch   *Batch
}

// EncodeImpute writes rep as one impute message: a small header followed by
// the completed batch's schema section and row frames.
func EncodeImpute(w io.Writer, rep *ImputeReport, opt EncodeOptions) error {
	if err := validateBatch(rep.Batch); err != nil {
		return err
	}
	chunk := opt.ChunkRows
	if chunk <= 0 {
		chunk = DefaultChunkRows
	}
	buf := getBuf()
	defer putBuf(buf)
	b := appendHeader((*buf)[:0], msgImpute)
	b = appendString(b, rep.Column)
	b = binary.AppendUvarint(b, uint64(rep.Imputed))
	b = binary.AppendUvarint(b, uint64(rep.Failed))
	b = appendSchema(b, rep.Batch.Schema)
	*buf = b
	if _, err := w.Write(b); err != nil {
		return err
	}
	dictSent := make([]int, rep.Batch.Schema.Cols())
	for start := 0; start < rep.Batch.Rows; start += chunk {
		end := min(start+chunk, rep.Batch.Rows)
		if err := writeFrame(w, buf, rep.Batch, start, end, dictSent); err != nil {
			return err
		}
	}
	*buf = (*buf)[:0]
	*buf = binary.LittleEndian.AppendUint32(*buf, 4)
	*buf = binary.LittleEndian.AppendUint32(*buf, 0)
	_, err := w.Write(*buf)
	return err
}

// DecodeImpute reads one impute message.
func DecodeImpute(r io.Reader, lim DecodeLimits) (*ImputeReport, error) {
	br := getReader(r)
	defer putReader(br)
	if err := readHeader(br, msgImpute); err != nil {
		return nil, err
	}
	column, err := readString(br, maxStringLen)
	if err != nil {
		return nil, err
	}
	imputed, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	failed, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	schema, err := readSchema(br, lim)
	if err != nil {
		return nil, err
	}
	b := &Batch{Schema: schema, Cols: make([]Col, schema.Cols())}
	if err := readFrames(br, b, lim); err != nil {
		return nil, err
	}
	return &ImputeReport{
		Column:  column,
		Imputed: int(imputed),
		Failed:  int(failed),
		Batch:   b,
	}, nil
}
