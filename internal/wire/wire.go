// Package wire is the binary columnar wire protocol of the serving plane:
// a compact, versioned, length-prefixed column-oriented encoding of tuple
// batches and endpoint results, built so that decoding a request is a
// near-memcpy into the columnar execution core (dataset.ColumnSet) instead
// of a tour through reflection, maps and interface boxing.
//
// BENCH_columnar.json told the story that motivated this package: batch
// classification of 1000 tuples costs ~92µs in-process while the full JSON
// /v1/predict round trip costs ~8.5ms and ~56k allocations — serialization
// was ~99% of serving latency. The format here keeps the wire shape
// isomorphic to the in-memory shape: numeric columns travel as little-endian
// 8-byte float64 lanes, categorical columns as a string dictionary plus
// 4-byte codes, and missing cells as 1-bit-per-row null bitmaps.
//
// # Stream layout (version 1)
//
//	magic    4B  "CRRW"
//	version  1B  0x01
//	msgtype  1B  0x01 batch · 0x02 predictions · 0x03 check · 0x04 impute
//
// A batch message continues with an options section (uvarint pair count,
// then length-prefixed key/value strings), a schema section (uvarint column
// count, then per column a length-prefixed name and a kind byte), and a
// sequence of length-prefixed frames:
//
//	frameLen uint32        // bytes of payload that follow
//	payload:
//	  rows uint32          // 0 = end-of-stream terminator
//	  per column, in schema order:
//	    flags    1B        // bit0: a frame-local null bitmap follows the data
//	    float64: rows × 8B little-endian lanes
//	    string:  uvarint dictAdd, dictAdd × length-prefixed strings,
//	             then rows × 4B little-endian codes (NullCode = null)
//	    bitmap:  ceil(rows/64) × 8B little-endian words, LSB-first
//
// Large batches stream as several frames — each frame carries a row chunk
// and string dictionaries grow incrementally (codes always index the
// dictionary accumulated so far), so an encoder never needs the whole batch
// in one contiguous buffer and a reader can bound per-frame memory. The
// explicit zero-row terminator distinguishes a complete stream from a
// truncated one.
//
// Decoding is defensive by construction: every length is validated against
// the bytes actually present before any allocation sized from it, frames
// are capped (DecodeLimits), codes are checked against the dictionary, and
// null numeric lanes are normalized to zero — exactly the representation
// dataset.Null() carries — so binary decoding is bitwise-identical to the
// JSON path. FuzzWireDecode holds the no-panic/no-overallocation line.
package wire

import (
	"bufio"
	"sync"
)

// ContentType is the negotiated media type of this encoding on the HTTP
// surface (Content-Type for request bodies, Accept for responses).
const ContentType = "application/x-crr-columnar"

// Version is the wire format version this package reads and writes.
const Version = 1

// magic opens every message.
var magic = [4]byte{'C', 'R', 'R', 'W'}

// Message types.
const (
	msgBatch       = 0x01
	msgPredictions = 0x02
	msgCheck       = 0x03
	msgImpute      = 0x04
)

// NullCode marks a null cell in a categorical code column, mirroring
// dataset.NullCode. It is never a valid dictionary index.
const NullCode = ^uint32(0)

// Kind is the wire type of a column.
type Kind uint8

const (
	// Float64 columns carry 8-byte little-endian lanes.
	Float64 Kind = 0
	// String columns carry dictionary codes plus a string table.
	String Kind = 1
)

// Schema names and types the columns of a batch, in wire order.
type Schema struct {
	Names []string
	Kinds []Kind
}

// Cols returns the number of columns.
func (s Schema) Cols() int { return len(s.Names) }

// Col is one column of a batch: exactly one of Floats or Codes is set,
// matching the schema kind. Nulls, when non-nil, is a 1-bit-per-row bitmap
// (LSB-first within each uint64 word) over the whole batch.
type Col struct {
	Floats []float64
	Codes  []uint32
	Dict   []string
	Nulls  []uint64
}

// IsNull reports whether row r of the column is null.
func (c *Col) IsNull(r int) bool {
	return c.Nulls != nil && c.Nulls[r>>6]&(1<<(uint(r)&63)) != 0
}

// Batch is a decoded (or to-be-encoded) columnar tuple batch plus the
// per-request options that rode in the stream header (impute column,
// fallback flag — the fields the JSON envelope carries next to "tuples").
type Batch struct {
	Schema  Schema
	Rows    int
	Cols    []Col
	Options map[string]string
}

// Option keys carried in the batch header. Values are strings; boolean
// options use "1".
const (
	// OptColumn names the imputation target column.
	OptColumn = "column"
	// OptFallback requests training-mean fills for uncovered tuples.
	OptFallback = "use_fallback"
)

// DefaultChunkRows is the frame row chunk encoders use when the caller does
// not choose one: large enough to amortize framing, small enough that a
// streaming writer holds ~a few hundred KiB per frame.
const DefaultChunkRows = 8192

// EncodeOptions parameterizes EncodeBatch.
type EncodeOptions struct {
	// ChunkRows bounds rows per frame; 0 means DefaultChunkRows.
	ChunkRows int
}

// DecodeLimits bounds decoder allocations. The zero value of each field is
// replaced by the documented default; the defaults comfortably cover the
// serving configuration (32 MiB request bodies).
type DecodeLimits struct {
	// MaxFrameBytes caps one frame payload. Default 64 MiB.
	MaxFrameBytes int
	// MaxCols caps schema width. Default 4096.
	MaxCols int
	// MaxRows caps total rows across frames. Default 1<<24.
	MaxRows int
}

func (l DecodeLimits) maxFrameBytes() int {
	if l.MaxFrameBytes <= 0 {
		return 64 << 20
	}
	return l.MaxFrameBytes
}

func (l DecodeLimits) maxCols() int {
	if l.MaxCols <= 0 {
		return 4096
	}
	return l.MaxCols
}

func (l DecodeLimits) maxRows() int {
	if l.MaxRows <= 0 {
		return 1 << 24
	}
	return l.MaxRows
}

// maxPooledBuf bounds the scratch buffers kept in the pool; one-off giant
// frames are allocated and dropped instead of pinned forever.
const maxPooledBuf = 4 << 20

// bufPool recycles frame scratch buffers across encodes/decodes — the
// sync.Pool behind the "pool frame buffers" serving contract.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64<<10); return &b }}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(b *[]byte) {
	if cap(*b) > maxPooledBuf {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// readerPool recycles the bufio readers decode wraps request bodies in.
var readerPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, 32<<10) }}

func getReader(rd interface{ Read([]byte) (int, error) }) *bufio.Reader {
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(rd)
	return br
}

func putReader(br *bufio.Reader) {
	br.Reset(nil)
	readerPool.Put(br)
}

// bitmapWords returns the uint64 word count of an n-row bitmap.
func bitmapWords(n int) int { return (n + 63) / 64 }
