package wire

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

// testBatch builds a three-column batch (float, string, float-with-nulls)
// exercising every wire feature: dictionary codes, null bitmaps on both
// kinds, and values whose bit patterns are easy to corrupt silently.
func testBatch(rows int) *Batch {
	b := &Batch{
		Schema: Schema{
			Names: []string{"Salary", "State", "Tax"},
			Kinds: []Kind{Float64, String, Float64},
		},
		Rows: rows,
		Cols: make([]Col, 3),
		Options: map[string]string{
			OptColumn:   "Tax",
			OptFallback: "1",
		},
	}
	dict := []string{"CA", "NY", "TX", "WA"}
	b.Cols[0].Floats = make([]float64, rows)
	b.Cols[1].Codes = make([]uint32, rows)
	b.Cols[1].Dict = dict
	b.Cols[2].Floats = make([]float64, rows)
	b.Cols[2].Nulls = make([]uint64, bitmapWords(rows))
	for r := 0; r < rows; r++ {
		b.Cols[0].Floats[r] = float64(r)*1.25 - 3
		if r%7 == 3 {
			b.Cols[1].Codes[r] = NullCode
			if b.Cols[1].Nulls == nil {
				b.Cols[1].Nulls = make([]uint64, bitmapWords(rows))
			}
			b.Cols[1].Nulls[r>>6] |= 1 << (uint(r) & 63)
		} else {
			b.Cols[1].Codes[r] = uint32(r % len(dict))
		}
		if r%5 == 0 {
			b.Cols[2].Nulls[r>>6] |= 1 << (uint(r) & 63)
		} else {
			b.Cols[2].Floats[r] = math.Sqrt(float64(r)) * 100
		}
	}
	return b
}

func roundTrip(t *testing.T, b *Batch, opt EncodeOptions) *Batch {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeBatch(&buf, b, opt); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeBatch(&buf, DecodeLimits{})
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

func assertBatchEqual(t *testing.T, got, want *Batch) {
	t.Helper()
	if !reflect.DeepEqual(got.Schema, want.Schema) {
		t.Fatalf("schema = %+v, want %+v", got.Schema, want.Schema)
	}
	if got.Rows != want.Rows {
		t.Fatalf("rows = %d, want %d", got.Rows, want.Rows)
	}
	if !reflect.DeepEqual(got.Options, want.Options) {
		t.Fatalf("options = %v, want %v", got.Options, want.Options)
	}
	for c := range want.Cols {
		g, w := &got.Cols[c], &want.Cols[c]
		for r := 0; r < want.Rows; r++ {
			if g.IsNull(r) != w.IsNull(r) {
				t.Fatalf("col %d row %d: null = %v, want %v", c, r, g.IsNull(r), w.IsNull(r))
			}
		}
		switch want.Schema.Kinds[c] {
		case Float64:
			for r := 0; r < want.Rows; r++ {
				wv := w.Floats[r]
				if w.IsNull(r) {
					wv = 0 // decoder normalizes null lanes
				}
				if math.Float64bits(g.Floats[r]) != math.Float64bits(wv) {
					t.Fatalf("col %d row %d: %v, want %v", c, r, g.Floats[r], wv)
				}
			}
		case String:
			if !reflect.DeepEqual(g.Dict, w.Dict) {
				t.Fatalf("col %d dict = %v, want %v", c, g.Dict, w.Dict)
			}
			for r := 0; r < want.Rows; r++ {
				if g.Codes[r] != w.Codes[r] {
					t.Fatalf("col %d row %d: code %d, want %d", c, r, g.Codes[r], w.Codes[r])
				}
			}
		}
	}
}

// TestBatchRoundTrip: a single-frame batch survives the wire bit-for-bit.
func TestBatchRoundTrip(t *testing.T) {
	want := testBatch(100)
	got := roundTrip(t, want, EncodeOptions{})
	assertBatchEqual(t, got, want)
}

// TestBatchRoundTripChunked: a batch split across many frames reassembles
// identically — codes in later frames index the dictionary from frame one,
// and per-frame null bitmaps merge at the right global row offsets.
func TestBatchRoundTripChunked(t *testing.T) {
	want := testBatch(1000)
	for _, chunk := range []int{1, 7, 64, 333, 1000, 4096} {
		got := roundTrip(t, want, EncodeOptions{ChunkRows: chunk})
		assertBatchEqual(t, got, want)
	}
}

// TestBatchRoundTripEmpty: zero rows encode as just the terminator and
// decode back to an empty batch (the serving layer rejects empties, but the
// format itself is total).
func TestBatchRoundTripEmpty(t *testing.T) {
	want := &Batch{
		Schema: Schema{Names: []string{"X"}, Kinds: []Kind{Float64}},
		Cols:   []Col{{}},
	}
	got := roundTrip(t, want, EncodeOptions{})
	if got.Rows != 0 {
		t.Fatalf("rows = %d, want 0", got.Rows)
	}
}

// TestNullLaneNormalization: whatever garbage an encoder leaves in a null
// float lane, the decoder yields exactly the dataset.Null() representation —
// a zero value plus a set null bit. This is what makes the binary path
// bitwise-identical to JSON decoding.
func TestNullLaneNormalization(t *testing.T) {
	b := &Batch{
		Schema: Schema{Names: []string{"X"}, Kinds: []Kind{Float64}},
		Rows:   2,
		Cols: []Col{{
			Floats: []float64{math.NaN(), 7},
			Nulls:  []uint64{1}, // row 0 null, lane carries NaN garbage
		}},
	}
	got := roundTrip(t, b, EncodeOptions{})
	if !got.Cols[0].IsNull(0) || got.Cols[0].IsNull(1) {
		t.Fatalf("null bits = %v,%v", got.Cols[0].IsNull(0), got.Cols[0].IsNull(1))
	}
	if got.Cols[0].Floats[0] != 0 {
		t.Fatalf("null lane = %v, want normalized 0", got.Cols[0].Floats[0])
	}
	if got.Cols[0].Floats[1] != 7 {
		t.Fatalf("live lane = %v, want 7", got.Cols[0].Floats[1])
	}
}

// TestEncodeValidation: malformed in-memory batches are refused before any
// bytes hit the wire.
func TestEncodeValidation(t *testing.T) {
	cases := []struct {
		name string
		b    *Batch
	}{
		{"kind count mismatch", &Batch{Schema: Schema{Names: []string{"a"}, Kinds: nil}}},
		{"col count mismatch", &Batch{Schema: Schema{Names: []string{"a"}, Kinds: []Kind{Float64}}}},
		{"rows without schema", &Batch{Rows: 3}},
		{"short float column", &Batch{
			Schema: Schema{Names: []string{"a"}, Kinds: []Kind{Float64}},
			Rows:   2, Cols: []Col{{Floats: []float64{1}}},
		}},
		{"code outside dict", &Batch{
			Schema: Schema{Names: []string{"a"}, Kinds: []Kind{String}},
			Rows:   1, Cols: []Col{{Codes: []uint32{5}, Dict: []string{"x"}}},
		}},
		{"short bitmap", &Batch{
			Schema: Schema{Names: []string{"a"}, Kinds: []Kind{Float64}},
			Rows:   65, Cols: []Col{{Floats: make([]float64, 65), Nulls: []uint64{0}}},
		}},
	}
	for _, c := range cases {
		if err := EncodeBatch(new(bytes.Buffer), c.b, EncodeOptions{}); err == nil {
			t.Errorf("%s: encode succeeded, want error", c.name)
		}
	}
}

// TestDecodeRejects: every malformed-stream class maps to ErrFormat, never
// a panic and never a stream-driven allocation.
func TestDecodeRejects(t *testing.T) {
	var valid bytes.Buffer
	if err := EncodeBatch(&valid, testBatch(10), EncodeOptions{}); err != nil {
		t.Fatal(err)
	}
	raw := valid.Bytes()

	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), raw...)
		return f(b)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", mutate(func(b []byte) []byte { b[0] = 'X'; return b })},
		{"bad version", mutate(func(b []byte) []byte { b[4] = 9; return b })},
		{"wrong msgtype", mutate(func(b []byte) []byte { b[5] = msgCheck; return b })},
		{"truncated header", raw[:3]},
		{"truncated mid-frame", raw[:len(raw)-20]},
		{"missing terminator", raw[:len(raw)-8]},
		{"trailing bytes in terminator", mutate(func(b []byte) []byte {
			// Grow the terminator payload by one byte.
			b[len(b)-8] = 5
			return append(b, 0)
		})},
	}
	for _, c := range cases {
		_, err := DecodeBatch(bytes.NewReader(c.data), DecodeLimits{})
		if err == nil {
			t.Errorf("%s: decode succeeded, want error", c.name)
		}
	}
}

// TestDecodeLimits: the caps bound schema width, total rows, and frame size
// regardless of what the length prefixes claim.
func TestDecodeLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeBatch(&buf, testBatch(100), EncodeOptions{ChunkRows: 10}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	if _, err := DecodeBatch(bytes.NewReader(raw), DecodeLimits{MaxCols: 2}); err == nil {
		t.Error("MaxCols=2 accepted a 3-column schema")
	}
	if _, err := DecodeBatch(bytes.NewReader(raw), DecodeLimits{MaxRows: 50}); err == nil {
		t.Error("MaxRows=50 accepted a 100-row stream")
	}
	if _, err := DecodeBatch(bytes.NewReader(raw), DecodeLimits{MaxFrameBytes: 16}); err == nil {
		t.Error("MaxFrameBytes=16 accepted a larger frame")
	}
	if _, err := DecodeBatch(bytes.NewReader(raw), DecodeLimits{}); err != nil {
		t.Errorf("default limits rejected a valid stream: %v", err)
	}
}

// TestHostileRowCount: a frame claiming 2^24-ish rows with a tiny payload is
// rejected by the minimum-row-bytes check before any row-sized allocation.
func TestHostileRowCount(t *testing.T) {
	var buf bytes.Buffer
	b := appendHeader(nil, msgBatch)
	b = append(b, 0) // no options
	b = appendSchema(b, Schema{Names: []string{"x"}, Kinds: []Kind{Float64}})
	b = append(b, 8, 0, 0, 0)             // frameLen = 8
	b = append(b, 0xff, 0xff, 0xff, 0x00) // rows = 16777215
	b = append(b, 0, 0, 0, 0)             // 4 payload bytes
	buf.Write(b)
	if _, err := DecodeBatch(&buf, DecodeLimits{}); err == nil {
		t.Fatal("hostile row count accepted")
	}
}

// TestPredictionsRoundTrip covers both explain variants.
func TestPredictionsRoundTrip(t *testing.T) {
	base := &Predictions{
		Y:       "Tax",
		Values:  []float64{1.5, -2.25, 0, math.Inf(1)},
		Covered: []bool{true, false, true, true},
	}
	withRules := &Predictions{
		Y:       base.Y,
		Values:  base.Values,
		Covered: base.Covered,
		RuleIDs: []int{3, -1, 0, 12},
	}
	for _, want := range []*Predictions{base, withRules} {
		var buf bytes.Buffer
		if err := EncodePredictions(&buf, want); err != nil {
			t.Fatal(err)
		}
		got, err := DecodePredictions(&buf, DecodeLimits{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip = %+v, want %+v", got, want)
		}
	}
}

// TestCheckRoundTrip covers violations with and without repairs.
func TestCheckRoundTrip(t *testing.T) {
	repair := 42.5
	want := &CheckReport{
		Checked: 500,
		Violations: []Violation{
			{Tuple: 3, Rule: 1, Observed: 10, Predicted: 8, Excess: 2, Repair: &repair},
			{Tuple: 499, Rule: 0, Observed: -1, Predicted: 1, Excess: 2},
		},
	}
	var buf bytes.Buffer
	if err := EncodeCheck(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheck(&buf, DecodeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip = %+v, want %+v", got, want)
	}
}

// TestImputeRoundTrip: header fields plus the embedded batch.
func TestImputeRoundTrip(t *testing.T) {
	want := &ImputeReport{
		Column:  "Tax",
		Imputed: 7,
		Failed:  2,
		Batch:   testBatch(50),
	}
	// Response batches carry no request options; only requests do.
	want.Batch.Options = nil
	var buf bytes.Buffer
	if err := EncodeImpute(&buf, want, EncodeOptions{ChunkRows: 13}); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeImpute(&buf, DecodeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Column != want.Column || got.Imputed != want.Imputed || got.Failed != want.Failed {
		t.Fatalf("header = %q/%d/%d, want %q/%d/%d",
			got.Column, got.Imputed, got.Failed, want.Column, want.Imputed, want.Failed)
	}
	assertBatchEqual(t, got.Batch, want.Batch)
}

// TestOversizedString: header strings beyond the cap are refused.
func TestOversizedString(t *testing.T) {
	b := appendHeader(nil, msgBatch)
	b = append(b, 1) // one option pair
	b = appendString(b, strings.Repeat("k", maxStringLen+1))
	if _, err := DecodeBatch(bytes.NewReader(b), DecodeLimits{}); err == nil {
		t.Fatal("oversized option key accepted")
	}
}
