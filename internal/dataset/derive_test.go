package dataset

import (
	"math"
	"testing"
)

func TestDeriveAddsColumn(t *testing.T) {
	r := sampleRelation()
	out, err := Derive(r, Attribute{Name: "X2", Kind: Numeric}, func(tp Tuple) Value {
		return Num(tp[0].Num * 2)
	})
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	if out.Schema.Len() != r.Schema.Len()+1 {
		t.Fatalf("schema width = %d", out.Schema.Len())
	}
	idx := out.Schema.MustIndex("X2")
	for i, tp := range out.Tuples {
		if tp[idx].Num != r.Tuples[i][0].Num*2 {
			t.Fatalf("row %d derived %v", i, tp[idx])
		}
	}
	// Original untouched.
	if r.Schema.Len() != 2 || len(r.Tuples[0]) != 2 {
		t.Error("Derive mutated the input relation")
	}
}

func TestDeriveDuplicateName(t *testing.T) {
	r := sampleRelation()
	if _, err := Derive(r, Attribute{Name: "X", Kind: Numeric}, func(Tuple) Value { return Num(0) }); err == nil {
		t.Fatal("duplicate column name accepted")
	}
}

func TestDeriveNumericNulls(t *testing.T) {
	r := sampleRelation()
	out, err := DeriveNumeric(r, "Phase", func(tp Tuple) (float64, bool) {
		if tp[0].Num < 5 {
			return 0, false
		}
		return math.Mod(tp[0].Num, 3), true
	})
	if err != nil {
		t.Fatal(err)
	}
	idx := out.Schema.MustIndex("Phase")
	if !out.Tuples[0][idx].Null {
		t.Error("expected null derived cell")
	}
	if out.Tuples[7][idx].Num != math.Mod(7, 3) {
		t.Errorf("derived = %v", out.Tuples[7][idx])
	}
}
