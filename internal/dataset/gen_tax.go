package dataset

import "math/rand"

// TaxConfig controls the Tax generator.
type TaxConfig struct {
	Rows  int
	Noise float64 // half-width of the uniform rounding noise on Tax
	Seed  int64
}

// DefaultTaxConfig is a scaled-down stand-in for the paper's 100k-row Tax
// dataset.
func DefaultTaxConfig() TaxConfig {
	return TaxConfig{Rows: 16000, Noise: 0.5, Seed: 4}
}

// taxFormula holds a per-state linear tax rule Tax = Rate·Salary + Base.
// Several states share a Rate and differ only in Base — exactly the
// structure the Translation inference (y = δ) exploits; the IA formula is
// the paper's own example f5(Salary) = 0.04·Salary − 230.
type taxFormula struct {
	state string
	rate  float64
	base  float64
}

var taxFormulas = []taxFormula{
	{"IA", 0.04, -230},
	{"NY", 0.04, -110}, // shares the IA slope: δ = 120 translation
	{"TX", 0.04, 0},    // flat variant of the same slope
	{"CA", 0.06, -300},
	{"WA", 0.06, -180}, // shares the CA slope
	{"FL", 0.02, 50},
	{"AZ", 0.05, -90},
	{"OR", 0.05, -20}, // shares the AZ slope
}

// maritalAdjust is a per-status additive adjustment to the tax owed; it keeps
// the per-(state, status) relation linear with the same slope, so rules
// conditioned only on state still hold with a wider bias and rules
// conditioned on both are exact.
var maritalAdjust = map[string]float64{"S": 0, "M": -50, "W": -20}

// GenerateTax builds a synthetic relational tax dataset with
// state-conditional linear tax formulas, many of which are additive
// translations of each other across states.
//
// Schema: Salary (numeric), State (categorical), MaritalStatus (categorical),
// Dependents (numeric), Tax (numeric, target), Zip (numeric), plus the
// auxiliary columns Age, YearsEmployed, Deduction, ChildCredit, StateRate,
// Withheld, City (categorical) — approaching the real dataset's width
// (Table II: 17 columns).
//
// The extra columns draw from an independent random stream so the first six
// columns are byte-identical to earlier releases of the generator.
func GenerateTax(cfg TaxConfig) *Relation {
	rng := rand.New(rand.NewSource(cfg.Seed))
	rng2 := rand.New(rand.NewSource(cfg.Seed + 1))
	schema := MustSchema(
		Attribute{Name: "Salary", Kind: Numeric},
		Attribute{Name: "State", Kind: Categorical},
		Attribute{Name: "MaritalStatus", Kind: Categorical},
		Attribute{Name: "Dependents", Kind: Numeric},
		Attribute{Name: "Tax", Kind: Numeric},
		Attribute{Name: "Zip", Kind: Numeric},
		Attribute{Name: "Age", Kind: Numeric},
		Attribute{Name: "YearsEmployed", Kind: Numeric},
		Attribute{Name: "Deduction", Kind: Numeric},
		Attribute{Name: "ChildCredit", Kind: Numeric},
		Attribute{Name: "StateRate", Kind: Numeric},
		Attribute{Name: "Withheld", Kind: Numeric},
		Attribute{Name: "City", Kind: Categorical},
	)
	rel := NewRelation(schema)
	statuses := []string{"S", "M", "W"}
	cities := []string{"Springfield", "Riverton", "Lakeside", "Hillview"}
	for i := 0; i < cfg.Rows; i++ {
		f := taxFormulas[rng.Intn(len(taxFormulas))]
		status := statuses[rng.Intn(len(statuses))]
		salary := 20000 + rng.Float64()*80000
		deps := float64(rng.Intn(5))
		tax := f.rate*salary + f.base + maritalAdjust[status] + cfg.Noise*(2*rng.Float64()-1)
		zip := 10000 + float64(rng.Intn(90000))
		age := 22 + float64(rng2.Intn(45))
		years := float64(rng2.Intn(int(age) - 18))
		deduction := 1000*deps + 500 + cfg.Noise*(2*rng2.Float64()-1)
		credit := 2000 * deps
		withheld := 0.9*tax + 200*rng2.Float64()
		city := cities[rng2.Intn(len(cities))]
		rel.MustAppend(Tuple{
			Num(salary), Str(f.state), Str(status), Num(deps), Num(tax), Num(zip),
			Num(age), Num(years), Num(deduction), Num(credit),
			Num(f.rate), Num(withheld), Str(city),
		})
	}
	return rel
}
