package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleRelation() *Relation {
	s := MustSchema(
		Attribute{Name: "X", Kind: Numeric},
		Attribute{Name: "Tag", Kind: Categorical},
	)
	r := NewRelation(s)
	for i := 0; i < 10; i++ {
		tag := "a"
		if i%2 == 1 {
			tag = "b"
		}
		r.MustAppend(Tuple{Num(float64(i)), Str(tag)})
	}
	return r
}

func TestAppendArity(t *testing.T) {
	r := sampleRelation()
	if err := r.Append(Tuple{Num(1)}); err == nil {
		t.Fatal("Append accepted wrong arity")
	}
}

func TestSelect(t *testing.T) {
	r := sampleRelation()
	sel := r.Select(func(tp Tuple) bool { return tp[1].Str == "a" })
	if sel.Len() != 5 {
		t.Fatalf("Select len = %d, want 5", sel.Len())
	}
	for _, tp := range sel.Tuples {
		if tp[1].Str != "a" {
			t.Fatal("Select kept a non-matching tuple")
		}
	}
}

func TestHead(t *testing.T) {
	r := sampleRelation()
	if got := r.Head(3).Len(); got != 3 {
		t.Errorf("Head(3) len = %d", got)
	}
	if got := r.Head(100).Len(); got != 10 {
		t.Errorf("Head(100) len = %d", got)
	}
}

func TestColumnWithNull(t *testing.T) {
	r := sampleRelation()
	r.Tuples[2] = Tuple{Null(), Str("a")}
	col := r.Column(0)
	if !math.IsNaN(col[2]) {
		t.Error("null cell did not map to NaN")
	}
	if col[3] != 3 {
		t.Errorf("col[3] = %v, want 3", col[3])
	}
}

func TestDomainSortedDistinct(t *testing.T) {
	r := sampleRelation()
	r.MustAppend(Tuple{Num(3), Str("a")}) // duplicate value
	d := r.Domain(0)
	if len(d) != 10 {
		t.Fatalf("Domain len = %d, want 10 distinct", len(d))
	}
	for i := 1; i < len(d); i++ {
		if d[i-1] >= d[i] {
			t.Fatal("Domain not strictly sorted")
		}
	}
}

func TestCategoricalDomain(t *testing.T) {
	r := sampleRelation()
	d := r.CategoricalDomain(1)
	if len(d) != 2 || d[0] != "a" || d[1] != "b" {
		t.Fatalf("CategoricalDomain = %v", d)
	}
}

func TestSplitFractions(t *testing.T) {
	r := sampleRelation()
	tr, te := r.Split(0.7)
	if tr.Len() != 7 || te.Len() != 3 {
		t.Fatalf("Split(0.7) = %d/%d", tr.Len(), te.Len())
	}
	tr, te = r.Split(-1)
	if tr.Len() != 0 || te.Len() != 10 {
		t.Fatalf("Split(-1) = %d/%d", tr.Len(), te.Len())
	}
	tr, te = r.Split(2)
	if tr.Len() != 10 || te.Len() != 0 {
		t.Fatalf("Split(2) = %d/%d", tr.Len(), te.Len())
	}
}

func TestMaskMissing(t *testing.T) {
	r := sampleRelation()
	masked := r.MaskMissing(0, 0.3, rand.New(rand.NewSource(7)))
	if len(masked) != 3 {
		t.Fatalf("masked %d cells, want 3", len(masked))
	}
	for _, i := range masked {
		if !r.Tuples[i][0].Null {
			t.Errorf("tuple %d not masked", i)
		}
	}
	// Non-masked rows untouched.
	nulls := 0
	for _, tp := range r.Tuples {
		if tp[0].Null {
			nulls++
		}
	}
	if nulls != 3 {
		t.Errorf("found %d nulls, want 3", nulls)
	}
}

func TestSortByColumnNullsLast(t *testing.T) {
	r := sampleRelation()
	r.Tuples[0] = Tuple{Null(), Str("a")}
	r.Shuffle(rand.New(rand.NewSource(1)))
	r.SortByColumn(0)
	last := r.Tuples[len(r.Tuples)-1]
	if !last[0].Null {
		t.Fatal("null not sorted last")
	}
	for i := 2; i < r.Len()-1; i++ {
		if r.Tuples[i-1][0].Num > r.Tuples[i][0].Num {
			t.Fatal("not sorted ascending")
		}
	}
}

func TestCloneDeep(t *testing.T) {
	r := sampleRelation()
	c := r.Clone()
	c.Tuples[0][0] = Num(999)
	if r.Tuples[0][0].Num == 999 {
		t.Error("Clone shares tuples")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := sampleRelation()
	r.Tuples[4] = Tuple{Null(), Str("b")}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if back.Len() != r.Len() {
		t.Fatalf("round trip len %d, want %d", back.Len(), r.Len())
	}
	if back.Schema.Attr(0).Kind != Numeric || back.Schema.Attr(1).Kind != Categorical {
		t.Fatal("kinds not inferred")
	}
	for i, tp := range back.Tuples {
		want := r.Tuples[i]
		if tp[0].Null != want[0].Null || (!tp[0].Null && tp[0].Num != want[0].Num) {
			t.Errorf("row %d numeric mismatch: %+v vs %+v", i, tp[0], want[0])
		}
		if tp[1].Str != want[1].Str {
			t.Errorf("row %d categorical mismatch", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("")); err == nil {
		t.Error("empty csv accepted")
	}
}

// Property: CSV round trip preserves numeric columns for random relations.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := MustSchema(Attribute{Name: "A", Kind: Numeric}, Attribute{Name: "B", Kind: Numeric})
		r := NewRelation(s)
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			r.MustAppend(Tuple{Num(rng.NormFloat64() * 1e3), Num(rng.NormFloat64())})
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, r); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil || back.Len() != r.Len() {
			return false
		}
		for i := range back.Tuples {
			if back.Tuples[i][0].Num != r.Tuples[i][0].Num || back.Tuples[i][1].Num != r.Tuples[i][1].Num {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
