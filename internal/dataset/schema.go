// Package dataset provides the relational substrate for CRR discovery:
// typed schemas, tuples, relations, CSV serialization, and deterministic
// synthetic generators standing in for the paper's five evaluation datasets
// (BirdMap, AirQuality, Electricity, Tax, Abalone).
package dataset

import (
	"errors"
	"fmt"
)

// Kind is the type of an attribute.
type Kind int

const (
	// Numeric attributes carry float64 values; regression targets and
	// translated attributes must be numeric.
	Numeric Kind = iota
	// Categorical attributes carry string values; they participate in
	// equality predicates only.
	Categorical
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Categorical:
		return "categorical"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Attribute is a named, typed column of a relation schema.
type Attribute struct {
	Name string
	Kind Kind
}

// Schema describes the columns of a relation. A Schema is immutable after
// construction; the attribute order defines tuple layout.
type Schema struct {
	attrs []Attribute
	index map[string]int
}

// ErrUnknownAttribute is returned when an attribute name is not in a schema.
var ErrUnknownAttribute = errors.New("dataset: unknown attribute")

// ErrDuplicateAttribute is returned when a schema is built with a repeated
// attribute name.
var ErrDuplicateAttribute = errors.New("dataset: duplicate attribute")

// NewSchema builds a schema from attributes, rejecting duplicates.
func NewSchema(attrs ...Attribute) (*Schema, error) {
	s := &Schema{attrs: append([]Attribute(nil), attrs...), index: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if _, dup := s.index[a.Name]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateAttribute, a.Name)
		}
		s.index[a.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; intended for generators and
// tests where the schema is a literal.
func MustSchema(attrs ...Attribute) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.attrs) }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Schema) Attrs() []Attribute { return append([]Attribute(nil), s.attrs...) }

// Index returns the position of the named attribute.
func (s *Schema) Index(name string) (int, error) {
	i, ok := s.index[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownAttribute, name)
	}
	return i, nil
}

// MustIndex is Index that panics on unknown names.
func (s *Schema) MustIndex(name string) int {
	i, err := s.Index(name)
	if err != nil {
		panic(err)
	}
	return i
}

// NumericIndices returns the positions of all numeric attributes, in order.
func (s *Schema) NumericIndices() []int {
	var out []int
	for i, a := range s.attrs {
		if a.Kind == Numeric {
			out = append(out, i)
		}
	}
	return out
}

// Value is one cell of a tuple. For Numeric attributes Num carries the value;
// for Categorical attributes Str does. Null marks a missing cell.
type Value struct {
	Num  float64
	Str  string
	Null bool
}

// Num returns a non-null numeric value.
func Num(v float64) Value { return Value{Num: v} }

// Str returns a non-null categorical value.
func Str(v string) Value { return Value{Str: v} }

// Null returns a missing value.
func Null() Value { return Value{Null: true} }

// Tuple is one row; its layout follows the schema attribute order.
type Tuple []Value

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }
