package dataset

import (
	"fmt"
)

// Assembly and materialization: the bridges between pre-decoded columnar
// payloads (the binary wire protocol) and the ColumnSet execution core, and
// back to row-major tuples for the few consumers that still need them
// (imputation fills, repair suggestions). AssembleColumnSet adopts the
// caller's slices without copying — decoding a wire request into the
// columnar fast path is a validation pass, not a data movement.

// AssembledColumn carries one decoded column destined for a ColumnSet.
// Exactly one of Floats (numeric attributes) or Codes+Dict (categorical
// attributes) is set, matching the schema kind at its position. Nulls, when
// non-nil, is a 1-bit-per-row bitmap (LSB-first per uint64 word).
type AssembledColumn struct {
	Floats []float64
	Codes  []uint32
	Dict   []string
	Nulls  []uint64
}

// AssembleColumnSet builds a ColumnSet over schema directly from decoded
// column payloads, one AssembledColumn per attribute in schema order. The
// slices are adopted, not copied; callers must not mutate them afterwards.
//
// The result is normalized to exactly the representation NewColumnSet
// produces from tuples, so every downstream consumer (vectorized filters,
// PredictView, ViolationsColumns) behaves bitwise-identically to the
// tuple-decoded path:
//
//   - numeric lanes under a null bit are forced to 0 (what Null() carries);
//   - categorical null cells hold NullCode and set their null bit, in both
//     directions;
//   - all-zero bitmaps are dropped (HasNulls stays false for clean columns);
//   - codes are validated against the dictionary.
func AssembleColumnSet(schema *Schema, rows int, cols []AssembledColumn) (*ColumnSet, error) {
	if len(cols) != schema.Len() {
		return nil, fmt.Errorf("dataset: %d columns for a %d-attribute schema", len(cols), schema.Len())
	}
	cs := &ColumnSet{
		Schema: schema,
		rows:   rows,
		num:    make([][]float64, schema.Len()),
		codes:  make([][]uint32, schema.Len()),
		dicts:  make([][]string, schema.Len()),
		lookup: make([]map[string]uint32, schema.Len()),
		nulls:  make([][]uint64, schema.Len()),
	}
	words := (rows + 63) / 64
	for a := range cols {
		col := &cols[a]
		attr := schema.Attr(a)
		nulls := col.Nulls
		if nulls != nil && len(nulls) < words {
			return nil, fmt.Errorf("dataset: attribute %q null bitmap has %d words for %d rows", attr.Name, len(nulls), rows)
		}
		isNull := func(r int) bool {
			return nulls != nil && nulls[r>>6]&(1<<(uint(r)&63)) != 0
		}
		switch attr.Kind {
		case Numeric:
			if len(col.Floats) != rows {
				return nil, fmt.Errorf("dataset: attribute %q has %d lanes for %d rows", attr.Name, len(col.Floats), rows)
			}
			if nulls != nil {
				for r := 0; r < rows; r++ {
					if isNull(r) {
						col.Floats[r] = 0
					}
				}
			}
			cs.num[a] = col.Floats
		case Categorical:
			if len(col.Codes) != rows {
				return nil, fmt.Errorf("dataset: attribute %q has %d codes for %d rows", attr.Name, len(col.Codes), rows)
			}
			for r, code := range col.Codes {
				switch {
				case isNull(r):
					col.Codes[r] = NullCode
				case code == NullCode:
					// A null cell announced only through its code: reflect
					// it into the bitmap so IsNull agrees.
					if nulls == nil {
						nulls = make([]uint64, words)
					}
					nulls[r>>6] |= 1 << (uint(r) & 63)
				case int(code) >= len(col.Dict):
					return nil, fmt.Errorf("dataset: attribute %q code %d outside dictionary of %d", attr.Name, code, len(col.Dict))
				}
			}
			cs.codes[a] = col.Codes
			cs.dicts[a] = col.Dict
			if len(col.Dict) > smallDict {
				m := make(map[string]uint32, 2*len(col.Dict))
				for j, s := range col.Dict {
					m[s] = uint32(j)
				}
				cs.lookup[a] = m
			}
		default:
			return nil, fmt.Errorf("dataset: attribute %q has unsupported kind %v", attr.Name, attr.Kind)
		}
		if nulls != nil {
			empty := true
			for _, w := range nulls[:words] {
				if w != 0 {
					empty = false
					break
				}
			}
			if !empty {
				cs.nulls[a] = nulls
			}
		}
	}
	return cs, nil
}

// AdoptColumnSet builds a ColumnSet over schema from already-normalized
// column payloads WITHOUT writing to them — the entry point for read-only
// storage such as mmap'd lanes (PROT_READ mappings fault on any store, so
// AssembleColumnSet's in-place normalization is off the table). Instead of
// normalizing, it validates that the payloads already satisfy the ColumnSet
// representation invariants and rejects any that do not:
//
//   - numeric lanes are adopted as-is (a null cell may carry any Num — the
//     bitmap is authoritative, matching NewColumnSet's raw-Value semantics);
//   - every categorical null cell must hold NullCode AND set its bitmap bit
//     (both directions);
//   - every non-null code must index into the dictionary;
//   - bitmap bits past the last row must be zero;
//   - all-zero bitmaps are dropped so HasNulls matches NewColumnSet.
//
// The categorical checks are one O(rows) pass per code lane, doubling as the
// lane-integrity scan of the out-of-core open path.
func AdoptColumnSet(schema *Schema, rows int, cols []AssembledColumn) (*ColumnSet, error) {
	if len(cols) != schema.Len() {
		return nil, fmt.Errorf("dataset: %d columns for a %d-attribute schema", len(cols), schema.Len())
	}
	if rows < 0 {
		return nil, fmt.Errorf("dataset: negative row count %d", rows)
	}
	cs := &ColumnSet{
		Schema: schema,
		rows:   rows,
		num:    make([][]float64, schema.Len()),
		codes:  make([][]uint32, schema.Len()),
		dicts:  make([][]string, schema.Len()),
		lookup: make([]map[string]uint32, schema.Len()),
		nulls:  make([][]uint64, schema.Len()),
	}
	words := (rows + 63) / 64
	for a := range cols {
		col := &cols[a]
		attr := schema.Attr(a)
		nulls := col.Nulls
		if nulls != nil {
			if len(nulls) < words {
				return nil, fmt.Errorf("dataset: attribute %q null bitmap has %d words for %d rows", attr.Name, len(nulls), rows)
			}
			if tail := rows & 63; tail != 0 && words > 0 && nulls[words-1]&^((1<<uint(tail))-1) != 0 {
				return nil, fmt.Errorf("dataset: attribute %q null bitmap has bits past row %d", attr.Name, rows)
			}
			empty := true
			for _, w := range nulls[:words] {
				if w != 0 {
					empty = false
					break
				}
			}
			if empty {
				nulls = nil
			}
		}
		isNull := func(r int) bool {
			return nulls != nil && nulls[r>>6]&(1<<(uint(r)&63)) != 0
		}
		switch attr.Kind {
		case Numeric:
			if len(col.Floats) != rows {
				return nil, fmt.Errorf("dataset: attribute %q has %d lanes for %d rows", attr.Name, len(col.Floats), rows)
			}
			cs.num[a] = col.Floats
		case Categorical:
			if len(col.Codes) != rows {
				return nil, fmt.Errorf("dataset: attribute %q has %d codes for %d rows", attr.Name, len(col.Codes), rows)
			}
			for r, code := range col.Codes {
				switch {
				case code == NullCode:
					if !isNull(r) {
						return nil, fmt.Errorf("dataset: attribute %q row %d holds NullCode without a null bit", attr.Name, r)
					}
				case isNull(r):
					return nil, fmt.Errorf("dataset: attribute %q row %d is null but holds code %d", attr.Name, r, code)
				case int(code) >= len(col.Dict):
					return nil, fmt.Errorf("dataset: attribute %q code %d outside dictionary of %d", attr.Name, code, len(col.Dict))
				}
			}
			cs.codes[a] = col.Codes
			cs.dicts[a] = col.Dict
			if len(col.Dict) > smallDict {
				m := make(map[string]uint32, 2*len(col.Dict))
				for j, s := range col.Dict {
					m[s] = uint32(j)
				}
				cs.lookup[a] = m
			}
		default:
			return nil, fmt.Errorf("dataset: attribute %q has unsupported kind %v", attr.Name, attr.Kind)
		}
		cs.nulls[a] = nulls
	}
	return cs, nil
}

// AllNullColumn returns an AssembledColumn of n null cells for attribute
// kind k — what a wire batch that omits a schema attribute decodes to,
// mirroring the JSON convention that an absent key means missing.
func AllNullColumn(k Kind, n int) AssembledColumn {
	col := AssembledColumn{Nulls: make([]uint64, (n+63)/64)}
	for i := range col.Nulls {
		col.Nulls[i] = ^uint64(0)
	}
	if w := n & 63; w != 0 && n > 0 {
		col.Nulls[len(col.Nulls)-1] = (1 << uint(w)) - 1
	}
	if k == Numeric {
		col.Floats = make([]float64, n)
	} else {
		col.Codes = make([]uint32, n)
		for i := range col.Codes {
			col.Codes[i] = NullCode
		}
	}
	return col
}

// MaterializeRow rebuilds row r as a schema-ordered Tuple, inverting the
// columnar encoding exactly: null bits become Null() (Num 0, Str ""),
// numeric lanes become Num, codes become Str through the dictionary. Every
// column must be populated (a ColumnSet from NewColumnSetAttrs with a
// restricted attribute list cannot be materialized).
func (cs *ColumnSet) MaterializeRow(r int) Tuple {
	t := make(Tuple, cs.Schema.Len())
	cs.materializeInto(t, r)
	return t
}

func (cs *ColumnSet) materializeInto(t Tuple, r int) {
	for a := 0; a < cs.Schema.Len(); a++ {
		if cs.IsNull(a, r) {
			t[a] = Null()
			continue
		}
		if col := cs.num[a]; col != nil {
			t[a] = Num(col[r])
			continue
		}
		code := cs.codes[a][r]
		if code == NullCode {
			t[a] = Null()
			continue
		}
		t[a] = Str(cs.dicts[a][code])
	}
}

// Materialize rebuilds the whole ColumnSet as a row-major Relation with a
// single backing tuple allocation — the bridge back to the consumers that
// mutate tuples in place (impute.Fill).
func (cs *ColumnSet) Materialize() *Relation {
	width := cs.Schema.Len()
	backing := make([]Value, cs.rows*width)
	tuples := make([]Tuple, cs.rows)
	for r := 0; r < cs.rows; r++ {
		t := Tuple(backing[r*width : (r+1)*width : (r+1)*width])
		cs.materializeInto(t, r)
		tuples[r] = t
	}
	return &Relation{Schema: cs.Schema, Tuples: tuples}
}
