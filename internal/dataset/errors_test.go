package dataset

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Regression tests for the crash-surface sweep: malformed input through the
// load paths must come back as typed sentinel errors, never as panics, and
// the sliding window must survive degenerate capacities and expiry batches.

func TestAppendArityMismatchSentinel(t *testing.T) {
	schema := appendTestSchema()
	rel := NewRelation(schema)
	if err := rel.Append(Tuple{Num(1)}); !errors.Is(err, ErrArityMismatch) {
		t.Fatalf("Relation.Append: got %v, want ErrArityMismatch", err)
	}
	app := NewColumnAppender(schema)
	if _, err := app.Append(Tuple{Num(1), Num(2)}); !errors.Is(err, ErrArityMismatch) {
		t.Fatalf("ColumnAppender.Append: got %v, want ErrArityMismatch", err)
	}
}

func TestReadCSVMalformedSentinel(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"ragged row":      "a,b\n1,2\n3\n",
		"truncated quote": "a,b\n\"unterminated,2\n",
		"bad numeric":     "a,b\n1,2\n1,3\nx?,4\n",
	}
	for name, input := range cases {
		// The kind-inference pass sees the whole column, so "bad numeric"
		// needs the failure to appear after inference has committed to
		// Numeric — simulate a file whose tail was overwritten.
		rel, err := ReadCSV(strings.NewReader(input))
		if name == "bad numeric" {
			// Every cell of column a parses or flips the kind, so this input
			// actually loads as categorical; it documents that kind inference
			// absorbs stray cells rather than erroring.
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if k := rel.Schema.Attr(0).Kind; k != Categorical {
				t.Fatalf("%s: kind %v, want categorical fallback", name, k)
			}
			continue
		}
		if !errors.Is(err, ErrMalformedCSV) {
			t.Fatalf("%s: got %v, want ErrMalformedCSV", name, err)
		}
	}
}

func TestSlidingWindowRejectsNonPositiveCapacity(t *testing.T) {
	for _, capacity := range []int{0, -1, -100} {
		if _, err := NewSlidingWindow(appendTestSchema(), capacity); err == nil {
			t.Fatalf("capacity %d accepted", capacity)
		}
	}
}

// TestSlidingWindowExpireOldest is the batch-expiry property test: any
// interleaving of appends and ExpireOldest calls — including batches larger
// than the resident rows — must leave the window equivalent to its live
// rows, with the columnar mirror bitwise-identical to a direct rebuild after
// compaction.
func TestSlidingWindowExpireOldest(t *testing.T) {
	schema := appendTestSchema()
	f := func(seed int64, capRaw uint8, nRaw uint16) bool {
		capacity := int(capRaw)%97 + 3
		n := int(nRaw)%1500 + 1
		rng := rand.New(rand.NewSource(seed))
		w, err := NewSlidingWindow(schema, capacity)
		if err != nil {
			return false
		}
		var live []Tuple
		for i := 0; i < n; i++ {
			switch rng.Intn(4) {
			case 0: // batch expiry, sometimes oversized, sometimes degenerate
				req := rng.Intn(2*capacity+2) - 1 // includes -1 and > live
				want := req
				if want < 0 {
					want = 0
				}
				if want > len(live) {
					want = len(live)
				}
				if got := w.ExpireOldest(req); got != want {
					return false
				}
				live = live[len(live)-w.Len():]
			default:
				tp := randomTuple(rng, i)
				if _, err := w.Append(tp); err != nil {
					return false
				}
				live = append(live, tp)
				if len(live) > capacity {
					live = live[1:]
				}
			}
			if w.Len() != len(live) || len(w.Sel()) != w.Len() {
				return false
			}
		}
		// Mid-stream equivalence: every live row readable through (Cols, Sel).
		cols, sel := w.Cols(), w.Sel()
		for i, r := range sel {
			if i > 0 && r <= sel[i-1] {
				return false
			}
			v := live[i][0]
			if cols.IsNull(0, r) != v.Null || cols.Float(0)[r] != v.Num {
				return false
			}
		}
		w.Compact()
		direct := NewColumnSet(&Relation{Schema: schema, Tuples: live})
		return columnSetsBitwiseEqual(w.Cols(), direct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSlidingWindowExpireAll: draining the whole window (and more) must not
// underflow, and the emptied window must keep working.
func TestSlidingWindowExpireAll(t *testing.T) {
	schema := appendTestSchema()
	w, err := NewSlidingWindow(schema, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 20; i++ {
		if _, err := w.Append(randomTuple(rng, i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.ExpireOldest(1000); got != 8 {
		t.Fatalf("oversized expiry evicted %d, want 8", got)
	}
	if w.Len() != 0 || len(w.Sel()) != 0 {
		t.Fatalf("window not empty after full expiry: len %d", w.Len())
	}
	if got := w.ExpireOldest(3); got != 0 {
		t.Fatalf("expiry on empty window evicted %d", got)
	}
	if _, err := w.Append(randomTuple(rng, 99)); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 1 {
		t.Fatalf("append after full expiry: len %d", w.Len())
	}
}

func TestAdoptColumnSetValidates(t *testing.T) {
	schema := MustSchema(
		Attribute{Name: "x", Kind: Numeric},
		Attribute{Name: "c", Kind: Categorical},
	)
	goodNum := AssembledColumn{Floats: []float64{1, 2, 3}}
	goodCat := AssembledColumn{Codes: []uint32{0, 1, 0}, Dict: []string{"a", "b"}}

	cs, err := AdoptColumnSet(schema, 3, []AssembledColumn{goodNum, goodCat})
	if err != nil {
		t.Fatal(err)
	}
	if cs.Len() != 3 || cs.HasNulls(0) || cs.HasNulls(1) {
		t.Fatal("clean columns misadopted")
	}

	cases := []struct {
		name string
		cols []AssembledColumn
	}{
		{"short lane", []AssembledColumn{{Floats: []float64{1}}, goodCat}},
		{"short codes", []AssembledColumn{goodNum, {Codes: []uint32{0}, Dict: []string{"a"}}}},
		{"code out of dict", []AssembledColumn{goodNum, {Codes: []uint32{0, 5, 0}, Dict: []string{"a"}}}},
		{"nullcode without bit", []AssembledColumn{goodNum, {Codes: []uint32{0, NullCode, 0}, Dict: []string{"a"}}}},
		{"null bit without nullcode", []AssembledColumn{goodNum, {Codes: []uint32{0, 0, 0}, Dict: []string{"a"}, Nulls: []uint64{0b010}}}},
		{"bits past last row", []AssembledColumn{{Floats: []float64{1, 2, 3}, Nulls: []uint64{0b1000}}, goodCat}},
		{"short bitmap", []AssembledColumn{goodNum, {Codes: []uint32{0, 0, 0}, Dict: []string{"a"}, Nulls: []uint64{}}}},
	}
	for _, tc := range cases {
		// Short bitmap: an empty non-nil word slice for 3 rows (needs 1 word).
		if tc.name == "short bitmap" {
			tc.cols[1].Nulls = make([]uint64, 0, 1) // non-nil, zero words
		}
		if _, err := AdoptColumnSet(schema, 3, tc.cols); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}

	// Valid nulls adopt without mutating the payload (the mmap contract).
	lane := []float64{1, 7, 3}
	bm := []uint64{0b010}
	cs, err = AdoptColumnSet(schema, 3, []AssembledColumn{
		{Floats: lane, Nulls: bm},
		{Codes: []uint32{0, NullCode, 0}, Dict: []string{"a"}, Nulls: []uint64{0b010}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cs.IsNull(0, 1) || !cs.IsNull(1, 1) {
		t.Fatal("null bits lost")
	}
	if lane[1] != 7 {
		t.Fatal("AdoptColumnSet mutated a numeric lane under a null bit")
	}
	// All-zero bitmaps are dropped so HasNulls matches NewColumnSet.
	cs, err = AdoptColumnSet(schema, 3, []AssembledColumn{
		{Floats: []float64{1, 2, 3}, Nulls: []uint64{0}},
		goodCat,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cs.HasNulls(0) {
		t.Fatal("all-zero bitmap kept")
	}
}
