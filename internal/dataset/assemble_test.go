package dataset

import (
	"math"
	"reflect"
	"testing"
)

// assembleFromRelation rebuilds rel's columns as AssembledColumns — the
// shape a wire decode produces — so tests can hold AssembleColumnSet to the
// NewColumnSet representation over identical data.
func assembleFromRelation(rel *Relation) (int, []AssembledColumn) {
	ref := NewColumnSet(rel)
	cols := make([]AssembledColumn, rel.Schema.Len())
	for a := 0; a < rel.Schema.Len(); a++ {
		var nulls []uint64
		if ref.HasNulls(a) {
			nulls = make([]uint64, (rel.Len()+63)/64)
			for r := 0; r < rel.Len(); r++ {
				if ref.IsNull(a, r) {
					nulls[r>>6] |= 1 << (uint(r) & 63)
				}
			}
		}
		if rel.Schema.Attr(a).Kind == Numeric {
			cols[a] = AssembledColumn{Floats: append([]float64(nil), ref.Float(a)...), Nulls: nulls}
		} else {
			cols[a] = AssembledColumn{
				Codes: append([]uint32(nil), ref.Codes(a)...),
				Dict:  append([]string(nil), ref.Dict(a)...),
				Nulls: nulls,
			}
		}
	}
	return rel.Len(), cols
}

// TestAssembleMatchesNewColumnSet: assembling pre-decoded columns yields a
// ColumnSet indistinguishable from columnarizing the tuples, across all
// five evaluation generators — same floats bitwise, same codes, same null
// sets, same materialized rows.
func TestAssembleMatchesNewColumnSet(t *testing.T) {
	cfg := DefaultTaxConfig()
	cfg.Rows = 500
	for name, rel := range map[string]*Relation{
		"tax":         GenerateTax(cfg),
		"abalone":     GenerateAbalone(AbaloneConfig{Rows: 300, Seed: 7}),
		"electricity": GenerateElectricity(ElectricityConfig{Rows: 300, Seed: 7}),
	} {
		ref := NewColumnSet(rel)
		rows, cols := assembleFromRelation(rel)
		got, err := AssembleColumnSet(rel.Schema, rows, cols)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Len() != ref.Len() {
			t.Fatalf("%s: len %d, want %d", name, got.Len(), ref.Len())
		}
		for a := 0; a < rel.Schema.Len(); a++ {
			if got.HasNulls(a) != ref.HasNulls(a) {
				t.Fatalf("%s col %d: HasNulls %v, want %v", name, a, got.HasNulls(a), ref.HasNulls(a))
			}
			for r := 0; r < ref.Len(); r++ {
				if got.IsNull(a, r) != ref.IsNull(a, r) {
					t.Fatalf("%s col %d row %d: null mismatch", name, a, r)
				}
			}
			if rel.Schema.Attr(a).Kind == Numeric {
				g, w := got.Float(a), ref.Float(a)
				for r := range w {
					if math.Float64bits(g[r]) != math.Float64bits(w[r]) {
						t.Fatalf("%s col %d row %d: %v, want %v", name, a, r, g[r], w[r])
					}
				}
			} else if !reflect.DeepEqual(got.Codes(a), ref.Codes(a)) || !reflect.DeepEqual(got.Dict(a), ref.Dict(a)) {
				t.Fatalf("%s col %d: codes/dict mismatch", name, a)
			}
		}
		for r := 0; r < rel.Len(); r++ {
			if !reflect.DeepEqual(got.MaterializeRow(r), rel.Tuples[r]) {
				t.Fatalf("%s row %d: materialized %v, want %v", name, r, got.MaterializeRow(r), rel.Tuples[r])
			}
		}
	}
}

// TestAssembleNormalization: a null bit forces the numeric lane to zero, a
// NullCode without a bitmap grows one, and an all-zero bitmap is dropped so
// HasNulls stays false for clean columns.
func TestAssembleNormalization(t *testing.T) {
	schema := MustSchema(
		Attribute{Name: "x", Kind: Numeric},
		Attribute{Name: "c", Kind: Categorical},
		Attribute{Name: "clean", Kind: Numeric},
	)
	cols := []AssembledColumn{
		{Floats: []float64{math.NaN(), 2, 3}, Nulls: []uint64{0b001}},
		{Codes: []uint32{0, NullCode, 1}, Dict: []string{"a", "b"}},
		{Floats: []float64{1, 2, 3}, Nulls: []uint64{0}},
	}
	cs, err := AssembleColumnSet(schema, 3, cols)
	if err != nil {
		t.Fatal(err)
	}
	if !cs.IsNull(0, 0) || cs.Float(0)[0] != 0 {
		t.Errorf("null lane not normalized: null=%v lane=%v", cs.IsNull(0, 0), cs.Float(0)[0])
	}
	if !cs.IsNull(1, 1) {
		t.Error("NullCode cell did not set its null bit")
	}
	if cs.HasNulls(2) {
		t.Error("all-zero bitmap was not dropped")
	}
	if got := cs.MaterializeRow(1); !got[0].Null == false || !got[1].Null {
		t.Errorf("row 1 = %v", got)
	}
}

// TestAssembleRejects: width, length, bitmap and dictionary mismatches fail
// loudly instead of producing a ColumnSet that indexes out of bounds later.
func TestAssembleRejects(t *testing.T) {
	schema := MustSchema(
		Attribute{Name: "x", Kind: Numeric},
		Attribute{Name: "c", Kind: Categorical},
	)
	cases := []struct {
		name string
		rows int
		cols []AssembledColumn
	}{
		{"width", 1, []AssembledColumn{{Floats: []float64{1}}}},
		{"short floats", 2, []AssembledColumn{
			{Floats: []float64{1}}, {Codes: []uint32{0, 0}, Dict: []string{"a"}}}},
		{"short codes", 2, []AssembledColumn{
			{Floats: []float64{1, 2}}, {Codes: []uint32{0}, Dict: []string{"a"}}}},
		{"code outside dict", 1, []AssembledColumn{
			{Floats: []float64{1}}, {Codes: []uint32{3}, Dict: []string{"a"}}}},
		{"short bitmap", 65, []AssembledColumn{
			{Floats: make([]float64, 65), Nulls: []uint64{0}},
			{Codes: make([]uint32, 65), Dict: []string{"a"}}}},
	}
	for _, c := range cases {
		if _, err := AssembleColumnSet(schema, c.rows, c.cols); err == nil {
			t.Errorf("%s: assemble succeeded, want error", c.name)
		}
	}
}

// TestAllNullColumn: the absent-attribute column is null at every row and
// assembles cleanly at any size, including multiples of 64.
func TestAllNullColumn(t *testing.T) {
	schema := MustSchema(
		Attribute{Name: "x", Kind: Numeric},
		Attribute{Name: "c", Kind: Categorical},
	)
	for _, n := range []int{1, 63, 64, 65, 128, 200} {
		cs, err := AssembleColumnSet(schema, n, []AssembledColumn{
			AllNullColumn(Numeric, n),
			AllNullColumn(Categorical, n),
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for a := 0; a < 2; a++ {
			for r := 0; r < n; r++ {
				if !cs.IsNull(a, r) {
					t.Fatalf("n=%d col %d row %d not null", n, a, r)
				}
			}
		}
		if got := cs.MaterializeRow(n - 1); !got[0].Null || !got[1].Null {
			t.Fatalf("n=%d: materialized last row %v, want nulls", n, got)
		}
	}
}

// TestMaterializeRoundTrip: Materialize inverts NewColumnSet exactly.
func TestMaterializeRoundTrip(t *testing.T) {
	cfg := DefaultTaxConfig()
	cfg.Rows = 200
	rel := GenerateTax(cfg)
	got := NewColumnSet(rel).Materialize()
	if got.Len() != rel.Len() {
		t.Fatalf("len %d, want %d", got.Len(), rel.Len())
	}
	for r := range rel.Tuples {
		if !reflect.DeepEqual(got.Tuples[r], rel.Tuples[r]) {
			t.Fatalf("row %d: %v, want %v", r, got.Tuples[r], rel.Tuples[r])
		}
	}
}
