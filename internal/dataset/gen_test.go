package dataset

import (
	"math"
	"testing"
)

func TestGenerateBirdMapShape(t *testing.T) {
	cfg := DefaultBirdMapConfig()
	cfg.Rows = 1000
	r := GenerateBirdMap(cfg)
	if r.Len() != 1000 {
		t.Fatalf("rows = %d, want 1000", r.Len())
	}
	if got := len(r.CategoricalDomain(r.Schema.MustIndex("BirdID"))); got != cfg.Birds {
		t.Errorf("birds = %d, want %d", got, cfg.Birds)
	}
	latIdx := r.Schema.MustIndex("Latitude")
	for _, tp := range r.Tuples {
		lat := tp[latIdx].Num
		if lat < 5 || lat > 65 {
			t.Fatalf("latitude %v out of plausible range", lat)
		}
	}
}

func TestGenerateBirdMapDeterministic(t *testing.T) {
	cfg := DefaultBirdMapConfig()
	cfg.Rows = 200
	a := GenerateBirdMap(cfg)
	b := GenerateBirdMap(cfg)
	for i := range a.Tuples {
		if a.Tuples[i][0].Num != b.Tuples[i][0].Num {
			t.Fatal("generator not deterministic for equal seeds")
		}
	}
	cfg.Seed = 99
	c := GenerateBirdMap(cfg)
	same := true
	for i := range a.Tuples {
		if a.Tuples[i][0].Num != c.Tuples[i][0].Num {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical noise")
	}
}

func TestGenerateBirdMapRecurrence(t *testing.T) {
	// The deterministic part of the trajectory must repeat with period
	// YearLength: season(d) == season(d+YearLength).
	for d := 0.0; d < YearLength; d += 7 {
		lat1, lon1 := birdSeason(d)
		lat2, lon2 := birdSeason(d) // same day-of-year next year maps to same point
		if lat1 != lat2 || lon1 != lon2 {
			t.Fatal("birdSeason not deterministic")
		}
	}
	// Plateau check: breeding season is constant latitude.
	lat1, _ := birdSeason(160)
	lat2, _ := birdSeason(230)
	if lat1 != lat2 {
		t.Errorf("breeding plateau not constant: %v vs %v", lat1, lat2)
	}
}

func TestGenerateBirdMapZeroRows(t *testing.T) {
	cfg := DefaultBirdMapConfig()
	cfg.Rows = 0
	if r := GenerateBirdMap(cfg); r.Len() != 0 {
		t.Fatal("zero rows requested but tuples generated")
	}
}

func TestGenerateAirQualityShape(t *testing.T) {
	cfg := DefaultAirQualityConfig()
	cfg.Rows = 500
	r := GenerateAirQuality(cfg)
	if r.Len() != 500 {
		t.Fatalf("rows = %d", r.Len())
	}
	if r.Schema.Len() != 18 {
		t.Fatalf("cols = %d, want 18 (Table II width)", r.Schema.Len())
	}
	// Sensor coupling: NO2 ≈ 3 + 0.5·CO within twice the noise bound (both
	// channels carry noise of half-width cfg.Noise).
	co := r.Schema.MustIndex("CO")
	no2 := r.Schema.MustIndex("NO2")
	for _, tp := range r.Tuples {
		want := 3 + 0.5*tp[co].Num
		if math.Abs(tp[no2].Num-want) > 2*cfg.Noise+1e-9 {
			t.Fatalf("NO2 decoupled from CO: %v vs %v", tp[no2].Num, want)
		}
	}
}

func TestAirQualityDailyPeriodicity(t *testing.T) {
	for h := 0.0; h < 24; h++ {
		if airQualityBase(h) != airQualityBase(h) {
			t.Fatal("airQualityBase not deterministic")
		}
	}
	if airQualityBase(2) != airQualityBase(4) {
		t.Error("night plateau not constant")
	}
	if airQualityBase(13) != airQualityBase(17) {
		t.Error("afternoon plateau not constant")
	}
	if airQualityBase(9) <= airQualityBase(6) {
		t.Error("morning ramp not increasing")
	}
}

func TestGenerateElectricityShape(t *testing.T) {
	cfg := DefaultElectricityConfig()
	cfg.Rows = 2000
	r := GenerateElectricity(cfg)
	if r.Len() != 2000 {
		t.Fatalf("rows = %d", r.Len())
	}
	gap := r.Schema.MustIndex("GlobalActivePower")
	s1 := r.Schema.MustIndex("Sub1")
	s2 := r.Schema.MustIndex("Sub2")
	s3 := r.Schema.MustIndex("Sub3")
	for _, tp := range r.Tuples {
		sum := tp[s1].Num + tp[s2].Num + tp[s3].Num + 0.3
		if math.Abs(tp[gap].Num-sum) > cfg.Noise+1e-9 {
			t.Fatalf("GAP decoupled from sub-meters: %v vs %v", tp[gap].Num, sum)
		}
	}
}

func TestElectricityRegimes(t *testing.T) {
	cases := []struct {
		minute float64
		want   int
	}{{0, 0}, {359, 0}, {360, 1}, {539, 1}, {540, 2}, {1019, 2}, {1020, 3}, {1439, 3}}
	for _, c := range cases {
		if got := electricityRegime(c.minute); got != c.want {
			t.Errorf("regime(%v) = %d, want %d", c.minute, got, c.want)
		}
	}
}

func TestGenerateTaxFormulas(t *testing.T) {
	cfg := DefaultTaxConfig()
	cfg.Rows = 3000
	r := GenerateTax(cfg)
	if r.Len() != 3000 {
		t.Fatalf("rows = %d", r.Len())
	}
	stateIdx := r.Schema.MustIndex("State")
	salaryIdx := r.Schema.MustIndex("Salary")
	taxIdx := r.Schema.MustIndex("Tax")
	statusIdx := r.Schema.MustIndex("MaritalStatus")
	formulas := make(map[string]taxFormula)
	for _, f := range taxFormulas {
		formulas[f.state] = f
	}
	for _, tp := range r.Tuples {
		f := formulas[tp[stateIdx].Str]
		want := f.rate*tp[salaryIdx].Num + f.base + maritalAdjust[tp[statusIdx].Str]
		if math.Abs(tp[taxIdx].Num-want) > cfg.Noise+1e-9 {
			t.Fatalf("state %s: tax %v, want %v ± %v", tp[stateIdx].Str, tp[taxIdx].Num, want, cfg.Noise)
		}
	}
	if got := len(r.CategoricalDomain(stateIdx)); got != len(taxFormulas) {
		t.Errorf("states = %d, want %d", got, len(taxFormulas))
	}
}

func TestGenerateAbaloneShape(t *testing.T) {
	cfg := DefaultAbaloneConfig()
	cfg.Rows = 1000
	r := GenerateAbalone(cfg)
	if r.Len() != 1000 {
		t.Fatalf("rows = %d", r.Len())
	}
	if got := len(r.CategoricalDomain(r.Schema.MustIndex("Sex"))); got != 3 {
		t.Errorf("sexes = %d, want 3", got)
	}
	// Diameter is linear in Length up to the bounded noise.
	li := r.Schema.MustIndex("Length")
	di := r.Schema.MustIndex("Diameter")
	for _, tp := range r.Tuples {
		want := 0.8*tp[li].Num - 0.02
		if math.Abs(tp[di].Num-want) > cfg.Noise+1e-9 {
			t.Fatalf("diameter decoupled: %v vs %v", tp[di].Num, want)
		}
	}
}
