package dataset

import "math/rand"

// AirQualityConfig controls the AirQuality generator.
type AirQualityConfig struct {
	Rows  int     // hourly samples
	Noise float64 // half-width of the uniform sensor noise
	Seed  int64
}

// DefaultAirQualityConfig matches the paper's 9.4k-row scale.
func DefaultAirQualityConfig() AirQualityConfig {
	return AirQualityConfig{Rows: 9400, Noise: 0.2, Seed: 2}
}

// airQualityBase evaluates the piecewise daily pollution regime for
// hour-of-day h ∈ [0,24): a low night plateau, a morning ramp, a high
// afternoon plateau and an evening ramp. Each linear piece repeats every day,
// which is exactly the recurrence CRR Translation captures with Δ = 24.
func airQualityBase(h float64) float64 {
	switch {
	case h < 6:
		return 2.0
	case h < 12:
		return 2.0 + (h-6)*(8.0-2.0)/6.0
	case h < 18:
		return 8.0
	default:
		return 8.0 - (h-18)*(8.0-2.0)/6.0
	}
}

// GenerateAirQuality builds a synthetic stand-in for the UCI AirQuality
// dataset: hourly sensor channels that are fixed linear functions of a shared
// daily-periodic pollution signal, plus bounded uniform noise. Sensor columns
// are linearly coupled, so CRRs conditioned on hour-of-day windows recover
// shared linear models across days. The column count mirrors the real
// dataset's width (Table II: 18 columns).
//
// Schema: Time (hour index), CO (target), NO2, O3, Temp, Humidity, Benzene,
// SO2, PM25, PM10, NOx, Pressure, Wind, Toluene, Xylene, NMHC, AbsHumidity,
// Station (categorical).
//
// The extra channels draw from an independent noise stream so the first
// seven columns are byte-identical to earlier releases of the generator
// (recorded experiment outputs stay valid).
func GenerateAirQuality(cfg AirQualityConfig) *Relation {
	rng := rand.New(rand.NewSource(cfg.Seed))
	rng2 := rand.New(rand.NewSource(cfg.Seed + 1))
	schema := MustSchema(
		Attribute{Name: "Time", Kind: Numeric},
		Attribute{Name: "CO", Kind: Numeric},
		Attribute{Name: "NO2", Kind: Numeric},
		Attribute{Name: "O3", Kind: Numeric},
		Attribute{Name: "Temp", Kind: Numeric},
		Attribute{Name: "Humidity", Kind: Numeric},
		Attribute{Name: "Benzene", Kind: Numeric},
		Attribute{Name: "SO2", Kind: Numeric},
		Attribute{Name: "PM25", Kind: Numeric},
		Attribute{Name: "PM10", Kind: Numeric},
		Attribute{Name: "NOx", Kind: Numeric},
		Attribute{Name: "Pressure", Kind: Numeric},
		Attribute{Name: "Wind", Kind: Numeric},
		Attribute{Name: "Toluene", Kind: Numeric},
		Attribute{Name: "Xylene", Kind: Numeric},
		Attribute{Name: "NMHC", Kind: Numeric},
		Attribute{Name: "AbsHumidity", Kind: Numeric},
		Attribute{Name: "Station", Kind: Categorical},
	)
	rel := NewRelation(schema)
	noise := func() float64 { return cfg.Noise * (2*rng.Float64() - 1) }
	noise2 := func() float64 { return cfg.Noise * (2*rng2.Float64() - 1) }
	stations := []string{"North", "Center", "South"}
	for i := 0; i < cfg.Rows; i++ {
		t := float64(i)
		h := t - 24*float64(int(t/24))
		g := airQualityBase(h)
		co := g + noise()
		no2 := 3 + 0.5*g + noise()
		o3 := 12 - 0.8*g + noise()
		temp := 10 + 1.5*g + noise()
		hum := 80 - 2*g + noise()
		benz := 0.3*g + 1 + noise()
		so2 := 0.7*g + 2 + noise2()
		pm25 := 4*g + 5 + noise2()
		pm10 := 6*g + 9 + noise2()
		nox := 1.2*g + 4 + noise2()
		pres := 1013 - 0.4*g + noise2()
		wind := 5 - 0.3*g + noise2()
		tol := 0.25*g + 0.8 + noise2()
		xyl := 0.15*g + 0.5 + noise2()
		nmhc := 0.9*g + 2 + noise2()
		abshum := 0.6*g + 6 + noise2()
		rel.MustAppend(Tuple{
			Num(t), Num(co), Num(no2), Num(o3), Num(temp), Num(hum), Num(benz),
			Num(so2), Num(pm25), Num(pm10), Num(nox), Num(pres), Num(wind),
			Num(tol), Num(xyl), Num(nmhc), Num(abshum),
			Str(stations[i%len(stations)]),
		})
	}
	return rel
}
