package dataset

import "errors"

// Typed sentinels for the data-load paths. Callers distinguish "the input is
// malformed" (a user problem: print a diagnostic, exit non-zero) from
// programming errors, and tests assert the class with errors.Is instead of
// string matching.

// ErrArityMismatch is returned when a tuple's length does not match its
// schema's attribute count.
var ErrArityMismatch = errors.New("dataset: tuple arity does not match schema")

// ErrMalformedCSV is returned when CSV input cannot be parsed into a
// relation: unreadable CSV framing, a missing header, ragged rows, or a cell
// that fails the inferred column kind. It wraps the underlying cause.
var ErrMalformedCSV = errors.New("dataset: malformed csv")
