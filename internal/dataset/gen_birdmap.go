package dataset

import "math/rand"

// BirdMapConfig controls the BirdMap generator. The zero value is not
// useful; use DefaultBirdMapConfig.
type BirdMapConfig struct {
	Rows  int     // total tuples
	Birds int     // number of distinct birds
	Years int     // number of migration years
	Noise float64 // half-width of the uniform observation noise (bounded!)
	Seed  int64
}

// DefaultBirdMapConfig mirrors the structure of the paper's BirdMap dataset
// at a laptop-friendly size.
func DefaultBirdMapConfig() BirdMapConfig {
	return BirdMapConfig{Rows: 8000, Birds: 4, Years: 3, Noise: 0.25, Seed: 1}
}

// YearLength is the synthetic year length in days. Using an exact constant
// makes the cross-year translation offset Δ = YearLength recoverable by the
// Translation inference, which is the phenomenon the paper exploits
// ("the seasonal migration of birds is similar in different years").
const YearLength = 365.0

// birdSeason evaluates the deterministic seasonal trajectory for day-of-year
// d ∈ [0, YearLength): southern plateau, northbound ramp, northern plateau,
// southbound ramp, southern plateau.
func birdSeason(d float64) (lat, lon float64) {
	const (
		southLat, northLat = 9.0, 58.0
		southLon, northLon = 20.0, 27.0
	)
	switch {
	case d < 90: // wintering in the south
		return southLat, southLon
	case d < 150: // northbound migration, linear ramp
		f := (d - 90) / 60
		return southLat + f*(northLat-southLat), southLon + f*(northLon-southLon)
	case d < 240: // breeding plateau in the north (the constant-Latitude rule)
		return northLat, northLon
	case d < 300: // southbound migration
		f := (d - 240) / 60
		return northLat - f*(northLat-southLat), northLon - f*(northLon-southLon)
	default:
		return southLat, southLon
	}
}

// GenerateBirdMap builds a synthetic stand-in for the BirdMap GPS dataset:
// per-bird seasonal trajectories repeated every YearLength days with a small
// per-bird additive latitude/longitude offset (so different birds' plateaus
// are translations of each other) and bounded uniform noise. Bounded noise is
// essential: CRR semantics bound the *maximum* bias, so unbounded noise would
// degenerate discovery to per-tuple rules.
//
// Schema: Latitude (numeric, target), Longitude (numeric), BirdID
// (categorical), Date (numeric; absolute day since epoch).
func GenerateBirdMap(cfg BirdMapConfig) *Relation {
	rng := rand.New(rand.NewSource(cfg.Seed))
	schema := MustSchema(
		Attribute{Name: "Latitude", Kind: Numeric},
		Attribute{Name: "Longitude", Kind: Numeric},
		Attribute{Name: "BirdID", Kind: Categorical},
		Attribute{Name: "Date", Kind: Numeric},
	)
	rel := NewRelation(schema)
	if cfg.Rows <= 0 || cfg.Birds <= 0 || cfg.Years <= 0 {
		return rel
	}
	names := []string{"1.Kalakotkas", "2.Maria", "3.Raivo", "4.Mart", "5.Erika", "6.Jaak", "7.Tiiu", "8.Peeter"}
	offsets := make([]float64, cfg.Birds)
	for b := range offsets {
		// Per-bird plateau offset in whole half-degrees so δ between birds is
		// an exactly representable constant.
		offsets[b] = 0.5 * float64(b)
	}
	rowsPerBird := cfg.Rows / cfg.Birds
	for b := 0; b < cfg.Birds; b++ {
		name := names[b%len(names)]
		if b >= len(names) {
			name = name + "x"
		}
		n := rowsPerBird
		if b == cfg.Birds-1 {
			n = cfg.Rows - rowsPerBird*(cfg.Birds-1)
		}
		for i := 0; i < n; i++ {
			// Spread observations uniformly over the whole tracking window.
			day := float64(cfg.Years) * YearLength * float64(i) / float64(n)
			doy := day - YearLength*float64(int(day/YearLength))
			lat, lon := birdSeason(doy)
			lat += offsets[b] + cfg.Noise*(2*rng.Float64()-1)
			lon += offsets[b]/2 + cfg.Noise*(2*rng.Float64()-1)
			rel.MustAppend(Tuple{Num(lat), Num(lon), Str(name), Num(day)})
		}
	}
	return rel
}
