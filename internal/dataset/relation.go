package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Relation is a schema plus a bag of tuples.
type Relation struct {
	Schema *Schema
	Tuples []Tuple
}

// NewRelation creates an empty relation over schema.
func NewRelation(schema *Schema) *Relation {
	return &Relation{Schema: schema}
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Append adds a tuple after checking its arity. An arity mismatch returns an
// error wrapping ErrArityMismatch.
func (r *Relation) Append(t Tuple) error {
	if len(t) != r.Schema.Len() {
		return fmt.Errorf("%w: tuple arity %d, schema arity %d", ErrArityMismatch, len(t), r.Schema.Len())
	}
	r.Tuples = append(r.Tuples, t)
	return nil
}

// MustAppend is Append that panics on arity mismatch; intended for
// generators and tests building tuples from literals. Load paths fed by
// external input (CSV, wire) must use Append and propagate the error.
func (r *Relation) MustAppend(t Tuple) {
	if err := r.Append(t); err != nil {
		panic(err)
	}
}

// Select returns a new relation holding the tuples for which keep returns
// true. Tuples are shared, not copied.
func (r *Relation) Select(keep func(Tuple) bool) *Relation {
	out := NewRelation(r.Schema)
	for _, t := range r.Tuples {
		if keep(t) {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}

// Head returns a relation with at most n leading tuples (shared backing).
func (r *Relation) Head(n int) *Relation {
	if n > len(r.Tuples) {
		n = len(r.Tuples)
	}
	return &Relation{Schema: r.Schema, Tuples: r.Tuples[:n]}
}

// Clone deep-copies the relation (tuples included). All cloned tuples share
// one backing []Value allocation, sliced per tuple with capped capacity so an
// append to one tuple cannot bleed into the next.
func (r *Relation) Clone() *Relation {
	out := NewRelation(r.Schema)
	out.Tuples = make([]Tuple, len(r.Tuples))
	total := 0
	for _, t := range r.Tuples {
		total += len(t)
	}
	backing := make([]Value, 0, total)
	for i, t := range r.Tuples {
		start := len(backing)
		backing = append(backing, t...)
		out.Tuples[i] = Tuple(backing[start:len(backing):len(backing)])
	}
	return out
}

// Column extracts the numeric column at index idx. Null cells become NaN.
func (r *Relation) Column(idx int) []float64 {
	out := make([]float64, len(r.Tuples))
	for i, t := range r.Tuples {
		if t[idx].Null {
			out[i] = math.NaN()
		} else {
			out[i] = t[idx].Num
		}
	}
	return out
}

// Domain returns the sorted distinct non-null numeric values of column idx.
func (r *Relation) Domain(idx int) []float64 {
	seen := make(map[float64]struct{})
	for _, t := range r.Tuples {
		if !t[idx].Null {
			seen[t[idx].Num] = struct{}{}
		}
	}
	out := make([]float64, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}

// CategoricalDomain returns the sorted distinct non-null string values of
// column idx.
func (r *Relation) CategoricalDomain(idx int) []string {
	seen := make(map[string]struct{})
	for _, t := range r.Tuples {
		if !t[idx].Null {
			seen[t[idx].Str] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Split partitions the relation into a training prefix of fraction frac and
// the remaining test suffix. frac is clamped into [0,1].
func (r *Relation) Split(frac float64) (train, test *Relation) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(math.Round(frac * float64(len(r.Tuples))))
	return &Relation{Schema: r.Schema, Tuples: r.Tuples[:n]},
		&Relation{Schema: r.Schema, Tuples: r.Tuples[n:]}
}

// Shuffle permutes the tuples in place using rng.
func (r *Relation) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(r.Tuples), func(i, j int) {
		r.Tuples[i], r.Tuples[j] = r.Tuples[j], r.Tuples[i]
	})
}

// MaskMissing sets fraction frac of the non-null numeric cells in column idx
// to Null, using rng for the choice. It returns the positions masked, so a
// caller can compare imputed values against the originals.
func (r *Relation) MaskMissing(idx int, frac float64, rng *rand.Rand) []int {
	var candidates []int
	for i, t := range r.Tuples {
		if !t[idx].Null {
			candidates = append(candidates, i)
		}
	}
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	n := int(math.Round(frac * float64(len(candidates))))
	masked := candidates[:n]
	for _, i := range masked {
		t := r.Tuples[i].Clone()
		t[idx] = Null()
		r.Tuples[i] = t
	}
	sort.Ints(masked)
	return masked
}

// SortByColumn stably sorts tuples ascending by the numeric column idx,
// nulls last.
func (r *Relation) SortByColumn(idx int) {
	sort.SliceStable(r.Tuples, func(i, j int) bool {
		a, b := r.Tuples[i][idx], r.Tuples[j][idx]
		if a.Null {
			return false
		}
		if b.Null {
			return true
		}
		return a.Num < b.Num
	})
}
