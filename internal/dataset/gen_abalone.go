package dataset

import "math/rand"

// AbaloneConfig controls the Abalone generator.
type AbaloneConfig struct {
	Rows  int
	Noise float64 // half-width of the uniform noise on measurements
	Seed  int64
}

// DefaultAbaloneConfig matches the real dataset's 4.2k-row scale.
func DefaultAbaloneConfig() AbaloneConfig {
	return AbaloneConfig{Rows: 4200, Noise: 0.02, Seed: 5}
}

// GenerateAbalone builds a synthetic stand-in for the UCI Abalone dataset:
// per-sex linear allometric relations between sizes, weights and ring count,
// with bounded noise. Sex-conditional slopes differ for infants, so equality
// predicates on Sex isolate distinct regression models while the adult M/F
// models are additive translations of each other.
//
// Schema: Sex (categorical), Length, Diameter, Height, WholeWeight,
// ShuckedWeight, VisceraWeight, ShellWeight, Rings (target).
func GenerateAbalone(cfg AbaloneConfig) *Relation {
	rng := rand.New(rand.NewSource(cfg.Seed))
	schema := MustSchema(
		Attribute{Name: "Sex", Kind: Categorical},
		Attribute{Name: "Length", Kind: Numeric},
		Attribute{Name: "Diameter", Kind: Numeric},
		Attribute{Name: "Height", Kind: Numeric},
		Attribute{Name: "WholeWeight", Kind: Numeric},
		Attribute{Name: "ShuckedWeight", Kind: Numeric},
		Attribute{Name: "VisceraWeight", Kind: Numeric},
		Attribute{Name: "ShellWeight", Kind: Numeric},
		Attribute{Name: "Rings", Kind: Numeric},
	)
	rel := NewRelation(schema)
	// Per-sex ring model Rings = slope·Length·20 + intercept; M and F share
	// the slope (translation δ = 1.5), infants grow on a different slope.
	ringModel := map[string][2]float64{
		"M": {0.8, 4.0},
		"F": {0.8, 5.5},
		"I": {0.5, 3.0},
	}
	sexes := []string{"M", "F", "I"}
	noise := func() float64 { return cfg.Noise * (2*rng.Float64() - 1) }
	for i := 0; i < cfg.Rows; i++ {
		sex := sexes[rng.Intn(len(sexes))]
		length := 0.2 + rng.Float64()*0.5 // shell length in paper units
		diameter := 0.8*length - 0.02 + noise()
		height := 0.3*length + 0.01 + noise()
		whole := 2.0*length - 0.3 + noise()
		if whole < 0.01 {
			whole = 0.01
		}
		shucked := 0.45*whole + noise()
		viscera := 0.22*whole + noise()
		shell := 0.28*whole + noise()
		m := ringModel[sex]
		rings := m[0]*length*20 + m[1] + 5*noise()
		rel.MustAppend(Tuple{
			Str(sex), Num(length), Num(diameter), Num(height),
			Num(whole), Num(shucked), Num(viscera), Num(shell), Num(rings),
		})
	}
	return rel
}
