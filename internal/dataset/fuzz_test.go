package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV exercises the CSV reader with arbitrary inputs: it must never
// panic, and whatever it accepts must survive a write/read round trip with
// the same shape.
func FuzzReadCSV(f *testing.F) {
	f.Add("A,B\n1,2\n3,4\n")
	f.Add("A,B\n1,x\n,\n")
	f.Add("A\n\n")
	f.Add("X,Y,Z\n1.5,-2e3,NaN\n")
	f.Add("A,A\n1,2\n")
	f.Fuzz(func(t *testing.T, input string) {
		rel, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, rel); err != nil {
			t.Fatalf("accepted relation failed to serialize: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.Len() != rel.Len() || back.Schema.Len() != rel.Schema.Len() {
			t.Fatalf("round trip changed shape: %dx%d vs %dx%d",
				back.Len(), back.Schema.Len(), rel.Len(), rel.Schema.Len())
		}
	})
}
