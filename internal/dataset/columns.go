package dataset

import "sort"

// Columnar execution substrate. A ColumnSet is the typed, column-major
// mirror of a Relation, built once and shared by every layer that evaluates
// predicates over many rows: numeric attributes become one contiguous
// []float64 each, categorical attributes are dictionary-coded into []uint32,
// and nulls live in per-column bitmaps. A View pairs a ColumnSet with a
// selection vector, so narrowing a part never copies tuples — the vectorized
// predicate filters (internal/predicate) shrink the selection in place.
//
// The cell values stored are the raw Value fields (Num / Str) of the source
// tuples, NOT a normalized encoding: a null numeric cell keeps whatever Num
// it carried (0 for Null()) and a null categorical cell maps to NullCode.
// That choice makes every columnar consumer bitwise-identical to the
// tuple-at-a-time reference path it replaces, which the parity harness
// (crrbench -compare, the property tests) asserts.

// NullCode marks a null categorical cell in a code column. It is never a
// valid dictionary code, so equality filters skip nulls without a bitmap
// check.
const NullCode = ^uint32(0)

// smallDict is the dictionary size up to which code assignment and Code
// probes use linear scans instead of a hash map.
const smallDict = 16

// ColumnSet is the columnar mirror of one Relation snapshot. It is immutable
// after construction and safe for concurrent readers. Mutating the source
// relation afterwards (imputation fills, appends) is not reflected; rebuild.
type ColumnSet struct {
	Schema *Schema
	rows   int
	// num[attr] holds the dense numeric column (nil for categorical attrs).
	num [][]float64
	// codes[attr] holds dictionary codes (nil for numeric attrs); dicts[attr]
	// maps code → value in first-appearance order.
	codes  [][]uint32
	dicts  [][]string
	lookup []map[string]uint32
	// nulls[attr] is a 1-bit-per-row null bitmap, nil when the column has no
	// null cell — the common case, which keeps numeric filters branch-light.
	nulls [][]uint64
}

// NewColumnSet builds the columnar mirror of rel, one column pass per
// attribute.
func NewColumnSet(rel *Relation) *ColumnSet {
	return NewColumnSetAttrs(rel, nil)
}

// NewColumnSetAttrs builds a columnar mirror holding only the listed
// attributes — the classification fast path, where a wide relation is served
// by rules that read a handful of columns. attrs may repeat and come in any
// order; nil means every attribute. Unlisted columns stay nil: filtering or
// gathering on one panics, so callers must list every attribute their
// predicates and models touch.
func NewColumnSetAttrs(rel *Relation, attrs []int) *ColumnSet {
	n := rel.Len()
	width := rel.Schema.Len()
	cs := &ColumnSet{
		Schema: rel.Schema,
		rows:   n,
		num:    make([][]float64, width),
		codes:  make([][]uint32, width),
		dicts:  make([][]string, width),
		lookup: make([]map[string]uint32, width),
		nulls:  make([][]uint64, width),
	}
	want := func(int) bool { return true }
	if attrs != nil {
		listed := make([]bool, width)
		for _, a := range attrs {
			listed[a] = true
		}
		want = func(a int) bool { return listed[a] }
	}
	// One pass per column, not per row: sequential writes into the dense
	// column, the kind branch hoisted out of the cell loop.
	for a := 0; a < width; a++ {
		if !want(a) {
			continue
		}
		if rel.Schema.Attr(a).Kind == Numeric {
			col := make([]float64, n)
			cs.num[a] = col
			for i, t := range rel.Tuples {
				v := t[a]
				col[i] = v.Num
				if v.Null {
					cs.setNull(a, i)
				}
			}
			continue
		}
		codes := make([]uint32, n)
		cs.codes[a] = codes
		// The dictionary is probed by linear scan while it stays small —
		// string hashing costs more than a handful of compares — and spills
		// into a map only past smallDict distinct values. A one-entry cache
		// of the previous cell skips both for runs of one category.
		var dict []string
		var lookup map[string]uint32
		lastStr, lastCode, lastOK := "", uint32(0), false
		for i, t := range rel.Tuples {
			v := t[a]
			if v.Null {
				cs.setNull(a, i)
				codes[i] = NullCode
				continue
			}
			if lastOK && v.Str == lastStr {
				codes[i] = lastCode
				continue
			}
			code, ok := uint32(0), false
			if lookup != nil {
				code, ok = lookup[v.Str]
			} else {
				for j, s := range dict {
					if s == v.Str {
						code, ok = uint32(j), true
						break
					}
				}
			}
			if !ok {
				code = uint32(len(dict))
				dict = append(dict, v.Str)
				if lookup != nil {
					lookup[v.Str] = code
				} else if len(dict) > smallDict {
					lookup = make(map[string]uint32, 2*len(dict))
					for j, s := range dict {
						lookup[s] = uint32(j)
					}
				}
			}
			codes[i] = code
			lastStr, lastCode, lastOK = v.Str, code, true
		}
		cs.dicts[a] = dict
		cs.lookup[a] = lookup
	}
	return cs
}

func (cs *ColumnSet) setNull(attr, row int) {
	if cs.nulls[attr] == nil {
		cs.nulls[attr] = make([]uint64, (cs.rows+63)/64)
	}
	cs.nulls[attr][row>>6] |= 1 << (uint(row) & 63)
}

// Len returns the number of rows.
func (cs *ColumnSet) Len() int { return cs.rows }

// Float returns the dense numeric column of attr (nil for categorical
// attributes). Null cells keep the Num their Value carried; check IsNull.
// The returned slice is shared — callers must not modify it.
func (cs *ColumnSet) Float(attr int) []float64 { return cs.num[attr] }

// Codes returns the dictionary-code column of attr (nil for numeric
// attributes). Null cells hold NullCode. Shared; do not modify.
func (cs *ColumnSet) Codes(attr int) []uint32 { return cs.codes[attr] }

// Dict returns attr's code → value dictionary in first-appearance order.
func (cs *ColumnSet) Dict(attr int) []string { return cs.dicts[attr] }

// Code returns the dictionary code of value s in column attr; ok is false
// when s never occurs in the column (no row can match an equality on it).
func (cs *ColumnSet) Code(attr int, s string) (uint32, bool) {
	if m := cs.lookup[attr]; m != nil {
		code, ok := m[s]
		return code, ok
	}
	for j, v := range cs.dicts[attr] {
		if v == s {
			return uint32(j), true
		}
	}
	return 0, false
}

// HasNulls reports whether column attr contains any null cell.
func (cs *ColumnSet) HasNulls(attr int) bool { return cs.nulls[attr] != nil }

// Nulls returns attr's null bitmap (1 bit per row, LSB-first within each
// word), or nil when the column has no nulls. Shared; do not modify.
func (cs *ColumnSet) Nulls(attr int) []uint64 { return cs.nulls[attr] }

// IsNull reports whether the cell (attr, row) is null.
func (cs *ColumnSet) IsNull(attr, row int) bool {
	b := cs.nulls[attr]
	return b != nil && b[row>>6]&(1<<(uint(row)&63)) != 0
}

// Domain returns the sorted distinct non-null values of numeric column attr
// — the columnar equivalent of Relation.Domain, used by predicate generation
// when no Relation exists (out-of-core stores).
func (cs *ColumnSet) Domain(attr int) []float64 {
	col := cs.num[attr]
	seen := make(map[float64]struct{})
	for i, v := range col {
		if cs.IsNull(attr, i) {
			continue
		}
		seen[v] = struct{}{}
	}
	out := make([]float64, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}

// CategoricalDomain returns the sorted distinct non-null values of
// categorical column attr — the columnar equivalent of
// Relation.CategoricalDomain. The dictionary already holds exactly the
// distinct non-null values, so no row scan is needed.
func (cs *ColumnSet) CategoricalDomain(attr int) []string {
	out := append([]string(nil), cs.dicts[attr]...)
	sort.Strings(out)
	return out
}

// View is a ColumnSet plus a selection vector: the columnar replacement for
// copy-on-Select sub-relations. Sel holds row indices in strictly increasing
// order; filters narrow it without touching column storage.
type View struct {
	Cols *ColumnSet
	Sel  []int
}

// View returns the full-relation view (every row selected).
func (cs *ColumnSet) View() *View {
	sel := make([]int, cs.rows)
	for i := range sel {
		sel[i] = i
	}
	return &View{Cols: cs, Sel: sel}
}

// Len returns the number of selected rows.
func (v *View) Len() int { return len(v.Sel) }

// Narrow returns a view over the same columns with a new selection. The
// selection is aliased, not copied.
func (v *View) Narrow(sel []int) *View { return &View{Cols: v.Cols, Sel: sel} }

// Gather materializes the selected rows of numeric column attr into dst
// (grown as needed) and returns it — the columnar replacement for walking
// tuples when dense access is required (regression fits, split scoring).
func (v *View) Gather(attr int, dst []float64) []float64 {
	col := v.Cols.num[attr]
	if cap(dst) < len(v.Sel) {
		dst = make([]float64, len(v.Sel))
	}
	dst = dst[:len(v.Sel)]
	for i, r := range v.Sel {
		dst[i] = col[r]
	}
	return dst
}
