package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// appendTestSchema mixes numeric and categorical columns, both nullable.
func appendTestSchema() *Schema {
	return MustSchema(
		Attribute{Name: "t", Kind: Numeric},
		Attribute{Name: "y", Kind: Numeric},
		Attribute{Name: "cat", Kind: Categorical},
		Attribute{Name: "wide", Kind: Categorical}, // > smallDict values, forces map spill
	)
}

// randomTuple draws a tuple with occasional nulls and a wide categorical
// domain (40 values > smallDict) so the dictionary spill path is exercised.
func randomTuple(rng *rand.Rand, i int) Tuple {
	cells := Tuple{Num(float64(i)), Num(rng.NormFloat64()), Str([]string{"a", "b", "c"}[rng.Intn(3)]), Str(string(rune('A' + rng.Intn(40))))}
	if rng.Intn(11) == 0 {
		cells[1] = Null()
	}
	if rng.Intn(13) == 0 {
		cells[2] = Null()
	}
	return cells
}

// sameColumnSet asserts bitwise identity of two column sets over their full
// row range: dictionaries (order included), code and numeric columns, and
// null bits per row.
func sameColumnSet(t *testing.T, got, want *ColumnSet) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("rows: got %d want %d", got.Len(), want.Len())
	}
	width := want.Schema.Len()
	for a := 0; a < width; a++ {
		gd, wd := got.Dict(a), want.Dict(a)
		if len(gd) != len(wd) {
			t.Fatalf("attr %d: dict size %d vs %d", a, len(gd), len(wd))
		}
		for i := range wd {
			if gd[i] != wd[i] {
				t.Fatalf("attr %d: dict[%d] = %q vs %q (first-appearance order broken)", a, i, gd[i], wd[i])
			}
		}
		for r := 0; r < want.Len(); r++ {
			if want.Schema.Attr(a).Kind == Numeric {
				g, w := got.Float(a)[r], want.Float(a)[r]
				if math.Float64bits(g) != math.Float64bits(w) {
					t.Fatalf("attr %d row %d: %v vs %v", a, r, g, w)
				}
			} else if got.Codes(a)[r] != want.Codes(a)[r] {
				t.Fatalf("attr %d row %d: code %d vs %d", a, r, got.Codes(a)[r], want.Codes(a)[r])
			}
			if got.IsNull(a, r) != want.IsNull(a, r) {
				t.Fatalf("attr %d row %d: null %v vs %v", a, r, got.IsNull(a, r), want.IsNull(a, r))
			}
		}
		if (got.HasNulls(a)) != (want.HasNulls(a)) {
			t.Fatalf("attr %d: HasNulls %v vs %v", a, got.HasNulls(a), want.HasNulls(a))
		}
	}
}

// TestAppenderMatchesBatchBuild: appending rows one at a time produces a
// mirror bitwise-identical to NewColumnSet over the same rows.
func TestAppenderMatchesBatchBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	schema := appendTestSchema()
	rel := NewRelation(schema)
	app := NewColumnAppender(schema)
	for i := 0; i < 500; i++ {
		tp := randomTuple(rng, i)
		rel.MustAppend(tp)
		if got := app.MustAppend(tp); got != i {
			t.Fatalf("row id %d, want %d", got, i)
		}
	}
	sameColumnSet(t, app.Cols(), NewColumnSet(rel))
}

func TestAppenderArity(t *testing.T) {
	app := NewColumnAppender(appendTestSchema())
	if _, err := app.Append(Tuple{Num(1)}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if app.Len() != 0 {
		t.Fatal("failed append mutated the appender")
	}
}

// TestSlidingWindowProperty is the append-path property test of the bugfix
// sweep: any interleaving of appends and capacity-driven expirations must
// leave the window equivalent to its live rows, and after Compact the
// columnar mirror must be bitwise-identical to building from the final rows
// directly — dict codes, null bitmaps and selection vectors included.
func TestSlidingWindowProperty(t *testing.T) {
	schema := appendTestSchema()
	f := func(seed int64, capRaw uint8, nRaw uint16) bool {
		capacity := int(capRaw)%97 + 3
		n := int(nRaw) % 2000
		rng := rand.New(rand.NewSource(seed))
		w, err := NewSlidingWindow(schema, capacity)
		if err != nil {
			return false
		}
		var live []Tuple
		for i := 0; i < n; i++ {
			tp := randomTuple(rng, i)
			expired, err := w.Append(tp)
			if err != nil {
				return false
			}
			live = append(live, tp)
			if len(live) > capacity {
				if expired == nil || &expired[0] != &live[0][0] {
					return false // must hand back exactly the evicted tuple
				}
				live = live[1:]
			} else if expired != nil {
				return false
			}
			// Invariants that must hold mid-stream, between compactions.
			if w.Len() != len(live) || len(w.Sel()) != w.Len() {
				return false
			}
		}
		// Selection strictly increasing and semantic row equality mid-stream.
		sel := w.Sel()
		cols := w.Cols()
		for i, r := range sel {
			if i > 0 && r <= sel[i-1] {
				return false
			}
			for a := 0; a < schema.Len(); a++ {
				v := live[i][a]
				if v.Null != cols.IsNull(a, r) {
					return false
				}
				if schema.Attr(a).Kind == Numeric {
					if math.Float64bits(cols.Float(a)[r]) != math.Float64bits(v.Num) {
						return false
					}
				} else if !v.Null {
					code := cols.Codes(a)[r]
					if code == NullCode || cols.Dict(a)[code] != v.Str {
						return false
					}
				} else if cols.Codes(a)[r] != NullCode {
					return false
				}
			}
		}
		// After compaction: bitwise identity with the direct build.
		w.Compact()
		direct := NewColumnSet(&Relation{Schema: schema, Tuples: live})
		if w.Cols().Len() != direct.Len() {
			return false
		}
		for i, r := range w.Sel() {
			if i != r { // identity selection after compact
				return false
			}
		}
		return columnSetsBitwiseEqual(w.Cols(), direct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// columnSetsBitwiseEqual is sameColumnSet as a predicate, for quick.Check.
func columnSetsBitwiseEqual(got, want *ColumnSet) bool {
	if got.Len() != want.Len() {
		return false
	}
	width := want.Schema.Len()
	for a := 0; a < width; a++ {
		gd, wd := got.Dict(a), want.Dict(a)
		if len(gd) != len(wd) {
			return false
		}
		for i := range wd {
			if gd[i] != wd[i] {
				return false
			}
		}
		if got.HasNulls(a) != want.HasNulls(a) {
			return false
		}
		for r := 0; r < want.Len(); r++ {
			if want.Schema.Attr(a).Kind == Numeric {
				if math.Float64bits(got.Float(a)[r]) != math.Float64bits(want.Float(a)[r]) {
					return false
				}
			} else if got.Codes(a)[r] != want.Codes(a)[r] {
				return false
			}
			if got.IsNull(a, r) != want.IsNull(a, r) {
				return false
			}
		}
	}
	return true
}

// TestSlidingWindowAutoCompactBoundsStorage: a long stream through a small
// window must keep appender storage proportional to the window, not to the
// stream.
func TestSlidingWindowAutoCompactBoundsStorage(t *testing.T) {
	schema := appendTestSchema()
	w, err := NewSlidingWindow(schema, 50)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		if _, err := w.Append(randomTuple(rng, i)); err != nil {
			t.Fatal(err)
		}
		if got := w.Cols().Len(); got > 2*50+1 {
			t.Fatalf("appender grew to %d rows for a 50-row window at step %d", got, i)
		}
	}
	if w.Len() != 50 {
		t.Fatalf("live rows %d, want 50", w.Len())
	}
}

// TestSlidingWindowFilterParity: the vectorized predicate filters over the
// window's (Cols, Sel) must select exactly the rows a tuple-at-a-time scan
// of the live rows selects — the property stream re-validation depends on.
func TestSlidingWindowFilterParity(t *testing.T) {
	schema := appendTestSchema()
	w, err := NewSlidingWindow(schema, 64)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 300; i++ {
		w.Append(randomTuple(rng, i))
	}
	cols, sel := w.Cols(), w.Sel()
	rows := w.Rows()
	// Numeric range scan against a rowwise reference.
	var wantPos []int
	for i, tp := range rows {
		if !tp[1].Null && tp[1].Num > 0 {
			wantPos = append(wantPos, i)
		}
	}
	var got []int
	col := cols.Float(1)
	for pos, r := range sel {
		if !cols.IsNull(1, r) && col[r] > 0 {
			got = append(got, pos)
		}
	}
	if len(got) != len(wantPos) {
		t.Fatalf("filter parity: %d vs %d rows", len(got), len(wantPos))
	}
	for i := range got {
		if got[i] != wantPos[i] {
			t.Fatalf("filter parity at %d: %d vs %d", i, got[i], wantPos[i])
		}
	}
}
