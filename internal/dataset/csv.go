package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV serializes the relation with a header row. Numeric cells are
// written with strconv 'g' formatting; null cells are written as empty
// strings.
func WriteCSV(w io.Writer, r *Relation) error {
	cw := csv.NewWriter(w)
	// writeRow handles the blank-line hazard: a record whose fields are all
	// empty would serialize to a blank line, which csv.Reader silently
	// skips; force a quoted empty first field so such rows (and all-empty
	// headers) survive the round trip.
	writeRow := func(cells []string, what string) error {
		empty := true
		for _, c := range cells {
			if c != "" {
				empty = false
				break
			}
		}
		if empty && len(cells) > 0 {
			cw.Flush()
			if err := cw.Error(); err != nil {
				return fmt.Errorf("dataset: write %s: %w", what, err)
			}
			line := `""` + strings.Repeat(",", len(cells)-1) + "\n"
			if _, err := io.WriteString(w, line); err != nil {
				return fmt.Errorf("dataset: write %s: %w", what, err)
			}
			return nil
		}
		if err := cw.Write(cells); err != nil {
			return fmt.Errorf("dataset: write %s: %w", what, err)
		}
		return nil
	}

	header := make([]string, r.Schema.Len())
	for i := 0; i < r.Schema.Len(); i++ {
		header[i] = r.Schema.Attr(i).Name
	}
	if err := writeRow(header, "header"); err != nil {
		return err
	}
	row := make([]string, r.Schema.Len())
	for _, t := range r.Tuples {
		for i, v := range t {
			switch {
			case v.Null:
				row[i] = ""
			case r.Schema.Attr(i).Kind == Numeric:
				row[i] = strconv.FormatFloat(v.Num, 'g', -1, 64)
			default:
				row[i] = v.Str
			}
		}
		if err := writeRow(row, "row"); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a relation produced by WriteCSV (or any headered CSV).
// Column kinds are inferred: a column is Numeric when every non-empty cell
// parses as a float, Categorical otherwise. Empty cells become Null.
//
// Truncated or corrupt input returns an error wrapping ErrMalformedCSV —
// never a panic — so CLIs can exit with a diagnostic.
func ReadCSV(r io.Reader) (*Relation, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformedCSV, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("%w: no header row", ErrMalformedCSV)
	}
	header := records[0]
	rows := records[1:]

	kinds := make([]Kind, len(header))
	for j := range header {
		kinds[j] = Numeric
		for _, row := range rows {
			cell := strings.TrimSpace(row[j])
			if cell == "" {
				continue
			}
			if _, err := strconv.ParseFloat(cell, 64); err != nil {
				kinds[j] = Categorical
				break
			}
		}
	}
	attrs := make([]Attribute, len(header))
	for j, name := range header {
		attrs[j] = Attribute{Name: name, Kind: kinds[j]}
	}
	schema, err := NewSchema(attrs...)
	if err != nil {
		return nil, err
	}
	rel := NewRelation(schema)
	for i, row := range rows {
		if len(row) != len(header) {
			return nil, fmt.Errorf("%w: row %d has %d cells, want %d", ErrMalformedCSV, i+1, len(row), len(header))
		}
		t := make(Tuple, len(row))
		for j, cell := range row {
			cell = strings.TrimSpace(cell)
			if cell == "" {
				t[j] = Null()
				continue
			}
			if kinds[j] == Numeric {
				f, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("%w: row %d col %d: %v", ErrMalformedCSV, i+1, j, err)
				}
				t[j] = Num(f)
			} else {
				t[j] = Str(cell)
			}
		}
		rel.Tuples = append(rel.Tuples, t)
	}
	return rel, nil
}
