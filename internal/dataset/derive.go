package dataset

import "fmt"

// Derive returns a new relation extending rel with a computed column —
// feature engineering such as the minute-of-day phase that turns absolute
// timestamps into a recurrence axis for CRR conditions. The function f maps
// each tuple to the new cell; existing tuples are not copied deeply (the new
// tuples share the original cells).
func Derive(rel *Relation, attr Attribute, f func(Tuple) Value) (*Relation, error) {
	attrs := append(rel.Schema.Attrs(), attr)
	schema, err := NewSchema(attrs...)
	if err != nil {
		return nil, fmt.Errorf("dataset: derive %q: %w", attr.Name, err)
	}
	out := NewRelation(schema)
	out.Tuples = make([]Tuple, len(rel.Tuples))
	for i, t := range rel.Tuples {
		nt := make(Tuple, len(t)+1)
		copy(nt, t)
		nt[len(t)] = f(t)
		out.Tuples[i] = nt
	}
	return out, nil
}

// DeriveNumeric is Derive for a numeric column computed from numeric cells;
// f receives the tuple and returns the value. Null results are allowed by
// returning ok=false.
func DeriveNumeric(rel *Relation, name string, f func(Tuple) (float64, bool)) (*Relation, error) {
	return Derive(rel, Attribute{Name: name, Kind: Numeric}, func(t Tuple) Value {
		v, ok := f(t)
		if !ok {
			return Null()
		}
		return Num(v)
	})
}
