package dataset

import "math/rand"

// ElectricityConfig controls the Electricity generator.
type ElectricityConfig struct {
	Rows  int     // minute-level samples
	Noise float64 // half-width of the uniform measurement noise
	Seed  int64
}

// DefaultElectricityConfig is a scaled-down stand-in for the 2M-row UCI
// household power dataset (DESIGN.md records the scaling).
func DefaultElectricityConfig() ElectricityConfig {
	return ElectricityConfig{Rows: 40000, Noise: 0.05, Seed: 3}
}

// electricityRegime returns the appliance regime for minute-of-day m
// ∈ [0,1440): night baseline, morning kitchen peak, daytime baseline,
// evening heating/laundry peak. Each regime has its own linear relation
// between sub-metering channels and total power, and regimes recur daily.
func electricityRegime(m float64) int {
	switch {
	case m < 360: // 00:00–06:00 night
		return 0
	case m < 540: // 06:00–09:00 morning peak
		return 1
	case m < 1020: // 09:00–17:00 daytime
		return 2
	default: // 17:00–24:00 evening peak
		return 3
	}
}

// GenerateElectricity builds a synthetic stand-in for the household
// electricity consumption dataset: minute-level tuples whose
// GlobalActivePower is a regime-specific linear function of the three
// sub-metering channels. A small number of regimes across many rows is the
// regime/row ratio that makes model sharing pay off at scale.
//
// Schema: Time (minute index), GlobalActivePower (target), Voltage,
// Intensity, Sub1, Sub2, Sub3, ReactivePower, Frequency, Sub4, PowerFactor,
// Tariff (categorical) — matching the real dataset's width (Table II: 12
// columns).
//
// The extra channels draw from an independent noise stream so the first
// seven columns are byte-identical to earlier releases of the generator.
func GenerateElectricity(cfg ElectricityConfig) *Relation {
	rng := rand.New(rand.NewSource(cfg.Seed))
	rng2 := rand.New(rand.NewSource(cfg.Seed + 1))
	schema := MustSchema(
		Attribute{Name: "Time", Kind: Numeric},
		Attribute{Name: "GlobalActivePower", Kind: Numeric},
		Attribute{Name: "Voltage", Kind: Numeric},
		Attribute{Name: "Intensity", Kind: Numeric},
		Attribute{Name: "Sub1", Kind: Numeric},
		Attribute{Name: "Sub2", Kind: Numeric},
		Attribute{Name: "Sub3", Kind: Numeric},
		Attribute{Name: "ReactivePower", Kind: Numeric},
		Attribute{Name: "Frequency", Kind: Numeric},
		Attribute{Name: "Sub4", Kind: Numeric},
		Attribute{Name: "PowerFactor", Kind: Numeric},
		Attribute{Name: "Tariff", Kind: Categorical},
	)
	rel := NewRelation(schema)
	noise := func() float64 { return cfg.Noise * (2*rng.Float64() - 1) }
	noise2 := func() float64 { return cfg.Noise * (2*rng2.Float64() - 1) }
	// Per-regime base loads (kW) for the three sub-meters.
	base := [4][3]float64{
		{0.1, 0.1, 0.5}, // night: fridge/water-heater only
		{1.2, 0.3, 0.6}, // morning: kitchen
		{0.2, 0.2, 0.6}, // daytime
		{0.8, 1.0, 0.9}, // evening: laundry + heating
	}
	for i := 0; i < cfg.Rows; i++ {
		t := float64(i)
		m := t - 1440*float64(int(t/1440))
		reg := electricityRegime(m)
		s1 := base[reg][0] + noise()
		s2 := base[reg][1] + noise()
		s3 := base[reg][2] + noise()
		gap := s1 + s2 + s3 + 0.3 + noise() // 0.3 kW unmetered load
		volt := 240 - 2*gap + noise()
		inten := gap * 4.3
		react := 0.12*gap + 0.05 + noise2()
		freq := 50 - 0.02*gap + noise2()/10
		s4 := 0.15*gap + noise2()
		pf := 0.95 - 0.01*gap + noise2()/20
		tariff := "day"
		if reg == 0 {
			tariff = "night"
		}
		rel.MustAppend(Tuple{
			Num(t), Num(gap), Num(volt), Num(inten), Num(s1), Num(s2), Num(s3),
			Num(react), Num(freq), Num(s4), Num(pf), Str(tariff),
		})
	}
	return rel
}
