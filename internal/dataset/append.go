package dataset

import "fmt"

// Append-friendly columnar growth. NewColumnSet builds an immutable mirror
// of a finished relation; the streaming layer instead receives rows one at a
// time and expires old ones, so it needs columnar storage that grows by
// appends without re-mirroring the whole window on every arrival.
//
// ColumnAppender is that storage: the same column layout and cell semantics
// as ColumnSet (raw Num values, first-appearance dictionary codes, NullCode
// sentinels, per-column null bitmaps), built row by row. Appending rows
// 0..n−1 and reading Cols() is bitwise-identical to NewColumnSet over a
// relation holding those rows — the code-assignment path below mirrors
// NewColumnSetAttrs' exactly (smallDict linear probe, map spill at the same
// threshold, one-entry run cache) so even the dictionaries agree.
//
// SlidingWindow composes an appender with an eviction policy: a bounded
// window whose live rows are exposed as (Cols, Sel) — exactly the inputs the
// vectorized predicate filters take — plus amortized compaction so a
// long-running stream does not grow the appender without bound.

// ColumnAppender is growable columnar storage over one schema. It is a
// single-writer structure: Append must not race with readers of Cols().
// Consumers that need a stable snapshot across concurrent appends must
// compact or copy.
type ColumnAppender struct {
	cs *ColumnSet
}

// NewColumnAppender creates empty growable columns over schema.
func NewColumnAppender(schema *Schema) *ColumnAppender {
	width := schema.Len()
	return &ColumnAppender{cs: &ColumnSet{
		Schema: schema,
		num:    make([][]float64, width),
		codes:  make([][]uint32, width),
		dicts:  make([][]string, width),
		lookup: make([]map[string]uint32, width),
		nulls:  make([][]uint64, width),
	}}
}

// Len returns the number of appended rows.
func (a *ColumnAppender) Len() int { return a.cs.rows }

// Cols returns the current columnar mirror. The returned ColumnSet shares
// the appender's storage: it is valid until the next Append, which may grow
// the backing arrays in place.
func (a *ColumnAppender) Cols() *ColumnSet { return a.cs }

// Append adds one row and returns its row index. The arity must match the
// schema, like Relation.Append; a mismatch wraps ErrArityMismatch.
func (a *ColumnAppender) Append(t Tuple) (int, error) {
	cs := a.cs
	if len(t) != cs.Schema.Len() {
		return 0, fmt.Errorf("%w: tuple arity %d, schema arity %d", ErrArityMismatch, len(t), cs.Schema.Len())
	}
	row := cs.rows
	for attr := range t {
		v := t[attr]
		if cs.Schema.Attr(attr).Kind == Numeric {
			cs.num[attr] = append(cs.num[attr], v.Num)
			if v.Null {
				a.setNull(attr, row)
			}
			continue
		}
		if v.Null {
			cs.codes[attr] = append(cs.codes[attr], NullCode)
			a.setNull(attr, row)
			continue
		}
		cs.codes[attr] = append(cs.codes[attr], a.code(attr, v.Str))
	}
	cs.rows++
	// Bitmapped columns must cover every row (IsNull indexes by row), not
	// just the last null one.
	words := (cs.rows + 63) / 64
	for attr, b := range cs.nulls {
		if b != nil && len(b) < words {
			cs.nulls[attr] = growWords(b, words)
		}
	}
	return row, nil
}

// growWords extends a bitmap to words zero words, doubling capacity so
// repeated appends amortize.
func growWords(b []uint64, words int) []uint64 {
	if cap(b) >= words {
		return b[:words]
	}
	grown := make([]uint64, words, 2*words)
	copy(grown, b)
	return grown
}

// MustAppend is Append that panics on arity mismatch; intended for internal
// rebuilds over already-validated rows (SlidingWindow.Compact) and tests.
// Load paths fed by external input must use Append and propagate the error.
func (a *ColumnAppender) MustAppend(t Tuple) int {
	row, err := a.Append(t)
	if err != nil {
		panic(err)
	}
	return row
}

// code assigns the dictionary code of s in column attr, growing the
// dictionary on first appearance. The probe strategy matches
// NewColumnSetAttrs bit for bit: linear scan up to smallDict distinct
// values, then a spilled map, so the code sequence of an appended column
// equals the batch-built one.
func (a *ColumnAppender) code(attr int, s string) uint32 {
	cs := a.cs
	code, ok := uint32(0), false
	if m := cs.lookup[attr]; m != nil {
		code, ok = m[s]
	} else {
		for j, v := range cs.dicts[attr] {
			if v == s {
				code, ok = uint32(j), true
				break
			}
		}
	}
	if !ok {
		code = uint32(len(cs.dicts[attr]))
		cs.dicts[attr] = append(cs.dicts[attr], s)
		if cs.lookup[attr] != nil {
			cs.lookup[attr][s] = code
		} else if len(cs.dicts[attr]) > smallDict {
			m := make(map[string]uint32, 2*len(cs.dicts[attr]))
			for j, v := range cs.dicts[attr] {
				m[v] = uint32(j)
			}
			cs.lookup[attr] = m
		}
	}
	return code
}

// setNull marks (attr, row) null, growing the bitmap to cover row. Columns
// without nulls keep a nil bitmap, preserving ColumnSet's branch-light
// common case.
func (a *ColumnAppender) setNull(attr, row int) {
	cs := a.cs
	if words := row>>6 + 1; len(cs.nulls[attr]) < words {
		cs.nulls[attr] = growWords(cs.nulls[attr], words)
	}
	cs.nulls[attr][row>>6] |= 1 << (uint(row) & 63)
}

// SlidingWindow is a bounded, append-only-then-expire row window over one
// schema: the ingestion substrate of stream maintenance. Rows arrive through
// Append; once the window holds Capacity rows, each arrival evicts the
// oldest. Live rows are exposed columnar as (Cols, Sel) for the vectorized
// predicate filters, and as a Relation snapshot for code that wants tuples.
//
// Eviction only moves a start cursor; dead rows linger in the appender until
// Compact rebuilds it from the live rows. Append compacts automatically once
// the dead region exceeds the live one, so total storage stays O(Capacity)
// and the amortized append cost O(1). Row identity across compaction is by
// window position (0 = oldest live row), not appender index — callers
// keeping per-row state should keep it in a queue aligned with positions.
type SlidingWindow struct {
	cap int
	app *ColumnAppender
	// tuples holds the live rows in arrival order (shared, not copied).
	tuples []Tuple
	// sel maps window position → appender row, strictly increasing.
	sel []int
}

// NewSlidingWindow creates an empty window holding at most capacity rows.
func NewSlidingWindow(schema *Schema, capacity int) (*SlidingWindow, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("dataset: window capacity %d must be positive", capacity)
	}
	return &SlidingWindow{cap: capacity, app: NewColumnAppender(schema)}, nil
}

// Capacity returns the maximum number of live rows.
func (w *SlidingWindow) Capacity() int { return w.cap }

// Len returns the number of live rows.
func (w *SlidingWindow) Len() int { return len(w.sel) }

// Schema returns the window's schema.
func (w *SlidingWindow) Schema() *Schema { return w.app.cs.Schema }

// Append adds one row, evicting and returning the oldest when the window is
// full. expired is non-nil only when an eviction happened.
func (w *SlidingWindow) Append(t Tuple) (expired Tuple, err error) {
	if len(w.sel) == w.cap {
		expired = w.tuples[0]
		w.tuples = w.tuples[1:]
		w.sel = w.sel[1:]
	}
	// Compact before appending when dead rows outnumber live ones; the
	// rebuild touches O(live) cells, so each dead row pays for at most one
	// future compaction move.
	if dead := w.app.Len() - len(w.sel); dead > len(w.sel) && dead > 0 {
		w.Compact()
	}
	row, err := w.app.Append(t)
	if err != nil {
		return nil, err
	}
	w.tuples = append(w.tuples, t)
	w.sel = append(w.sel, row)
	return expired, nil
}

// ExpireOldest evicts up to n of the oldest live rows and returns how many
// were actually evicted. n ≤ 0 is a no-op; n ≥ Len empties the window (an
// expiry batch larger than the resident rows must not underflow the cursor
// or strand the compaction trigger — the amortized analysis holds with zero
// survivors because Compact over an empty window is O(1)). Batch expiry is
// the stream layer's "drop a whole stale chunk" path; per-row expiry stays
// on Append.
func (w *SlidingWindow) ExpireOldest(n int) int {
	if n <= 0 {
		return 0
	}
	if n > len(w.sel) {
		n = len(w.sel)
	}
	w.tuples = w.tuples[n:]
	w.sel = w.sel[n:]
	// Dead rows now outnumbering live ones is the same trigger Append uses;
	// compacting here (rather than waiting for the next Append) keeps Cols()
	// bounded even for a caller that only ever expires.
	if dead := w.app.Len() - len(w.sel); dead > len(w.sel) && dead > 0 {
		w.Compact()
	}
	return n
}

// Cols returns the columnar mirror holding the live rows (and possibly dead
// ones — always address it through Sel). Valid until the next Append.
func (w *SlidingWindow) Cols() *ColumnSet { return w.app.Cols() }

// Sel returns the live selection vector in window order (strictly
// increasing appender rows). Shared storage: read-only, valid until the next
// Append.
func (w *SlidingWindow) Sel() []int { return w.sel }

// Rows returns the live tuples in window order (shared, read-only, valid
// until the next Append).
func (w *SlidingWindow) Rows() []Tuple { return w.tuples }

// Relation snapshots the live rows as a relation (tuples shared).
func (w *SlidingWindow) Relation() *Relation {
	return &Relation{Schema: w.Schema(), Tuples: append([]Tuple(nil), w.tuples...)}
}

// Compact rebuilds the appender from the live rows, dropping dead rows and
// re-canonicalizing dictionaries to first-appearance order over the live
// rows. After Compact, Cols() is bitwise-identical to NewColumnSet over
// Relation() — dead rows can no longer pin stale dictionary entries — and
// Sel() is the identity [0, Len).
func (w *SlidingWindow) Compact() {
	fresh := NewColumnAppender(w.Schema())
	for _, t := range w.tuples {
		fresh.MustAppend(t)
	}
	w.app = fresh
	// Recycle the slice capacities without the O(cap) churn of rebuilding.
	w.sel = w.sel[:0]
	for i := range w.tuples {
		w.sel = append(w.sel, i)
	}
}
