package dataset

import (
	"errors"
	"testing"
)

func TestNewSchemaDuplicate(t *testing.T) {
	_, err := NewSchema(
		Attribute{Name: "A", Kind: Numeric},
		Attribute{Name: "A", Kind: Categorical},
	)
	if !errors.Is(err, ErrDuplicateAttribute) {
		t.Fatalf("err = %v, want ErrDuplicateAttribute", err)
	}
}

func TestSchemaIndex(t *testing.T) {
	s := MustSchema(
		Attribute{Name: "A", Kind: Numeric},
		Attribute{Name: "B", Kind: Categorical},
	)
	i, err := s.Index("B")
	if err != nil || i != 1 {
		t.Fatalf("Index(B) = %d, %v; want 1, nil", i, err)
	}
	if _, err := s.Index("C"); !errors.Is(err, ErrUnknownAttribute) {
		t.Fatalf("Index(C) err = %v, want ErrUnknownAttribute", err)
	}
}

func TestSchemaMustIndexPanics(t *testing.T) {
	s := MustSchema(Attribute{Name: "A", Kind: Numeric})
	defer func() {
		if recover() == nil {
			t.Fatal("MustIndex did not panic on unknown attribute")
		}
	}()
	s.MustIndex("nope")
}

func TestNumericIndices(t *testing.T) {
	s := MustSchema(
		Attribute{Name: "A", Kind: Numeric},
		Attribute{Name: "B", Kind: Categorical},
		Attribute{Name: "C", Kind: Numeric},
	)
	got := s.NumericIndices()
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("NumericIndices = %v, want [0 2]", got)
	}
}

func TestKindString(t *testing.T) {
	if Numeric.String() != "numeric" || Categorical.String() != "categorical" {
		t.Error("Kind.String mismatch")
	}
	if Kind(42).String() != "Kind(42)" {
		t.Errorf("Kind(42).String() = %q", Kind(42).String())
	}
}

func TestValueConstructors(t *testing.T) {
	if v := Num(3.5); v.Null || v.Num != 3.5 {
		t.Errorf("Num(3.5) = %+v", v)
	}
	if v := Str("x"); v.Null || v.Str != "x" {
		t.Errorf("Str(x) = %+v", v)
	}
	if v := Null(); !v.Null {
		t.Errorf("Null() = %+v", v)
	}
}

func TestTupleClone(t *testing.T) {
	a := Tuple{Num(1), Str("x")}
	b := a.Clone()
	b[0] = Num(9)
	if a[0].Num != 1 {
		t.Error("Tuple.Clone shares storage")
	}
}

func TestSchemaAttrs(t *testing.T) {
	s := MustSchema(Attribute{Name: "A", Kind: Numeric})
	attrs := s.Attrs()
	attrs[0].Name = "Z"
	if s.Attr(0).Name != "A" {
		t.Error("Attrs() exposes internal slice")
	}
}
