// Package registry is the durable, versioned rule-artifact store behind
// multi-tenant serving: named tenants, each with an append-only version
// history and an active pointer, backed by content-addressed blobs on disk.
// It generalizes crrserve's push-deploy path (POST /v1/reload with a body)
// into storage with history — publish is atomic, any retained version can be
// rolled back to byte-for-byte, and blobs no version references anymore are
// garbage-collected.
//
// On-disk layout under the data dir:
//
//	blobs/sha256-<hex>.crr   content-addressed artifact bytes (codec v2 JSON)
//	manifest.json            tenant → version history + active pointers
//
// Both the manifest and every blob are written to a temp file in the same
// directory, fsynced, and renamed into place, so a crash mid-publish leaves
// either the old state or the new state — never a torn manifest. Stray temp
// files from an interrupted publish are swept on Open; a blob that was
// renamed into place before the crash is simply unreferenced and reclaimed
// by the next GC.
package registry

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/telemetry"
)

// manifestSchema is the manifest.json format version.
const manifestSchema = 1

// maxArtifactBytes bounds a single published artifact (64 MiB), mirroring
// the serving layer's body cap with headroom.
const maxArtifactBytes = 64 << 20

// ErrUnknownTenant reports an operation on a tenant with no published
// versions.
var ErrUnknownTenant = errors.New("registry: unknown tenant")

// ErrUnknownVersion reports an activate/rollback target that was never
// published or has been garbage-collected.
var ErrUnknownVersion = errors.New("registry: unknown version")

// VersionInfo describes one published artifact version of a tenant.
type VersionInfo struct {
	// Version is the tenant-scoped monotone version number, starting at 1.
	Version uint64 `json:"version"`
	// Blob is the content address (sha256 hex) of the artifact bytes.
	Blob string `json:"blob"`
	// Size is the artifact byte length.
	Size int64 `json:"size"`
	// Rules is the rule count parsed at publish time.
	Rules int `json:"rules"`
	// Source labels where the artifact came from (an operator note).
	Source string `json:"source,omitempty"`
	// PublishedAt is the publish wall-clock time.
	PublishedAt time.Time `json:"published_at"`
}

// TenantInfo is one tenant's version history plus its active pointer.
type TenantInfo struct {
	// Active is the version currently served; 0 means none.
	Active uint64 `json:"active"`
	// Versions is the retained history, ascending by version.
	Versions []VersionInfo `json:"versions"`
}

// manifest is the persisted root document.
type manifest struct {
	Schema  int                    `json:"schema"`
	Tenants map[string]*TenantInfo `json:"tenants"`
}

// Registry is the on-disk store. All methods are safe for concurrent use;
// mutations serialize on an internal mutex and persist through atomic
// renames.
type Registry struct {
	dir string

	mu  sync.Mutex
	man manifest

	ctrPublishes *telemetry.Counter
	ctrRollbacks *telemetry.Counter
	ctrGCBlobs   *telemetry.Counter
}

// testHookBeforeManifestRename, when non-nil, runs after the temp manifest
// is written but before it is renamed into place — the crash-injection point
// of the atomicity tests.
var testHookBeforeManifestRename func() error

// Open loads (or initializes) the registry rooted at dir. Stray temp files
// from an interrupted publish are removed; a missing manifest means an empty
// store.
func Open(dir string, reg *telemetry.Registry) (*Registry, error) {
	if dir == "" {
		return nil, errors.New("registry: data dir is required")
	}
	if err := os.MkdirAll(filepath.Join(dir, "blobs"), 0o755); err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	r := &Registry{
		dir:          dir,
		man:          manifest{Schema: manifestSchema, Tenants: map[string]*TenantInfo{}},
		ctrPublishes: reg.Counter(telemetry.MetricRegistryPublishes),
		ctrRollbacks: reg.Counter(telemetry.MetricRegistryRollbacks),
		ctrGCBlobs:   reg.Counter(telemetry.MetricRegistryGCBlobs),
	}
	raw, err := os.ReadFile(r.manifestPath())
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Fresh store.
	case err != nil:
		return nil, fmt.Errorf("registry: read manifest: %w", err)
	default:
		var m manifest
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("registry: manifest %s is corrupt: %w", r.manifestPath(), err)
		}
		if m.Schema != manifestSchema {
			return nil, fmt.Errorf("registry: manifest schema %d unsupported (want %d)", m.Schema, manifestSchema)
		}
		if m.Tenants == nil {
			m.Tenants = map[string]*TenantInfo{}
		}
		r.man = m
	}
	r.sweepTemp()
	return r, nil
}

// Dir returns the data-dir root.
func (r *Registry) Dir() string { return r.dir }

func (r *Registry) manifestPath() string { return filepath.Join(r.dir, "manifest.json") }

func (r *Registry) blobPath(hash string) string {
	return filepath.Join(r.dir, "blobs", "sha256-"+hash+".crr")
}

// sweepTemp removes temp files left by an interrupted publish. They are
// named *.tmp-* and were never renamed into place, so deleting them cannot
// lose referenced data.
func (r *Registry) sweepTemp() {
	for _, d := range []string{r.dir, filepath.Join(r.dir, "blobs")} {
		ents, err := os.ReadDir(d)
		if err != nil {
			continue
		}
		for _, e := range ents {
			if !e.IsDir() && strings.Contains(e.Name(), ".tmp-") {
				_ = os.Remove(filepath.Join(d, e.Name()))
			}
		}
	}
}

// ValidTenant reports whether name is usable as a tenant key: non-empty,
// ≤128 bytes, and free of path separators and control characters (the name
// appears in URLs, headers and the manifest).
func ValidTenant(name string) bool {
	if name == "" || len(name) > 128 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '-' || r == '_' || r == '.':
		default:
			return false
		}
	}
	return true
}

// Publish validates, stores and activates a new artifact version for tenant,
// returning its VersionInfo. The artifact must parse as a rule set (the same
// validation the serving reload path applies); publishing identical bytes
// twice shares one blob but still allocates a new version. The new version
// becomes active immediately — publish is the push-deploy path.
func (r *Registry) Publish(tenant string, artifact io.Reader, source string) (VersionInfo, error) {
	if !ValidTenant(tenant) {
		return VersionInfo{}, fmt.Errorf("registry: invalid tenant name %q", tenant)
	}
	raw, err := io.ReadAll(io.LimitReader(artifact, maxArtifactBytes+1))
	if err != nil {
		return VersionInfo{}, fmt.Errorf("registry: read artifact: %w", err)
	}
	if len(raw) > maxArtifactBytes {
		return VersionInfo{}, fmt.Errorf("registry: artifact exceeds %d bytes", maxArtifactBytes)
	}
	rules, err := core.ReadRuleSet(bytes.NewReader(raw))
	if err != nil {
		return VersionInfo{}, fmt.Errorf("registry: artifact rejected: %w", err)
	}
	sum := sha256.Sum256(raw)
	hash := hex.EncodeToString(sum[:])

	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.writeBlob(hash, raw); err != nil {
		return VersionInfo{}, err
	}
	ti := r.man.Tenants[tenant]
	if ti == nil {
		ti = &TenantInfo{}
	}
	var next uint64 = 1
	if n := len(ti.Versions); n > 0 {
		next = ti.Versions[n-1].Version + 1
	}
	vi := VersionInfo{
		Version:     next,
		Blob:        hash,
		Size:        int64(len(raw)),
		Rules:       rules.NumRules(),
		Source:      source,
		PublishedAt: time.Now().UTC(),
	}
	// Mutate a copy so a failed manifest write leaves the in-memory view
	// consistent with disk.
	nti := &TenantInfo{Active: next, Versions: append(append([]VersionInfo{}, ti.Versions...), vi)}
	if err := r.commit(func(m *manifest) { m.Tenants[tenant] = nti }); err != nil {
		return VersionInfo{}, err
	}
	r.ctrPublishes.Inc()
	return vi, nil
}

// writeBlob persists the content-addressed artifact bytes atomically. An
// existing blob with the same hash is reused untouched.
func (r *Registry) writeBlob(hash string, raw []byte) error {
	path := r.blobPath(hash)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	return atomicWrite(path, raw)
}

// commit applies mut to a deep copy of the manifest, persists it atomically,
// and adopts it in memory only after the rename succeeded. Callers hold mu.
func (r *Registry) commit(mut func(*manifest)) error {
	next := manifest{Schema: manifestSchema, Tenants: make(map[string]*TenantInfo, len(r.man.Tenants))}
	for name, ti := range r.man.Tenants {
		cp := *ti
		cp.Versions = append([]VersionInfo{}, ti.Versions...)
		next.Tenants[name] = &cp
	}
	mut(&next)
	raw, err := json.MarshalIndent(&next, "", "  ")
	if err != nil {
		return fmt.Errorf("registry: encode manifest: %w", err)
	}
	if err := atomicWriteHook(r.manifestPath(), raw, testHookBeforeManifestRename); err != nil {
		return err
	}
	r.man = next
	return nil
}

// atomicWrite writes data to path via a same-directory temp file, fsync and
// rename — the crash-safe publish primitive.
func atomicWrite(path string, data []byte) error {
	return atomicWriteHook(path, data, nil)
}

func atomicWriteHook(path string, data []byte, beforeRename func() error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	tmp := f.Name()
	cleanup := func() { _ = os.Remove(tmp) }
	if _, err := f.Write(data); err != nil {
		f.Close()
		cleanup()
		return fmt.Errorf("registry: write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		cleanup()
		return fmt.Errorf("registry: sync %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		cleanup()
		return fmt.Errorf("registry: close %s: %w", path, err)
	}
	if beforeRename != nil {
		if err := beforeRename(); err != nil {
			cleanup()
			return err
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		cleanup()
		return fmt.Errorf("registry: rename %s: %w", path, err)
	}
	return nil
}

// Activate moves tenant's active pointer to version. The version must be
// retained. Moving to a version older than the current active one counts as
// a rollback.
func (r *Registry) Activate(tenant string, version uint64) (VersionInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ti := r.man.Tenants[tenant]
	if ti == nil {
		return VersionInfo{}, fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
	}
	vi, ok := findVersion(ti.Versions, version)
	if !ok {
		return VersionInfo{}, fmt.Errorf("%w: tenant %q version %d", ErrUnknownVersion, tenant, version)
	}
	rollback := version < ti.Active
	if err := r.commit(func(m *manifest) { m.Tenants[tenant].Active = version }); err != nil {
		return VersionInfo{}, err
	}
	if rollback {
		r.ctrRollbacks.Inc()
	}
	return vi, nil
}

// Rollback moves tenant's active pointer to version, or — when version is 0
// — to the newest retained version older than the active one.
func (r *Registry) Rollback(tenant string, version uint64) (VersionInfo, error) {
	if version != 0 {
		return r.Activate(tenant, version)
	}
	r.mu.Lock()
	ti := r.man.Tenants[tenant]
	if ti == nil {
		r.mu.Unlock()
		return VersionInfo{}, fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
	}
	var prev uint64
	for _, vi := range ti.Versions {
		if vi.Version < ti.Active && vi.Version > prev {
			prev = vi.Version
		}
	}
	r.mu.Unlock()
	if prev == 0 {
		return VersionInfo{}, fmt.Errorf("%w: tenant %q has no version older than active %d", ErrUnknownVersion, tenant, ti.Active)
	}
	return r.Activate(tenant, prev)
}

// Active returns tenant's active version descriptor.
func (r *Registry) Active(tenant string) (VersionInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ti := r.man.Tenants[tenant]
	if ti == nil {
		return VersionInfo{}, fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
	}
	vi, ok := findVersion(ti.Versions, ti.Active)
	if !ok {
		return VersionInfo{}, fmt.Errorf("%w: tenant %q active version %d", ErrUnknownVersion, tenant, ti.Active)
	}
	return vi, nil
}

// Artifact returns the stored artifact bytes of tenant's given version
// (0 = active). The bytes are exactly what Publish stored — rollback
// restores a prior version byte-for-byte.
func (r *Registry) Artifact(tenant string, version uint64) ([]byte, VersionInfo, error) {
	r.mu.Lock()
	ti := r.man.Tenants[tenant]
	if ti == nil {
		r.mu.Unlock()
		return nil, VersionInfo{}, fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
	}
	if version == 0 {
		version = ti.Active
	}
	vi, ok := findVersion(ti.Versions, version)
	r.mu.Unlock()
	if !ok {
		return nil, VersionInfo{}, fmt.Errorf("%w: tenant %q version %d", ErrUnknownVersion, tenant, version)
	}
	raw, err := os.ReadFile(r.blobPath(vi.Blob))
	if err != nil {
		return nil, VersionInfo{}, fmt.Errorf("registry: blob %s: %w", vi.Blob, err)
	}
	if sum := sha256.Sum256(raw); hex.EncodeToString(sum[:]) != vi.Blob {
		return nil, VersionInfo{}, fmt.Errorf("registry: blob %s fails its content hash", vi.Blob)
	}
	return raw, vi, nil
}

// RuleSet loads and parses tenant's given version (0 = active).
func (r *Registry) RuleSet(tenant string, version uint64) (*core.RuleSet, VersionInfo, error) {
	raw, vi, err := r.Artifact(tenant, version)
	if err != nil {
		return nil, VersionInfo{}, err
	}
	rules, err := core.ReadRuleSet(bytes.NewReader(raw))
	if err != nil {
		return nil, VersionInfo{}, fmt.Errorf("registry: parse blob %s: %w", vi.Blob, err)
	}
	return rules, vi, nil
}

// Tenants lists tenant names, sorted.
func (r *Registry) Tenants() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.man.Tenants))
	for name := range r.man.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// List returns a deep copy of the full manifest view, sorted-iterable via
// Tenants.
func (r *Registry) List() map[string]TenantInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]TenantInfo, len(r.man.Tenants))
	for name, ti := range r.man.Tenants {
		cp := *ti
		cp.Versions = append([]VersionInfo{}, ti.Versions...)
		out[name] = cp
	}
	return out
}

// GC trims every tenant's history to its retain most recent versions (the
// active version is always kept, whatever its age) and deletes blobs no
// retained version references — including orphans from crashed publishes.
// retain ≤ 0 keeps all versions and still collects orphaned blobs. Returns
// the number of blobs deleted.
func (r *Registry) GC(retain int) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	err := r.commit(func(m *manifest) {
		if retain <= 0 {
			return
		}
		for _, ti := range m.Tenants {
			if len(ti.Versions) <= retain {
				continue
			}
			keep := ti.Versions[len(ti.Versions)-retain:]
			if _, ok := findVersion(keep, ti.Active); !ok {
				if avi, ok := findVersion(ti.Versions, ti.Active); ok {
					keep = append([]VersionInfo{avi}, keep...)
				}
			}
			ti.Versions = keep
		}
	})
	if err != nil {
		return 0, err
	}
	referenced := map[string]bool{}
	for _, ti := range r.man.Tenants {
		for _, vi := range ti.Versions {
			referenced[vi.Blob] = true
		}
	}
	ents, err := os.ReadDir(filepath.Join(r.dir, "blobs"))
	if err != nil {
		return 0, fmt.Errorf("registry: %w", err)
	}
	removed := 0
	for _, e := range ents {
		name := e.Name()
		hash, ok := strings.CutPrefix(name, "sha256-")
		if !ok {
			continue
		}
		hash, ok = strings.CutSuffix(hash, ".crr")
		if !ok || referenced[hash] {
			continue
		}
		if err := os.Remove(filepath.Join(r.dir, "blobs", name)); err == nil {
			removed++
		}
	}
	r.ctrGCBlobs.Add(int64(removed))
	return removed, nil
}

func findVersion(versions []VersionInfo, v uint64) (VersionInfo, bool) {
	for _, vi := range versions {
		if vi.Version == v {
			return vi, true
		}
	}
	return VersionInfo{}, false
}
