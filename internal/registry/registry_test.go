package registry

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
	"github.com/crrlab/crr/internal/telemetry"
)

// artifactBytes mines a small Tax rule set and serializes it, varying the
// noise seed so distinct calls produce distinct artifacts.
func artifactBytes(t *testing.T, seed int64) []byte {
	t.Helper()
	rel := dataset.GenerateTax(dataset.TaxConfig{Rows: 400, Noise: 0.5, Seed: seed})
	state := rel.Schema.MustIndex("State")
	preds := predicate.Generate(rel, []int{state}, predicate.GeneratorConfig{})
	res, err := core.Discover(context.Background(), rel, core.WithConfig(core.DiscoverConfig{
		XAttrs:  []int{rel.Schema.MustIndex("Salary")},
		YAttr:   rel.Schema.MustIndex("Tax"),
		RhoM:    60,
		Preds:   preds,
		Trainer: regress.LinearTrainer{},
	}))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := core.WriteRuleSet(&buf, res.Rules); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func openT(t *testing.T, dir string) (*Registry, *telemetry.Registry) {
	t.Helper()
	treg := telemetry.New()
	r, err := Open(dir, treg)
	if err != nil {
		t.Fatal(err)
	}
	return r, treg
}

func TestPublishActivateRollback(t *testing.T) {
	dir := t.TempDir()
	r, treg := openT(t, dir)

	a1 := artifactBytes(t, 1)
	a2 := artifactBytes(t, 2)
	v1, err := r.Publish("acme", bytes.NewReader(a1), "first")
	if err != nil {
		t.Fatal(err)
	}
	if v1.Version != 1 {
		t.Fatalf("first publish got version %d", v1.Version)
	}
	v2, err := r.Publish("acme", bytes.NewReader(a2), "second")
	if err != nil {
		t.Fatal(err)
	}
	if v2.Version != 2 {
		t.Fatalf("second publish got version %d", v2.Version)
	}
	if act, _ := r.Active("acme"); act.Version != 2 {
		t.Fatalf("publish did not activate: active %d", act.Version)
	}

	// Rollback (implicit target = previous version) restores v1 bytes
	// byte-for-byte.
	vi, err := r.Rollback("acme", 0)
	if err != nil {
		t.Fatal(err)
	}
	if vi.Version != 1 {
		t.Fatalf("rollback landed on version %d", vi.Version)
	}
	got, _, err := r.Artifact("acme", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, a1) {
		t.Fatal("rolled-back artifact differs from the published bytes")
	}

	// Roll forward again by explicit version.
	if _, err := r.Activate("acme", 2); err != nil {
		t.Fatal(err)
	}
	got, _, err = r.Artifact("acme", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, a2) {
		t.Fatal("re-activated artifact differs from the published bytes")
	}

	snap := treg.Snapshot()
	if snap.Counters[telemetry.MetricRegistryPublishes] != 2 {
		t.Fatalf("publishes counter %d", snap.Counters[telemetry.MetricRegistryPublishes])
	}
	if snap.Counters[telemetry.MetricRegistryRollbacks] != 1 {
		t.Fatalf("rollbacks counter %d", snap.Counters[telemetry.MetricRegistryRollbacks])
	}

	// State survives a reopen.
	r2, _ := openT(t, dir)
	if act, _ := r2.Active("acme"); act.Version != 2 {
		t.Fatalf("reopened active %d", act.Version)
	}
	if got := r2.Tenants(); len(got) != 1 || got[0] != "acme" {
		t.Fatalf("reopened tenants %v", got)
	}
}

func TestPublishRejectsGarbage(t *testing.T) {
	r, _ := openT(t, t.TempDir())
	if _, err := r.Publish("acme", strings.NewReader("{not an artifact"), ""); err == nil {
		t.Fatal("garbage artifact accepted")
	}
	if _, err := r.Publish("bad/tenant", bytes.NewReader(artifactBytes(t, 1)), ""); err == nil {
		t.Fatal("path-separator tenant name accepted")
	}
	if _, err := r.Active("acme"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("want ErrUnknownTenant, got %v", err)
	}
}

// TestPublishAtomicUnderPartialWrite simulates a crash between writing the
// temp manifest and renaming it into place: the store must come back in its
// pre-publish state, the orphaned blob must be GC-able, and stray temp files
// must be swept on reopen.
func TestPublishAtomicUnderPartialWrite(t *testing.T) {
	dir := t.TempDir()
	r, _ := openT(t, dir)
	a1 := artifactBytes(t, 1)
	if _, err := r.Publish("acme", bytes.NewReader(a1), "ok"); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("simulated crash before manifest rename")
	testHookBeforeManifestRename = func() error { return boom }
	_, err := r.Publish("acme", bytes.NewReader(artifactBytes(t, 2)), "crashes")
	testHookBeforeManifestRename = nil
	if !errors.Is(err, boom) {
		t.Fatalf("want injected crash, got %v", err)
	}

	// Scatter stray temp files as a torn write would leave them.
	if err := os.WriteFile(filepath.Join(dir, "manifest.json.tmp-123"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "blobs", "sha256-dead.crr.tmp-9"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	r2, _ := openT(t, dir)
	act, err := r2.Active("acme")
	if err != nil || act.Version != 1 {
		t.Fatalf("post-crash active = %v, %v (want version 1)", act, err)
	}
	got, _, err := r2.Artifact("acme", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, a1) {
		t.Fatal("post-crash artifact differs from the last committed publish")
	}
	for _, d := range []string{dir, filepath.Join(dir, "blobs")} {
		ents, err := os.ReadDir(d)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if strings.Contains(e.Name(), ".tmp-") {
				t.Fatalf("stray temp file survived reopen: %s", e.Name())
			}
		}
	}

	// The crashed publish may have left an unreferenced blob; GC reclaims it
	// and leaves the referenced one alone.
	removed, err := r2.GC(0)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("GC found no orphaned blob from the crashed publish")
	}
	if _, _, err := r2.Artifact("acme", 1); err != nil {
		t.Fatalf("referenced blob lost to GC: %v", err)
	}
}

func TestGCRetention(t *testing.T) {
	dir := t.TempDir()
	r, treg := openT(t, dir)
	for i := int64(1); i <= 4; i++ {
		if _, err := r.Publish("acme", bytes.NewReader(artifactBytes(t, i)), ""); err != nil {
			t.Fatal(err)
		}
	}
	// Pin active to the oldest version, then retain 2: active must survive
	// even though it falls outside the retention window.
	if _, err := r.Activate("acme", 1); err != nil {
		t.Fatal(err)
	}
	removed, err := r.GC(2)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("retention GC removed no blobs")
	}
	ti := r.List()["acme"]
	if ti.Active != 1 {
		t.Fatalf("active moved to %d", ti.Active)
	}
	versions := map[uint64]bool{}
	for _, vi := range ti.Versions {
		versions[vi.Version] = true
	}
	if !versions[1] || !versions[3] || !versions[4] || versions[2] {
		t.Fatalf("retained versions %v, want {1,3,4}", versions)
	}
	if _, _, err := r.Artifact("acme", 1); err != nil {
		t.Fatalf("active version unreadable after GC: %v", err)
	}
	if _, _, err := r.Artifact("acme", 2); err == nil {
		t.Fatal("trimmed version still readable")
	}
	if treg.Snapshot().Counters[telemetry.MetricRegistryGCBlobs] != int64(removed) {
		t.Fatal("gc_blobs counter does not match removals")
	}
}

func TestDedupSharesBlobs(t *testing.T) {
	r, _ := openT(t, t.TempDir())
	a := artifactBytes(t, 7)
	v1, err := r.Publish("a", bytes.NewReader(a), "")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := r.Publish("b", bytes.NewReader(a), "")
	if err != nil {
		t.Fatal(err)
	}
	if v1.Blob != v2.Blob {
		t.Fatalf("identical artifacts got distinct blobs %s vs %s", v1.Blob, v2.Blob)
	}
	ents, err := os.ReadDir(filepath.Join(r.Dir(), "blobs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("%d blobs on disk for one content", len(ents))
	}
	// GC keeps the blob while either tenant references it.
	if removed, _ := r.GC(0); removed != 0 {
		t.Fatalf("GC removed %d referenced blobs", removed)
	}
}
