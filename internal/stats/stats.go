// Package stats provides the small statistical kernel behind rule
// post-pruning: normal and chi-squared quantiles and an F-style
// equality-of-models test on sums of squared errors. It exists so the
// chi-squared pruning the paper leaves as future work (§VII) can be
// implemented without external dependencies.
package stats

import (
	"errors"
	"math"
)

// ErrDomain is returned for out-of-range probabilities or degrees of
// freedom.
var ErrDomain = errors.New("stats: argument out of domain")

// NormalQuantile returns z with Φ(z) = p for p ∈ (0, 1), using the
// Beasley–Springer–Moro rational approximation (|error| < 1e-8 over the
// central range, adequate for test thresholds).
func NormalQuantile(p float64) (float64, error) {
	if !(p > 0 && p < 1) {
		return 0, ErrDomain
	}
	// Coefficients of the BSM approximation.
	a := [4]float64{2.50662823884, -18.61500062529, 41.39119773534, -25.44106049637}
	b := [4]float64{-8.47351093090, 23.08336743743, -21.06224101826, 3.13082909833}
	c := [9]float64{
		0.3374754822726147, 0.9761690190917186, 0.1607979714918209,
		0.0276438810333863, 0.0038405729373609, 0.0003951896511919,
		0.0000321767881768, 0.0000002888167364, 0.0000003960315187,
	}
	y := p - 0.5
	if math.Abs(y) < 0.42 {
		r := y * y
		num := y * (((a[3]*r+a[2])*r+a[1])*r + a[0])
		den := (((b[3]*r+b[2])*r+b[1])*r+b[0])*r + 1
		return num / den, nil
	}
	r := p
	if y > 0 {
		r = 1 - p
	}
	r = math.Log(-math.Log(r))
	x := c[0]
	pow := 1.0
	for i := 1; i < len(c); i++ {
		pow *= r
		x += c[i] * pow
	}
	if y < 0 {
		x = -x
	}
	return x, nil
}

// ChiSquareQuantile returns the (1−alpha) quantile of the chi-squared
// distribution with df degrees of freedom via the Wilson–Hilferty cube
// approximation.
func ChiSquareQuantile(alpha float64, df int) (float64, error) {
	if df <= 0 || !(alpha > 0 && alpha < 1) {
		return 0, ErrDomain
	}
	z, err := NormalQuantile(1 - alpha)
	if err != nil {
		return 0, err
	}
	k := float64(df)
	t := 1 - 2/(9*k) + z*math.Sqrt(2/(9*k))
	return k * t * t * t, nil
}

// ModelEqualityTest decides whether two data parts plausibly follow the same
// regression model, from sums of squared errors: sseJoint for one model fit
// on the merged part, sseSplit = sse₁ + sse₂ for the two per-part fits, with
// p parameters per model and n total observations. It computes the Chow-style
// statistic
//
//	F = ((sseJoint − sseSplit)/p) / (sseSplit/(n − 2p))
//
// and compares p·F against the chi-squared (1−alpha) quantile with p degrees
// of freedom (the large-denominator approximation). reject reports whether
// equality is rejected — i.e. the parts genuinely need separate models.
//
// Degenerate regimes are guarded, not propagated: the statistic divides by
// n − 2p, so windows too small to fit two separate models (n ≤ 2p) return
// ErrDomain instead of a ±Inf statistic — stream maintenance treats that as
// "cannot test, keep the rule". SSE inputs come out of floating-point
// residual accumulations, so tiny negatives (cancellation) are clamped to 0
// and non-finite values (NaN/Inf residuals from a garbage fit) return
// ErrDomain rather than silently deciding reject = false through a NaN
// comparison. Exactly-zero split SSE (perfect per-part fits, common on the
// tiny windows the stream layer re-validates) resolves by comparing the
// joint excess against a relative tolerance instead of dividing by zero.
func ModelEqualityTest(sseJoint, sseSplit float64, p, n int, alpha float64) (reject bool, stat float64, err error) {
	if p <= 0 || n <= 2*p {
		return false, 0, ErrDomain
	}
	if math.IsNaN(sseJoint) || math.IsInf(sseJoint, 0) ||
		math.IsNaN(sseSplit) || math.IsInf(sseSplit, 0) {
		return false, 0, ErrDomain
	}
	// Cancellation in the residual sums can leave tiny negatives; a genuinely
	// negative SSE has no statistical meaning, so clamp rather than let the
	// ratio change sign.
	if sseJoint < 0 {
		sseJoint = 0
	}
	if sseSplit <= 0 {
		// Perfect per-part fits: any joint excess beyond float noise is
		// evidence of difference. The tolerance scales with the joint SSE so
		// a 1e-13-noise "excess" on data measured in the 1e-15 range still
		// rejects, while the same absolute noise on unit-scale data does not.
		if sseJoint > 1e-12*(1+math.Abs(sseJoint)) {
			return true, math.Inf(1), nil
		}
		return false, 0, nil
	}
	f := ((sseJoint - sseSplit) / float64(p)) / (sseSplit / float64(n-2*p))
	if f < 0 {
		f = 0
	}
	crit, err := ChiSquareQuantile(alpha, p)
	if err != nil {
		return false, 0, err
	}
	return float64(p)*f > crit, f, nil
}
