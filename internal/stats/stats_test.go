package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.975, 1.959964},
		{0.95, 1.644854},
		{0.025, -1.959964},
		{0.8413447, 1.0}, // Φ(1) ≈ 0.8413
	}
	for _, c := range cases {
		got, err := NormalQuantile(c.p)
		if err != nil {
			t.Fatalf("NormalQuantile(%v): %v", c.p, err)
		}
		if math.Abs(got-c.want) > 2e-4 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileDomain(t *testing.T) {
	for _, p := range []float64{0, 1, -0.1, 1.1} {
		if _, err := NormalQuantile(p); !errors.Is(err, ErrDomain) {
			t.Errorf("NormalQuantile(%v) err = %v", p, err)
		}
	}
}

// Property: the quantile is monotone increasing and antisymmetric around 0.5.
func TestNormalQuantileProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p1 := 0.01 + rng.Float64()*0.98
		p2 := 0.01 + rng.Float64()*0.98
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		q1, err1 := NormalQuantile(p1)
		q2, err2 := NormalQuantile(p2)
		if err1 != nil || err2 != nil || q1 > q2+1e-9 {
			return false
		}
		qc, err := NormalQuantile(1 - p1)
		return err == nil && math.Abs(qc+q1) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestChiSquareQuantileKnownValues(t *testing.T) {
	cases := []struct {
		alpha float64
		df    int
		want  float64
	}{
		{0.05, 1, 3.841},
		{0.05, 2, 5.991},
		{0.05, 10, 18.307},
		{0.01, 5, 15.086},
	}
	for _, c := range cases {
		got, err := ChiSquareQuantile(c.alpha, c.df)
		if err != nil {
			t.Fatal(err)
		}
		// Wilson–Hilferty is a few percent off at low df; accept 5%.
		if math.Abs(got-c.want)/c.want > 0.05 {
			t.Errorf("ChiSquareQuantile(%v, %d) = %v, want ≈ %v", c.alpha, c.df, got, c.want)
		}
	}
}

func TestChiSquareQuantileDomain(t *testing.T) {
	if _, err := ChiSquareQuantile(0.05, 0); !errors.Is(err, ErrDomain) {
		t.Error("df=0 accepted")
	}
	if _, err := ChiSquareQuantile(0, 3); !errors.Is(err, ErrDomain) {
		t.Error("alpha=0 accepted")
	}
}

func TestModelEqualityTestSameModel(t *testing.T) {
	// Two parts from the same line: the joint fit barely degrades.
	reject, _, err := ModelEqualityTest(10.2, 10.0, 2, 200, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if reject {
		t.Error("near-identical SSEs rejected equality")
	}
}

func TestModelEqualityTestDifferentModels(t *testing.T) {
	// The joint fit is far worse than the split fits.
	reject, stat, err := ModelEqualityTest(100, 10, 2, 200, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !reject {
		t.Errorf("clearly different models not rejected (stat=%v)", stat)
	}
}

func TestModelEqualityTestPerfectFits(t *testing.T) {
	reject, _, err := ModelEqualityTest(1.0, 0, 2, 100, 0.05)
	if err != nil || !reject {
		t.Errorf("perfect split fits with joint excess should reject: %v, %v", reject, err)
	}
	reject, _, err = ModelEqualityTest(0, 0, 2, 100, 0.05)
	if err != nil || reject {
		t.Errorf("both perfect should not reject: %v, %v", reject, err)
	}
}

func TestModelEqualityTestDomain(t *testing.T) {
	if _, _, err := ModelEqualityTest(1, 1, 0, 100, 0.05); !errors.Is(err, ErrDomain) {
		t.Error("p=0 accepted")
	}
	if _, _, err := ModelEqualityTest(1, 1, 2, 4, 0.05); !errors.Is(err, ErrDomain) {
		t.Error("n ≤ 2p accepted")
	}
}

// TestModelEqualityTestDegenerateRegimes is the table-driven audit of the
// regimes the stream layer hits on small windows: n ≤ 2p (no residual
// degrees of freedom), zero and negative SSEs from cancellation, and
// non-finite SSEs from garbage fits. None of them may produce a NaN-driven
// silent verdict; they either decide finitely or return ErrDomain.
func TestModelEqualityTestDegenerateRegimes(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name               string
		sseJoint, sseSplit float64
		p, n               int
		wantErr            bool
		wantReject         bool
	}{
		{"n exactly 2p", 10, 5, 2, 4, true, false},
		{"n below 2p", 10, 5, 2, 3, true, false},
		{"n = 2p+1 smallest testable", 100, 1, 2, 5, false, true},
		{"window of one", 1, 1, 1, 1, true, false},
		{"p zero", 1, 1, 0, 100, true, false},
		{"p negative", 1, 1, -1, 100, true, false},
		{"both SSE zero", 0, 0, 2, 100, false, false},
		{"split zero joint noise", 5e-13, 0, 2, 100, false, false},
		{"split zero joint real", 1, 0, 2, 100, false, true},
		{"split tiny negative (cancellation)", 1, -1e-15, 2, 100, false, true},
		{"joint tiny negative (cancellation)", -1e-15, 0, 2, 100, false, false},
		{"joint below split", 5, 10, 2, 100, false, false},
		{"joint NaN", math.NaN(), 1, 2, 100, true, false},
		{"split NaN", 1, math.NaN(), 2, 100, true, false},
		{"joint +Inf", inf, 1, 2, 100, true, false},
		{"split +Inf", 1, inf, 2, 100, true, false},
		{"both NaN", math.NaN(), math.NaN(), 2, 100, true, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			reject, stat, err := ModelEqualityTest(c.sseJoint, c.sseSplit, c.p, c.n, 0.05)
			if c.wantErr {
				if !errors.Is(err, ErrDomain) {
					t.Fatalf("err = %v, want ErrDomain", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if reject != c.wantReject {
				t.Errorf("reject = %v (stat=%v), want %v", reject, stat, c.wantReject)
			}
			if math.IsNaN(stat) {
				t.Errorf("NaN statistic leaked: %v", stat)
			}
		})
	}
}

// Property: the test is monotone in the joint SSE — a worse joint fit can
// only move the decision toward rejection.
func TestModelEqualityMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sseSplit := rng.Float64()*50 + 1
		j1 := sseSplit + rng.Float64()*20
		j2 := j1 + rng.Float64()*50
		r1, _, err1 := ModelEqualityTest(j1, sseSplit, 2, 150, 0.05)
		r2, _, err2 := ModelEqualityTest(j2, sseSplit, 2, 150, 0.05)
		if err1 != nil || err2 != nil {
			return false
		}
		return !r1 || r2 // r1 → r2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
