// Package telemetry provides the lightweight instrumentation layer of the
// discovery engine: atomic counters, gauges, duration histograms and value
// distributions grouped in a Registry with a consistent snapshot API.
//
// The package is designed for hot paths:
//
//   - every metric is lock-free after creation (atomic operations only);
//   - a nil *Registry is a valid no-op sink, so instrumented code needs no
//     "is telemetry enabled" branches — resolve metrics once and call them
//     unconditionally;
//   - metric handles are resolved by name once (a map lookup under a short
//     mutex) and then held, so per-event cost is a single atomic add.
//
// Metric names used across the system are declared in metrics.go so CLIs,
// the evaluation harness and tests agree on one schema.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a named collection of metrics. The zero value is not usable;
// call New. A nil *Registry is a valid no-op sink: every method on it (and
// on the nil metric handles it returns) does nothing.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	durations map[string]*Histogram
	dists     map[string]*Distribution
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		durations: make(map[string]*Histogram),
		dists:     make(map[string]*Distribution),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. On a nil registry it returns nil, which is itself a no-op counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the duration histogram registered under name, creating
// it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.durations[name]
	if h == nil {
		h = newHistogram()
		r.durations[name] = h
	}
	return h
}

// Distribution returns the value distribution registered under name,
// creating it on first use. On a nil registry it returns nil, which is
// itself a no-op distribution.
func (r *Registry) Distribution(name string) *Distribution {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	d := r.dists[name]
	if d == nil {
		d = newDistribution()
		r.dists[name] = d
	}
	return d
}

// Time starts a wall-clock phase observation: the returned stop function
// records the elapsed time into the duration histogram registered under
// name. Usable on a nil registry.
func (r *Registry) Time(name string) (stop func()) {
	h := r.Histogram(name)
	start := time.Now()
	return func() { h.Observe(time.Since(start)) }
}

// Counter is a monotonically increasing event count.
type Counter struct{ v atomic.Int64 }

// Inc adds one. No-op on a nil counter.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count; 0 on a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge tracks an instantaneous value (e.g. queue depth) together with the
// maximum it ever reached.
type Gauge struct {
	last atomic.Uint64 // float64 bits
	max  atomic.Uint64 // float64 bits
}

// Set records the current value and raises the running maximum. No-op on a
// nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	bits := math.Float64bits(v)
	g.last.Store(bits)
	for {
		cur := g.max.Load()
		if v <= math.Float64frombits(cur) {
			return
		}
		if g.max.CompareAndSwap(cur, bits) {
			return
		}
	}
}

// Value returns the last recorded value; 0 on a nil gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.last.Load())
}

// Max returns the largest value ever Set; 0 on a nil gauge.
func (g *Gauge) Max() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.max.Load())
}

// Distribution accumulates a dimensionless float64 value distribution —
// count, sum, min and max — for hot-path quantities that are sizes rather
// than durations (e.g. share-scan widths). Like every metric here it is
// lock-free after creation and nil-safe.
type Distribution struct {
	count atomic.Int64
	sum   atomic.Uint64 // float64 bits, CAS-accumulated
	min   atomic.Uint64 // float64 bits
	max   atomic.Uint64 // float64 bits
}

func newDistribution() *Distribution {
	d := &Distribution{}
	d.min.Store(math.Float64bits(math.Inf(1)))
	d.max.Store(math.Float64bits(math.Inf(-1)))
	return d
}

// Observe records one value. No-op on a nil distribution.
func (d *Distribution) Observe(v float64) {
	if d == nil {
		return
	}
	d.count.Add(1)
	for {
		cur := d.sum.Load()
		next := math.Float64bits(math.Float64frombits(cur) + v)
		if d.sum.CompareAndSwap(cur, next) {
			break
		}
	}
	for {
		cur := d.min.Load()
		if v >= math.Float64frombits(cur) || d.min.CompareAndSwap(cur, math.Float64bits(v)) {
			break
		}
	}
	for {
		cur := d.max.Load()
		if v <= math.Float64frombits(cur) || d.max.CompareAndSwap(cur, math.Float64bits(v)) {
			break
		}
	}
}

// DistStat is the snapshot of one value distribution.
type DistStat struct {
	Count    int64
	Sum      float64
	Min, Max float64
}

// Mean returns the average observed value (0 when empty).
func (d DistStat) Mean() float64 {
	if d.Count == 0 {
		return 0
	}
	return d.Sum / float64(d.Count)
}

// bucketBounds are the upper bounds (inclusive) of the histogram buckets;
// a final overflow bucket catches everything beyond the last bound. The
// decade spacing spans share-test microseconds to multi-second mines.
var bucketBounds = [...]time.Duration{
	time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond,
	time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond,
	time.Second, 10 * time.Second,
}

// numBuckets includes the overflow bucket.
const numBuckets = len(bucketBounds) + 1

// Histogram accumulates durations into fixed exponential buckets, plus
// count, sum, min and max.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	min     atomic.Int64 // nanoseconds; valid when count > 0
	max     atomic.Int64 // nanoseconds
	buckets [numBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// Observe records one duration. No-op on a nil histogram.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	ns := int64(d)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.min.Load()
		if ns >= cur || h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	h.buckets[bucketOf(d)].Add(1)
}

func bucketOf(d time.Duration) int {
	for i, b := range bucketBounds {
		if d <= b {
			return i
		}
	}
	return numBuckets - 1
}

// GaugeStat is the snapshot of one gauge.
type GaugeStat struct {
	Last float64
	Max  float64
}

// BucketCount is one histogram bucket in a snapshot: the count of
// observations with duration ≤ Le (the last bucket has Le = 0 and holds the
// overflow).
type BucketCount struct {
	Le    time.Duration
	Count int64
}

// DurationStat is the snapshot of one duration histogram.
type DurationStat struct {
	Count    int64
	Total    time.Duration
	Min, Max time.Duration
	Buckets  []BucketCount
}

// Mean returns the average observed duration (0 when empty).
func (d DurationStat) Mean() time.Duration {
	if d.Count == 0 {
		return 0
	}
	return d.Total / time.Duration(d.Count)
}

// Snapshot is a point-in-time copy of every metric in a registry. Metrics
// keep accumulating after the snapshot; the copy is internally consistent
// per metric but not across metrics (no global pause).
type Snapshot struct {
	Counters      map[string]int64
	Gauges        map[string]GaugeStat
	Durations     map[string]DurationStat
	Distributions map[string]DistStat
}

// Snapshot captures the current value of every registered metric. On a nil
// registry it returns an empty (but non-nil-map) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:      make(map[string]int64),
		Gauges:        make(map[string]GaugeStat),
		Durations:     make(map[string]DurationStat),
		Distributions: make(map[string]DistStat),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeStat{Last: g.Value(), Max: g.Max()}
	}
	for name, h := range r.durations {
		st := DurationStat{
			Count:   h.count.Load(),
			Total:   time.Duration(h.sum.Load()),
			Max:     time.Duration(h.max.Load()),
			Buckets: make([]BucketCount, numBuckets),
		}
		if st.Count > 0 {
			st.Min = time.Duration(h.min.Load())
		}
		for i := range h.buckets {
			st.Buckets[i].Count = h.buckets[i].Load()
			if i < len(bucketBounds) {
				st.Buckets[i].Le = bucketBounds[i]
			}
		}
		s.Durations[name] = st
	}
	for name, d := range r.dists {
		st := DistStat{Count: d.count.Load(), Sum: math.Float64frombits(d.sum.Load())}
		if st.Count > 0 {
			st.Min = math.Float64frombits(d.min.Load())
			st.Max = math.Float64frombits(d.max.Load())
		}
		s.Distributions[name] = st
	}
	return s
}

// Summary renders the snapshot as one sorted "name=value" line: counters as
// integers, gauges as last/max, durations as total(count), distributions as
// avg(count). Empty metrics are included so a summary always lists
// everything that was registered.
func (s Snapshot) Summary() string {
	parts := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Durations)+len(s.Distributions))
	for name, v := range s.Counters {
		parts = append(parts, fmt.Sprintf("%s=%d", name, v))
	}
	for name, d := range s.Distributions {
		parts = append(parts, fmt.Sprintf("%s=avg%.3g(%d)", name, d.Mean(), d.Count))
	}
	for name, g := range s.Gauges {
		parts = append(parts, fmt.Sprintf("%s=%g/max%g", name, g.Last, g.Max))
	}
	for name, d := range s.Durations {
		parts = append(parts, fmt.Sprintf("%s=%s(%d)", name, formatDuration(d.Total), d.Count))
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

// formatDuration renders a duration with units matched to its scale.
func formatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// FormatDuration is formatDuration exported for the CLIs' summary lines, so
// phase durations render with the same unit scaling everywhere.
func FormatDuration(d time.Duration) string { return formatDuration(d) }
