package telemetry

// Canonical metric names. Every producer (core discovery, compaction, the
// prediction index) and every consumer (CLI summary lines, internal/eval
// columns, tests) refers to these constants so the schema cannot drift.
const (
	// Discovery (Algorithm 1) hot-path metrics.
	MetricConditionsExpanded = "discover.conditions_expanded" // queue pops with a non-empty part
	MetricModelsTrained      = "discover.models_trained"      // Line 13 executions
	MetricModelsShared       = "discover.models_shared"       // Proposition 6 share hits (Lines 7–10)
	MetricShareTests         = "discover.share_tests"         // δ0 tests attempted against the model set F
	MetricForcedRules        = "discover.forced_rules"        // rules accepted at the MinSupport floor
	MetricQueueDepth         = "discover.queue_depth"         // condition-queue depth gauge (Max = high-water mark)
	MetricTrainTime          = "discover.train_time"          // per-model training durations
	MetricShareTestTime      = "discover.share_test_time"     // per-node share-scan durations

	// Hot-path performance-layer metrics (the part-workspace of hotpath.go):
	// how often the sufficient-statistics and caching fast paths actually
	// fire, so before/after comparisons (crrbench -compare) can attribute
	// speedups.
	MetricStatReuse      = "discover.stat_reuse"        // Line-13 fits served from accumulated Gram statistics (counter)
	MetricCacheHits      = "discover.column_cache_hits" // per-node feature materializations served by the column cache (counter)
	MetricShareScanWidth = "discover.share_scan_width"  // models scanned per single-pass share scan (value distribution)

	// Columnar-execution metrics (dataset.ColumnSet + the vectorized
	// predicate filters). Every layer that builds a columnar mirror or
	// narrows a selection vector reports through these, so the cost and the
	// effectiveness of the columnar engine are observable end to end.
	MetricColumnsBuild      = "columns.build_ns"    // counter: cumulative ns spent building ColumnSets
	MetricFilterSelectivity = "filter.selectivity"  // distribution: surviving fraction per vectorized filter sweep
	MetricFilterRowsScanned = "filter.rows_scanned" // counter: selection-vector entries scanned by vectorized filters

	// Compaction (Algorithm 2) metrics.
	MetricTranslations   = "compact.translations"    // rules rewritten via Translation
	MetricFusions        = "compact.fusions"         // Fusion merges
	MetricImplied        = "compact.implied"         // rules dropped as implied
	MetricSolverAttempts = "compact.solver_attempts" // translation-solver invocations

	// Prediction-index metrics (RuleSet.Predict).
	MetricIndexLookups = "predict.index_lookups" // prediction-index lookups
	MetricIndexMisses  = "predict.index_misses"  // lookups that fell back to the training mean

	// Induction-strategy metrics (the core strategy seam + the
	// internal/induction strategies). candidates_grown counts rule candidates
	// seeded and grown by growprune; rules_pruned counts emitted rules that
	// lost at least one predicate in the prune pass; stability_kept/dropped
	// count recurring conjunctions that survived (or failed) the held-out
	// refit of the stability strategy. Per-strategy run counters are derived
	// with InductionStrategyRuns below.
	MetricInductionCandidatesGrown  = "induction.candidates_grown"  // counter: growprune candidates seeded and grown
	MetricInductionRulesPruned      = "induction.rules_pruned"      // counter: rules that lost predicates in the prune pass
	MetricInductionStabilityKept    = "induction.stability_kept"    // counter: recurring conjunctions kept after held-out refit
	MetricInductionStabilityDropped = "induction.stability_dropped" // counter: recurring conjunctions dropped by the held-out refit

	// Out-of-core columnar store metrics (internal/colstore): the mmap'd
	// on-disk lane layer. bytes_mapped counts payload bytes mapped (or
	// heap-loaded on platforms without mmap) at store open; chunks_scanned
	// counts chunk visits through Store.ScanChunks, the unit the chunked
	// discovery and verification sweeps are budgeted in.
	MetricColstoreBytesMapped   = "colstore.bytes_mapped"   // counter: lane payload bytes mapped at open
	MetricColstoreChunksScanned = "colstore.chunks_scanned" // counter: chunk visits through ScanChunks

	// Verification metrics (internal/verify + crrverify): how many oracle
	// checks the differential harness executed and how many divergences it
	// found. A healthy run reports oracles_run > 0 and divergences == 0.
	MetricVerifyOraclesRun  = "verify.oracles_run" // counter: oracle checks executed
	MetricVerifyDivergences = "verify.divergences" // counter: divergences detected

	// Stream-maintenance metrics (internal/stream): the windowed ingestion
	// and incremental re-fit layer. rows_ingested counts appends accepted
	// into the sliding window; refits counts per-rule model re-fits from the
	// carried sufficient statistics; drift_events counts Chow-test rejections
	// (the window no longer plausibly follows the rule's single model);
	// retires counts rules dropped because the refit could not restore the
	// bias bound; rebuilds counts carried Grams rebuilt from scratch after
	// losing numerical health (the downdate-cancellation fallback); swaps
	// counts refreshed rule sets handed to the hot-reload hook.
	MetricStreamRowsIngested = "stream.rows_ingested" // counter: rows appended to the window
	MetricStreamRefits       = "stream.refits"        // counter: incremental per-rule model re-fits
	MetricStreamDriftEvents  = "stream.drift_events"  // counter: Chow-test drift rejections
	MetricStreamRetires      = "stream.retires"       // counter: rules retired on unrecoverable drift
	MetricStreamRebuilds     = "stream.rebuilds"      // counter: Gram statistics rebuilt after degeneracy
	MetricStreamSwaps        = "stream.swaps"         // counter: refreshed rule sets swapped out

	// Serving-layer metrics (internal/serve). Per-endpoint metrics are
	// derived with ServeRequests/ServeErrors/ServeLatency below.
	MetricServeInFlight     = "serve.in_flight"     // gauge: concurrently handled API requests (Max = high-water mark)
	MetricServeShed         = "serve.shed"          // counter: requests rejected with 429 at the in-flight limit
	MetricServeTimeouts     = "serve.timeouts"      // counter: requests aborted by the per-request deadline
	MetricServeReloads      = "serve.reloads"       // counter: successful rule-set hot reloads
	MetricServeReloadErrors = "serve.reload_errors" // counter: rejected reload attempts (artifact kept)

	// Artifact-registry metrics (internal/registry): the versioned,
	// content-addressed rule-artifact store behind multi-tenant serving.
	MetricRegistryPublishes = "registry.publishes" // counter: artifact versions published
	MetricRegistryRollbacks = "registry.rollbacks" // counter: active pointers moved to an older version
	MetricRegistryGCBlobs   = "registry.gc_blobs"  // counter: unreferenced blobs deleted by GC

	// Router metrics (internal/router): the stateless tenant-routing tier.
	MetricRouterForwards        = "router.forwards"         // counter: requests forwarded to an owning node
	MetricRouterFailovers       = "router.failovers"        // counter: forwards retried on the next ring replica
	MetricRouterQuotaRejections = "router.quota_rejections" // counter: requests rejected by per-tenant quota/in-flight caps
	MetricRouterTenantInFlight  = "router.tenant_inflight"  // gauge: in-flight requests of the busiest moment (Max = high-water mark)
	MetricRouterUpstreamErrors  = "router.upstream_errors"  // counter: forwards that failed on every candidate node

	// Cluster-membership metrics (internal/cluster).
	MetricClusterNodesUp      = "cluster.nodes_up"      // gauge: nodes currently probing healthy
	MetricClusterRingRebuilds = "cluster.ring_rebuilds" // counter: consistent-hash ring rebuilds on membership change
)

// InductionStrategyRuns names the per-strategy discovery-run counter, e.g.
// "induction.strategy.lattice". The discovery seam bumps it once per run, so
// /metrics and the CLI summaries report which strategy produced the rules.
func InductionStrategyRuns(name string) string { return "induction.strategy." + name }

// ServeRequests names the request counter of one serving endpoint, e.g.
// "serve.predict.requests". The endpoint is the trailing path segment of the
// route ("predict", "check", ...).
func ServeRequests(endpoint string) string { return "serve." + endpoint + ".requests" }

// ServeErrors names the error counter (4xx/5xx responses) of one endpoint.
func ServeErrors(endpoint string) string { return "serve." + endpoint + ".errors" }

// ServeLatency names the latency histogram of one serving endpoint.
func ServeLatency(endpoint string) string { return "serve." + endpoint + ".latency" }

// Phase names for wall-clock phase timing (duration histograms). CLIs time
// their pipeline phases under these names and print them in this order.
const (
	PhaseLoad       = "phase.load"       // input parsing
	PhasePredicates = "phase.predicates" // predicate-space generation
	PhaseDiscover   = "phase.discover"   // Algorithm 1
	PhaseCompact    = "phase.compact"    // Algorithm 2 (+ pruning/window merging)
	PhaseEvaluate   = "phase.evaluate"   // scoring / output rendering
)

// Phases lists the phase names in pipeline order, for stable summary lines.
func Phases() []string {
	return []string{PhaseLoad, PhasePredicates, PhaseDiscover, PhaseCompact, PhaseEvaluate}
}
