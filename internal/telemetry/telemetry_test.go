package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := New()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("Value = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Error("Counter did not return the registered instance")
	}
}

func TestGaugeTracksMax(t *testing.T) {
	r := New()
	g := r.Gauge("depth")
	g.Set(3)
	g.Set(17)
	g.Set(5)
	if g.Value() != 5 {
		t.Errorf("Value = %g, want 5", g.Value())
	}
	if g.Max() != 17 {
		t.Errorf("Max = %g, want 17", g.Max())
	}
}

func TestHistogramStats(t *testing.T) {
	r := New()
	h := r.Histogram("d")
	h.Observe(2 * time.Millisecond)
	h.Observe(4 * time.Millisecond)
	snap := r.Snapshot().Durations["d"]
	if snap.Count != 2 {
		t.Fatalf("Count = %d", snap.Count)
	}
	if snap.Total != 6*time.Millisecond {
		t.Errorf("Total = %v", snap.Total)
	}
	if snap.Min != 2*time.Millisecond || snap.Max != 4*time.Millisecond {
		t.Errorf("Min/Max = %v/%v", snap.Min, snap.Max)
	}
	if snap.Mean() != 3*time.Millisecond {
		t.Errorf("Mean = %v", snap.Mean())
	}
	var inBuckets int64
	for _, b := range snap.Buckets {
		inBuckets += b.Count
	}
	if inBuckets != 2 {
		t.Errorf("bucket counts sum to %d", inBuckets)
	}
}

func TestBucketOf(t *testing.T) {
	if b := bucketOf(500 * time.Nanosecond); b != 0 {
		t.Errorf("500ns bucket = %d", b)
	}
	if b := bucketOf(time.Minute); b != numBuckets-1 {
		t.Errorf("1m bucket = %d, want overflow", b)
	}
}

func TestTime(t *testing.T) {
	r := New()
	stop := r.Time("phase.x")
	time.Sleep(time.Millisecond)
	stop()
	d := r.Snapshot().Durations["phase.x"]
	if d.Count != 1 || d.Total < time.Millisecond {
		t.Errorf("phase.x = %+v", d)
	}
}

// TestNilRegistryIsNoop: the whole API must be callable on a nil registry so
// instrumented hot paths need no telemetry-enabled branches.
func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Counter("a").Add(3)
	r.Gauge("b").Set(1)
	r.Histogram("c").Observe(time.Second)
	r.Time("d")()
	if v := r.Counter("a").Value(); v != 0 {
		t.Errorf("nil counter value = %d", v)
	}
	if v := r.Gauge("b").Max(); v != 0 {
		t.Errorf("nil gauge max = %g", v)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Durations) != 0 {
		t.Errorf("nil snapshot not empty: %+v", snap)
	}
	if snap.Summary() != "" {
		t.Errorf("nil summary = %q", snap.Summary())
	}
}

func TestSummaryIsSortedAndComplete(t *testing.T) {
	r := New()
	r.Counter(MetricModelsTrained).Add(7)
	r.Gauge(MetricQueueDepth).Set(3)
	r.Histogram(PhaseDiscover).Observe(time.Second)
	s := r.Snapshot().Summary()
	for _, want := range []string{
		MetricModelsTrained + "=7",
		MetricQueueDepth + "=3/max3",
		PhaseDiscover + "=1.000s(1)",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
	if idx := strings.Index(s, "discover."); idx > strings.Index(s, "phase.") {
		t.Errorf("summary not sorted: %q", s)
	}
}

// TestConcurrentUse exercises every metric type from many goroutines; run
// under -race this proves the lock-free paths are sound.
func TestConcurrentUse(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(float64(i))
				r.Histogram("h").Observe(time.Duration(i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap.Counters["c"] != 8000 {
		t.Errorf("counter = %d, want 8000", snap.Counters["c"])
	}
	if snap.Gauges["g"].Max != 999 {
		t.Errorf("gauge max = %g, want 999", snap.Gauges["g"].Max)
	}
	if snap.Durations["h"].Count != 8000 {
		t.Errorf("histogram count = %d, want 8000", snap.Durations["h"].Count)
	}
}

func TestPhasesOrder(t *testing.T) {
	ps := Phases()
	if len(ps) == 0 || ps[0] != PhaseLoad {
		t.Errorf("Phases() = %v", ps)
	}
}
