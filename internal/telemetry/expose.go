package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file renders a Snapshot in the Prometheus text exposition format
// (version 0.0.4), so the same registry backs both the CLIs' summary lines
// and crrserve's GET /metrics. Rendering happens on an immutable Snapshot —
// scrapes never contend with the hot paths.
//
// Metric names are mapped to the Prometheus grammar by prefixing "crr_" and
// replacing each non-alphanumeric rune with "_": "discover.models_trained"
// becomes "crr_discover_models_trained". Output is sorted by name so
// expositions are deterministic and diffable.

// WriteText writes the snapshot in Prometheus text exposition format:
//
//   - counters as TYPE counter;
//   - gauges as TYPE gauge, with a companion <name>_max gauge for the
//     high-water mark;
//   - duration histograms as TYPE histogram with cumulative le buckets in
//     seconds plus _sum and _count;
//   - value distributions as TYPE summary (_sum and _count) with companion
//     <name>_min and <name>_max gauges.
func (s Snapshot) WriteText(w io.Writer) error {
	ew := &errWriter{w: w}
	for _, name := range sortedKeys(s.Counters) {
		n := promName(name)
		ew.printf("# TYPE %s counter\n%s %d\n", n, n, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		g := s.Gauges[name]
		n := promName(name)
		ew.printf("# TYPE %s gauge\n%s %s\n", n, n, promFloat(g.Last))
		ew.printf("# TYPE %s_max gauge\n%s_max %s\n", n, n, promFloat(g.Max))
	}
	for _, name := range sortedKeys(s.Durations) {
		d := s.Durations[name]
		n := promName(name)
		ew.printf("# TYPE %s histogram\n", n)
		cum := int64(0)
		for _, b := range d.Buckets {
			cum += b.Count
			le := "+Inf"
			if b.Le != 0 {
				le = promFloat(b.Le.Seconds())
			}
			ew.printf("%s_bucket{le=%q} %d\n", n, le, cum)
		}
		ew.printf("%s_sum %s\n", n, promFloat(d.Total.Seconds()))
		ew.printf("%s_count %d\n", n, d.Count)
	}
	for _, name := range sortedKeys(s.Distributions) {
		d := s.Distributions[name]
		n := promName(name)
		ew.printf("# TYPE %s summary\n", n)
		ew.printf("%s_sum %s\n%s_count %d\n", n, promFloat(d.Sum), n, d.Count)
		if d.Count > 0 {
			ew.printf("# TYPE %s_min gauge\n%s_min %s\n", n, n, promFloat(d.Min))
			ew.printf("# TYPE %s_max gauge\n%s_max %s\n", n, n, promFloat(d.Max))
		}
	}
	return ew.err
}

// errWriter folds the per-line error handling of sequential writes.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err == nil {
		_, e.err = fmt.Fprintf(e.w, format, args...)
	}
}

// promName maps an internal metric name onto the Prometheus name grammar.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 4)
	b.WriteString("crr_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float in the shortest form that round-trips.
func promFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
