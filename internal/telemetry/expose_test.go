package telemetry

import (
	"strings"
	"testing"
	"time"
)

// TestWriteTextExposition: every metric kind renders under its Prometheus
// name with the right TYPE line, histograms are cumulative with an +Inf
// bucket, and the output is deterministic.
func TestWriteTextExposition(t *testing.T) {
	reg := New()
	reg.Counter("serve.predict.requests").Add(7)
	reg.Gauge(MetricServeInFlight).Set(3)
	reg.Gauge(MetricServeInFlight).Set(1)
	reg.Histogram("serve.predict.latency").Observe(5 * time.Microsecond)
	reg.Histogram("serve.predict.latency").Observe(2 * time.Second)
	reg.Distribution(MetricShareScanWidth).Observe(4)

	var b strings.Builder
	if err := reg.Snapshot().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE crr_serve_predict_requests counter\ncrr_serve_predict_requests 7\n",
		"# TYPE crr_serve_in_flight gauge\ncrr_serve_in_flight 1\n",
		"crr_serve_in_flight_max 3\n",
		"# TYPE crr_serve_predict_latency histogram\n",
		`crr_serve_predict_latency_bucket{le="+Inf"} 2`,
		"crr_serve_predict_latency_count 2\n",
		"# TYPE crr_discover_share_scan_width summary\n",
		"crr_discover_share_scan_width_sum 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}

	// Buckets are cumulative: the 1e-05s bucket holds the 5µs observation,
	// every later bucket at least as much.
	if !strings.Contains(out, `crr_serve_predict_latency_bucket{le="1e-05"} 1`) {
		t.Errorf("missing cumulative 10µs bucket in:\n%s", out)
	}

	// Deterministic output.
	var b2 strings.Builder
	if err := reg.Snapshot().WriteText(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("exposition not deterministic across identical snapshots")
	}
}

// TestWriteTextEmpty: an empty registry renders an empty exposition, and a
// nil registry's snapshot is likewise safe.
func TestWriteTextEmpty(t *testing.T) {
	var b strings.Builder
	if err := New().Snapshot().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "" {
		t.Errorf("empty registry rendered %q", b.String())
	}
	var nilReg *Registry
	if err := nilReg.Snapshot().WriteText(&b); err != nil {
		t.Fatal(err)
	}
}

// TestPromName: internal dotted names map onto the Prometheus grammar.
func TestPromName(t *testing.T) {
	cases := map[string]string{
		"discover.models_trained": "crr_discover_models_trained",
		"serve.predict.latency":   "crr_serve_predict_latency",
		"weird-name with spaces":  "crr_weird_name_with_spaces",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
