package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestDistributionStats(t *testing.T) {
	r := New()
	d := r.Distribution("test.widths")
	for _, v := range []float64{3, 1, 4, 1, 5} {
		d.Observe(v)
	}
	st := r.Snapshot().Distributions["test.widths"]
	if st.Count != 5 || st.Sum != 14 || st.Min != 1 || st.Max != 5 {
		t.Errorf("stats = %+v", st)
	}
	if st.Mean() != 2.8 {
		t.Errorf("mean = %v", st.Mean())
	}
	if r.Distribution("test.widths") != d {
		t.Error("Distribution did not return the registered handle")
	}
}

func TestDistributionEmpty(t *testing.T) {
	r := New()
	r.Distribution("test.empty")
	st := r.Snapshot().Distributions["test.empty"]
	if st.Count != 0 || st.Sum != 0 || st.Min != 0 || st.Max != 0 || st.Mean() != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestDistributionNilSafe(t *testing.T) {
	var r *Registry
	d := r.Distribution("x")
	if d != nil {
		t.Fatal("nil registry returned non-nil distribution")
	}
	d.Observe(1) // must not panic
}

func TestDistributionNegativeValues(t *testing.T) {
	r := New()
	d := r.Distribution("test.neg")
	d.Observe(-2)
	d.Observe(-7)
	st := r.Snapshot().Distributions["test.neg"]
	if st.Min != -7 || st.Max != -2 || st.Sum != -9 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDistributionConcurrent(t *testing.T) {
	r := New()
	d := r.Distribution("test.conc")
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				d.Observe(float64(w + 1))
			}
		}(w)
	}
	wg.Wait()
	st := r.Snapshot().Distributions["test.conc"]
	if st.Count != workers*per {
		t.Errorf("count = %d", st.Count)
	}
	want := float64(per) * (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8)
	if math.Abs(st.Sum-want) > 1e-6 {
		t.Errorf("sum = %v, want %v", st.Sum, want)
	}
	if st.Min != 1 || st.Max != workers {
		t.Errorf("min/max = %v/%v", st.Min, st.Max)
	}
}

func TestDistributionInSummary(t *testing.T) {
	r := New()
	r.Distribution("d.width").Observe(2)
	r.Distribution("d.width").Observe(4)
	sum := r.Snapshot().Summary()
	if !strings.Contains(sum, "d.width=avg3(2)") {
		t.Errorf("summary %q lacks distribution rendering", sum)
	}
}
