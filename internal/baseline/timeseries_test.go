package baseline

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/crrlab/crr/internal/dataset"
)

// sineSeries builds (t, y) with y = A·sin(2πt/period) + trend·t + bounded
// noise.
func sineSeries(n int, period, amp, trend float64, seed int64) *dataset.Relation {
	rng := rand.New(rand.NewSource(seed))
	s := dataset.MustSchema(
		dataset.Attribute{Name: "Time", Kind: dataset.Numeric},
		dataset.Attribute{Name: "Y", Kind: dataset.Numeric},
	)
	r := dataset.NewRelation(s)
	for i := 0; i < n; i++ {
		t := float64(i)
		y := amp*math.Sin(2*math.Pi*t/period) + trend*t + 0.05*(2*rng.Float64()-1)
		r.MustAppend(dataset.Tuple{dataset.Num(t), dataset.Num(y)})
	}
	return r
}

func TestARFitsAutoregressiveSeries(t *testing.T) {
	rel := sineSeries(600, 50, 3, 0, 1)
	ar := &AR{Order: 4}
	if err := ar.Fit(rel, []int{0}, 1); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if ar.Name() != "AR" || ar.NumRules() != 1 {
		t.Errorf("Name/NumRules = %s/%d", ar.Name(), ar.NumRules())
	}
	// One-step-ahead predictions on the training range are accurate for a
	// smooth sinusoid.
	if r := rmseOf(ar, rel, 1, 0); r > 0.5 {
		t.Errorf("AR RMSE = %v", r)
	}
}

func TestARShortSeries(t *testing.T) {
	rel := sineSeries(3, 50, 1, 0, 2)
	ar := &AR{Order: 4}
	if err := ar.Fit(rel, []int{0}, 1); err != nil {
		t.Fatal(err)
	}
	if ar.NumRules() != 0 {
		t.Error("model fitted on a series shorter than its order")
	}
	if _, ok := ar.Predict(rel.Tuples[0]); ok {
		t.Error("prediction from unfitted AR")
	}
}

func TestARNeedsTimeAttr(t *testing.T) {
	rel := sineSeries(10, 5, 1, 0, 3)
	if err := (&AR{}).Fit(rel, nil, 1); !errors.Is(err, errNoTimeAttr) {
		t.Errorf("err = %v, want errNoTimeAttr", err)
	}
}

func TestDHRFitsPeriodicSeries(t *testing.T) {
	rel := sineSeries(600, 24, 5, 0.01, 4)
	d := &DHR{Periods: []float64{24}}
	if err := d.Fit(rel, []int{0}, 1); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if d.Name() != "DHR" || d.NumRules() != 1 {
		t.Errorf("Name/NumRules = %s/%d", d.Name(), d.NumRules())
	}
	if r := rmseOf(d, rel, 1, 0); r > 0.2 {
		t.Errorf("DHR RMSE = %v on an exact-period sinusoid", r)
	}
}

func TestDHRDefaultPeriods(t *testing.T) {
	rel := sineSeries(300, 24, 2, 0, 5)
	d := &DHR{}
	if err := d.Fit(rel, []int{0}, 1); err != nil {
		t.Fatal(err)
	}
	if len(d.Periods) != 3 {
		t.Errorf("default periods = %v", d.Periods)
	}
}

func TestDHREmpty(t *testing.T) {
	s := dataset.MustSchema(
		dataset.Attribute{Name: "Time", Kind: dataset.Numeric},
		dataset.Attribute{Name: "Y", Kind: dataset.Numeric},
	)
	d := &DHR{}
	if err := d.Fit(dataset.NewRelation(s), []int{0}, 1); err != nil {
		t.Fatal(err)
	}
	if d.NumRules() != 0 {
		t.Error("rules from empty series")
	}
}

func TestRecurFindsPeriodAndFits(t *testing.T) {
	rel := sineSeries(400, 40, 5, 0, 6)
	r := &Recur{Bins: 16}
	if err := r.Fit(rel, []int{0}, 1); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if r.Name() != "Recur" {
		t.Errorf("Name = %s", r.Name())
	}
	if r.NumRules() != 16 {
		t.Errorf("NumRules = %d, want 16 phase bins", r.NumRules())
	}
	// The recovered period should be near 40 (index step = 1 time unit).
	if r.period < 30 || r.period > 50 {
		t.Errorf("recovered period = %v, want ≈ 40", r.period)
	}
	if got := rmseOf(r, rel, 1, 0); got > 1.5 {
		t.Errorf("Recur RMSE = %v", got)
	}
}

func TestRecurShortSeries(t *testing.T) {
	rel := sineSeries(4, 5, 1, 0, 7)
	r := &Recur{}
	if err := r.Fit(rel, []int{0}, 1); err != nil {
		t.Fatal(err)
	}
	if r.NumRules() != 0 {
		t.Error("bins on a too-short series")
	}
}

func TestDominantPeriod(t *testing.T) {
	n := 200
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Sin(2 * math.Pi * float64(i) / 25)
	}
	p := dominantPeriod(vals, 0)
	if p < 20 || p > 30 {
		t.Errorf("dominantPeriod = %v, want ≈ 25", p)
	}
	if dominantPeriod([]float64{1, 1, 1, 1}, 0) != 0 {
		t.Error("constant series should have no period")
	}
}

func TestSeriesOfSkipsNulls(t *testing.T) {
	s := dataset.MustSchema(
		dataset.Attribute{Name: "Time", Kind: dataset.Numeric},
		dataset.Attribute{Name: "Y", Kind: dataset.Numeric},
	)
	rel := dataset.NewRelation(s)
	rel.MustAppend(dataset.Tuple{dataset.Num(2), dataset.Num(20)})
	rel.MustAppend(dataset.Tuple{dataset.Num(1), dataset.Num(10)})
	rel.MustAppend(dataset.Tuple{dataset.Null(), dataset.Num(99)})
	rel.MustAppend(dataset.Tuple{dataset.Num(3), dataset.Null()})
	times, values := seriesOf(rel, 0, 1)
	if len(times) != 2 || times[0] != 1 || values[0] != 10 || times[1] != 2 {
		t.Errorf("seriesOf = %v, %v", times, values)
	}
}
