package baseline

import (
	"math/rand"
	"testing"

	"github.com/crrlab/crr/internal/dataset"
)

// linData: y = 3x + 2 with bounded noise.
func linData(n int, seed int64) *dataset.Relation {
	rng := rand.New(rand.NewSource(seed))
	s := dataset.MustSchema(
		dataset.Attribute{Name: "X", Kind: dataset.Numeric},
		dataset.Attribute{Name: "Y", Kind: dataset.Numeric},
	)
	r := dataset.NewRelation(s)
	for i := 0; i < n; i++ {
		x := rng.Float64() * 100
		r.MustAppend(dataset.Tuple{dataset.Num(x), dataset.Num(3*x + 2 + 0.3*(2*rng.Float64()-1))})
	}
	return r
}

func TestSampLRFits(t *testing.T) {
	rel := linData(800, 1)
	m := &SampLR{StratumSize: 100, Seed: 2}
	if err := m.Fit(rel, []int{0}, 1); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if m.Name() != "SampLR" {
		t.Errorf("Name = %s", m.Name())
	}
	if m.NumRules() < 8 {
		t.Errorf("strata = %d, want ≥ 8 for 800 rows at stratum size 100", m.NumRules())
	}
	if r := rmseOf(m, rel, 1, 0); r > 2 {
		t.Errorf("SampLR RMSE = %v", r)
	}
}

func TestSampLRModelCountGrowsWithData(t *testing.T) {
	small := &SampLR{StratumSize: 100, Seed: 3}
	if err := small.Fit(linData(400, 4), []int{0}, 1); err != nil {
		t.Fatal(err)
	}
	big := &SampLR{StratumSize: 100, Seed: 3}
	if err := big.Fit(linData(1600, 4), []int{0}, 1); err != nil {
		t.Fatal(err)
	}
	if big.NumRules() <= small.NumRules() {
		t.Errorf("model count did not grow with data: %d vs %d", big.NumRules(), small.NumRules())
	}
}

func TestSampLREmpty(t *testing.T) {
	s := dataset.MustSchema(
		dataset.Attribute{Name: "X", Kind: dataset.Numeric},
		dataset.Attribute{Name: "Y", Kind: dataset.Numeric},
	)
	m := &SampLR{}
	if err := m.Fit(dataset.NewRelation(s), []int{0}, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Predict(dataset.Tuple{dataset.Num(1), dataset.Num(0)}); ok {
		t.Error("prediction from empty SampLR")
	}
}

func TestMCLRFits(t *testing.T) {
	rel := linData(800, 5)
	m := &MCLR{SampleSize: 100, DrawsPerKilo: 16, Seed: 6}
	if err := m.Fit(rel, []int{0}, 1); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if m.Name() != "MCLR" {
		t.Errorf("Name = %s", m.Name())
	}
	if m.NumRules() < 8 {
		t.Errorf("draws = %d, want ≥ 8", m.NumRules())
	}
	if r := rmseOf(m, rel, 1, 0); r > 2 {
		t.Errorf("MCLR RMSE = %v", r)
	}
}

func TestMCLRDrawsScaleWithData(t *testing.T) {
	small := &MCLR{Seed: 7}
	if err := small.Fit(linData(500, 8), []int{0}, 1); err != nil {
		t.Fatal(err)
	}
	big := &MCLR{Seed: 7}
	if err := big.Fit(linData(4000, 8), []int{0}, 1); err != nil {
		t.Fatal(err)
	}
	if big.NumRules() <= small.NumRules() {
		t.Errorf("MC draws did not grow: %d vs %d", big.NumRules(), small.NumRules())
	}
}

func TestMCLRPredictNull(t *testing.T) {
	rel := linData(200, 9)
	m := &MCLR{Seed: 10}
	if err := m.Fit(rel, []int{0}, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Predict(dataset.Tuple{dataset.Null(), dataset.Num(0)}); ok {
		t.Error("prediction on null feature")
	}
}

func TestSampLRDeterministic(t *testing.T) {
	rel := linData(600, 11)
	a := &SampLR{Seed: 12}
	b := &SampLR{Seed: 12}
	if err := a.Fit(rel, []int{0}, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(rel, []int{0}, 1); err != nil {
		t.Fatal(err)
	}
	for _, tp := range rel.Tuples[:20] {
		pa, _ := a.Predict(tp)
		pb, _ := b.Predict(tp)
		if pa != pb {
			t.Fatal("SampLR not deterministic for fixed seed")
		}
	}
}
