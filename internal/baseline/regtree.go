package baseline

import (
	"errors"
	"fmt"
	"sort"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

// RegTree is a CART-style regression tree [9], [12] with a trainable model
// in each leaf (the paper's RegTree baseline [5] instantiated with F1/F2/F3
// leaf models). Numeric attributes split binarily at the best
// variance-reducing threshold; categorical attributes split multiway (one
// child per value), which keeps every root-to-leaf path expressible as a
// conjunction of ℙ-style predicates — the property ToRuleSet relies on.
type RegTree struct {
	// MaxDepth bounds the tree height; 0 means 12.
	MaxDepth int
	// MinSamples is the smallest node still split; 0 means 8.
	MinSamples int
	// RhoM, when positive, stops splitting once the leaf model's maximum
	// absolute error is within ρ_M — mirroring CRR's acceptance criterion so
	// tree and CRR discovery are comparable at equal bias.
	RhoM float64
	// Trainer fits leaf models; nil means OLS (F1).
	Trainer regress.Trainer
	// Candidates bounds the number of numeric thresholds scored per
	// attribute per node; 0 means 32.
	Candidates int
	// SplitAttrs are the attributes the tree may split on; empty means the
	// X attributes. Setting it lets the tree condition on attributes (e.g.
	// categorical ones) that are not regression features, matching the
	// condition attributes CRR discovery uses.
	SplitAttrs []int

	root   *treeNode
	xattrs []int
	yattr  int
	schema *dataset.Schema
	mean   float64
	leaves int
}

type treeNode struct {
	// Internal nodes: either a numeric split (attr, threshold) with
	// left ≤ c < right, or a categorical fan keyed by value.
	attr      int
	threshold float64
	numeric   bool
	left      *treeNode
	right     *treeNode
	fan       map[string]*treeNode

	// Leaves: a trained model over the node's part.
	model regress.Model
	path  predicate.Conjunction
	leaf  bool
}

// ErrNotFitted is returned by Predict before Fit.
var ErrNotFitted = errors.New("baseline: method not fitted")

// exhaustiveSplitLimit is the node size up to which every distinct value is
// scored as a split threshold; larger nodes use quantile-sampled candidates.
const exhaustiveSplitLimit = 512

// Name implements Method.
func (t *RegTree) Name() string { return "RegTree" }

// NumRules implements Method: one rule per leaf.
func (t *RegTree) NumRules() int { return t.leaves }

// Fit implements Method.
func (t *RegTree) Fit(rel *dataset.Relation, xattrs []int, yattr int) error {
	if t.Trainer == nil {
		t.Trainer = regress.LinearTrainer{}
	}
	if t.MaxDepth <= 0 {
		t.MaxDepth = 12
	}
	if t.MinSamples <= 0 {
		t.MinSamples = 8
	}
	if t.Candidates <= 0 {
		t.Candidates = 32
	}
	t.xattrs = append([]int(nil), xattrs...)
	if len(t.SplitAttrs) == 0 {
		t.SplitAttrs = t.xattrs
	}
	t.yattr = yattr
	t.schema = rel.Schema
	rows := nonNullRows(rel, xattrs, yattr)
	t.mean = meanOf(rel, rows, yattr)
	t.leaves = 0
	if len(rows) == 0 {
		t.root = nil
		return nil
	}
	root, err := t.build(rel, rows, 0, predicate.NewConjunction())
	if err != nil {
		return err
	}
	t.root = root
	return nil
}

func (t *RegTree) build(rel *dataset.Relation, rows []int, depth int, path predicate.Conjunction) (*treeNode, error) {
	makeLeaf := func() (*treeNode, error) {
		x, y, _ := core.FeatureRows(rel, rows, t.xattrs, t.yattr)
		model, err := t.Trainer.Train(x, y)
		if err != nil {
			return nil, fmt.Errorf("baseline: leaf fit: %w", err)
		}
		t.leaves++
		return &treeNode{leaf: true, model: model, path: path}, nil
	}
	if depth >= t.MaxDepth || len(rows) <= t.MinSamples {
		return makeLeaf()
	}
	if t.RhoM > 0 {
		x, y, _ := core.FeatureRows(rel, rows, t.xattrs, t.yattr)
		model, err := t.Trainer.Train(x, y)
		if err != nil {
			return nil, err
		}
		if regress.MaxAbsError(model, x, y) <= t.RhoM {
			t.leaves++
			return &treeNode{leaf: true, model: model, path: path}, nil
		}
	}
	attr, threshold, numeric, ok := t.bestSplit(rel, rows)
	if !ok {
		return makeLeaf()
	}
	node := &treeNode{attr: attr, threshold: threshold, numeric: numeric}
	if numeric {
		var left, right []int
		for _, i := range rows {
			if rel.Tuples[i][attr].Num <= threshold {
				left = append(left, i)
			} else {
				right = append(right, i)
			}
		}
		var err error
		node.left, err = t.build(rel, left, depth+1, path.And(predicate.NumPred(attr, predicate.Le, threshold)))
		if err != nil {
			return nil, err
		}
		node.right, err = t.build(rel, right, depth+1, path.And(predicate.NumPred(attr, predicate.Gt, threshold)))
		if err != nil {
			return nil, err
		}
		return node, nil
	}
	node.fan = make(map[string]*treeNode)
	byValue := make(map[string][]int)
	for _, i := range rows {
		byValue[rel.Tuples[i][attr].Str] = append(byValue[rel.Tuples[i][attr].Str], i)
	}
	values := make([]string, 0, len(byValue))
	for v := range byValue {
		values = append(values, v)
	}
	sort.Strings(values)
	for _, v := range values {
		child, err := t.build(rel, byValue[v], depth+1, path.And(predicate.StrPred(attr, v)))
		if err != nil {
			return nil, err
		}
		node.fan[v] = child
	}
	return node, nil
}

// bestSplit scores candidate splits by SSE reduction.
func (t *RegTree) bestSplit(rel *dataset.Relation, rows []int) (attr int, threshold float64, numeric, ok bool) {
	total := sseRows(rel, rows, t.yattr)
	bestGain := 1e-12
	for _, a := range t.SplitAttrs {
		if rel.Schema.Attr(a).Kind == dataset.Numeric {
			values := make([]float64, 0, len(rows))
			for _, i := range rows {
				values = append(values, rel.Tuples[i][a].Num)
			}
			sort.Float64s(values)
			// Exhaustive candidate thresholds for small nodes so regime
			// boundaries are hit exactly; quantile-sampled cuts for large
			// nodes (recursion refines them once the node shrinks).
			step := 1
			if len(values) > exhaustiveSplitLimit {
				step = len(values) / t.Candidates
			}
			var prev float64
			first := true
			for k := step; k < len(values); k += step {
				c := values[k-1]
				if c == values[len(values)-1] || (!first && c == prev) {
					continue
				}
				first, prev = false, c
				var left, right []int
				for _, i := range rows {
					if rel.Tuples[i][a].Num <= c {
						left = append(left, i)
					} else {
						right = append(right, i)
					}
				}
				if len(left) == 0 || len(right) == 0 {
					continue
				}
				gain := total - sseRows(rel, left, t.yattr) - sseRows(rel, right, t.yattr)
				if gain > bestGain {
					bestGain, attr, threshold, numeric, ok = gain, a, c, true, true
				}
			}
			continue
		}
		byValue := make(map[string][]int)
		for _, i := range rows {
			byValue[rel.Tuples[i][a].Str] = append(byValue[rel.Tuples[i][a].Str], i)
		}
		if len(byValue) < 2 {
			continue
		}
		var childSSE float64
		for _, part := range byValue {
			childSSE += sseRows(rel, part, t.yattr)
		}
		if gain := total - childSSE; gain > bestGain {
			bestGain, attr, numeric, ok = gain, a, false, true
		}
	}
	return attr, threshold, numeric, ok
}

func sseRows(rel *dataset.Relation, rows []int, yattr int) float64 {
	if len(rows) == 0 {
		return 0
	}
	var sum float64
	for _, i := range rows {
		sum += rel.Tuples[i][yattr].Num
	}
	mean := sum / float64(len(rows))
	var s float64
	for _, i := range rows {
		d := rel.Tuples[i][yattr].Num - mean
		s += d * d
	}
	return s
}

// Predict implements Method.
func (t *RegTree) Predict(tp dataset.Tuple) (float64, bool) {
	node := t.root
	for node != nil && !node.leaf {
		if node.numeric {
			if tp[node.attr].Null {
				return 0, false
			}
			if tp[node.attr].Num <= node.threshold {
				node = node.left
			} else {
				node = node.right
			}
			continue
		}
		if tp[node.attr].Null {
			return 0, false
		}
		child, ok := node.fan[tp[node.attr].Str]
		if !ok {
			return t.mean, true // unseen category: fall back to the mean
		}
		node = child
	}
	if node == nil {
		return 0, false
	}
	row, ok := featureRow(tp, t.xattrs)
	if !ok {
		return 0, false
	}
	return node.model.Predict(row), true
}

// ToRuleSet converts each leaf into a CRR whose condition is the leaf's
// root-to-leaf conjunction and whose ρ is the leaf model's maximum error on
// its part — "each node in a regression tree represents a CRR with the
// condition on conjunction" (§VI-E). The resulting set is the input to
// Algorithm 2 in the Fig. 9/10 experiments.
func (t *RegTree) ToRuleSet(rel *dataset.Relation) *core.RuleSet {
	rs := &core.RuleSet{
		Schema:   t.schema,
		XAttrs:   append([]int(nil), t.xattrs...),
		YAttr:    t.yattr,
		Fallback: t.mean,
	}
	var walk func(n *treeNode)
	walk = func(n *treeNode) {
		if n == nil {
			return
		}
		if n.leaf {
			// ρ from the leaf's own part.
			idxs := make([]int, 0)
			for i, tp := range rel.Tuples {
				if n.path.Sat(tp) {
					idxs = append(idxs, i)
				}
			}
			x, y, _ := core.FeatureRows(rel, idxs, t.xattrs, t.yattr)
			rho := regress.MaxAbsError(n.model, x, y)
			rs.Rules = append(rs.Rules, core.CRR{
				Model:  n.model,
				Rho:    rho,
				Cond:   predicate.NewDNF(n.path),
				XAttrs: rs.XAttrs,
				YAttr:  t.yattr,
			})
			return
		}
		walk(n.left)
		walk(n.right)
		keys := make([]string, 0, len(n.fan))
		for k := range n.fan {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			walk(n.fan[k])
		}
	}
	walk(t.root)
	return rs
}
