package baseline

import (
	"math/rand"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/regress"
)

// Forest is the conditional regression forest baseline [21]: an additive
// model averaging the predictions of B regression trees, each trained on a
// bootstrap sample of the training set. As the paper notes, each tree learns
// its own partition models, "leading to redundant regression models" — the
// forest's NumRules is the total leaf count over all trees.
type Forest struct {
	// Trees is the ensemble size B; 0 means 10.
	Trees int
	// MaxDepth bounds each member; 0 means 8.
	MaxDepth int
	// MinSamples per leaf; 0 means 8.
	MinSamples int
	// Trainer for leaf models; nil means OLS.
	Trainer regress.Trainer
	// Seed drives bootstrapping.
	Seed int64

	members []*RegTree
	mean    float64
}

// Name implements Method.
func (f *Forest) Name() string { return "Forest" }

// NumRules implements Method.
func (f *Forest) NumRules() int {
	n := 0
	for _, m := range f.members {
		n += m.NumRules()
	}
	return n
}

// Fit implements Method.
func (f *Forest) Fit(rel *dataset.Relation, xattrs []int, yattr int) error {
	if f.Trees <= 0 {
		f.Trees = 10
	}
	if f.MaxDepth <= 0 {
		f.MaxDepth = 8
	}
	if f.MinSamples <= 0 {
		f.MinSamples = 8
	}
	rng := rand.New(rand.NewSource(f.Seed))
	rows := nonNullRows(rel, xattrs, yattr)
	f.mean = meanOf(rel, rows, yattr)
	f.members = f.members[:0]
	if len(rows) == 0 {
		return nil
	}
	for b := 0; b < f.Trees; b++ {
		sample := dataset.NewRelation(rel.Schema)
		for i := 0; i < len(rows); i++ {
			sample.Tuples = append(sample.Tuples, rel.Tuples[rows[rng.Intn(len(rows))]])
		}
		tree := &RegTree{
			MaxDepth:   f.MaxDepth,
			MinSamples: f.MinSamples,
			Trainer:    f.Trainer,
		}
		if err := tree.Fit(sample, xattrs, yattr); err != nil {
			return err
		}
		f.members = append(f.members, tree)
	}
	return nil
}

// Predict implements Method: the bagged mean over members that produce a
// prediction.
func (f *Forest) Predict(t dataset.Tuple) (float64, bool) {
	if len(f.members) == 0 {
		return 0, false
	}
	var sum float64
	n := 0
	for _, m := range f.members {
		if p, ok := m.Predict(t); ok {
			sum += p
			n++
		}
	}
	if n == 0 {
		return f.mean, true
	}
	return sum / float64(n), true
}
