package baseline

import (
	"errors"
	"math"
	"sort"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/mat"
)

// AR is the auto-regression baseline [37]: y_t = c + Σ_{k=1..p} a_k·y_{t−k},
// fit by least squares on the training series ordered by the time attribute
// (the first X attribute). Prediction for a tuple uses the p training values
// preceding the tuple's time stamp — one-step-ahead evaluation, the standard
// protocol for AR baselines on held-out suffixes.
type AR struct {
	// Order is p; 0 means 4.
	Order int

	coef     []float64 // intercept followed by lag weights
	times    []float64 // sorted training time stamps
	values   []float64 // training y in time order
	timeAttr int
	mean     float64
}

// Name implements Method.
func (a *AR) Name() string { return "AR" }

// NumRules implements Method: one global model.
func (a *AR) NumRules() int {
	if a.coef == nil {
		return 0
	}
	return 1
}

var errNoTimeAttr = errors.New("baseline: time-series method needs at least one X attribute (the time stamp)")

// Fit implements Method.
func (a *AR) Fit(rel *dataset.Relation, xattrs []int, yattr int) error {
	if len(xattrs) == 0 {
		return errNoTimeAttr
	}
	if a.Order <= 0 {
		a.Order = 4
	}
	a.timeAttr = xattrs[0]
	a.times, a.values = seriesOf(rel, a.timeAttr, yattr)
	a.mean = meanSlice(a.values)
	p := a.Order
	if len(a.values) <= p+1 {
		a.coef = nil
		return nil
	}
	rows := len(a.values) - p
	design := mat.NewDense(rows, p+1)
	target := make([]float64, rows)
	for i := 0; i < rows; i++ {
		design.Set(i, 0, 1)
		for k := 1; k <= p; k++ {
			design.Set(i, k, a.values[i+p-k])
		}
		target[i] = a.values[i+p]
	}
	w, err := mat.LeastSquares(design, target, 1e-8)
	if err != nil {
		return err
	}
	a.coef = w
	return nil
}

// Predict implements Method.
func (a *AR) Predict(t dataset.Tuple) (float64, bool) {
	if a.coef == nil || t[a.timeAttr].Null {
		return 0, false
	}
	// Index of the first training stamp ≥ the tuple's time.
	pos := sort.SearchFloat64s(a.times, t[a.timeAttr].Num)
	p := a.Order
	if pos < p {
		return a.mean, true
	}
	if pos > len(a.values) {
		pos = len(a.values)
	}
	pred := a.coef[0]
	for k := 1; k <= p; k++ {
		pred += a.coef[k] * a.values[pos-k]
	}
	return pred, true
}

// DHR is the dynamic harmonic regression baseline [22]: y(t) fit by cosine
// and sine terms at a set of Fourier periods plus a linear trend, over the
// whole dataset. It captures global periodicity but cannot share models
// across conditions (the paper's contrast in §II-C).
type DHR struct {
	// Periods are the Fourier periods; empty means {24, 168, 365}.
	Periods []float64

	coef     []float64
	timeAttr int
}

// Name implements Method.
func (d *DHR) Name() string { return "DHR" }

// NumRules implements Method.
func (d *DHR) NumRules() int {
	if d.coef == nil {
		return 0
	}
	return 1
}

// Fit implements Method.
func (d *DHR) Fit(rel *dataset.Relation, xattrs []int, yattr int) error {
	if len(xattrs) == 0 {
		return errNoTimeAttr
	}
	if len(d.Periods) == 0 {
		d.Periods = []float64{24, 168, 365}
	}
	d.timeAttr = xattrs[0]
	times, values := seriesOf(rel, d.timeAttr, yattr)
	if len(values) == 0 {
		d.coef = nil
		return nil
	}
	cols := 2 + 2*len(d.Periods)
	design := mat.NewDense(len(values), cols)
	for i, t := range times {
		design.Set(i, 0, 1)
		design.Set(i, 1, t)
		for k, p := range d.Periods {
			design.Set(i, 2+2*k, math.Cos(2*math.Pi*t/p))
			design.Set(i, 3+2*k, math.Sin(2*math.Pi*t/p))
		}
	}
	w, err := mat.LeastSquares(design, values, 1e-8)
	if err != nil {
		return err
	}
	d.coef = w
	return nil
}

// Predict implements Method.
func (d *DHR) Predict(tp dataset.Tuple) (float64, bool) {
	if d.coef == nil || tp[d.timeAttr].Null {
		return 0, false
	}
	t := tp[d.timeAttr].Num
	pred := d.coef[0] + d.coef[1]*t
	for k, p := range d.Periods {
		pred += d.coef[2+2*k]*math.Cos(2*math.Pi*t/p) + d.coef[3+2*k]*math.Sin(2*math.Pi*t/p)
	}
	return pred, true
}

// Recur is the recurrence-time regression baseline [23]: it estimates the
// dominant recurrence period of the series by autocorrelation, partitions
// the period into phase bins, and learns one linear model of y over t per
// bin. Each period's data re-fits the same phase bins, but the method has no
// notion of sharing a model across bins or conditions.
type Recur struct {
	// Bins is the number of phase bins; 0 means 8.
	Bins int
	// MaxLag bounds the autocorrelation search; 0 means len(series)/2.
	MaxLag int

	period     float64
	models     [][2]float64 // per-bin (intercept, slope) over phase
	timeAttr   int
	timeOrigin float64
	mean       float64
}

// Name implements Method.
func (r *Recur) Name() string { return "Recur" }

// NumRules implements Method.
func (r *Recur) NumRules() int { return len(r.models) }

// Fit implements Method.
func (r *Recur) Fit(rel *dataset.Relation, xattrs []int, yattr int) error {
	if len(xattrs) == 0 {
		return errNoTimeAttr
	}
	if r.Bins <= 0 {
		r.Bins = 8
	}
	r.timeAttr = xattrs[0]
	times, values := seriesOf(rel, r.timeAttr, yattr)
	r.mean = meanSlice(values)
	r.models = nil
	if len(values) < 8 {
		return nil
	}
	r.period = dominantPeriod(values, r.MaxLag)
	if r.period <= 0 {
		r.period = float64(len(values))
	}
	// Scale the index-based period to the time axis.
	span := times[len(times)-1] - times[0]
	if span <= 0 {
		span = float64(len(times))
	}
	r.period *= span / float64(len(times))

	binOf := func(t float64) int {
		phase := math.Mod(t-times[0], r.period)
		if phase < 0 {
			phase += r.period
		}
		b := int(phase / r.period * float64(r.Bins))
		if b >= r.Bins {
			b = r.Bins - 1
		}
		return b
	}
	type acc struct{ sx, sy, sxx, sxy, n float64 }
	accs := make([]acc, r.Bins)
	for i, t := range times {
		b := binOf(t)
		phase := math.Mod(t-times[0], r.period)
		a := &accs[b]
		a.sx += phase
		a.sy += values[i]
		a.sxx += phase * phase
		a.sxy += phase * values[i]
		a.n++
	}
	r.models = make([][2]float64, r.Bins)
	for b, a := range accs {
		if a.n == 0 {
			r.models[b] = [2]float64{r.mean, 0}
			continue
		}
		det := a.n*a.sxx - a.sx*a.sx
		if math.Abs(det) < 1e-12 {
			r.models[b] = [2]float64{a.sy / a.n, 0}
			continue
		}
		slope := (a.n*a.sxy - a.sx*a.sy) / det
		intercept := (a.sy - slope*a.sx) / a.n
		r.models[b] = [2]float64{intercept, slope}
	}
	r.timeOrigin = times[0]
	return nil
}

// Predict implements Method.
func (r *Recur) Predict(tp dataset.Tuple) (float64, bool) {
	if len(r.models) == 0 || tp[r.timeAttr].Null {
		return 0, false
	}
	t := tp[r.timeAttr].Num
	phase := math.Mod(t-r.timeOrigin, r.period)
	if phase < 0 {
		phase += r.period
	}
	b := int(phase / r.period * float64(r.Bins))
	if b >= r.Bins {
		b = r.Bins - 1
	}
	m := r.models[b]
	return m[0] + m[1]*phase, true
}

// dominantPeriod finds the lag (≥ 2) with the highest autocorrelation.
func dominantPeriod(values []float64, maxLag int) float64 {
	n := len(values)
	if maxLag <= 0 || maxLag > n/2 {
		maxLag = n / 2
	}
	mean := meanSlice(values)
	var denom float64
	for _, v := range values {
		d := v - mean
		denom += d * d
	}
	if denom == 0 {
		return 0
	}
	bestLag, bestCorr := 0, 0.0
	for lag := 2; lag <= maxLag; lag++ {
		var num float64
		for i := lag; i < n; i++ {
			num += (values[i] - mean) * (values[i-lag] - mean)
		}
		// Length-normalized estimator: without the n/(n−lag) correction the
		// summand count shrinks with the lag and short lags always win.
		corr := (num / float64(n-lag)) / (denom / float64(n))
		if corr > bestCorr {
			bestCorr, bestLag = corr, lag
		}
	}
	return float64(bestLag)
}

// seriesOf extracts the (time, y) series sorted by time, skipping nulls.
func seriesOf(rel *dataset.Relation, timeAttr, yattr int) (times, values []float64) {
	type pt struct{ t, y float64 }
	var pts []pt
	for _, tp := range rel.Tuples {
		if tp[timeAttr].Null || tp[yattr].Null {
			continue
		}
		pts = append(pts, pt{tp[timeAttr].Num, tp[yattr].Num})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].t < pts[j].t })
	times = make([]float64, len(pts))
	values = make([]float64, len(pts))
	for i, p := range pts {
		times[i], values[i] = p.t, p.y
	}
	return times, values
}

func meanSlice(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
