package baseline

import (
	"testing"

	"github.com/crrlab/crr/internal/dataset"
)

func TestEBLRFitsStep(t *testing.T) {
	rel := stepData(400, 21)
	m := &EBLR{Rounds: 15}
	if err := m.Fit(rel, []int{0}, 1); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if m.Name() != "EBLR" {
		t.Errorf("Name = %s", m.Name())
	}
	if r := rmseOf(m, rel, 1, 0); r > 2 {
		t.Errorf("EBLR RMSE = %v on a step function", r)
	}
	if m.NumRules() == 0 || m.NumRules()%2 != 0 {
		t.Errorf("NumRules = %d, want a positive even count (two models per stage)", m.NumRules())
	}
}

func TestEBLRBoostingImproves(t *testing.T) {
	rel := stepData(400, 22)
	short := &EBLR{Rounds: 1}
	if err := short.Fit(rel, []int{0}, 1); err != nil {
		t.Fatal(err)
	}
	long := &EBLR{Rounds: 20}
	if err := long.Fit(rel, []int{0}, 1); err != nil {
		t.Fatal(err)
	}
	if rmseOf(long, rel, 1, 0) >= rmseOf(short, rel, 1, 0) {
		t.Error("more boosting rounds did not reduce training RMSE")
	}
}

func TestEBLRRuleCountGrowsWithRounds(t *testing.T) {
	rel := stepData(300, 23)
	a := &EBLR{Rounds: 5}
	if err := a.Fit(rel, []int{0}, 1); err != nil {
		t.Fatal(err)
	}
	b := &EBLR{Rounds: 25}
	if err := b.Fit(rel, []int{0}, 1); err != nil {
		t.Fatal(err)
	}
	if b.NumRules() <= a.NumRules() {
		t.Errorf("rules did not grow with rounds: %d vs %d — no sharing is the point", b.NumRules(), a.NumRules())
	}
}

func TestEBLREmptyAndNull(t *testing.T) {
	s := dataset.MustSchema(
		dataset.Attribute{Name: "X", Kind: dataset.Numeric},
		dataset.Attribute{Name: "Y", Kind: dataset.Numeric},
	)
	m := &EBLR{}
	if err := m.Fit(dataset.NewRelation(s), []int{0}, 1); err != nil {
		t.Fatal(err)
	}
	if m.NumRules() != 0 {
		t.Error("stages fit on empty data")
	}
	rel := stepData(100, 24)
	if err := m.Fit(rel, []int{0}, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Predict(dataset.Tuple{dataset.Null(), dataset.Num(0)}); ok {
		t.Error("prediction on a null feature")
	}
}

func TestEBLRConstantTarget(t *testing.T) {
	s := dataset.MustSchema(
		dataset.Attribute{Name: "X", Kind: dataset.Numeric},
		dataset.Attribute{Name: "Y", Kind: dataset.Numeric},
	)
	rel := dataset.NewRelation(s)
	for i := 0; i < 50; i++ {
		rel.MustAppend(dataset.Tuple{dataset.Num(float64(i)), dataset.Num(7)})
	}
	m := &EBLR{Rounds: 10}
	if err := m.Fit(rel, []int{0}, 1); err != nil {
		t.Fatal(err)
	}
	// No residual structure: boosting should stop immediately.
	if m.NumRules() > 2 {
		t.Errorf("constant target produced %d leaf models", m.NumRules())
	}
	if p, ok := m.Predict(rel.Tuples[0]); !ok || p < 6.9 || p > 7.1 {
		t.Errorf("Predict = %v, %v", p, ok)
	}
}
