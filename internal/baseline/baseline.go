// Package baseline implements the comparison methods of the paper's
// evaluation (§VI-A4): RegTree (regression tree [5], [12]), Forest
// (regression forest [21]), AR (auto-regression [37]), DHR (dynamic harmonic
// regression [22]), Recur (recurrence-time regression [23]), and the
// sampling-based conditional learners SampLR [19] and MCLR [20].
//
// SampLR and MCLR are conditional *logistic* regression methods in the
// literature; since this evaluation has a numeric regression target they are
// implemented here as sampling-based conditional *linear* learners with the
// same cost profile (many models trained over sampled parts, no sharing) —
// the property the paper's figures measure. DESIGN.md records the
// substitution.
package baseline

import (
	"github.com/crrlab/crr/internal/dataset"
)

// Method is the uniform interface the evaluation harness drives: fit on a
// relation, predict per tuple, report the number of regression rules/models
// the method materialized (the #Rules axis of Figures 2–4).
type Method interface {
	// Name returns the method's display name as used in the paper's figures.
	Name() string
	// Fit trains the method to predict yattr from xattrs over rel.
	Fit(rel *dataset.Relation, xattrs []int, yattr int) error
	// Predict returns the prediction for t; ok is false when the method has
	// no applicable model (callers fall back to the training mean).
	Predict(t dataset.Tuple) (float64, bool)
	// NumRules reports how many regression rules/models the fit produced.
	NumRules() int
}

// meanOf returns the mean of the non-null numeric column idx over the tuples
// at idxs.
func meanOf(rel *dataset.Relation, idxs []int, idx int) float64 {
	var s float64
	n := 0
	for _, i := range idxs {
		if !rel.Tuples[i][idx].Null {
			s += rel.Tuples[i][idx].Num
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// nonNullRows returns the indices of tuples with non-null xattrs and yattr.
func nonNullRows(rel *dataset.Relation, xattrs []int, yattr int) []int {
	var out []int
	for i, t := range rel.Tuples {
		if t[yattr].Null {
			continue
		}
		ok := true
		for _, a := range xattrs {
			if t[a].Null {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, i)
		}
	}
	return out
}

// featureRow extracts the xattrs values of t; ok is false on any null.
func featureRow(t dataset.Tuple, xattrs []int) ([]float64, bool) {
	row := make([]float64, len(xattrs))
	for i, a := range xattrs {
		if t[a].Null {
			return nil, false
		}
		row[i] = t[a].Num
	}
	return row, true
}
