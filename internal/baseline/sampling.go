package baseline

import (
	"math/rand"
	"sort"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/regress"
)

// SampLR is the sampling-based conditional learner standing in for
// conditional logistic regression with sparse-data sampling [19]. It
// partitions the training data into k strata by the first X attribute and
// trains one linear model per stratum on a bootstrap of that stratum. The
// stratum count grows with the data size, so training cost grows
// super-linearly and the model count grows with |D| — the cost profile the
// paper reports (its results are "omitted in larger data sizes" for this
// reason). There is no sharing across strata.
type SampLR struct {
	// StratumSize is the target tuples per stratum; 0 means 64.
	StratumSize int
	// Resamples is the bootstrap factor per stratum; 0 means 4.
	Resamples int
	// Seed drives sampling.
	Seed int64

	bounds []float64 // stratum upper bounds on the first X attribute
	models []regress.Model
	xattrs []int
	mean   float64
}

// Name implements Method.
func (s *SampLR) Name() string { return "SampLR" }

// NumRules implements Method.
func (s *SampLR) NumRules() int { return len(s.models) }

// Fit implements Method.
func (s *SampLR) Fit(rel *dataset.Relation, xattrs []int, yattr int) error {
	if len(xattrs) == 0 {
		return errNoTimeAttr
	}
	if s.StratumSize <= 0 {
		s.StratumSize = 64
	}
	if s.Resamples <= 0 {
		s.Resamples = 4
	}
	rng := rand.New(rand.NewSource(s.Seed))
	s.xattrs = append([]int(nil), xattrs...)
	rows := nonNullRows(rel, xattrs, yattr)
	s.mean = meanOf(rel, rows, yattr)
	s.bounds, s.models = nil, nil
	if len(rows) == 0 {
		return nil
	}
	// Strata: contiguous value ranges of the first X attribute.
	key := xattrs[0]
	sorted := append([]int(nil), rows...)
	sortByAttr(rel, sorted, key)
	k := (len(sorted) + s.StratumSize - 1) / s.StratumSize
	if k < 1 {
		k = 1
	}
	per := (len(sorted) + k - 1) / k
	trainer := regress.LinearTrainer{}
	for start := 0; start < len(sorted); start += per {
		end := start + per
		if end > len(sorted) {
			end = len(sorted)
		}
		stratum := sorted[start:end]
		// Bootstrap-train Resamples times and keep the average weights —
		// the Monte-Carlo style cost without its variance.
		var agg *regress.Linear
		for rep := 0; rep < s.Resamples; rep++ {
			sample := make([]int, len(stratum))
			for i := range sample {
				sample[i] = stratum[rng.Intn(len(stratum))]
			}
			x, y, _ := core.FeatureRows(rel, sample, xattrs, yattr)
			m, err := trainer.Train(x, y)
			if err != nil {
				return err
			}
			lin := m.(*regress.Linear)
			if agg == nil {
				agg = regress.NewLinear(0, make([]float64, lin.Dim())...)
			}
			for i := range agg.W {
				agg.W[i] += lin.W[i] / float64(s.Resamples)
			}
		}
		s.models = append(s.models, agg)
		s.bounds = append(s.bounds, rel.Tuples[stratum[len(stratum)-1]][key].Num)
	}
	return nil
}

// Predict implements Method.
func (s *SampLR) Predict(t dataset.Tuple) (float64, bool) {
	if len(s.models) == 0 {
		return 0, false
	}
	row, ok := featureRow(t, s.xattrs)
	if !ok {
		return 0, false
	}
	v := t[s.xattrs[0]].Num
	for i, b := range s.bounds {
		if v <= b || i == len(s.bounds)-1 {
			return s.models[i].Predict(row), true
		}
	}
	return s.mean, true
}

// MCLR is the Monte-Carlo conditional learner standing in for efficient
// Monte-Carlo conditional logistic regression [20]: it draws many random
// subsamples of the training data, fits a linear model on each, and predicts
// with the ensemble average. The number of Monte-Carlo models grows with the
// data size and none are shared — again the paper's cost profile.
type MCLR struct {
	// SampleSize per draw; 0 means 128.
	SampleSize int
	// DrawsPerKilo scales the number of draws with the data size:
	// draws = max(8, DrawsPerKilo·|D|/1000); 0 means 16.
	DrawsPerKilo int
	// Seed drives sampling.
	Seed int64

	models []regress.Model
	xattrs []int
	mean   float64
}

// Name implements Method.
func (m *MCLR) Name() string { return "MCLR" }

// NumRules implements Method.
func (m *MCLR) NumRules() int { return len(m.models) }

// Fit implements Method.
func (m *MCLR) Fit(rel *dataset.Relation, xattrs []int, yattr int) error {
	if m.SampleSize <= 0 {
		m.SampleSize = 128
	}
	if m.DrawsPerKilo <= 0 {
		m.DrawsPerKilo = 16
	}
	rng := rand.New(rand.NewSource(m.Seed))
	m.xattrs = append([]int(nil), xattrs...)
	rows := nonNullRows(rel, xattrs, yattr)
	m.mean = meanOf(rel, rows, yattr)
	m.models = nil
	if len(rows) == 0 {
		return nil
	}
	draws := m.DrawsPerKilo * len(rows) / 1000
	if draws < 8 {
		draws = 8
	}
	trainer := regress.LinearTrainer{Ridge: 1e-6}
	for d := 0; d < draws; d++ {
		n := m.SampleSize
		if n > len(rows) {
			n = len(rows)
		}
		sample := make([]int, n)
		for i := range sample {
			sample[i] = rows[rng.Intn(len(rows))]
		}
		x, y, _ := core.FeatureRows(rel, sample, xattrs, yattr)
		model, err := trainer.Train(x, y)
		if err != nil {
			return err
		}
		m.models = append(m.models, model)
	}
	return nil
}

// Predict implements Method: the Monte-Carlo ensemble mean.
func (m *MCLR) Predict(t dataset.Tuple) (float64, bool) {
	if len(m.models) == 0 {
		return 0, false
	}
	row, ok := featureRow(t, m.xattrs)
	if !ok {
		return 0, false
	}
	var sum float64
	for _, model := range m.models {
		sum += model.Predict(row)
	}
	return sum / float64(len(m.models)), true
}

// sortByAttr sorts tuple indices ascending by the numeric attribute.
func sortByAttr(rel *dataset.Relation, idxs []int, attr int) {
	sort.Slice(idxs, func(i, j int) bool {
		return rel.Tuples[idxs[i]][attr].Num < rel.Tuples[idxs[j]][attr].Num
	})
}
