package baseline

import (
	"math"
	"math/rand"
	"testing"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/regress"
)

// stepData: y = 10 for x < 50, y = 90 for x ≥ 50, small bounded noise.
func stepData(n int, seed int64) *dataset.Relation {
	rng := rand.New(rand.NewSource(seed))
	s := dataset.MustSchema(
		dataset.Attribute{Name: "X", Kind: dataset.Numeric},
		dataset.Attribute{Name: "Y", Kind: dataset.Numeric},
	)
	r := dataset.NewRelation(s)
	for i := 0; i < n; i++ {
		x := 100 * float64(i) / float64(n)
		y := 10.0
		if x >= 50 {
			y = 90
		}
		y += 0.2 * (2*rng.Float64() - 1)
		r.MustAppend(dataset.Tuple{dataset.Num(x), dataset.Num(y)})
	}
	return r
}

func catData(n int, seed int64) *dataset.Relation {
	rng := rand.New(rand.NewSource(seed))
	s := dataset.MustSchema(
		dataset.Attribute{Name: "X", Kind: dataset.Numeric},
		dataset.Attribute{Name: "Tag", Kind: dataset.Categorical},
		dataset.Attribute{Name: "Y", Kind: dataset.Numeric},
	)
	r := dataset.NewRelation(s)
	base := map[string]float64{"a": 5, "b": 50, "c": 95}
	tags := []string{"a", "b", "c"}
	for i := 0; i < n; i++ {
		tag := tags[i%3]
		r.MustAppend(dataset.Tuple{
			dataset.Num(rng.Float64() * 10),
			dataset.Str(tag),
			dataset.Num(base[tag] + 0.1*(2*rng.Float64()-1)),
		})
	}
	return r
}

func rmseOf(m Method, rel *dataset.Relation, yattr int, fallback float64) float64 {
	var s float64
	n := 0
	for _, t := range rel.Tuples {
		if t[yattr].Null {
			continue
		}
		p, ok := m.Predict(t)
		if !ok {
			p = fallback
		}
		d := t[yattr].Num - p
		s += d * d
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(s / float64(n))
}

func TestRegTreeFitsStep(t *testing.T) {
	rel := stepData(400, 1)
	tree := &RegTree{MaxDepth: 6, MinSamples: 8}
	if err := tree.Fit(rel, []int{0}, 1); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if r := rmseOf(tree, rel, 1, 0); r > 0.5 {
		t.Errorf("RegTree RMSE = %v on a step function", r)
	}
	if tree.NumRules() < 2 {
		t.Errorf("leaves = %d, want ≥ 2", tree.NumRules())
	}
	if tree.Name() != "RegTree" {
		t.Errorf("Name = %s", tree.Name())
	}
}

func TestRegTreeRhoMStopsEarly(t *testing.T) {
	rel := stepData(400, 2)
	deep := &RegTree{MaxDepth: 10, MinSamples: 4}
	if err := deep.Fit(rel, []int{0}, 1); err != nil {
		t.Fatal(err)
	}
	tight := &RegTree{MaxDepth: 10, MinSamples: 4, RhoM: 0.5}
	if err := tight.Fit(rel, []int{0}, 1); err != nil {
		t.Fatal(err)
	}
	if tight.NumRules() > deep.NumRules() {
		t.Errorf("ρ_M stop grew the tree: %d vs %d leaves", tight.NumRules(), deep.NumRules())
	}
	// With a step function and ρ_M = 0.5, two leaves suffice.
	if tight.NumRules() != 2 {
		t.Errorf("ρ_M-stopped leaves = %d, want 2", tight.NumRules())
	}
}

func TestRegTreeCategoricalFan(t *testing.T) {
	rel := catData(300, 3)
	tree := &RegTree{MaxDepth: 4, MinSamples: 8}
	if err := tree.Fit(rel, []int{0, 1}, 2); err != nil {
		t.Fatal(err)
	}
	if r := rmseOf(tree, rel, 2, 0); r > 0.5 {
		t.Errorf("categorical RMSE = %v", r)
	}
	// Unseen category falls back to the mean rather than failing.
	p, ok := tree.Predict(dataset.Tuple{dataset.Num(1), dataset.Str("zz"), dataset.Num(0)})
	if !ok {
		t.Fatal("unseen category not handled")
	}
	if p < 5 || p > 95 {
		t.Errorf("unseen-category fallback = %v, want within data range", p)
	}
}

func TestRegTreePredictNull(t *testing.T) {
	rel := stepData(100, 4)
	tree := &RegTree{}
	if err := tree.Fit(rel, []int{0}, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := tree.Predict(dataset.Tuple{dataset.Null(), dataset.Num(0)}); ok {
		t.Error("Predict succeeded on a null feature")
	}
}

func TestRegTreeEmptyRelation(t *testing.T) {
	s := dataset.MustSchema(
		dataset.Attribute{Name: "X", Kind: dataset.Numeric},
		dataset.Attribute{Name: "Y", Kind: dataset.Numeric},
	)
	tree := &RegTree{}
	if err := tree.Fit(dataset.NewRelation(s), []int{0}, 1); err != nil {
		t.Fatal(err)
	}
	if tree.NumRules() != 0 {
		t.Error("leaves on empty relation")
	}
	if _, ok := tree.Predict(dataset.Tuple{dataset.Num(1), dataset.Num(0)}); ok {
		t.Error("prediction from empty tree")
	}
}

func TestRegTreeToRuleSet(t *testing.T) {
	rel := stepData(400, 5)
	tree := &RegTree{MaxDepth: 6, MinSamples: 8, RhoM: 0.5}
	if err := tree.Fit(rel, []int{0}, 1); err != nil {
		t.Fatal(err)
	}
	rs := tree.ToRuleSet(rel)
	if rs.NumRules() != tree.NumRules() {
		t.Fatalf("rule set has %d rules, tree has %d leaves", rs.NumRules(), tree.NumRules())
	}
	if cov := rs.Coverage(rel); cov != 1 {
		t.Errorf("leaf conjunctions cover %v of the data, want 1", cov)
	}
	if !rs.Holds(rel) {
		t.Error("leaf rules violated on training data (ρ from own part must hold)")
	}
	// Tree predictions and rule-set predictions agree tuple-by-tuple.
	for _, tp := range rel.Tuples {
		pt, _ := tree.Predict(tp)
		pr, _ := rs.Predict(tp)
		if math.Abs(pt-pr) > 1e-9 {
			t.Fatalf("tree/ruleset divergence: %v vs %v", pt, pr)
		}
	}
}

func TestRegTreeMLPLeaves(t *testing.T) {
	rel := stepData(200, 6)
	tree := &RegTree{MaxDepth: 3, MinSamples: 16, Trainer: regress.MLPTrainer{Hidden: 4, Epochs: 60, LR: 0.05, Seed: 1}}
	if err := tree.Fit(rel, []int{0}, 1); err != nil {
		t.Fatal(err)
	}
	if r := rmseOf(tree, rel, 1, 0); r > 10 {
		t.Errorf("MLP-leaf tree RMSE = %v", r)
	}
}

func TestForestAveragesAndCountsRules(t *testing.T) {
	rel := stepData(300, 7)
	f := &Forest{Trees: 5, MaxDepth: 4, Seed: 1}
	if err := f.Fit(rel, []int{0}, 1); err != nil {
		t.Fatal(err)
	}
	if f.Name() != "Forest" {
		t.Errorf("Name = %s", f.Name())
	}
	if r := rmseOf(f, rel, 1, 0); r > 5 {
		t.Errorf("forest RMSE = %v", r)
	}
	single := &RegTree{MaxDepth: 4}
	if err := single.Fit(rel, []int{0}, 1); err != nil {
		t.Fatal(err)
	}
	if f.NumRules() <= single.NumRules() {
		t.Errorf("forest rules (%d) not larger than one tree (%d) — redundancy is the point",
			f.NumRules(), single.NumRules())
	}
}

func TestForestEmpty(t *testing.T) {
	s := dataset.MustSchema(
		dataset.Attribute{Name: "X", Kind: dataset.Numeric},
		dataset.Attribute{Name: "Y", Kind: dataset.Numeric},
	)
	f := &Forest{Trees: 3}
	if err := f.Fit(dataset.NewRelation(s), []int{0}, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.Predict(dataset.Tuple{dataset.Num(1), dataset.Num(0)}); ok {
		t.Error("prediction from empty forest")
	}
}
