package baseline

import (
	"sort"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/regress"
)

// EBLR is an explainable-boosted-linear-regression baseline in the spirit of
// the paper's RegTree citation [5] (Ilic et al., Pattern Recognition 2021):
// stage-wise additive modeling where each stage fits a depth-1 split with a
// linear model per side on the current residuals, shrunk by a learning rate.
// Every stage adds two linear models, so the rule count grows linearly with
// the rounds — models are never shared, the property CRR's Figures 2–3
// contrast against.
type EBLR struct {
	// Rounds is the number of boosting stages; 0 means 20.
	Rounds int
	// LearningRate shrinks each stage's contribution; 0 means 0.3.
	LearningRate float64
	// Candidates bounds split thresholds scored per stage; 0 means 32.
	Candidates int

	stages []eblrStage
	base   float64
	xattrs []int
}

type eblrStage struct {
	attr      int // split attribute (index into xattrs)
	threshold float64
	left      regress.Model // x[attr] ≤ threshold
	right     regress.Model
	rate      float64
}

// Name implements Method.
func (e *EBLR) Name() string { return "EBLR" }

// NumRules implements Method: two leaf models per stage.
func (e *EBLR) NumRules() int { return 2 * len(e.stages) }

// Fit implements Method.
func (e *EBLR) Fit(rel *dataset.Relation, xattrs []int, yattr int) error {
	if e.Rounds <= 0 {
		e.Rounds = 20
	}
	if e.LearningRate <= 0 {
		e.LearningRate = 0.3
	}
	if e.Candidates <= 0 {
		e.Candidates = 32
	}
	e.xattrs = append([]int(nil), xattrs...)
	e.stages = nil
	rows := nonNullRows(rel, xattrs, yattr)
	if len(rows) == 0 {
		e.base = 0
		return nil
	}
	x, y, _ := core.FeatureRows(rel, rows, xattrs, yattr)
	// Residual boosting from the mean.
	e.base = meanFloat(y)
	res := make([]float64, len(y))
	for i := range y {
		res[i] = y[i] - e.base
	}
	trainer := regress.LinearTrainer{Ridge: 1e-9}
	for round := 0; round < e.Rounds; round++ {
		attr, threshold, ok := e.bestResidualSplit(x, res)
		if !ok {
			break
		}
		var lx, rx [][]float64
		var ly, ry []float64
		for i, row := range x {
			if row[attr] <= threshold {
				lx = append(lx, row)
				ly = append(ly, res[i])
			} else {
				rx = append(rx, row)
				ry = append(ry, res[i])
			}
		}
		if len(lx) == 0 || len(rx) == 0 {
			break
		}
		lm, err := trainer.Train(lx, ly)
		if err != nil {
			return err
		}
		rm, err := trainer.Train(rx, ry)
		if err != nil {
			return err
		}
		st := eblrStage{attr: attr, threshold: threshold, left: lm, right: rm, rate: e.LearningRate}
		e.stages = append(e.stages, st)
		for i, row := range x {
			res[i] -= st.rate * st.predict(row)
		}
	}
	return nil
}

// bestResidualSplit scores candidate thresholds by the residual SSE
// reduction of a mean split.
func (e *EBLR) bestResidualSplit(x [][]float64, res []float64) (attr int, threshold float64, ok bool) {
	bestGain := 1e-12
	total := sseFloat(res)
	for a := 0; a < len(e.xattrs); a++ {
		vals := make([]float64, len(x))
		for i, row := range x {
			vals[i] = row[a]
		}
		order := make([]int, len(x))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool { return vals[order[i]] < vals[order[j]] })
		// Exhaustive thresholds for small samples so regime boundaries are
		// hit exactly; quantile-sampled for large ones.
		step := 1
		if len(order) > exhaustiveSplitLimit {
			step = len(order) / e.Candidates
		}
		// Prefix sums over the sorted residuals.
		s1 := make([]float64, len(order)+1)
		s2 := make([]float64, len(order)+1)
		for i, oi := range order {
			s1[i+1] = s1[i] + res[oi]
			s2[i+1] = s2[i] + res[oi]*res[oi]
		}
		sseRange := func(lo, hi int) float64 {
			cnt := float64(hi - lo)
			if cnt == 0 {
				return 0
			}
			sum := s1[hi] - s1[lo]
			return (s2[hi] - s2[lo]) - sum*sum/cnt
		}
		for k := step; k < len(order); k += step {
			c := vals[order[k-1]]
			if k < len(order) && vals[order[k]] == c {
				continue // threshold must separate distinct values
			}
			gain := total - sseRange(0, k) - sseRange(k, len(order))
			if gain > bestGain {
				bestGain, attr, threshold, ok = gain, a, c, true
			}
		}
	}
	return attr, threshold, ok
}

func (st *eblrStage) predict(row []float64) float64 {
	if row[st.attr] <= st.threshold {
		return st.left.Predict(row)
	}
	return st.right.Predict(row)
}

// Predict implements Method.
func (e *EBLR) Predict(t dataset.Tuple) (float64, bool) {
	if len(e.xattrs) == 0 {
		return 0, false
	}
	row, ok := featureRow(t, e.xattrs)
	if !ok {
		return 0, false
	}
	pred := e.base
	for i := range e.stages {
		pred += e.stages[i].rate * e.stages[i].predict(row)
	}
	return pred, true
}

func meanFloat(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func sseFloat(v []float64) float64 {
	m := meanFloat(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s
}
