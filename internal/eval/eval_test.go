package eval

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"github.com/crrlab/crr/internal/dataset"
)

func TestRMSEAndMAE(t *testing.T) {
	pred := []float64{1, 2, 3}
	truth := []float64{1, 4, 3}
	if got := RMSE(pred, truth); math.Abs(got-math.Sqrt(4.0/3)) > 1e-12 {
		t.Errorf("RMSE = %v", got)
	}
	if got := MAE(pred, truth); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("MAE = %v", got)
	}
	if RMSE(nil, nil) != 0 || MAE(nil, nil) != 0 {
		t.Error("empty metrics should be 0")
	}
}

func TestRMSEPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	RMSE([]float64{1}, []float64{1, 2})
}

type constPredictor struct {
	v  float64
	ok bool
}

func (c constPredictor) Predict(dataset.Tuple) (float64, bool) { return c.v, c.ok }

func TestScore(t *testing.T) {
	s := dataset.MustSchema(dataset.Attribute{Name: "Y", Kind: dataset.Numeric})
	rel := dataset.NewRelation(s)
	rel.MustAppend(dataset.Tuple{dataset.Num(5)})
	rel.MustAppend(dataset.Tuple{dataset.Num(7)})
	rel.MustAppend(dataset.Tuple{dataset.Null()}) // skipped
	rmse, _ := Score(constPredictor{v: 6, ok: true}, rel, 0, 0)
	if math.Abs(rmse-1) > 1e-12 {
		t.Errorf("Score RMSE = %v, want 1", rmse)
	}
	// Uncovered predictor: every tuple scored against the fallback.
	rmse, _ = Score(constPredictor{ok: false}, rel, 0, 6)
	if math.Abs(rmse-1) > 1e-12 {
		t.Errorf("fallback RMSE = %v, want 1", rmse)
	}
}

func TestTimed(t *testing.T) {
	d := Timed(func() { time.Sleep(2 * time.Millisecond) })
	if d < time.Millisecond {
		t.Errorf("Timed = %v, want ≥ 1ms", d)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{2 * time.Second, "2.000s"},
		{3500 * time.Microsecond, "3.500ms"},
		{750 * time.Microsecond, "750µs"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Results", "Method", "RMSE")
	tb.AddRowf("CRR", 0.123456)
	tb.AddRowf("RegTree", 7)
	tb.AddRow("Short") // missing cell renders empty
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Results", "Method", "RMSE", "CRR", "0.1235", "RegTree", "7", "Short"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, separator, 3 rows
		t.Errorf("rendered %d lines, want 6:\n%s", len(lines), out)
	}
}

func TestTableDurationsAndDefault(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.AddRowf(1500*time.Millisecond, []int{1})
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1.500s") {
		t.Errorf("duration cell missing: %s", buf.String())
	}
}
