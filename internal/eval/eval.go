// Package eval provides the measurement utilities shared by the experiment
// harness: error metrics, wall-clock timing of fit/predict phases, and
// plain-text table rendering for the figures and tables of §VI.
package eval

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"github.com/crrlab/crr/internal/dataset"
)

// RMSE returns the root-mean-square difference between pred and truth; it
// panics on length mismatch.
func RMSE(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic("eval: RMSE length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// MAE returns the mean absolute difference between pred and truth.
func MAE(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic("eval: MAE length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - truth[i])
	}
	return s / float64(len(pred))
}

// Predictor matches core.RuleSet and baseline.Method prediction surfaces.
type Predictor interface {
	Predict(t dataset.Tuple) (float64, bool)
}

// viewPredictor is the columnar batch-classification surface (satisfied by
// *core.RuleSet): one call classifies every selected row of a view.
type viewPredictor interface {
	PredictView(v *dataset.View) ([]float64, []bool)
}

// Score evaluates p on rel's yattr with fallback for uncovered tuples,
// returning the RMSE and the evaluation wall time. Predictors exposing the
// columnar batch surface (PredictView) are scored in one columnar pass;
// the accumulation order and results match the per-tuple loop exactly.
func Score(p Predictor, rel *dataset.Relation, yattr int, fallback float64) (rmse float64, elapsed time.Duration) {
	start := time.Now()
	var sum float64
	n := 0
	if vp, ok := p.(viewPredictor); ok {
		sel := make([]int, 0, rel.Len())
		for i, t := range rel.Tuples {
			if !t[yattr].Null {
				sel = append(sel, i)
			}
		}
		preds, covered := vp.PredictView(&dataset.View{Cols: dataset.NewColumnSet(rel), Sel: sel})
		for j, i := range sel {
			v := preds[j]
			if !covered[j] {
				v = fallback
			}
			d := rel.Tuples[i][yattr].Num - v
			sum += d * d
			n++
		}
	} else {
		for _, t := range rel.Tuples {
			if t[yattr].Null {
				continue
			}
			v, ok := p.Predict(t)
			if !ok {
				v = fallback
			}
			d := t[yattr].Num - v
			sum += d * d
			n++
		}
	}
	elapsed = time.Since(start)
	if n == 0 {
		return 0, elapsed
	}
	return math.Sqrt(sum / float64(n)), elapsed
}

// Timed runs fn and returns its duration.
func Timed(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// Table renders aligned plain-text tables, the output format of
// cmd/crrbench.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: strings pass through, float64
// render with %.4g, ints with %d, time.Duration in seconds or milliseconds.
func (t *Table) AddRowf(cells ...any) {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			out[i] = v
		case float64:
			out[i] = fmt.Sprintf("%.4g", v)
		case int:
			out[i] = fmt.Sprintf("%d", v)
		case time.Duration:
			out[i] = FormatDuration(v)
		default:
			out[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(out...)
}

// FormatDuration renders a duration with units matched to its scale, the way
// the paper reports learning in seconds and evaluation in milliseconds.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
