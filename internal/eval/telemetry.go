package eval

import (
	"fmt"
	"strings"

	"github.com/crrlab/crr/internal/telemetry"
)

// TelemetrySummary renders a snapshot as the human-readable summary lines the
// CLIs print after a run: one "telemetry:" line with the discovery counters
// the paper's cost model is built on (conditions expanded, models trained,
// models shared), one "phases:" line with wall time per pipeline phase, and
// — when induction-strategy, compaction or prediction-index metrics were
// recorded — one line each for those. Returns nil for an empty snapshot, so
// an uninstrumented run prints nothing.
func TelemetrySummary(snap telemetry.Snapshot) []string {
	var lines []string
	if line := counterLine("telemetry", snap, [][2]string{
		{telemetry.MetricConditionsExpanded, "conditions expanded"},
		{telemetry.MetricModelsTrained, "models trained"},
		{telemetry.MetricModelsShared, "models shared"},
		{telemetry.MetricShareTests, "share tests"},
		{telemetry.MetricForcedRules, "forced rules"},
		{telemetry.MetricStatReuse, "stat reuse"},
	}); line != "" {
		lines = append(lines, line)
	}
	if line := counterLine("induction", snap, [][2]string{
		{telemetry.MetricInductionCandidatesGrown, "candidates grown"},
		{telemetry.MetricInductionRulesPruned, "rules pruned"},
		{telemetry.MetricInductionStabilityKept, "stability kept"},
		{telemetry.MetricInductionStabilityDropped, "stability dropped"},
	}); line != "" {
		lines = append(lines, line)
	}
	if line := counterLine("compaction", snap, [][2]string{
		{telemetry.MetricTranslations, "translations"},
		{telemetry.MetricFusions, "fusions"},
		{telemetry.MetricImplied, "implied dropped"},
		{telemetry.MetricSolverAttempts, "solver attempts"},
	}); line != "" {
		lines = append(lines, line)
	}
	if line := counterLine("prediction", snap, [][2]string{
		{telemetry.MetricIndexLookups, "index lookups"},
		{telemetry.MetricIndexMisses, "index misses"},
	}); line != "" {
		lines = append(lines, line)
	}
	var phases []string
	for _, name := range telemetry.Phases() {
		d, ok := snap.Durations[name]
		if !ok || d.Count == 0 {
			continue
		}
		phases = append(phases, fmt.Sprintf("%s=%s",
			strings.TrimPrefix(name, "phase."), FormatDuration(d.Total)))
	}
	if len(phases) > 0 {
		lines = append(lines, "phases: "+strings.Join(phases, " "))
	}
	return lines
}

// counterLine renders "<prefix>: label=v, ..." over the metrics present in
// the snapshot, or "" when none were recorded.
func counterLine(prefix string, snap telemetry.Snapshot, metrics [][2]string) string {
	var parts []string
	for _, m := range metrics {
		if v, ok := snap.Counters[m[0]]; ok {
			parts = append(parts, fmt.Sprintf("%s=%d", m[1], v))
		}
	}
	if len(parts) == 0 {
		return ""
	}
	return prefix + ": " + strings.Join(parts, ", ")
}
