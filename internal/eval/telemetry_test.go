package eval

import (
	"strings"
	"testing"

	"github.com/crrlab/crr/internal/telemetry"
)

func TestTelemetrySummaryEmpty(t *testing.T) {
	if lines := TelemetrySummary(telemetry.New().Snapshot()); lines != nil {
		t.Errorf("empty snapshot rendered %q, want nil", lines)
	}
}

func TestTelemetrySummaryDiscoveryOnly(t *testing.T) {
	reg := telemetry.New()
	reg.Counter(telemetry.MetricConditionsExpanded).Add(12)
	reg.Counter(telemetry.MetricModelsTrained).Add(7)
	reg.Counter(telemetry.MetricModelsShared).Add(5)
	stop := reg.Time(telemetry.PhaseDiscover)
	stop()

	lines := TelemetrySummary(reg.Snapshot())
	if len(lines) != 2 {
		t.Fatalf("got %d lines %q, want telemetry + phases", len(lines), lines)
	}
	for _, want := range []string{"telemetry: ", "conditions expanded=12", "models trained=7", "models shared=5"} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("line %q missing %q", lines[0], want)
		}
	}
	if !strings.HasPrefix(lines[1], "phases: ") || !strings.Contains(lines[1], "discover=") {
		t.Errorf("phases line = %q", lines[1])
	}
	// No compaction or prediction metrics recorded → no such lines.
	for _, l := range lines {
		if strings.HasPrefix(l, "compaction") || strings.HasPrefix(l, "prediction") {
			t.Errorf("unexpected line %q", l)
		}
	}
}

func TestTelemetrySummaryAllSections(t *testing.T) {
	reg := telemetry.New()
	reg.Counter(telemetry.MetricModelsTrained).Inc()
	reg.Counter(telemetry.MetricTranslations).Add(3)
	reg.Counter(telemetry.MetricIndexLookups).Add(9)
	reg.Counter(telemetry.MetricIndexMisses).Add(2)

	lines := TelemetrySummary(reg.Snapshot())
	joined := strings.Join(lines, "\n")
	for _, want := range []string{
		"telemetry: models trained=1",
		"compaction: translations=3",
		"prediction: index lookups=9, index misses=2",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("summary missing %q:\n%s", want, joined)
		}
	}
}

// TestTelemetrySummaryPhaseOrder: phases render in pipeline order regardless
// of recording order.
func TestTelemetrySummaryPhaseOrder(t *testing.T) {
	reg := telemetry.New()
	for _, p := range []string{telemetry.PhaseEvaluate, telemetry.PhaseLoad, telemetry.PhaseDiscover} {
		stop := reg.Time(p)
		stop()
	}
	lines := TelemetrySummary(reg.Snapshot())
	if len(lines) != 1 {
		t.Fatalf("lines = %q", lines)
	}
	line := lines[0]
	iLoad := strings.Index(line, "load=")
	iDisc := strings.Index(line, "discover=")
	iEval := strings.Index(line, "evaluate=")
	if iLoad < 0 || iDisc < 0 || iEval < 0 || !(iLoad < iDisc && iDisc < iEval) {
		t.Errorf("phases out of pipeline order: %q", line)
	}
}
