package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http"
	"testing"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/experiments"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
	"github.com/crrlab/crr/internal/wire"
)

// Codec-layer tests: the binary columnar format must be a pure transport
// swap — same requests, bitwise-identical answers — and negotiation must
// route each direction independently (Content-Type in, Accept out).

// postRaw posts body with the given headers and returns status, response
// content type, and body.
func postRaw(t testing.TB, url, contentType, accept string, body []byte) (int, string, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), out
}

// encodeWireBatch renders rel as a binary columnar request body.
func encodeWireBatch(t testing.TB, rel *dataset.Relation, opts map[string]string, chunk int) []byte {
	t.Helper()
	wb := batchFromColumnSet(dataset.NewColumnSet(rel))
	wb.Options = opts
	var buf bytes.Buffer
	if err := wire.EncodeBatch(&buf, wb, wire.EncodeOptions{ChunkRows: chunk}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// specRules mines a small rule set for one evaluation dataset.
func specRules(t *testing.T, spec experiments.DatasetSpec, rows int) *core.RuleSet {
	t.Helper()
	rel := spec.Gen(rows)
	preds := predicate.Generate(rel, spec.CondAttrs, predicate.GeneratorConfig{
		Kind: predicate.Binary, Size: 32,
	})
	res, err := core.Discover(context.Background(), rel, core.WithConfig(core.DiscoverConfig{
		XAttrs:  spec.XAttrs,
		YAttr:   spec.YAttr,
		RhoM:    spec.RhoM,
		Preds:   preds,
		Trainer: regress.LinearTrainer{},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rules.NumRules() == 0 {
		t.Fatal("no rules discovered")
	}
	return res.Rules
}

// TestBinaryPredictParity: across all five evaluation generators, with
// injected nulls and multi-frame encoding, /v1/predict answers the binary
// columnar request bitwise-identically to the JSON request and to the
// in-process columnar classifier — explain metadata included.
func TestBinaryPredictParity(t *testing.T) {
	for _, spec := range []experiments.DatasetSpec{
		experiments.TaxSpec(), experiments.ElectricitySpec(), experiments.AbaloneSpec(),
		experiments.AirQualitySpec(), experiments.BirdMapSpec(),
	} {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			rules := specRules(t, spec, 500)
			_, ts := newTestServer(t, Config{}, rules)

			rng := rand.New(rand.NewSource(41))
			check := spec.Gen(300).Clone()
			check.MaskMissing(spec.YAttr, 0.05, rng)

			wantP, wantC, wantIDs := rules.PredictViewExplained(dataset.NewColumnSet(check).View())

			// JSON request.
			objs := make([]map[string]any, check.Len())
			for i, tp := range check.Tuples {
				objs[i] = encodeTuple(check.Schema, tp)
			}
			jbody, err := json.Marshal(map[string]any{"tuples": objs})
			if err != nil {
				t.Fatal(err)
			}
			status, _, jout := postRaw(t, ts.URL+"/v1/predict?explain=1", "application/json", "", jbody)
			if status != http.StatusOK {
				t.Fatalf("json status %d: %s", status, jout)
			}
			var jresp struct {
				Predictions []struct {
					Value   float64 `json:"value"`
					Covered bool    `json:"covered"`
					Rule    *int    `json:"rule"`
				} `json:"predictions"`
			}
			if err := json.Unmarshal(jout, &jresp); err != nil {
				t.Fatal(err)
			}

			// Binary request, chunked to force multi-frame reassembly.
			status, ct, bout := postRaw(t, ts.URL+"/v1/predict?explain=1",
				wire.ContentType, "", encodeWireBatch(t, check, nil, 64))
			if status != http.StatusOK {
				t.Fatalf("binary status %d: %s", status, bout)
			}
			if ct != wire.ContentType {
				t.Fatalf("binary response content type %q", ct)
			}
			bresp, err := wire.DecodePredictions(bytes.NewReader(bout), wire.DecodeLimits{})
			if err != nil {
				t.Fatal(err)
			}

			if len(jresp.Predictions) != check.Len() || len(bresp.Values) != check.Len() {
				t.Fatalf("lengths json=%d binary=%d want %d", len(jresp.Predictions), len(bresp.Values), check.Len())
			}
			for i := range wantP {
				jp := jresp.Predictions[i]
				if math.Float64bits(jp.Value) != math.Float64bits(wantP[i]) || jp.Covered != wantC[i] {
					t.Fatalf("tuple %d: json (%v,%v), in-process (%v,%v)", i, jp.Value, jp.Covered, wantP[i], wantC[i])
				}
				if math.Float64bits(bresp.Values[i]) != math.Float64bits(wantP[i]) || bresp.Covered[i] != wantC[i] {
					t.Fatalf("tuple %d: binary (%v,%v), in-process (%v,%v)", i, bresp.Values[i], bresp.Covered[i], wantP[i], wantC[i])
				}
				jid := -1
				if jp.Rule != nil {
					jid = *jp.Rule
				}
				if jid != wantIDs[i] || bresp.RuleIDs[i] != wantIDs[i] {
					t.Fatalf("tuple %d: rule ids json=%d binary=%d want %d", i, jid, bresp.RuleIDs[i], wantIDs[i])
				}
			}
		})
	}
}

// TestBinaryCheckParity: /v1/check over the binary codec returns exactly
// the JSON violations, repairs included.
func TestBinaryCheckParity(t *testing.T) {
	rel, rules := taxRules(t, 800)
	_, ts := newTestServer(t, Config{}, rules)

	check := rel.Clone()
	ytax := rel.Schema.MustIndex("Tax")
	for i, tp := range check.Tuples {
		if i%5 == 0 {
			nt := tp.Clone()
			nt[ytax] = dataset.Num(tp[ytax].Num + 500)
			check.Tuples[i] = nt
		}
	}

	objs := make([]map[string]any, check.Len())
	for i, tp := range check.Tuples {
		objs[i] = encodeTuple(check.Schema, tp)
	}
	jbody, _ := json.Marshal(map[string]any{"tuples": objs})
	status, _, jout := postRaw(t, ts.URL+"/v1/check", "application/json", "", jbody)
	if status != http.StatusOK {
		t.Fatalf("json status %d: %s", status, jout)
	}
	var jresp struct {
		Checked    int `json:"checked"`
		Violations []struct {
			Tuple     int      `json:"tuple"`
			Rule      int      `json:"rule"`
			Observed  float64  `json:"observed"`
			Predicted float64  `json:"predicted"`
			Excess    float64  `json:"excess"`
			Repair    *float64 `json:"repair"`
		} `json:"violations"`
	}
	if err := json.Unmarshal(jout, &jresp); err != nil {
		t.Fatal(err)
	}
	if len(jresp.Violations) == 0 {
		t.Fatal("no violations; parity check vacuous")
	}

	status, _, bout := postRaw(t, ts.URL+"/v1/check", wire.ContentType, "", encodeWireBatch(t, check, nil, 100))
	if status != http.StatusOK {
		t.Fatalf("binary status %d: %s", status, bout)
	}
	brep, err := wire.DecodeCheck(bytes.NewReader(bout), wire.DecodeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if brep.Checked != jresp.Checked || len(brep.Violations) != len(jresp.Violations) {
		t.Fatalf("binary %d/%d, json %d/%d", brep.Checked, len(brep.Violations), jresp.Checked, len(jresp.Violations))
	}
	for i, jv := range jresp.Violations {
		bv := brep.Violations[i]
		if bv.Tuple != jv.Tuple || bv.Rule != jv.Rule ||
			math.Float64bits(bv.Observed) != math.Float64bits(jv.Observed) ||
			math.Float64bits(bv.Predicted) != math.Float64bits(jv.Predicted) ||
			math.Float64bits(bv.Excess) != math.Float64bits(jv.Excess) {
			t.Fatalf("violation %d: binary %+v, json %+v", i, bv, jv)
		}
		switch {
		case (bv.Repair == nil) != (jv.Repair == nil):
			t.Fatalf("violation %d: repair presence differs", i)
		case bv.Repair != nil && math.Float64bits(*bv.Repair) != math.Float64bits(*jv.Repair):
			t.Fatalf("violation %d: repair %v, json %v", i, *bv.Repair, *jv.Repair)
		}
	}
}

// TestBinaryImputeParity: /v1/impute fills the same cells with the same
// values under both codecs, and the binary response batch materializes to
// the JSON tuples.
func TestBinaryImputeParity(t *testing.T) {
	rel, rules := taxRules(t, 800)
	_, ts := newTestServer(t, Config{}, rules)

	holey := rel.Clone()
	holey.Tuples = holey.Tuples[:100]
	ytax := rel.Schema.MustIndex("Tax")
	for i := range holey.Tuples {
		if i%3 == 0 {
			nt := holey.Tuples[i].Clone()
			nt[ytax] = dataset.Null()
			holey.Tuples[i] = nt
		}
	}

	objs := make([]map[string]any, holey.Len())
	for i, tp := range holey.Tuples {
		objs[i] = encodeTuple(holey.Schema, tp)
	}
	jbody, _ := json.Marshal(map[string]any{"tuples": objs, "use_fallback": true})
	status, _, jout := postRaw(t, ts.URL+"/v1/impute", "application/json", "", jbody)
	if status != http.StatusOK {
		t.Fatalf("json status %d: %s", status, jout)
	}
	var jresp struct {
		Column  string           `json:"column"`
		Imputed int              `json:"imputed"`
		Failed  int              `json:"failed"`
		Tuples  []map[string]any `json:"tuples"`
	}
	if err := json.Unmarshal(jout, &jresp); err != nil {
		t.Fatal(err)
	}
	if jresp.Imputed == 0 {
		t.Fatal("nothing imputed; parity check vacuous")
	}

	status, _, bout := postRaw(t, ts.URL+"/v1/impute", wire.ContentType, "",
		encodeWireBatch(t, holey, map[string]string{wire.OptFallback: "1"}, 0))
	if status != http.StatusOK {
		t.Fatalf("binary status %d: %s", status, bout)
	}
	brep, err := wire.DecodeImpute(bytes.NewReader(bout), wire.DecodeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if brep.Column != jresp.Column || brep.Imputed != jresp.Imputed || brep.Failed != jresp.Failed {
		t.Fatalf("binary %s/%d/%d, json %s/%d/%d",
			brep.Column, brep.Imputed, brep.Failed, jresp.Column, jresp.Imputed, jresp.Failed)
	}
	// Rebuild tuples from the binary batch and compare against JSON's.
	cols := make([]dataset.AssembledColumn, len(brep.Batch.Cols))
	for i, c := range brep.Batch.Cols {
		cols[i] = dataset.AssembledColumn{Floats: c.Floats, Codes: c.Codes, Dict: c.Dict, Nulls: c.Nulls}
	}
	cs, err := dataset.AssembleColumnSet(holey.Schema, brep.Batch.Rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	filled := cs.Materialize()
	for i, obj := range jresp.Tuples {
		got := encodeTuple(holey.Schema, filled.Tuples[i])
		jb, _ := json.Marshal(obj)
		gb, _ := json.Marshal(got)
		if !bytes.Equal(jb, gb) {
			t.Fatalf("tuple %d: binary %s, json %s", i, gb, jb)
		}
	}
}

// TestNegotiation: Content-Type picks the decoder, Accept picks the
// encoder, and the two vary independently.
func TestNegotiation(t *testing.T) {
	rel, rules := taxRules(t, 500)
	_, ts := newTestServer(t, Config{}, rules)

	jbody, _ := json.Marshal(map[string]any{"tuple": encodeTuple(rel.Schema, rel.Tuples[0])})
	bbody := encodeWireBatch(t, &dataset.Relation{Schema: rel.Schema, Tuples: rel.Tuples[:1]}, nil, 0)

	cases := []struct {
		name, ct, accept string
		body             []byte
		wantCT           string
	}{
		{"json to json", "application/json", "", jbody, "application/json"},
		{"json to binary", "application/json", wire.ContentType, jbody, wire.ContentType},
		{"binary to binary", wire.ContentType, "", bbody, wire.ContentType},
		{"binary to json", wire.ContentType, "application/json", bbody, "application/json"},
		{"default is json", "", "", jbody, "application/json"},
		{"unknown accept mirrors request", "application/json", "text/html", jbody, "application/json"},
	}
	for _, c := range cases {
		status, ct, out := postRaw(t, ts.URL+"/v1/predict", c.ct, c.accept, c.body)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", c.name, status, out)
		}
		if ct != c.wantCT {
			t.Fatalf("%s: content type %q, want %q", c.name, ct, c.wantCT)
		}
	}
}

// TestNegotiationErrors: unknown Content-Type is a 415 with a stable code;
// garbage binary bodies are a 400 — and the error envelope is always JSON,
// whatever format was negotiated.
func TestNegotiationErrors(t *testing.T) {
	_, rules := taxRules(t, 500)
	_, ts := newTestServer(t, Config{}, rules)

	type envelope struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	cases := []struct {
		name, ct   string
		body       []byte
		wantStatus int
		wantCode   string
	}{
		{"unknown content type", "application/xml", []byte("<x/>"), http.StatusUnsupportedMediaType, CodeUnsupportedMedia},
		{"binary garbage", wire.ContentType, []byte("not a crr stream"), http.StatusBadRequest, CodeInvalidArgument},
		{"binary truncated", wire.ContentType, encodeWireBatch(t, func() *dataset.Relation {
			rel, _ := taxRules(t, 10)
			return rel
		}(), nil, 0)[:20], http.StatusBadRequest, CodeInvalidArgument},
		{"binary empty batch", wire.ContentType, func() []byte {
			rel, _ := taxRules(t, 10)
			empty := &dataset.Relation{Schema: rel.Schema}
			return encodeWireBatch(t, empty, nil, 0)
		}(), http.StatusBadRequest, CodeInvalidArgument},
	}
	for _, c := range cases {
		status, ct, out := postRaw(t, ts.URL+"/v1/predict", c.ct, wire.ContentType, c.body)
		if status != c.wantStatus {
			t.Fatalf("%s: status %d (%s), want %d", c.name, status, out, c.wantStatus)
		}
		var e envelope
		if err := json.Unmarshal(out, &e); err != nil {
			t.Fatalf("%s: error body is not the JSON envelope (ct %s): %s", c.name, ct, out)
		}
		if e.Error.Code != c.wantCode {
			t.Fatalf("%s: code %q, want %q", c.name, e.Error.Code, c.wantCode)
		}
	}
}

// TestBinaryUnknownAttribute: a wire column that is not in the artifact
// schema is rejected, mirroring the JSON unknown-key contract.
func TestBinaryUnknownAttribute(t *testing.T) {
	_, rules := taxRules(t, 500)
	_, ts := newTestServer(t, Config{}, rules)

	wb := &wire.Batch{
		Schema: wire.Schema{Names: []string{"Salry"}, Kinds: []wire.Kind{wire.Float64}},
		Rows:   1,
		Cols:   []wire.Col{{Floats: []float64{100}}},
	}
	var buf bytes.Buffer
	if err := wire.EncodeBatch(&buf, wb, wire.EncodeOptions{}); err != nil {
		t.Fatal(err)
	}
	status, _, out := postRaw(t, ts.URL+"/v1/predict", wire.ContentType, "", buf.Bytes())
	if status != http.StatusBadRequest {
		t.Fatalf("status %d: %s", status, out)
	}
	if !bytes.Contains(out, []byte("Salry")) {
		t.Fatalf("error does not name the offending attribute: %s", out)
	}
}

// TestBinaryAbsentColumnIsNull: omitting a schema attribute from the wire
// schema behaves exactly like omitting the key in JSON — the column decodes
// as all-null, and predictions agree bitwise between the two spellings.
func TestBinaryAbsentColumnIsNull(t *testing.T) {
	rel, rules := taxRules(t, 500)
	_, ts := newTestServer(t, Config{}, rules)

	salary := rel.Schema.MustIndex("Salary")
	state := rel.Schema.MustIndex("State")

	// JSON: only Salary and State present.
	objs := make([]map[string]any, 50)
	for i := 0; i < 50; i++ {
		tp := rel.Tuples[i]
		objs[i] = map[string]any{
			"Salary": tp[salary].Num,
			"State":  tp[state].Str,
		}
	}
	jbody, _ := json.Marshal(map[string]any{"tuples": objs})
	status, _, jout := postRaw(t, ts.URL+"/v1/predict", "application/json", "", jbody)
	if status != http.StatusOK {
		t.Fatalf("json status %d: %s", status, jout)
	}
	var jresp predictResponse
	if err := json.Unmarshal(jout, &jresp); err != nil {
		t.Fatal(err)
	}

	// Binary: a two-column wire schema.
	floats := make([]float64, 50)
	codes := make([]uint32, 50)
	var dict []string
	seen := map[string]uint32{}
	for i := 0; i < 50; i++ {
		floats[i] = rel.Tuples[i][salary].Num
		s := rel.Tuples[i][state].Str
		code, ok := seen[s]
		if !ok {
			code = uint32(len(dict))
			seen[s] = code
			dict = append(dict, s)
		}
		codes[i] = code
	}
	wb := &wire.Batch{
		Schema: wire.Schema{Names: []string{"State", "Salary"}, Kinds: []wire.Kind{wire.String, wire.Float64}},
		Rows:   50,
		Cols:   []wire.Col{{Codes: codes, Dict: dict}, {Floats: floats}},
	}
	var buf bytes.Buffer
	if err := wire.EncodeBatch(&buf, wb, wire.EncodeOptions{}); err != nil {
		t.Fatal(err)
	}
	status, _, bout := postRaw(t, ts.URL+"/v1/predict", wire.ContentType, "", buf.Bytes())
	if status != http.StatusOK {
		t.Fatalf("binary status %d: %s", status, bout)
	}
	bresp, err := wire.DecodePredictions(bytes.NewReader(bout), wire.DecodeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jresp.Predictions {
		if math.Float64bits(jresp.Predictions[i].Value) != math.Float64bits(bresp.Values[i]) ||
			jresp.Predictions[i].Covered != bresp.Covered[i] {
			t.Fatalf("tuple %d: json (%v,%v), binary (%v,%v)", i,
				jresp.Predictions[i].Value, jresp.Predictions[i].Covered, bresp.Values[i], bresp.Covered[i])
		}
	}
}
