package serve

import (
	"io"
	"mime"
	"net/http"
	"strings"

	"github.com/crrlab/crr/internal/dataset"
)

// Transport-neutral codec layer. A Codec is one wire encoding of the
// data-plane request/response pair; handlers speak only in terms of
// dataset.ColumnSet batches and the typed results below, so adding a
// format (gRPC, Arrow IPC, ...) is a new Codec implementation, not a
// handler rewrite. Two codecs ship: JSON (the original name-keyed tuple
// objects) and the binary columnar format of internal/wire, negotiated per
// request via Content-Type / Accept.

// Batch is one decoded data-plane request: a columnar tuple batch plus the
// options that rode alongside it (imputation column, fallback flag).
type Batch struct {
	// Cols is the request tuples in columnar form, every schema attribute
	// populated (absent attributes decode as all-null columns).
	Cols *dataset.ColumnSet
	// Opts carries the request options outside the tuple payload.
	Opts BatchOptions
}

// BatchOptions are the per-request knobs shared by all formats.
type BatchOptions struct {
	// Column names the imputation target; empty means the artifact target.
	Column string
	// UseFallback fills uncovered tuples with the training mean.
	UseFallback bool
}

// PredictResult is the transport-neutral /v1/predict answer.
type PredictResult struct {
	Y       string
	Values  []float64
	Covered []bool
	// RuleIDs, when non-nil, carries the explain metadata (?explain=1):
	// the index of the rule that supplied each prediction, -1 if fallback.
	RuleIDs []int
}

// CheckViolation is one (tuple, rule) violation with its optional repair.
type CheckViolation struct {
	Tuple     int
	Rule      int
	Observed  float64
	Predicted float64
	Excess    float64
	Repair    *float64
}

// CheckResult is the transport-neutral /v1/check answer.
type CheckResult struct {
	Checked    int
	Violations []CheckViolation
}

// ImputeResult is the transport-neutral /v1/impute answer: fill statistics
// plus the completed relation.
type ImputeResult struct {
	Column  string
	Imputed int
	Failed  int
	Filled  *dataset.Relation
}

// Codec is one transport encoding of the serving data plane.
type Codec interface {
	// ContentType is the media type this codec reads and writes.
	ContentType() string
	// DecodeBatch parses a request body against the artifact schema.
	DecodeBatch(r io.Reader, schema *dataset.Schema) (*Batch, error)
	// EncodePredict / EncodeCheck / EncodeImpute write endpoint results.
	EncodePredict(w io.Writer, res *PredictResult) error
	EncodeCheck(w io.Writer, res *CheckResult) error
	EncodeImpute(w io.Writer, res *ImputeResult) error
}

// The two shipped codecs are stateless; share single instances.
var (
	codecJSON   Codec = jsonCodec{}
	codecBinary Codec = binaryCodec{}
)

// requestCodec picks the decode codec from Content-Type. An absent or
// wildcard type means JSON (the historical default); an unrecognized one is
// a 415 so clients can fall back instead of guessing at a parse error.
func requestCodec(r *http.Request) (Codec, *apiError) {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return codecJSON, nil
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return nil, errf(http.StatusUnsupportedMediaType, CodeUnsupportedMedia,
			"unparseable Content-Type %q", ct)
	}
	switch mt {
	case "application/json", "text/json", "*/*":
		return codecJSON, nil
	case "application/x-www-form-urlencoded":
		// curl -d's default; every pre-negotiation client (and the
		// TUTORIAL's examples) posts JSON bodies under this type.
		return codecJSON, nil
	case codecBinary.ContentType():
		return codecBinary, nil
	default:
		return nil, errf(http.StatusUnsupportedMediaType, CodeUnsupportedMedia,
			"unsupported Content-Type %q (use application/json or %s)", mt, codecBinary.ContentType())
	}
}

// responseCodec picks the encode codec from Accept: an explicit mention of
// a known type wins; otherwise the response mirrors the request format.
func responseCodec(r *http.Request, reqCodec Codec) Codec {
	accept := r.Header.Get("Accept")
	if accept == "" {
		return reqCodec
	}
	for _, part := range strings.Split(accept, ",") {
		mt, _, err := mime.ParseMediaType(strings.TrimSpace(part))
		if err != nil {
			continue
		}
		switch mt {
		case codecBinary.ContentType():
			return codecBinary
		case "application/json", "text/json":
			return codecJSON
		}
	}
	return reqCodec
}

// negotiate resolves both directions for one data-plane request.
func (s *Server) negotiate(r *http.Request) (reqC, respC Codec, aerr *apiError) {
	reqC, aerr = requestCodec(r)
	if aerr != nil {
		return nil, nil, aerr
	}
	return reqC, responseCodec(r, reqC), nil
}

// decodeBatch runs the negotiated decode and maps failures to the 400
// envelope with the first offending detail.
func decodeBatch(r *http.Request, c Codec, schema *dataset.Schema) (*Batch, *apiError) {
	b, err := c.DecodeBatch(r.Body, schema)
	if err != nil {
		return nil, errf(http.StatusBadRequest, CodeInvalidArgument, "decode request: %v", err)
	}
	return b, nil
}

// schemaNames renders the schema's attribute names for error messages.
func schemaNames(schema *dataset.Schema) string {
	s := ""
	for i := 0; i < schema.Len(); i++ {
		if i > 0 {
			s += ", "
		}
		s += schema.Attr(i).Name
	}
	return s
}

// wantExplain reports whether the request opted into per-tuple rule IDs.
func wantExplain(r *http.Request) bool {
	switch strings.ToLower(r.URL.Query().Get("explain")) {
	case "1", "true", "rules", "yes":
		return true
	}
	return false
}
