package serve

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/crrlab/crr/internal/dataset"
)

// jsonCodec is the original wire format: tuples as JSON objects keyed by
// attribute NAME. The schema embedded in the artifact is the contract:
// unknown keys are rejected (a misspelled attribute must not silently
// become a null), values are type-checked against the attribute kind, and
// absent keys mean missing — exactly the dataset.Null the engine already
// treats as "satisfies no predicate". Field order is irrelevant by
// construction. Decoded tuples are columnarized immediately; the rest of
// the serving plane never sees row-major data.
type jsonCodec struct{}

func (jsonCodec) ContentType() string { return "application/json" }

// jsonEnvelope is the shared request envelope of the data-plane endpoints:
// exactly one of tuple (single) or tuples (batch), plus the impute options
// (ignored by predict/check).
type jsonEnvelope struct {
	Tuple       map[string]any   `json:"tuple,omitempty"`
	Tuples      []map[string]any `json:"tuples,omitempty"`
	Column      string           `json:"column,omitempty"`
	UseFallback bool             `json:"use_fallback,omitempty"`
}

func (jsonCodec) DecodeBatch(r io.Reader, schema *dataset.Schema) (*Batch, error) {
	var req jsonEnvelope
	if err := json.NewDecoder(r).Decode(&req); err != nil {
		return nil, err
	}
	switch {
	case req.Tuple != nil && req.Tuples != nil:
		return nil, fmt.Errorf(`provide "tuple" or "tuples", not both`)
	case req.Tuple != nil:
		req.Tuples = []map[string]any{req.Tuple}
	case len(req.Tuples) == 0:
		return nil, fmt.Errorf(`empty request: provide "tuple" or "tuples"`)
	}
	tuples, err := decodeTuples(schema, req.Tuples)
	if err != nil {
		return nil, err
	}
	rel := &dataset.Relation{Schema: schema, Tuples: tuples}
	return &Batch{
		Cols: dataset.NewColumnSet(rel),
		Opts: BatchOptions{Column: req.Column, UseFallback: req.UseFallback},
	}, nil
}

// jsonPrediction is one answered tuple on the JSON wire.
type jsonPrediction struct {
	// Value is f(t.X + x) + y of the first covering rule, or the training-
	// mean fallback when Covered is false.
	Value float64 `json:"value"`
	// Covered reports whether some rule's condition matched the tuple.
	Covered bool `json:"covered"`
	// Rule is the index of the rule that supplied Value; present only when
	// the request asked for explain metadata, null for uncovered tuples.
	Rule *int `json:"rule,omitempty"`
}

func (jsonCodec) EncodePredict(w io.Writer, res *PredictResult) error {
	preds := make([]jsonPrediction, len(res.Values))
	for i := range res.Values {
		preds[i] = jsonPrediction{Value: res.Values[i], Covered: res.Covered[i]}
		if res.RuleIDs != nil && res.RuleIDs[i] >= 0 {
			id := res.RuleIDs[i]
			preds[i].Rule = &id
		}
	}
	return json.NewEncoder(w).Encode(struct {
		Y           string           `json:"y"`
		Count       int              `json:"count"`
		Predictions []jsonPrediction `json:"predictions"`
	}{res.Y, len(preds), preds})
}

// jsonViolation is one (tuple, rule) violation on the JSON wire.
type jsonViolation struct {
	Tuple     int     `json:"tuple"`
	Rule      int     `json:"rule"`
	Observed  float64 `json:"observed"`
	Predicted float64 `json:"predicted"`
	Excess    float64 `json:"excess"`
	// Repair is the first covering rule's prediction — the value that would
	// satisfy the violated constraint.
	Repair *float64 `json:"repair,omitempty"`
}

func (jsonCodec) EncodeCheck(w io.Writer, res *CheckResult) error {
	out := make([]jsonViolation, len(res.Violations))
	for i, v := range res.Violations {
		out[i] = jsonViolation{
			Tuple:     v.Tuple,
			Rule:      v.Rule,
			Observed:  v.Observed,
			Predicted: v.Predicted,
			Excess:    v.Excess,
			Repair:    v.Repair,
		}
	}
	return json.NewEncoder(w).Encode(struct {
		Checked    int             `json:"checked"`
		Violations []jsonViolation `json:"violations"`
	}{res.Checked, out})
}

func (jsonCodec) EncodeImpute(w io.Writer, res *ImputeResult) error {
	out := make([]map[string]any, res.Filled.Len())
	for i, t := range res.Filled.Tuples {
		out[i] = encodeTuple(res.Filled.Schema, t)
	}
	return json.NewEncoder(w).Encode(struct {
		Column  string           `json:"column"`
		Imputed int              `json:"imputed"`
		Failed  int              `json:"failed"`
		Tuples  []map[string]any `json:"tuples"`
	}{res.Column, res.Imputed, res.Failed, out})
}

// decodeTuple builds a schema-ordered tuple from one request object.
func decodeTuple(schema *dataset.Schema, obj map[string]any) (dataset.Tuple, error) {
	for name := range obj {
		if _, err := schema.Index(name); err != nil {
			return nil, fmt.Errorf("unknown attribute %q (artifact schema: %s)", name, schemaNames(schema))
		}
	}
	t := make(dataset.Tuple, schema.Len())
	for i := 0; i < schema.Len(); i++ {
		a := schema.Attr(i)
		raw, present := obj[a.Name]
		if !present || raw == nil {
			t[i] = dataset.Null()
			continue
		}
		switch a.Kind {
		case dataset.Numeric:
			v, ok := raw.(float64)
			if !ok {
				return nil, fmt.Errorf("attribute %q is numeric, got %T", a.Name, raw)
			}
			t[i] = dataset.Num(v)
		case dataset.Categorical:
			v, ok := raw.(string)
			if !ok {
				return nil, fmt.Errorf("attribute %q is categorical, got %T", a.Name, raw)
			}
			t[i] = dataset.Str(v)
		default:
			return nil, fmt.Errorf("attribute %q has unsupported kind %v", a.Name, a.Kind)
		}
	}
	return t, nil
}

// decodeTuples decodes a batch, reporting the first offending element.
func decodeTuples(schema *dataset.Schema, objs []map[string]any) ([]dataset.Tuple, error) {
	out := make([]dataset.Tuple, len(objs))
	for i, obj := range objs {
		t, err := decodeTuple(schema, obj)
		if err != nil {
			return nil, fmt.Errorf("tuple %d: %w", i, err)
		}
		out[i] = t
	}
	return out, nil
}

// encodeTuple renders a tuple back into the named-object wire form. Null
// cells render as explicit JSON nulls so imputation responses distinguish
// "still missing" from zero.
func encodeTuple(schema *dataset.Schema, t dataset.Tuple) map[string]any {
	obj := make(map[string]any, schema.Len())
	for i := 0; i < schema.Len(); i++ {
		a := schema.Attr(i)
		switch {
		case t[i].Null:
			obj[a.Name] = nil
		case a.Kind == dataset.Categorical:
			obj[a.Name] = t[i].Str
		default:
			obj[a.Name] = t[i].Num
		}
	}
	return obj
}
