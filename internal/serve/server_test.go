package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/impute"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
	"github.com/crrlab/crr/internal/telemetry"
)

// taxRules mines a small rule set over the synthetic Tax dataset
// (state-conditional linear tax formulas): Tax ~ Salary | State.
func taxRules(t testing.TB, rows int) (*dataset.Relation, *core.RuleSet) {
	t.Helper()
	rel := dataset.GenerateTax(dataset.TaxConfig{Rows: rows, Noise: 0.5, Seed: 4})
	state := rel.Schema.MustIndex("State")
	preds := predicate.Generate(rel, []int{state}, predicate.GeneratorConfig{})
	res, err := core.Discover(context.Background(), rel, core.WithConfig(core.DiscoverConfig{
		XAttrs:  []int{rel.Schema.MustIndex("Salary")},
		YAttr:   rel.Schema.MustIndex("Tax"),
		RhoM:    60,
		Preds:   preds,
		Trainer: regress.LinearTrainer{},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rules.NumRules() == 0 {
		t.Fatal("tax mine produced no rules")
	}
	return rel, res.Rules
}

// electricityRules mines over the Electricity dataset: GlobalActivePower ~
// Sub1..Sub3 under time-windowed conditions.
func electricityRules(t testing.TB, rows int) (*dataset.Relation, *core.RuleSet) {
	t.Helper()
	rel := dataset.GenerateElectricity(dataset.ElectricityConfig{Rows: rows, Noise: 0.05, Seed: 3})
	preds := predicate.Generate(rel, []int{0}, predicate.GeneratorConfig{Kind: predicate.Binary, Size: 16})
	res, err := core.Discover(context.Background(), rel, core.WithConfig(core.DiscoverConfig{
		XAttrs:  []int{4, 5, 6},
		YAttr:   1,
		RhoM:    0.3,
		Preds:   preds,
		Trainer: regress.LinearTrainer{},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rules.NumRules() == 0 {
		t.Fatal("electricity mine produced no rules")
	}
	return rel, res.Rules
}

// newTestServer wraps a rule set in a Server behind httptest.
func newTestServer(t testing.TB, cfg Config, rules *core.RuleSet) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := NewFromRuleSet(cfg, rules, "test")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// postJSON posts v (marshaled) and returns status and body.
func postJSON(t testing.TB, url string, v any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func getBody(t testing.TB, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

type predictResponse struct {
	Y           string `json:"y"`
	Count       int    `json:"count"`
	Predictions []struct {
		Value   float64 `json:"value"`
		Covered bool    `json:"covered"`
	} `json:"predictions"`
}

// assertPredictParity posts every tuple of rel in one batch and requires the
// HTTP answers to be BITWISE identical to in-process RuleSet.Predict —
// coverage verdict included. JSON round-trips float64 through the shortest
// form that re-parses to the same bits, so exact equality is the contract.
func assertPredictParity(t *testing.T, url string, rel *dataset.Relation, rules *core.RuleSet) {
	t.Helper()
	objs := make([]map[string]any, rel.Len())
	for i, tp := range rel.Tuples {
		objs[i] = encodeTuple(rel.Schema, tp)
	}
	status, body := postJSON(t, url+"/v1/predict", map[string]any{"tuples": objs})
	if status != http.StatusOK {
		t.Fatalf("predict status %d: %s", status, body)
	}
	var resp predictResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != rel.Len() || len(resp.Predictions) != rel.Len() {
		t.Fatalf("got %d predictions for %d tuples", len(resp.Predictions), rel.Len())
	}
	if want := rules.YName(); resp.Y != want {
		t.Errorf("response y = %q, want %q", resp.Y, want)
	}
	mismatches := 0
	for i, tp := range rel.Tuples {
		want, covered := rules.Predict(tp)
		got := resp.Predictions[i]
		if got.Value != want || got.Covered != covered {
			if mismatches < 5 {
				t.Errorf("tuple %d: HTTP (%v,%v) != in-process (%v,%v)",
					i, got.Value, got.Covered, want, covered)
			}
			mismatches++
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d of %d predictions diverged", mismatches, rel.Len())
	}
}

// TestPredictParityTax / ...Electricity: end-to-end parity on two synthetic
// datasets (acceptance criterion).
func TestPredictParityTax(t *testing.T) {
	rel, rules := taxRules(t, 1200)
	_, ts := newTestServer(t, Config{}, rules)
	assertPredictParity(t, ts.URL, rel, rules)
}

func TestPredictParityElectricity(t *testing.T) {
	rel, rules := electricityRules(t, 1200)
	_, ts := newTestServer(t, Config{}, rules)
	assertPredictParity(t, ts.URL, rel, rules)

	// Nulls and out-of-domain tuples answer through the same code path as
	// in-process Predict — the fully-missing tuple must take the fallback.
	width := rel.Schema.Len()
	missing := make(dataset.Tuple, width)
	for i := range missing {
		missing[i] = dataset.Null()
	}
	far := missing.Clone()
	far[4], far[5], far[6] = dataset.Num(1e9), dataset.Num(0), dataset.Num(0)
	edgeRel := &dataset.Relation{Schema: rel.Schema, Tuples: []dataset.Tuple{missing, far}}
	assertPredictParity(t, ts.URL, edgeRel, rules)
	if _, covered := rules.Predict(missing); covered {
		t.Error("fully-missing tuple unexpectedly covered in-process")
	}
}

// TestPredictSingleTuple: the "tuple" (non-batch) envelope works and equals
// the batch answer.
func TestPredictSingleTuple(t *testing.T) {
	rel, rules := taxRules(t, 800)
	_, ts := newTestServer(t, Config{}, rules)
	tp := rel.Tuples[7]
	status, body := postJSON(t, ts.URL+"/v1/predict",
		map[string]any{"tuple": encodeTuple(rel.Schema, tp)})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp predictResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	want, covered := rules.Predict(tp)
	if len(resp.Predictions) != 1 || resp.Predictions[0].Value != want || resp.Predictions[0].Covered != covered {
		t.Fatalf("single predict = %+v, want (%v,%v)", resp.Predictions, want, covered)
	}
}

// TestPredictPayloadValidation: the artifact schema is the contract —
// unknown attributes, wrong types, wrong envelope and wrong method are all
// rejected with a 4xx, never guessed at.
func TestPredictPayloadValidation(t *testing.T) {
	_, rules := taxRules(t, 800)
	_, ts := newTestServer(t, Config{}, rules)

	cases := []struct {
		name string
		body any
	}{
		{"unknown attribute", map[string]any{"tuple": map[string]any{"Salry": 100.0}}},
		{"wrong type numeric", map[string]any{"tuple": map[string]any{"Salary": "lots"}}},
		{"wrong type categorical", map[string]any{"tuple": map[string]any{"State": 7.0}}},
		{"both envelopes", map[string]any{"tuple": map[string]any{}, "tuples": []map[string]any{{}}}},
		{"empty", map[string]any{}},
	}
	for _, c := range cases {
		status, body := postJSON(t, ts.URL+"/v1/predict", c.body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", c.name, status, body)
		}
		var e struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error.Message == "" {
			t.Errorf("%s: missing error envelope: %s", c.name, body)
		}
		if e.Error.Code != CodeInvalidArgument {
			t.Errorf("%s: error code %q, want %q", c.name, e.Error.Code, CodeInvalidArgument)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/predict = %d, want 405", resp.StatusCode)
	}
}

// TestCheckEndpoint: violations over HTTP equal core.Violations in-process,
// and clean data reports none.
func TestCheckEndpoint(t *testing.T) {
	rel, rules := taxRules(t, 800)
	_, ts := newTestServer(t, Config{}, rules)

	// Corrupt a handful of targets far beyond ρ.
	bad := rel.Clone()
	yattr := rules.YAttr
	for _, i := range []int{3, 17, 99} {
		tp := bad.Tuples[i].Clone()
		tp[yattr] = dataset.Num(tp[yattr].Num + 5000)
		bad.Tuples[i] = tp
	}
	objs := make([]map[string]any, bad.Len())
	for i, tp := range bad.Tuples {
		objs[i] = encodeTuple(bad.Schema, tp)
	}
	status, body := postJSON(t, ts.URL+"/v1/check", map[string]any{"tuples": objs})
	if status != http.StatusOK {
		t.Fatalf("check status %d: %s", status, body)
	}
	var resp struct {
		Checked    int `json:"checked"`
		Violations []struct {
			Tuple     int      `json:"tuple"`
			Rule      int      `json:"rule"`
			Observed  float64  `json:"observed"`
			Predicted float64  `json:"predicted"`
			Excess    float64  `json:"excess"`
			Repair    *float64 `json:"repair"`
		} `json:"violations"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	want := core.Violations(bad, rules)
	if resp.Checked != bad.Len() || len(resp.Violations) != len(want) {
		t.Fatalf("HTTP found %d violations over %d tuples; in-process %d",
			len(resp.Violations), resp.Checked, len(want))
	}
	for i, v := range want {
		got := resp.Violations[i]
		if got.Tuple != v.TupleIndex || got.Rule != v.RuleIndex ||
			got.Observed != v.Observed || got.Predicted != v.Predicted || got.Excess != v.Excess {
			t.Errorf("violation %d: HTTP %+v != in-process %+v", i, got, v)
		}
		if got.Repair == nil {
			t.Errorf("violation %d: no repair for a covered tuple", i)
		}
	}

	// The clean relation has no violations.
	for i, tp := range rel.Tuples {
		objs[i] = encodeTuple(rel.Schema, tp)
	}
	status, body = postJSON(t, ts.URL+"/v1/check", map[string]any{"tuples": objs})
	if status != http.StatusOK {
		t.Fatalf("clean check status %d", status)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Violations) != 0 {
		t.Errorf("clean data produced %d violations", len(resp.Violations))
	}
}

// TestImputeEndpoint: null target cells come back filled with exactly the
// values internal/impute computes, and uncovered tuples stay null.
func TestImputeEndpoint(t *testing.T) {
	rel, rules := taxRules(t, 800)
	_, ts := newTestServer(t, Config{}, rules)
	yattr := rules.YAttr

	masked := rel.Clone()
	holes := []int{2, 5, 11, 42}
	for _, i := range holes {
		tp := masked.Tuples[i].Clone()
		tp[yattr] = dataset.Null()
		masked.Tuples[i] = tp
	}
	objs := make([]map[string]any, masked.Len())
	for i, tp := range masked.Tuples {
		objs[i] = encodeTuple(masked.Schema, tp)
	}
	status, body := postJSON(t, ts.URL+"/v1/impute", map[string]any{"tuples": objs})
	if status != http.StatusOK {
		t.Fatalf("impute status %d: %s", status, body)
	}
	var resp struct {
		Column  string           `json:"column"`
		Imputed int              `json:"imputed"`
		Failed  int              `json:"failed"`
		Tuples  []map[string]any `json:"tuples"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Column != rules.YName() {
		t.Errorf("imputed column %q, want %q", resp.Column, rules.YName())
	}

	// In-process reference on a fresh copy of the same masked relation.
	ref := masked.Clone()
	st, err := impute.Fill(ref, yattr, impute.RuleSetPredictor{Rules: rules})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Imputed != st.Imputed || resp.Failed != st.Failed {
		t.Errorf("HTTP imputed/failed = %d/%d, in-process %d/%d",
			resp.Imputed, resp.Failed, st.Imputed, st.Failed)
	}
	yName := rules.YName()
	for _, i := range holes {
		want := ref.Tuples[i][yattr]
		got, present := resp.Tuples[i][yName]
		if want.Null {
			if present && got != nil {
				t.Errorf("hole %d: imputed %v, in-process left null", i, got)
			}
			continue
		}
		gv, ok := got.(float64)
		if !ok || gv != want.Num {
			t.Errorf("hole %d: HTTP %v, in-process %v", i, got, want.Num)
		}
	}

	// A categorical imputation target is a 400, mirroring ErrColumnKind.
	status, _ = postJSON(t, ts.URL+"/v1/impute", map[string]any{
		"tuples": objs[:1], "column": "State",
	})
	if status != http.StatusBadRequest {
		t.Errorf("categorical impute target: status %d, want 400", status)
	}
}

// TestRulesHealthzMetrics: the control-plane endpoints expose the artifact
// summary, liveness, and the registry exposition with the serving metrics.
func TestRulesHealthzMetrics(t *testing.T) {
	rel, rules := taxRules(t, 800)
	reg := telemetry.New()
	_, ts := newTestServer(t, Config{Registry: reg}, rules)

	status, body := getBody(t, ts.URL+"/v1/rules")
	if status != http.StatusOK {
		t.Fatalf("rules status %d", status)
	}
	var info struct {
		X         []string `json:"x"`
		Y         string   `json:"y"`
		CondAttrs []string `json:"cond_attrs"`
		Rules     int      `json:"rules"`
		Models    int      `json:"models"`
		Formatted []string `json:"formatted"`
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Y != "Tax" || len(info.X) != 1 || info.X[0] != "Salary" {
		t.Errorf("rules summary names x=%v y=%q", info.X, info.Y)
	}
	if info.Rules != rules.NumRules() || len(info.Formatted) != rules.NumRules() {
		t.Errorf("rules summary count %d/%d formatted, want %d",
			info.Rules, len(info.Formatted), rules.NumRules())
	}
	if len(info.CondAttrs) == 0 || info.CondAttrs[0] != "State" {
		t.Errorf("cond attrs = %v, want [State]", info.CondAttrs)
	}

	status, body = getBody(t, ts.URL+"/healthz")
	if status != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Errorf("healthz = %d %s", status, body)
	}

	// Generate traffic, then require the registry-backed exposition to show
	// request counts, latency histograms and predict-index hits/misses.
	objs := make([]map[string]any, 50)
	for i := range objs {
		objs[i] = encodeTuple(rel.Schema, rel.Tuples[i])
	}
	if status, _ := postJSON(t, ts.URL+"/v1/predict", map[string]any{"tuples": objs}); status != 200 {
		t.Fatalf("predict warmup status %d", status)
	}
	status, body = getBody(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics status %d", status)
	}
	text := string(body)
	for _, want := range []string{
		"crr_serve_predict_requests 1",
		"# TYPE crr_serve_predict_latency histogram",
		"crr_serve_predict_latency_count 1",
		"crr_predict_index_lookups 50",
		"crr_serve_in_flight_max 1",
		"# TYPE crr_serve_healthz_requests counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestReloadBodyAndRules: POST /v1/reload with an artifact body swaps the
// served set; a hostile body is rejected and the old set keeps serving.
func TestReloadBodyAndRules(t *testing.T) {
	relA, rulesA := taxRules(t, 800)
	_, rulesB := electricityRules(t, 800)
	reg := telemetry.New()
	_, ts := newTestServer(t, Config{Registry: reg}, rulesA)

	var artB bytes.Buffer
	if err := core.WriteRuleSet(&artB, rulesB); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/reload", "application/json", bytes.NewReader(artB.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d", resp.StatusCode)
	}
	status, body := getBody(t, ts.URL+"/v1/rules")
	if status != 200 || !strings.Contains(string(body), `"y":"GlobalActivePower"`) {
		t.Fatalf("after reload, rules = %s", body)
	}

	// Hostile body: rejected, artifact unchanged, error counter bumped.
	resp, err = http.Post(ts.URL+"/v1/reload", "application/json", strings.NewReader(`{"version":99}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("hostile reload status %d, want 422", resp.StatusCode)
	}
	_, body = getBody(t, ts.URL+"/v1/rules")
	if !strings.Contains(string(body), `"y":"GlobalActivePower"`) {
		t.Error("hostile reload replaced the artifact")
	}
	snap := reg.Snapshot()
	if snap.Counters[telemetry.MetricServeReloads] != 1 || snap.Counters[telemetry.MetricServeReloadErrors] != 1 {
		t.Errorf("reload counters = %d ok / %d err, want 1/1",
			snap.Counters[telemetry.MetricServeReloads], snap.Counters[telemetry.MetricServeReloadErrors])
	}
	_ = relA
}
