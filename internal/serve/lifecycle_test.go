package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/telemetry"
)

// startOnListener runs the server's own http.Server (the thing Shutdown
// drains) on an ephemeral port, unlike httptest which wraps the handler in
// its own server.
func startOnListener(t *testing.T, srv *Server) (base string, done chan error) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done = make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	return "http://" + l.Addr().String(), done
}

// TestInFlightLimitSheds429: with the semaphore saturated by requests held
// in flight, the next data-plane request is rejected immediately with 429 —
// while /healthz and /metrics stay reachable. Releasing the held requests
// restores service.
func TestInFlightLimitSheds429(t *testing.T) {
	rel, rules := taxRules(t, 800)
	hold := make(chan struct{})
	var admitted sync.WaitGroup
	admitted.Add(2)
	var held atomic.Int64
	reg := telemetry.New()
	cfg := Config{
		MaxInFlight: 2,
		Registry:    reg,
		// Only the first two admitted requests block; anything after the
		// release passes straight through.
		OnRequest: func(string) {
			if held.Add(1) <= 2 {
				admitted.Done()
				<-hold
			}
		},
	}
	_, ts := newTestServer(t, cfg, rules)

	tuple := encodeTuple(rel.Schema, rel.Tuples[0])
	body, _ := json.Marshal(map[string]any{"tuple": tuple})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("held request finished %d, want 200", resp.StatusCode)
				}
			}
		}()
	}
	admitted.Wait() // both slots are now occupied

	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated predict = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
	resp.Body.Close()

	// Control plane is exempt from shedding.
	for _, path := range []string{"/healthz", "/metrics", "/v1/rules"} {
		if status, _ := getBody(t, ts.URL+path); status != http.StatusOK {
			t.Errorf("%s under saturation = %d, want 200", path, status)
		}
	}

	close(hold)
	wg.Wait()

	// Capacity restored: the next request is served.
	if status, _ := postJSON(t, ts.URL+"/v1/predict", map[string]any{"tuple": tuple}); status != http.StatusOK {
		t.Errorf("post-release predict = %d, want 200", status)
	}
	snap := reg.Snapshot()
	if snap.Counters[telemetry.MetricServeShed] == 0 {
		t.Error("shed counter not incremented")
	}
	if snap.Gauges[telemetry.MetricServeInFlight].Max < 2 {
		t.Errorf("in-flight high-water = %v, want >= 2", snap.Gauges[telemetry.MetricServeInFlight].Max)
	}
}

// TestShutdownDrainsInFlight: a request admitted before Shutdown completes
// with 200 while the server refuses new connections, and Serve returns
// ErrServerClosed.
func TestShutdownDrainsInFlight(t *testing.T) {
	rel, rules := taxRules(t, 800)
	admitted := make(chan struct{})
	release := make(chan struct{})
	var gate sync.Once
	cfg := Config{OnRequest: func(string) {
		gate.Do(func() { close(admitted); <-release })
	}}
	srv, err := NewFromRuleSet(cfg, rules, "test")
	if err != nil {
		t.Fatal(err)
	}
	base, done := startOnListener(t, srv)

	tuple := encodeTuple(rel.Schema, rel.Tuples[0])
	body, _ := json.Marshal(map[string]any{"tuple": tuple})
	result := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			result <- -1
			return
		}
		resp.Body.Close()
		result <- resp.StatusCode
	}()
	<-admitted

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Give Shutdown a moment to stop the listeners, then release the held
	// request; it must still be answered.
	time.Sleep(50 * time.Millisecond)
	close(release)

	if status := <-result; status != http.StatusOK {
		t.Errorf("in-flight request during shutdown = %d, want 200", status)
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	if err := <-done; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v, want ErrServerClosed", err)
	}
}

// TestShutdownNoGoroutineLeak mirrors the leak pattern of
// internal/core/cancel_test.go: after serving traffic and shutting down, the
// goroutine count returns to its baseline.
func TestShutdownNoGoroutineLeak(t *testing.T) {
	rel, rules := taxRules(t, 800)
	before := runtime.NumGoroutine()

	srv, err := NewFromRuleSet(Config{}, rules, "test")
	if err != nil {
		t.Fatal(err)
	}
	base, done := startOnListener(t, srv)

	tuple := encodeTuple(rel.Schema, rel.Tuples[0])
	for i := 0; i < 20; i++ {
		if status, _ := postJSON(t, base+"/v1/predict", map[string]any{"tuple": tuple}); status != 200 {
			t.Fatalf("warmup predict %d failed: %d", i, status)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != http.ErrServerClosed {
		t.Fatalf("Serve: %v", err)
	}
	http.DefaultClient.CloseIdleConnections()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after shutdown", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRequestTimeout504: a request whose processing exceeds the per-request
// deadline is abandoned with 504 and counted in serve.timeouts.
func TestRequestTimeout504(t *testing.T) {
	rel, rules := taxRules(t, 800)
	reg := telemetry.New()
	cfg := Config{
		RequestTimeout: 20 * time.Millisecond,
		Registry:       reg,
		OnRequest:      func(string) { time.Sleep(60 * time.Millisecond) },
	}
	_, ts := newTestServer(t, cfg, rules)
	tuple := encodeTuple(rel.Schema, rel.Tuples[0])
	status, body := postJSON(t, ts.URL+"/v1/predict", map[string]any{"tuple": tuple})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("slow request = %d (%s), want 504", status, body)
	}
	if got := reg.Snapshot().Counters[telemetry.MetricServeTimeouts]; got != 1 {
		t.Errorf("serve.timeouts = %d, want 1", got)
	}
}

// TestConcurrentReloadPredict is the -race acceptance test: goroutines
// hammer POST /v1/predict while others hot-swap between two artifacts.
// Every response must be exactly artifact A's or artifact B's answer —
// a torn artifact would produce a third value (or a race report).
func TestConcurrentReloadPredict(t *testing.T) {
	relA, rulesA := taxRules(t, 600)
	_, rulesB := electricityRules(t, 600)

	var artA, artB bytes.Buffer
	if err := core.WriteRuleSet(&artA, rulesA); err != nil {
		t.Fatal(err)
	}
	if err := core.WriteRuleSet(&artB, rulesB); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{MaxInFlight: 64}, rulesA)

	// A probe tuple valid under schema A; under schema B it is rejected
	// with 400 (different schema), which is also a legal outcome — what is
	// NOT legal is a 200 whose value matches neither artifact.
	probe := relA.Tuples[3]
	wantA, _ := rulesA.Predict(probe)
	probeObj := encodeTuple(relA.Schema, probe)
	body, _ := json.Marshal(map[string]any{"tuple": probeObj})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan string, 64)

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					continue
				}
				var pr predictResponse
				dec := json.NewDecoder(resp.Body)
				decErr := dec.Decode(&pr)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					if decErr != nil {
						errs <- fmt.Sprintf("decode 200 body: %v", decErr)
						return
					}
					if pr.Predictions[0].Value != wantA {
						errs <- fmt.Sprintf("prediction %v matches neither artifact (want %v under A)",
							pr.Predictions[0].Value, wantA)
						return
					}
				case http.StatusBadRequest:
					// schema B active: probe rejected by name validation.
				default:
					errs <- fmt.Sprintf("unexpected status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		art := [][]byte{artA.Bytes(), artB.Bytes()}[w]
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/reload", "application/json", bytes.NewReader(art))
				if err == nil {
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Sprintf("reload status %d", resp.StatusCode)
						resp.Body.Close()
						return
					}
					resp.Body.Close()
				}
			}
		}()
	}

	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestReloadFromPath: New loads from disk; rewriting the file and calling
// Reload (the SIGHUP path) swaps the artifact; a corrupted file is rejected
// and the old artifact keeps serving.
func TestReloadFromPath(t *testing.T) {
	_, rulesA := taxRules(t, 600)
	_, rulesB := electricityRules(t, 600)

	dir := t.TempDir()
	path := filepath.Join(dir, "rules.json")
	writeArtifact := func(rs *core.RuleSet) {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := core.WriteRuleSet(f, rs); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	writeArtifact(rulesA)

	srv, err := New(Config{RulesPath: path})
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(srv.Handler())
	t.Cleanup(hts.Close)
	ts := hts.URL
	if _, body := getBody(t, ts+"/v1/rules"); !strings.Contains(string(body), `"y":"Tax"`) {
		t.Fatalf("initial artifact not served: %s", body)
	}

	writeArtifact(rulesB)
	if err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	if _, body := getBody(t, ts+"/v1/rules"); !strings.Contains(string(body), `"y":"GlobalActivePower"`) {
		t.Fatalf("reloaded artifact not served: %s", body)
	}

	if err := os.WriteFile(path, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := srv.Reload(); err == nil {
		t.Fatal("corrupt artifact reload succeeded")
	}
	if _, body := getBody(t, ts+"/v1/rules"); !strings.Contains(string(body), `"y":"GlobalActivePower"`) {
		t.Error("corrupt reload replaced the served artifact")
	}
}
