package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/crrlab/crr/internal/core"
)

// TestInstallGenerationSemantics: installs bump the generation monotonically,
// and InstallIfGeneration only swaps when the caller's token is current.
func TestInstallGenerationSemantics(t *testing.T) {
	_, rules := taxRules(t, 400)
	srv, err := NewFromRuleSet(Config{}, rules, "seed")
	if err != nil {
		t.Fatal(err)
	}
	g0 := srv.Generation()
	if g0 == 0 {
		t.Fatal("construction install left generation 0")
	}
	g1, err := srv.Install(rules, "push-1")
	if err != nil || g1 != g0+1 {
		t.Fatalf("Install: gen %d err %v, want %d", g1, err, g0+1)
	}
	if got := srv.Generation(); got != g1 {
		t.Fatalf("Generation() = %d after install to %d", got, g1)
	}
	// Stale token: no swap, current generation reported back.
	cur, ok, err := srv.InstallIfGeneration(rules, "stale", g0)
	if err != nil || ok || cur != g1 {
		t.Fatalf("stale CAS: (%d,%v,%v), want (%d,false,nil)", cur, ok, err, g1)
	}
	// Fresh token: swap.
	g2, ok, err := srv.InstallIfGeneration(rules, "cas", g1)
	if err != nil || !ok || g2 != g1+1 {
		t.Fatalf("fresh CAS: (%d,%v,%v), want (%d,true,nil)", g2, ok, err, g1+1)
	}
	if _, err := srv.Install(nil, "nil"); err == nil {
		t.Fatal("nil rule set accepted")
	}
	if _, _, err := srv.InstallIfGeneration(&core.RuleSet{}, "bare", g2); err == nil {
		t.Fatal("schema-less rule set accepted")
	}
}

// TestInstallReloadPredictRace is the hot-reload race hammer of the bugfix
// sweep: operator reloads (ReloadFrom), maintainer pushes (Install), CAS
// retry loops (InstallIfGeneration) and predict traffic all run concurrently
// under -race. Beyond being race-clean, every successful swap must account
// for exactly one generation tick — the lost-update symptom this API fixes is
// two writers both believing their artifact won.
func TestInstallReloadPredictRace(t *testing.T) {
	rel, rules := taxRules(t, 400)
	var blob bytes.Buffer
	if err := core.WriteRuleSet(&blob, rules); err != nil {
		t.Fatal(err)
	}
	// Each writer re-parses its own RuleSet instances: install mutates the
	// rule set (telemetry wiring), so sharing one instance across writers
	// would itself be a race.
	parse := func() *core.RuleSet {
		rs, err := core.ReadRuleSet(bytes.NewReader(blob.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}

	srv, ts := newTestServer(t, Config{}, rules)
	base := srv.Generation()
	deadline := time.Now().Add(300 * time.Millisecond)
	var swaps atomic.Uint64
	var wg sync.WaitGroup

	wg.Add(1) // operator: body reloads
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			if err := srv.ReloadFrom(bytes.NewReader(blob.Bytes()), "operator"); err != nil {
				t.Error(err)
				return
			}
			swaps.Add(1)
		}
	}()
	wg.Add(1) // maintainer: unconditional pushes
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			if _, err := srv.Install(parse(), "maintainer"); err != nil {
				t.Error(err)
				return
			}
			swaps.Add(1)
		}
	}()
	wg.Add(1) // maintainer: CAS-retry pushes
	go func() {
		defer wg.Done()
		gen := srv.Generation()
		for time.Now().Before(deadline) {
			cur, ok, err := srv.InstallIfGeneration(parse(), "cas", gen)
			if err != nil {
				t.Error(err)
				return
			}
			if ok {
				swaps.Add(1)
			}
			gen = cur // failure hands back the fresh token; success our own
		}
	}()
	for i := 0; i < 4; i++ { // predict traffic throughout
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload, _ := json.Marshal(map[string]any{"tuple": encodeTuple(rel.Schema, rel.Tuples[0])})
			for time.Now().Before(deadline) {
				resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(payload))
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("predict status %d mid-reload", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	if got, want := srv.Generation(), base+swaps.Load(); got != want {
		t.Fatalf("generation %d after %d swaps from %d — lost or double-counted a swap (want %d)",
			got, swaps.Load(), base, want)
	}
}
