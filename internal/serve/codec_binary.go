package serve

import (
	"fmt"
	"io"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/wire"
)

// binaryCodec is the columnar fast path: requests and responses in the
// internal/wire format (application/x-crr-columnar). Decoding adopts the
// wire payload slices straight into a dataset.ColumnSet — no tuple
// materialization, no maps, no interface boxing — which is what turns the
// ~8.5ms JSON /v1/predict round trip into a near-classification-cost one.
//
// Wire columns are matched to the artifact schema BY NAME: order on the
// wire is free, unknown names are rejected (misspellings must not become
// nulls), kind mismatches are rejected, and attributes absent from the wire
// schema decode as all-null columns — the binary spelling of the JSON
// convention that an absent key means missing.
type binaryCodec struct{}

func (binaryCodec) ContentType() string { return wire.ContentType }

// decodeLimits bounds the wire decoder. Frames are further bounded by the
// server's MaxBodyBytes through http.MaxBytesReader; these caps only stop
// a malformed length prefix from provoking a large speculative allocation.
var decodeLimits = wire.DecodeLimits{}

func (binaryCodec) DecodeBatch(r io.Reader, schema *dataset.Schema) (*Batch, error) {
	wb, err := wire.DecodeBatch(r, decodeLimits)
	if err != nil {
		return nil, err
	}
	cols := make([]dataset.AssembledColumn, schema.Len())
	seen := make([]bool, schema.Len())
	for c, name := range wb.Schema.Names {
		attr, err := schema.Index(name)
		if err != nil {
			return nil, fmt.Errorf("unknown attribute %q (artifact schema: %s)", name, schemaNames(schema))
		}
		if seen[attr] {
			return nil, fmt.Errorf("attribute %q appears twice", name)
		}
		seen[attr] = true
		kind := schema.Attr(attr).Kind
		wcol := &wb.Cols[c]
		switch {
		case kind == dataset.Numeric && wb.Schema.Kinds[c] == wire.Float64:
			cols[attr] = dataset.AssembledColumn{Floats: wcol.Floats, Nulls: wcol.Nulls}
		case kind == dataset.Categorical && wb.Schema.Kinds[c] == wire.String:
			cols[attr] = dataset.AssembledColumn{Codes: wcol.Codes, Dict: wcol.Dict, Nulls: wcol.Nulls}
		default:
			return nil, fmt.Errorf("attribute %q is %s on the artifact but wire kind %d", name, kind, wb.Schema.Kinds[c])
		}
	}
	for attr := range cols {
		if !seen[attr] {
			cols[attr] = dataset.AllNullColumn(schema.Attr(attr).Kind, wb.Rows)
		}
	}
	cs, err := dataset.AssembleColumnSet(schema, wb.Rows, cols)
	if err != nil {
		return nil, err
	}
	if cs.Len() == 0 {
		return nil, fmt.Errorf("empty request: stream carried no rows")
	}
	return &Batch{
		Cols: cs,
		Opts: BatchOptions{
			Column:      wb.Options[wire.OptColumn],
			UseFallback: wb.Options[wire.OptFallback] == "1",
		},
	}, nil
}

func (binaryCodec) EncodePredict(w io.Writer, res *PredictResult) error {
	return wire.EncodePredictions(w, &wire.Predictions{
		Y:       res.Y,
		Values:  res.Values,
		Covered: res.Covered,
		RuleIDs: res.RuleIDs,
	})
}

func (binaryCodec) EncodeCheck(w io.Writer, res *CheckResult) error {
	rep := &wire.CheckReport{Checked: res.Checked}
	if len(res.Violations) > 0 {
		rep.Violations = make([]wire.Violation, len(res.Violations))
		for i, v := range res.Violations {
			rep.Violations[i] = wire.Violation{
				Tuple:     v.Tuple,
				Rule:      v.Rule,
				Observed:  v.Observed,
				Predicted: v.Predicted,
				Excess:    v.Excess,
				Repair:    v.Repair,
			}
		}
	}
	return wire.EncodeCheck(w, rep)
}

func (binaryCodec) EncodeImpute(w io.Writer, res *ImputeResult) error {
	return wire.EncodeImpute(w, &wire.ImputeReport{
		Column:  res.Column,
		Imputed: res.Imputed,
		Failed:  res.Failed,
		Batch:   batchFromColumnSet(dataset.NewColumnSet(res.Filled)),
	}, wire.EncodeOptions{})
}

// batchFromColumnSet views a fully-populated ColumnSet as a wire batch,
// sharing storage.
func batchFromColumnSet(cs *dataset.ColumnSet) *wire.Batch {
	schema := cs.Schema
	b := &wire.Batch{
		Schema: wire.Schema{
			Names: make([]string, schema.Len()),
			Kinds: make([]wire.Kind, schema.Len()),
		},
		Rows: cs.Len(),
		Cols: make([]wire.Col, schema.Len()),
	}
	for a := 0; a < schema.Len(); a++ {
		attr := schema.Attr(a)
		b.Schema.Names[a] = attr.Name
		if attr.Kind == dataset.Numeric {
			b.Schema.Kinds[a] = wire.Float64
			b.Cols[a] = wire.Col{Floats: cs.Float(a), Nulls: cs.Nulls(a)}
		} else {
			b.Schema.Kinds[a] = wire.String
			b.Cols[a] = wire.Col{Codes: cs.Codes(a), Dict: cs.Dict(a), Nulls: cs.Nulls(a)}
		}
	}
	return b
}
