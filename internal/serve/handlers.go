package serve

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"time"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/impute"
)

// Data-plane handlers. Each one negotiates a request and response codec
// (JSON or binary columnar — see codec.go), decodes the body into a
// dataset.ColumnSet batch, runs the columnar classification core, and hands
// the transport-neutral result back to the response codec. The handlers
// never touch format-specific types, so every format sees identical
// semantics and the parity oracles (crrverify) can hold all of them to the
// in-process results bitwise.

// handlePredict answers POST /v1/predict: one columnar PredictView pass
// over the decoded batch, bitwise-identical to per-tuple RuleSet.Predict.
// With ?explain=1 the response carries the index of the rule that supplied
// each prediction (explain metadata), sparing clients a second /v1/rules
// correlation round trip.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) *apiError {
	art, aerr := s.artifactFor(r)
	if aerr != nil {
		return aerr
	}
	reqC, respC, aerr := s.negotiate(r)
	if aerr != nil {
		return aerr
	}
	batch, aerr := decodeBatch(r, reqC, art.rules.Schema)
	if aerr != nil {
		return aerr
	}
	if aerr := ctxExpired(r.Context()); aerr != nil {
		return aerr
	}
	res := &PredictResult{Y: art.rules.YName()}
	if wantExplain(r) {
		res.Values, res.Covered, res.RuleIDs = art.rules.PredictViewExplained(batch.Cols.View())
	} else {
		res.Values, res.Covered = art.rules.PredictView(batch.Cols.View())
	}
	return encodeResponse(w, respC, func(body io.Writer) error {
		return respC.EncodePredict(body, res)
	})
}

// handleCheck answers POST /v1/check: the integrity-constraint reading of
// the rule set (§II-A) via core.ViolationsColumns over the decoded batch,
// with the first covering rule's prediction attached as the repair.
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) *apiError {
	art, aerr := s.artifactFor(r)
	if aerr != nil {
		return aerr
	}
	reqC, respC, aerr := s.negotiate(r)
	if aerr != nil {
		return aerr
	}
	batch, aerr := decodeBatch(r, reqC, art.rules.Schema)
	if aerr != nil {
		return aerr
	}
	if aerr := ctxExpired(r.Context()); aerr != nil {
		return aerr
	}
	vs := core.ViolationsColumns(batch.Cols, art.rules)
	res := &CheckResult{Checked: batch.Cols.Len()}
	if len(vs) > 0 {
		res.Violations = make([]CheckViolation, len(vs))
		for i, v := range vs {
			res.Violations[i] = CheckViolation{
				Tuple:     v.TupleIndex,
				Rule:      v.RuleIndex,
				Observed:  v.Observed,
				Predicted: v.Predicted,
				Excess:    v.Excess,
			}
			if val, ok := core.Repair(batch.Cols.MaterializeRow(v.TupleIndex), art.rules); ok {
				res.Violations[i].Repair = &val
			}
		}
	}
	return encodeResponse(w, respC, func(body io.Writer) error {
		return respC.EncodeCheck(body, res)
	})
}

// handleImpute answers POST /v1/impute by wrapping internal/impute over the
// request batch: null cells of the chosen numeric column are filled from
// the rule set, and the completed tuples are returned in the negotiated
// format.
func (s *Server) handleImpute(w http.ResponseWriter, r *http.Request) *apiError {
	art, aerr := s.artifactFor(r)
	if aerr != nil {
		return aerr
	}
	reqC, respC, aerr := s.negotiate(r)
	if aerr != nil {
		return aerr
	}
	batch, aerr := decodeBatch(r, reqC, art.rules.Schema)
	if aerr != nil {
		return aerr
	}
	col := art.rules.YAttr
	if batch.Opts.Column != "" {
		var err error
		col, err = art.rules.Schema.Index(batch.Opts.Column)
		if err != nil {
			return errf(http.StatusBadRequest, CodeInvalidArgument, "%v", err)
		}
	}
	if aerr := ctxExpired(r.Context()); aerr != nil {
		return aerr
	}
	rel := batch.Cols.Materialize()
	p := impute.RuleSetPredictor{Rules: art.rules, UseFallback: batch.Opts.UseFallback}
	st, err := impute.Fill(rel, col, p)
	if err != nil {
		if errors.Is(err, impute.ErrColumnKind) {
			return errf(http.StatusBadRequest, CodeInvalidArgument, "%v", err)
		}
		return errf(http.StatusInternalServerError, CodeInternal, "%v", err)
	}
	res := &ImputeResult{
		Column:  art.rules.Schema.Attr(col).Name,
		Imputed: st.Imputed,
		Failed:  st.Failed,
		Filled:  rel,
	}
	return encodeResponse(w, respC, func(body io.Writer) error {
		return respC.EncodeImpute(body, res)
	})
}

// encodeResponse stamps the negotiated content type and streams the result.
// Encode failures after the header is out are connection-level: nothing
// recoverable remains, so nothing is surfaced.
func encodeResponse(w http.ResponseWriter, c Codec, encode func(io.Writer) error) *apiError {
	w.Header().Set("Content-Type", c.ContentType())
	_ = encode(w)
	return nil
}

// ruleSetInfo is the GET /v1/rules summary.
type ruleSetInfo struct {
	Source       string    `json:"source"`
	LoadedAt     time.Time `json:"loaded_at"`
	X            []string  `json:"x"`
	Y            string    `json:"y"`
	CondAttrs    []string  `json:"cond_attrs"`
	Rules        int       `json:"rules"`
	Models       int       `json:"models"`
	Conjunctions int       `json:"conjunctions"`
	MinRho       float64   `json:"min_rho"`
	MaxRho       float64   `json:"max_rho"`
	Fallback     float64   `json:"fallback"`
	Formatted    []string  `json:"formatted"`
}

// handleRules answers GET /v1/rules with the addressed tenant's artifact
// summary.
func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) *apiError {
	art, aerr := s.artifactFor(r)
	if aerr != nil {
		return aerr
	}
	rs := art.rules
	info := ruleSetInfo{
		Source:       art.source,
		LoadedAt:     art.loadedAt,
		X:            rs.XNames(),
		Y:            rs.YName(),
		CondAttrs:    []string{},
		Rules:        art.summary.Rules,
		Models:       art.summary.Models,
		Conjunctions: art.summary.Conjunctions,
		MinRho:       art.summary.MinRho,
		MaxRho:       art.summary.MaxRho,
		Fallback:     rs.Fallback,
	}
	for _, a := range rs.CondAttrs() {
		info.CondAttrs = append(info.CondAttrs, rs.Schema.Attr(a).Name)
	}
	for i := range rs.Rules {
		info.Formatted = append(info.Formatted, rs.Rules[i].Format(rs.Schema))
	}
	return writeJSON(w, info)
}

// handleReload answers POST /v1/reload: an empty body re-reads the
// configured artifact path (DefaultTenant only — the path feeds exactly one
// tenant); a non-empty body is parsed as a complete artifact and swapped in
// for the addressed tenant directly (zero-downtime push deploys).
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) *apiError {
	tenant := tenantOf(r)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return errf(http.StatusBadRequest, CodeInvalidArgument, "read body: %v", err)
	}
	if len(bytes.TrimSpace(body)) == 0 {
		if tenant != DefaultTenant {
			return errf(http.StatusBadRequest, CodeInvalidArgument,
				"path-based reload feeds only the default tenant; push an artifact body for %q", tenant)
		}
		if err := s.Reload(); err != nil {
			return errf(http.StatusUnprocessableEntity, CodeReloadFailed, "%v", err)
		}
	} else {
		if err := s.ReloadTenantFrom(tenant, bytes.NewReader(body), "reload-body"); err != nil {
			return errf(http.StatusUnprocessableEntity, CodeReloadFailed, "%v", err)
		}
	}
	art, aerr := s.artifactFor(r)
	if aerr != nil {
		return aerr
	}
	return writeJSON(w, struct {
		Tenant     string    `json:"tenant"`
		Rules      int       `json:"rules"`
		Source     string    `json:"source"`
		LoadedAt   time.Time `json:"loaded_at"`
		Generation uint64    `json:"generation"`
	}{tenant, art.rules.NumRules(), art.source, art.loadedAt, art.gen})
}

// handleHealthz answers GET /healthz. It stays outside the in-flight gate,
// so probes keep passing while the data plane sheds load. The cluster
// liveness tracker reads status ("ok" | "draining") and generation; the
// top-level rules/loaded_at/generation triple describes the DefaultTenant
// when present (single-tenant compatibility), and tenants maps every loaded
// tenant to its generation.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) *apiError {
	tenants := map[string]uint64{}
	for _, name := range s.Tenants() {
		tenants[name] = s.TenantGeneration(name)
	}
	if len(tenants) == 0 {
		return errf(http.StatusServiceUnavailable, CodeUnavailable, "no rule set loaded")
	}
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	out := struct {
		Status     string            `json:"status"`
		Rules      int               `json:"rules"`
		LoadedAt   time.Time         `json:"loaded_at"`
		Generation uint64            `json:"generation"`
		Tenants    map[string]uint64 `json:"tenants"`
	}{Status: status, Tenants: tenants}
	if art := s.artifactNow(); art != nil {
		out.Rules = art.rules.NumRules()
		out.LoadedAt = art.loadedAt
		out.Generation = art.gen
	}
	return writeJSON(w, out)
}

// handleMetrics answers GET /metrics with the Prometheus text exposition of
// the shared telemetry registry — the same snapshot the CLIs render.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) *apiError {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.Snapshot().WriteText(w); err != nil {
		return nil // connection-level failure; nothing to send anymore
	}
	return nil
}
