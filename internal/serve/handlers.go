package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/impute"
)

// tupleBatch is the shared request envelope of the data-plane endpoints:
// exactly one of tuple (single) or tuples (batch).
type tupleBatch struct {
	Tuple  map[string]any   `json:"tuple,omitempty"`
	Tuples []map[string]any `json:"tuples,omitempty"`
}

// decodeBatch parses the request body into schema-validated tuples.
func decodeBatch(r *http.Request, schema *dataset.Schema) ([]dataset.Tuple, *apiError) {
	var req tupleBatch
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return nil, errf(http.StatusBadRequest, "decode request: %v", err)
	}
	switch {
	case req.Tuple != nil && req.Tuples != nil:
		return nil, errf(http.StatusBadRequest, `provide "tuple" or "tuples", not both`)
	case req.Tuple != nil:
		req.Tuples = []map[string]any{req.Tuple}
	case len(req.Tuples) == 0:
		return nil, errf(http.StatusBadRequest, `empty request: provide "tuple" or "tuples"`)
	}
	tuples, err := decodeTuples(schema, req.Tuples)
	if err != nil {
		return nil, errf(http.StatusBadRequest, "%v", err)
	}
	return tuples, nil
}

// prediction is one answered tuple.
type prediction struct {
	// Value is f(t.X + x) + y of the first covering rule, or the training-
	// mean fallback when Covered is false.
	Value float64 `json:"value"`
	// Covered reports whether some rule's condition matched the tuple.
	Covered bool `json:"covered"`
}

// handlePredict answers POST /v1/predict. Single-tuple requests go through
// the interval-indexed RuleSet.Predict; batches build a request-local
// ColumnSet and classify columnar-first (PredictBatch), which is
// bitwise-identical to the per-tuple path.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) *apiError {
	art := s.artifactNow()
	tuples, aerr := decodeBatch(r, art.rules.Schema)
	if aerr != nil {
		return aerr
	}
	if aerr := ctxExpired(r.Context()); aerr != nil {
		return aerr
	}
	preds := make([]prediction, len(tuples))
	if len(tuples) == 1 {
		v, covered := art.rules.Predict(tuples[0])
		preds[0] = prediction{Value: v, Covered: covered}
	} else {
		rel := &dataset.Relation{Schema: art.rules.Schema, Tuples: tuples}
		vals, covered := art.rules.PredictBatch(rel)
		for i := range vals {
			preds[i] = prediction{Value: vals[i], Covered: covered[i]}
		}
	}
	return writeJSON(w, struct {
		Y           string       `json:"y"`
		Count       int          `json:"count"`
		Predictions []prediction `json:"predictions"`
	}{art.rules.YName(), len(preds), preds})
}

// violationOut is one (tuple, rule) violation on the wire.
type violationOut struct {
	Tuple     int     `json:"tuple"`
	Rule      int     `json:"rule"`
	Observed  float64 `json:"observed"`
	Predicted float64 `json:"predicted"`
	Excess    float64 `json:"excess"`
	// Repair is the first covering rule's prediction — the value that would
	// satisfy the violated constraint.
	Repair *float64 `json:"repair,omitempty"`
}

// handleCheck answers POST /v1/check: the integrity-constraint reading of
// the rule set (§II-A), reusing core.Violations verbatim — which builds one
// ColumnSet over the request body and detects violations columnar-first.
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) *apiError {
	art := s.artifactNow()
	tuples, aerr := decodeBatch(r, art.rules.Schema)
	if aerr != nil {
		return aerr
	}
	if aerr := ctxExpired(r.Context()); aerr != nil {
		return aerr
	}
	rel := &dataset.Relation{Schema: art.rules.Schema, Tuples: tuples}
	vs := core.Violations(rel, art.rules)
	out := make([]violationOut, len(vs))
	for i, v := range vs {
		out[i] = violationOut{
			Tuple:     v.TupleIndex,
			Rule:      v.RuleIndex,
			Observed:  v.Observed,
			Predicted: v.Predicted,
			Excess:    v.Excess,
		}
		if val, ok := core.Repair(tuples[v.TupleIndex], art.rules); ok {
			out[i].Repair = &val
		}
	}
	return writeJSON(w, struct {
		Checked    int            `json:"checked"`
		Violations []violationOut `json:"violations"`
	}{len(tuples), out})
}

// imputeRequest extends the shared batch envelope with the impute options.
type imputeRequest struct {
	tupleBatch
	// Column names the attribute to fill; default: the artifact's target.
	Column string `json:"column,omitempty"`
	// UseFallback fills uncovered tuples with the training mean instead of
	// leaving them missing.
	UseFallback bool `json:"use_fallback,omitempty"`
}

// handleImpute answers POST /v1/impute by wrapping internal/impute over the
// request batch: null cells of the chosen numeric column are filled from the
// rule set, and the completed tuples are returned.
func (s *Server) handleImpute(w http.ResponseWriter, r *http.Request) *apiError {
	art := s.artifactNow()
	var req imputeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return errf(http.StatusBadRequest, "decode request: %v", err)
	}
	switch {
	case req.Tuple != nil && req.Tuples != nil:
		return errf(http.StatusBadRequest, `provide "tuple" or "tuples", not both`)
	case req.Tuple != nil:
		req.Tuples = []map[string]any{req.Tuple}
	case len(req.Tuples) == 0:
		return errf(http.StatusBadRequest, `empty request: provide "tuple" or "tuples"`)
	}
	tuples, err := decodeTuples(art.rules.Schema, req.Tuples)
	if err != nil {
		return errf(http.StatusBadRequest, "%v", err)
	}
	col := art.rules.YAttr
	if req.Column != "" {
		col, err = art.rules.Schema.Index(req.Column)
		if err != nil {
			return errf(http.StatusBadRequest, "%v", err)
		}
	}
	if aerr := ctxExpired(r.Context()); aerr != nil {
		return aerr
	}
	rel := &dataset.Relation{Schema: art.rules.Schema, Tuples: tuples}
	p := impute.RuleSetPredictor{Rules: art.rules, UseFallback: req.UseFallback}
	st, err := impute.Fill(rel, col, p)
	if err != nil {
		if errors.Is(err, impute.ErrColumnKind) {
			return errf(http.StatusBadRequest, "%v", err)
		}
		return errf(http.StatusInternalServerError, "%v", err)
	}
	out := make([]map[string]any, len(rel.Tuples))
	for i, t := range rel.Tuples {
		out[i] = encodeTuple(art.rules.Schema, t)
	}
	return writeJSON(w, struct {
		Column  string           `json:"column"`
		Imputed int              `json:"imputed"`
		Failed  int              `json:"failed"`
		Tuples  []map[string]any `json:"tuples"`
	}{art.rules.Schema.Attr(col).Name, st.Imputed, st.Failed, out})
}

// ruleSetInfo is the GET /v1/rules summary.
type ruleSetInfo struct {
	Source       string    `json:"source"`
	LoadedAt     time.Time `json:"loaded_at"`
	X            []string  `json:"x"`
	Y            string    `json:"y"`
	CondAttrs    []string  `json:"cond_attrs"`
	Rules        int       `json:"rules"`
	Models       int       `json:"models"`
	Conjunctions int       `json:"conjunctions"`
	MinRho       float64   `json:"min_rho"`
	MaxRho       float64   `json:"max_rho"`
	Fallback     float64   `json:"fallback"`
	Formatted    []string  `json:"formatted"`
}

// handleRules answers GET /v1/rules with the artifact summary.
func (s *Server) handleRules(w http.ResponseWriter, _ *http.Request) *apiError {
	art := s.artifactNow()
	rs := art.rules
	info := ruleSetInfo{
		Source:       art.source,
		LoadedAt:     art.loadedAt,
		X:            rs.XNames(),
		Y:            rs.YName(),
		CondAttrs:    []string{},
		Rules:        art.summary.Rules,
		Models:       art.summary.Models,
		Conjunctions: art.summary.Conjunctions,
		MinRho:       art.summary.MinRho,
		MaxRho:       art.summary.MaxRho,
		Fallback:     rs.Fallback,
	}
	for _, a := range rs.CondAttrs() {
		info.CondAttrs = append(info.CondAttrs, rs.Schema.Attr(a).Name)
	}
	for i := range rs.Rules {
		info.Formatted = append(info.Formatted, rs.Rules[i].Format(rs.Schema))
	}
	return writeJSON(w, info)
}

// handleReload answers POST /v1/reload: an empty body re-reads the
// configured artifact path; a non-empty body is parsed as a complete
// artifact and swapped in directly (zero-downtime push deploys).
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) *apiError {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return errf(http.StatusBadRequest, "read body: %v", err)
	}
	if len(bytes.TrimSpace(body)) == 0 {
		if err := s.Reload(); err != nil {
			return errf(http.StatusUnprocessableEntity, "%v", err)
		}
	} else {
		if err := s.ReloadFrom(bytes.NewReader(body), "reload-body"); err != nil {
			return errf(http.StatusUnprocessableEntity, "%v", err)
		}
	}
	art := s.artifactNow()
	return writeJSON(w, struct {
		Rules    int       `json:"rules"`
		Source   string    `json:"source"`
		LoadedAt time.Time `json:"loaded_at"`
	}{art.rules.NumRules(), art.source, art.loadedAt})
}

// handleHealthz answers GET /healthz. It stays outside the in-flight gate,
// so probes keep passing while the data plane sheds load.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) *apiError {
	art := s.artifactNow()
	if art == nil {
		return errf(http.StatusServiceUnavailable, "no rule set loaded")
	}
	return writeJSON(w, struct {
		Status   string    `json:"status"`
		Rules    int       `json:"rules"`
		LoadedAt time.Time `json:"loaded_at"`
	}{"ok", art.rules.NumRules(), art.loadedAt})
}

// handleMetrics answers GET /metrics with the Prometheus text exposition of
// the shared telemetry registry — the same snapshot the CLIs render.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) *apiError {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.Snapshot().WriteText(w); err != nil {
		return nil // connection-level failure; nothing to send anymore
	}
	return nil
}
