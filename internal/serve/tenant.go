package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/registry"
)

// Multi-tenant serving. A Server holds one independently swappable artifact
// per tenant; the pre-tenant API (New, Install, Reload, /v1/predict without
// a tenant) operates on the DefaultTenant, so single-tenant deployments keep
// working unchanged. Requests address a tenant through the X-CRR-Tenant
// header or a /t/{tenant}/... path prefix (rewritten to the header form by
// the root handler, so the router can forward bodies untouched either way).
//
// When Config.Store is set, the server is also the control plane of a
// registry-backed deployment: /v1/registry/publish|activate|rollback|list
// mutate the durable store and hot-swap the affected tenant's artifact in
// the same call.

// DefaultTenant is the tenant key behind the pre-tenant API surface.
const DefaultTenant = "default"

// TenantHeader addresses a tenant on any endpoint.
const TenantHeader = "X-CRR-Tenant"

// tenantState is one tenant's independently swappable artifact slot. The
// generation counter is tenant-scoped, so install accounting for one tenant
// is undisturbed by publishes to another.
type tenantState struct {
	art    atomic.Pointer[artifact]
	genCtr atomic.Uint64
}

// tenantState returns the named tenant's slot, creating it when create is
// set.
func (s *Server) tenantState(name string, create bool) *tenantState {
	s.tmu.RLock()
	ts := s.tenants[name]
	s.tmu.RUnlock()
	if ts != nil || !create {
		return ts
	}
	s.tmu.Lock()
	defer s.tmu.Unlock()
	if ts = s.tenants[name]; ts == nil {
		ts = &tenantState{}
		s.tenants[name] = ts
	}
	return ts
}

// Tenants lists the tenants with a loaded artifact, sorted.
func (s *Server) Tenants() []string {
	s.tmu.RLock()
	defer s.tmu.RUnlock()
	names := make([]string, 0, len(s.tenants))
	for name, ts := range s.tenants {
		if ts.art.Load() != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// tenantOf resolves the tenant a request addresses: the X-CRR-Tenant header
// when present (the /t/{tenant} path prefix is rewritten into it by the root
// handler), DefaultTenant otherwise.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get(TenantHeader); t != "" {
		return t
	}
	return DefaultTenant
}

// artifactFor resolves the addressed tenant's current artifact.
func (s *Server) artifactFor(r *http.Request) (*artifact, *apiError) {
	name := tenantOf(r)
	ts := s.tenantState(name, false)
	if ts == nil {
		return nil, errf(http.StatusNotFound, CodeUnknownTenant, "unknown tenant %q", name)
	}
	art := ts.art.Load()
	if art == nil {
		return nil, errf(http.StatusNotFound, CodeUnknownTenant, "tenant %q has no artifact", name)
	}
	return art, nil
}

// rootHandler rewrites /t/{tenant}/rest into rest + X-CRR-Tenant before mux
// dispatch, so both addressing forms share one route table and forwarded
// bodies are never touched.
func (s *Server) rootHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if rest, ok := strings.CutPrefix(r.URL.Path, "/t/"); ok {
			tenant, sub, found := strings.Cut(rest, "/")
			if !found || tenant == "" {
				writeError(w, http.StatusNotFound, CodeUnknownTenant,
					"tenant path form is /t/{tenant}/v1/..., got %q", r.URL.Path)
				return
			}
			r.Header.Set(TenantHeader, tenant)
			r.URL.Path = "/" + sub
		}
		s.mux.ServeHTTP(w, r)
	})
}

// InstallTenant swaps rules in as tenant's served artifact and returns the
// tenant's new generation. The DefaultTenant form is Install.
func (s *Server) InstallTenant(tenant string, rules *core.RuleSet, source string) (uint64, error) {
	if rules == nil || rules.Schema == nil {
		return 0, errors.New("serve: rule set must carry a schema (payloads are validated by attribute name)")
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	s.ctrReloads.Inc()
	return s.install(tenant, rules, source), nil
}

// TenantGeneration returns tenant's current artifact generation (0 when the
// tenant has no artifact).
func (s *Server) TenantGeneration(tenant string) uint64 {
	if ts := s.tenantState(tenant, false); ts != nil {
		if a := ts.art.Load(); a != nil {
			return a.gen
		}
	}
	return 0
}

// LoadStore installs the active artifact of every tenant in the configured
// registry store — the boot path of a registry-backed node.
func (s *Server) LoadStore() error {
	if s.store == nil {
		return errors.New("serve: no registry store configured")
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	for _, tenant := range s.store.Tenants() {
		rules, vi, err := s.store.RuleSet(tenant, 0)
		if err != nil {
			return err
		}
		s.install(tenant, rules, registrySource(tenant, vi))
	}
	return nil
}

func registrySource(tenant string, vi registry.VersionInfo) string {
	return fmt.Sprintf("registry:%s@v%d", tenant, vi.Version)
}

// registryErr maps registry failures onto the error envelope.
func registryErr(err error) *apiError {
	switch {
	case errors.Is(err, registry.ErrUnknownTenant):
		return errf(http.StatusNotFound, CodeUnknownTenant, "%v", err)
	case errors.Is(err, registry.ErrUnknownVersion):
		return errf(http.StatusNotFound, CodeUnknownVersion, "%v", err)
	default:
		return errf(http.StatusUnprocessableEntity, CodeRegistryRejected, "%v", err)
	}
}

// requireStore gates the registry control plane.
func (s *Server) requireStore() *apiError {
	if s.store == nil {
		return errf(http.StatusServiceUnavailable, CodeUnavailable,
			"no artifact registry configured (start with -registry)")
	}
	return nil
}

// registryMutation summarizes a successful publish/activate/rollback.
type registryMutation struct {
	Tenant     string `json:"tenant"`
	Version    uint64 `json:"version"`
	Rules      int    `json:"rules"`
	Blob       string `json:"blob"`
	Generation uint64 `json:"generation"`
}

// handleRegistryPublish answers POST /v1/registry/publish: the body is a
// complete rule-set artifact, published as the addressed tenant's next
// version, activated, and hot-swapped into serving — the durable form of
// the push-deploy /v1/reload path.
func (s *Server) handleRegistryPublish(w http.ResponseWriter, r *http.Request) *apiError {
	if aerr := s.requireStore(); aerr != nil {
		return aerr
	}
	tenant := tenantOf(r)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return errf(http.StatusBadRequest, CodeInvalidArgument, "read body: %v", err)
	}
	source := r.URL.Query().Get("source")
	if source == "" {
		source = "publish"
	}
	vi, err := s.store.Publish(tenant, bytes.NewReader(body), source)
	if err != nil {
		return registryErr(err)
	}
	rules, err := core.ReadRuleSet(bytes.NewReader(body))
	if err != nil {
		// The store validated the same bytes; a parse failure here is a bug.
		return errf(http.StatusInternalServerError, CodeInternal, "%v", err)
	}
	gen, err := s.InstallTenant(tenant, rules, registrySource(tenant, vi))
	if err != nil {
		return errf(http.StatusInternalServerError, CodeInternal, "%v", err)
	}
	return writeJSON(w, registryMutation{
		Tenant: tenant, Version: vi.Version, Rules: vi.Rules, Blob: vi.Blob, Generation: gen,
	})
}

// activateRequest is the POST /v1/registry/{activate,rollback} body.
type activateRequest struct {
	Tenant string `json:"tenant"`
	// Version is the target version; for rollback, 0 means "the version
	// before the active one".
	Version uint64 `json:"version"`
}

func decodeActivate(r *http.Request) (activateRequest, *apiError) {
	var req activateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return req, errf(http.StatusBadRequest, CodeInvalidArgument, "decode request: %v", err)
	}
	if req.Tenant == "" {
		req.Tenant = tenantOfHeaderOnly(r)
	}
	return req, nil
}

// tenantOfHeaderOnly is tenantOf for control endpoints whose body may also
// carry the tenant: header wins only when the body left it empty.
func tenantOfHeaderOnly(r *http.Request) string {
	if t := r.Header.Get(TenantHeader); t != "" {
		return t
	}
	return DefaultTenant
}

// activateVersion moves tenant's active pointer (via move) and hot-swaps the
// resulting artifact — shared by activate and rollback.
func (s *Server) activateVersion(w http.ResponseWriter, tenant string,
	move func() (registry.VersionInfo, error)) *apiError {
	vi, err := move()
	if err != nil {
		return registryErr(err)
	}
	rules, vi2, err := s.store.RuleSet(tenant, vi.Version)
	if err != nil {
		return errf(http.StatusInternalServerError, CodeInternal, "%v", err)
	}
	gen, err := s.InstallTenant(tenant, rules, registrySource(tenant, vi2))
	if err != nil {
		return errf(http.StatusInternalServerError, CodeInternal, "%v", err)
	}
	return writeJSON(w, registryMutation{
		Tenant: tenant, Version: vi2.Version, Rules: vi2.Rules, Blob: vi2.Blob, Generation: gen,
	})
}

// handleRegistryActivate answers POST /v1/registry/activate {tenant,version}:
// move the active pointer to any retained version and serve it.
func (s *Server) handleRegistryActivate(w http.ResponseWriter, r *http.Request) *apiError {
	if aerr := s.requireStore(); aerr != nil {
		return aerr
	}
	req, aerr := decodeActivate(r)
	if aerr != nil {
		return aerr
	}
	if req.Version == 0 {
		return errf(http.StatusBadRequest, CodeInvalidArgument, "activate needs an explicit version")
	}
	return s.activateVersion(w, req.Tenant, func() (registry.VersionInfo, error) {
		return s.store.Activate(req.Tenant, req.Version)
	})
}

// handleRegistryRollback answers POST /v1/registry/rollback {tenant[,version]}:
// version 0 rolls back to the newest version older than the active one. The
// restored artifact serves the exact bytes that were published.
func (s *Server) handleRegistryRollback(w http.ResponseWriter, r *http.Request) *apiError {
	if aerr := s.requireStore(); aerr != nil {
		return aerr
	}
	req, aerr := decodeActivate(r)
	if aerr != nil {
		return aerr
	}
	return s.activateVersion(w, req.Tenant, func() (registry.VersionInfo, error) {
		return s.store.Rollback(req.Tenant, req.Version)
	})
}

// handleRegistryList answers GET /v1/registry/list with the manifest view
// plus each tenant's live serving generation.
func (s *Server) handleRegistryList(w http.ResponseWriter, _ *http.Request) *apiError {
	if aerr := s.requireStore(); aerr != nil {
		return aerr
	}
	type tenantRow struct {
		registry.TenantInfo
		Generation uint64 `json:"generation"`
	}
	out := map[string]tenantRow{}
	for name, ti := range s.store.List() {
		out[name] = tenantRow{TenantInfo: ti, Generation: s.TenantGeneration(name)}
	}
	return writeJSON(w, struct {
		Tenants map[string]tenantRow `json:"tenants"`
	}{out})
}
