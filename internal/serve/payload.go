package serve

import (
	"fmt"

	"github.com/crrlab/crr/internal/dataset"
)

// Tuples cross the wire as JSON objects keyed by attribute name. The schema
// embedded in the artifact is the contract: unknown keys are rejected (a
// misspelled attribute must not silently become a null), values are
// type-checked against the attribute kind, and absent keys mean missing —
// exactly the dataset.Null the engine already treats as "satisfies no
// predicate". Field order is irrelevant by construction.

// decodeTuple builds a schema-ordered tuple from one request object.
func decodeTuple(schema *dataset.Schema, obj map[string]any) (dataset.Tuple, error) {
	for name := range obj {
		if _, err := schema.Index(name); err != nil {
			return nil, fmt.Errorf("unknown attribute %q (artifact schema: %s)", name, schemaNames(schema))
		}
	}
	t := make(dataset.Tuple, schema.Len())
	for i := 0; i < schema.Len(); i++ {
		a := schema.Attr(i)
		raw, present := obj[a.Name]
		if !present || raw == nil {
			t[i] = dataset.Null()
			continue
		}
		switch a.Kind {
		case dataset.Numeric:
			v, ok := raw.(float64)
			if !ok {
				return nil, fmt.Errorf("attribute %q is numeric, got %T", a.Name, raw)
			}
			t[i] = dataset.Num(v)
		case dataset.Categorical:
			v, ok := raw.(string)
			if !ok {
				return nil, fmt.Errorf("attribute %q is categorical, got %T", a.Name, raw)
			}
			t[i] = dataset.Str(v)
		default:
			return nil, fmt.Errorf("attribute %q has unsupported kind %v", a.Name, a.Kind)
		}
	}
	return t, nil
}

// decodeTuples decodes a batch, reporting the first offending element.
func decodeTuples(schema *dataset.Schema, objs []map[string]any) ([]dataset.Tuple, error) {
	out := make([]dataset.Tuple, len(objs))
	for i, obj := range objs {
		t, err := decodeTuple(schema, obj)
		if err != nil {
			return nil, fmt.Errorf("tuple %d: %w", i, err)
		}
		out[i] = t
	}
	return out, nil
}

// encodeTuple renders a tuple back into the named-object wire form. Null
// cells render as explicit JSON nulls so imputation responses distinguish
// "still missing" from zero.
func encodeTuple(schema *dataset.Schema, t dataset.Tuple) map[string]any {
	obj := make(map[string]any, schema.Len())
	for i := 0; i < schema.Len(); i++ {
		a := schema.Attr(i)
		switch {
		case t[i].Null:
			obj[a.Name] = nil
		case a.Kind == dataset.Categorical:
			obj[a.Name] = t[i].Str
		default:
			obj[a.Name] = t[i].Num
		}
	}
	return obj
}

// schemaNames renders the schema's attribute names for error messages.
func schemaNames(schema *dataset.Schema) string {
	s := ""
	for i := 0; i < schema.Len(); i++ {
		if i > 0 {
			s += ", "
		}
		s += schema.Attr(i).Name
	}
	return s
}
