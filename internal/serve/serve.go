// Package serve is the rule-serving subsystem: an HTTP server that loads a
// discovered rule-set artifact (crrdiscover -save) and exposes prediction,
// constraint checking and imputation over the network, so consumers no
// longer re-load the JSON in-process.
//
// Endpoints:
//
//	POST /v1/predict  predictions for one tuple or a batch (RuleSet.Predict)
//	POST /v1/check    per-tuple violation verdicts against ρ (core.Violations)
//	POST /v1/impute   fill null cells of a numeric column (internal/impute)
//	GET  /v1/rules    rule-set summary and formatted rules
//	POST /v1/reload   hot-swap the artifact from disk or the request body
//	GET  /healthz     liveness + drain status + per-tenant generations
//	GET  /metrics     Prometheus text exposition of the telemetry registry
//
// Registry control plane (only when Config.Store is set — see tenant.go):
//
//	POST /v1/registry/publish   publish body as the tenant's next version
//	POST /v1/registry/activate  activate a retained version
//	POST /v1/registry/rollback  roll the active pointer back
//	GET  /v1/registry/list      manifest view + live generations
//
// The server is multi-tenant: every endpoint addresses a tenant via the
// X-CRR-Tenant header or a /t/{tenant}/... path prefix, and each tenant has
// an independently hot-swappable artifact. Requests that name no tenant hit
// DefaultTenant, which is where the pre-tenant single-artifact API (New,
// Install, Reload) lives — single-tenant deployments are unchanged.
//
// Production behaviors are part of the contract, not extras: every data-plane
// request runs under a per-request context deadline; a configurable in-flight
// semaphore sheds excess load with 429 instead of queueing unboundedly;
// Shutdown drains in-flight requests; and reload swaps the rule set through
// an atomic pointer, so concurrent Predict calls always observe either the
// old or the new artifact, never a torn one. Tuples arrive as JSON objects
// keyed by attribute NAME and are validated against the artifact's schema —
// field order is never trusted.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/registry"
	"github.com/crrlab/crr/internal/telemetry"
)

// Config parameterizes a Server. The zero value of every optional field is
// replaced by the default documented on it.
type Config struct {
	// RulesPath is the rule-set artifact to load and the source of
	// path-based reloads (POST /v1/reload with an empty body, SIGHUP). It
	// feeds the DefaultTenant. Optional when the initial set is injected via
	// NewFromRuleSet or loaded from Store.
	RulesPath string

	// Store, when set, attaches a versioned artifact registry: the
	// /v1/registry control plane is enabled, and New installs every
	// tenant's active version at boot (LoadStore).
	Store *registry.Registry

	// MaxInFlight bounds concurrently handled data-plane requests
	// (predict/check/impute). Requests beyond the bound are rejected
	// immediately with 429. Default 64.
	MaxInFlight int

	// RequestTimeout is the per-request processing deadline; work past it is
	// abandoned and answered with 504. Default 30s.
	RequestTimeout time.Duration

	// MaxBodyBytes bounds request bodies (tuple batches, reload payloads).
	// Default 32 MiB.
	MaxBodyBytes int64

	// Registry receives the serving metrics and the rule set's prediction-
	// index counters; GET /metrics exposes it. Default: a fresh registry.
	Registry *telemetry.Registry

	// Logf, when set, receives one line per lifecycle event (load, reload,
	// shutdown). Default: silent.
	Logf func(format string, args ...any)

	// OnRequest, when set, is called synchronously with the endpoint name
	// after a data-plane request is admitted (past the in-flight gate) and
	// before its handler runs — an audit/instrumentation shim, and the hook
	// lifecycle tests use to hold requests in flight deterministically.
	OnRequest func(endpoint string)
}

// artifact is one immutable loaded rule set plus its provenance. Handlers
// grab the current artifact exactly once per request, so a concurrent reload
// never changes the schema mid-request.
type artifact struct {
	rules    *core.RuleSet
	summary  core.Summary
	source   string
	loadedAt time.Time
	// gen is the artifact's generation: a tenant-scoped counter incremented
	// by every successful install, the token InstallIfGeneration compares
	// against so two writers (an operator reload and a stream maintainer)
	// cannot silently overwrite each other's swap.
	gen uint64
}

// Server is the HTTP rule-serving subsystem. Create with New or
// NewFromRuleSet, expose via Handler or Serve, stop with Shutdown.
type Server struct {
	cfg   Config
	reg   *telemetry.Registry
	store *registry.Registry

	// tenants maps tenant name → artifact slot. Slots are created on first
	// install and never removed; swapping happens inside the slot, so the
	// map itself is read-mostly.
	tmu      sync.RWMutex
	tenants  map[string]*tenantState
	reloadMu sync.Mutex // serializes installs/reloads; the swap itself is atomic

	// draining flips when StartDrain is called: /healthz reports "draining"
	// so routers stop assigning new tenants here while in-flight and
	// follow-up reads on existing connections still complete.
	draining atomic.Bool

	inflight    chan struct{}
	inflightNow atomic.Int64

	mux  *http.ServeMux
	root http.Handler
	http *http.Server

	// Pre-resolved metric handles (hot path: one atomic op per event).
	gaugeInFlight *telemetry.Gauge
	ctrShed       *telemetry.Counter
	ctrTimeout    *telemetry.Counter
	ctrReloads    *telemetry.Counter
	ctrReloadErrs *telemetry.Counter
}

// endpoint bundles the per-endpoint metric handles.
type endpoint struct {
	name     string
	requests *telemetry.Counter
	errors   *telemetry.Counter
	latency  *telemetry.Histogram
}

// New builds a server and loads the initial artifacts: the DefaultTenant
// artifact from cfg.RulesPath (when set) and every registry tenant's active
// version from cfg.Store (when set). At least one source is required.
func New(cfg Config) (*Server, error) {
	s, err := newServer(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.RulesPath == "" && cfg.Store == nil {
		return nil, errors.New("serve: Config.RulesPath or Config.Store is required")
	}
	if cfg.RulesPath != "" {
		if err := s.Reload(); err != nil {
			return nil, err
		}
	}
	if cfg.Store != nil {
		if err := s.LoadStore(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// NewFromRuleSet builds a server around an already-loaded rule set (tests,
// embedding). Path-based reload still works when cfg.RulesPath is set.
func NewFromRuleSet(cfg Config, rules *core.RuleSet, source string) (*Server, error) {
	if rules == nil || rules.Schema == nil {
		return nil, errors.New("serve: rule set must carry a schema (payloads are validated by attribute name)")
	}
	s, err := newServer(cfg)
	if err != nil {
		return nil, err
	}
	s.install(DefaultTenant, rules, source)
	return s, nil
}

func newServer(cfg Config) (*Server, error) {
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 64
	}
	if cfg.MaxInFlight < 0 {
		return nil, fmt.Errorf("serve: MaxInFlight %d must be positive", cfg.MaxInFlight)
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.New()
	}
	s := &Server{
		cfg:      cfg,
		reg:      cfg.Registry,
		store:    cfg.Store,
		tenants:  map[string]*tenantState{},
		inflight: make(chan struct{}, cfg.MaxInFlight),
		mux:      http.NewServeMux(),

		gaugeInFlight: cfg.Registry.Gauge(telemetry.MetricServeInFlight),
		ctrShed:       cfg.Registry.Counter(telemetry.MetricServeShed),
		ctrTimeout:    cfg.Registry.Counter(telemetry.MetricServeTimeouts),
		ctrReloads:    cfg.Registry.Counter(telemetry.MetricServeReloads),
		ctrReloadErrs: cfg.Registry.Counter(telemetry.MetricServeReloadErrors),
	}
	s.routes()
	s.root = s.rootHandler()
	s.http = &http.Server{Handler: s.root}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// install makes rules the tenant's served artifact and returns its
// generation. Concurrent requests keep using the artifact they started with;
// new requests see the new one. Callers other than construction must hold
// reloadMu — the pointer swap is atomic, but two unserialized installs could
// otherwise interleave generation allocation and storing, breaking the
// monotone served-generation guarantee InstallIfGeneration relies on.
func (s *Server) install(tenant string, rules *core.RuleSet, source string) uint64 {
	rules.SetTelemetry(s.reg)
	ts := s.tenantState(tenant, true)
	gen := ts.genCtr.Add(1)
	ts.art.Store(&artifact{
		rules:    rules,
		summary:  core.Summarize(rules),
		source:   source,
		loadedAt: time.Now(),
		gen:      gen,
	})
	s.logf("serve: installed %d rules (y=%s, tenant %s, gen %d) from %s",
		rules.NumRules(), rules.YName(), tenant, gen, source)
	return gen
}

// artifactNow returns the DefaultTenant's currently served artifact.
func (s *Server) artifactNow() *artifact {
	if ts := s.tenantState(DefaultTenant, false); ts != nil {
		return ts.art.Load()
	}
	return nil
}

// Generation returns the generation of the DefaultTenant's currently served
// artifact. Every successful install (construction, reload, Install,
// InstallIfGeneration) bumps it; it never moves backwards.
func (s *Server) Generation() uint64 { return s.TenantGeneration(DefaultTenant) }

// Install swaps rules in as the served artifact unconditionally, serialized
// with reloads, and returns the new generation. This is the in-process
// counterpart of POST /v1/reload for embedders that already hold a rule set —
// the stream maintainer's hot-swap path.
func (s *Server) Install(rules *core.RuleSet, source string) (uint64, error) {
	return s.InstallTenant(DefaultTenant, rules, source)
}

// InstallIfGeneration swaps rules in only when the served artifact still has
// generation ifGen, returning the resulting current generation and whether
// the swap happened. This is the compare-and-swap form of Install: a writer
// that derived its rule set from generation G passes ifGen=G, and a
// concurrent operator reload (which bumped the generation) makes the stale
// swap a no-op instead of silently reverting the operator's artifact. On
// failure the caller re-derives from the returned generation and retries.
func (s *Server) InstallIfGeneration(rules *core.RuleSet, source string, ifGen uint64) (uint64, bool, error) {
	if rules == nil || rules.Schema == nil {
		return 0, false, errors.New("serve: rule set must carry a schema (payloads are validated by attribute name)")
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if cur := s.Generation(); cur != ifGen {
		return cur, false, nil
	}
	s.ctrReloads.Inc()
	return s.install(DefaultTenant, rules, source), true, nil
}

// Reload re-reads the artifact from Config.RulesPath and swaps it in without
// interrupting in-flight requests. A broken file leaves the served set
// untouched and is reported as an error.
func (s *Server) Reload() error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if s.cfg.RulesPath == "" {
		s.ctrReloadErrs.Inc()
		return errors.New("serve: no rules path configured")
	}
	f, err := os.Open(s.cfg.RulesPath)
	if err != nil {
		s.ctrReloadErrs.Inc()
		return fmt.Errorf("serve: reload: %w", err)
	}
	defer f.Close()
	return s.reloadFrom(DefaultTenant, f, s.cfg.RulesPath)
}

// ReloadFrom parses a rule-set artifact from r and swaps it in as the
// DefaultTenant's artifact (the body form of POST /v1/reload). The caller
// holds no lock; reloads serialize on the server's reload mutex.
func (s *Server) ReloadFrom(r io.Reader, source string) error {
	return s.ReloadTenantFrom(DefaultTenant, r, source)
}

// ReloadTenantFrom is ReloadFrom for an explicit tenant.
func (s *Server) ReloadTenantFrom(tenant string, r io.Reader, source string) error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	return s.reloadFrom(tenant, r, source)
}

func (s *Server) reloadFrom(tenant string, r io.Reader, source string) error {
	rules, err := core.ReadRuleSet(r)
	if err != nil {
		s.ctrReloadErrs.Inc()
		return err
	}
	s.install(tenant, rules, source)
	s.ctrReloads.Inc()
	return nil
}

// Handler returns the server's HTTP handler (the /t/{tenant} rewriter in
// front of the route table), for embedding and for httptest-based tests.
func (s *Server) Handler() http.Handler { return s.root }

// StartDrain flips the node into draining: /healthz starts reporting
// "draining", which removes this node from the cluster assignment ring while
// it keeps answering requests — the graceful half of a rolling restart,
// called on SIGTERM before Shutdown.
func (s *Server) StartDrain() {
	if !s.draining.Swap(true) {
		s.logf("serve: draining (healthz now reports draining)")
	}
}

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Serve accepts connections on l until Shutdown (or Close). It returns
// http.ErrServerClosed after a clean shutdown, mirroring net/http.
func (s *Server) Serve(l net.Listener) error { return s.http.Serve(l) }

// ListenAndServe binds addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.logf("serve: listening on %s", l.Addr())
	return s.Serve(l)
}

// Shutdown stops accepting new connections and waits — up to ctx's deadline
// — for in-flight requests to drain, then releases the listeners.
func (s *Server) Shutdown(ctx context.Context) error {
	s.logf("serve: shutting down, draining %d in-flight request(s)", s.inflightNow.Load())
	return s.http.Shutdown(ctx)
}

// Close abandons in-flight requests and releases the listeners immediately.
func (s *Server) Close() error { return s.http.Close() }

// routes wires the endpoint table. Data-plane endpoints go through the full
// gate (shed → deadline → metrics); control-plane endpoints stay reachable
// even when the data plane is saturated, so operators can still scrape
// /metrics and probe /healthz during an overload.
func (s *Server) routes() {
	s.mux.Handle("/v1/predict", s.gate(s.ep("predict"), http.MethodPost, true, s.handlePredict))
	s.mux.Handle("/v1/check", s.gate(s.ep("check"), http.MethodPost, true, s.handleCheck))
	s.mux.Handle("/v1/impute", s.gate(s.ep("impute"), http.MethodPost, true, s.handleImpute))
	s.mux.Handle("/v1/rules", s.gate(s.ep("rules"), http.MethodGet, false, s.handleRules))
	s.mux.Handle("/v1/reload", s.gate(s.ep("reload"), http.MethodPost, false, s.handleReload))
	s.mux.Handle("/healthz", s.gate(s.ep("healthz"), http.MethodGet, false, s.handleHealthz))
	s.mux.Handle("/metrics", s.gate(s.ep("metrics"), http.MethodGet, false, s.handleMetrics))
	// Registry control plane (answers 503 unavailable without a Store).
	s.mux.Handle("/v1/registry/publish", s.gate(s.ep("registry_publish"), http.MethodPost, false, s.handleRegistryPublish))
	s.mux.Handle("/v1/registry/activate", s.gate(s.ep("registry_activate"), http.MethodPost, false, s.handleRegistryActivate))
	s.mux.Handle("/v1/registry/rollback", s.gate(s.ep("registry_rollback"), http.MethodPost, false, s.handleRegistryRollback))
	s.mux.Handle("/v1/registry/list", s.gate(s.ep("registry_list"), http.MethodGet, false, s.handleRegistryList))
}

// ep resolves the per-endpoint metric handles once, at route time.
func (s *Server) ep(name string) *endpoint {
	return &endpoint{
		name:     name,
		requests: s.reg.Counter(telemetry.ServeRequests(name)),
		errors:   s.reg.Counter(telemetry.ServeErrors(name)),
		latency:  s.reg.Histogram(telemetry.ServeLatency(name)),
	}
}

// Stable machine-readable error codes carried in the JSON error envelope
// ({"error":{"code","message"}}). Codes are the contract clients switch on;
// messages are human-readable detail and may change freely. Documented in
// docs/API.md.
const (
	// CodeInvalidArgument: the request body or parameters failed validation.
	CodeInvalidArgument = "invalid_argument"
	// CodeMethodNotAllowed: wrong HTTP method for the endpoint.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeUnsupportedMedia: the Content-Type names no supported codec.
	CodeUnsupportedMedia = "unsupported_media_type"
	// CodeOverloaded: the in-flight limit was hit; retry after backoff.
	CodeOverloaded = "overloaded"
	// CodeDeadlineExceeded: the per-request processing deadline passed.
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeReloadFailed: the artifact in a reload request did not parse.
	CodeReloadFailed = "reload_failed"
	// CodeUnavailable: no rule set is loaded (or no registry configured).
	CodeUnavailable = "unavailable"
	// CodeUnknownTenant: the addressed tenant has no artifact here.
	CodeUnknownTenant = "unknown_tenant"
	// CodeUnknownVersion: the registry retains no such version.
	CodeUnknownVersion = "unknown_version"
	// CodeRegistryRejected: the registry refused the mutation (bad artifact,
	// invalid tenant name, size cap).
	CodeRegistryRejected = "registry_rejected"
	// CodeInternal: an unexpected server-side failure.
	CodeInternal = "internal"
)

// apiError is a handler failure destined for the JSON error envelope.
type apiError struct {
	status int
	code   string
	msg    string
}

func errf(status int, code string, format string, args ...any) *apiError {
	return &apiError{status: status, code: code, msg: fmt.Sprintf(format, args...)}
}

// gate is the shared middleware: method check, optional load shedding,
// per-request deadline, request metrics, and the JSON error envelope.
func (s *Server) gate(ep *endpoint, method string, shed bool, h func(http.ResponseWriter, *http.Request) *apiError) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ep.requests.Inc()
		if r.Method != method {
			ep.errors.Inc()
			w.Header().Set("Allow", method)
			writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
				"method %s not allowed, use %s", r.Method, method)
			return
		}
		// The deadline covers the whole admitted request, the OnRequest shim
		// included, so slow admission cannot grant extra processing budget.
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		if shed {
			select {
			case s.inflight <- struct{}{}:
				s.gaugeInFlight.Set(float64(s.inflightNow.Add(1)))
				defer func() {
					s.gaugeInFlight.Set(float64(s.inflightNow.Add(-1)))
					<-s.inflight
				}()
			default:
				// Saturated: reject now rather than queue unboundedly.
				s.ctrShed.Inc()
				ep.errors.Inc()
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusTooManyRequests, CodeOverloaded,
					"server at its in-flight limit (%d), retry later", s.cfg.MaxInFlight)
				return
			}
			if s.cfg.OnRequest != nil {
				s.cfg.OnRequest(ep.name)
			}
		}

		start := time.Now()
		err := h(w, r)
		ep.latency.Observe(time.Since(start))
		if err != nil {
			ep.errors.Inc()
			if err.status == http.StatusGatewayTimeout {
				s.ctrTimeout.Inc()
			}
			writeError(w, err.status, err.code, "%s", err.msg)
		}
	})
}

// writeError emits the structured JSON error envelope. Errors are always
// JSON, whatever format the request negotiated — a client that cannot parse
// a columnar response can always parse the failure that replaced it.
func writeError(w http.ResponseWriter, status int, code string, format string, args ...any) {
	if code == "" {
		code = CodeInternal
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	type errBody struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	}
	_ = json.NewEncoder(w).Encode(struct {
		Error errBody `json:"error"`
	}{errBody{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// writeJSON emits a 200 JSON response.
func writeJSON(w http.ResponseWriter, v any) *apiError {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing recoverable. Surface nothing.
		return nil
	}
	return nil
}

// ctxExpired translates a deadline hit into the 504 envelope.
func ctxExpired(ctx context.Context) *apiError {
	if ctx.Err() == nil {
		return nil
	}
	return errf(http.StatusGatewayTimeout, CodeDeadlineExceeded,
		"request abandoned after deadline (%v)", ctx.Err())
}
