package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/registry"
	"github.com/crrlab/crr/internal/telemetry"
)

// predictOne posts one tuple for tenant (via header; "" means none) and
// returns status plus the decoded first prediction.
func predictTenant(t testing.TB, url, tenant string, tuple map[string]any) (int, float64, string) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"tuples": []any{tuple}})
	req, err := http.NewRequest(http.MethodPost, url+"/v1/predict", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Predictions []struct {
			Value float64 `json:"value"`
		} `json:"predictions"`
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&out)
	val := 0.0
	if len(out.Predictions) > 0 {
		val = out.Predictions[0].Value
	}
	return resp.StatusCode, val, out.Error.Code
}

// TestTenantIsolation: two tenants with different rule sets answer the same
// tuple differently, both the header and /t/{tenant} path forms address
// them, and an unknown tenant is a 404 with a stable code.
func TestTenantIsolation(t *testing.T) {
	relA, rulesA := taxRules(t, 600)
	_, rulesB := taxRules(t, 900) // distinct mine (different rows → different fits)
	srv, ts := newTestServer(t, Config{}, rulesA)
	if _, err := srv.InstallTenant("beta", rulesB, "test-b"); err != nil {
		t.Fatal(err)
	}

	tuple := encodeTuple(relA.Schema, relA.Tuples[0])

	// Default tenant: no header needed.
	st, wantDefault, _ := predictTenant(t, ts.URL, "", tuple)
	if st != http.StatusOK {
		t.Fatalf("default predict status %d", st)
	}
	// The explicit header form addresses the same artifact.
	st, gotExplicit, _ := predictTenant(t, ts.URL, DefaultTenant, tuple)
	if st != http.StatusOK || gotExplicit != wantDefault {
		t.Fatalf("explicit default tenant: %d, %v vs %v", st, gotExplicit, wantDefault)
	}

	// The in-process prediction for tenant beta is the oracle for both
	// addressing forms.
	one := &dataset.Relation{Schema: relA.Schema, Tuples: relA.Tuples[:1]}
	vals, _ := rulesB.PredictView(dataset.NewColumnSet(one).View())
	wantBeta := vals[0]

	st, gotHeader, _ := predictTenant(t, ts.URL, "beta", tuple)
	if st != http.StatusOK || gotHeader != wantBeta {
		t.Fatalf("beta via header: %d, %v want %v", st, gotHeader, wantBeta)
	}
	body, _ := json.Marshal(map[string]any{"tuples": []any{tuple}})
	resp, err := http.Post(ts.URL+"/t/beta/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Predictions []struct {
			Value float64 `json:"value"`
		} `json:"predictions"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || out.Predictions[0].Value != wantBeta {
		t.Fatalf("beta via path: %d, %+v want %v", resp.StatusCode, out, wantBeta)
	}

	// Unknown tenant: stable 404.
	st, _, code := predictTenant(t, ts.URL, "nope", tuple)
	if st != http.StatusNotFound || code != CodeUnknownTenant {
		t.Fatalf("unknown tenant: %d %q", st, code)
	}

	// Per-tenant generations are independent.
	if g := srv.TenantGeneration("beta"); g != 1 {
		t.Fatalf("beta generation %d", g)
	}
	if g := srv.Generation(); g != 1 {
		t.Fatalf("default generation %d", g)
	}
}

// TestTenantReloadAndHealthz: a body reload addressed at a tenant installs
// that tenant; a path reload refuses non-default tenants; healthz lists all
// tenants and flips to draining after StartDrain.
func TestTenantReloadAndHealthz(t *testing.T) {
	_, rules := taxRules(t, 600)
	srv, ts := newTestServer(t, Config{}, rules)

	var buf bytes.Buffer
	if err := core.WriteRuleSet(&buf, rules); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/t/gamma/v1/reload", bytes.NewReader(buf.Bytes()))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant body reload status %d", resp.StatusCode)
	}
	if g := srv.TenantGeneration("gamma"); g != 1 {
		t.Fatalf("gamma generation %d after body reload", g)
	}

	// Empty-body reload for a non-default tenant is rejected: the rules path
	// feeds exactly one tenant.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/t/gamma/v1/reload", bytes.NewReader(nil))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("tenant path reload status %d", resp.StatusCode)
	}

	st, body := getBody(t, ts.URL+"/healthz")
	if st != http.StatusOK {
		t.Fatalf("healthz %d", st)
	}
	var hz struct {
		Status     string            `json:"status"`
		Generation uint64            `json:"generation"`
		Tenants    map[string]uint64 `json:"tenants"`
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Generation != 1 || hz.Tenants["gamma"] != 1 || hz.Tenants[DefaultTenant] != 1 {
		t.Fatalf("healthz %+v", hz)
	}

	srv.StartDrain()
	_, body = getBody(t, ts.URL+"/healthz")
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "draining" {
		t.Fatalf("healthz status %q after StartDrain", hz.Status)
	}
}

// TestRegistryControlPlane drives the full publish → predict → rollback →
// activate loop over HTTP against a store-backed server, and checks that a
// rollback serves the prior version's exact artifact again.
func TestRegistryControlPlane(t *testing.T) {
	dir := t.TempDir()
	store, err := registry.Open(dir, telemetry.New())
	if err != nil {
		t.Fatal(err)
	}
	relA, rulesV1 := taxRules(t, 600)
	_, rulesV2 := electricityRules(t, 600)

	var v1, v2 bytes.Buffer
	if err := core.WriteRuleSet(&v1, rulesV1); err != nil {
		t.Fatal(err)
	}
	if err := core.WriteRuleSet(&v2, rulesV2); err != nil {
		t.Fatal(err)
	}

	srv, ts := newTestServer(t, Config{Store: store}, rulesV1)

	publish := func(artifact []byte) registryMutation {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/registry/publish", bytes.NewReader(artifact))
		req.Header.Set(TenantHeader, "acme")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("publish status %d", resp.StatusCode)
		}
		var m registryMutation
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m
	}

	m1 := publish(v1.Bytes())
	if m1.Version != 1 || m1.Generation != 1 {
		t.Fatalf("first publish %+v", m1)
	}
	m2 := publish(v2.Bytes())
	if m2.Version != 2 || m2.Generation != 2 {
		t.Fatalf("second publish %+v", m2)
	}

	// v2 (electricity schema) no longer accepts the tax tuple.
	tuple := encodeTuple(relA.Schema, relA.Tuples[0])
	if st, _, _ := predictTenant(t, ts.URL, "acme", tuple); st != http.StatusBadRequest {
		t.Fatalf("predict against v2 schema: status %d, want schema mismatch", st)
	}

	// Rollback to the prior version restores v1 semantics...
	st, body := postJSON(t, ts.URL+"/v1/registry/rollback", map[string]any{"tenant": "acme"})
	if st != http.StatusOK {
		t.Fatalf("rollback status %d: %s", st, body)
	}
	var rb registryMutation
	if err := json.Unmarshal(body, &rb); err != nil {
		t.Fatal(err)
	}
	if rb.Version != 1 || rb.Generation != 3 {
		t.Fatalf("rollback %+v", rb)
	}
	st, gotRolled, _ := predictTenant(t, ts.URL, "acme", tuple)
	if st != http.StatusOK {
		t.Fatalf("predict after rollback: %d", st)
	}
	// ...and the default tenant (same v1 rule set) agrees exactly.
	_, want, _ := predictTenant(t, ts.URL, "", tuple)
	if gotRolled != want {
		t.Fatalf("rollback prediction %v, want %v", gotRolled, want)
	}
	// The stored artifact is byte-for-byte the published one.
	raw, _, err := store.Artifact("acme", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, v1.Bytes()) {
		t.Fatal("rollback artifact differs from published bytes")
	}

	// Activate moves forward again.
	st, body = postJSON(t, ts.URL+"/v1/registry/activate", map[string]any{"tenant": "acme", "version": 2})
	if st != http.StatusOK {
		t.Fatalf("activate status %d: %s", st, body)
	}

	// List reports the active pointer and the live generation.
	st, body = getBody(t, ts.URL+"/v1/registry/list")
	if st != http.StatusOK {
		t.Fatalf("list status %d", st)
	}
	var list struct {
		Tenants map[string]struct {
			Active     uint64 `json:"active"`
			Generation uint64 `json:"generation"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if acme := list.Tenants["acme"]; acme.Active != 2 || acme.Generation != 4 {
		t.Fatalf("list %+v", list.Tenants)
	}

	// Rollback to nowhere (unknown tenant) and unknown version: stable codes.
	st, body = postJSON(t, ts.URL+"/v1/registry/rollback", map[string]any{"tenant": "ghost"})
	if st != http.StatusNotFound || !bytes.Contains(body, []byte(CodeUnknownTenant)) {
		t.Fatalf("ghost rollback: %d %s", st, body)
	}
	st, body = postJSON(t, ts.URL+"/v1/registry/activate", map[string]any{"tenant": "acme", "version": 99})
	if st != http.StatusNotFound || !bytes.Contains(body, []byte(CodeUnknownVersion)) {
		t.Fatalf("bad activate: %d %s", st, body)
	}
	_ = srv
}

// TestRegistryEndpointsWithoutStore: the control plane answers 503 with a
// stable code when no registry is configured.
func TestRegistryEndpointsWithoutStore(t *testing.T) {
	_, rules := taxRules(t, 600)
	_, ts := newTestServer(t, Config{}, rules)
	st, body := postJSON(t, ts.URL+"/v1/registry/publish", map[string]any{})
	if st != http.StatusServiceUnavailable || !bytes.Contains(body, []byte(CodeUnavailable)) {
		t.Fatalf("publish without store: %d %s", st, body)
	}
	st, _ = getBody(t, ts.URL+"/v1/registry/list")
	if st != http.StatusServiceUnavailable {
		t.Fatalf("list without store: %d", st)
	}
}

// TestRegistryMetricsExposition: registry.* counters flow through the
// server's shared telemetry registry and surface on /metrics in Prometheus
// exposition form next to the serve.* metrics.
func TestRegistryMetricsExposition(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.New()
	store, err := registry.Open(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	_, rules := taxRules(t, 600)
	_, ts := newTestServer(t, Config{Store: store, Registry: reg}, rules)

	var buf bytes.Buffer
	if err := core.WriteRuleSet(&buf, rules); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/registry/publish", bytes.NewReader(buf.Bytes()))
		req.Header.Set(TenantHeader, "acme")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("publish %d: status %d", i, resp.StatusCode)
		}
	}
	if st, body := postJSON(t, ts.URL+"/v1/registry/rollback", map[string]any{"tenant": "acme"}); st != http.StatusOK {
		t.Fatalf("rollback: %d %s", st, body)
	}
	if _, err := store.GC(1); err != nil {
		t.Fatal(err)
	}

	st, text := getBody(t, ts.URL+"/metrics")
	if st != http.StatusOK {
		t.Fatalf("/metrics status %d", st)
	}
	for _, want := range []string{"crr_registry_publishes", "crr_registry_rollbacks", "crr_registry_gc_blobs"} {
		if !bytes.Contains(text, []byte(want)) {
			t.Fatalf("/metrics missing %s:\n%s", want, text)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters[telemetry.MetricRegistryPublishes]; got != 2 {
		t.Fatalf("registry.publishes = %d, want 2", got)
	}
	if got := snap.Counters[telemetry.MetricRegistryRollbacks]; got != 1 {
		t.Fatalf("registry.rollbacks = %d, want 1", got)
	}
}

// TestNewLoadsStore: New with only a Store installs every tenant's active
// version at boot.
func TestNewLoadsStore(t *testing.T) {
	dir := t.TempDir()
	store, err := registry.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, rules := taxRules(t, 600)
	var buf bytes.Buffer
	if err := core.WriteRuleSet(&buf, rules); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Publish("acme", bytes.NewReader(buf.Bytes()), "boot"); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if g := srv.TenantGeneration("acme"); g != 1 {
		t.Fatalf("acme not loaded at boot: gen %d", g)
	}
	if got := srv.Tenants(); len(got) != 1 || got[0] != "acme" {
		t.Fatalf("tenants %v", got)
	}
}
