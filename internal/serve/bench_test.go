package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// BenchmarkServeBatchPredict measures the full /v1/predict path for a
// 1000-tuple batch — decode, columnar PredictBatch classification, encode —
// through the real handler stack. This is the serving-side number recorded
// in BENCH_columnar.json.
func BenchmarkServeBatchPredict(b *testing.B) {
	rel, rules := taxRules(b, 1500)
	srv, err := NewFromRuleSet(Config{}, rules, "bench")
	if err != nil {
		b.Fatal(err)
	}
	handler := srv.Handler()

	batch := rel.Head(1000)
	objs := make([]map[string]any, batch.Len())
	for i, tp := range batch.Tuples {
		objs[i] = encodeTuple(batch.Schema, tp)
	}
	body, err := json.Marshal(map[string]any{"tuples": objs})
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkPredictBatchColumnar isolates the classification core from HTTP
// and JSON: columnar PredictBatch vs the tuple-at-a-time Predict loop on the
// same relation and rule set.
func BenchmarkPredictBatchColumnar(b *testing.B) {
	rel, rules := taxRules(b, 1500)
	batch := rel.Head(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rules.PredictBatch(batch)
	}
}

func BenchmarkPredictBatchRowwise(b *testing.B) {
	rel, rules := taxRules(b, 1500)
	batch := rel.Head(1000)
	preds := make([]float64, batch.Len())
	covered := make([]bool, batch.Len())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, tp := range batch.Tuples {
			preds[j], covered[j] = rules.Predict(tp)
		}
	}
}
