package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/wire"
)

// benchPredictBody drives the full /v1/predict handler stack with a
// pre-encoded body under the given content type.
func benchPredictBody(b *testing.B, contentType string, body []byte) {
	b.Helper()
	_, rules := taxRules(b, 1500)
	srv, err := NewFromRuleSet(Config{}, rules, "bench")
	if err != nil {
		b.Fatal(err)
	}
	handler := srv.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
		req.Header.Set("Content-Type", contentType)
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// benchBatch deterministically grows the Tax dataset to n rows.
func benchBatch(b *testing.B, n int) *dataset.Relation {
	b.Helper()
	rel := dataset.GenerateTax(dataset.TaxConfig{Rows: n, Noise: 0.5, Seed: 4})
	return rel
}

func jsonPredictBody(b *testing.B, rel *dataset.Relation) []byte {
	b.Helper()
	objs := make([]map[string]any, rel.Len())
	for i, tp := range rel.Tuples {
		objs[i] = encodeTuple(rel.Schema, tp)
	}
	body, err := json.Marshal(map[string]any{"tuples": objs})
	if err != nil {
		b.Fatal(err)
	}
	return body
}

func binaryPredictBody(b *testing.B, rel *dataset.Relation) []byte {
	b.Helper()
	var buf bytes.Buffer
	if err := wire.EncodeBatch(&buf, batchFromColumnSet(dataset.NewColumnSet(rel)), wire.EncodeOptions{}); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkServeBatchPredict measures the full JSON /v1/predict path for a
// 1000-tuple batch — decode, columnar classification, encode — through the
// real handler stack. This is the serving-side baseline recorded in
// BENCH_columnar.json and the "before" of BENCH_wire.json.
func BenchmarkServeBatchPredict(b *testing.B) {
	rel := benchBatch(b, 1000)
	benchPredictBody(b, "application/json", jsonPredictBody(b, rel))
}

// BenchmarkServeBatchPredictBinary is the same handler stack fed the binary
// columnar format — the "after" of BENCH_wire.json.
func BenchmarkServeBatchPredictBinary(b *testing.B) {
	rel := benchBatch(b, 1000)
	benchPredictBody(b, wire.ContentType, binaryPredictBody(b, rel))
}

// The 100k-row pair exercises the multi-frame streaming path (13 frames at
// the default chunk size) where JSON's per-tuple costs dominate hardest.
func BenchmarkServeBatchPredict100k(b *testing.B) {
	rel := benchBatch(b, 100_000)
	benchPredictBody(b, "application/json", jsonPredictBody(b, rel))
}

func BenchmarkServeBatchPredictBinary100k(b *testing.B) {
	rel := benchBatch(b, 100_000)
	benchPredictBody(b, wire.ContentType, binaryPredictBody(b, rel))
}

// BenchmarkPredictBatchColumnar isolates the classification core from HTTP
// and JSON: columnar PredictBatch vs the tuple-at-a-time Predict loop on the
// same relation and rule set.
func BenchmarkPredictBatchColumnar(b *testing.B) {
	rel, rules := taxRules(b, 1500)
	batch := rel.Head(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rules.PredictBatch(batch)
	}
}

func BenchmarkPredictBatchRowwise(b *testing.B) {
	rel, rules := taxRules(b, 1500)
	batch := rel.Head(1000)
	preds := make([]float64, batch.Len())
	covered := make([]bool, batch.Len())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, tp := range batch.Tuples {
			preds[j], covered[j] = rules.Predict(tp)
		}
	}
}
