package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

// This file implements the five CRR inference rules of §IV as constructive
// operations. Each proposition is exercised by a soundness property test in
// inference_test.go: whenever the rule derives φ₃ from φ₁, φ₂, every tuple
// satisfying the premises satisfies the conclusion.

// ErrIncompatible is returned when an inference rule's side conditions do
// not hold for the given rules.
var ErrIncompatible = errors.New("core: inference rule not applicable")

// sameSignature reports whether two rules regress the same target from the
// same attribute list — the implicit requirement of every binary inference.
func sameSignature(a, b *CRR) bool {
	if a.YAttr != b.YAttr || len(a.XAttrs) != len(b.XAttrs) {
		return false
	}
	for i := range a.XAttrs {
		if a.XAttrs[i] != b.XAttrs[i] {
			return false
		}
	}
	return true
}

// Implies reports whether φ₁ implies φ₂ by Induction (Proposition 2) and/or
// Generalization (Proposition 4): same regression function, ρ₂ ≥ ρ₁, and
// ℂ₂ ⊢ ℂ₁ (Definition 2). Rules implied by another rule in Σ are redundant
// (Problem 1, condition 2).
func Implies(phi1, phi2 *CRR) bool {
	if !sameSignature(phi1, phi2) {
		return false
	}
	if !phi1.Model.Equal(phi2.Model, modelTol) {
		return false
	}
	if phi2.Rho < phi1.Rho {
		return false
	}
	if !phi2.Cond.Implies(phi1.Cond) {
		return false
	}
	// The built-in predicates must carry over: each conjunction of ℂ₂ must
	// use the builtins of some conjunction of ℂ₁ it refines, otherwise the
	// shifted application differs. We require the refined conjunction to
	// keep identical builtins.
	for _, c2 := range phi2.Cond.Conjs {
		ok := false
		for _, c1 := range phi1.Cond.Conjs {
			if c2.Implies(c1) && c2.Builtin.Equal(c1.Builtin) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Induce applies Induction (Proposition 2) constructively: given φ₁ and a
// refinement ℂ₂ ⊢ ℂ₁, it returns φ₂ : (f, ρ, ℂ₂). ErrIncompatible is
// returned when ℂ₂ does not refine ℂ₁.
func Induce(phi1 *CRR, cond2 predicate.DNF) (CRR, error) {
	if !cond2.Implies(phi1.Cond) {
		return CRR{}, fmt.Errorf("%w: condition is not a refinement", ErrIncompatible)
	}
	return CRR{
		Model:  phi1.Model,
		Rho:    phi1.Rho,
		Cond:   cond2.Clone(),
		XAttrs: append([]int(nil), phi1.XAttrs...),
		YAttr:  phi1.YAttr,
	}, nil
}

// Generalize applies Generalization (Proposition 4): widen the bias to
// rho2 ≥ ρ₁. ErrIncompatible is returned when rho2 < ρ₁ (that direction is
// unsound).
func Generalize(phi *CRR, rho2 float64) (CRR, error) {
	if rho2 < phi.Rho {
		return CRR{}, fmt.Errorf("%w: cannot tighten ρ from %g to %g", ErrIncompatible, phi.Rho, rho2)
	}
	out := *phi
	out.Rho = rho2
	out.Cond = phi.Cond.Clone()
	out.XAttrs = append([]int(nil), phi.XAttrs...)
	return out, nil
}

// Fuse applies Fusion (Proposition 3), preceded by Generalization to align
// the biases as Algorithm 2 Lines 13–14 prescribe: both rules must share the
// regression function; the result carries ρ = max(ρ₁, ρ₂) and ℂ = ℂ₁ ∨ ℂ₂.
func Fuse(phi1, phi2 *CRR) (CRR, error) {
	if !sameSignature(phi1, phi2) {
		return CRR{}, fmt.Errorf("%w: different signatures", ErrIncompatible)
	}
	if !phi1.Model.Equal(phi2.Model, modelTol) {
		return CRR{}, fmt.Errorf("%w: Fusion needs a shared regression function", ErrIncompatible)
	}
	rho := phi1.Rho
	if phi2.Rho > rho {
		rho = phi2.Rho
	}
	return CRR{
		Model:  phi1.Model,
		Rho:    rho,
		Cond:   phi1.Cond.Or(phi2.Cond).Simplify(),
		XAttrs: append([]int(nil), phi1.XAttrs...),
		YAttr:  phi1.YAttr,
	}, nil
}

// Translate applies Translation (Proposition 5): when
// f₂(X) = f₁(X+Δ)+δ it returns φ₃ : (f₃, ρ, ℂ₃) with f₃ = f₁ and
// ℂ₃ = (ℂ₁ ∧ x=0 ∧ y=0) ∨ (ℂ₂ ∧ x=Δ ∧ y=δ). Per Proposition 9, the shift is
// *composed* with any builtin already present on ℂ₂'s conjunctions. The
// biases must agree as in the proposition's statement; apply Generalize
// first when they differ.
func Translate(phi1, phi2 *CRR) (CRR, error) {
	if !sameSignature(phi1, phi2) {
		return CRR{}, fmt.Errorf("%w: different signatures", ErrIncompatible)
	}
	if phi1.Rho != phi2.Rho {
		return CRR{}, fmt.Errorf("%w: Translation needs equal ρ (got %g, %g); Generalize first", ErrIncompatible, phi1.Rho, phi2.Rho)
	}
	tr, ok := solveTranslation(phi1.Model, phi2.Model)
	if !ok {
		return CRR{}, fmt.Errorf("%w: models are not translations of each other", ErrIncompatible)
	}
	shift := translationBuiltin(tr, phi1.XAttrs)
	cond := phi1.Cond.Clone()
	for _, c := range phi2.Cond.Conjs {
		cc := c.Clone()
		cc.Builtin = cc.Builtin.Add(shift)
		cond.Conjs = append(cond.Conjs, cc)
	}
	return CRR{
		Model:  phi1.Model,
		Rho:    phi1.Rho,
		Cond:   cond,
		XAttrs: append([]int(nil), phi1.XAttrs...),
		YAttr:  phi1.YAttr,
	}, nil
}

// solveTranslation finds Δ, δ with to(X) = from(X+Δ)+δ when the model family
// supports it (Translatable, i.e. the linear families; F3 does not, matching
// §VI-A3).
func solveTranslation(from, to regress.Model) (regress.Translation, bool) {
	return solveTranslationTol(from, to, modelTol)
}

// solveTranslationTol is solveTranslation with an explicit parameter
// tolerance (CompactOptions.ModelTol). Solutions with a non-finite shift
// are rejected here as well — defense in depth against a Translatable
// implementation that lets NaN/Inf deltas through: applying such a shift
// would rewrite a rule onto a model it cannot reproduce anywhere.
func solveTranslationTol(from, to regress.Model, tol float64) (regress.Translation, bool) {
	t, ok := from.(regress.Translatable)
	if !ok {
		return regress.Translation{}, false
	}
	tr, ok := t.SolveTranslation(to, tol)
	if !ok {
		return regress.Translation{}, false
	}
	if math.IsNaN(tr.DeltaY) || math.IsInf(tr.DeltaY, 0) {
		return regress.Translation{}, false
	}
	for _, d := range tr.DeltaX {
		if math.IsNaN(d) || math.IsInf(d, 0) {
			return regress.Translation{}, false
		}
	}
	return tr, true
}

// translationBuiltin converts a feature-indexed Translation into an
// attribute-indexed builtin.
func translationBuiltin(tr regress.Translation, xattrs []int) predicate.Builtin {
	b := predicate.ZeroBuiltin().WithYShift(tr.DeltaY)
	for i, d := range tr.DeltaX {
		if d != 0 && i < len(xattrs) {
			b = b.WithXShift(xattrs[i], d)
		}
	}
	return b
}
