package core

// The strategy seam: Algorithm 1's lattice walk is one way to induce
// conditional regression rules, and the related work names others that fit
// the same (condition, linear model, ρ-bound) contract — per-example
// grow/prune induction, bootstrap stability selection. This file separates
// the engine-agnostic substrate (the validated configuration, the trainable
// rows, the columnar scan engine, split scoring, Gram-backed training and
// ρ-validation) from the search policy, so new induction methods plug in
// without forking the hot path.
//
// A Strategy receives a prepared *Substrate and returns the discovered
// rules. The built-in LatticeStrategy re-expresses the sequential and
// parallel engines of discover.go / parallel.go on the seam; the
// internal/induction package contributes growprune and stability.

import (
	"context"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
	"github.com/crrlab/crr/internal/telemetry"
)

// Strategy is one rule-induction policy over the discovery substrate. The
// contract every implementation owes its callers:
//
//   - Every emitted rule's condition selects, on the substrate's relation, a
//     subset of the trainable rows on which the rule's model is within the
//     rule's published Rho (the Problem 1 per-rule guarantee).
//   - Rules are built with the substrate's signature (the RuleSet skeleton
//     from NewResult), so the codec, compaction and serving layers work
//     unchanged on any strategy's output.
//   - ctx is honored at the strategy's natural iteration granularity;
//     cancellation returns an error wrapping ErrCanceled (use Canceled).
//   - Determinism follows the configuration: with Workers ≤ 1 a strategy
//     must be deterministic for a fixed Seed.
//
// Strategies are stateless values; a single Strategy may be used for many
// concurrent discoveries (each call gets its own Substrate).
type Strategy interface {
	// Name identifies the strategy in telemetry, CLIs and benchmarks.
	Name() string
	// Induce runs the strategy over the prepared substrate.
	Induce(ctx context.Context, sub *Substrate) (*DiscoverResult, error)
}

// Canceled wraps a context error so both ErrCanceled and the context's own
// sentinel match under errors.Is — the error contract of Strategy.Induce.
func Canceled(cause error) error { return canceled(cause) }

// Substrate is the prepared, engine-agnostic state of one discovery run: the
// validated configuration (defaults resolved), the trainable rows, and lazy
// access to the shared kernels — the columnar part scan (predicate filters,
// SSE split scoring), Gram sufficient-statistics training and the
// single-pass share scanner. Strategies consume it through the exported
// methods below; the kernels are NOT safe for concurrent use from multiple
// goroutines (the parallel lattice engine builds per-worker workspaces
// instead).
type Substrate struct {
	rel      *dataset.Relation // nil when the run is column-store-backed
	schema   *dataset.Schema
	rows     int
	cfg      *DiscoverConfig // validated; MinSupport/MaxNodes defaulted
	all      []int           // trainable rows (non-null X and Y), ascending
	fallback float64         // mean of Y over the trainable rows
	tel      discTel

	si      *splitIndex    // lazy
	hotEx   *hotLoop       // lazy: exact (bitwise-reproducible) kernels
	hotFast *hotLoop       // lazy: sibling-derivation Gram kernels
	kws     *partWorkspace // lazy: scratch for the kernel methods
}

// newSubstrate validates cfg against rel (mutating it to its effective
// defaults) and prepares the run state shared by every strategy.
func newSubstrate(rel *dataset.Relation, cfg *DiscoverConfig) (*Substrate, error) {
	all, out, err := discoverPrep(rel, cfg)
	if err != nil {
		return nil, err
	}
	rows, schema, err := dataSource(rel, cfg)
	if err != nil {
		return nil, err
	}
	return &Substrate{
		rel:      rel,
		schema:   schema,
		rows:     rows,
		cfg:      cfg,
		all:      all,
		fallback: out.Rules.Fallback,
		tel:      newDiscTel(cfg.Telemetry),
	}, nil
}

// Relation returns the relation under discovery, or nil when the run is
// column-store-backed (DiscoverColumns / WithColumnStore with no Relation).
// Strategies that need tuples must check and fail with ErrTuplesRequired;
// row counting belongs on NumRows, which works either way.
func (s *Substrate) Relation() *dataset.Relation { return s.rel }

// Schema returns the schema of the data under discovery, whichever
// representation backs it.
func (s *Substrate) Schema() *dataset.Schema { return s.schema }

// NumRows returns the total row count of the data under discovery (not just
// the trainable rows), whichever representation backs it.
func (s *Substrate) NumRows() int { return s.rows }

// Config returns the effective configuration: defaults resolved, MinSupport
// and MaxNodes at their documented fallbacks. The slices (XAttrs, Preds,
// SeedModels) are shared with the run — treat them as read-only.
func (s *Substrate) Config() DiscoverConfig { return *s.cfg }

// TrainableRows returns the indices of rows with non-null X and Y, in
// ascending order — the rows Problem 1 requires Σ to cover. The slice is
// shared with the run; treat it as read-only.
func (s *Substrate) TrainableRows() []int { return s.all }

// NewResult returns a fresh result skeleton carrying the run's signature and
// the mean-of-Y fallback — identical to the skeleton the lattice engines
// start from, so every strategy's output composes with the codec, compaction
// and serving layers.
func (s *Substrate) NewResult() *DiscoverResult {
	return &DiscoverResult{Rules: &RuleSet{
		Schema:   s.schema,
		XAttrs:   append([]int(nil), s.cfg.XAttrs...),
		YAttr:    s.cfg.YAttr,
		Fallback: s.fallback,
	}}
}

// Columns returns the discovery-wide column cache (built lazily, once).
func (s *Substrate) Columns() *dataset.ColumnSet { return s.hot(true).sc.cols }

// Filter returns the subset of idxs satisfying p, preserving order, through
// the run's scan engine (vectorized columnar sweep, or the row-scan
// reference path under DiscoverConfig.RowScan).
func (s *Substrate) Filter(idxs []int, p predicate.Predicate) []int {
	return s.hot(true).sc.filterIdxs(idxs, p)
}

// SSE returns Σ (y − ȳ)² of the target over the selected rows.
func (s *Substrate) SSE(idxs []int) float64 {
	return s.hot(true).sc.sse(idxs, s.cfg.YAttr)
}

// SplitChild is one child of a candidate split: the refining predicate and
// the parent rows it selects.
type SplitChild struct {
	Pred predicate.Predicate
	Rows []int
}

// TopSplits scores every applicable split group on the part — numeric
// {>c, ≤c} cut pairs and categorical equality fans from the predicate
// space — by SSE reduction and materializes the children of the k best.
// Every returned group partitions the part, so unions of children preserve
// coverage.
func (s *Substrate) TopSplits(idxs []int, k int) [][]SplitChild {
	hl := s.hot(true)
	groups := hl.sc.topSplits(idxs, s.splitIdx(), s.cfg.YAttr, k)
	out := make([][]SplitChild, len(groups))
	for i, g := range groups {
		cs := make([]SplitChild, len(g))
		for j, ch := range g {
			cs[j] = SplitChild{Pred: ch.pred, Rows: ch.idxs}
		}
		out[i] = cs
	}
	return out
}

// Fit trains the configured model family on the selected rows — the Line-13
// kernel: the O(d³) Gram sufficient-statistics solve when the trainer
// supports it (accumulated fresh in row order, bitwise-identical to a full
// pass), the full-pass fit otherwise.
func (s *Substrate) Fit(idxs []int) (regress.Model, error) {
	ws := s.workspace()
	x, y := ws.part(idxs)
	item := &condItem{idxs: idxs}
	if hl := s.hot(true); hl.gram != nil {
		item.gram = hl.gramOf(idxs)
	}
	m, _, err := ws.trainPart(item, x, y)
	return m, err
}

// MaxAbsError returns the model's maximum absolute residual over the
// selected rows — the ρ-validation kernel.
func (s *Substrate) MaxAbsError(m regress.Model, idxs []int) float64 {
	x, y := s.workspace().part(idxs)
	return regress.MaxAbsError(m, x, y)
}

// GramOf accumulates the part's sufficient statistics in row order, or nil
// when the configured trainer has no Gram fast path.
func (s *Substrate) GramOf(idxs []int) *regress.Gram {
	hl := s.hot(true)
	if hl.gram == nil {
		return nil
	}
	return hl.gramOf(idxs)
}

// ShareScan runs the single-pass Proposition-6 share scan of the model pool
// over the selected rows: the index of the first (newest-first) model whose
// δ0-shifted residual envelope fits within ρ_M (−1 for none), the share
// result for that model, and the sharing index ind(C).
func (s *Substrate) ShareScan(pool []regress.Model, idxs []int) (int, regress.ShareResult, float64) {
	ws := s.workspace()
	x, y := ws.part(idxs)
	hit, res, ind, _ := ws.scanner.Scan(pool, x, y, s.cfg.RhoM)
	return hit, res, ind
}

func (s *Substrate) splitIdx() *splitIndex {
	if s.si == nil {
		s.si = newSplitIndex(s.cfg.Preds)
	}
	return s.si
}

// hot returns the run's hot loop, built lazily: exact kernels accumulate
// every child Gram fresh in row order (bitwise-reproducible output, the
// sequential contract), the fast variant derives the largest sibling as
// parent − siblings (ulp drift, used by the parallel lattice engine).
func (s *Substrate) hot(exact bool) *hotLoop {
	if exact {
		if s.hotEx == nil {
			s.hotEx = newHotLoop(s.rel, s.cfg, s.splitIdx(), s.all, s.tel, true)
		}
		return s.hotEx
	}
	if s.hotFast == nil {
		s.hotFast = newHotLoop(s.rel, s.cfg, s.splitIdx(), s.all, s.tel, false)
	}
	return s.hotFast
}

// workspace returns the substrate's own kernel scratch (not the per-worker
// workspaces of the lattice engines). The gathered buffers are recycled
// across calls, which is why the kernel methods are single-goroutine.
func (s *Substrate) workspace() *partWorkspace {
	if s.kws == nil {
		s.kws = s.hot(true).workspace()
	}
	return s.kws
}

// LatticeStrategy is Algorithm 1 — the paper's priority-queue lattice walk
// with model sharing — expressed as the default induction strategy. With
// Workers ≤ 1 it runs the sequential engine (exact ind(C) ordering,
// bitwise-reproducible output); Workers > 1 or < 0 selects the parallel
// engine.
type LatticeStrategy struct{}

// Name implements Strategy.
func (LatticeStrategy) Name() string { return "lattice" }

// Induce implements Strategy by dispatching on the configured worker count,
// exactly as the pre-seam engine dispatch did.
func (LatticeStrategy) Induce(ctx context.Context, sub *Substrate) (*DiscoverResult, error) {
	if sub.cfg.Workers > 1 || sub.cfg.Workers < 0 {
		return latticePar(ctx, sub)
	}
	return latticeSeq(ctx, sub)
}

// strategyOf resolves the configured strategy, defaulting to the lattice.
func strategyOf(cfg *DiscoverConfig) Strategy {
	if cfg.Strategy != nil {
		return cfg.Strategy
	}
	return LatticeStrategy{}
}

// discoverFor is the single entry path of the discovery engine: every public
// entrypoint (Discover, DiscoverTargets, Maintain, the deprecated config
// wrappers) funnels a validated configuration through here, so strategy
// selection and substrate preparation happen in exactly one place.
func discoverFor(ctx context.Context, rel *dataset.Relation, cfg DiscoverConfig) (*DiscoverResult, error) {
	strat := strategyOf(&cfg)
	sub, err := newSubstrate(rel, &cfg)
	if err != nil {
		return nil, err
	}
	cfg.Telemetry.Counter(telemetry.InductionStrategyRuns(strat.Name())).Inc()
	return strat.Induce(ctx, sub)
}
