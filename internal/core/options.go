package core

import (
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
	"github.com/crrlab/crr/internal/telemetry"
)

// DefaultMaxBias is the maximum bias ρ_M the options API falls back to — the
// paper's default parameterization.
const DefaultMaxBias = 1.0

// DiscoverOption configures Discover. Options are applied in order over a
// zero DiscoverConfig; WithConfig replaces the whole configuration and is
// therefore usually first when mixed with field options.
type DiscoverOption func(*DiscoverConfig)

// WithConfig replaces the entire configuration; later options still apply
// on top. It is the migration path from the deprecated config entrypoints.
func WithConfig(cfg DiscoverConfig) DiscoverOption {
	return func(c *DiscoverConfig) { *c = cfg }
}

// WithSignature sets the regression signature f : X → Y.
func WithSignature(xattrs []int, yattr int) DiscoverOption {
	return func(c *DiscoverConfig) {
		c.XAttrs = append([]int(nil), xattrs...)
		c.YAttr = yattr
	}
}

// WithXAttrs sets the regression input attributes X.
func WithXAttrs(attrs ...int) DiscoverOption {
	return func(c *DiscoverConfig) { c.XAttrs = append([]int(nil), attrs...) }
}

// WithTarget sets the regression target attribute Y.
func WithTarget(yattr int) DiscoverOption {
	return func(c *DiscoverConfig) { c.YAttr = yattr }
}

// WithMaxBias sets the maximum bias ρ_M; non-positive values fall back to
// DefaultMaxBias.
func WithMaxBias(rhoM float64) DiscoverOption {
	return func(c *DiscoverConfig) { c.RhoM = rhoM }
}

// WithPredicates sets the predicate space ℙ explicitly. Passing an empty
// non-nil slice makes Discover fail with ErrNoPredicates; omitting the
// option (or passing nil) generates the paper-default space over the X
// attributes plus every categorical attribute.
func WithPredicates(preds []predicate.Predicate) DiscoverOption {
	return func(c *DiscoverConfig) { c.Preds = preds }
}

// WithColumnStore discovers directly over a columnar substrate — typically
// the adopted ColumnSet of an mmap'd out-of-core store
// (colstore.Store.Columns) — instead of building one from the relation. See
// DiscoverConfig.Columns for the contract, and DiscoverColumns for the
// relation-free entrypoint this option backs.
func WithColumnStore(cols *dataset.ColumnSet) DiscoverOption {
	return func(c *DiscoverConfig) { c.Columns = cols }
}

// WithTrainer selects the model family trainer (default: OLS, family F1).
func WithTrainer(t regress.Trainer) DiscoverOption {
	return func(c *DiscoverConfig) { c.Trainer = t }
}

// WithWorkers sets the discovery worker count: 0 or 1 runs the sequential
// engine (exact ind(C) queue ordering), n > 1 the parallel engine with n
// workers, and negative values select one worker per CPU.
func WithWorkers(n int) DiscoverOption {
	return func(c *DiscoverConfig) { c.Workers = n }
}

// WithStrategy selects the induction strategy run over the discovery
// substrate; nil (the default) selects the built-in lattice walk
// (Algorithm 1). See the Strategy interface for the contract and the
// internal/induction package for the grow/prune and stability strategies.
func WithStrategy(s Strategy) DiscoverOption {
	return func(c *DiscoverConfig) { c.Strategy = s }
}

// WithTelemetry attaches a metrics registry; the engine reports conditions
// expanded, models trained/shared, share tests, queue depth and phase
// durations into it. A nil registry disables instrumentation (the default).
func WithTelemetry(r *telemetry.Registry) DiscoverOption {
	return func(c *DiscoverConfig) { c.Telemetry = r }
}

// WithOrder selects the ind(C) queue ordering (sequential engine only).
func WithOrder(o QueueOrder) DiscoverOption {
	return func(c *DiscoverConfig) { c.Order = o }
}

// WithSeed seeds RandomOrder.
func WithSeed(seed int64) DiscoverOption {
	return func(c *DiscoverConfig) { c.Seed = seed }
}

// WithSharing toggles model sharing (Lines 7–10 of Algorithm 1); disabling
// it is the ablation of §VI-B1.
func WithSharing(enabled bool) DiscoverOption {
	return func(c *DiscoverConfig) { c.DisableSharing = !enabled }
}

// WithFuseShared applies Fusion eagerly during search (see
// DiscoverConfig.FuseShared).
func WithFuseShared(enabled bool) DiscoverOption {
	return func(c *DiscoverConfig) { c.FuseShared = enabled }
}

// WithMinSupport sets the smallest part size still split further; 0 selects
// len(XAttrs)+2.
func WithMinSupport(n int) DiscoverOption {
	return func(c *DiscoverConfig) { c.MinSupport = n }
}

// WithMaxNodes caps queue expansions; 0 selects 64·|D| + 4096.
func WithMaxNodes(n int) DiscoverOption {
	return func(c *DiscoverConfig) { c.MaxNodes = n }
}

// WithSeedModels pre-populates the shared model set F (incremental reuse).
func WithSeedModels(models []regress.Model) DiscoverOption {
	return func(c *DiscoverConfig) { c.SeedModels = append([]regress.Model(nil), models...) }
}

// WithProp8Splits enables Proposition 8's multi-cut split sizing.
func WithProp8Splits(enabled bool) DiscoverOption {
	return func(c *DiscoverConfig) { c.Prop8Splits = enabled }
}

// Validate normalizes the configuration in place — nil Trainer becomes OLS
// (family F1), non-positive RhoM becomes DefaultMaxBias — and checks the
// invariants that do not need the relation: Y ∉ X (ErrTrivialTarget) and no
// predicate on Y (ErrPredicateOnTarget). Relation-dependent checks (numeric
// target, non-empty data) happen inside Discover.
func (c *DiscoverConfig) Validate() error {
	if c.Trainer == nil {
		c.Trainer = regress.LinearTrainer{}
	}
	if c.RhoM <= 0 {
		c.RhoM = DefaultMaxBias
	}
	for _, a := range c.XAttrs {
		if a == c.YAttr {
			return ErrTrivialTarget
		}
	}
	for _, p := range c.Preds {
		if p.Attr == c.YAttr {
			return ErrPredicateOnTarget
		}
	}
	return nil
}

// defaultPredicateAttrs returns the attributes the auto-generated predicate
// space ranges over: the X attributes plus every categorical attribute,
// excluding Y (Definition 1 forbids predicates on the target).
func defaultPredicateAttrs(schema *dataset.Schema, xattrs []int, yattr int) []int {
	seen := make(map[int]bool)
	var out []int
	add := func(a int) {
		if a != yattr && !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	for _, a := range xattrs {
		add(a)
	}
	for i := 0; i < schema.Len(); i++ {
		if schema.Attr(i).Kind == dataset.Categorical {
			add(i)
		}
	}
	return out
}
