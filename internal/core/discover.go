package core

import (
	"container/heap"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
	"github.com/crrlab/crr/internal/telemetry"
)

// QueueOrder selects how Algorithm 1's priority queue orders conjunctions by
// their sharing index ind(C) (§V-A3, Table IV).
type QueueOrder int

const (
	// Decrease pops the conjunction most likely to share an existing model
	// first — the paper's choice (Proposition 8).
	Decrease QueueOrder = iota
	// Increase pops the least likely first (Table IV's adversarial order).
	Increase
	// RandomOrder pops uniformly at random.
	RandomOrder
)

// String implements fmt.Stringer.
func (o QueueOrder) String() string {
	switch o {
	case Decrease:
		return "decrease"
	case Increase:
		return "increase"
	case RandomOrder:
		return "random"
	default:
		return "unknown"
	}
}

// DiscoverConfig parameterizes Algorithm 1. Zero values select sane
// defaults through Validate; the options API (Discover with
// DiscoverOption values) is the preferred way to build one.
type DiscoverConfig struct {
	// XAttrs and YAttr define the regression signature f : X → Y. YAttr must
	// be numeric and must not appear in XAttrs (Reflexivity, Proposition 1).
	XAttrs []int
	YAttr  int
	// RhoM is the maximum bias ρ_M; non-positive selects DefaultMaxBias.
	RhoM float64
	// Preds is the predicate space ℙ; it must not mention YAttr
	// (Definition 1).
	Preds []predicate.Predicate
	// Trainer fits new models when no existing model can be shared; nil
	// selects OLS (family F1) under the options API.
	Trainer regress.Trainer
	// Order is the ind(C) queue ordering; Decrease is the paper's default.
	Order QueueOrder
	// Seed drives RandomOrder.
	Seed int64
	// DisableSharing turns off Lines 7–10 (the ablation of §VI-B1); every
	// data part then trains its own model, like a plain regression tree.
	DisableSharing bool
	// FuseShared applies Fusion eagerly during search: a share hit extends
	// the existing rule of that model with the new conjunction (ℂ ∨ C∧(y=δ),
	// ρ = max) instead of emitting a separate rule. This is how "CRR
	// searching" in the paper's Fig. 9 returns fewer rules than a compacted
	// regression tree; Translation across distinct models still requires
	// Algorithm 2.
	FuseShared bool
	// MinSupport is the smallest part size still split further; parts at or
	// below it accept their model regardless of error, ensuring coverage
	// (§V-A2's VC-dimension floor). 0 means len(XAttrs)+2.
	MinSupport int
	// MaxNodes caps queue expansions as a runaway guard; 0 means
	// 64·|D| + 4096.
	MaxNodes int
	// SeedModels pre-populates the shared model set F, so discovery over new
	// data can reuse models learned earlier (incremental maintenance).
	SeedModels []regress.Model
	// Prop8Splits enables Proposition 8's split sizing: instead of only the
	// single best cut, a node splits on the top ⌈(1−ind(C))·|D_C|⌉ cut pairs
	// (bounded by the applicable cuts), so that at least one resulting
	// conjunction is shareable by an existing model. The extra overlapping
	// children cost queue work; the default single best cut matches the
	// binary searching of the paper's complexity analysis (§V-A4).
	Prop8Splits bool
	// Columns discovers over a columnar substrate directly — typically the
	// mmap-backed ColumnSet of an out-of-core store (internal/colstore) —
	// instead of building one from a Relation. When set together with a
	// Relation the two must describe the same data (the columnar engine reads
	// Columns; the RowScan reference path reads the Relation); with a nil
	// Relation (DiscoverColumns, WithColumnStore) the tuple-requiring paths
	// (RowScan, the stability strategy) fail with ErrTuplesRequired.
	Columns *dataset.ColumnSet
	// RowScan switches part materialization and split scoring to the
	// tuple-at-a-time reference path instead of the columnar engine
	// (dataset.ColumnSet + vectorized predicate filters). The two paths are
	// bitwise-identical by contract; RowScan exists so the parity harness
	// (crrbench -compare, the property tests) can assert it end to end.
	RowScan bool
	// Workers is the discovery worker count: 0 or 1 selects the sequential
	// engine, n > 1 the parallel engine with n workers, negative one worker
	// per CPU. The parallel engine trades exact ind(C) ordering for
	// throughput (see the engine comment in parallel.go).
	Workers int
	// Strategy selects the induction strategy run over the substrate; nil
	// selects the built-in lattice walk (Algorithm 1). The internal/induction
	// package contributes growprune and stability.
	Strategy Strategy
	// Telemetry receives hot-path metrics (see internal/telemetry's metric
	// schema); nil disables instrumentation at zero cost.
	Telemetry *telemetry.Registry
}

// DiscoverStats reports the work Algorithm 1 performed.
type DiscoverStats struct {
	ModelsTrained int // Line 13 executions
	ShareHits     int // rules emitted through Lines 7–10
	NodesExpanded int // queue pops with a non-empty part
	ForcedRules   int // rules accepted at the MinSupport floor
}

// DiscoverResult carries the discovered Σ and its statistics.
type DiscoverResult struct {
	Rules *RuleSet
	Stats DiscoverStats
}

// prop8MaxGroups caps the split fan-out under Prop8Splits; overlapping
// children multiply queue work, and past a few groups the sharing guarantee
// is already overwhelmingly likely.
const prop8MaxGroups = 3

// Discover mines conditional regression rules from rel with Algorithm 1
// (CRR searching with model sharing). It is the single context-first
// entrypoint of the discovery engine: cancellation and deadlines on ctx are
// honored at every condition-queue pop (not just at entry), so long mines
// stop within one queue iteration and return an error matching both
// ErrCanceled and the context's own sentinel.
//
// The configuration is assembled from functional options over sane
// defaults: OLS trainer, ρ_M = DefaultMaxBias, a paper-default predicate
// space generated over the X attributes plus every categorical attribute,
// and the sequential engine. WithWorkers(n > 1) switches to the parallel
// engine; WithTelemetry attaches hot-path metrics.
//
//	res, err := core.Discover(ctx, rel,
//	    core.WithSignature([]int{salary}, tax),
//	    core.WithMaxBias(60),
//	    core.WithWorkers(4),
//	    core.WithTelemetry(reg))
func Discover(ctx context.Context, rel *dataset.Relation, opts ...DiscoverOption) (*DiscoverResult, error) {
	var cfg DiscoverConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := applyDefaults(rel, &cfg); err != nil {
		return nil, err
	}
	return discoverFor(ctx, rel, cfg)
}

// DiscoverColumns mines conditional regression rules directly over a
// columnar substrate — the entrypoint for out-of-core discovery, where the
// ColumnSet is the adopted view of an mmap'd store (colstore.Store.Columns)
// and no Relation ever exists in memory. It accepts the same options as
// Discover and is exactly equivalent to it by the engine's bitwise-parity
// contract: the columnar hot path reads raw column values in identical order
// either way. Tuple-requiring paths (WithConfig{RowScan: true}, the
// stability strategy) fail with ErrTuplesRequired.
func DiscoverColumns(ctx context.Context, cols *dataset.ColumnSet, opts ...DiscoverOption) (*DiscoverResult, error) {
	var cfg DiscoverConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	cfg.Columns = cols
	if err := applyDefaults(nil, &cfg); err != nil {
		return nil, err
	}
	return discoverFor(ctx, nil, cfg)
}

// dataSource resolves the run's schema and row count from the configured
// data: the relation when present, the column store otherwise. A run with
// neither is an empty run.
func dataSource(rel *dataset.Relation, cfg *DiscoverConfig) (rows int, schema *dataset.Schema, err error) {
	switch {
	case rel != nil:
		return rel.Len(), rel.Schema, nil
	case cfg.Columns != nil:
		return cfg.Columns.Len(), cfg.Columns.Schema, nil
	}
	return 0, nil, ErrEmptyRelation
}

// applyDefaults fills cfg's open slots against the run's data source the way
// the options API promises — the paper-default predicate space over the X
// attributes plus every categorical attribute when ℙ is unset, then
// Validate's trainer and ρ_M defaulting — and rejects empty inputs. Both the
// tuple entrypoints (Discover, DiscoverTargets) and the columnar one
// (DiscoverColumns) share it, so all accept the same minimal configurations.
func applyDefaults(rel *dataset.Relation, cfg *DiscoverConfig) error {
	rows, schema, err := dataSource(rel, cfg)
	if err != nil {
		return err
	}
	if rows == 0 {
		return ErrEmptyRelation
	}
	if cfg.Preds == nil {
		attrs := defaultPredicateAttrs(schema, cfg.XAttrs, cfg.YAttr)
		gcfg := predicate.GeneratorConfig{Seed: cfg.Seed}
		if rel != nil {
			cfg.Preds = predicate.Generate(rel, attrs, gcfg)
		} else {
			cfg.Preds = predicate.GenerateColumns(cfg.Columns, attrs, gcfg)
		}
	}
	if len(cfg.Preds) == 0 {
		return ErrNoPredicates
	}
	return cfg.Validate()
}

// DiscoverWithConfig runs the configured strategy sequentially (Workers is
// forced to 1) with an explicit configuration and no cancellation — the
// pre-options API, now a thin shim over the strategy seam.
//
// Deprecated: use Discover with a context and options (wrap an existing
// configuration with WithConfig).
func DiscoverWithConfig(rel *dataset.Relation, cfg DiscoverConfig) (*DiscoverResult, error) {
	cfg.Workers = 1
	return discoverFor(context.Background(), rel, cfg)
}

// discoverPrep validates cfg against rel and builds the shared discovery
// prelude: effective MinSupport/MaxNodes, the trainable tuple indices (rows
// with non-null X and Y — null rows cannot be fit or checked and are the
// imputation targets, not the training data) and the result skeleton with
// the mean-of-Y fallback.
func discoverPrep(rel *dataset.Relation, cfg *DiscoverConfig) (all []int, out *DiscoverResult, err error) {
	rows, schema, err := dataSource(rel, cfg)
	if err != nil {
		return nil, nil, err
	}
	if cfg.Trainer == nil {
		return nil, nil, ErrNoTrainer
	}
	if cfg.RowScan && rel == nil {
		return nil, nil, fmt.Errorf("%w: RowScan needs a Relation", ErrTuplesRequired)
	}
	if schema.Attr(cfg.YAttr).Kind != dataset.Numeric {
		return nil, nil, ErrNonNumericTarget
	}
	for _, a := range cfg.XAttrs {
		if a == cfg.YAttr {
			return nil, nil, ErrTrivialTarget
		}
	}
	for _, p := range cfg.Preds {
		if p.Attr == cfg.YAttr {
			return nil, nil, ErrPredicateOnTarget
		}
	}
	if cfg.MinSupport <= 0 {
		cfg.MinSupport = len(cfg.XAttrs) + 2
	}
	if cfg.MaxNodes <= 0 {
		cfg.MaxNodes = 64*rows + 4096
	}

	// Trainable rows and the mean-of-Y fallback, from whichever
	// representation backs the run. Both branches visit rows in ascending
	// order over identical raw values (the ColumnSet stores raw Nums under
	// its null bits), so the fallback is bitwise-identical across them.
	all = make([]int, 0, rows)
	if rel != nil {
		for i, t := range rel.Tuples {
			if t[cfg.YAttr].Null {
				continue
			}
			ok := true
			for _, a := range cfg.XAttrs {
				if t[a].Null {
					ok = false
					break
				}
			}
			if ok {
				all = append(all, i)
			}
		}
	} else {
		cs := cfg.Columns
		for i := 0; i < rows; i++ {
			if cs.IsNull(cfg.YAttr, i) {
				continue
			}
			ok := true
			for _, a := range cfg.XAttrs {
				if cs.IsNull(a, i) {
					ok = false
					break
				}
			}
			if ok {
				all = append(all, i)
			}
		}
	}
	out = &DiscoverResult{Rules: &RuleSet{
		Schema: schema,
		XAttrs: append([]int(nil), cfg.XAttrs...),
		YAttr:  cfg.YAttr,
	}}
	if len(all) > 0 {
		var ysum float64
		if rel != nil {
			for _, i := range all {
				ysum += rel.Tuples[i][cfg.YAttr].Num
			}
		} else {
			ycol := cfg.Columns.Float(cfg.YAttr)
			for _, i := range all {
				ysum += ycol[i]
			}
		}
		out.Rules.Fallback = ysum / float64(len(all))
	}
	return all, out, nil
}

// discTel holds the pre-resolved metric handles of one discovery run, so
// the hot loop pays one atomic op per event and nothing at all when no
// registry is attached (nil handles no-op).
type discTel struct {
	nodes, trained, shared, shareTests, forced *telemetry.Counter
	statReuse, cacheHits                       *telemetry.Counter
	colsBuild, rowsScanned                     *telemetry.Counter
	queueDepth                                 *telemetry.Gauge
	trainTime, shareTime                       *telemetry.Histogram
	scanWidth, filterSel                       *telemetry.Distribution
}

func newDiscTel(r *telemetry.Registry) discTel {
	return discTel{
		nodes:       r.Counter(telemetry.MetricConditionsExpanded),
		trained:     r.Counter(telemetry.MetricModelsTrained),
		shared:      r.Counter(telemetry.MetricModelsShared),
		shareTests:  r.Counter(telemetry.MetricShareTests),
		forced:      r.Counter(telemetry.MetricForcedRules),
		statReuse:   r.Counter(telemetry.MetricStatReuse),
		cacheHits:   r.Counter(telemetry.MetricCacheHits),
		colsBuild:   r.Counter(telemetry.MetricColumnsBuild),
		rowsScanned: r.Counter(telemetry.MetricFilterRowsScanned),
		queueDepth:  r.Gauge(telemetry.MetricQueueDepth),
		trainTime:   r.Histogram(telemetry.MetricTrainTime),
		shareTime:   r.Histogram(telemetry.MetricShareTestTime),
		scanWidth:   r.Distribution(telemetry.MetricShareScanWidth),
		filterSel:   r.Distribution(telemetry.MetricFilterSelectivity),
	}
}

// latticeSeq is the sequential engine of LatticeStrategy — Algorithm 1 (CRR
// searching with model sharing): a top-down refinement over conjunctions
// that first tries to share an existing model via the δ0 test of
// Proposition 6, trains a new model only when sharing fails, and splits the
// condition on the best variance-reducing predicate group from ℙ otherwise.
// Conjunctions are processed in the configured ind(C) order. ctx is checked
// once per queue pop. The per-node work — part gathering, the single-pass
// share scan and Line-13 training — runs on the hot path shared with the
// parallel engine (hotpath.go), reached through the substrate's exact
// kernels so the output stays bitwise-reproducible.
func latticeSeq(ctx context.Context, sub *Substrate) (*DiscoverResult, error) {
	cfg := sub.cfg
	all := sub.all
	out := sub.NewResult()
	if len(all) == 0 {
		return out, nil
	}
	tel := sub.tel
	rng := rand.New(rand.NewSource(cfg.Seed))

	shared := append([]regress.Model(nil), cfg.SeedModels...) // the model set F (Line 2)
	ruleOf := make(map[regress.Model]int)
	hl := sub.hot(true)
	ws := hl.workspace()
	q := &condQueue{}
	heap.Init(q)
	root := &condItem{conj: predicate.NewConjunction(), idxs: all, gram: hl.rootGram(all)}
	heap.Push(q, root)
	visited := map[string]bool{conjKey(root.conj.Normalize()): true}

	emit := func(model regress.Model, rho float64, conj predicate.Conjunction) {
		// Refinement accumulates one predicate per split; normalizing
		// collapses them to minimal per-attribute bounds.
		conj = conj.Normalize()
		if cfg.FuseShared {
			if ri, ok := ruleOf[model]; ok {
				r := &out.Rules.Rules[ri]
				r.Cond.Conjs = append(r.Cond.Conjs, conj)
				if rho > r.Rho {
					r.Rho = rho // Generalization before Fusion
				}
				return
			}
			ruleOf[model] = len(out.Rules.Rules)
		}
		out.Rules.Rules = append(out.Rules.Rules, CRR{
			Model:  model,
			Rho:    rho,
			Cond:   predicate.NewDNF(conj),
			XAttrs: out.Rules.XAttrs,
			YAttr:  cfg.YAttr,
		})
	}

	for q.Len() > 0 && out.Stats.NodesExpanded < cfg.MaxNodes {
		// The cancellation point of the search loop: a canceled or expired
		// context stops the mine within one queue iteration.
		if err := ctx.Err(); err != nil {
			return nil, canceled(err)
		}
		item := heap.Pop(q).(*condItem)
		tel.queueDepth.Set(float64(q.Len()))
		if len(item.idxs) == 0 {
			continue
		}
		out.Stats.NodesExpanded++
		tel.nodes.Inc()

		ev, err := ws.evaluate(item, shared)
		if err != nil {
			return nil, err
		}
		if ev.hit {
			// Lines 7–10: model sharing via the δ0 test.
			conj := item.conj.Clone()
			conj.Builtin = conj.Builtin.WithYShift(ev.share.Delta0)
			emit(ev.model, ev.share.MaxErr, conj)
			out.Stats.ShareHits++
			tel.shared.Inc()
			continue
		}
		out.Stats.ModelsTrained++
		tel.trained.Inc()
		if ev.accept {
			emit(ev.model, ev.maxErr, item.conj)
			shared = append(shared, ev.model)
			if ev.forced {
				out.Stats.ForcedRules++
				tel.forced.Inc()
			}
			continue
		}

		// Lines 19–22: refine the condition; children carry the parent's
		// ind(C) as queue priority (Line 22). The visited set keys on the
		// normalized conjunction, so syntactically different but equivalent
		// refinements (a≤5 ∧ a≤3 vs a≤3, overlapping Prop8 paths) expand
		// once — equivalent conjunctions select the same part, so coverage
		// is preserved by whichever spelling was queued first.
		for _, ch := range ev.children {
			conj := item.conj.And(ch.pred)
			key := conjKey(conj.Normalize())
			if visited[key] {
				continue
			}
			visited[key] = true
			prio := ev.ind
			switch cfg.Order {
			case Increase:
				prio = -ev.ind
			case RandomOrder:
				prio = rng.Float64()
			}
			heap.Push(q, &condItem{conj: conj, idxs: ch.idxs, gram: ch.gram, prio: prio, seq: q.nextSeq()})
		}
		tel.queueDepth.Set(float64(q.Len()))
	}
	// If the MaxNodes guard tripped, force-accept a model for every part
	// still queued — Problem 1 requires Σ to cover D, so abandoned parts are
	// not an option.
	for q.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return nil, canceled(err)
		}
		item := heap.Pop(q).(*condItem)
		if len(item.idxs) == 0 {
			continue
		}
		x, y := ws.part(item.idxs)
		model, _, err := ws.trainPart(item, x, y)
		if err != nil {
			return nil, err
		}
		out.Stats.ModelsTrained++
		out.Stats.ForcedRules++
		tel.trained.Inc()
		tel.forced.Inc()
		emit(model, regress.MaxAbsError(model, x, y), item.conj)
	}
	return out, nil
}

// DiscoverTargets runs the discovery engine once per target column, sharing
// the config (the column-scalability workload of the paper's Figure 7).
// cfg.YAttr is overridden per target, and each target goes through the same
// defaulting as Discover: a nil ℙ derives the paper-default predicate space
// for that target (the space depends on which column is the target, via
// Reflexivity), and a nil Trainer or non-positive ρ_M take the documented
// defaults. Targets appearing in cfg.XAttrs are rejected by the per-run
// Reflexivity check. Cancellation is checked between targets and inside each
// mine.
func DiscoverTargets(ctx context.Context, rel *dataset.Relation, targets []int, cfg DiscoverConfig) (map[int]*RuleSet, error) {
	out := make(map[int]*RuleSet, len(targets))
	for _, y := range targets {
		if err := ctx.Err(); err != nil {
			return nil, canceled(err)
		}
		c := cfg
		c.YAttr = y
		if err := applyDefaults(rel, &c); err != nil {
			return nil, fmt.Errorf("core: target %d: %w", y, err)
		}
		res, err := discoverFor(ctx, rel, c)
		if err != nil {
			return nil, fmt.Errorf("core: target %d: %w", y, err)
		}
		out[y] = res.Rules
	}
	return out, nil
}

// childPart is one refinement C ∧ p with the tuple indices it selects.
type childPart struct {
	pred predicate.Predicate
	idxs []int
}

// splitIndex precomputes, once per discovery, the usable split structure of
// the predicate space ℙ: per-attribute sorted numeric cuts (usable when both
// the > and ≤ predicates exist, so children partition D_C) and per-attribute
// categorical equality fans.
type splitIndex struct {
	numAttrs  []int             // numeric attributes with usable cuts, sorted
	cuts      map[int][]float64 // attr → sorted usable cut constants
	catOrder  []int             // categorical attributes, sorted
	catPreds  map[int][]predicate.Predicate
	catValues map[int]map[string]bool
}

func newSplitIndex(preds []predicate.Predicate) *splitIndex {
	si := &splitIndex{
		cuts:      make(map[int][]float64),
		catPreds:  make(map[int][]predicate.Predicate),
		catValues: make(map[int]map[string]bool),
	}
	gt := make(map[int]map[float64]bool)
	le := make(map[int]map[float64]bool)
	for _, p := range preds {
		if p.Categorical {
			if si.catValues[p.Attr] == nil {
				si.catValues[p.Attr] = make(map[string]bool)
			}
			if !si.catValues[p.Attr][p.Str] {
				si.catValues[p.Attr][p.Str] = true
				si.catPreds[p.Attr] = append(si.catPreds[p.Attr], p)
			}
			continue
		}
		switch p.Op {
		case predicate.Gt:
			if gt[p.Attr] == nil {
				gt[p.Attr] = make(map[float64]bool)
			}
			gt[p.Attr][p.Num] = true
		case predicate.Le:
			if le[p.Attr] == nil {
				le[p.Attr] = make(map[float64]bool)
			}
			le[p.Attr][p.Num] = true
		}
	}
	for a, les := range le {
		var cuts []float64
		for c := range les {
			if gt[a][c] {
				cuts = append(cuts, c)
			}
		}
		if len(cuts) > 0 {
			sort.Float64s(cuts)
			si.cuts[a] = cuts
			si.numAttrs = append(si.numAttrs, a)
		}
	}
	sort.Ints(si.numAttrs)
	for a := range si.catPreds {
		si.catOrder = append(si.catOrder, a)
	}
	sort.Ints(si.catOrder)
	return si
}

// partScan is the per-discovery scan engine: predicate filtering, SSE
// scoring and split selection over tuple index vectors. The default engine
// runs columnar — vectorized predicate.Filter sweeps and dense column reads
// over a dataset.ColumnSet built once per discovery — while RowScan selects
// the tuple-at-a-time reference path. Both paths are bitwise-identical by
// construction: the ColumnSet stores raw cell values, selections stay in
// tuple order, and every float accumulation runs in the same order
// (categorical fans sum per-value SSE in sorted value order in both modes).
type partScan struct {
	rel  *dataset.Relation
	cols *dataset.ColumnSet
	row  bool // tuple-at-a-time reference path (DiscoverConfig.RowScan)
	// Columnar-engine telemetry; nil handles no-op.
	rowsScanned *telemetry.Counter
	selectivity *telemetry.Distribution
}

// filterIdxs returns the subset of idxs satisfying p, preserving order.
func (sc *partScan) filterIdxs(idxs []int, p predicate.Predicate) []int {
	if sc.row {
		var out []int
		for _, i := range idxs {
			if p.Sat(sc.rel.Tuples[i]) {
				out = append(out, i)
			}
		}
		return out
	}
	out := p.Filter(sc.cols, idxs, nil)
	sc.rowsScanned.Add(int64(len(idxs)))
	if len(idxs) > 0 {
		sc.selectivity.Observe(float64(len(out)) / float64(len(idxs)))
	}
	return out
}

// bestSplit chooses the split predicates (Line 19) with the regression-tree
// strategy of [9]: group ℙ into complementary partitions — numeric {>c, ≤c}
// pairs and per-attribute categorical equality fans — score each group by
// its weighted-variance (SSE) reduction on Y, and return the children of the
// best-scoring group. Returning complementary children keeps the union of
// queue entries covering D_C, which Problem 1 requires.
//
// Numeric scoring is O(n log n + |cuts in range|) per attribute via sorted
// prefix sums over a split index precomputed once per discovery, so the
// paper's default predicate space (a cut at every domain value) stays
// affordable.
func (sc *partScan) bestSplit(idxs []int, si *splitIndex, yattr int) []childPart {
	groups := sc.topSplits(idxs, si, yattr, 1)
	if len(groups) == 0 {
		return nil
	}
	return groups[0]
}

// splitCandidate is one scored split group: either a numeric cut pair or a
// categorical fan.
type splitCandidate struct {
	gain    float64
	numeric bool
	attr    int
	cut     float64
}

// topSplits scores every applicable split group and materializes the
// children of the k best (Proposition 8's multi-split when k > 1).
func (sc *partScan) topSplits(idxs []int, si *splitIndex, yattr, k int) [][]childPart {
	rel := sc.rel
	total := sc.sse(idxs, yattr)
	var cands []splitCandidate

	var yc []float64
	if !sc.row {
		yc = sc.cols.Float(yattr)
	}
	for _, a := range si.numAttrs {
		cuts := si.cuts[a]
		// Sort the part once by the attribute value; prefix sums of y, y².
		vals := make([]float64, len(idxs))
		ys := make([]float64, len(idxs))
		order := make([]int, len(idxs))
		if sc.row {
			for i, ti := range idxs {
				order[i] = i
				vals[i] = rel.Tuples[ti][a].Num
				ys[i] = rel.Tuples[ti][yattr].Num
			}
		} else {
			col := sc.cols.Float(a)
			for i, ti := range idxs {
				order[i] = i
				vals[i] = col[ti]
				ys[i] = yc[ti]
			}
		}
		sort.Slice(order, func(i, j int) bool { return vals[order[i]] < vals[order[j]] })
		sortedVals := make([]float64, len(order))
		s1 := make([]float64, len(order)+1)
		s2 := make([]float64, len(order)+1)
		for i, oi := range order {
			sortedVals[i] = vals[oi]
			s1[i+1] = s1[i] + ys[oi]
			s2[i+1] = s2[i] + ys[oi]*ys[oi]
		}
		n := len(order)
		sseRange := func(lo, hi int) float64 { // rows [lo,hi)
			cnt := float64(hi - lo)
			if cnt == 0 {
				return 0
			}
			sum := s1[hi] - s1[lo]
			return (s2[hi] - s2[lo]) - sum*sum/cnt
		}
		// Only cuts strictly inside the part's value range can split it;
		// pruning to that window keeps per-node cost proportional to the
		// part, not to the global predicate space.
		loCut := sort.SearchFloat64s(cuts, sortedVals[0])
		hiCut := sort.SearchFloat64s(cuts, sortedVals[n-1])
		for _, c := range cuts[loCut:hiCut] {
			pos := sort.SearchFloat64s(sortedVals, c)
			// pos = first index with value > c after adjusting for equals.
			for pos < n && sortedVals[pos] <= c {
				pos++
			}
			if pos == 0 || pos == n {
				continue
			}
			gain := total - sseRange(0, pos) - sseRange(pos, n)
			if gain > 0 {
				cands = append(cands, splitCandidate{gain: gain, numeric: true, attr: a, cut: c})
			}
		}
	}

	// Categorical fans.
	for _, a := range si.catOrder {
		byValue := make(map[string][]int)
		if sc.row {
			for _, ti := range idxs {
				byValue[rel.Tuples[ti][a].Str] = append(byValue[rel.Tuples[ti][a].Str], ti)
			}
		} else {
			// Group by dictionary code, then name the groups: a null cell's
			// NullCode maps to "", matching the Str of a null Value.
			codes := sc.cols.Codes(a)
			dict := sc.cols.Dict(a)
			byCode := make(map[uint32][]int)
			for _, ti := range idxs {
				byCode[codes[ti]] = append(byCode[codes[ti]], ti)
			}
			for code, part := range byCode {
				v := ""
				if code != dataset.NullCode {
					v = dict[code]
				}
				byValue[v] = part
			}
		}
		if len(byValue) < 2 {
			continue
		}
		// The equality fan must cover every value present in D_C. Summing
		// child SSEs in sorted value order — not map order — keeps the gain
		// a deterministic float and bitwise-identical across scan modes.
		present := si.catValues[a]
		values := make([]string, 0, len(byValue))
		covered := true
		for v := range byValue {
			if !present[v] {
				covered = false
				break
			}
			values = append(values, v)
		}
		if !covered {
			continue
		}
		sort.Strings(values)
		var childSSE float64
		for _, v := range values {
			childSSE += sc.sse(byValue[v], yattr)
		}
		if gain := total - childSSE; gain > 0 {
			cands = append(cands, splitCandidate{gain: gain, attr: a})
		}
	}

	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].gain != cands[j].gain {
			return cands[i].gain > cands[j].gain
		}
		if cands[i].attr != cands[j].attr {
			return cands[i].attr < cands[j].attr
		}
		return cands[i].cut < cands[j].cut
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([][]childPart, 0, k)
	for _, cand := range cands[:k] {
		if cand.numeric {
			le := predicate.NumPred(cand.attr, predicate.Le, cand.cut)
			gt := predicate.NumPred(cand.attr, predicate.Gt, cand.cut)
			out = append(out, []childPart{
				{le, sc.filterIdxs(idxs, le)},
				{gt, sc.filterIdxs(idxs, gt)},
			})
			continue
		}
		var parts []childPart
		for _, p := range si.catPreds[cand.attr] {
			if sel := sc.filterIdxs(idxs, p); len(sel) > 0 {
				parts = append(parts, childPart{p, sel})
			}
		}
		out = append(out, parts)
	}
	return out
}

// sse returns Σ (y − ȳ)² over the selected tuples' target values. Both scan
// modes accumulate in idxs order over identical raw values, so the result is
// bitwise-identical.
func (sc *partScan) sse(idxs []int, yattr int) float64 {
	if len(idxs) == 0 {
		return 0
	}
	var sum float64
	n := 0
	if sc.row {
		rel := sc.rel
		for _, i := range idxs {
			if !rel.Tuples[i][yattr].Null {
				sum += rel.Tuples[i][yattr].Num
				n++
			}
		}
		if n == 0 {
			return 0
		}
		mean := sum / float64(n)
		var s float64
		for _, i := range idxs {
			if !rel.Tuples[i][yattr].Null {
				d := rel.Tuples[i][yattr].Num - mean
				s += d * d
			}
		}
		return s
	}
	col := sc.cols.Float(yattr)
	nulls := sc.cols.Nulls(yattr)
	if nulls == nil {
		for _, i := range idxs {
			sum += col[i]
		}
		mean := sum / float64(len(idxs))
		var s float64
		for _, i := range idxs {
			d := col[i] - mean
			s += d * d
		}
		return s
	}
	isNull := func(r int) bool { return nulls[r>>6]&(1<<(uint(r)&63)) != 0 }
	for _, i := range idxs {
		if !isNull(i) {
			sum += col[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	mean := sum / float64(n)
	var s float64
	for _, i := range idxs {
		if !isNull(i) {
			d := col[i] - mean
			s += d * d
		}
	}
	return s
}

// conjKey renders a conjunction for the visited set: the sorted multiset of
// its predicates, rendered without fmt (this sits on the hot path of every
// queue push). Callers pass the Normalize()d conjunction so that equivalent
// spellings — redundant bounds accumulated along different refinement paths
// — map to the same key.
func conjKey(c predicate.Conjunction) string {
	parts := make([]string, len(c.Preds))
	for i, p := range c.Preds {
		var b []byte
		b = strconv.AppendInt(b, int64(p.Attr), 10)
		b = strconv.AppendInt(b, int64(p.Op), 10)
		if p.Categorical {
			b = append(b, p.Str...)
		} else {
			b = strconv.AppendFloat(b, p.Num, 'g', -1, 64)
		}
		parts[i] = string(b)
	}
	sort.Strings(parts)
	return strings.Join(parts, "&")
}

// condItem is a queue entry (C, priority). gram carries the part's
// sufficient statistics when the fast path applies (see hotpath.go).
type condItem struct {
	conj predicate.Conjunction
	idxs []int
	gram *regress.Gram
	prio float64
	seq  int
}

// condQueue is a max-heap on prio with FIFO tie-breaking.
type condQueue struct {
	items []*condItem
	seq   int
}

func (q *condQueue) nextSeq() int { q.seq++; return q.seq }

func (q *condQueue) Len() int { return len(q.items) }

func (q *condQueue) Less(i, j int) bool {
	if q.items[i].prio != q.items[j].prio {
		return q.items[i].prio > q.items[j].prio
	}
	return q.items[i].seq < q.items[j].seq
}

func (q *condQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }

func (q *condQueue) Push(x any) { q.items = append(q.items, x.(*condItem)) }

func (q *condQueue) Pop() any {
	old := q.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	q.items = old[:n-1]
	return it
}
