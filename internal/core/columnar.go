package core

import (
	"math"
	"sort"
	"time"

	"github.com/crrlab/crr/internal/dataset"
)

// Columnar rule classification: the batch counterparts of RuleSet.Predict,
// Violations and Explain. Instead of dispatching every rule condition per
// tuple, these keep a selection vector of still-unclassified rows and narrow
// it with one vectorized predicate.Filter sweep per (rule, conjunction), in
// rule order — reproducing the first-match semantics of the row path exactly.
// The row-path implementations remain the reference; the property tests and
// crrbench -compare assert bitwise-identical outputs.

// selDiff removes the sorted subset sub from the sorted selection sel in one
// merge walk, in place, and returns the shortened selection.
func selDiff(sel, sub []int) []int {
	if len(sub) == 0 {
		return sel
	}
	out := sel[:0]
	j := 0
	for _, r := range sel {
		if j < len(sub) && sub[j] == r {
			j++
			continue
		}
		out = append(out, r)
	}
	return out
}

// xValue reads the raw numeric cell (attr, row), matching Tuple access:
// categorical cells carry Num = 0, null cells their stored Num.
func xValue(cs *dataset.ColumnSet, attr, row int) float64 {
	if col := cs.Float(attr); col != nil {
		return col[row]
	}
	return 0
}

// PredictView classifies every selected row of v in one columnar pass,
// returning the prediction and coverage flag per selected row (parallel to
// v.Sel). Semantics equal calling Predict on each row's tuple: the first
// (rule, conjunction) in rule order whose condition holds and whose X cells
// are non-null supplies the prediction; uncovered rows get the fallback.
func (s *RuleSet) PredictView(v *dataset.View) (preds []float64, covered []bool) {
	preds, covered, _ = s.predictView(v, false)
	return preds, covered
}

// PredictViewExplained is PredictView plus the explain metadata the serving
// plane exposes behind ?explain: ruleIDs[i] is the index of the rule that
// supplied row i's prediction (the same first-match rule Predict uses), or
// -1 for rows answered by the fallback. Predictions and coverage are
// bitwise-identical to PredictView.
func (s *RuleSet) PredictViewExplained(v *dataset.View) (preds []float64, covered []bool, ruleIDs []int) {
	return s.predictView(v, true)
}

func (s *RuleSet) predictView(v *dataset.View, explain bool) (preds []float64, covered []bool, ruleIDs []int) {
	cs := v.Cols
	n := len(v.Sel)
	preds = make([]float64, n)
	covered = make([]bool, n)
	if explain {
		ruleIDs = make([]int, n)
		for i := range ruleIDs {
			ruleIDs[i] = -1
		}
	}
	s.lookups.Add(int64(n))
	// slot maps a row index back to its position in v.Sel; rows are dense,
	// so a slice beats a map.
	slot := make([]int, cs.Len())
	for i, r := range v.Sel {
		slot[r] = i
	}
	remaining := append([]int(nil), v.Sel...)
	var matched, consumed []int
	for ri := range s.Rules {
		if len(remaining) == 0 {
			break
		}
		rule := &s.Rules[ri]
		x := make([]float64, len(rule.XAttrs))
		for ci := range rule.Cond.Conjs {
			if len(remaining) == 0 {
				break
			}
			conj := rule.Cond.Conjs[ci]
			s.rowsScanned.Add(int64(len(remaining)))
			matched = conj.Filter(cs, remaining, matched)
			s.filterSel.Observe(float64(len(matched)) / float64(len(remaining)))
			if len(matched) == 0 {
				continue
			}
			// A matched row with a null X cell stays unclassified: the row
			// path's index lookup skips such entries and keeps scanning.
			consumed = consumed[:0]
			for _, r := range matched {
				nullX := false
				for _, attr := range rule.XAttrs {
					if cs.IsNull(attr, r) {
						nullX = true
						break
					}
				}
				if nullX {
					continue
				}
				for i, attr := range rule.XAttrs {
					x[i] = xValue(cs, attr, r) + conj.Builtin.Shift(attr)
				}
				i := slot[r]
				preds[i] = rule.Model.Predict(x) + conj.Builtin.YShift
				covered[i] = true
				if explain {
					ruleIDs[i] = ri
				}
				consumed = append(consumed, r)
			}
			remaining = selDiff(remaining, consumed)
		}
	}
	for _, r := range remaining {
		preds[slot[r]] = s.Fallback
	}
	s.misses.Add(int64(len(remaining)))
	return preds, covered, ruleIDs
}

// neededAttrs returns the distinct attributes the rule set reads while
// classifying: every rule's X attributes and every condition predicate's
// attribute, plus any extras (the Y attribute, for violation checks). It
// bounds what PredictBatch and Violations must columnarize — on wide
// relations most columns are never read.
func (s *RuleSet) neededAttrs(extra ...int) []int {
	seen := make(map[int]bool)
	var out []int
	add := func(a int) {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	for _, a := range extra {
		add(a)
	}
	for ri := range s.Rules {
		for _, a := range s.Rules[ri].XAttrs {
			add(a)
		}
		for _, conj := range s.Rules[ri].Cond.Conjs {
			for _, p := range conj.Preds {
				add(p.Attr)
			}
		}
	}
	return out
}

// PredictBatch classifies every tuple of rel columnar-first: it builds a
// ColumnSet over just the attributes the rules read (reported under
// columns.build_ns) and delegates to PredictView over the full selection.
// Results are bitwise-identical to calling Predict per tuple.
func (s *RuleSet) PredictBatch(rel *dataset.Relation) (preds []float64, covered []bool) {
	start := time.Now()
	cs := dataset.NewColumnSetAttrs(rel, s.neededAttrs())
	s.colsBuild.Add(time.Since(start).Nanoseconds())
	return s.PredictView(cs.View())
}

// ViolationsColumns detects every (tuple, rule) violation against a
// prebuilt ColumnSet, ordered by tuple then rule — bitwise-identical to
// ViolationsRows. Per rule, the first satisfied conjunction binds the
// built-in shifts (CRR.Predict semantics), so matched rows leave the rule's
// candidate selection whether or not their X cells are null.
func ViolationsColumns(cs *dataset.ColumnSet, s *RuleSet) []Violation {
	ycol := cs.Float(s.YAttr)
	base := make([]int, 0, cs.Len())
	for r := 0; r < cs.Len(); r++ {
		if !cs.IsNull(s.YAttr, r) {
			base = append(base, r)
		}
	}
	var out []Violation
	var remaining, matched []int
	for ri := range s.Rules {
		rule := &s.Rules[ri]
		x := make([]float64, len(rule.XAttrs))
		remaining = append(remaining[:0], base...)
		for ci := range rule.Cond.Conjs {
			if len(remaining) == 0 {
				break
			}
			conj := rule.Cond.Conjs[ci]
			matched = conj.Filter(cs, remaining, matched)
			if len(matched) == 0 {
				continue
			}
			for _, r := range matched {
				nullX := false
				for _, attr := range rule.XAttrs {
					if cs.IsNull(attr, r) {
						nullX = true
						break
					}
				}
				if nullX {
					continue
				}
				for i, attr := range rule.XAttrs {
					x[i] = xValue(cs, attr, r) + conj.Builtin.Shift(attr)
				}
				pred := rule.Model.Predict(x) + conj.Builtin.YShift
				if dev := math.Abs(ycol[r] - pred); dev > rule.Rho+satSlack {
					out = append(out, Violation{
						TupleIndex: r,
						RuleIndex:  ri,
						Observed:   ycol[r],
						Predicted:  pred,
						Excess:     dev - rule.Rho,
					})
				}
			}
			remaining = selDiff(remaining, matched)
		}
	}
	// The rule-major sweep found violations grouped by rule; the contract
	// (and the row path) orders them by tuple then rule.
	sort.Slice(out, func(i, j int) bool {
		if out[i].TupleIndex != out[j].TupleIndex {
			return out[i].TupleIndex < out[j].TupleIndex
		}
		return out[i].RuleIndex < out[j].RuleIndex
	})
	return out
}

// ExplainView evaluates every rule of s against every selected row of v,
// returning one Explanation per selected row (parallel to v.Sel). Output
// equals calling Explain per tuple: per rule, the first satisfied
// conjunction binds; rows with a null X cell under a matching condition
// contribute no MatchInfo for that rule.
func ExplainView(v *dataset.View, s *RuleSet) []Explanation {
	cs := v.Cols
	out := make([]Explanation, len(v.Sel))
	for i := range out {
		out[i] = Explanation{Prediction: s.Fallback}
	}
	slot := make([]int, cs.Len())
	for i, r := range v.Sel {
		slot[r] = i
	}
	var remaining, matched []int
	for ri := range s.Rules {
		rule := &s.Rules[ri]
		x := make([]float64, len(rule.XAttrs))
		remaining = append(remaining[:0], v.Sel...)
		for ci := range rule.Cond.Conjs {
			if len(remaining) == 0 {
				break
			}
			conj := rule.Cond.Conjs[ci]
			matched = conj.Filter(cs, remaining, matched)
			if len(matched) == 0 {
				continue
			}
			for _, r := range matched {
				nullX := false
				for _, attr := range rule.XAttrs {
					if cs.IsNull(attr, r) {
						nullX = true
						break
					}
				}
				if nullX {
					continue
				}
				for i, attr := range rule.XAttrs {
					x[i] = xValue(cs, attr, r) + conj.Builtin.Shift(attr)
				}
				pred := rule.Model.Predict(x) + conj.Builtin.YShift
				m := MatchInfo{
					RuleIndex:  ri,
					ConjIndex:  ci,
					Builtin:    conj.Builtin,
					Prediction: pred,
					Deviation:  math.NaN(),
					Satisfied:  true,
				}
				if !cs.IsNull(s.YAttr, r) {
					m.Deviation = math.Abs(xValue(cs, s.YAttr, r) - pred)
					m.Satisfied = m.Deviation <= rule.Rho+satSlack
				}
				e := &out[slot[r]]
				if !e.Covered {
					e.Covered = true
					e.Prediction = pred
				}
				e.Matches = append(e.Matches, m)
			}
			remaining = selDiff(remaining, matched)
		}
	}
	return out
}
