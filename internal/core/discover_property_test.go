package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

// randomPiecewise builds a random piecewise-linear dataset with 1–4 regimes
// and bounded noise — a valid input for discovery with any ρ_M above the
// noise amplitude.
func randomPiecewise(rng *rand.Rand) (*dataset.Relation, float64) {
	nRegimes := 1 + rng.Intn(4)
	type regime struct{ slope, intercept float64 }
	regimes := make([]regime, nRegimes)
	for i := range regimes {
		regimes[i] = regime{rng.NormFloat64() * 3, rng.NormFloat64() * 20}
	}
	noise := 0.05 + rng.Float64()*0.2
	n := 100 + rng.Intn(300)
	rel := dataset.NewRelation(lineSchema())
	span := 10 + rng.Float64()*90
	for i := 0; i < n; i++ {
		x := span * float64(i) / float64(n)
		reg := regimes[int(float64(nRegimes)*x/span)%nRegimes]
		y := reg.slope*x + reg.intercept + noise*(2*rng.Float64()-1)
		rel.MustAppend(lineTuple(x, y, "t"))
	}
	return rel, noise
}

// Property (Problem 1): for random piecewise data and ρ_M above the noise,
// discovery covers every tuple and every rule holds, under all option
// combinations.
func TestDiscoverInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rel, noise := randomPiecewise(rng)
		rhoM := 2*noise + rng.Float64()
		preds := predicate.Generate(rel, []int{0}, predicate.GeneratorConfig{
			Kind: predicate.Binary, Size: 16 + rng.Intn(48),
		})
		cfg := DiscoverConfig{
			XAttrs:         []int{0},
			YAttr:          1,
			RhoM:           rhoM,
			Preds:          preds,
			Trainer:        regress.LinearTrainer{},
			Order:          QueueOrder(rng.Intn(3)),
			Seed:           seed,
			DisableSharing: rng.Intn(4) == 0,
			FuseShared:     rng.Intn(2) == 0,
			Prop8Splits:    rng.Intn(2) == 0,
		}
		res, err := DiscoverWithConfig(rel, cfg)
		if err != nil {
			return false
		}
		return res.Rules.Coverage(rel) == 1 && res.Rules.Holds(rel)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: compaction is idempotent in size and semantics — compacting a
// compacted set changes nothing observable.
func TestCompactIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rel, noise := randomPiecewise(rng)
		preds := predicate.Generate(rel, []int{0}, predicate.GeneratorConfig{
			Kind: predicate.Binary, Size: 32,
		})
		res, err := DiscoverWithConfig(rel, DiscoverConfig{
			XAttrs: []int{0}, YAttr: 1, RhoM: 2*noise + 0.2,
			Preds: preds, Trainer: regress.LinearTrainer{},
		})
		if err != nil {
			return false
		}
		once, _ := Compact(res.Rules)
		twice, _ := Compact(once)
		if twice.NumRules() != once.NumRules() {
			return false
		}
		for _, tp := range rel.Tuples {
			p1, ok1 := once.Predict(tp)
			p2, ok2 := twice.Predict(tp)
			if ok1 != ok2 || absDiff(p1, p2) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDiscoverProp8Splits(t *testing.T) {
	rel := piecewiseRelation(600, 0.2, 9)
	cfg := discoverCfg(rel, 0.5)
	plain, err := DiscoverWithConfig(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Prop8Splits = true
	multi, err := DiscoverWithConfig(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cov := multi.Rules.Coverage(rel); cov != 1 {
		t.Errorf("Prop8 coverage = %v", cov)
	}
	if !multi.Rules.Holds(rel) {
		t.Error("Prop8 rules violated")
	}
	// Multi-split explores at least as many nodes.
	if multi.Stats.NodesExpanded < plain.Stats.NodesExpanded {
		t.Errorf("Prop8 expanded fewer nodes: %d vs %d",
			multi.Stats.NodesExpanded, plain.Stats.NodesExpanded)
	}
}
