package core

import (
	"container/list"
	"context"
	"math"
	"sort"
	"strconv"
	"strings"

	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
	"github.com/crrlab/crr/internal/telemetry"
)

// CompactStats reports the inference applications Algorithm 2 performed.
type CompactStats struct {
	// Translations counts rules rewritten onto another rule's model through
	// the Translation inference (Lines 3–11).
	Translations int
	// Fusions counts Fusion applications (Lines 12–16); each merges two
	// rules into one.
	Fusions int
	// Implied counts rules dropped because another rule implies them by
	// Induction/Generalization (Problem 1, condition 2).
	Implied int
}

// CompactOptions tunes Algorithm 2.
type CompactOptions struct {
	// ModelTol is the parameter tolerance for deciding that two models are
	// translations of each other (slopes equal within tol) or identical
	// (all weights within tol). The default modelTol keeps compaction an
	// exact inference; experiments on noisy fits pass a tolerance matched
	// to the data's slope-estimation error, trading a bounded semantic
	// drift for the rule-count reduction the paper reports.
	ModelTol float64
	// Telemetry receives compaction metrics (translations, fusions, implied
	// drops, solver attempts); nil disables instrumentation.
	Telemetry *telemetry.Registry
	// Trace, when set, receives one TraceEvent per inference application
	// (Translation, Fusion, Implied drop) with deep copies of the rules
	// consumed and produced, in application order. The soundness checker
	// (internal/verify) replays these events against data to assert each
	// application was a sound inference. Tracing is synchronous; a nil hook
	// costs nothing.
	Trace func(TraceEvent)
}

// TraceKind identifies one Algorithm 2 inference application.
type TraceKind int

const (
	// TraceTranslation rewrites Pre[1] onto Pre[0]'s model (Translation +
	// Proposition 9 builtin composition); Post is the rewritten rule.
	TraceTranslation TraceKind = iota
	// TraceFusion merges Pre[1] into Pre[0] (Generalization aligning ρ, then
	// Fusion of the conditions); Post is the merged rule before the final
	// per-rule Simplify/MergeAdjacent pass.
	TraceFusion
	// TraceImplied drops Pre[1] because Pre[0] implies it (Induction /
	// Generalization, Problem 1 condition 2); Post is nil.
	TraceImplied
)

// String implements fmt.Stringer.
func (k TraceKind) String() string {
	switch k {
	case TraceTranslation:
		return "translation"
	case TraceFusion:
		return "fusion"
	case TraceImplied:
		return "implied"
	default:
		return "unknown"
	}
}

// TraceEvent records one inference application of Algorithm 2. Pre holds
// deep copies of the rules consumed (see the TraceKind constants for their
// roles); Post the rule produced, nil for drops.
type TraceEvent struct {
	Kind TraceKind
	Pre  []CRR
	Post *CRR
}

// cloneCRR deep-copies a rule's condition (models are immutable and shared).
func cloneCRR(r *CRR) CRR {
	out := *r
	out.Cond = r.Cond.Clone()
	out.XAttrs = append([]int(nil), r.XAttrs...)
	return out
}

// Compact implements Algorithm 2 (CRR compaction with inference). It first
// unifies regression models across rules using Translation — every rule
// whose model is a (Δ, δ)-translation of an earlier rule's model is
// rewritten onto that model, composing built-in predicates per
// Proposition 9 — then merges rules sharing a model with Generalization +
// Fusion, and finally drops rules implied by surviving rules. The result is
// semantically equivalent to the input Σ (each rewritten/merged rule is
// derived by a sound inference) and never larger.
func Compact(rules *RuleSet) (*RuleSet, CompactStats) {
	return CompactOpts(rules, CompactOptions{ModelTol: modelTol})
}

// CompactOpts is Compact with explicit options and no cancellation.
func CompactOpts(rules *RuleSet, opts CompactOptions) (*RuleSet, CompactStats) {
	out, stats, _ := CompactCtx(context.Background(), rules, opts)
	return out, stats
}

// CompactCtx is Compact with explicit options and cancellation: ctx is
// checked once per translation pivot and once per fusion candidate, so large
// rule sets stop compacting within one iteration of cancellation. The error
// matches both ErrCanceled and the context's own sentinel. On cancellation
// neither partial output nor partial statistics are returned: the result is
// nil and the stats are zero, matching the Discover engines' nil-on-cancel
// contract.
//
// Output order and CompactStats are invariant under permutation of the
// input rules: the work set is canonically ordered (by signature, encoded
// model, ρ and condition) before the order-sensitive translation-pivot and
// fusion-fold phases run.
func CompactCtx(ctx context.Context, rules *RuleSet, opts CompactOptions) (*RuleSet, CompactStats, error) {
	tol := opts.ModelTol
	if tol <= 0 {
		tol = modelTol
	}
	var stats CompactStats
	translations := opts.Telemetry.Counter(telemetry.MetricTranslations)
	fusions := opts.Telemetry.Counter(telemetry.MetricFusions)
	implied := opts.Telemetry.Counter(telemetry.MetricImplied)
	solverAttempts := opts.Telemetry.Counter(telemetry.MetricSolverAttempts)
	out := &RuleSet{
		Schema:   rules.Schema,
		XAttrs:   append([]int(nil), rules.XAttrs...),
		YAttr:    rules.YAttr,
		Fallback: rules.Fallback,
	}
	// Work on copies so the input set is untouched.
	work := make([]CRR, len(rules.Rules))
	for i, r := range rules.Rules {
		work[i] = r
		work[i].Cond = r.Cond.Clone()
	}
	// Canonical order: the pivot queue, the fusion fold and the implied-drop
	// winner all depend on iteration order, so sort the work set by a total
	// deterministic key first. Every downstream phase then produces the same
	// output (and the same stats) for any permutation of the input.
	sortCanonical(work)

	// Lines 3–11: rule translation. The queue holds candidate pivots; when a
	// pivot translates φ', φ' is removed from the queue — all rules of its
	// model-equivalence class are already unified through the pivot (§V-B1).
	// Note φ' itself is rewritten in place rather than deleted: Line 11's
	// removal is realized by the Fusion phase folding it into the pivot's
	// rule.
	queue := list.New()
	for i := range work {
		queue.PushBack(i)
	}
	inQueue := make([]bool, len(work))
	for i := range inQueue {
		inQueue[i] = true
	}
	for queue.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return nil, CompactStats{}, canceled(err)
		}
		front := queue.Front()
		queue.Remove(front)
		pi := front.Value.(int)
		inQueue[pi] = false
		pivot := &work[pi]
		for qi := range work {
			if qi == pi {
				continue
			}
			other := &work[qi]
			if !sameSignature(pivot, other) || pivot.Model.Equal(other.Model, tol) {
				continue
			}
			solverAttempts.Inc()
			tr, ok := solveTranslationTol(pivot.Model, other.Model, tol)
			if !ok {
				continue
			}
			var pre CRR
			if opts.Trace != nil {
				pre = cloneCRR(other)
			}
			// Rewrite φ' onto the pivot's model: compose the shift into every
			// conjunction's builtin (Proposition 9), keep ρ' and ℂ'.
			// Under a loose ModelTol the two models differ slightly in
			// slope, so the pure-intercept δ would be evaluated at x = 0 and
			// drift across the condition's actual range; anchoring δ at each
			// conjunction's interval midpoint keeps the substitution error
			// bounded by |Δslope|·(interval width)/2.
			cond := other.Cond.Clone()
			for ci := range cond.Conjs {
				shift := anchoredShift(pivot, other, tr, cond.Conjs[ci])
				cond.Conjs[ci].Builtin = cond.Conjs[ci].Builtin.Add(shift)
			}
			work[qi] = CRR{
				Model:  pivot.Model,
				Rho:    other.Rho,
				Cond:   cond,
				XAttrs: other.XAttrs,
				YAttr:  other.YAttr,
			}
			stats.Translations++
			translations.Inc()
			if opts.Trace != nil {
				post := cloneCRR(&work[qi])
				opts.Trace(TraceEvent{
					Kind: TraceTranslation,
					Pre:  []CRR{cloneCRR(pivot), pre},
					Post: &post,
				})
			}
			// φ' need not pivot again: its class is unified already.
			if inQueue[qi] {
				removeFromList(queue, qi)
				inQueue[qi] = false
			}
		}
	}

	// Lines 12–16: rule fusion. All rules of one equivalence class now carry
	// the same model, so grouping by Model.Equal and folding with
	// Generalization + Fusion merges each class into a single rule.
	var fused []CRR
	for i := range work {
		if err := ctx.Err(); err != nil {
			return nil, CompactStats{}, canceled(err)
		}
		merged := false
		for j := range fused {
			if sameSignature(&fused[j], &work[i]) && fused[j].Model.Equal(work[i].Model, tol) {
				// Generalization (ρ = max) then Fusion (ℂ = ℂ ∨ ℂ'),
				// Algorithm 2 Lines 13–14, honoring the configured model
				// tolerance.
				var pre CRR
				if opts.Trace != nil {
					pre = cloneCRR(&fused[j])
				}
				rho := fused[j].Rho
				if work[i].Rho > rho {
					rho = work[i].Rho
				}
				fused[j] = CRR{
					Model:  fused[j].Model,
					Rho:    rho,
					Cond:   fused[j].Cond.Or(work[i].Cond),
					XAttrs: fused[j].XAttrs,
					YAttr:  fused[j].YAttr,
				}
				stats.Fusions++
				fusions.Inc()
				if opts.Trace != nil {
					post := cloneCRR(&fused[j])
					opts.Trace(TraceEvent{
						Kind: TraceFusion,
						Pre:  []CRR{pre, cloneCRR(&work[i])},
						Post: &post,
					})
				}
				merged = true
				break
			}
		}
		if !merged {
			fused = append(fused, work[i])
		}
	}
	// Simplify each fused condition once (simplifying on every merge would
	// make fusion cubic in the rule count), then collapse chains of touching
	// windows that share a builtin — fusion of per-part rules produces long
	// [a,b) ∨ [b,c) sequences per model.
	for i := range fused {
		fused[i].Cond = fused[i].Cond.Simplify().MergeAdjacent()
	}

	// Problem 1 condition 2: drop rules implied by another surviving rule.
	keep := make([]bool, len(fused))
	for i := range keep {
		keep[i] = true
	}
	for i := range fused {
		if !keep[i] {
			continue
		}
		for j := range fused {
			if i == j || !keep[j] {
				continue
			}
			if Implies(&fused[i], &fused[j]) {
				keep[j] = false
				stats.Implied++
				implied.Inc()
				if opts.Trace != nil {
					opts.Trace(TraceEvent{
						Kind: TraceImplied,
						Pre:  []CRR{cloneCRR(&fused[i]), cloneCRR(&fused[j])},
					})
				}
			}
		}
	}
	for i := range fused {
		if keep[i] {
			out.Rules = append(out.Rules, fused[i])
		}
	}
	return out, stats, nil
}

// anchoredShift computes the y = δ builtin for rewriting other onto pivot's
// model, evaluated at an anchor point inside the conjunction's region: the
// midpoint of its interval on each X attribute when bounded, or the exact
// Translation solution when no anchor is available. At the anchor,
// δ = f_other(x*) − f_pivot(x*), so the two rules agree exactly there and
// differ elsewhere only by the (tolerated) slope gap times the distance.
func anchoredShift(pivot, other *CRR, tr regress.Translation, conj predicate.Conjunction) predicate.Builtin {
	x := make([]float64, len(pivot.XAttrs))
	anchored := false
	for i, attr := range pivot.XAttrs {
		lo, hi, ok := conj.NumericBounds(attr)
		switch {
		case ok && !math.IsInf(lo, -1) && !math.IsInf(hi, 1):
			x[i] = (lo + hi) / 2
			anchored = true
		case ok && !math.IsInf(lo, -1):
			x[i] = lo
			anchored = true
		case ok && !math.IsInf(hi, 1):
			x[i] = hi
			anchored = true
		}
	}
	if !anchored {
		return translationBuiltin(tr, pivot.XAttrs)
	}
	return predicate.ZeroBuiltin().WithYShift(other.Model.Predict(x) - pivot.Model.Predict(x))
}

// sortCanonical orders rules by a total deterministic key — regression
// signature, encoded model bytes, ρ, condition rendering — so every
// order-sensitive compaction phase sees a permutation-independent input.
// The sort is stable, so rules with fully identical keys keep their
// relative input order (they are interchangeable anyway).
func sortCanonical(rules []CRR) {
	keys := make([]string, len(rules))
	for i := range rules {
		keys[i] = canonicalKey(&rules[i])
	}
	order := make([]int, len(rules))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	sorted := make([]CRR, len(rules))
	for i, j := range order {
		sorted[i] = rules[j]
	}
	copy(rules, sorted)
}

// canonicalKey renders a rule into a comparison key covering every field
// that can influence compaction decisions. Models encode through the codec
// (deterministic JSON) when the family supports it, falling back to the
// family name plus equation rendering otherwise.
func canonicalKey(r *CRR) string {
	var b strings.Builder
	b.WriteString("y")
	b.WriteString(strconv.Itoa(r.YAttr))
	b.WriteString("|x")
	for _, a := range r.XAttrs {
		b.WriteString(strconv.Itoa(a))
		b.WriteByte(',')
	}
	b.WriteByte('|')
	switch {
	case r.Model == nil:
		b.WriteString("nil")
	default:
		if enc, err := regress.EncodeModel(r.Model); err == nil {
			b.Write(enc)
		} else {
			b.WriteString(r.Model.Family())
		}
	}
	b.WriteByte('|')
	b.WriteString(strconv.FormatFloat(r.Rho, 'g', -1, 64))
	b.WriteByte('|')
	b.WriteString(r.Cond.String())
	return b.String()
}

func removeFromList(l *list.List, v int) {
	for e := l.Front(); e != nil; e = e.Next() {
		if e.Value.(int) == v {
			l.Remove(e)
			return
		}
	}
}
