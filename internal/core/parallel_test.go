package core

import (
	"testing"
)

func TestDiscoverParallelInvariants(t *testing.T) {
	rel := piecewiseRelation(800, 0.2, 1)
	cfg := discoverCfg(rel, 0.5)
	res, err := DiscoverParallel(rel, cfg, 4)
	if err != nil {
		t.Fatalf("DiscoverParallel: %v", err)
	}
	if cov := res.Rules.Coverage(rel); cov != 1 {
		t.Errorf("coverage = %v, want 1", cov)
	}
	if !res.Rules.Holds(rel) {
		t.Error("parallel rules violated on training data")
	}
	// Quality matches the sequential result within a generous band.
	seq, err := DiscoverWithConfig(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pr := res.Rules.RMSE(rel)
	sr := seq.Rules.RMSE(rel)
	if pr > 2*sr+0.2 {
		t.Errorf("parallel RMSE %v far above sequential %v", pr, sr)
	}
}

func TestDiscoverParallelOneWorkerIsSequential(t *testing.T) {
	rel := piecewiseRelation(300, 0.2, 2)
	cfg := discoverCfg(rel, 0.5)
	par, err := DiscoverParallel(rel, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := DiscoverWithConfig(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if par.Rules.NumRules() != seq.Rules.NumRules() || par.Stats != seq.Stats {
		t.Errorf("workers=1 diverged from sequential: %+v vs %+v", par.Stats, seq.Stats)
	}
}

func TestDiscoverParallelFuseShared(t *testing.T) {
	rel := piecewiseRelation(800, 0.2, 3)
	cfg := discoverCfg(rel, 0.5)
	cfg.FuseShared = true
	res, err := DiscoverParallel(rel, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rules.NumRules() >= res.Stats.NodesExpanded {
		t.Errorf("FuseShared had no effect: %d rules over %d nodes",
			res.Rules.NumRules(), res.Stats.NodesExpanded)
	}
	if cov := res.Rules.Coverage(rel); cov != 1 {
		t.Errorf("coverage = %v", cov)
	}
	if !res.Rules.Holds(rel) {
		t.Error("fused parallel rules violated")
	}
}

func TestDiscoverParallelValidation(t *testing.T) {
	rel := piecewiseRelation(100, 0.2, 4)
	cfg := discoverCfg(rel, 0.5)
	cfg.Trainer = nil
	if _, err := DiscoverParallel(rel, cfg, 4); err == nil {
		t.Error("nil trainer accepted")
	}
	cfg = discoverCfg(rel, 0.5)
	cfg.XAttrs = []int{1}
	if _, err := DiscoverParallel(rel, cfg, 4); err == nil {
		t.Error("Y ∈ X accepted")
	}
}

func TestDiscoverParallelEmpty(t *testing.T) {
	rel := piecewiseRelation(0, 0.2, 5)
	cfg := DiscoverConfig{XAttrs: []int{0}, YAttr: 1, RhoM: 1, Trainer: discoverCfg(piecewiseRelation(10, 0.1, 5), 0.5).Trainer}
	res, err := DiscoverParallel(rel, cfg, 4)
	if err != nil || res.Rules.NumRules() != 0 {
		t.Errorf("empty parallel: %d rules, %v", res.Rules.NumRules(), err)
	}
}

func TestDiscoverParallelManyWorkersRace(t *testing.T) {
	// Stress the pool with more workers than work; run with -race in CI.
	rel := piecewiseRelation(600, 0.2, 6)
	cfg := discoverCfg(rel, 0.5)
	for trial := 0; trial < 3; trial++ {
		res, err := DiscoverParallel(rel, cfg, 16)
		if err != nil {
			t.Fatal(err)
		}
		if cov := res.Rules.Coverage(rel); cov != 1 {
			t.Fatalf("trial %d coverage = %v", trial, cov)
		}
	}
}
