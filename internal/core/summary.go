package core

import (
	"fmt"

	"github.com/crrlab/crr/internal/dataset"
)

// Summary aggregates a rule set's shape: how many rules, how many distinct
// models behind them (the quantity model sharing minimizes), how the DNF
// conditions are built, and the bias spread.
type Summary struct {
	Rules        int
	Models       int
	Conjunctions int
	// Translated counts conjunctions carrying non-zero builtins (windows
	// served by a shifted model).
	Translated int
	// PredsPerConj is the mean predicate count per conjunction.
	PredsPerConj float64
	MinRho       float64
	MaxRho       float64
}

// Summarize computes the Summary of s. An empty set returns zeros.
func Summarize(s *RuleSet) Summary {
	out := Summary{Rules: s.NumRules(), Models: s.NumModels()}
	preds := 0
	for i := range s.Rules {
		r := &s.Rules[i]
		if i == 0 || r.Rho < out.MinRho {
			out.MinRho = r.Rho
		}
		if r.Rho > out.MaxRho {
			out.MaxRho = r.Rho
		}
		for _, c := range r.Cond.Conjs {
			out.Conjunctions++
			preds += len(c.Preds)
			if !c.Builtin.IsZero() {
				out.Translated++
			}
		}
	}
	if out.Conjunctions > 0 {
		out.PredsPerConj = float64(preds) / float64(out.Conjunctions)
	}
	return out
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("%d rules over %d models; %d condition windows (%d translated), %.1f predicates/window, ρ ∈ [%.4g, %.4g]",
		s.Rules, s.Models, s.Conjunctions, s.Translated, s.PredsPerConj, s.MinRho, s.MaxRho)
}

// Diff measures prediction agreement between two rule sets on a relation:
// the fraction of tuples where both cover and agree within tol, plus the
// disagreement breakdown. It is the regression-test primitive for rule-set
// transformations (compaction, pruning, maintenance, persistence).
type Diff struct {
	Tuples int
	// Agree counts tuples where coverage matches and, if covered, the
	// predictions differ by at most the tolerance.
	Agree int
	// CoverageMismatch counts tuples covered by exactly one set.
	CoverageMismatch int
	// PredictionMismatch counts tuples covered by both with predictions
	// further apart than the tolerance.
	PredictionMismatch int
	// MaxDelta is the largest prediction gap over commonly covered tuples.
	MaxDelta float64
}

// CompareOn evaluates both rule sets tuple-by-tuple.
func CompareOn(rel *dataset.Relation, a, b *RuleSet, tol float64) Diff {
	var d Diff
	for _, t := range rel.Tuples {
		d.Tuples++
		pa, oka := a.Predict(t)
		pb, okb := b.Predict(t)
		switch {
		case oka != okb:
			d.CoverageMismatch++
		case !oka:
			d.Agree++
		default:
			delta := pa - pb
			if delta < 0 {
				delta = -delta
			}
			if delta > d.MaxDelta {
				d.MaxDelta = delta
			}
			if delta <= tol {
				d.Agree++
			} else {
				d.PredictionMismatch++
			}
		}
	}
	return d
}

// Equivalent reports whether the diff found no mismatches.
func (d Diff) Equivalent() bool {
	return d.CoverageMismatch == 0 && d.PredictionMismatch == 0
}
