package core

import (
	"context"
	"math"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
)

// Incremental maintenance: rather than re-running discovery over the whole
// database when tuples arrive, classify each new tuple against the existing
// rule set — already explained tuples need nothing, tuples explainable by
// widening a rule's bias within ρ_M are absorbed by Generalization, and only
// the remainder goes through Algorithm 1 (seeded with the existing models so
// sharing still applies).

// MaintainStats reports how the new tuples were absorbed.
type MaintainStats struct {
	// Satisfied tuples were covered by a rule and within its bias.
	Satisfied int
	// Widened tuples were covered but beyond the rule's ρ, within ρ_M; the
	// covering rule's bias was widened (Generalization, Proposition 4).
	Widened int
	// Rediscovered tuples were uncovered or beyond ρ_M and went through
	// discovery.
	Rediscovered int
	// Refined counts existing rules whose conditions were tightened
	// (Induction, Proposition 2) to exclude a separable new regime that
	// violated them.
	Refined int
	// Conflicts counts rules still violated by new tuples that could not be
	// separated by a boundary predicate; the caller should re-discover from
	// scratch when this is non-zero.
	Conflicts int
	// NewRules is the number of rules discovery added.
	NewRules int
	// Discover carries the inner discovery statistics.
	Discover DiscoverStats
}

// Maintain ingests the tuples of rel at positions newIdx into rule set s and
// returns the updated set (the input set is not modified). cfg supplies the
// discovery parameters for the tuples that need new rules; cfg.SeedModels is
// overwritten with the existing rules' models. ctx cancels the inner
// discovery at its queue-pop granularity.
func Maintain(ctx context.Context, rel *dataset.Relation, s *RuleSet, newIdx []int, cfg DiscoverConfig) (*RuleSet, MaintainStats, error) {
	var st MaintainStats
	out := &RuleSet{
		Schema:   s.Schema,
		XAttrs:   append([]int(nil), s.XAttrs...),
		YAttr:    s.YAttr,
		Fallback: s.Fallback,
	}
	out.Rules = make([]CRR, len(s.Rules))
	for i, r := range s.Rules {
		out.Rules[i] = r
		out.Rules[i].Cond = r.Cond.Clone()
	}

	var retrain []int
	for _, ti := range newIdx {
		t := rel.Tuples[ti]
		if t[s.YAttr].Null {
			continue // nothing to check; imputation handles null targets
		}
		switch classifyTuple(out, t, cfg.RhoM) {
		case tupleSatisfied:
			st.Satisfied++
		case tupleWidened:
			st.Widened++
		default:
			retrain = append(retrain, ti)
		}
	}
	st.Rediscovered = len(retrain)
	if len(retrain) == 0 {
		return out, st, nil
	}

	// Old rules may still cover (and be violated by) the retrain tuples —
	// e.g. an open-ended window claiming a brand-new regime. Tighten such
	// rules' conditions to exclude the new region where a boundary predicate
	// separates old satisfied data from the violators; that refinement is
	// sound by Induction.
	refineViolatedRules(rel, out, retrain, &st)

	sub := dataset.NewRelation(rel.Schema)
	for _, ti := range retrain {
		sub.Tuples = append(sub.Tuples, rel.Tuples[ti])
	}
	cfg.SeedModels = nil
	for i := range out.Rules {
		cfg.SeedModels = append(cfg.SeedModels, out.Rules[i].Model)
	}
	res, err := discoverFor(ctx, sub, cfg)
	if err != nil {
		return nil, st, err
	}
	// Conditions discovered on the retrain sub-relation can be over-general
	// (up to ⊤ when one model fits all retrain tuples) and would then claim
	// old tuples they were never checked against. Guard every new rule by
	// the retrain tuples' bounding box on the primary X attribute —
	// a sound Induction refinement that keeps all retrain tuples covered.
	guardNewRules(rel, res.Rules, retrain)
	st.Discover = res.Stats
	st.NewRules = res.Rules.NumRules()
	out.Rules = append(out.Rules, res.Rules.Rules...)
	out.Invalidate()
	return out, st, nil
}

// guardNewRules conjoins the retrain bounding box on the first X attribute
// to every conjunction of the freshly discovered rules.
func guardNewRules(rel *dataset.Relation, s *RuleSet, retrain []int) {
	if len(s.XAttrs) == 0 || len(retrain) == 0 {
		return
	}
	attr := s.XAttrs[0]
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, ti := range retrain {
		v := rel.Tuples[ti][attr]
		if v.Null {
			continue
		}
		if v.Num < lo {
			lo = v.Num
		}
		if v.Num > hi {
			hi = v.Num
		}
	}
	if math.IsInf(lo, 1) {
		return
	}
	for ri := range s.Rules {
		for ci := range s.Rules[ri].Cond.Conjs {
			c := s.Rules[ri].Cond.Conjs[ci].
				And(predicate.NumPred(attr, predicate.Ge, lo)).
				And(predicate.NumPred(attr, predicate.Le, hi))
			s.Rules[ri].Cond.Conjs[ci] = c.Normalize()
		}
	}
	s.Invalidate()
}

// refineViolatedRules tightens the conditions of rules that the retrain
// tuples violate beyond repair. For each such rule, the covered tuples split
// into satisfied ones (the rule's legitimate part) and violators; when a
// threshold on the primary X attribute separates the two groups, the
// separating predicate is conjoined to every conjunction of the rule's
// condition, excluding the violators while keeping every satisfied tuple.
func refineViolatedRules(rel *dataset.Relation, s *RuleSet, retrain []int, st *MaintainStats) {
	if len(s.XAttrs) == 0 {
		return
	}
	attr := s.XAttrs[0]
	for ri := range s.Rules {
		r := &s.Rules[ri]
		// Violating retrain tuples covered by this rule.
		violLo, violHi := math.Inf(1), math.Inf(-1)
		nViol := 0
		for _, ti := range retrain {
			t := rel.Tuples[ti]
			if t[s.YAttr].Null || t[attr].Null {
				continue
			}
			pred, ok := r.Predict(t)
			if !ok {
				continue
			}
			if math.Abs(t[s.YAttr].Num-pred) > r.Rho+satSlack {
				v := t[attr].Num
				if v < violLo {
					violLo = v
				}
				if v > violHi {
					violHi = v
				}
				nViol++
			}
		}
		if nViol == 0 {
			continue
		}
		// The rule's satisfied span on the same attribute.
		satLo, satHi := math.Inf(1), math.Inf(-1)
		for _, t := range rel.Tuples {
			if t[s.YAttr].Null || t[attr].Null {
				continue
			}
			pred, ok := r.Predict(t)
			if !ok {
				continue
			}
			if math.Abs(t[s.YAttr].Num-pred) <= r.Rho+satSlack {
				v := t[attr].Num
				if v < satLo {
					satLo = v
				}
				if v > satHi {
					satHi = v
				}
			}
		}
		var bound predicate.Predicate
		switch {
		case satHi < violLo:
			bound = predicate.NumPred(attr, predicate.Le, satHi)
		case violHi < satLo:
			bound = predicate.NumPred(attr, predicate.Ge, satLo)
		default:
			st.Conflicts++
			continue
		}
		for ci := range r.Cond.Conjs {
			r.Cond.Conjs[ci] = r.Cond.Conjs[ci].And(bound).Normalize()
		}
		st.Refined++
	}
	s.Invalidate()
}

type tupleClass int

const (
	tupleSatisfied tupleClass = iota
	tupleWidened
	tupleNeedsRules
)

// classifyTuple checks t against EVERY covering rule of s — the CRR
// semantics are per-rule, so a tuple satisfied by one covering rule can
// still violate another. Satisfied means every covering rule holds; widened
// means every covering rule can be brought to hold by raising its ρ within
// ρ_M (applied in place — sound by Generalization); anything else needs new
// rules and condition refinement.
func classifyTuple(s *RuleSet, t dataset.Tuple, rhoM float64) tupleClass {
	covered := false
	type widen struct {
		rule int
		rho  float64
	}
	var widens []widen
	for ri := range s.Rules {
		r := &s.Rules[ri]
		pred, ok := r.Predict(t)
		if !ok {
			continue
		}
		covered = true
		dev := math.Abs(t[s.YAttr].Num - pred)
		if dev <= r.Rho+satSlack {
			continue
		}
		if dev > rhoM {
			return tupleNeedsRules // some covering rule is beyond repair
		}
		widens = append(widens, widen{ri, dev})
	}
	if !covered {
		return tupleNeedsRules
	}
	if len(widens) == 0 {
		return tupleSatisfied
	}
	for _, w := range widens {
		if w.rho > s.Rules[w.rule].Rho {
			s.Rules[w.rule].Rho = w.rho
		}
	}
	return tupleWidened
}
