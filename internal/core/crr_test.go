package core

import (
	"math"
	"testing"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

// lineSchema: X (numeric), Y (numeric), Tag (categorical).
func lineSchema() *dataset.Schema {
	return dataset.MustSchema(
		dataset.Attribute{Name: "X", Kind: dataset.Numeric},
		dataset.Attribute{Name: "Y", Kind: dataset.Numeric},
		dataset.Attribute{Name: "Tag", Kind: dataset.Categorical},
	)
}

func lineTuple(x, y float64, tag string) dataset.Tuple {
	return dataset.Tuple{dataset.Num(x), dataset.Num(y), dataset.Str(tag)}
}

// ruleOn builds φ : (f, ρ, ℂ) regressing Y (attr 1) on X (attr 0).
func ruleOn(f regress.Model, rho float64, cond predicate.DNF) CRR {
	return CRR{Model: f, Rho: rho, Cond: cond, XAttrs: []int{0}, YAttr: 1}
}

func TestCRRSemantics(t *testing.T) {
	// f(x) = 2x, ρ = 0.5, ℂ = (X ≥ 0).
	phi := ruleOn(regress.NewLinear(0, 2), 0.5, predicate.NewDNF(
		predicate.NewConjunction(predicate.NumPred(0, predicate.Ge, 0))))
	if !phi.Sat(lineTuple(1, 2.3, "a")) {
		t.Error("tuple within ρ rejected")
	}
	if phi.Sat(lineTuple(1, 3.0, "a")) {
		t.Error("tuple outside ρ accepted")
	}
	// Vacuous satisfaction when t ⊭ ℂ.
	if !phi.Sat(lineTuple(-1, 99, "a")) {
		t.Error("uncovered tuple must satisfy vacuously")
	}
}

func TestCRRSemanticsWithBuiltins(t *testing.T) {
	// f(x) = 2x with built-in x = 3, y = 5: prediction is f(x+3)+5 = 2x+11.
	conj := predicate.NewConjunction(predicate.NumPred(0, predicate.Ge, 0))
	conj.Builtin = conj.Builtin.WithXShift(0, 3).WithYShift(5)
	phi := ruleOn(regress.NewLinear(0, 2), 0.1, predicate.NewDNF(conj))
	pred, ok := phi.Predict(lineTuple(1, 0, "a"))
	if !ok || pred != 13 {
		t.Fatalf("Predict = %v, %v; want 13", pred, ok)
	}
	if !phi.Sat(lineTuple(1, 13.05, "a")) {
		t.Error("shifted prediction within ρ rejected")
	}
	if phi.Sat(lineTuple(1, 2, "a")) {
		t.Error("unshifted value accepted under shifted rule")
	}
}

func TestCRRBuiltinPerConjunction(t *testing.T) {
	// Two disjuncts with different δ, the φ₃ pattern of Example 2.
	c1 := predicate.NewConjunction(predicate.NumPred(0, predicate.Lt, 10))
	c2 := predicate.NewConjunction(predicate.NumPred(0, predicate.Ge, 10))
	c2.Builtin = c2.Builtin.WithYShift(100)
	phi := ruleOn(regress.NewLinear(0, 1), 0.1, predicate.NewDNF(c1, c2))
	if p, _ := phi.Predict(lineTuple(5, 0, "a")); p != 5 {
		t.Errorf("first-disjunct prediction = %v, want 5", p)
	}
	if p, _ := phi.Predict(lineTuple(20, 0, "a")); p != 120 {
		t.Errorf("second-disjunct prediction = %v, want 120", p)
	}
}

func TestCRRPredictNullX(t *testing.T) {
	phi := ruleOn(regress.NewLinear(0, 1), 1, predicate.NewDNF(predicate.NewConjunction()))
	_, ok := phi.Predict(dataset.Tuple{dataset.Null(), dataset.Num(1), dataset.Str("a")})
	if ok {
		t.Error("Predict succeeded with a null X cell")
	}
}

func TestCRRSatNullY(t *testing.T) {
	phi := ruleOn(regress.NewLinear(0, 1), 0.1, predicate.NewDNF(predicate.NewConjunction()))
	if !phi.Sat(dataset.Tuple{dataset.Num(1), dataset.Null(), dataset.Str("a")}) {
		t.Error("null target should satisfy (unverifiable)")
	}
}

func TestCRRTrivial(t *testing.T) {
	phi := CRR{Model: regress.NewLinear(0, 1), XAttrs: []int{1}, YAttr: 1}
	if !phi.Trivial() {
		t.Error("Y ∈ X not flagged trivial (Reflexivity)")
	}
	phi.XAttrs = []int{0}
	if phi.Trivial() {
		t.Error("Y ∉ X flagged trivial")
	}
}

func TestRuleSetPredictFirstMatchAndFallback(t *testing.T) {
	low := ruleOn(regress.NewConstant(1, 1), 0.1, predicate.NewDNF(
		predicate.NewConjunction(predicate.NumPred(0, predicate.Lt, 0))))
	high := ruleOn(regress.NewConstant(2, 1), 0.1, predicate.NewDNF(
		predicate.NewConjunction(predicate.NumPred(0, predicate.Gt, 10))))
	rs := &RuleSet{Schema: lineSchema(), XAttrs: []int{0}, YAttr: 1, Rules: []CRR{low, high}, Fallback: 7}
	if p, ok := rs.Predict(lineTuple(-5, 0, "a")); !ok || p != 1 {
		t.Errorf("low rule predict = %v, %v", p, ok)
	}
	if p, ok := rs.Predict(lineTuple(20, 0, "a")); !ok || p != 2 {
		t.Errorf("high rule predict = %v, %v", p, ok)
	}
	if p, ok := rs.Predict(lineTuple(5, 0, "a")); ok || p != 7 {
		t.Errorf("fallback predict = %v, %v", p, ok)
	}
}

func TestRuleSetCoverageAndRMSE(t *testing.T) {
	phi := ruleOn(regress.NewLinear(0, 2), 0.5, predicate.NewDNF(
		predicate.NewConjunction(predicate.NumPred(0, predicate.Ge, 0))))
	rs := &RuleSet{Schema: lineSchema(), XAttrs: []int{0}, YAttr: 1, Rules: []CRR{phi}, Fallback: 0}
	rel := dataset.NewRelation(lineSchema())
	rel.MustAppend(lineTuple(1, 2, "a"))  // exact
	rel.MustAppend(lineTuple(2, 5, "a"))  // error 1
	rel.MustAppend(lineTuple(-1, 0, "a")) // uncovered → fallback 0, error 0
	if c := rs.Coverage(rel); math.Abs(c-2.0/3) > 1e-12 {
		t.Errorf("Coverage = %v, want 2/3", c)
	}
	want := math.Sqrt((0 + 1 + 0) / 3.0)
	if r := rs.RMSE(rel); math.Abs(r-want) > 1e-12 {
		t.Errorf("RMSE = %v, want %v", r, want)
	}
	empty := dataset.NewRelation(lineSchema())
	if rs.RMSE(empty) != 0 || rs.Coverage(empty) != 1 {
		t.Error("empty relation RMSE/Coverage defaults wrong")
	}
}

func TestRuleSetNumModels(t *testing.T) {
	f := regress.NewLinear(0, 2)
	g := regress.NewLinear(5, 2)
	cond := predicate.NewDNF(predicate.NewConjunction())
	rs := &RuleSet{Rules: []CRR{
		ruleOn(f, 1, cond), ruleOn(f, 1, cond), ruleOn(g, 1, cond),
	}}
	if n := rs.NumModels(); n != 2 {
		t.Errorf("NumModels = %d, want 2", n)
	}
	if n := rs.NumRules(); n != 3 {
		t.Errorf("NumRules = %d, want 3", n)
	}
}

func TestRuleSetHolds(t *testing.T) {
	phi := ruleOn(regress.NewLinear(0, 2), 0.5, predicate.NewDNF(
		predicate.NewConjunction(predicate.NumPred(0, predicate.Ge, 0))))
	rs := &RuleSet{Schema: lineSchema(), XAttrs: []int{0}, YAttr: 1, Rules: []CRR{phi}}
	rel := dataset.NewRelation(lineSchema())
	rel.MustAppend(lineTuple(1, 2.2, "a"))
	if !rs.Holds(rel) {
		t.Error("satisfying relation reported as violating")
	}
	rel.MustAppend(lineTuple(1, 4, "a"))
	if rs.Holds(rel) {
		t.Error("violating relation reported as holding")
	}
}

func TestFeatureRows(t *testing.T) {
	rel := dataset.NewRelation(lineSchema())
	rel.MustAppend(lineTuple(1, 10, "a"))
	rel.MustAppend(dataset.Tuple{dataset.Null(), dataset.Num(20), dataset.Str("a")})
	rel.MustAppend(dataset.Tuple{dataset.Num(3), dataset.Null(), dataset.Str("a")})
	rel.MustAppend(lineTuple(4, 40, "a"))
	x, y, kept := FeatureRows(rel, []int{0, 1, 2, 3}, []int{0}, 1)
	if len(x) != 2 || len(y) != 2 {
		t.Fatalf("FeatureRows kept %d rows, want 2", len(x))
	}
	if x[0][0] != 1 || y[0] != 10 || x[1][0] != 4 || y[1] != 40 {
		t.Errorf("FeatureRows content: %v %v", x, y)
	}
	if len(kept) != 2 || kept[0] != 0 || kept[1] != 3 {
		t.Errorf("kept = %v, want [0 3]", kept)
	}
}

func TestCRRStringAndFormat(t *testing.T) {
	phi := ruleOn(regress.NewLinear(0, 2), 0.5, predicate.NewDNF(
		predicate.NewConjunction(predicate.NumPred(0, predicate.Ge, 0))))
	if phi.String() == "" {
		t.Error("empty String")
	}
	if s := phi.Format(lineSchema()); s == "" {
		t.Error("empty Format")
	}
}
