package core

import (
	"math"

	"github.com/crrlab/crr/internal/dataset"
)

// CRRs are integrity constraints (§II-A): a tuple covered by a rule whose
// observed target strays beyond ρ from the (shifted) prediction violates the
// rule. This file detects violations and proposes repairs — the
// constraint-side counterpart of imputation.

// Violation records one tuple breaking one rule.
type Violation struct {
	// TupleIndex is the position of the violating tuple in the checked
	// relation.
	TupleIndex int
	// RuleIndex is the violated rule's position in the rule set.
	RuleIndex int
	// Observed is the tuple's target value.
	Observed float64
	// Predicted is the rule's (shifted) prediction f(t.X + x) + y.
	Predicted float64
	// Excess is |Observed − Predicted| − ρ, how far beyond the allowed bias
	// the tuple sits (> 0 by construction).
	Excess float64
}

// Violations returns every (tuple, rule) violation in rel, ordered by tuple
// then rule. Tuples with a null target or outside every condition violate
// nothing. Detection runs columnar-first: the relation's ColumnSet is built
// once and every rule condition narrows a selection vector with vectorized
// filters (ViolationsColumns). ViolationsRows is the tuple-at-a-time
// reference implementation producing bitwise-identical output.
func Violations(rel *dataset.Relation, s *RuleSet) []Violation {
	return ViolationsColumns(dataset.NewColumnSetAttrs(rel, s.neededAttrs(s.YAttr)), s)
}

// ViolationsRows is the tuple-at-a-time reference implementation of
// Violations; the property tests assert ViolationsColumns matches it.
func ViolationsRows(rel *dataset.Relation, s *RuleSet) []Violation {
	var out []Violation
	for ti, t := range rel.Tuples {
		if t[s.YAttr].Null {
			continue
		}
		for ri := range s.Rules {
			r := &s.Rules[ri]
			pred, ok := r.Predict(t)
			if !ok {
				continue
			}
			if dev := math.Abs(t[s.YAttr].Num - pred); dev > r.Rho+satSlack {
				out = append(out, Violation{
					TupleIndex: ti,
					RuleIndex:  ri,
					Observed:   t[s.YAttr].Num,
					Predicted:  pred,
					Excess:     dev - r.Rho,
				})
			}
		}
	}
	return out
}

// Repair proposes a repaired target value for a violating tuple: the
// prediction of the first rule covering it (the value that makes every
// covering rule of that model satisfied). ok is false when no rule covers
// the tuple.
func Repair(t dataset.Tuple, s *RuleSet) (value float64, ok bool) {
	return s.Predict(t)
}

// HoldsAll reports whether rel has no violations; it is equivalent to
// len(Violations(rel, s)) == 0 but stops at the first hit.
func HoldsAll(rel *dataset.Relation, s *RuleSet) bool {
	for _, t := range rel.Tuples {
		if t[s.YAttr].Null {
			continue
		}
		for ri := range s.Rules {
			r := &s.Rules[ri]
			pred, ok := r.Predict(t)
			if !ok {
				continue
			}
			if math.Abs(t[s.YAttr].Num-pred) > r.Rho+satSlack {
				return false
			}
		}
	}
	return true
}
