package core

import (
	"math"
	"strings"
	"testing"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

func explainRuleSet() *RuleSet {
	// Two rules: f(x)=2x on x≥0 and a second with a y=10 builtin on x≥5, so
	// one tuple can match both.
	c2 := predicate.NewConjunction(predicate.NumPred(0, predicate.Ge, 5))
	c2.Builtin = c2.Builtin.WithYShift(10)
	return &RuleSet{
		Schema: lineSchema(), XAttrs: []int{0}, YAttr: 1, Fallback: 7,
		Rules: []CRR{
			ruleOn(regress.NewLinear(0, 2), 0.5, predicate.NewDNF(
				predicate.NewConjunction(predicate.NumPred(0, predicate.Ge, 0)))),
			ruleOn(regress.NewLinear(0, 2), 0.5, predicate.NewDNF(c2)),
		},
	}
}

func TestExplainCoveredTuple(t *testing.T) {
	rs := explainRuleSet()
	e := Explain(rs, lineTuple(6, 12.2, "a"))
	if !e.Covered {
		t.Fatal("covered tuple reported uncovered")
	}
	if len(e.Matches) != 2 {
		t.Fatalf("matches = %d, want 2", len(e.Matches))
	}
	// First match drives the prediction: rule 0, f(6)=12.
	if e.Prediction != 12 || e.Matches[0].RuleIndex != 0 {
		t.Errorf("prediction %v via rule %d", e.Prediction, e.Matches[0].RuleIndex)
	}
	if !e.Matches[0].Satisfied {
		t.Error("rule 0 should be satisfied (|12.2−12| ≤ 0.5)")
	}
	// Second rule predicts f(6)+10 = 22 → deviation 9.8 → violated.
	if e.Matches[1].Prediction != 22 || e.Matches[1].Satisfied {
		t.Errorf("rule 1: pred %v satisfied %v", e.Matches[1].Prediction, e.Matches[1].Satisfied)
	}
	out := e.Format(rs)
	if !strings.Contains(out, "VIOLATED") || !strings.Contains(out, "y=10") {
		t.Errorf("Format missing detail:\n%s", out)
	}
}

func TestExplainUncovered(t *testing.T) {
	rs := explainRuleSet()
	e := Explain(rs, lineTuple(-3, 0, "a"))
	if e.Covered || e.Prediction != 7 {
		t.Errorf("uncovered explanation: %+v", e)
	}
	if !strings.Contains(e.Format(rs), "uncovered") {
		t.Error("Format missing uncovered notice")
	}
}

func TestExplainNullTarget(t *testing.T) {
	rs := explainRuleSet()
	e := Explain(rs, dataset.Tuple{dataset.Num(2), dataset.Null(), dataset.Str("a")})
	if !e.Covered || len(e.Matches) != 1 {
		t.Fatalf("explanation: %+v", e)
	}
	if !math.IsNaN(e.Matches[0].Deviation) || !e.Matches[0].Satisfied {
		t.Error("null target should have NaN deviation and count satisfied")
	}
}

func TestExplainAgreesWithPredictAndViolations(t *testing.T) {
	rel := piecewiseRelation(300, 0.2, 13)
	res, err := DiscoverWithConfig(rel, discoverCfg(rel, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range rel.Tuples {
		e := Explain(res.Rules, tp)
		p, ok := res.Rules.Predict(tp)
		if e.Covered != ok || (ok && absDiff(e.Prediction, p) > 1e-12) {
			t.Fatalf("Explain disagrees with Predict: %v/%v vs %v/%v", e.Prediction, e.Covered, p, ok)
		}
	}
}
