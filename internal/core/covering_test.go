package core

import (
	"context"
	"math/rand"
	"testing"

	"github.com/crrlab/crr/internal/dataset"
)

// coveringScan is the linear-scan reference: for every rule, its first
// conjunction satisfying t, requiring non-null X cells.
func coveringScan(s *RuleSet, t dataset.Tuple) []CoveringEntry {
	var out []CoveringEntry
rules:
	for ri := range s.Rules {
		rule := &s.Rules[ri]
		for _, attr := range rule.XAttrs {
			if t[attr].Null {
				continue rules
			}
		}
		for ci := range rule.Cond.Conjs {
			if rule.Cond.Conjs[ci].Sat(t) {
				out = append(out, CoveringEntry{Rule: ri, Conj: ci})
				continue rules
			}
		}
	}
	return out
}

// TestCoveringMatchesLinearScan: the index-driven Covering walk equals the
// reference scan on every tuple of a discovered rule set, nulls included.
func TestCoveringMatchesLinearScan(t *testing.T) {
	rel := dataset.GenerateTax(dataset.TaxConfig{Rows: 600, Seed: 5, Noise: 20})
	salary := rel.Schema.MustIndex("Salary")
	tax := rel.Schema.MustIndex("Tax")
	res, err := Discover(context.Background(), rel,
		WithSignature([]int{salary}, tax), WithMaxBias(60))
	if err != nil {
		t.Fatal(err)
	}
	rules := res.Rules
	if rules.NumRules() < 2 {
		t.Fatalf("want several rules, got %d", rules.NumRules())
	}
	var buf []CoveringEntry
	check := func(tp dataset.Tuple) {
		t.Helper()
		buf = rules.Covering(tp, buf)
		want := coveringScan(rules, tp)
		if len(buf) != len(want) {
			t.Fatalf("covering count %d vs %d for %v", len(buf), len(want), tp)
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("covering[%d] = %+v vs %+v for %v", i, buf[i], want[i], tp)
			}
		}
	}
	for _, tp := range rel.Tuples {
		check(tp)
	}
	// Null X and null condition cells.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		tp := rel.Tuples[rng.Intn(rel.Len())].Clone()
		tp[salary] = dataset.Null()
		check(tp)
	}
	// Out-of-grid numeric values exercise the clamped bucket edges.
	for _, v := range []float64{-1e12, 1e12} {
		tp := rel.Tuples[0].Clone()
		tp[salary] = dataset.Num(v)
		check(tp)
	}
}

// TestCoveringRecyclesBuffer: the dst contract — recycled when capacity
// allows, no aliasing surprises.
func TestCoveringRecyclesBuffer(t *testing.T) {
	rel := dataset.GenerateTax(dataset.TaxConfig{Rows: 300, Seed: 1, Noise: 20})
	salary := rel.Schema.MustIndex("Salary")
	tax := rel.Schema.MustIndex("Tax")
	res, err := Discover(context.Background(), rel,
		WithSignature([]int{salary}, tax), WithMaxBias(60))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]CoveringEntry, 0, 8)
	out := res.Rules.Covering(rel.Tuples[0], buf)
	if cap(out) == 8 && len(out) <= 8 && &out[:1][0] != &buf[:1][0] {
		t.Fatal("dst not recycled despite sufficient capacity")
	}
}
