package core_test

import (
	"context"
	"fmt"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

// ExampleDiscover mines rules over a two-regime dataset: a constant plateau
// and a line, both exact, so discovery needs exactly two rules.
func ExampleDiscover() {
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "X", Kind: dataset.Numeric},
		dataset.Attribute{Name: "Y", Kind: dataset.Numeric},
	)
	rel := dataset.NewRelation(schema)
	for i := 0; i < 100; i++ {
		x := float64(i)
		y := 5.0 // plateau
		if x >= 50 {
			y = 2 * x // line
		}
		rel.MustAppend(dataset.Tuple{dataset.Num(x), dataset.Num(y)})
	}
	res, err := core.Discover(context.Background(), rel,
		core.WithSignature([]int{0}, 1),
		core.WithMaxBias(0.5),
		core.WithTrainer(regress.LinearTrainer{}),
	)
	if err != nil {
		panic(err)
	}
	fmt.Println("rules:", res.Rules.NumRules())
	fmt.Println("coverage:", res.Rules.Coverage(rel))
	pred, _ := res.Rules.Predict(dataset.Tuple{dataset.Num(70), dataset.Null()})
	fmt.Printf("f(70) = %.0f\n", pred)
	// Output:
	// rules: 2
	// coverage: 1
	// f(70) = 140
}

// ExampleTranslate reproduces the paper's §IV example: the Iowa tax formula
// f5(Salary) = 0.04·Salary − 230 is a translation of f4(Salary) =
// 0.04·Salary, so the two rules merge into one with a y = −230 builtin.
func ExampleTranslate() {
	f4 := regress.NewLinear(0, 0.04)
	f5 := regress.NewLinear(-230, 0.04)
	phi4 := core.CRR{
		Model: f4, Rho: 1,
		Cond:   predicate.NewDNF(predicate.NewConjunction(predicate.StrPred(1, "TX"))),
		XAttrs: []int{0}, YAttr: 2,
	}
	phi5 := core.CRR{
		Model: f5, Rho: 1,
		Cond:   predicate.NewDNF(predicate.NewConjunction(predicate.StrPred(1, "IA"))),
		XAttrs: []int{0}, YAttr: 2,
	}
	phi3, err := core.Translate(&phi4, &phi5)
	if err != nil {
		panic(err)
	}
	fmt.Println("disjuncts:", len(phi3.Cond.Conjs))
	fmt.Println("δ for IA:", phi3.Cond.Conjs[1].Builtin.YShift)
	// Output:
	// disjuncts: 2
	// δ for IA: -230
}

// ExampleCompact shows Algorithm 2 merging three rules whose models share a
// slope into a single DNF rule.
func ExampleCompact() {
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "X", Kind: dataset.Numeric},
		dataset.Attribute{Name: "Y", Kind: dataset.Numeric},
	)
	window := func(lo, hi float64) predicate.DNF {
		return predicate.NewDNF(predicate.NewConjunction(
			predicate.NumPred(0, predicate.Ge, lo),
			predicate.NumPred(0, predicate.Lt, hi),
		))
	}
	rs := &core.RuleSet{
		Schema: schema, XAttrs: []int{0}, YAttr: 1,
		Rules: []core.CRR{
			{Model: regress.NewLinear(0, 2), Rho: 0.5, Cond: window(0, 10), XAttrs: []int{0}, YAttr: 1},
			{Model: regress.NewLinear(30, 2), Rho: 0.5, Cond: window(10, 20), XAttrs: []int{0}, YAttr: 1},
			{Model: regress.NewLinear(70, 2), Rho: 0.5, Cond: window(20, 30), XAttrs: []int{0}, YAttr: 1},
		},
	}
	compacted, stats := core.Compact(rs)
	fmt.Println("rules:", compacted.NumRules())
	fmt.Println("translations:", stats.Translations)
	fmt.Println("fusions:", stats.Fusions)
	// Output:
	// rules: 1
	// translations: 2
	// fusions: 2
}
