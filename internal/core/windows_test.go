package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

func deltaRule(deltas ...float64) *RuleSet {
	// One rule with len(deltas) touching windows of width 10, each carrying
	// its y = δᵢ.
	var conjs []predicate.Conjunction
	for i, d := range deltas {
		lo := float64(i * 10)
		c := predicate.NewConjunction(
			predicate.NumPred(0, predicate.Ge, lo),
			predicate.NumPred(0, predicate.Lt, lo+10),
		)
		if d != 0 {
			c.Builtin = c.Builtin.WithYShift(d)
		}
		conjs = append(conjs, c)
	}
	return &RuleSet{
		Schema: lineSchema(), XAttrs: []int{0}, YAttr: 1,
		Rules: []CRR{{
			Model: regress.NewLinear(0, 2), Rho: 0.5,
			Cond:   predicate.NewDNF(conjs...),
			XAttrs: []int{0}, YAttr: 1,
		}},
	}
}

func TestMergeWindowsCollapsesNearDeltas(t *testing.T) {
	rs := deltaRule(0, 0.01, 0.02, 0.015)
	out := MergeWindows(rs, 0.05)
	if got := len(out.Rules[0].Cond.Conjs); got != 1 {
		t.Fatalf("windows = %d, want 1: %v", got, out.Rules[0].Cond)
	}
	// ρ widened by half the δ spread (0.02/2 = 0.01).
	if absDiff(out.Rules[0].Rho, 0.5+0.01) > 1e-12 {
		t.Errorf("ρ = %v, want 0.51", out.Rules[0].Rho)
	}
	// The merged δ is the spread midpoint.
	if got := out.Rules[0].Cond.Conjs[0].Builtin.YShift; absDiff(got, 0.01) > 1e-12 {
		t.Errorf("merged δ = %v, want 0.01", got)
	}
	// Input untouched.
	if len(rs.Rules[0].Cond.Conjs) != 4 || rs.Rules[0].Rho != 0.5 {
		t.Error("MergeWindows mutated its input")
	}
}

func TestMergeWindowsRespectsTolerance(t *testing.T) {
	rs := deltaRule(0, 10) // far-apart shifts
	out := MergeWindows(rs, 0.05)
	if got := len(out.Rules[0].Cond.Conjs); got != 2 {
		t.Fatalf("windows = %d, want 2 (δ spread 10 > tol)", got)
	}
	if out.Rules[0].Rho != 0.5 {
		t.Errorf("ρ changed without a merge: %v", out.Rules[0].Rho)
	}
}

func TestMergeWindowsSoundness(t *testing.T) {
	// Every tuple satisfied by the original rule set (within its ρ) must be
	// satisfied by the merged one with its widened ρ.
	rs := deltaRule(0, 0.3, 0.1)
	out := MergeWindows(rs, 0.5)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		x := rng.Float64() * 30
		// y within the ORIGINAL guarantee of the window x falls in.
		delta := []float64{0, 0.3, 0.1}[int(x/10)]
		y := 2*x + delta + (2*rng.Float64()-1)*0.5
		tpl := lineTuple(x, y, "a")
		if !rs.Rules[0].Sat(tpl) {
			continue
		}
		if !out.Rules[0].Sat(tpl) {
			t.Fatalf("merged rule violated at x=%v, y=%v", x, y)
		}
	}
}

// Property: MergeWindows preserves coverage exactly and never grows
// condition size; on covered tuples the prediction moves by at most the
// merge tolerance.
func TestMergeWindowsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		deltas := make([]float64, n)
		for i := range deltas {
			deltas[i] = rng.Float64() * 0.2
		}
		rs := deltaRule(deltas...)
		tol := rng.Float64() * 0.3
		out := MergeWindows(rs, tol)
		if len(out.Rules[0].Cond.Conjs) > len(rs.Rules[0].Cond.Conjs) {
			return false
		}
		for trial := 0; trial < 100; trial++ {
			x := rng.Float64()*float64(n)*10 + rng.Float64()*5 - 2.5
			tpl := lineTuple(x, 0, "a")
			p1, ok1 := rs.Predict(tpl)
			p2, ok2 := out.Predict(tpl)
			if ok1 != ok2 {
				return false
			}
			if ok1 && math.Abs(p1-p2) > tol/2+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMergeWindowsEndToEnd(t *testing.T) {
	// Quickstart scenario: after compaction + window merging with tol ρ_M/10
	// the two-slope dataset collapses to the ideal two-window-per-rule form.
	rel := piecewiseRelation(900, 0.1, 23)
	res, err := DiscoverWithConfig(rel, discoverCfg(rel, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	compacted, _ := Compact(res.Rules)
	merged := MergeWindows(compacted, 0.05)
	totalWindows := 0
	for i := range merged.Rules {
		totalWindows += len(merged.Rules[i].Cond.Conjs)
	}
	before := 0
	for i := range compacted.Rules {
		before += len(compacted.Rules[i].Cond.Conjs)
	}
	if totalWindows >= before {
		t.Errorf("window merging had no effect: %d → %d", before, totalWindows)
	}
	if !merged.Holds(rel) {
		t.Error("merged rules violated on training data")
	}
	if cov := merged.Coverage(rel); cov != 1 {
		t.Errorf("coverage = %v", cov)
	}
}
