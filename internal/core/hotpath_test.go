package core

import (
	"context"
	"testing"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
	"github.com/crrlab/crr/internal/telemetry"
)

// TestParallelEnforcesMaxNodes is the parity fix for the runaway guard: the
// parallel engine must cap queue expansions at cfg.MaxNodes exactly like the
// sequential engine, and drain the remaining parts as forced rules so the
// output still covers D (Problem 1).
func TestParallelEnforcesMaxNodes(t *testing.T) {
	rel := piecewiseRelation(600, 0.2, 1)
	cfg := discoverCfg(rel, 0.05) // tight ρ_M forces deep refinement
	cfg.MaxNodes = 8

	for _, workers := range []int{1, 4} {
		cfg.Workers = workers
		res, err := Discover(context.Background(), rel, WithConfig(cfg))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Stats.NodesExpanded > cfg.MaxNodes {
			t.Errorf("workers=%d: NodesExpanded = %d exceeds MaxNodes = %d",
				workers, res.Stats.NodesExpanded, cfg.MaxNodes)
		}
		if res.Stats.ForcedRules == 0 {
			t.Errorf("workers=%d: capped run has no forced rules (drain missing)", workers)
		}
		if cov := res.Rules.Coverage(rel); cov != 1 {
			t.Errorf("workers=%d: coverage = %v after MaxNodes drain, want 1", workers, cov)
		}
		if !res.Rules.Holds(rel) {
			t.Errorf("workers=%d: drained rules violated on training data", workers)
		}
	}
}

// TestParallelHonorsProp8Splits is the second parity fix: with Prop8Splits
// the parallel engine must size splits by ind(C) like the sequential engine
// instead of silently falling back to the single best cut.
func TestParallelHonorsProp8Splits(t *testing.T) {
	rel := piecewiseRelation(600, 0.2, 1)
	cfg := discoverCfg(rel, 0.5)
	cfg.Prop8Splits = true

	seq, err := Discover(context.Background(), rel, WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := Discover(context.Background(), rel, WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	for name, res := range map[string]*DiscoverResult{"seq": seq, "par": par} {
		if cov := res.Rules.Coverage(rel); cov != 1 {
			t.Errorf("%s coverage = %v", name, cov)
		}
		if !res.Rules.Holds(rel) {
			t.Errorf("%s rules violated on training data", name)
		}
		if res.Stats.NodesExpanded > cfg.MaxNodes && cfg.MaxNodes > 0 {
			t.Errorf("%s expanded %d nodes", name, res.Stats.NodesExpanded)
		}
	}
	// Proposition 8's overlapping children mean the multi-split run explores
	// at least as much as the binary run would; the real assertion is that
	// both engines terminate with full coverage, which the old parallel
	// engine only achieved by ignoring the option.
	if seq.Stats.NodesExpanded == 0 || par.Stats.NodesExpanded == 0 {
		t.Error("degenerate run")
	}
}

// fourRegimeRelation has constant regimes 10, 50, 90, 10 on [0,30), [30,45),
// [45,60), [60,90) over a single attribute. The repeated 10-regime makes
// interior nodes partially shareable (ind(C) > 0), so Prop8 multi-splits
// fire and reach the same semantic condition along different syntactic paths
// (e.g. a>44 ∧ a>59 vs a>29 ∧ a>59, both ≡ a>59).
func fourRegimeRelation() *dataset.Relation {
	s := dataset.MustSchema(
		dataset.Attribute{Name: "A", Kind: dataset.Numeric},
		dataset.Attribute{Name: "Y", Kind: dataset.Numeric},
	)
	r := dataset.NewRelation(s)
	for i := 0; i < 90; i++ {
		x := float64(i)
		y := 10.0
		switch {
		case x >= 60:
			y = 10
		case x >= 45:
			y = 90
		case x >= 30:
			y = 50
		}
		r.MustAppend(dataset.Tuple{dataset.Num(x), dataset.Num(y)})
	}
	return r
}

// TestVisitedNormalizesConjunctions is the regression test for the visited
// set keying on Normalize(): equivalent conjunctions reached along different
// refinement paths (redundant bounds like a>44 ∧ a>59) must expand once.
// With cuts only at 29, 44 and 59, every reachable part is one of the at
// most 10 distinct value intervals (root included), so normalized
// deduplication bounds expansions by that count; duplicate spellings of the
// same interval would push past it.
func TestVisitedNormalizesConjunctions(t *testing.T) {
	rel := fourRegimeRelation()
	var preds []predicate.Predicate
	for _, cut := range []float64{29, 44, 59} {
		preds = append(preds,
			predicate.NumPred(0, predicate.Le, cut),
			predicate.NumPred(0, predicate.Gt, cut))
	}
	cfg := DiscoverConfig{
		XAttrs:      []int{0},
		YAttr:       1,
		RhoM:        0.5,
		Preds:       preds,
		Trainer:     regress.LinearTrainer{},
		Prop8Splits: true,
		MinSupport:  1,
	}
	res, err := Discover(context.Background(), rel, WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	const maxDistinctParts = 10 // intervals over cut endpoints, root included
	if res.Stats.NodesExpanded > maxDistinctParts {
		t.Errorf("NodesExpanded = %d > %d distinct parts: equivalent conjunctions expanded more than once",
			res.Stats.NodesExpanded, maxDistinctParts)
	}
	if cov := res.Rules.Coverage(rel); cov != 1 {
		t.Errorf("coverage = %v", cov)
	}
	seen := map[string]bool{}
	for _, r := range res.Rules.Rules {
		for _, c := range r.Cond.Conjs {
			key := conjKey(c.Normalize())
			if seen[key] {
				t.Errorf("duplicate rule condition %q: the same part was emitted twice", key)
			}
			seen[key] = true
		}
	}
}

// TestDiscoverTargetsDefaults pins satellite (c): DiscoverTargets must route
// through the same defaulting as Discover, so a minimal config (nil Preds,
// nil Trainer, zero ρ_M) works and the predicate space is re-derived per
// target.
func TestDiscoverTargetsDefaults(t *testing.T) {
	rel := piecewiseRelation(200, 0.2, 9)
	rules, err := DiscoverTargets(context.Background(), rel, []int{1}, DiscoverConfig{
		XAttrs: []int{0},
	})
	if err != nil {
		t.Fatalf("DiscoverTargets with minimal config: %v", err)
	}
	rs := rules[1]
	if rs == nil || rs.NumRules() == 0 {
		t.Fatal("no rules for defaulted target")
	}
	if cov := rs.Coverage(rel); cov != 1 {
		t.Errorf("coverage = %v", cov)
	}

	// An empty relation is rejected with the target context attached.
	empty := dataset.NewRelation(rel.Schema)
	if _, err := DiscoverTargets(context.Background(), empty, []int{1}, DiscoverConfig{XAttrs: []int{0}}); err == nil {
		t.Error("empty relation not rejected")
	}
}

// TestHotPathTelemetry checks the new performance-layer metrics: the Gram
// fast path fires, the column cache serves every expanded node, and the
// share-scan width distribution records per-node scan sizes.
func TestHotPathTelemetry(t *testing.T) {
	rel := piecewiseRelation(600, 0.2, 1)
	cfg := discoverCfg(rel, 0.5)
	reg := telemetry.New()
	cfg.Telemetry = reg
	res, err := Discover(context.Background(), rel, WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[telemetry.MetricStatReuse]; got == 0 {
		t.Error("stat_reuse = 0: the sufficient-statistics fast path never fired")
	}
	if got := snap.Counters[telemetry.MetricCacheHits]; got < int64(res.Stats.NodesExpanded) {
		t.Errorf("column_cache_hits = %d < NodesExpanded = %d", got, res.Stats.NodesExpanded)
	}
	width := snap.Distributions[telemetry.MetricShareScanWidth]
	if width.Count == 0 {
		t.Error("share_scan_width never observed")
	}
	if width.Count != snap.Counters[telemetry.MetricConditionsExpanded] {
		t.Errorf("scan-width observations = %d, conditions expanded = %d",
			width.Count, snap.Counters[telemetry.MetricConditionsExpanded])
	}

	// The share-test counter must now count single-sweep work: at most one
	// scan per expanded node, never the two full passes of the old code.
	if tests := snap.Counters[telemetry.MetricShareTests]; tests > width.Count*int64(res.Rules.NumModels()) {
		t.Errorf("share_tests = %d exceeds one scan per node over %d models", tests, res.Rules.NumModels())
	}
}

// TestGramPathMatchesFullPassDiscovery is the engine-level byte-identity
// check on the unit-test scale (the five-dataset comparison lives in
// internal/experiments): discovery with the default Gram-capable trainer
// must produce the same rules, in the same order, with weights within 1e-9,
// as the same trainer wrapped in regress.FullPass.
func TestGramPathMatchesFullPassDiscovery(t *testing.T) {
	rel := piecewiseRelation(600, 0.2, 1)
	cfg := discoverCfg(rel, 0.5)
	fast, err := Discover(context.Background(), rel, WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trainer = regress.FullPass{T: regress.LinearTrainer{}}
	slow, err := Discover(context.Background(), rel, WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	assertSameRules(t, fast.Rules, slow.Rules, 1e-9)
	if fast.Stats != slow.Stats {
		t.Errorf("stats diverged: %+v vs %+v", fast.Stats, slow.Stats)
	}
}

// assertSameRules requires structural identity (count, order, conditions,
// bias) and model weights within tol.
func assertSameRules(t *testing.T, a, b *RuleSet, tol float64) {
	t.Helper()
	if a.NumRules() != b.NumRules() {
		t.Fatalf("rule counts differ: %d vs %d", a.NumRules(), b.NumRules())
	}
	for i := range a.Rules {
		ra, rb := &a.Rules[i], &b.Rules[i]
		if len(ra.Cond.Conjs) != len(rb.Cond.Conjs) {
			t.Fatalf("rule %d: conjunction counts differ", i)
		}
		for j := range ra.Cond.Conjs {
			if conjKey(ra.Cond.Conjs[j]) != conjKey(rb.Cond.Conjs[j]) {
				t.Fatalf("rule %d conj %d: %q vs %q", i, j,
					conjKey(ra.Cond.Conjs[j]), conjKey(rb.Cond.Conjs[j]))
			}
		}
		if diff := ra.Rho - rb.Rho; diff > tol || diff < -tol {
			t.Fatalf("rule %d: ρ differs by %v", i, diff)
		}
		if !ra.Model.Equal(rb.Model, tol) {
			t.Fatalf("rule %d: models differ beyond %v: %v vs %v", i, tol, ra.Model, rb.Model)
		}
	}
}

// TestSeqParParityInvariants runs both engines across option combinations
// and checks the invariants that must hold regardless of worker races.
func TestSeqParParityInvariants(t *testing.T) {
	rel := piecewiseRelation(400, 0.2, 6)
	base := discoverCfg(rel, 0.5)
	variants := map[string]func(*DiscoverConfig){
		"default":        func(c *DiscoverConfig) {},
		"prop8":          func(c *DiscoverConfig) { c.Prop8Splits = true },
		"maxnodes":       func(c *DiscoverConfig) { c.MaxNodes = 6 },
		"prop8+maxnodes": func(c *DiscoverConfig) { c.Prop8Splits = true; c.MaxNodes = 6 },
		"nosharing":      func(c *DiscoverConfig) { c.DisableSharing = true },
	}
	for name, mutate := range variants {
		for _, workers := range []int{1, 4} {
			cfg := base
			mutate(&cfg)
			cfg.Workers = workers
			res, err := Discover(context.Background(), rel, WithConfig(cfg))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if cov := res.Rules.Coverage(rel); cov != 1 {
				t.Errorf("%s workers=%d: coverage = %v", name, workers, cov)
			}
			if !res.Rules.Holds(rel) {
				t.Errorf("%s workers=%d: rules violated", name, workers)
			}
			if cfg.MaxNodes > 0 && res.Stats.NodesExpanded > cfg.MaxNodes {
				t.Errorf("%s workers=%d: NodesExpanded %d > MaxNodes %d",
					name, workers, res.Stats.NodesExpanded, cfg.MaxNodes)
			}
			if cfg.DisableSharing && res.Stats.ShareHits != 0 {
				t.Errorf("%s workers=%d: ablated run shared", name, workers)
			}
		}
	}
}
