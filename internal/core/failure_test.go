package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/crrlab/crr/internal/regress"
)

// failingTrainer errors after a configurable number of successful fits,
// injecting mid-run training failures.
type failingTrainer struct {
	inner     regress.Trainer
	failAfter int
	calls     int
}

var errInjected = errors.New("injected training failure")

func (f *failingTrainer) Name() string { return "failing" }

func (f *failingTrainer) Train(x [][]float64, y []float64) (regress.Model, error) {
	f.calls++
	if f.calls > f.failAfter {
		return nil, errInjected
	}
	return f.inner.Train(x, y)
}

func TestDiscoverPropagatesTrainerError(t *testing.T) {
	rel := piecewiseRelation(300, 0.2, 31)
	cfg := discoverCfg(rel, 0.5)
	cfg.Trainer = &failingTrainer{inner: regress.LinearTrainer{}, failAfter: 0}
	_, err := DiscoverWithConfig(rel, cfg)
	if !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want the injected failure", err)
	}
	if err != nil && !strings.Contains(err.Error(), "training on") {
		t.Errorf("error lacks context: %v", err)
	}
}

func TestDiscoverMidRunTrainerError(t *testing.T) {
	rel := piecewiseRelation(300, 0.2, 32)
	cfg := discoverCfg(rel, 0.5)
	cfg.Trainer = &failingTrainer{inner: regress.LinearTrainer{}, failAfter: 2}
	if _, err := DiscoverWithConfig(rel, cfg); !errors.Is(err, errInjected) {
		t.Fatalf("mid-run err = %v, want the injected failure", err)
	}
}

func TestDiscoverParallelPropagatesTrainerError(t *testing.T) {
	rel := piecewiseRelation(600, 0.2, 33)
	cfg := discoverCfg(rel, 0.5)
	// The failing trainer is stateful and accessed by several workers; the
	// calls counter races harmlessly for the purposes of this test, but use
	// failAfter 0 so every call fails deterministically.
	cfg.Trainer = &failingTrainer{inner: regress.LinearTrainer{}, failAfter: 0}
	if _, err := DiscoverParallel(rel, cfg, 4); !errors.Is(err, errInjected) {
		t.Fatalf("parallel err = %v, want the injected failure", err)
	}
}

func TestMaintainPropagatesTrainerError(t *testing.T) {
	rel := piecewiseRelation(300, 0.2, 34)
	cfg := discoverCfg(rel, 0.5)
	res, err := DiscoverWithConfig(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A brand-new regime forces re-discovery, which now fails. Two tuples
	// with wildly different residuals are needed: a single tuple would share
	// trivially with any seed model via δ0 (zero residual spread).
	rel.MustAppend(lineTuple(500, 9999, "t"))
	rel.MustAppend(lineTuple(500.5, -9999, "t"))
	cfg.Trainer = &failingTrainer{inner: regress.LinearTrainer{}, failAfter: 0}
	_, _, err = Maintain(context.Background(), rel, res.Rules, []int{rel.Len() - 2, rel.Len() - 1}, cfg)
	if !errors.Is(err, errInjected) {
		t.Fatalf("maintain err = %v, want the injected failure", err)
	}
}

func TestPrunePropagatesTrainerError(t *testing.T) {
	rel := overRefinedRelation(600, 0.3, 35)
	res, err := DiscoverWithConfig(rel, discoverCfg(rel, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = Prune(rel, res.Rules, PruneOptions{
		Trainer: &failingTrainer{inner: regress.LinearTrainer{}, failAfter: 0},
	})
	if !errors.Is(err, errInjected) {
		t.Fatalf("prune err = %v, want the injected failure", err)
	}
}

func TestDiscoverTargetsPropagatesTrainerError(t *testing.T) {
	rel := piecewiseRelation(200, 0.2, 36)
	cfg := discoverCfg(rel, 0.5)
	cfg.Trainer = &failingTrainer{inner: regress.LinearTrainer{}, failAfter: 0}
	if _, err := DiscoverTargets(context.Background(), rel, []int{1}, cfg); !errors.Is(err, errInjected) {
		t.Fatalf("targets err = %v, want the injected failure", err)
	}
}
