package core_test

import (
	"math"
	"math/rand"
	"testing"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
)

// TestPredictViewExplainedParity: the explain variant must return exactly
// the PredictView predictions (bitwise) plus, per covered row, the index of
// the first rule Explain reports as matching — and -1 for fallback rows.
// This is the contract /v1/predict?explain=1 exposes over the wire.
func TestPredictViewExplainedParity(t *testing.T) {
	for _, spec := range propertySpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(37))
			train := spec.Gen(500)
			rules := discoverRules(t, spec, train)
			check := maskedRelation(spec, 400, rng)
			view := dataset.NewColumnSet(check).View()

			plainP, plainC := rules.PredictView(view)
			preds, covered, ruleIDs := rules.PredictViewExplained(view)
			if len(ruleIDs) != check.Len() {
				t.Fatalf("ruleIDs len %d, want %d", len(ruleIDs), check.Len())
			}
			for i, tp := range check.Tuples {
				if math.Float64bits(preds[i]) != math.Float64bits(plainP[i]) || covered[i] != plainC[i] {
					t.Fatalf("tuple %d: explained (%v,%v) diverges from plain (%v,%v)",
						i, preds[i], covered[i], plainP[i], plainC[i])
				}
				ex := core.Explain(rules, tp)
				if !covered[i] {
					if ruleIDs[i] != -1 {
						t.Fatalf("tuple %d: uncovered but rule id %d", i, ruleIDs[i])
					}
					continue
				}
				if len(ex.Matches) == 0 {
					t.Fatalf("tuple %d: covered but Explain found no match", i)
				}
				if want := ex.Matches[0].RuleIndex; ruleIDs[i] != want {
					t.Fatalf("tuple %d: rule id %d, want %d", i, ruleIDs[i], want)
				}
				if math.Float64bits(preds[i]) != math.Float64bits(ex.Matches[0].Prediction) {
					t.Fatalf("tuple %d: prediction %v, want Explain's %v", i, preds[i], ex.Matches[0].Prediction)
				}
			}
		})
	}
}
