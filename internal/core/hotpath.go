package core

// The part-workspace performance layer under both discovery engines.
//
// Algorithm 1's cost is dominated by three per-node re-computations: the
// FeatureRows materialization of the part, the two ShareTest scans over the
// model set F (Line 7's hit test, then Line 12's sharing index), and the
// from-scratch OLS fit of Line 13. This file removes all three:
//
//   - the discovery-wide dataset.ColumnSet (built once per run) holds the X
//     and Y columns contiguously, so queue pops gather dense column values
//     instead of walking dataset tuples, and part materialization runs
//     through the vectorized predicate filters;
//   - regress.ShareScanner computes each model's residual envelope and fit
//     fraction in a single sweep, returning the Proposition-6 share hit and
//     ind(C) together;
//   - queue items carry regress.Gram sufficient statistics, accumulated when
//     a split's children are materialized (the largest child for free as
//     parent − siblings), so Line-13 training is an O(d³) normal-equation
//     solve instead of an O(n·d²) re-pass. Trainers without the fast path
//     (the MLP) and degenerate parts keep the exact full-pass fit.
//
// The sequential and parallel engines share this hot loop (evaluate), so
// they cannot drift behaviorally: accept/force/split decisions, Proposition
// 8 split sizing and MinSupport handling are decided in exactly one place.

import (
	"fmt"
	"time"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

// hotLoop is the shared, read-only state of one discovery run's hot path.
// Workers share it; per-worker scratch lives in partWorkspace. Parts are
// materialized and scored against the run's columnar mirror (sc.cols), built
// once; trainable rows have non-null X and Y, so per-node access is a dense
// column gather with no null checks.
type hotLoop struct {
	rel   *dataset.Relation
	cfg   *DiscoverConfig
	si    *splitIndex
	sc    *partScan
	xcols [][]float64 // sc.cols.Float per X attribute
	ycol  []float64   // sc.cols.Float(YAttr)
	dim   int
	tel   discTel
	// gram is non-nil when the sufficient-statistics fast path applies
	// (trainer implements regress.GramTrainer and the signature has
	// features; a width-0 fit needs the full pass for its minimax constant).
	gram regress.GramTrainer
	// needInd reports that the engine consumes ind(C) even when the share
	// scan cannot provide it (sequential queue priority, Proposition 8 split
	// sizing) — the DisableSharing ablation then still pays for Line 12.
	needInd bool
	// exact requires bitwise-reproducible fits: every child Gram is
	// accumulated fresh in row order, making the fast path's output
	// byte-identical to the full pass. The sequential engine sets it (its
	// output is a determinism contract); the parallel engine, whose rule
	// order already varies run-to-run, trades it for the cheaper
	// sibling = parent − child derivation, which drifts by ulps.
	exact bool
}

func newHotLoop(rel *dataset.Relation, cfg *DiscoverConfig, si *splitIndex, all []int, tel discTel, exact bool) *hotLoop {
	// An externally supplied columnar substrate (DiscoverColumns over an
	// mmap'd store) is used as-is — no per-run build, no build-time charge.
	cols := cfg.Columns
	if cols == nil {
		start := time.Now()
		cols = dataset.NewColumnSet(rel)
		tel.colsBuild.Add(time.Since(start).Nanoseconds())
	}
	hl := &hotLoop{
		rel: rel,
		cfg: cfg,
		si:  si,
		sc: &partScan{
			rel:         rel,
			cols:        cols,
			row:         cfg.RowScan,
			rowsScanned: tel.rowsScanned,
			selectivity: tel.filterSel,
		},
		ycol:    cols.Float(cfg.YAttr),
		dim:     len(cfg.XAttrs),
		tel:     tel,
		needInd: exact || cfg.Prop8Splits,
		exact:   exact,
	}
	hl.xcols = make([][]float64, len(cfg.XAttrs))
	for i, a := range cfg.XAttrs {
		hl.xcols[i] = cols.Float(a)
	}
	if gt, ok := cfg.Trainer.(regress.GramTrainer); ok && len(cfg.XAttrs) > 0 {
		hl.gram = gt
	}
	return hl
}

// gramOf accumulates a part's sufficient statistics from the dense columns,
// in part order — the same order a full-pass fit would consume the rows, so
// the resulting fit is bitwise identical to it.
func (hl *hotLoop) gramOf(idxs []int) *regress.Gram {
	g := regress.NewGram(hl.dim)
	row := make([]float64, hl.dim)
	for _, ti := range idxs {
		for j, col := range hl.xcols {
			row[j] = col[ti]
		}
		g.Add(row, hl.ycol[ti])
	}
	return g
}

// rootGram builds the root part's statistics (nil when the fast path does
// not apply); children derive theirs incrementally from it.
func (hl *hotLoop) rootGram(all []int) *regress.Gram {
	if hl.gram == nil {
		return nil
	}
	return hl.gramOf(all)
}

// workspace returns a fresh per-worker scratch workspace.
func (hl *hotLoop) workspace() *partWorkspace {
	return &partWorkspace{loop: hl}
}

// partWorkspace is one worker's reusable scratch: the gathered part rows and
// the share scanner's residual buffer. Steady-state node evaluation does not
// allocate. The gathered x rows live in the workspace's flat backing buffer
// and are recycled on the next gather, so trainers must not retain x beyond
// Train (the built-in families copy or consume it inside the call).
type partWorkspace struct {
	loop    *hotLoop
	flat    []float64 // row-major gather backing, reused across nodes
	x       [][]float64
	y       []float64
	scanner regress.ShareScanner
}

// part gathers a part's feature rows and targets from the dense columns — a
// View gather assembled row-major for the trainers.
func (ws *partWorkspace) part(idxs []int) ([][]float64, []float64) {
	hl := ws.loop
	dim := hl.dim
	if cap(ws.flat) < len(idxs)*dim {
		ws.flat = make([]float64, len(idxs)*dim)
	}
	if cap(ws.x) < len(idxs) {
		ws.x = make([][]float64, len(idxs))
		ws.y = make([]float64, len(idxs))
	}
	flat, x, y := ws.flat[:len(idxs)*dim], ws.x[:len(idxs)], ws.y[:len(idxs)]
	for i, ti := range idxs {
		row := flat[i*dim : (i+1)*dim : (i+1)*dim]
		for j, col := range hl.xcols {
			row[j] = col[ti]
		}
		x[i] = row
		y[i] = hl.ycol[ti]
	}
	hl.tel.cacheHits.Inc()
	return x, y
}

// trainPart runs Line 13 for one part: the Gram fast path when the item
// carries statistics the trainer can consume, the exact full-pass fit
// otherwise (including the QR/jitter handling of degenerate parts, which
// needs the design matrix).
func (ws *partWorkspace) trainPart(item *condItem, x [][]float64, y []float64) (regress.Model, bool, error) {
	hl := ws.loop
	start := time.Now()
	if hl.gram != nil && item.gram != nil {
		if m, err := hl.gram.TrainGram(item.gram); err == nil {
			hl.tel.trainTime.Observe(time.Since(start))
			hl.tel.statReuse.Inc()
			return m, true, nil
		}
		// Singular or degenerate statistics: fall through to the full pass.
	}
	m, err := hl.cfg.Trainer.Train(x, y)
	hl.tel.trainTime.Observe(time.Since(start))
	if err != nil {
		return nil, false, fmt.Errorf("core: training on %d tuples: %w", len(x), err)
	}
	return m, false, nil
}

// nodeEval is the outcome of evaluating one condition node: a Line-7 share
// hit, or a freshly trained model together with the accept/force/refine
// decision of Lines 13–22.
type nodeEval struct {
	hit      bool                // Lines 7–10 share hit
	model    regress.Model       // shared model (hit) or the fresh Line-13 model
	share    regress.ShareResult // valid when hit
	maxErr   float64             // fresh model's bias on the part (valid when !hit)
	ind      float64             // sharing index ind(C) (valid when !hit)
	accept   bool                // emit the fresh model as a rule
	forced   bool                // acceptance came from MinSupport / no-split coverage
	children []childItem         // refinements to enqueue when !accept
}

// childItem is one refinement C ∧ p, carrying the rows it selects and (when
// the fast path applies) its sufficient statistics.
type childItem struct {
	pred predicate.Predicate
	idxs []int
	gram *regress.Gram
}

// evaluate runs the shared hot loop for one queue item against the model
// pool F. Both engines call it, so the Algorithm 1 semantics — newest-first
// δ0 sharing, ind(C), ρ_M acceptance, the MinSupport floor, Proposition 8
// split sizing and the coverage-forced acceptance — live in one place.
func (ws *partWorkspace) evaluate(item *condItem, pool []regress.Model) (nodeEval, error) {
	hl := ws.loop
	cfg := hl.cfg
	x, y := ws.part(item.idxs)
	var ev nodeEval

	// Lines 7–10 and Line 12 in one sweep: the single-pass share scan
	// returns the Proposition-6 hit and ind(C) together.
	if !cfg.DisableSharing {
		start := time.Now()
		idx, res, ind, tried := ws.scanner.Scan(pool, x, y, cfg.RhoM)
		hl.tel.shareTime.Observe(time.Since(start))
		hl.tel.shareTests.Add(int64(tried))
		hl.tel.scanWidth.Observe(float64(tried))
		if idx >= 0 {
			ev.hit = true
			ev.model = pool[idx]
			ev.share = res
			return ev, nil
		}
		ev.ind = ind
	} else if hl.needInd {
		// The ablation still orders the queue (and sizes Proposition 8
		// splits) by ind(C), so Line 12 runs even with sharing off.
		start := time.Now()
		ev.ind = ws.scanner.Index(pool, x, y, cfg.RhoM)
		hl.tel.shareTime.Observe(time.Since(start))
		hl.tel.shareTests.Add(int64(len(pool)))
		hl.tel.scanWidth.Observe(float64(len(pool)))
	}

	// Line 13: train a new model.
	model, _, err := ws.trainPart(item, x, y)
	if err != nil {
		return ev, err
	}
	ev.model = model
	ev.maxErr = regress.MaxAbsError(model, x, y)
	if ev.maxErr <= cfg.RhoM {
		ev.accept = true
		return ev, nil
	}
	if len(item.idxs) <= cfg.MinSupport {
		ev.accept, ev.forced = true, true
		return ev, nil
	}

	// Line 19: the number of split predicates. The default is the single
	// best cut; Prop8Splits takes the top ⌈(1−ind(C))·|D_C|⌉ groups
	// (Proposition 8), capped to keep the overlap bounded. With ind(C) = 0
	// nothing is close to shareable and the proposition is vacuous, so the
	// single best cut is used.
	k := 1
	if cfg.Prop8Splits && ev.ind > 0 {
		k = int((1-ev.ind)*float64(len(item.idxs))) + 1
		if k > prop8MaxGroups {
			k = prop8MaxGroups
		}
	}
	for _, group := range hl.sc.topSplits(item.idxs, hl.si, cfg.YAttr, k) {
		ev.children = append(ev.children, hl.childItems(item, group)...)
	}
	if len(ev.children) == 0 {
		// No applicable predicate can split this part: accept to guarantee
		// coverage (§V-A2).
		ev.accept, ev.forced = true, true
	}
	return ev, nil
}

// childItems materializes one split group's children with their sufficient
// statistics. Every group returned by topSplits partitions the parent
// (numeric {>c, ≤c} pairs; categorical fans covering every present value).
// In exact mode every child is accumulated fresh from the cached columns in
// row order (bitwise identical to a full-pass fit); otherwise all but the
// largest child are accumulated and the largest comes for free as
// parent − Σ siblings, at the cost of ulp-level drift.
func (hl *hotLoop) childItems(item *condItem, group []childPart) []childItem {
	out := make([]childItem, len(group))
	for i, ch := range group {
		out[i] = childItem{pred: ch.pred, idxs: ch.idxs}
	}
	if hl.gram == nil || item.gram == nil {
		return out
	}
	largest := 0
	for i, ch := range group {
		if len(ch.idxs) > len(group[largest].idxs) {
			largest = i
		}
	}
	var sibling *regress.Gram
	if !hl.exact {
		sibling = item.gram.Clone()
	}
	for i := range out {
		if i == largest && sibling != nil {
			continue
		}
		g := hl.gramOf(out[i].idxs)
		if sibling != nil {
			sibling.Sub(g)
		}
		out[i].gram = g
	}
	if sibling != nil {
		out[largest].gram = sibling
	}
	return out
}
