package core

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

// piecewiseRelation builds a two-regime dataset where regime A (x < 50) and
// regime B (x ≥ 100) follow the SAME slope with a constant offset — the
// sharing scenario — while the middle regime follows a different slope.
// Bounded noise keeps the max-bias criterion meaningful.
func piecewiseRelation(n int, noise float64, seed int64) *dataset.Relation {
	rng := rand.New(rand.NewSource(seed))
	s := dataset.MustSchema(
		dataset.Attribute{Name: "X", Kind: dataset.Numeric},
		dataset.Attribute{Name: "Y", Kind: dataset.Numeric},
		dataset.Attribute{Name: "Tag", Kind: dataset.Categorical},
	)
	r := dataset.NewRelation(s)
	for i := 0; i < n; i++ {
		x := 150 * float64(i) / float64(n)
		var y float64
		switch {
		case x < 50:
			y = 2*x + 1
		case x < 100:
			y = -3*x + 500
		default:
			y = 2*x + 31 // same slope as regime A, δ = 30
		}
		y += noise * (2*rng.Float64() - 1)
		r.MustAppend(dataset.Tuple{dataset.Num(x), dataset.Num(y), dataset.Str("t")})
	}
	return r
}

func discoverCfg(rel *dataset.Relation, rhoM float64) DiscoverConfig {
	preds := predicate.Generate(rel, []int{0}, predicate.GeneratorConfig{Kind: predicate.Binary, Size: 32})
	return DiscoverConfig{
		XAttrs:  []int{0},
		YAttr:   1,
		RhoM:    rhoM,
		Preds:   preds,
		Trainer: regress.LinearTrainer{},
	}
}

func TestDiscoverCoversData(t *testing.T) {
	rel := piecewiseRelation(600, 0.2, 1)
	res, err := DiscoverWithConfig(rel, discoverCfg(rel, 0.5))
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if res.Rules.NumRules() == 0 {
		t.Fatal("no rules discovered")
	}
	if cov := res.Rules.Coverage(rel); cov != 1 {
		t.Errorf("coverage = %v, want 1 (Problem 1 requires Σ covers D)", cov)
	}
	if !res.Rules.Holds(rel) {
		t.Error("discovered rules violated on their own training data")
	}
}

func TestDiscoverSharesModels(t *testing.T) {
	rel := piecewiseRelation(600, 0.2, 1)
	res, err := DiscoverWithConfig(rel, discoverCfg(rel, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ShareHits == 0 {
		t.Errorf("no share hits on a dataset with a repeated slope; stats = %+v", res.Stats)
	}
	// Every rule comes either from sharing or from an accepted fresh model,
	// so sharing implies fewer distinct models than rules.
	if res.Rules.NumModels() >= res.Rules.NumRules() {
		t.Errorf("sharing did not reduce distinct models: %d models for %d rules",
			res.Rules.NumModels(), res.Rules.NumRules())
	}
}

func TestDiscoverSharingAblation(t *testing.T) {
	rel := piecewiseRelation(600, 0.2, 1)
	cfg := discoverCfg(rel, 0.5)
	with, err := DiscoverWithConfig(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisableSharing = true
	without, err := DiscoverWithConfig(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if without.Stats.ShareHits != 0 {
		t.Error("ablated run still shared")
	}
	if with.Stats.ModelsTrained > without.Stats.ModelsTrained {
		t.Errorf("sharing increased trained models: %d vs %d",
			with.Stats.ModelsTrained, without.Stats.ModelsTrained)
	}
	if cov := without.Rules.Coverage(rel); cov != 1 {
		t.Errorf("ablated coverage = %v", cov)
	}
}

func TestDiscoverShareBuiltinDelta(t *testing.T) {
	// The shared-regime rule must carry a y = δ builtin with δ ≈ 30.
	rel := piecewiseRelation(600, 0.1, 1)
	res, err := DiscoverWithConfig(rel, discoverCfg(rel, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res.Rules.Rules {
		for _, c := range r.Cond.Conjs {
			if d := c.Builtin.YShift; d > 25 && d < 35 {
				found = true
			}
		}
	}
	if !found {
		t.Error("no rule carries the expected y ≈ 30 builtin from sharing")
	}
}

func TestDiscoverRespectsRhoM(t *testing.T) {
	rel := piecewiseRelation(400, 0.2, 2)
	res, err := DiscoverWithConfig(rel, discoverCfg(rel, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rules.Rules {
		if r.Rho > 0.5 && res.Stats.ForcedRules == 0 {
			t.Errorf("rule bias %v exceeds ρ_M without a forced acceptance", r.Rho)
		}
	}
}

func TestDiscoverValidation(t *testing.T) {
	rel := piecewiseRelation(50, 0.1, 3)
	cfg := discoverCfg(rel, 0.5)
	cfg.Trainer = nil
	if _, err := DiscoverWithConfig(rel, cfg); !errors.Is(err, ErrNoTrainer) {
		t.Errorf("nil trainer err = %v", err)
	}
	cfg = discoverCfg(rel, 0.5)
	cfg.XAttrs = []int{1}
	if _, err := DiscoverWithConfig(rel, cfg); !errors.Is(err, ErrTrivialTarget) {
		t.Errorf("Y∈X err = %v (Reflexivity must reject)", err)
	}
	cfg = discoverCfg(rel, 0.5)
	cfg.Preds = append(cfg.Preds, predicate.NumPred(1, predicate.Gt, 0))
	if _, err := DiscoverWithConfig(rel, cfg); !errors.Is(err, ErrPredicateOnTarget) {
		t.Errorf("pred-on-Y err = %v", err)
	}
	cfg = discoverCfg(rel, 0.5)
	cfg.YAttr = 2 // categorical
	cfg.Preds = nil
	if _, err := DiscoverWithConfig(rel, cfg); !errors.Is(err, ErrNonNumericTarget) {
		t.Errorf("categorical target err = %v", err)
	}
}

func TestDiscoverEmptyRelation(t *testing.T) {
	rel := dataset.NewRelation(lineSchema())
	res, err := DiscoverWithConfig(rel, DiscoverConfig{
		XAttrs: []int{0}, YAttr: 1, RhoM: 1, Trainer: regress.LinearTrainer{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rules.NumRules() != 0 {
		t.Error("rules from empty relation")
	}
}

func TestDiscoverAllNullTarget(t *testing.T) {
	rel := dataset.NewRelation(lineSchema())
	rel.MustAppend(dataset.Tuple{dataset.Num(1), dataset.Null(), dataset.Str("a")})
	res, err := DiscoverWithConfig(rel, DiscoverConfig{
		XAttrs: []int{0}, YAttr: 1, RhoM: 1, Trainer: regress.LinearTrainer{},
	})
	if err != nil || res.Rules.NumRules() != 0 {
		t.Errorf("all-null target: %d rules, %v", res.Rules.NumRules(), err)
	}
}

func TestDiscoverSingleTuple(t *testing.T) {
	// The paper's edge case: the smallest data part learns its own model.
	rel := dataset.NewRelation(lineSchema())
	rel.MustAppend(lineTuple(3, 10, "a"))
	res, err := DiscoverWithConfig(rel, DiscoverConfig{
		XAttrs: []int{0}, YAttr: 1, RhoM: 0.1, Trainer: regress.LinearTrainer{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rules.NumRules() != 1 {
		t.Fatalf("rules = %d, want 1", res.Rules.NumRules())
	}
	if p, ok := res.Rules.Predict(lineTuple(3, 0, "a")); !ok || p < 9.9 || p > 10.1 {
		t.Errorf("single-tuple prediction = %v, %v", p, ok)
	}
}

func TestDiscoverCategoricalSplit(t *testing.T) {
	// Per-tag constant targets: the categorical fan must separate them.
	s := lineSchema()
	rel := dataset.NewRelation(s)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		tag := []string{"a", "b", "c"}[i%3]
		base := map[string]float64{"a": 10, "b": 50, "c": 90}[tag]
		rel.MustAppend(dataset.Tuple{
			dataset.Num(rng.Float64() * 100),
			dataset.Num(base + 0.2*(2*rng.Float64()-1)),
			dataset.Str(tag),
		})
	}
	preds := predicate.Generate(rel, []int{2}, predicate.GeneratorConfig{Kind: predicate.Binary, Size: 8})
	res, err := DiscoverWithConfig(rel, DiscoverConfig{
		XAttrs: []int{0}, YAttr: 1, RhoM: 0.5, Preds: preds, Trainer: regress.LinearTrainer{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cov := res.Rules.Coverage(rel); cov != 1 {
		t.Errorf("coverage = %v", cov)
	}
	if rmse := res.Rules.RMSE(rel); rmse > 0.5 {
		t.Errorf("RMSE = %v, want < 0.5 after categorical split", rmse)
	}
}

func TestDiscoverFuseShared(t *testing.T) {
	rel := piecewiseRelation(600, 0.2, 1)
	cfg := discoverCfg(rel, 0.5)
	plain, err := DiscoverWithConfig(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FuseShared = true
	fused, err := DiscoverWithConfig(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fused.Rules.NumRules() >= plain.Rules.NumRules() {
		t.Errorf("FuseShared did not reduce rules: %d vs %d",
			fused.Rules.NumRules(), plain.Rules.NumRules())
	}
	// Predictions are identical tuple-by-tuple: fusion only reorganizes
	// which rule holds the conjunction.
	for _, tp := range rel.Tuples {
		p1, ok1 := plain.Rules.Predict(tp)
		p2, ok2 := fused.Rules.Predict(tp)
		if ok1 != ok2 || absDiff(p1, p2) > 1e-9 {
			t.Fatalf("FuseShared changed prediction: %v/%v vs %v/%v", p1, ok1, p2, ok2)
		}
	}
	if cov := fused.Rules.Coverage(rel); cov != 1 {
		t.Errorf("fused coverage = %v", cov)
	}
	if !fused.Rules.Holds(rel) {
		t.Error("fused rules violated on training data")
	}
}

func TestDiscoverOrderings(t *testing.T) {
	rel := piecewiseRelation(600, 0.2, 5)
	for _, ord := range []QueueOrder{Decrease, Increase, RandomOrder} {
		cfg := discoverCfg(rel, 0.5)
		cfg.Order = ord
		cfg.Seed = 11
		res, err := DiscoverWithConfig(rel, cfg)
		if err != nil {
			t.Fatalf("order %v: %v", ord, err)
		}
		if cov := res.Rules.Coverage(rel); cov != 1 {
			t.Errorf("order %v coverage = %v", ord, cov)
		}
	}
}

func TestDiscoverDeterministic(t *testing.T) {
	rel := piecewiseRelation(400, 0.2, 6)
	cfg := discoverCfg(rel, 0.5)
	a, err := DiscoverWithConfig(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DiscoverWithConfig(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rules.NumRules() != b.Rules.NumRules() || a.Stats != b.Stats {
		t.Errorf("non-deterministic discovery: %+v vs %+v", a.Stats, b.Stats)
	}
}

func TestDiscoverConstantRegime(t *testing.T) {
	// A plateau (constant Y) must be expressible — the "Latitude = 60.10"
	// rule; OLS fits a near-zero slope and the rule holds.
	s := lineSchema()
	rel := dataset.NewRelation(s)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		x := float64(i)
		y := 60.10 + 0.1*(2*rng.Float64()-1)
		rel.MustAppend(dataset.Tuple{dataset.Num(x), dataset.Num(y), dataset.Str("a")})
	}
	res, err := DiscoverWithConfig(rel, discoverCfg(rel, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rules.NumRules() != 1 {
		t.Fatalf("plateau yielded %d rules, want 1", res.Rules.NumRules())
	}
	lin, ok := res.Rules.Rules[0].Model.(*regress.Linear)
	if !ok || !lin.IsConstant(0.01) {
		t.Errorf("plateau model not near-constant: %v", res.Rules.Rules[0].Model)
	}
}

func TestQueueOrderString(t *testing.T) {
	if Decrease.String() != "decrease" || Increase.String() != "increase" || RandomOrder.String() != "random" {
		t.Error("QueueOrder strings")
	}
	if QueueOrder(7).String() != "unknown" {
		t.Error("unknown order string")
	}
}
