package core

import (
	"context"
	"math/rand"
	"testing"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

// multiXRelation: Y depends on two features with regime-dependent
// coefficients switched by a third condition attribute —
// Y = 2·A + 3·B for T < 50, Y = −A + 0.5·B + 10 for T ≥ 50.
func multiXRelation(n int, noise float64, seed int64) *dataset.Relation {
	rng := rand.New(rand.NewSource(seed))
	s := dataset.MustSchema(
		dataset.Attribute{Name: "A", Kind: dataset.Numeric},
		dataset.Attribute{Name: "B", Kind: dataset.Numeric},
		dataset.Attribute{Name: "T", Kind: dataset.Numeric},
		dataset.Attribute{Name: "Y", Kind: dataset.Numeric},
	)
	rel := dataset.NewRelation(s)
	for i := 0; i < n; i++ {
		a := rng.Float64() * 10
		b := rng.Float64() * 10
		tm := 100 * float64(i) / float64(n)
		var y float64
		if tm < 50 {
			y = 2*a + 3*b
		} else {
			y = -a + 0.5*b + 10
		}
		y += noise * (2*rng.Float64() - 1)
		rel.MustAppend(dataset.Tuple{dataset.Num(a), dataset.Num(b), dataset.Num(tm), dataset.Num(y)})
	}
	return rel
}

func TestDiscoverMultiFeature(t *testing.T) {
	rel := multiXRelation(800, 0.2, 1)
	preds := predicate.Generate(rel, []int{2}, predicate.GeneratorConfig{})
	res, err := DiscoverWithConfig(rel, DiscoverConfig{
		XAttrs:  []int{0, 1}, // A, B
		YAttr:   3,
		RhoM:    0.5,
		Preds:   preds, // conditions over T only
		Trainer: regress.LinearTrainer{},
	})
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if cov := res.Rules.Coverage(rel); cov != 1 {
		t.Fatalf("coverage = %v", cov)
	}
	if !res.Rules.Holds(rel) {
		t.Fatal("multi-feature rules violated")
	}
	// Two regimes plus a handful of boundary slivers (finite-sample gain
	// noise can misplace the cut by a tuple or two).
	if res.Rules.NumRules() > 12 {
		t.Errorf("rules = %d, want a handful", res.Rules.NumRules())
	}
	if rmse := res.Rules.RMSE(rel); rmse > 0.3 {
		t.Errorf("RMSE = %v", rmse)
	}
	// The recovered coefficient structure matches the generator.
	found2x3 := false
	for _, r := range res.Rules.Rules {
		lin, ok := r.Model.(*regress.Linear)
		if !ok {
			continue
		}
		if absDiff(lin.W[1], 2) < 0.05 && absDiff(lin.W[2], 3) < 0.05 {
			found2x3 = true
		}
	}
	if !found2x3 {
		t.Error("regime-1 coefficients (2, 3) not recovered")
	}
}

func TestDiscoverMultiFeatureCompactionAndCodec(t *testing.T) {
	rel := multiXRelation(600, 0.2, 2)
	preds := predicate.Generate(rel, []int{2}, predicate.GeneratorConfig{})
	res, err := DiscoverWithConfig(rel, DiscoverConfig{
		XAttrs: []int{0, 1}, YAttr: 3, RhoM: 0.5,
		Preds: preds, Trainer: regress.LinearTrainer{},
	})
	if err != nil {
		t.Fatal(err)
	}
	compacted, _ := Compact(res.Rules)
	d := CompareOn(rel, res.Rules, compacted, 1e-9)
	if !d.Equivalent() {
		t.Errorf("multi-feature compaction not equivalent: %+v", d)
	}
	// The prediction index anchors on XAttrs[0] = A, but conditions bound T
	// only: every conjunction must land in the overflow path and still work.
	for _, tp := range rel.Tuples[:50] {
		p1, ok1 := res.Rules.Predict(tp)
		p2, ok2 := predictLinearScan(res.Rules, tp)
		if ok1 != ok2 || p1 != p2 {
			t.Fatal("index diverged from linear scan on overflow-only conditions")
		}
	}
}

// DiscoverTargets mines one rule set per target column.
func TestDiscoverTargets(t *testing.T) {
	rel := multiXRelation(400, 0.2, 3)
	preds := predicate.Generate(rel, []int{2}, predicate.GeneratorConfig{})
	sets, err := DiscoverTargets(context.Background(), rel, []int{3, 0}, DiscoverConfig{
		XAttrs: []int{1}, // B predicts both Y and A (A poorly, but covered)
		RhoM:   20,
		Preds:  preds, Trainer: regress.LinearTrainer{},
	})
	if err != nil {
		t.Fatalf("DiscoverTargets: %v", err)
	}
	if len(sets) != 2 {
		t.Fatalf("sets = %d, want 2", len(sets))
	}
	for y, rs := range sets {
		if cov := rs.Coverage(rel); cov != 1 {
			t.Errorf("target %d coverage = %v", y, cov)
		}
	}
	// A target clashing with X is rejected.
	if _, err := DiscoverTargets(context.Background(), rel, []int{1}, DiscoverConfig{
		XAttrs: []int{1}, RhoM: 1, Trainer: regress.LinearTrainer{},
	}); err == nil {
		t.Error("Y ∈ X accepted by DiscoverTargets")
	}
}

// TestDiscoverTargetsBitwise: DiscoverTargets routes every target through the
// same strategy seam as Discover, so mining targets jointly and one at a time
// must be bitwise-identical (conditions, ρ bits, model coefficients).
func TestDiscoverTargetsBitwise(t *testing.T) {
	rel := multiXRelation(400, 0.2, 3)
	preds := predicate.Generate(rel, []int{2}, predicate.GeneratorConfig{})
	cfg := DiscoverConfig{
		XAttrs: []int{1},
		RhoM:   20,
		Preds:  preds, Trainer: regress.LinearTrainer{},
	}
	targets := []int{3, 0}
	sets, err := DiscoverTargets(context.Background(), rel, targets, cfg)
	if err != nil {
		t.Fatalf("DiscoverTargets: %v", err)
	}
	for _, y := range targets {
		c := cfg
		c.YAttr = y
		res, err := Discover(context.Background(), rel, WithConfig(c))
		if err != nil {
			t.Fatalf("Discover target %d: %v", y, err)
		}
		sameRuleSet(t, res.Rules, sets[y])
	}
}
