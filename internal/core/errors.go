package core

import (
	"errors"
	"fmt"
)

// Typed sentinel errors for the discovery engine. Every failure surfaced by
// Discover, DiscoverTargets, Maintain and CompactCtx wraps one of these, so
// callers branch with errors.Is instead of string matching.
var (
	// ErrNoTrainer reports a nil DiscoverConfig.Trainer on the deprecated
	// config entrypoints (the options API defaults to OLS instead).
	ErrNoTrainer = errors.New("core: DiscoverConfig.Trainer is nil")
	// ErrTrivialTarget reports Y ∈ X, which would only yield trivially
	// satisfiable rules (Reflexivity, Proposition 1).
	ErrTrivialTarget = errors.New("core: Y ∈ X would only yield trivial rules (Reflexivity)")
	// ErrPredicateOnTarget reports a predicate space mentioning the target
	// attribute, which Definition 1 forbids.
	ErrPredicateOnTarget = errors.New("core: predicate space mentions the target attribute")
	// ErrNonNumericTarget reports a categorical regression target.
	ErrNonNumericTarget = errors.New("core: regression target must be numeric")
	// ErrEmptyRelation reports a relation with no tuples; the options-API
	// Discover refuses it rather than returning a vacuous rule set.
	ErrEmptyRelation = errors.New("core: relation has no tuples")
	// ErrNoPredicates reports an explicitly empty predicate space on the
	// options-API Discover (omit WithPredicates to auto-generate ℙ instead).
	ErrNoPredicates = errors.New("core: empty predicate space")
	// ErrTuplesRequired reports a path that needs tuple-backed data — the
	// RowScan reference engine, the stability strategy's bootstrap resampling
	// — invoked on a column-store-backed discovery, where no Relation exists.
	ErrTuplesRequired = errors.New("core: this path requires tuple-backed data, but discovery runs over a column store")
	// ErrCanceled reports a discovery, maintenance or compaction run cut
	// short by context cancellation or deadline. It wraps the context's own
	// error, so errors.Is(err, context.Canceled) and
	// errors.Is(err, context.DeadlineExceeded) also hold.
	ErrCanceled = errors.New("core: run canceled")
)

// canceled wraps a context error so both ErrCanceled and the context's own
// sentinel match under errors.Is.
func canceled(cause error) error {
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}
