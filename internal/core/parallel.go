package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

// DiscoverParallel runs Algorithm 1 with a worker pool: independent
// condition parts are processed concurrently and the shared model set F is
// guarded by a mutex. Compared to Discover:
//
//   - the ind(C) queue ordering becomes best-effort (workers race), so the
//     Table IV ordering experiments require the sequential Discover;
//   - the discovered rule set is deterministic as a *coverage* (every part is
//     processed exactly once) but rule order, share attributions and exact
//     rule count can vary run-to-run when different workers win the race to
//     publish a shareable model.
//
// All Problem 1 invariants hold: the output covers D and every rule holds on
// its part. workers ≤ 0 selects runtime.NumCPU().
func DiscoverParallel(rel *dataset.Relation, cfg DiscoverConfig, workers int) (*DiscoverResult, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers == 1 {
		return Discover(rel, cfg)
	}
	if cfg.Trainer == nil {
		return nil, errNoTrainer
	}
	if rel.Schema.Attr(cfg.YAttr).Kind != dataset.Numeric {
		return nil, errNonNumY
	}
	for _, a := range cfg.XAttrs {
		if a == cfg.YAttr {
			return nil, errTrivial
		}
	}
	for _, p := range cfg.Preds {
		if p.Attr == cfg.YAttr {
			return nil, errPredOnY
		}
	}
	minSupport := cfg.MinSupport
	if minSupport <= 0 {
		minSupport = len(cfg.XAttrs) + 2
	}

	all := make([]int, 0, rel.Len())
	for i, t := range rel.Tuples {
		if t[cfg.YAttr].Null {
			continue
		}
		ok := true
		for _, a := range cfg.XAttrs {
			if t[a].Null {
				ok = false
				break
			}
		}
		if ok {
			all = append(all, i)
		}
	}
	out := &DiscoverResult{Rules: &RuleSet{
		Schema: rel.Schema,
		XAttrs: append([]int(nil), cfg.XAttrs...),
		YAttr:  cfg.YAttr,
	}}
	if len(all) == 0 {
		return out, nil
	}
	var ysum float64
	for _, i := range all {
		ysum += rel.Tuples[i][cfg.YAttr].Num
	}
	out.Rules.Fallback = ysum / float64(len(all))

	si := newSplitIndex(cfg.Preds)
	st := &parState{
		cond:    sync.NewCond(&sync.Mutex{}),
		visited: map[string]bool{conjKey(predicate.NewConjunction()): true},
		shared:  append([]regress.Model(nil), cfg.SeedModels...),
		ruleOf:  map[regress.Model]int{},
	}
	st.queue = append(st.queue, &condItem{conj: predicate.NewConjunction(), idxs: all})

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := parWorker(rel, cfg, si, minSupport, st, out); err != nil {
				select {
				case errs <- err:
				default:
				}
				st.abort()
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}
	// Stable output order: sort rules by their first conjunction rendering.
	sort.SliceStable(out.Rules.Rules, func(i, j int) bool {
		return ruleSortKey(&out.Rules.Rules[i]) < ruleSortKey(&out.Rules.Rules[j])
	})
	return out, nil
}

func ruleSortKey(r *CRR) string {
	if len(r.Cond.Conjs) == 0 {
		return ""
	}
	return conjKey(r.Cond.Conjs[0])
}

// parState is the shared state of the worker pool.
type parState struct {
	cond     *sync.Cond
	queue    []*condItem
	inflight int
	aborted  bool

	visited map[string]bool
	shared  []regress.Model
	ruleOf  map[regress.Model]int
}

func (st *parState) abort() {
	st.cond.L.Lock()
	st.aborted = true
	st.cond.L.Unlock()
	st.cond.Broadcast()
}

// next pops a work item, blocking while the queue is drained but peers are
// still expanding. ok is false when the search is complete or aborted.
func (st *parState) next() (*condItem, bool) {
	st.cond.L.Lock()
	defer st.cond.L.Unlock()
	for {
		if st.aborted {
			return nil, false
		}
		if len(st.queue) > 0 {
			item := st.queue[len(st.queue)-1]
			st.queue = st.queue[:len(st.queue)-1]
			st.inflight++
			return item, true
		}
		if st.inflight == 0 {
			return nil, false
		}
		st.cond.Wait()
	}
}

// done publishes the children of a finished item.
func (st *parState) done(children []*condItem) {
	st.cond.L.Lock()
	for _, ch := range children {
		key := conjKey(ch.conj)
		if !st.visited[key] {
			st.visited[key] = true
			st.queue = append(st.queue, ch)
		}
	}
	st.inflight--
	st.cond.L.Unlock()
	st.cond.Broadcast()
}

func parWorker(rel *dataset.Relation, cfg DiscoverConfig, si *splitIndex, minSupport int,
	st *parState, out *DiscoverResult) error {
	for {
		item, ok := st.next()
		if !ok {
			return nil
		}
		var children []*condItem
		err := func() error {
			if len(item.idxs) == 0 {
				return nil
			}
			st.cond.L.Lock()
			out.Stats.NodesExpanded++
			st.cond.L.Unlock()
			x, y, _ := FeatureRows(rel, item.idxs, cfg.XAttrs, cfg.YAttr)

			if !cfg.DisableSharing {
				st.cond.L.Lock()
				pool := append([]regress.Model(nil), st.shared...)
				st.cond.L.Unlock()
				if model, res, hit := findShare(pool, x, y, cfg.RhoM); hit {
					conj := item.conj.Clone()
					conj.Builtin = conj.Builtin.WithYShift(res.Delta0)
					st.cond.L.Lock()
					out.Stats.ShareHits++
					st.cond.L.Unlock()
					emitPar(out, st, cfg, model, res.MaxErr, conj)
					return nil
				}
			}
			model, err := cfg.Trainer.Train(x, y)
			if err != nil {
				return fmt.Errorf("core: parallel training on %d tuples: %w", len(x), err)
			}
			st.cond.L.Lock()
			out.Stats.ModelsTrained++
			st.cond.L.Unlock()
			maxErr := regress.MaxAbsError(model, x, y)
			accept := maxErr <= cfg.RhoM
			var parts []childPart
			if !accept {
				if len(item.idxs) <= minSupport {
					accept = true
				} else {
					parts = bestSplit(rel, item.idxs, si, cfg.YAttr)
					if len(parts) == 0 {
						accept = true
					}
				}
			}
			if accept {
				emitPar(out, st, cfg, model, maxErr, item.conj)
				st.cond.L.Lock()
				st.shared = append(st.shared, model)
				st.cond.L.Unlock()
				return nil
			}
			for _, ch := range parts {
				children = append(children, &condItem{conj: item.conj.And(ch.pred), idxs: ch.idxs})
			}
			return nil
		}()
		st.done(children)
		if err != nil {
			return err
		}
	}
}

// emitPar appends a rule under the shared lock, honoring FuseShared.
func emitPar(out *DiscoverResult, st *parState, cfg DiscoverConfig,
	model regress.Model, rho float64, conj predicate.Conjunction) {
	conj = conj.Normalize()
	st.cond.L.Lock()
	defer st.cond.L.Unlock()
	if cfg.FuseShared {
		if ri, ok := st.ruleOf[model]; ok {
			r := &out.Rules.Rules[ri]
			r.Cond.Conjs = append(r.Cond.Conjs, conj)
			if rho > r.Rho {
				r.Rho = rho
			}
			return
		}
		st.ruleOf[model] = len(out.Rules.Rules)
	}
	out.Rules.Rules = append(out.Rules.Rules, CRR{
		Model:  model,
		Rho:    rho,
		Cond:   predicate.NewDNF(conj),
		XAttrs: out.Rules.XAttrs,
		YAttr:  cfg.YAttr,
	})
}
