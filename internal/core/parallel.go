package core

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

// DiscoverParallel runs the configured strategy with an explicit worker
// count and no cancellation — the pre-options API, now a thin shim over the
// strategy seam. workers ≤ 0 selects one worker per CPU; 1 runs the
// sequential engine.
//
// Deprecated: use Discover with a context and WithWorkers(workers).
func DiscoverParallel(rel *dataset.Relation, cfg DiscoverConfig, workers int) (*DiscoverResult, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	cfg.Workers = workers
	return discoverFor(context.Background(), rel, cfg)
}

// latticePar runs Algorithm 1 with a worker pool: independent
// condition parts are processed concurrently, the shared model set F is
// guarded by a mutex, and each worker drives the same hot path as the
// sequential engine (hotpath.go), so accept/force/split semantics —
// including MinSupport, Proposition 8 split sizing and the MaxNodes runaway
// guard with its coverage-forced drain — cannot diverge between engines.
// Compared to the sequential engine:
//
//   - the ind(C) queue ordering becomes best-effort (workers race over a
//     LIFO work list), so the Table IV ordering experiments require the
//     sequential engine;
//   - the discovered rule set is deterministic as a *coverage* (every part is
//     processed exactly once) but rule order, share attributions and exact
//     rule count can vary run-to-run when different workers win the race to
//     publish a shareable model.
//
// All Problem 1 invariants hold: the output covers D and every rule holds on
// its part. cfg.Workers < 0 selects runtime.NumCPU().
//
// Cancellation: a watcher goroutine aborts the pool when ctx is done, so
// every worker returns within one queue iteration and no goroutine outlives
// the call — wg.Wait() runs before returning on every path.
func latticePar(ctx context.Context, sub *Substrate) (*DiscoverResult, error) {
	cfg := sub.cfg
	workers := cfg.Workers
	if workers < 0 {
		workers = runtime.NumCPU()
	}
	if workers <= 1 {
		return latticeSeq(ctx, sub)
	}
	all := sub.all
	out := sub.NewResult()
	if len(all) == 0 {
		return out, nil
	}
	hl := sub.hot(false)
	root := &condItem{conj: predicate.NewConjunction(), idxs: all, gram: hl.rootGram(all)}
	st := &parState{
		cond:    sync.NewCond(&sync.Mutex{}),
		visited: map[string]bool{conjKey(root.conj.Normalize()): true},
		shared:  append([]regress.Model(nil), cfg.SeedModels...),
		ruleOf:  map[regress.Model]int{},
	}
	st.queue = append(st.queue, root)

	// The watcher turns context cancellation into a pool abort; doneCh is
	// closed after wg.Wait so the watcher never leaks either.
	doneCh := make(chan struct{})
	var watchWG sync.WaitGroup
	watchWG.Add(1)
	go func() {
		defer watchWG.Done()
		select {
		case <-ctx.Done():
			st.abort()
		case <-doneCh:
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := parWorker(ctx, hl, st, out); err != nil {
				select {
				case errs <- err:
				default:
				}
				st.abort()
			}
		}()
	}
	wg.Wait()
	close(doneCh)
	watchWG.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, canceled(err)
	}
	// Stable output order: sort rules by their first conjunction rendering.
	sort.SliceStable(out.Rules.Rules, func(i, j int) bool {
		return ruleSortKey(&out.Rules.Rules[i]) < ruleSortKey(&out.Rules.Rules[j])
	})
	return out, nil
}

func ruleSortKey(r *CRR) string {
	if len(r.Cond.Conjs) == 0 {
		return ""
	}
	return conjKey(r.Cond.Conjs[0])
}

// parState is the shared state of the worker pool.
type parState struct {
	cond     *sync.Cond
	queue    []*condItem
	inflight int
	aborted  bool

	visited map[string]bool
	shared  []regress.Model
	ruleOf  map[regress.Model]int
}

func (st *parState) abort() {
	st.cond.L.Lock()
	st.aborted = true
	st.cond.L.Unlock()
	st.cond.Broadcast()
}

// next pops a work item, blocking while the queue is drained but peers are
// still expanding. ok is false when the search is complete or aborted.
func (st *parState) next() (*condItem, bool) {
	st.cond.L.Lock()
	defer st.cond.L.Unlock()
	for {
		if st.aborted {
			return nil, false
		}
		if len(st.queue) > 0 {
			item := st.queue[len(st.queue)-1]
			st.queue = st.queue[:len(st.queue)-1]
			st.inflight++
			return item, true
		}
		if st.inflight == 0 {
			return nil, false
		}
		st.cond.Wait()
	}
}

// done publishes the children of a finished item. Like the sequential
// engine's visited set, keys are normalized conjunctions, so equivalent
// refinements reached along different paths expand once.
func (st *parState) done(children []*condItem) {
	st.cond.L.Lock()
	for _, ch := range children {
		key := conjKey(ch.conj.Normalize())
		if !st.visited[key] {
			st.visited[key] = true
			st.queue = append(st.queue, ch)
		}
	}
	st.inflight--
	st.cond.L.Unlock()
	st.cond.Broadcast()
}

func parWorker(ctx context.Context, hl *hotLoop, st *parState, out *DiscoverResult) error {
	cfg := hl.cfg
	tel := hl.tel
	ws := hl.workspace()
	for {
		// Per-iteration cancellation point, mirroring the sequential
		// engine's queue-pop check (the watcher also aborts st, but this
		// keeps the bound at one iteration even mid-burst).
		if ctx.Err() != nil {
			return nil
		}
		item, ok := st.next()
		if !ok {
			return nil
		}
		var children []*condItem
		err := func() error {
			if len(item.idxs) == 0 {
				return nil
			}
			st.cond.L.Lock()
			capped := out.Stats.NodesExpanded >= cfg.MaxNodes
			var pool []regress.Model
			if !capped {
				out.Stats.NodesExpanded++
				pool = append(pool, st.shared...)
			}
			st.cond.L.Unlock()

			if capped {
				// The MaxNodes runaway guard tripped: stop refining and
				// force-accept a model for every remaining part, exactly
				// like the sequential engine's drain loop — Problem 1
				// requires Σ to cover D, so abandoned parts are not an
				// option. The expansion counter is checked and advanced
				// under the lock, so it never exceeds MaxNodes.
				x, y := ws.part(item.idxs)
				model, _, err := ws.trainPart(item, x, y)
				if err != nil {
					return err
				}
				emitPar(out, st, *cfg, model, regress.MaxAbsError(model, x, y), item.conj)
				st.cond.L.Lock()
				out.Stats.ModelsTrained++
				out.Stats.ForcedRules++
				st.cond.L.Unlock()
				tel.trained.Inc()
				tel.forced.Inc()
				return nil
			}
			tel.nodes.Inc()

			ev, err := ws.evaluate(item, pool)
			if err != nil {
				return err
			}
			if ev.hit {
				conj := item.conj.Clone()
				conj.Builtin = conj.Builtin.WithYShift(ev.share.Delta0)
				st.cond.L.Lock()
				out.Stats.ShareHits++
				st.cond.L.Unlock()
				tel.shared.Inc()
				emitPar(out, st, *cfg, ev.model, ev.share.MaxErr, conj)
				return nil
			}
			st.cond.L.Lock()
			out.Stats.ModelsTrained++
			st.cond.L.Unlock()
			tel.trained.Inc()
			if ev.accept {
				emitPar(out, st, *cfg, ev.model, ev.maxErr, item.conj)
				st.cond.L.Lock()
				st.shared = append(st.shared, ev.model)
				if ev.forced {
					out.Stats.ForcedRules++
				}
				st.cond.L.Unlock()
				if ev.forced {
					tel.forced.Inc()
				}
				return nil
			}
			for _, ch := range ev.children {
				children = append(children, &condItem{conj: item.conj.And(ch.pred), idxs: ch.idxs, gram: ch.gram})
			}
			return nil
		}()
		st.done(children)
		st.cond.L.Lock()
		depth := len(st.queue)
		st.cond.L.Unlock()
		tel.queueDepth.Set(float64(depth))
		if err != nil {
			return err
		}
	}
}

// emitPar appends a rule under the shared lock, honoring FuseShared.
func emitPar(out *DiscoverResult, st *parState, cfg DiscoverConfig,
	model regress.Model, rho float64, conj predicate.Conjunction) {
	conj = conj.Normalize()
	st.cond.L.Lock()
	defer st.cond.L.Unlock()
	if cfg.FuseShared {
		if ri, ok := st.ruleOf[model]; ok {
			r := &out.Rules.Rules[ri]
			r.Cond.Conjs = append(r.Cond.Conjs, conj)
			if rho > r.Rho {
				r.Rho = rho
			}
			return
		}
		st.ruleOf[model] = len(out.Rules.Rules)
	}
	out.Rules.Rules = append(out.Rules.Rules, CRR{
		Model:  model,
		Rho:    rho,
		Cond:   predicate.NewDNF(conj),
		XAttrs: out.Rules.XAttrs,
		YAttr:  cfg.YAttr,
	})
}
