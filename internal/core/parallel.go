package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

// DiscoverParallel runs the parallel discovery engine with an explicit
// configuration and no cancellation — the pre-options API.
//
// Deprecated: use Discover with a context and WithWorkers(workers).
func DiscoverParallel(rel *dataset.Relation, cfg DiscoverConfig, workers int) (*DiscoverResult, error) {
	cfg.Workers = workers
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.Workers == 1 {
		return discoverSeq(context.Background(), rel, cfg)
	}
	return discoverParallel(context.Background(), rel, cfg)
}

// discoverParallel runs Algorithm 1 with a worker pool: independent
// condition parts are processed concurrently and the shared model set F is
// guarded by a mutex. Compared to the sequential engine:
//
//   - the ind(C) queue ordering becomes best-effort (workers race), so the
//     Table IV ordering experiments require the sequential engine;
//   - the discovered rule set is deterministic as a *coverage* (every part is
//     processed exactly once) but rule order, share attributions and exact
//     rule count can vary run-to-run when different workers win the race to
//     publish a shareable model.
//
// All Problem 1 invariants hold: the output covers D and every rule holds on
// its part. cfg.Workers < 0 selects runtime.NumCPU().
//
// Cancellation: a watcher goroutine aborts the pool when ctx is done, so
// every worker returns within one queue iteration and no goroutine outlives
// the call — wg.Wait() runs before returning on every path.
func discoverParallel(ctx context.Context, rel *dataset.Relation, cfg DiscoverConfig) (*DiscoverResult, error) {
	workers := cfg.Workers
	if workers < 0 {
		workers = runtime.NumCPU()
	}
	if workers <= 1 {
		return discoverSeq(ctx, rel, cfg)
	}
	all, out, err := discoverPrep(rel, &cfg)
	if err != nil {
		return nil, err
	}
	if len(all) == 0 {
		return out, nil
	}
	tel := newDiscTel(cfg.Telemetry)

	si := newSplitIndex(cfg.Preds)
	st := &parState{
		cond:    sync.NewCond(&sync.Mutex{}),
		visited: map[string]bool{conjKey(predicate.NewConjunction()): true},
		shared:  append([]regress.Model(nil), cfg.SeedModels...),
		ruleOf:  map[regress.Model]int{},
	}
	st.queue = append(st.queue, &condItem{conj: predicate.NewConjunction(), idxs: all})

	// The watcher turns context cancellation into a pool abort; doneCh is
	// closed after wg.Wait so the watcher never leaks either.
	doneCh := make(chan struct{})
	var watchWG sync.WaitGroup
	watchWG.Add(1)
	go func() {
		defer watchWG.Done()
		select {
		case <-ctx.Done():
			st.abort()
		case <-doneCh:
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := parWorker(ctx, rel, cfg, si, st, out, tel); err != nil {
				select {
				case errs <- err:
				default:
				}
				st.abort()
			}
		}()
	}
	wg.Wait()
	close(doneCh)
	watchWG.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, canceled(err)
	}
	// Stable output order: sort rules by their first conjunction rendering.
	sort.SliceStable(out.Rules.Rules, func(i, j int) bool {
		return ruleSortKey(&out.Rules.Rules[i]) < ruleSortKey(&out.Rules.Rules[j])
	})
	return out, nil
}

func ruleSortKey(r *CRR) string {
	if len(r.Cond.Conjs) == 0 {
		return ""
	}
	return conjKey(r.Cond.Conjs[0])
}

// parState is the shared state of the worker pool.
type parState struct {
	cond     *sync.Cond
	queue    []*condItem
	inflight int
	aborted  bool

	visited map[string]bool
	shared  []regress.Model
	ruleOf  map[regress.Model]int
}

func (st *parState) abort() {
	st.cond.L.Lock()
	st.aborted = true
	st.cond.L.Unlock()
	st.cond.Broadcast()
}

// next pops a work item, blocking while the queue is drained but peers are
// still expanding. ok is false when the search is complete or aborted.
func (st *parState) next() (*condItem, bool) {
	st.cond.L.Lock()
	defer st.cond.L.Unlock()
	for {
		if st.aborted {
			return nil, false
		}
		if len(st.queue) > 0 {
			item := st.queue[len(st.queue)-1]
			st.queue = st.queue[:len(st.queue)-1]
			st.inflight++
			return item, true
		}
		if st.inflight == 0 {
			return nil, false
		}
		st.cond.Wait()
	}
}

// done publishes the children of a finished item.
func (st *parState) done(children []*condItem) {
	st.cond.L.Lock()
	for _, ch := range children {
		key := conjKey(ch.conj)
		if !st.visited[key] {
			st.visited[key] = true
			st.queue = append(st.queue, ch)
		}
	}
	st.inflight--
	st.cond.L.Unlock()
	st.cond.Broadcast()
}

func parWorker(ctx context.Context, rel *dataset.Relation, cfg DiscoverConfig, si *splitIndex,
	st *parState, out *DiscoverResult, tel discTel) error {
	for {
		// Per-iteration cancellation point, mirroring the sequential
		// engine's queue-pop check (the watcher also aborts st, but this
		// keeps the bound at one iteration even mid-burst).
		if ctx.Err() != nil {
			return nil
		}
		item, ok := st.next()
		if !ok {
			return nil
		}
		var children []*condItem
		err := func() error {
			if len(item.idxs) == 0 {
				return nil
			}
			st.cond.L.Lock()
			out.Stats.NodesExpanded++
			st.cond.L.Unlock()
			tel.nodes.Inc()
			x, y, _ := FeatureRows(rel, item.idxs, cfg.XAttrs, cfg.YAttr)

			if !cfg.DisableSharing {
				st.cond.L.Lock()
				pool := append([]regress.Model(nil), st.shared...)
				st.cond.L.Unlock()
				start := time.Now()
				model, res, tried, hit := findShare(pool, x, y, cfg.RhoM)
				tel.shareTime.Observe(time.Since(start))
				tel.shareTests.Add(int64(tried))
				if hit {
					conj := item.conj.Clone()
					conj.Builtin = conj.Builtin.WithYShift(res.Delta0)
					st.cond.L.Lock()
					out.Stats.ShareHits++
					st.cond.L.Unlock()
					tel.shared.Inc()
					emitPar(out, st, cfg, model, res.MaxErr, conj)
					return nil
				}
			}
			start := time.Now()
			model, err := cfg.Trainer.Train(x, y)
			tel.trainTime.Observe(time.Since(start))
			if err != nil {
				return fmt.Errorf("core: parallel training on %d tuples: %w", len(x), err)
			}
			st.cond.L.Lock()
			out.Stats.ModelsTrained++
			st.cond.L.Unlock()
			tel.trained.Inc()
			maxErr := regress.MaxAbsError(model, x, y)
			accept := maxErr <= cfg.RhoM
			forced := false
			var parts []childPart
			if !accept {
				if len(item.idxs) <= cfg.MinSupport {
					accept, forced = true, true
				} else {
					parts = bestSplit(rel, item.idxs, si, cfg.YAttr)
					if len(parts) == 0 {
						accept, forced = true, true
					}
				}
			}
			if accept {
				emitPar(out, st, cfg, model, maxErr, item.conj)
				st.cond.L.Lock()
				st.shared = append(st.shared, model)
				if forced {
					out.Stats.ForcedRules++
				}
				st.cond.L.Unlock()
				if forced {
					tel.forced.Inc()
				}
				return nil
			}
			for _, ch := range parts {
				children = append(children, &condItem{conj: item.conj.And(ch.pred), idxs: ch.idxs})
			}
			return nil
		}()
		st.done(children)
		st.cond.L.Lock()
		depth := len(st.queue)
		st.cond.L.Unlock()
		tel.queueDepth.Set(float64(depth))
		if err != nil {
			return err
		}
	}
}

// emitPar appends a rule under the shared lock, honoring FuseShared.
func emitPar(out *DiscoverResult, st *parState, cfg DiscoverConfig,
	model regress.Model, rho float64, conj predicate.Conjunction) {
	conj = conj.Normalize()
	st.cond.L.Lock()
	defer st.cond.L.Unlock()
	if cfg.FuseShared {
		if ri, ok := st.ruleOf[model]; ok {
			r := &out.Rules.Rules[ri]
			r.Cond.Conjs = append(r.Cond.Conjs, conj)
			if rho > r.Rho {
				r.Rho = rho
			}
			return
		}
		st.ruleOf[model] = len(out.Rules.Rules)
	}
	out.Rules.Rules = append(out.Rules.Rules, CRR{
		Model:  model,
		Rho:    rho,
		Cond:   predicate.NewDNF(conj),
		XAttrs: out.Rules.XAttrs,
		YAttr:  cfg.YAttr,
	})
}
