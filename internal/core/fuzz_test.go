package core

import (
	"bytes"
	"strings"
	"testing"

	"github.com/crrlab/crr/internal/dataset"
)

// FuzzReadRuleSet hardens the artifact loader against hostile input. The
// serving layer feeds it operator-supplied files and hot-reload request
// bodies, so malformed, truncated or adversarial JSON must surface as an
// error — never a panic — and anything it does accept must be safe to
// Predict with and to re-serialize.
func FuzzReadRuleSet(f *testing.F) {
	// A genuine artifact as the seed the fuzzer mutates from.
	rel := piecewiseRelation(200, 0.2, 7)
	res, err := DiscoverWithConfig(rel, discoverCfg(rel, 0.5))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRuleSet(&buf, res.Rules); err != nil {
		f.Fatal(err)
	}
	valid := buf.String()
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated mid-structure
	f.Add(`{}`)
	f.Add(`{"version":2}`)
	f.Add(`{"version":1,"schema":[{"name":"A"}],"x_attrs":[0],"y_attr":0}`)
	f.Add(`{"version":2,"schema":[{"name":"A"},{"name":"B"}],"x_attrs":[0],"y_attr":1,` +
		`"x_names":["B"],"y_name":"A","rules":[]}`)
	f.Add(`{"version":2,"schema":[{"name":"A"},{"name":"B"}],"x_attrs":[-1],"y_attr":99}`)
	f.Add(`{"version":1,"schema":[{"name":"A"},{"name":"B"}],"x_attrs":[0],"y_attr":1,` +
		`"rules":[{"model":{"family":"mlp","mlp":{"in_dim":1,"w2":[1]}},"rho":-1,` +
		`"cond":[{"preds":[{"attr":1,"op":12345,"str":"x","cat":true}],"x_shift":{"7":3}}]}]}`)

	f.Fuzz(func(t *testing.T, input string) {
		rs, err := ReadRuleSet(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Whatever was accepted must behave: predicting over an all-null and
		// an all-zero tuple of the right arity must not panic, and the set
		// must survive a write/read round trip.
		width := rs.Schema.Len()
		nulls := make(dataset.Tuple, width)
		zeros := make(dataset.Tuple, width)
		for i := 0; i < width; i++ {
			nulls[i] = dataset.Null()
			if rs.Schema.Attr(i).Kind == dataset.Categorical {
				zeros[i] = dataset.Str("")
			} else {
				zeros[i] = dataset.Num(0)
			}
		}
		rs.Predict(nulls)
		rs.Predict(zeros)
		for i := range rs.Rules {
			rs.Rules[i].Sat(zeros)
		}
		var out bytes.Buffer
		if err := WriteRuleSet(&out, rs); err != nil {
			t.Fatalf("accepted rule set failed to serialize: %v", err)
		}
		back, err := ReadRuleSet(&out)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.NumRules() != rs.NumRules() || back.Schema.Len() != rs.Schema.Len() {
			t.Fatalf("round trip changed shape: %d/%d rules, %d/%d columns",
				back.NumRules(), rs.NumRules(), back.Schema.Len(), rs.Schema.Len())
		}
	})
}
