package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// countingCtx is a context whose Err() flips to context.Canceled after a
// fixed number of polls and whose Done() channel never fires. Both engines
// poll ctx.Err() at their queue-pop points (the sequential main loop and the
// parallel per-worker iteration), so sweeping the limit drives cancellation
// through every pop point without relying on goroutine timing.
type countingCtx struct {
	limit int64
	calls atomic.Int64
}

func (c *countingCtx) Err() error {
	if c.calls.Add(1) > c.limit {
		return context.Canceled
	}
	return nil
}

func (c *countingCtx) Done() <-chan struct{}                   { return nil }
func (c *countingCtx) Deadline() (deadline time.Time, ok bool) { return }
func (c *countingCtx) Value(key any) any                       { return nil }

// TestDiscoverSeqCancelEveryPop sweeps the cancellation point across every
// context poll of a sequential mine and requires the full contract at each:
// ErrCanceled wrapping context.Canceled and a nil result — never a partial
// rule set.
func TestDiscoverSeqCancelEveryPop(t *testing.T) {
	rel := piecewiseRelation(300, 0.2, 5)
	cfg := discoverCfg(rel, 0.5)

	probe := &countingCtx{limit: 1 << 30}
	if _, err := Discover(probe, rel, WithConfig(cfg)); err != nil {
		t.Fatal(err)
	}
	total := int(probe.calls.Load())
	if total < 2 {
		t.Fatalf("sequential engine polled the context %d times; the sweep needs more", total)
	}
	step := 1
	if total > 64 { // bound the sweep on deep mines, still crossing every region
		step = total / 64
	}
	for limit := 0; limit < total; limit += step {
		res, err := Discover(&countingCtx{limit: int64(limit)}, rel, WithConfig(cfg))
		if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("limit %d: err = %v, want ErrCanceled wrapping context.Canceled", limit, err)
		}
		if res != nil {
			t.Fatalf("limit %d: canceled discovery returned a partial result", limit)
		}
	}
}

// TestDiscoverParallelCancelByPolling drives the parallel engine's
// cancellation purely through Err() polling — Done() never fires, so the
// watcher goroutine cannot help. Workers must notice on their own.
func TestDiscoverParallelCancelByPolling(t *testing.T) {
	rel := piecewiseRelation(300, 0.2, 5)
	cfg := discoverCfg(rel, 0.5)
	cfg.Workers = 4
	for _, limit := range []int64{0, 1, 2, 3, 5, 8, 13} {
		res, err := Discover(&countingCtx{limit: limit}, rel, WithConfig(cfg))
		if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("limit %d: err = %v, want ErrCanceled wrapping context.Canceled", limit, err)
		}
		if res != nil {
			t.Fatalf("limit %d: canceled parallel discovery returned a partial result", limit)
		}
	}
}
