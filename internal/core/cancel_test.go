package core

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
	"github.com/crrlab/crr/internal/telemetry"
)

// cancelTrainer wraps a trainer and invokes a hook before every Train call,
// so tests can cancel a context from inside a running mine and count exactly
// how much work happened afterwards.
type cancelTrainer struct {
	inner regress.Trainer
	calls atomic.Int64
	hook  func(call int64)
}

func (c *cancelTrainer) Train(x [][]float64, y []float64) (regress.Model, error) {
	n := c.calls.Add(1)
	if c.hook != nil {
		c.hook(n)
	}
	return c.inner.Train(x, y)
}

func (c *cancelTrainer) Name() string { return c.inner.Name() }

// electricityMine builds a large Electricity relation and a tight-bias
// configuration whose mine expands many conditions — enough queue iterations
// that a mid-flight cancel is observable.
func electricityMine(t *testing.T, rows int) (*dataset.Relation, DiscoverConfig) {
	t.Helper()
	rel := dataset.GenerateElectricity(dataset.ElectricityConfig{Rows: rows, Noise: 0.05, Seed: 3})
	preds := predicate.Generate(rel, []int{0}, predicate.GeneratorConfig{Kind: predicate.Binary})
	return rel, DiscoverConfig{
		XAttrs:  []int{4, 5, 6}, // Sub1..Sub3
		YAttr:   1,              // GlobalActivePower
		RhoM:    0.02,           // below the noise floor: forces deep refinement
		Preds:   preds,
		Trainer: regress.LinearTrainer{},
	}
}

// TestDiscoverCancelMidMine is the acceptance-criteria test: cancel a
// running discovery over a large Electricity relation from inside the
// training loop and require (a) an error matching both ErrCanceled and
// context.Canceled, and (b) at most one condition-queue iteration (hence at
// most one Train call) after the cancellation.
func TestDiscoverCancelMidMine(t *testing.T) {
	rel, cfg := electricityMine(t, 8000)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const cancelAt = 5
	tr := &cancelTrainer{inner: regress.LinearTrainer{}, hook: func(n int64) {
		if n == cancelAt {
			cancel()
		}
	}}
	cfg.Trainer = tr

	res, err := Discover(ctx, rel, WithConfig(cfg))
	if err == nil {
		t.Fatalf("Discover finished (%d rules) before the cancel took effect; grow the relation",
			res.Rules.NumRules())
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("errors.Is(err, ErrCanceled) = false; err = %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false; err = %v", err)
	}
	// The cancel fires inside Train call #cancelAt; the engine may finish
	// that queue iteration but must stop at the next pop, so no further
	// Train calls can happen.
	if got := tr.calls.Load(); got > cancelAt+1 {
		t.Errorf("trainer ran %d times; want ≤ %d (one queue iteration after cancel)", got, cancelAt+1)
	}
}

// TestDiscoverDeadline: an already-expired deadline stops the mine at the
// first queue pop and reports DeadlineExceeded through ErrCanceled.
func TestDiscoverDeadline(t *testing.T) {
	rel, cfg := electricityMine(t, 2000)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := Discover(ctx, rel, WithConfig(cfg))
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
}

// TestDiscoverPreCanceled: a context canceled before the call never reaches
// a Train.
func TestDiscoverPreCanceled(t *testing.T) {
	rel, cfg := electricityMine(t, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr := &cancelTrainer{inner: regress.LinearTrainer{}}
	cfg.Trainer = tr
	if _, err := Discover(ctx, rel, WithConfig(cfg)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if tr.calls.Load() != 0 {
		t.Errorf("trainer ran %d times under a pre-canceled context", tr.calls.Load())
	}
}

// TestParallelCancelNoGoroutineLeak cancels a parallel mine mid-flight and
// verifies both the prompt canceled error and that every worker (and the
// context watcher) has exited.
func TestParallelCancelNoGoroutineLeak(t *testing.T) {
	rel, cfg := electricityMine(t, 8000)
	cfg.Workers = 4
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tr := &cancelTrainer{inner: regress.LinearTrainer{}, hook: func(n int64) {
		if n == 8 {
			cancel()
		}
	}}
	cfg.Trainer = tr

	_, err := Discover(ctx, rel, WithConfig(cfg))
	if err == nil {
		t.Fatal("parallel mine finished before the cancel took effect; grow the relation")
	}
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	// All pool goroutines are joined before discoverParallel returns, so the
	// count must come back to the baseline (tolerating unrelated runtime
	// goroutines that may come and go).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestParallelCompletesUncanceled: the ctx-aware pool still terminates
// normally and covers the data when never canceled.
func TestParallelCompletesUncanceled(t *testing.T) {
	rel, cfg := electricityMine(t, 1500)
	cfg.RhoM = 0.2
	cfg.Workers = 4
	res, err := Discover(context.Background(), rel, WithConfig(cfg))
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if cov := res.Rules.Coverage(rel); cov != 1 {
		t.Errorf("coverage = %v", cov)
	}
}

// TestDiscoverTargetsCancel: cancellation between per-target mines surfaces
// the sentinel too.
func TestDiscoverTargetsCancel(t *testing.T) {
	rel, cfg := electricityMine(t, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DiscoverTargets(ctx, rel, []int{1, 2}, cfg); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestCompactCancel: a pre-canceled context stops Algorithm 2 before any
// pivot is processed.
func TestCompactCancel(t *testing.T) {
	rel := piecewiseRelation(600, 0.2, 1)
	res, err := DiscoverWithConfig(rel, discoverCfg(rel, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := CompactCtx(ctx, res.Rules, CompactOptions{}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestMaintainCancel: the context reaches the inner re-discovery.
func TestMaintainCancel(t *testing.T) {
	rel := piecewiseRelation(600, 0.2, 1)
	cfg := discoverCfg(rel, 0.5)
	res, err := DiscoverWithConfig(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// New tuples in a brand-new regime force a re-discovery pass.
	grown := rel.Clone()
	var newIdx []int
	for i := 0; i < 50; i++ {
		t0 := grown.Tuples[i]
		nt := make(dataset.Tuple, len(t0))
		copy(nt, t0)
		nt[0].Num += 1000
		nt[1].Num += 500
		newIdx = append(newIdx, len(grown.Tuples))
		grown.Tuples = append(grown.Tuples, nt)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := Maintain(ctx, grown, res.Rules, newIdx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestDiscoverTelemetryMatchesStats: the registry's counters must agree with
// the engine's own statistics.
func TestDiscoverTelemetryMatchesStats(t *testing.T) {
	rel := piecewiseRelation(600, 0.2, 1)
	cfg := discoverCfg(rel, 0.5)
	reg := telemetry.New()
	cfg.Telemetry = reg
	res, err := Discover(context.Background(), rel, WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[telemetry.MetricModelsTrained]; got != int64(res.Stats.ModelsTrained) {
		t.Errorf("models_trained = %d, stats say %d", got, res.Stats.ModelsTrained)
	}
	if got := snap.Counters[telemetry.MetricModelsShared]; got != int64(res.Stats.ShareHits) {
		t.Errorf("models_shared = %d, stats say %d", got, res.Stats.ShareHits)
	}
	if got := snap.Counters[telemetry.MetricConditionsExpanded]; got != int64(res.Stats.NodesExpanded) {
		t.Errorf("conditions_expanded = %d, stats say %d", got, res.Stats.NodesExpanded)
	}
	if d := snap.Durations[telemetry.MetricTrainTime]; d.Count != int64(res.Stats.ModelsTrained) {
		t.Errorf("train_time count = %d, want %d", d.Count, res.Stats.ModelsTrained)
	}

	// Prediction-index counters.
	res.Rules.SetTelemetry(reg)
	for _, tp := range rel.Tuples[:50] {
		res.Rules.Predict(tp)
	}
	if got := reg.Snapshot().Counters[telemetry.MetricIndexLookups]; got != 50 {
		t.Errorf("index_lookups = %d, want 50", got)
	}
}
