package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"github.com/crrlab/crr/internal/regress"
)

// FuzzCompactSoundness fuzzes Algorithm 2 over randomly generated rule sets
// (disjoint windows, clustered slopes so Translation/Fusion/Implied all
// fire) and asserts the inference-soundness contract on every output:
// compaction never grows the set, never changes coverage, and predictions
// drift at most by the documented tolerance bound.
func FuzzCompactSoundness(f *testing.F) {
	f.Add(int64(1), uint8(4), false)
	f.Add(int64(2), uint8(7), true)
	f.Add(int64(99), uint8(1), false)
	f.Add(int64(-5), uint8(12), true)

	f.Fuzz(func(t *testing.T, seed int64, n uint8, loose bool) {
		rules := 1 + int(n%12)
		rng := rand.New(rand.NewSource(seed))
		rs := &RuleSet{Schema: lineSchema(), XAttrs: []int{0}, YAttr: 1, Fallback: rng.NormFloat64()}
		tol := 0.0
		if loose {
			tol = 0.01
		}
		for i := 0; i < rules; i++ {
			slope := float64(1 + rng.Intn(3))
			if loose && rng.Intn(2) == 0 {
				slope += rng.Float64() * 0.004 // within the loose model tolerance
			}
			lo := float64(i * 10)
			rs.Rules = append(rs.Rules, ruleOn(
				regress.NewLinear(rng.NormFloat64()*20, slope),
				0.1+rng.Float64(), condRange(lo, lo+10)))
		}

		out, stats, err := CompactCtx(context.Background(), rs, CompactOptions{ModelTol: tol})
		if err != nil {
			t.Fatalf("CompactCtx: %v", err)
		}
		if out.NumRules() > rs.NumRules() {
			t.Fatalf("compaction grew the set: %d → %d", rs.NumRules(), out.NumRules())
		}
		if got := stats.Translations + stats.Fusions + stats.Implied; got > 3*rs.NumRules() {
			t.Fatalf("implausible inference count %d for %d rules", got, rs.NumRules())
		}

		// Drift bound over the sampled domain: per slope dimension the
		// unified parameters differ by at most the effective tolerance, and
		// a rule passes through at most two drifting inferences.
		effTol := tol
		if effTol <= 0 {
			effTol = 1e-6
		}
		scale := 1 + 10*float64(rules)
		bound := 2 * (1e-9 + 2*effTol*scale)
		for x := -5.0; x < 10*float64(rules)+5; x += 0.7 {
			tp := lineTuple(x, 0, "a")
			p1, ok1 := rs.Predict(tp)
			p2, ok2 := out.Predict(tp)
			if ok1 != ok2 {
				t.Fatalf("coverage changed at x=%v: %v → %v", x, ok1, ok2)
			}
			if ok1 && math.Abs(p1-p2) > bound {
				t.Fatalf("x=%v: prediction drift %g exceeds bound %g (tol %g)",
					x, math.Abs(p1-p2), bound, tol)
			}
		}
	})
}
