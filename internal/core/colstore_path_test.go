package core_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/experiments"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

// TestDiscoverColumnsBitwise: DiscoverColumns over a ColumnSet (no Relation
// anywhere in the run) must be bitwise-identical to Discover over the
// relation the ColumnSet was built from, on every generator, nulls included.
// This is the contract that lets the out-of-core store feed discovery: an
// mmap'd store adopts into exactly this kind of ColumnSet.
func TestDiscoverColumnsBitwise(t *testing.T) {
	for _, spec := range propertySpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(41))
			rel := maskedRelation(spec, 500, rng)
			preds := predicate.Generate(rel, spec.CondAttrs, predicate.GeneratorConfig{
				Kind: predicate.Binary, Size: 48, Seed: 17,
			})
			cfg := core.DiscoverConfig{
				XAttrs:  spec.XAttrs,
				YAttr:   spec.YAttr,
				RhoM:    spec.RhoM,
				Preds:   preds,
				Trainer: regress.LinearTrainer{},
			}
			relRes, err := core.Discover(context.Background(), rel, core.WithConfig(cfg))
			if err != nil {
				t.Fatal(err)
			}
			colRes, err := core.DiscoverColumns(context.Background(), dataset.NewColumnSet(rel), core.WithConfig(cfg))
			if err != nil {
				t.Fatal(err)
			}
			if !experiments.SameRules(relRes.Rules, colRes.Rules, 0) {
				t.Fatal("relation-backed and column-backed discovery output not bitwise-identical")
			}
			if relRes.Stats != colRes.Stats {
				t.Fatalf("stats diverged: relation %+v, columns %+v", relRes.Stats, colRes.Stats)
			}
		})
	}
}

// TestDiscoverColumnsDefaultPredicates: with no explicit ℙ, the columnar
// entrypoint must auto-generate the same paper-default predicate space the
// relation entrypoint does, so the minimal call sites stay equivalent too.
func TestDiscoverColumnsDefaultPredicates(t *testing.T) {
	spec := experiments.TaxSpec()
	rel := spec.Gen(300)
	opts := []core.DiscoverOption{
		core.WithSignature(spec.XAttrs, spec.YAttr),
		core.WithMaxBias(spec.RhoM),
	}
	relRes, err := core.Discover(context.Background(), rel, opts...)
	if err != nil {
		t.Fatal(err)
	}
	colRes, err := core.DiscoverColumns(context.Background(), dataset.NewColumnSet(rel), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if !experiments.SameRules(relRes.Rules, colRes.Rules, 0) {
		t.Fatal("default-space discovery diverged between entrypoints")
	}
}

// TestDiscoverColumnsRejectsTuplePaths: paths that need tuples must fail
// with ErrTuplesRequired on a column-backed run, not panic.
func TestDiscoverColumnsRejectsTuplePaths(t *testing.T) {
	spec := experiments.TaxSpec()
	cs := dataset.NewColumnSet(spec.Gen(50))
	_, err := core.DiscoverColumns(context.Background(), cs,
		core.WithSignature(spec.XAttrs, spec.YAttr),
		core.WithConfig(core.DiscoverConfig{
			XAttrs:  spec.XAttrs,
			YAttr:   spec.YAttr,
			RowScan: true,
		}))
	if !errors.Is(err, core.ErrTuplesRequired) {
		t.Fatalf("RowScan over columns: err = %v, want ErrTuplesRequired", err)
	}
	if _, err := core.DiscoverColumns(context.Background(), nil); !errors.Is(err, core.ErrEmptyRelation) {
		t.Fatalf("nil columns: err = %v, want ErrEmptyRelation", err)
	}
}
