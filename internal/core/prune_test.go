package core

import (
	"math/rand"
	"testing"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

// overRefinedRelation builds one straight line y = 2x + 1 with bounded noise
// — a single true model that an over-small ρ_M fragments into many windows.
func overRefinedRelation(n int, noise float64, seed int64) *dataset.Relation {
	rng := rand.New(rand.NewSource(seed))
	rel := dataset.NewRelation(lineSchema())
	for i := 0; i < n; i++ {
		x := 100 * float64(i) / float64(n)
		rel.MustAppend(lineTuple(x, 2*x+1+noise*(2*rng.Float64()-1), "a"))
	}
	return rel
}

func TestPruneMergesOverRefinedWindows(t *testing.T) {
	rel := overRefinedRelation(800, 0.3, 1)
	cfg := discoverCfg(rel, 0.1) // ρ_M below the noise: heavy over-refinement
	res, err := DiscoverWithConfig(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rules.NumRules() < 4 {
		t.Skipf("expected over-refinement, got %d rules", res.Rules.NumRules())
	}
	pruned, st, err := Prune(rel, res.Rules, PruneOptions{})
	if err != nil {
		t.Fatalf("Prune: %v", err)
	}
	if st.Merged == 0 {
		t.Fatalf("no merges on a single-model dataset split into %d windows", res.Rules.NumRules())
	}
	if pruned.NumRules() >= res.Rules.NumRules() {
		t.Errorf("pruning did not reduce rules: %d → %d", res.Rules.NumRules(), pruned.NumRules())
	}
	if cov := pruned.Coverage(rel); cov != 1 {
		t.Errorf("pruned coverage = %v", cov)
	}
	// The merged model generalizes: training RMSE stays near the noise
	// level.
	if rmse := pruned.RMSE(rel); rmse > 0.3 {
		t.Errorf("pruned RMSE = %v", rmse)
	}
}

func TestPruneKeepsDistinctRegimes(t *testing.T) {
	// Two genuinely different slopes must NOT merge.
	rel := dataset.NewRelation(lineSchema())
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 600; i++ {
		x := 100 * float64(i) / 600
		y := 2 * x
		if x >= 50 {
			y = -3*x + 250
		}
		rel.MustAppend(lineTuple(x, y+0.1*(2*rng.Float64()-1), "a"))
	}
	res, err := DiscoverWithConfig(rel, discoverCfg(rel, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	pruned, _, err := Prune(rel, res.Rules, PruneOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.NumRules() < 2 {
		t.Errorf("pruning merged two distinct regimes into %d rule(s)", pruned.NumRules())
	}
	// No quality collapse.
	if rmse := pruned.RMSE(rel); rmse > 0.5 {
		t.Errorf("pruned RMSE = %v", rmse)
	}
}

func TestPruneRespectsContext(t *testing.T) {
	// Same windows under different categorical contexts must not merge
	// across contexts.
	rel := dataset.NewRelation(lineSchema())
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 600; i++ {
		x := 100 * float64(i%300) / 300
		tag := "a"
		y := 2 * x
		if i >= 300 {
			tag = "b"
			y = 5 * x
		}
		rel.MustAppend(lineTuple(x, y+0.05*(2*rng.Float64()-1), "c"+tag))
	}
	preds := predicate.Generate(rel, []int{0, 2}, predicate.GeneratorConfig{})
	res, err := DiscoverWithConfig(rel, DiscoverConfig{
		XAttrs: []int{0}, YAttr: 1, RhoM: 0.02, Preds: preds, Trainer: regress.LinearTrainer{},
	})
	if err != nil {
		t.Fatal(err)
	}
	pruned, _, err := Prune(rel, res.Rules, PruneOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Every pruned rule must still hold on the data it covers (with its own
	// recomputed ρ).
	if !pruned.Holds(rel) {
		t.Error("pruned rules violated on training data")
	}
	if rmse := pruned.RMSE(rel); rmse > 0.5 {
		t.Errorf("cross-context merge suspected: RMSE %v", rmse)
	}
}

func TestPruneLeavesNonWindowRulesAlone(t *testing.T) {
	// DNF-condition rules and lone windows pass through untouched.
	dnf := predicate.NewDNF(
		predicate.NewConjunction(predicate.NumPred(0, predicate.Lt, 0)),
		predicate.NewConjunction(predicate.NumPred(0, predicate.Gt, 10)),
	)
	lone := predicate.NewConjunction(predicate.NumPred(0, predicate.Ge, 0))
	lone.Builtin = lone.Builtin.WithYShift(5)
	rs := &RuleSet{
		Schema: lineSchema(), XAttrs: []int{0}, YAttr: 1,
		Rules: []CRR{
			{Model: regress.NewLinear(0, 1), Rho: 1, Cond: dnf, XAttrs: []int{0}, YAttr: 1},
			{Model: regress.NewLinear(0, 1), Rho: 1, Cond: predicate.NewDNF(lone), XAttrs: []int{0}, YAttr: 1},
		},
	}
	rel := dataset.NewRelation(lineSchema())
	rel.MustAppend(lineTuple(1, 6, "a"))
	pruned, st, err := Prune(rel, rs, PruneOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.NumRules() != 2 || st.Tested != 0 {
		t.Errorf("non-mergeable rules were touched: %d rules, %+v", pruned.NumRules(), st)
	}
}

func TestPruneMergesSharedBuiltinWindows(t *testing.T) {
	// Discovery with sharing emits windows carrying y=δ0 builtins; they must
	// still merge when one model explains adjacent windows.
	rel := overRefinedRelation(800, 0.3, 2)
	res, err := DiscoverWithConfig(rel, discoverCfg(rel, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	withBuiltin := 0
	for _, r := range res.Rules.Rules {
		if !r.Cond.Conjs[0].Builtin.IsZero() {
			withBuiltin++
		}
	}
	if withBuiltin == 0 {
		t.Skip("no shared windows produced; nothing to verify")
	}
	pruned, st, err := Prune(rel, res.Rules, PruneOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Merged == 0 {
		t.Fatalf("no merges despite %d shared windows of one true model", withBuiltin)
	}
	if !pruned.Holds(rel) {
		t.Error("pruned rules violated")
	}
}

func TestPruneEmptyRuleSet(t *testing.T) {
	rs := &RuleSet{Schema: lineSchema(), XAttrs: []int{0}, YAttr: 1}
	rel := dataset.NewRelation(lineSchema())
	pruned, st, err := Prune(rel, rs, PruneOptions{})
	if err != nil || pruned.NumRules() != 0 || st.Merged != 0 {
		t.Errorf("empty prune: %v %v %v", pruned.NumRules(), st, err)
	}
}
