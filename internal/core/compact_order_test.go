package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/crrlab/crr/internal/regress"
)

// mixedCompactSet builds a set that exercises all three inferences: two
// translation families with distinct slopes plus one unrelated rule, with
// varying ρ so Generalization decisions matter.
func mixedCompactSet() *RuleSet {
	rs := &RuleSet{Schema: lineSchema(), XAttrs: []int{0}, YAttr: 1}
	for i := 0; i < 4; i++ {
		lo := float64(i * 10)
		rs.Rules = append(rs.Rules, ruleOn(
			regress.NewLinear(float64(i)*3, 2), 0.2+0.1*float64(i), condRange(lo, lo+10)))
	}
	for i := 0; i < 3; i++ {
		lo := 100 + float64(i*10)
		rs.Rules = append(rs.Rules, ruleOn(
			regress.NewLinear(float64(i)*5, -1), 0.5, condRange(lo, lo+10)))
	}
	rs.Rules = append(rs.Rules, ruleOn(regress.NewLinear(7, 9), 0.3, condRange(200, 220)))
	return rs
}

// sameRuleSet compares two rule sets bitwise: condition rendering, ρ bits
// and models with tolerance 0.
func sameRuleSet(t *testing.T, a, b *RuleSet) {
	t.Helper()
	if a.NumRules() != b.NumRules() {
		t.Fatalf("rule count %d vs %d", a.NumRules(), b.NumRules())
	}
	for i := range a.Rules {
		ra, rb := &a.Rules[i], &b.Rules[i]
		if ra.Cond.String() != rb.Cond.String() {
			t.Fatalf("rule %d condition %q vs %q", i, ra.Cond.String(), rb.Cond.String())
		}
		if math.Float64bits(ra.Rho) != math.Float64bits(rb.Rho) {
			t.Fatalf("rule %d ρ %v vs %v", i, ra.Rho, rb.Rho)
		}
		if !ra.Model.Equal(rb.Model, 0) {
			t.Fatalf("rule %d models differ", i)
		}
	}
}

// TestCompactOrderIndependent: Algorithm 2 must be a function of the rule
// SET — permuting the input list may not change the output rules or the
// inference statistics (the engine canonicalizes its pivot order).
func TestCompactOrderIndependent(t *testing.T) {
	base := mixedCompactSet()
	want, wantStats := Compact(base)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		perm := &RuleSet{Schema: base.Schema, XAttrs: base.XAttrs, YAttr: base.YAttr}
		perm.Rules = append([]CRR(nil), base.Rules...)
		rng.Shuffle(len(perm.Rules), func(i, j int) {
			perm.Rules[i], perm.Rules[j] = perm.Rules[j], perm.Rules[i]
		})
		got, stats := Compact(perm)
		sameRuleSet(t, want, got)
		if stats != wantStats {
			t.Fatalf("trial %d: stats %+v vs %+v", trial, stats, wantStats)
		}
	}
}

// TestCompactTraceMatchesStats: the Trace hook must emit exactly one event
// per counted inference, carrying pre-application deep copies.
func TestCompactTraceMatchesStats(t *testing.T) {
	rs := translationFamily(5, 2)
	var events []TraceEvent
	out, stats, err := CompactCtx(context.Background(), rs, CompactOptions{
		Trace: func(e TraceEvent) { events = append(events, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRules() != 1 {
		t.Fatalf("compacted to %d rules, want 1", out.NumRules())
	}
	kinds := map[TraceKind]int{}
	for _, e := range events {
		kinds[e.Kind]++
	}
	if kinds[TraceTranslation] != stats.Translations || kinds[TraceFusion] != stats.Fusions ||
		kinds[TraceImplied] != stats.Implied {
		t.Fatalf("trace kinds %v, stats %+v", kinds, stats)
	}
	if len(events) != stats.Translations+stats.Fusions+stats.Implied {
		t.Fatalf("%d events for %d counted inferences", len(events),
			stats.Translations+stats.Fusions+stats.Implied)
	}
	for i, e := range events {
		if e.Kind != TraceTranslation {
			continue
		}
		pivot, pre, post := &e.Pre[0], &e.Pre[1], e.Post
		if post == nil || !post.Model.Equal(pivot.Model, 0) {
			t.Fatalf("event %d: rewritten rule does not carry the pivot model", i)
		}
		// Pre[1] is the state BEFORE the rewrite: in this family every
		// non-pivot intercept differs from the pivot's.
		if pre.Model.Equal(pivot.Model, 0) {
			t.Fatalf("event %d: pre-state already carries the pivot model", i)
		}
	}
	// Input untouched despite tracing.
	for i := range rs.Rules {
		if len(rs.Rules[i].Cond.Conjs) != 1 {
			t.Fatal("tracing mutated the input set")
		}
	}
}

// TestCompactCtxCancelZeroStats: the cancellation contract — a canceled
// compaction returns a nil set AND zero statistics, at every queue-pop
// point. (A partial CompactStats would double-count inferences when callers
// retry.)
func TestCompactCtxCancelZeroStats(t *testing.T) {
	rs := mixedCompactSet()
	// Count the context polls of a full run.
	probe := &countingCtx{limit: 1 << 30}
	if _, _, err := CompactCtx(probe, rs, CompactOptions{}); err != nil {
		t.Fatal(err)
	}
	total := int(probe.calls.Load())
	if total == 0 {
		t.Fatal("CompactCtx never polled the context")
	}
	for limit := 0; limit < total; limit++ {
		ctx := &countingCtx{limit: int64(limit)}
		out, stats, err := CompactCtx(ctx, rs, CompactOptions{})
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("limit %d: err = %v, want ErrCanceled", limit, err)
		}
		if out != nil {
			t.Fatalf("limit %d: canceled compaction returned a rule set", limit)
		}
		if stats != (CompactStats{}) {
			t.Fatalf("limit %d: canceled compaction returned partial stats %+v", limit, stats)
		}
	}
}

// TestCompactSkipsNaNModels: a model with a non-finite parameter must never
// win a Translation — a NaN δ would silently poison the rewritten rule's
// builtin. (math.Abs(NaN) > tol is false, so a naive parameter comparison
// treats NaN as "equal".)
func TestCompactSkipsNaNModels(t *testing.T) {
	cases := []struct {
		name string
		bad  *regress.Linear
	}{
		{"nan-intercept", regress.NewLinear(math.NaN(), 2)},
		{"inf-intercept", regress.NewLinear(math.Inf(1), 2)},
		{"nan-slope", regress.NewLinear(0, math.NaN())},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rs := &RuleSet{Schema: lineSchema(), XAttrs: []int{0}, YAttr: 1}
			rs.Rules = append(rs.Rules,
				ruleOn(tc.bad, 0.5, condRange(0, 10)),
				ruleOn(regress.NewLinear(0, 2), 0.5, condRange(10, 20)),
			)
			out, stats := Compact(rs)
			if stats.Translations != 0 {
				t.Fatalf("translated onto a non-finite model: %+v", stats)
			}
			if out.NumRules() != 2 {
				t.Fatalf("rules = %d, want 2 (nothing to merge)", out.NumRules())
			}
		})
	}
}
