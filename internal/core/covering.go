package core

import "github.com/crrlab/crr/internal/dataset"

// CoveringEntry addresses the conjunction through which one rule covers a
// tuple: Rule indexes RuleSet.Rules, Conj the rule condition's matching
// conjunction. Conj is the rule's FIRST matching conjunction, so the shifts
// read from it equal the ones Predict would apply.
type CoveringEntry struct {
	Rule, Conj int
}

// Covering returns every rule covering t — the row-routing primitive of
// stream maintenance, which must credit an arriving or expiring row to the
// sufficient statistics of ALL rules whose condition selects it, not just
// the first one Predict would use. Entries come back in ascending rule
// order, one per covering rule (its first matching conjunction, matching
// Predict's semantics). Tuples with a null X cell are covered by no rule,
// mirroring the Predict null contract.
//
// The walk reuses the lazily built interval index: candidates are the
// tuple's grid bucket merged with the unbounded-conjunction overflow list,
// so for discovery's disjoint condition windows the cost is O(1) candidates
// plus the overflow, not a scan of every disjunct. dst is recycled when
// non-nil, so steady-state routing does not allocate.
func (s *RuleSet) Covering(t dataset.Tuple, dst []CoveringEntry) []CoveringEntry {
	dst = dst[:0]
	idx := s.index()
	var bucket []indexEntry
	if len(idx.buckets) > 0 && idx.attr >= 0 && !t[idx.attr].Null {
		bucket = idx.buckets[idx.bucketOf(t[idx.attr].Num)]
	}
	over := idx.overflow
	i, j := 0, 0
	lastRule := -1
	for i < len(bucket) || j < len(over) {
		var e indexEntry
		if j >= len(over) || (i < len(bucket) && lessEntry(bucket[i], over[j])) {
			e = bucket[i]
			i++
		} else {
			e = over[j]
			j++
		}
		// Entries stream in (rule, conj) order; once a rule matched, its
		// later conjunctions are redundant (first-match semantics), and a
		// span straddling several buckets appears once per bucket, so the
		// same entry can repeat — the rule guard drops both.
		if e.rule == lastRule {
			continue
		}
		rule := &s.Rules[e.rule]
		if !rule.Cond.Conjs[e.conj].Sat(t) {
			continue
		}
		nullX := false
		for _, attr := range rule.XAttrs {
			if t[attr].Null {
				nullX = true
				break
			}
		}
		if nullX {
			lastRule = e.rule // null X disqualifies the rule, not just the conj
			continue
		}
		dst = append(dst, CoveringEntry{Rule: e.rule, Conj: e.conj})
		lastRule = e.rule
	}
	return dst
}
