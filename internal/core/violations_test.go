package core

import (
	"testing"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

func violationRuleSet() *RuleSet {
	// f(x) = 2x with ρ = 0.5 on x ≥ 0.
	phi := ruleOn(regress.NewLinear(0, 2), 0.5, predicate.NewDNF(
		predicate.NewConjunction(predicate.NumPred(0, predicate.Ge, 0))))
	return &RuleSet{Schema: lineSchema(), XAttrs: []int{0}, YAttr: 1, Rules: []CRR{phi}}
}

func TestViolationsDetects(t *testing.T) {
	rs := violationRuleSet()
	rel := dataset.NewRelation(lineSchema())
	rel.MustAppend(lineTuple(1, 2.2, "a"))                                          // ok (|2.2−2| ≤ 0.5)
	rel.MustAppend(lineTuple(2, 7, "a"))                                            // violation (|7−4| = 3)
	rel.MustAppend(lineTuple(-1, 99, "a"))                                          // uncovered → no violation
	rel.MustAppend(dataset.Tuple{dataset.Num(3), dataset.Null(), dataset.Str("a")}) // null Y

	vs := Violations(rel, rs)
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1: %+v", len(vs), vs)
	}
	v := vs[0]
	if v.TupleIndex != 1 || v.RuleIndex != 0 {
		t.Errorf("violation at %d/%d", v.TupleIndex, v.RuleIndex)
	}
	if v.Observed != 7 || v.Predicted != 4 {
		t.Errorf("observed/predicted = %v/%v", v.Observed, v.Predicted)
	}
	if absDiff(v.Excess, 2.5) > 1e-9 {
		t.Errorf("excess = %v, want 2.5", v.Excess)
	}
}

func TestHoldsAll(t *testing.T) {
	rs := violationRuleSet()
	rel := dataset.NewRelation(lineSchema())
	rel.MustAppend(lineTuple(1, 2.1, "a"))
	if !HoldsAll(rel, rs) {
		t.Error("clean relation reported violating")
	}
	rel.MustAppend(lineTuple(1, 5, "a"))
	if HoldsAll(rel, rs) {
		t.Error("violating relation reported clean")
	}
}

func TestRepair(t *testing.T) {
	rs := violationRuleSet()
	v, ok := Repair(lineTuple(2, 7, "a"), rs)
	if !ok || v != 4 {
		t.Errorf("Repair = %v, %v; want 4", v, ok)
	}
	// Uncovered tuple: no repair (fallback not a rule prediction here).
	if _, ok := Repair(lineTuple(-1, 0, "a"), rs); ok {
		t.Error("Repair proposed a value for an uncovered tuple")
	}
}

func TestViolationsAgreeWithHolds(t *testing.T) {
	rel := piecewiseRelation(300, 0.2, 5)
	res, err := DiscoverWithConfig(rel, discoverCfg(rel, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if vs := Violations(rel, res.Rules); len(vs) != 0 {
		t.Errorf("discovery output violates its own training data: %d violations", len(vs))
	}
	if !HoldsAll(rel, res.Rules) {
		t.Error("HoldsAll disagrees with Violations")
	}
	// Break one tuple and confirm both detectors agree.
	broken := rel.Tuples[10].Clone()
	broken[1] = dataset.Num(broken[1].Num + 100)
	rel.Tuples[10] = broken
	vs := Violations(rel, res.Rules)
	if len(vs) == 0 {
		t.Fatal("doctored tuple not detected")
	}
	if HoldsAll(rel, res.Rules) {
		t.Error("HoldsAll missed the doctored tuple")
	}
	if vs[0].TupleIndex != 10 {
		t.Errorf("violation at tuple %d, want 10", vs[0].TupleIndex)
	}
}
