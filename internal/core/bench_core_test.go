package core

// Micro-benchmarks for the core machinery, complementing the paper-artifact
// benchmarks at the repository root: discovery (sequential vs parallel),
// compaction, and indexed prediction against the linear-scan reference.

import (
	"testing"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/regress"
)

func benchRelation(b *testing.B, n int) *dataset.Relation {
	b.Helper()
	return piecewiseRelation(n, 0.2, 42)
}

func BenchmarkDiscoverSequential(b *testing.B) {
	rel := benchRelation(b, 4000)
	cfg := discoverCfg(rel, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DiscoverWithConfig(rel, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiscoverParallel4(b *testing.B) {
	rel := benchRelation(b, 4000)
	cfg := discoverCfg(rel, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DiscoverParallel(rel, cfg, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiscoverFullPass is the before side of the hot-path comparison:
// the same sequential mine with the sufficient-statistics fast path disabled,
// so every Line-13 fit re-passes the design matrix. The gap to
// BenchmarkDiscoverSequential is the Gram path's contribution alone.
func BenchmarkDiscoverFullPass(b *testing.B) {
	rel := benchRelation(b, 4000)
	cfg := discoverCfg(rel, 0.5)
	cfg.Trainer = regress.FullPass{T: regress.LinearTrainer{}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DiscoverWithConfig(rel, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiscoverNoSharing(b *testing.B) {
	rel := benchRelation(b, 4000)
	cfg := discoverCfg(rel, 0.5)
	cfg.DisableSharing = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DiscoverWithConfig(rel, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompact(b *testing.B) {
	rel := benchRelation(b, 4000)
	res, err := DiscoverWithConfig(rel, discoverCfg(rel, 0.5))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compact(res.Rules)
	}
}

func BenchmarkPredictIndexed(b *testing.B) {
	rel := benchRelation(b, 4000)
	res, err := DiscoverWithConfig(rel, discoverCfg(rel, 0.5))
	if err != nil {
		b.Fatal(err)
	}
	rules := res.Rules
	rules.Predict(rel.Tuples[0]) // build the index outside the loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rules.Predict(rel.Tuples[i%rel.Len()])
	}
}

func BenchmarkPredictLinearScan(b *testing.B) {
	rel := benchRelation(b, 4000)
	res, err := DiscoverWithConfig(rel, discoverCfg(rel, 0.5))
	if err != nil {
		b.Fatal(err)
	}
	rules := res.Rules
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		predictLinearScan(rules, rel.Tuples[i%rel.Len()])
	}
}

func BenchmarkPrune(b *testing.B) {
	rel := overRefinedRelation(2000, 0.3, 1)
	res, err := DiscoverWithConfig(rel, discoverCfg(rel, 0.1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Prune(rel, res.Rules, PruneOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
