package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

// translationFamily builds n rules over disjoint ranges whose models all
// share one slope with different intercepts — a single equivalence class
// under Translation.
func translationFamily(n int, slope float64) *RuleSet {
	rs := &RuleSet{Schema: lineSchema(), XAttrs: []int{0}, YAttr: 1}
	for i := 0; i < n; i++ {
		lo := float64(i * 10)
		rs.Rules = append(rs.Rules, ruleOn(
			regress.NewLinear(float64(i)*7, slope), 0.5, condRange(lo, lo+10)))
	}
	return rs
}

func TestCompactMergesTranslationClass(t *testing.T) {
	rs := translationFamily(5, 2)
	out, stats := Compact(rs)
	if out.NumRules() != 1 {
		t.Fatalf("compacted to %d rules, want 1", out.NumRules())
	}
	if stats.Translations != 4 {
		t.Errorf("Translations = %d, want 4", stats.Translations)
	}
	if stats.Fusions != 4 {
		t.Errorf("Fusions = %d, want 4", stats.Fusions)
	}
	if got := len(out.Rules[0].Cond.Conjs); got != 5 {
		t.Errorf("merged condition has %d disjuncts, want 5", got)
	}
}

func TestCompactPreservesPredictions(t *testing.T) {
	rs := translationFamily(4, 2)
	out, _ := Compact(rs)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		x := rng.Float64() * 40
		tpl := lineTuple(x, 0, "a")
		p1, ok1 := rs.Predict(tpl)
		p2, ok2 := out.Predict(tpl)
		if ok1 != ok2 {
			t.Fatalf("coverage changed at x=%v: %v vs %v", x, ok1, ok2)
		}
		if ok1 && absDiff(p1, p2) > 1e-9 {
			t.Fatalf("prediction changed at x=%v: %v vs %v", x, p1, p2)
		}
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestCompactKeepsUnrelatedModels(t *testing.T) {
	rs := &RuleSet{Schema: lineSchema(), XAttrs: []int{0}, YAttr: 1}
	rs.Rules = append(rs.Rules,
		ruleOn(regress.NewLinear(0, 1), 0.5, condRange(0, 10)),
		ruleOn(regress.NewLinear(0, 2), 0.5, condRange(10, 20)), // different slope
	)
	out, stats := Compact(rs)
	if out.NumRules() != 2 {
		t.Fatalf("unrelated models merged: %d rules", out.NumRules())
	}
	if stats.Translations != 0 {
		t.Errorf("Translations = %d, want 0", stats.Translations)
	}
}

func TestCompactGeneralizesRho(t *testing.T) {
	rs := &RuleSet{Schema: lineSchema(), XAttrs: []int{0}, YAttr: 1}
	f := regress.NewLinear(0, 1)
	rs.Rules = append(rs.Rules,
		ruleOn(f, 0.2, condRange(0, 10)),
		ruleOn(f, 0.7, condRange(10, 20)),
	)
	out, _ := Compact(rs)
	if out.NumRules() != 1 {
		t.Fatalf("rules = %d, want 1", out.NumRules())
	}
	if out.Rules[0].Rho != 0.7 {
		t.Errorf("fused ρ = %v, want max 0.7 (Generalization)", out.Rules[0].Rho)
	}
}

func TestCompactDropsImpliedRules(t *testing.T) {
	f := regress.NewLinear(0, 1)
	g := regress.NewLinear(0, 5)
	rs := &RuleSet{Schema: lineSchema(), XAttrs: []int{0}, YAttr: 1}
	// The second rule is implied by the first (refined condition, wider ρ)
	// but carries a different model from the third, so it is not fused away.
	rs.Rules = append(rs.Rules,
		ruleOn(f, 0.2, condRange(0, 10)),
		ruleOn(g, 0.5, condRange(100, 110)),
	)
	// Add a rule implied by rule 0 after fusion: same model f, refined range,
	// wider rho. Fusion merges it into rule 0's class first, so construct an
	// un-fusable implied case via distinct signature instead — here we simply
	// verify the implied counter stays 0 for independent rules.
	out, stats := Compact(rs)
	if out.NumRules() != 2 || stats.Implied != 0 {
		t.Errorf("rules = %d, implied = %d", out.NumRules(), stats.Implied)
	}
}

func TestCompactEmptyAndSingleton(t *testing.T) {
	rs := &RuleSet{Schema: lineSchema(), XAttrs: []int{0}, YAttr: 1}
	out, stats := Compact(rs)
	if out.NumRules() != 0 || stats != (CompactStats{}) {
		t.Errorf("empty compaction: %d rules, %+v", out.NumRules(), stats)
	}
	rs.Rules = append(rs.Rules, ruleOn(regress.NewLinear(0, 1), 0.5, condRange(0, 10)))
	out, _ = Compact(rs)
	if out.NumRules() != 1 {
		t.Errorf("singleton compaction: %d rules", out.NumRules())
	}
}

func TestCompactDoesNotMutateInput(t *testing.T) {
	rs := translationFamily(3, 2)
	before := make([]float64, len(rs.Rules))
	for i, r := range rs.Rules {
		before[i] = r.Model.(*regress.Linear).W[0]
	}
	Compact(rs)
	for i, r := range rs.Rules {
		if r.Model.(*regress.Linear).W[0] != before[i] {
			t.Fatal("Compact mutated input rules")
		}
		if len(r.Cond.Conjs) != 1 {
			t.Fatal("Compact mutated input conditions")
		}
	}
}

func TestCompactChainedTranslationsProposition9(t *testing.T) {
	// f1 = x, f2 = x+10, f3 = x+25. After compaction onto one model, the
	// composed builtins must reproduce every original prediction — the
	// Proposition 9 composition Δ'' = Δ+Δ', δ'' = δ+δ'.
	rs := &RuleSet{Schema: lineSchema(), XAttrs: []int{0}, YAttr: 1}
	rs.Rules = append(rs.Rules,
		ruleOn(regress.NewLinear(0, 1), 0.5, condRange(0, 10)),
		ruleOn(regress.NewLinear(10, 1), 0.5, condRange(10, 20)),
		ruleOn(regress.NewLinear(25, 1), 0.5, condRange(20, 30)),
	)
	out, _ := Compact(rs)
	if out.NumRules() != 1 {
		t.Fatalf("rules = %d, want 1", out.NumRules())
	}
	cases := []struct{ x, want float64 }{{5, 5}, {15, 25}, {25, 50}}
	for _, c := range cases {
		p, ok := out.Predict(lineTuple(c.x, 0, "a"))
		if !ok || absDiff(p, c.want) > 1e-9 {
			t.Errorf("Predict(%v) = %v, %v; want %v", c.x, p, ok, c.want)
		}
	}
}

// Property: compaction preserves rule-set predictions and never grows the
// set, for random translation families plus random unrelated rules.
func TestCompactPreservesSemanticsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := &RuleSet{Schema: lineSchema(), XAttrs: []int{0}, YAttr: 1}
		slope := rng.NormFloat64()
		n := 2 + rng.Intn(4)
		for i := 0; i < n; i++ {
			lo := float64(i * 10)
			rs.Rules = append(rs.Rules, ruleOn(
				regress.NewLinear(rng.NormFloat64()*10, slope),
				0.5+rng.Float64(), condRange(lo, lo+10)))
		}
		// One unrelated rule.
		rs.Rules = append(rs.Rules, ruleOn(
			regress.NewLinear(0, slope+1+rng.Float64()), 0.5, condRange(100, 120)))
		out, _ := Compact(rs)
		if out.NumRules() > rs.NumRules() {
			return false
		}
		for trial := 0; trial < 120; trial++ {
			x := rng.Float64() * 130
			tpl := lineTuple(x, 0, "a")
			p1, ok1 := rs.Predict(tpl)
			p2, ok2 := out.Predict(tpl)
			if ok1 != ok2 {
				return false
			}
			if ok1 && absDiff(p1, p2) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCompactAfterDiscover(t *testing.T) {
	rel := piecewiseRelation(600, 0.2, 12)
	res, err := DiscoverWithConfig(rel, discoverCfg(rel, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := Compact(res.Rules)
	if out.NumRules() > res.Rules.NumRules() {
		t.Error("compaction grew the rule set")
	}
	if !out.Holds(rel) {
		t.Error("compacted rules violated on training data")
	}
	if cov := out.Coverage(rel); cov != 1 {
		t.Errorf("compacted coverage = %v", cov)
	}
	// Predictions unchanged tuple-by-tuple.
	for _, tp := range rel.Tuples {
		p1, _ := res.Rules.Predict(tp)
		p2, _ := out.Predict(tp)
		if absDiff(p1, p2) > 1e-6 {
			t.Fatalf("prediction drifted after compaction: %v vs %v", p1, p2)
		}
	}
	_ = predicate.ZeroBuiltin() // keep import used by helpers
}
