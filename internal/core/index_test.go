package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

// predictLinearScan is the reference implementation the bucket index must
// match: first rule whose first matching conjunction applies.
func predictLinearScan(s *RuleSet, t dataset.Tuple) (float64, bool) {
	for i := range s.Rules {
		if p, ok := s.Rules[i].Predict(t); ok {
			return p, true
		}
	}
	return s.Fallback, false
}

// randomRuleSet builds rules with random interval windows (some one-sided,
// some unbounded, some categorical-only) and random builtins.
func randomRuleSet(rng *rand.Rand) *RuleSet {
	rs := &RuleSet{Schema: lineSchema(), XAttrs: []int{0}, YAttr: 1, Fallback: rng.NormFloat64()}
	nRules := 1 + rng.Intn(6)
	for r := 0; r < nRules; r++ {
		nConjs := 1 + rng.Intn(3)
		var conjs []predicate.Conjunction
		for c := 0; c < nConjs; c++ {
			conj := predicate.NewConjunction()
			switch rng.Intn(5) {
			case 0: // bounded window
				lo := float64(rng.Intn(20) - 10)
				conj = conj.And(predicate.NumPred(0, predicate.Ge, lo)).
					And(predicate.NumPred(0, predicate.Lt, lo+float64(1+rng.Intn(8))))
			case 1: // one-sided lower
				conj = conj.And(predicate.NumPred(0, predicate.Gt, float64(rng.Intn(20)-10)))
			case 2: // one-sided upper
				conj = conj.And(predicate.NumPred(0, predicate.Le, float64(rng.Intn(20)-10)))
			case 3: // categorical only (overflow path)
				conj = conj.And(predicate.StrPred(2, []string{"a", "b"}[rng.Intn(2)]))
			case 4: // point
				conj = conj.And(predicate.NumPred(0, predicate.Eq, float64(rng.Intn(20)-10)))
			}
			if rng.Intn(2) == 0 {
				conj.Builtin = conj.Builtin.WithYShift(rng.NormFloat64())
			}
			conjs = append(conjs, conj)
		}
		rs.Rules = append(rs.Rules, CRR{
			Model:  regress.NewLinear(rng.NormFloat64(), rng.NormFloat64()),
			Rho:    rng.Float64(),
			Cond:   predicate.NewDNF(conjs...),
			XAttrs: []int{0},
			YAttr:  1,
		})
	}
	return rs
}

// Property: the lazily built bucket index returns exactly what a linear scan
// returns, for every query point including nulls and out-of-grid values.
func TestRuleIndexMatchesLinearScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := randomRuleSet(rng)
		for trial := 0; trial < 200; trial++ {
			var tp dataset.Tuple
			switch rng.Intn(8) {
			case 0:
				tp = dataset.Tuple{dataset.Null(), dataset.Num(0), dataset.Str("a")}
			case 1: // far outside the grid
				tp = lineTuple(1e6*(rng.Float64()*2-1), 0, "b")
			default:
				tp = lineTuple(float64(rng.Intn(30)-15)+rng.Float64(), 0, []string{"a", "b", "c"}[rng.Intn(3)])
			}
			p1, ok1 := rs.Predict(tp) // indexed
			p2, ok2 := predictLinearScan(rs, tp)
			if ok1 != ok2 || p1 != p2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRuleIndexInvalidate(t *testing.T) {
	rs := &RuleSet{Schema: lineSchema(), XAttrs: []int{0}, YAttr: 1, Fallback: 7}
	rs.Rules = append(rs.Rules, ruleOn(regress.NewConstant(1, 1), 1, predicate.NewDNF(
		predicate.NewConjunction(predicate.NumPred(0, predicate.Lt, 0)))))
	if p, ok := rs.Predict(lineTuple(-1, 0, "a")); !ok || p != 1 {
		t.Fatalf("first predict = %v, %v", p, ok)
	}
	// Mutate rules, then Invalidate: the new rule must be visible.
	rs.Rules = append(rs.Rules, ruleOn(regress.NewConstant(2, 1), 1, predicate.NewDNF(
		predicate.NewConjunction(predicate.NumPred(0, predicate.Gt, 10)))))
	rs.Invalidate()
	if p, ok := rs.Predict(lineTuple(20, 0, "a")); !ok || p != 2 {
		t.Errorf("post-invalidate predict = %v, %v", p, ok)
	}
}

func TestRuleIndexEmptyXAttrs(t *testing.T) {
	// A rule set without X attributes (degenerate) must not panic.
	rs := &RuleSet{Schema: lineSchema(), YAttr: 1, Fallback: 5}
	if p, ok := rs.Predict(lineTuple(1, 0, "a")); ok || p != 5 {
		t.Errorf("degenerate predict = %v, %v", p, ok)
	}
}

func TestRuleSetPredictConcurrent(t *testing.T) {
	rel := piecewiseRelation(400, 0.2, 11)
	res, err := DiscoverWithConfig(rel, discoverCfg(rel, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	rules := res.Rules
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				rules.Predict(rel.Tuples[(i*7+w)%rel.Len()])
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	// Spot-check a prediction after the concurrent phase.
	if _, ok := rules.Predict(rel.Tuples[0]); !ok {
		t.Error("prediction failed after concurrent access")
	}
}
