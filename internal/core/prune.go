package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
	"github.com/crrlab/crr/internal/stats"
)

// This file implements the post-pruning the paper leaves as future work
// (§VII): "pruning through chi-squared independence test … to the CRRs
// discovered by Algorithm 1 to avoid overfitting of conditions". Adjacent
// condition windows whose data plausibly follow one regression model (a
// Chow-style equality-of-models test on SSEs, internal/stats) are merged and
// refit, undoing over-refinement caused by a too-small ρ_M or an over-rich
// predicate space.

// PruneOptions configures Prune.
type PruneOptions struct {
	// Alpha is the significance level of the equality test; merges happen
	// when equality is NOT rejected at this level. 0 means 0.05.
	Alpha float64
	// Trainer refits merged parts; nil means OLS.
	Trainer regress.Trainer
	// Relief is the small-sample fallback criterion: when the merged part is
	// too small for the equality test to have power (n ≤ 2p+6, fits nearly
	// interpolate), windows merge iff the joint fit's maximum error is at
	// most Relief times the larger per-part maximum error. 0 means 3.
	Relief float64
	// Attr is the numeric attribute whose windows are merged; ≤ 0 selects
	// the rule set's first X attribute (attribute 0 itself is covered by
	// that default, being the only way it can be a window axis here).
	Attr int
}

// PruneStats reports the pruning work.
type PruneStats struct {
	Tested int // adjacent pairs tested
	Merged int // merges applied
}

// Prune merges adjacent single-conjunction rules of a discovered set when a
// statistical test cannot distinguish their models, refitting the merged
// part. Rules with multi-conjunction conditions, distinct categorical
// contexts or non-adjacent windows are left untouched. Run it on Algorithm
// 1's output (before Compact) — compaction reorganizes conditions into DNFs
// that no longer expose adjacency.
func Prune(rel *dataset.Relation, s *RuleSet, opts PruneOptions) (*RuleSet, PruneStats, error) {
	alpha := opts.Alpha
	if alpha == 0 {
		alpha = 0.05
	}
	relief := opts.Relief
	if relief == 0 {
		relief = 3
	}
	trainer := opts.Trainer
	if trainer == nil {
		trainer = regress.LinearTrainer{}
	}
	attr := opts.Attr
	if attr <= 0 && len(s.XAttrs) > 0 {
		attr = s.XAttrs[0]
	}

	type window struct {
		rule    int
		lo, hi  float64
		context string // categorical context + non-attr numeric bounds
		conj    predicate.Conjunction
	}
	var windows []window
	out := &RuleSet{
		Schema:   s.Schema,
		XAttrs:   append([]int(nil), s.XAttrs...),
		YAttr:    s.YAttr,
		Fallback: s.Fallback,
	}
	var kept []CRR // rules not participating in window merging
	for ri := range s.Rules {
		r := &s.Rules[ri]
		// Multi-conjunction rules don't expose adjacency; single-conjunction
		// rules qualify regardless of builtins — tryMerge refits the merged
		// part from data, so the shift the old rule carried is irrelevant.
		if len(r.Cond.Conjs) != 1 {
			kept = append(kept, *r)
			continue
		}
		conj := r.Cond.Conjs[0]
		lo, hi, ok := conj.NumericBounds(attr)
		if !ok || math.IsInf(lo, -1) && math.IsInf(hi, 1) {
			kept = append(kept, *r)
			continue
		}
		windows = append(windows, window{
			rule: ri, lo: lo, hi: hi,
			context: contextKey(conj, attr),
			conj:    conj,
		})
	}
	sort.Slice(windows, func(i, j int) bool {
		if windows[i].context != windows[j].context {
			return windows[i].context < windows[j].context
		}
		return windows[i].lo < windows[j].lo
	})

	var st PruneStats
	var merged []CRR
	// One columnar mirror serves every coverage check of the merge loop:
	// window parts are selected with vectorized conjunction filters instead
	// of per-tuple Sat scans.
	view := dataset.NewColumnSet(rel).View()
	i := 0
	for i < len(windows) {
		cur := windows[i]
		rule := s.Rules[cur.rule]
		curConj := cur.conj
		// Greedily absorb following adjacent windows of the same context.
		for i+1 < len(windows) {
			next := windows[i+1]
			if next.context != cur.context || next.lo != cur.hi {
				break
			}
			st.Tested++
			ok, newModel, newRho, err := tryMerge(rel, view, s, trainer, curConj, next.conj, alpha, relief)
			if err != nil {
				return nil, st, err
			}
			if !ok {
				break
			}
			st.Merged++
			curConj = mergeWindows(curConj, next.conj, attr)
			cur.hi = next.hi
			rule = CRR{
				Model:  newModel,
				Rho:    newRho,
				Cond:   predicate.NewDNF(curConj),
				XAttrs: out.XAttrs,
				YAttr:  s.YAttr,
			}
			i++
		}
		if len(rule.Cond.Conjs) == 1 {
			rule.Cond = predicate.NewDNF(curConj)
		}
		merged = append(merged, rule)
		i++
	}
	out.Rules = append(merged, kept...)
	return out, st, nil
}

// tryMerge tests whether the data under two conjunctions follows one model;
// on success it returns the joint model and its max-bias. Large merged parts
// use the Chow-style equality test; small parts (where per-part fits nearly
// interpolate and the test has no power) use the relief criterion on the
// maximum error.
func tryMerge(rel *dataset.Relation, view *dataset.View, s *RuleSet, trainer regress.Trainer,
	a, b predicate.Conjunction, alpha, relief float64) (bool, regress.Model, float64, error) {
	partA := a.Filter(view.Cols, view.Sel, nil)
	partB := b.Filter(view.Cols, view.Sel, nil)
	if len(partA) == 0 || len(partB) == 0 {
		return false, nil, 0, nil
	}
	xa, ya, _ := FeatureRows(rel, partA, s.XAttrs, s.YAttr)
	xb, yb, _ := FeatureRows(rel, partB, s.XAttrs, s.YAttr)
	p := len(s.XAttrs) + 1
	n := len(xa) + len(xb)
	if n == 0 {
		return false, nil, 0, nil
	}
	ma, err := trainer.Train(xa, ya)
	if err != nil {
		return false, nil, 0, fmt.Errorf("core: prune refit: %w", err)
	}
	mb, err := trainer.Train(xb, yb)
	if err != nil {
		return false, nil, 0, fmt.Errorf("core: prune refit: %w", err)
	}
	xj := append(append([][]float64{}, xa...), xb...)
	yj := append(append([]float64{}, ya...), yb...)
	mj, err := trainer.Train(xj, yj)
	if err != nil {
		return false, nil, 0, fmt.Errorf("core: prune refit: %w", err)
	}
	jointErr := regress.MaxAbsError(mj, xj, yj)
	if n <= 2*p+6 {
		splitErr := regress.MaxAbsError(ma, xa, ya)
		if e := regress.MaxAbsError(mb, xb, yb); e > splitErr {
			splitErr = e
		}
		if splitErr == 0 {
			// Interpolating per-part fits: accept only a near-exact joint.
			return jointErr <= 1e-9, mj, jointErr, nil
		}
		return jointErr <= relief*splitErr, mj, jointErr, nil
	}
	sseSplit := sseOf(ma, xa, ya) + sseOf(mb, xb, yb)
	sseJoint := sseOf(mj, xj, yj)
	reject, _, err := stats.ModelEqualityTest(sseJoint, sseSplit, p, n, alpha)
	if err != nil || reject {
		return false, nil, 0, err
	}
	return true, mj, jointErr, nil
}

func sseOf(m regress.Model, x [][]float64, y []float64) float64 {
	var s float64
	for i, row := range x {
		d := y[i] - m.Predict(row)
		s += d * d
	}
	return s
}

// contextKey renders a conjunction's predicates excluding the window
// attribute, so only same-context windows merge.
func contextKey(conj predicate.Conjunction, attr int) string {
	var parts []string
	for _, p := range conj.Preds {
		if p.Attr != attr {
			parts = append(parts, p.String())
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, "&")
}

// mergeWindows builds the conjunction covering both windows: the shared
// context plus a's lower bounds and b's upper bounds on attr.
func mergeWindows(a, b predicate.Conjunction, attr int) predicate.Conjunction {
	out := predicate.NewConjunction()
	for _, p := range a.Preds {
		if p.Attr != attr || p.Op == predicate.Gt || p.Op == predicate.Ge {
			out.Preds = append(out.Preds, p)
		}
	}
	for _, p := range b.Preds {
		if p.Attr == attr && (p.Op == predicate.Lt || p.Op == predicate.Le) {
			out.Preds = append(out.Preds, p)
		}
	}
	return out.Normalize()
}
