package core

import (
	"context"
	"math/rand"
	"testing"

	"github.com/crrlab/crr/internal/dataset"
)

func TestMaintainSatisfiedTuplesNoChange(t *testing.T) {
	rel := piecewiseRelation(400, 0.2, 1)
	cfg := discoverCfg(rel, 0.5)
	res, err := DiscoverWithConfig(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := res.Rules.NumRules()

	// New tuples drawn from the same regimes (inside the discovered
	// condition windows, within bias).
	start := rel.Len()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		x := 150 * rng.Float64()
		var y float64
		switch {
		case x < 50:
			y = 2*x + 1
		case x < 100:
			y = -3*x + 500
		default:
			y = 2*x + 31
		}
		rel.MustAppend(lineTuple(x, y+0.1*(2*rng.Float64()-1), "t"))
	}
	var newIdx []int
	for i := start; i < rel.Len(); i++ {
		newIdx = append(newIdx, i)
	}
	out, st, err := Maintain(context.Background(), rel, res.Rules, newIdx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rediscovered > 5 {
		t.Errorf("in-regime tuples triggered %d rediscoveries", st.Rediscovered)
	}
	if out.NumRules() > before+st.NewRules {
		t.Errorf("rules = %d, want ≤ %d", out.NumRules(), before+st.NewRules)
	}
	if !out.Holds(rel) {
		t.Error("maintained rules violated")
	}
}

func TestMaintainWidensWithinRhoM(t *testing.T) {
	rel := piecewiseRelation(400, 0.1, 3)
	cfg := discoverCfg(rel, 0.5)
	res, err := DiscoverWithConfig(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A covered tuple slightly beyond the learned ρ but within ρ_M.
	probe := lineTuple(10, 2*10+1+0.4, "t")
	rel.MustAppend(probe)
	rhoBefore := make([]float64, len(res.Rules.Rules))
	for i := range res.Rules.Rules {
		rhoBefore[i] = res.Rules.Rules[i].Rho
	}
	out, st, err := Maintain(context.Background(), rel, res.Rules, []int{rel.Len() - 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The input set is untouched (Maintain copies).
	for i := range res.Rules.Rules {
		if res.Rules.Rules[i].Rho != rhoBefore[i] {
			t.Error("Maintain mutated the input rule set")
		}
	}
	if st.Widened != 1 || st.Rediscovered != 0 {
		t.Errorf("stats = %+v, want one widening", st)
	}
	if !out.Holds(rel) {
		t.Error("widened set violated")
	}
	_ = out
}

func TestMaintainDiscoversNewRegime(t *testing.T) {
	rel := piecewiseRelation(400, 0.2, 4)
	cfg := discoverCfg(rel, 0.5)
	res, err := DiscoverWithConfig(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := res.Rules.NumRules()
	// A brand-new regime far outside every window: x ∈ [200, 250], y = 7x.
	start := rel.Len()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 60; i++ {
		x := 200 + 50*float64(i)/60
		rel.MustAppend(lineTuple(x, 7*x+0.1*(2*rng.Float64()-1), "t"))
	}
	var newIdx []int
	for i := start; i < rel.Len(); i++ {
		newIdx = append(newIdx, i)
	}
	// Regenerate predicates over the extended domain for the retrain run.
	cfg2 := discoverCfg(rel, 0.5)
	out, st, err := Maintain(context.Background(), rel, res.Rules, newIdx, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if st.NewRules == 0 {
		t.Fatalf("new regime produced no rules: %+v", st)
	}
	if out.NumRules() <= before {
		t.Error("rule count did not grow for a new regime")
	}
	// The new regime is now covered and predicted well.
	pred, ok := out.Predict(lineTuple(225, 0, "t"))
	if !ok {
		t.Fatal("new regime not covered after maintenance")
	}
	if absDiff(pred, 7*225) > 1 {
		t.Errorf("new-regime prediction %v, want ≈ %v", pred, 7*225)
	}
}

func TestMaintainSharesSeedModels(t *testing.T) {
	rel := piecewiseRelation(400, 0.2, 6)
	cfg := discoverCfg(rel, 0.5)
	res, err := DiscoverWithConfig(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// New window whose relation is a translation of regime A (slope 2):
	// y = 2x + 100 over x ∈ [200, 240].
	start := rel.Len()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		x := 200 + 40*float64(i)/60
		rel.MustAppend(lineTuple(x, 2*x+100+0.1*(2*rng.Float64()-1), "t"))
	}
	var newIdx []int
	for i := start; i < rel.Len(); i++ {
		newIdx = append(newIdx, i)
	}
	cfg2 := discoverCfg(rel, 0.5)
	_, st, err := Maintain(context.Background(), rel, res.Rules, newIdx, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Discover.ShareHits == 0 {
		t.Errorf("translated regime did not share a seed model: %+v", st)
	}
	if st.Discover.ModelsTrained > st.Discover.ShareHits {
		t.Errorf("maintenance trained more than it shared: %+v", st.Discover)
	}
}

func TestMaintainNullTargetSkipped(t *testing.T) {
	rel := piecewiseRelation(200, 0.2, 8)
	cfg := discoverCfg(rel, 0.5)
	res, err := DiscoverWithConfig(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rel.MustAppend(dataset.Tuple{dataset.Num(10), dataset.Null(), dataset.Str("t")})
	_, st, err := Maintain(context.Background(), rel, res.Rules, []int{rel.Len() - 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Satisfied+st.Widened+st.Rediscovered != 0 {
		t.Errorf("null-target tuple was classified: %+v", st)
	}
}
