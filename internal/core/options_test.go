package core

import (
	"context"
	"errors"
	"testing"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
	"github.com/crrlab/crr/internal/telemetry"
)

// TestDiscoverAutoPredicates: with no WithPredicates option the engine
// generates the paper-default space (X attributes + categoricals) and still
// covers the relation.
func TestDiscoverAutoPredicates(t *testing.T) {
	rel := piecewiseRelation(400, 0.2, 1)
	res, err := Discover(context.Background(), rel,
		WithSignature([]int{0}, 1),
		WithMaxBias(0.5),
	)
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if cov := res.Rules.Coverage(rel); cov != 1 {
		t.Errorf("coverage = %v, want 1", cov)
	}
	if res.Rules.NumRules() == 0 {
		t.Error("no rules mined")
	}
}

// TestDiscoverDefaults: omitting trainer and bias falls back to OLS and
// DefaultMaxBias rather than erroring.
func TestDiscoverDefaults(t *testing.T) {
	rel := piecewiseRelation(400, 0.1, 1)
	res, err := Discover(context.Background(), rel, WithSignature([]int{0}, 1))
	if err != nil {
		t.Fatalf("Discover with defaults: %v", err)
	}
	for _, r := range res.Rules.Rules {
		if r.Rho > DefaultMaxBias {
			t.Errorf("rule bias %v exceeds DefaultMaxBias", r.Rho)
		}
	}
}

func TestDiscoverEmptyRelationErr(t *testing.T) {
	rel := piecewiseRelation(100, 0.1, 1)
	empty := &dataset.Relation{Schema: rel.Schema}
	if _, err := Discover(context.Background(), empty, WithSignature([]int{0}, 1)); !errors.Is(err, ErrEmptyRelation) {
		t.Fatalf("err = %v, want ErrEmptyRelation", err)
	}
}

func TestDiscoverExplicitEmptyPredicates(t *testing.T) {
	rel := piecewiseRelation(100, 0.1, 1)
	_, err := Discover(context.Background(), rel,
		WithSignature([]int{0}, 1),
		WithPredicates([]predicate.Predicate{}),
	)
	if !errors.Is(err, ErrNoPredicates) {
		t.Fatalf("err = %v, want ErrNoPredicates", err)
	}
}

func TestDiscoverValidationSentinels(t *testing.T) {
	rel := piecewiseRelation(100, 0.1, 1)
	if _, err := Discover(context.Background(), rel, WithSignature([]int{1}, 1)); !errors.Is(err, ErrTrivialTarget) {
		t.Errorf("Y ∈ X: err = %v, want ErrTrivialTarget", err)
	}
	preds := predicate.Generate(rel, []int{1}, predicate.GeneratorConfig{Kind: predicate.Binary, Size: 4})
	if _, err := Discover(context.Background(), rel, WithSignature([]int{0}, 1), WithPredicates(preds)); !errors.Is(err, ErrPredicateOnTarget) {
		t.Errorf("pred on Y: err = %v, want ErrPredicateOnTarget", err)
	}
}

// TestOptionsComposition: field options layered over WithConfig override
// just their field.
func TestOptionsComposition(t *testing.T) {
	rel := piecewiseRelation(300, 0.2, 1)
	base := discoverCfg(rel, 0.1)
	reg := telemetry.New()
	res, err := Discover(context.Background(), rel,
		WithConfig(base),
		WithMaxBias(0.5),
		WithTrainer(regress.LinearTrainer{}),
		WithWorkers(1),
		WithTelemetry(reg),
		WithSeed(7),
	)
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	// The WithMaxBias(0.5) layered over the 0.1 base config must govern the
	// mine: the result must match a direct run at ρ_M = 0.5.
	direct, err := DiscoverWithConfig(rel, discoverCfg(rel, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != direct.Stats {
		t.Errorf("layered options mined %+v, direct ρ_M=0.5 config %+v", res.Stats, direct.Stats)
	}
	if reg.Snapshot().Counters[telemetry.MetricModelsTrained] == 0 {
		t.Error("WithTelemetry registry saw no training")
	}
}

// TestValidateNormalizes: Validate fills defaults in place.
func TestValidateNormalizes(t *testing.T) {
	cfg := DiscoverConfig{XAttrs: []int{0}, YAttr: 1}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if cfg.Trainer == nil {
		t.Error("nil Trainer not defaulted")
	}
	if cfg.RhoM != DefaultMaxBias {
		t.Errorf("RhoM = %v, want DefaultMaxBias", cfg.RhoM)
	}
}

// TestDeprecatedWrappersAgree: the legacy entrypoints and the options API
// mine the same rule set on the same configuration.
func TestDeprecatedWrappersAgree(t *testing.T) {
	rel := piecewiseRelation(400, 0.2, 1)
	cfg := discoverCfg(rel, 0.5)

	legacy, err := DiscoverWithConfig(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	modern, err := Discover(context.Background(), rel, WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Rules.NumRules() != modern.Rules.NumRules() {
		t.Errorf("legacy mined %d rules, options API %d",
			legacy.Rules.NumRules(), modern.Rules.NumRules())
	}
	if legacy.Stats != modern.Stats {
		t.Errorf("stats diverge: legacy %+v, modern %+v", legacy.Stats, modern.Stats)
	}
}
