package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

func condLT(c float64) predicate.DNF {
	return predicate.NewDNF(predicate.NewConjunction(predicate.NumPred(0, predicate.Lt, c)))
}

func condRange(lo, hi float64) predicate.DNF {
	return predicate.NewDNF(predicate.NewConjunction(
		predicate.NumPred(0, predicate.Ge, lo), predicate.NumPred(0, predicate.Lt, hi)))
}

func TestImpliesInduction(t *testing.T) {
	f := regress.NewLinear(0, 2)
	phi1 := ruleOn(f, 1, condLT(10))
	phi2 := ruleOn(f, 1, condRange(2, 5)) // refinement: [2,5) ⊢ (<10)
	if !Implies(&phi1, &phi2) {
		t.Error("Induction implication not detected")
	}
	if Implies(&phi2, &phi1) {
		t.Error("reverse implication wrongly detected")
	}
}

func TestImpliesGeneralization(t *testing.T) {
	f := regress.NewLinear(0, 2)
	phi1 := ruleOn(f, 1, condLT(10))
	phi2 := ruleOn(f, 2, condLT(10)) // wider ρ
	if !Implies(&phi1, &phi2) {
		t.Error("Generalization implication not detected")
	}
	if Implies(&phi2, &phi1) {
		t.Error("tightening ρ wrongly allowed")
	}
}

func TestImpliesRequiresSameModelAndBuiltins(t *testing.T) {
	phi1 := ruleOn(regress.NewLinear(0, 2), 1, condLT(10))
	phi2 := ruleOn(regress.NewLinear(0, 3), 1, condRange(2, 5))
	if Implies(&phi1, &phi2) {
		t.Error("implication across different models")
	}
	// Same region but a different builtin changes the shifted application.
	shifted := condRange(2, 5)
	shifted.Conjs[0].Builtin = shifted.Conjs[0].Builtin.WithYShift(3)
	phi3 := ruleOn(regress.NewLinear(0, 2), 1, shifted)
	if Implies(&phi1, &phi3) {
		t.Error("implication ignored builtin mismatch")
	}
	// Different signature.
	phi4 := ruleOn(regress.NewLinear(0, 2), 1, condRange(2, 5))
	phi4.YAttr = 0
	phi4.XAttrs = []int{1}
	if Implies(&phi1, &phi4) {
		t.Error("implication across signatures")
	}
}

func TestInduce(t *testing.T) {
	f := regress.NewLinear(0, 2)
	phi1 := ruleOn(f, 1, condLT(10))
	phi2, err := Induce(&phi1, condRange(2, 5))
	if err != nil {
		t.Fatalf("Induce: %v", err)
	}
	if !Implies(&phi1, &phi2) {
		t.Error("Induce output not implied by its premise")
	}
	if _, err := Induce(&phi1, condLT(20)); !errors.Is(err, ErrIncompatible) {
		t.Error("Induce accepted a non-refinement")
	}
}

func TestGeneralize(t *testing.T) {
	phi := ruleOn(regress.NewLinear(0, 2), 1, condLT(10))
	wide, err := Generalize(&phi, 3)
	if err != nil || wide.Rho != 3 {
		t.Fatalf("Generalize = %+v, %v", wide, err)
	}
	if _, err := Generalize(&phi, 0.5); !errors.Is(err, ErrIncompatible) {
		t.Error("Generalize tightened ρ")
	}
}

func TestFuse(t *testing.T) {
	f := regress.NewLinear(0, 2)
	phi1 := ruleOn(f, 1, condRange(0, 5))
	phi2 := ruleOn(f, 2, condRange(10, 15))
	phi3, err := Fuse(&phi1, &phi2)
	if err != nil {
		t.Fatalf("Fuse: %v", err)
	}
	if phi3.Rho != 2 {
		t.Errorf("fused ρ = %v, want max = 2", phi3.Rho)
	}
	if len(phi3.Cond.Conjs) != 2 {
		t.Errorf("fused condition has %d disjuncts, want 2", len(phi3.Cond.Conjs))
	}
	// Fusion requires the same regression function.
	phi4 := ruleOn(regress.NewLinear(1, 2), 1, condRange(0, 5))
	if _, err := Fuse(&phi1, &phi4); !errors.Is(err, ErrIncompatible) {
		t.Error("Fuse accepted different models")
	}
}

// Property (Proposition 3 + 4 soundness): any tuple satisfying both premises
// satisfies the fused rule.
func TestFuseSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		model := regress.NewLinear(rng.NormFloat64(), rng.NormFloat64())
		lo1 := float64(rng.Intn(10) - 5)
		lo2 := float64(rng.Intn(10) - 5)
		phi1 := ruleOn(model, rng.Float64()*2, condRange(lo1, lo1+3))
		phi2 := ruleOn(model, rng.Float64()*2, condRange(lo2, lo2+3))
		phi3, err := Fuse(&phi1, &phi2)
		if err != nil {
			return false
		}
		for trial := 0; trial < 60; trial++ {
			x := rng.Float64()*20 - 10
			y := model.Predict([]float64{x}) + rng.NormFloat64()*2
			tpl := lineTuple(x, y, "a")
			if phi1.Sat(tpl) && phi2.Sat(tpl) && !phi3.Sat(tpl) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTranslatePaperExample(t *testing.T) {
	// φ₄: f₄(Salary) = 0.04·Salary over C₄; φ₅: f₅ = f₄ − 230 over C₅.
	// Translation yields a rule on f₄ whose C₅-disjunct carries y = −230.
	f4 := regress.NewLinear(0, 0.04)
	f5 := regress.NewLinear(-230, 0.04)
	phi4 := ruleOn(f4, 1, condRange(0, 100))
	phi5 := ruleOn(f5, 1, condRange(200, 300))
	phi3, err := Translate(&phi4, &phi5)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	if len(phi3.Cond.Conjs) != 2 {
		t.Fatalf("translated condition has %d disjuncts", len(phi3.Cond.Conjs))
	}
	if got := phi3.Cond.Conjs[1].Builtin.YShift; got != -230 {
		t.Errorf("δ = %v, want −230", got)
	}
	if !phi3.Model.Equal(f4, 0) {
		t.Error("translated rule must reuse f₁'s model")
	}
	// Prediction in the second region equals f₅'s prediction.
	pred, ok := phi3.Predict(lineTuple(250, 0, "a"))
	if !ok || math.Abs(pred-f5.Predict([]float64{250})) > 1e-9 {
		t.Errorf("translated prediction = %v, want %v", pred, f5.Predict([]float64{250}))
	}
}

func TestTranslateRequiresEqualRho(t *testing.T) {
	f4 := regress.NewLinear(0, 0.04)
	f5 := regress.NewLinear(-230, 0.04)
	phi4 := ruleOn(f4, 1, condRange(0, 100))
	phi5 := ruleOn(f5, 2, condRange(200, 300))
	if _, err := Translate(&phi4, &phi5); !errors.Is(err, ErrIncompatible) {
		t.Error("Translate accepted unequal ρ")
	}
	// Generalize first, then translate — the Algorithm 2 recipe.
	phi4w, err := Generalize(&phi4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Translate(&phi4w, &phi5); err != nil {
		t.Errorf("Translate after Generalize: %v", err)
	}
}

func TestTranslateRejectsUnrelatedModels(t *testing.T) {
	phi1 := ruleOn(regress.NewLinear(0, 1), 1, condRange(0, 5))
	phi2 := ruleOn(regress.NewLinear(0, 2), 1, condRange(5, 9))
	if _, err := Translate(&phi1, &phi2); !errors.Is(err, ErrIncompatible) {
		t.Error("Translate accepted different slopes")
	}
}

// Property (Proposition 5 soundness): any tuple satisfying φ₁ and φ₂
// satisfies the translated φ₃.
func TestTranslateSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		slope := rng.NormFloat64()
		b1 := rng.NormFloat64() * 5
		delta := rng.NormFloat64() * 5
		f1 := regress.NewLinear(b1, slope)
		f2 := regress.NewLinear(b1+delta, slope)
		rho := rng.Float64()*2 + 0.1
		lo1 := float64(rng.Intn(6) - 3)
		lo2 := float64(rng.Intn(6) - 3)
		phi1 := ruleOn(f1, rho, condRange(lo1, lo1+2))
		phi2 := ruleOn(f2, rho, condRange(lo2, lo2+2))
		phi3, err := Translate(&phi1, &phi2)
		if err != nil {
			return false
		}
		for trial := 0; trial < 60; trial++ {
			x := rng.Float64()*12 - 6
			y := f1.Predict([]float64{x}) + rng.NormFloat64()*rho*2
			tpl := lineTuple(x, y, "a")
			if phi1.Sat(tpl) && phi2.Sat(tpl) && !phi3.Sat(tpl) {
				return false
			}
			// Also probe values near f2's graph to exercise the 2nd disjunct.
			y2 := f2.Predict([]float64{x}) + rng.NormFloat64()*rho*2
			tpl2 := lineTuple(x, y2, "a")
			if phi1.Sat(tpl2) && phi2.Sat(tpl2) && !phi3.Sat(tpl2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property (Proposition 2 soundness): for a refinement ℂ₂ ⊢ ℂ₁, every tuple
// satisfying φ₁ satisfies the induced φ₂.
func TestInduceSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		model := regress.NewLinear(rng.NormFloat64(), rng.NormFloat64())
		lo := float64(rng.Intn(6) - 3)
		phi1 := ruleOn(model, rng.Float64()+0.1, condRange(lo, lo+4))
		phi2, err := Induce(&phi1, condRange(lo+1, lo+2))
		if err != nil {
			return false
		}
		for trial := 0; trial < 60; trial++ {
			x := rng.Float64()*12 - 6
			y := model.Predict([]float64{x}) + rng.NormFloat64()
			tpl := lineTuple(x, y, "a")
			if phi1.Sat(tpl) && !phi2.Sat(tpl) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property (Proposition 4 soundness): widening ρ preserves satisfaction.
func TestGeneralizeSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		model := regress.NewLinear(rng.NormFloat64(), rng.NormFloat64())
		phi1 := ruleOn(model, rng.Float64()+0.1, condLT(float64(rng.Intn(10))))
		phi2, err := Generalize(&phi1, phi1.Rho+rng.Float64())
		if err != nil {
			return false
		}
		for trial := 0; trial < 60; trial++ {
			x := rng.Float64()*12 - 6
			y := model.Predict([]float64{x}) + rng.NormFloat64()
			tpl := lineTuple(x, y, "a")
			if phi1.Sat(tpl) && !phi2.Sat(tpl) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTranslateMLPNotSupported(t *testing.T) {
	m1, err := regress.NewMLPTrainer(1).Train([][]float64{{0}, {1}}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := regress.NewMLPTrainer(2).Train([][]float64{{0}, {1}}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	phi1 := ruleOn(m1, 1, condRange(0, 5))
	phi2 := ruleOn(m2, 1, condRange(5, 9))
	if _, err := Translate(&phi1, &phi2); !errors.Is(err, ErrIncompatible) {
		t.Error("Translate should not apply to F3 (MLP) models")
	}
}

func TestTranslationBuiltinMapsFeatureToAttr(t *testing.T) {
	tr := regress.Translation{DeltaX: []float64{0, 7}, DeltaY: 2}
	b := translationBuiltin(tr, []int{3, 5})
	if b.Shift(5) != 7 || b.Shift(3) != 0 || b.YShift != 2 {
		t.Errorf("builtin = %v", b)
	}
	_ = dataset.Numeric // keep import for helpers above
}
