package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

func TestRuleSetCodecRoundTrip(t *testing.T) {
	rel := piecewiseRelation(400, 0.2, 3)
	res, err := DiscoverWithConfig(rel, discoverCfg(rel, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	rules, _ := Compact(res.Rules)

	var buf bytes.Buffer
	if err := WriteRuleSet(&buf, rules); err != nil {
		t.Fatalf("WriteRuleSet: %v", err)
	}
	back, err := ReadRuleSet(&buf)
	if err != nil {
		t.Fatalf("ReadRuleSet: %v", err)
	}
	if back.NumRules() != rules.NumRules() {
		t.Fatalf("rules %d, want %d", back.NumRules(), rules.NumRules())
	}
	if back.YAttr != rules.YAttr || back.Fallback != rules.Fallback {
		t.Error("metadata changed in round trip")
	}
	if back.Schema.Len() != rules.Schema.Len() {
		t.Fatal("schema width changed")
	}
	// Predictions identical tuple-by-tuple, including builtin application.
	for _, tp := range rel.Tuples {
		p1, ok1 := rules.Predict(tp)
		p2, ok2 := back.Predict(tp)
		if ok1 != ok2 || absDiff(p1, p2) > 1e-12 {
			t.Fatalf("round trip changed prediction: %v/%v vs %v/%v", p1, ok1, p2, ok2)
		}
	}
}

func TestRuleSetCodecWithBuiltinsAndCategorical(t *testing.T) {
	conj := predicate.NewConjunction(
		predicate.NumPred(0, predicate.Ge, 5),
		predicate.StrPred(2, "Maria"),
	)
	conj.Builtin = conj.Builtin.WithXShift(0, 365).WithYShift(-2)
	rs := &RuleSet{
		Schema:   lineSchema(),
		XAttrs:   []int{0},
		YAttr:    1,
		Fallback: 9,
		Rules: []CRR{{
			Model: regress.NewLinear(1, 2), Rho: 0.25,
			Cond:   predicate.NewDNF(conj),
			XAttrs: []int{0}, YAttr: 1,
		}},
	}
	var buf bytes.Buffer
	if err := WriteRuleSet(&buf, rs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRuleSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c := back.Rules[0].Cond.Conjs[0]
	if c.Builtin.Shift(0) != 365 || c.Builtin.YShift != -2 {
		t.Errorf("builtin lost: %v", c.Builtin)
	}
	if len(c.Preds) != 2 || !c.Preds[1].Categorical || c.Preds[1].Str != "Maria" {
		t.Errorf("predicates lost: %v", c.Preds)
	}
	// The shifted application survives: f(x+365)−2 at x=10 is 1+2·375−2.
	pred, ok := back.Predict(lineTuple(10, 0, "Maria"))
	if !ok || pred != 1+2*375-2 {
		t.Errorf("Predict = %v, %v", pred, ok)
	}
}

func TestReadRuleSetRejectsBadInput(t *testing.T) {
	cases := []string{
		`not json`,
		`{"version":99}`,
		`{"version":1,"schema":[{"name":"A"}],"x_attrs":[5],"y_attr":0}`,
		`{"version":1,"schema":[{"name":"A"}],"x_attrs":[0],"y_attr":7}`,
		`{"version":1,"schema":[{"name":"A"},{"name":"B"}],"x_attrs":[0],"y_attr":1,
		  "rules":[{"model":{"family":"linear","linear":{"weights":[1,2,3]}},"rho":1,"cond":[]}]}`, // width 2 model for 1 xattr
	}
	for i, c := range cases {
		if _, err := ReadRuleSet(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestReadRuleSetLegacyV1: version-1 files predate the named schema
// metadata and must load unchanged.
func TestReadRuleSetLegacyV1(t *testing.T) {
	legacy := `{"version":1,
	  "schema":[{"name":"X"},{"name":"Y"},{"name":"Who","categorical":true}],
	  "x_attrs":[0],"y_attr":1,"fallback":4,
	  "rules":[{"model":{"family":"linear","linear":{"weights":[1,2]}},"rho":0.5,
	    "cond":[{"preds":[{"attr":0,"op":3,"num":0}]}]}]}`
	rs, err := ReadRuleSet(strings.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy v1 rejected: %v", err)
	}
	if rs.NumRules() != 1 || rs.YName() != "Y" || rs.XNames()[0] != "X" {
		t.Errorf("legacy load lost structure: %d rules, y=%q x=%v",
			rs.NumRules(), rs.YName(), rs.XNames())
	}
	if got := rs.CondAttrs(); len(got) != 1 || got[0] != 0 {
		t.Errorf("CondAttrs = %v, want [0]", got)
	}
}

// TestRuleSetCodecNameMetadata: version-2 files carry x_names/y_name/
// cond_attrs, they survive a round trip, and inconsistent metadata is
// rejected rather than silently trusted.
func TestRuleSetCodecNameMetadata(t *testing.T) {
	rel := piecewiseRelation(400, 0.2, 3)
	res, err := DiscoverWithConfig(rel, discoverCfg(rel, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRuleSet(&buf, res.Rules); err != nil {
		t.Fatal(err)
	}
	raw := buf.String()
	if !strings.Contains(raw, `"version": 2`) || !strings.Contains(raw, `"y_name"`) ||
		!strings.Contains(raw, `"x_names"`) {
		t.Fatalf("v2 artifact lacks name metadata:\n%.300s", raw)
	}
	back, err := ReadRuleSet(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if back.YName() != res.Rules.YName() {
		t.Errorf("y name changed: %q vs %q", back.YName(), res.Rules.YName())
	}

	bad := []string{
		strings.Replace(raw, `"y_name"`, `"y_name_x"`, 1),                      // unknown field is fine...
		strings.Replace(raw, `"version": 2`, `"version": 3`, 1),                // future version
		strings.Replace(raw, `"op": `, `"op": 9`, 1),                           // hostile operator (prefixes a digit)
		strings.Replace(raw, `"cond_attrs": [`, `"cond_attrs": ["nosuch",`, 1), // unknown cond attr
	}
	// Case 0 drops y_name entirely (renamed key is simply ignored by the
	// decoder), which is legal; the rest must error.
	if _, err := ReadRuleSet(strings.NewReader(bad[0])); err != nil {
		t.Errorf("missing y_name must stay legal, got %v", err)
	}
	for i, c := range bad[1:] {
		if _, err := ReadRuleSet(strings.NewReader(c)); err == nil {
			t.Errorf("bad case %d accepted", i+1)
		}
	}

	// Swapped metadata: declare a y_name that names a different column.
	other := rel.Schema.Attr(0).Name
	if other == res.Rules.YName() {
		t.Fatalf("test setup: attr 0 is the target")
	}
	swapped := strings.Replace(raw,
		`"y_name": "`+res.Rules.YName()+`"`, `"y_name": "`+other+`"`, 1)
	if _, err := ReadRuleSet(strings.NewReader(swapped)); err == nil {
		t.Error("mismatched y_name accepted")
	}
}

func TestRuleSetCodecEmpty(t *testing.T) {
	rs := &RuleSet{Schema: lineSchema(), XAttrs: []int{0}, YAttr: 1, Fallback: 3}
	var buf bytes.Buffer
	if err := WriteRuleSet(&buf, rs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRuleSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRules() != 0 || back.Fallback != 3 {
		t.Error("empty rule set round trip failed")
	}
}

// Property: WriteRuleSet → ReadRuleSet is prediction-preserving for random
// rule sets with mixed window shapes and builtins.
func TestRuleSetCodecProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := randomRuleSet(rng)
		var buf bytes.Buffer
		if err := WriteRuleSet(&buf, rs); err != nil {
			return false
		}
		back, err := ReadRuleSet(&buf)
		if err != nil {
			return false
		}
		for trial := 0; trial < 100; trial++ {
			tp := lineTuple(float64(rng.Intn(30)-15)+rng.Float64(), 0,
				[]string{"a", "b"}[rng.Intn(2)])
			p1, ok1 := rs.Predict(tp)
			p2, ok2 := back.Predict(tp)
			if ok1 != ok2 || p1 != p2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
