package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

func TestRuleSetCodecRoundTrip(t *testing.T) {
	rel := piecewiseRelation(400, 0.2, 3)
	res, err := DiscoverWithConfig(rel, discoverCfg(rel, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	rules, _ := Compact(res.Rules)

	var buf bytes.Buffer
	if err := WriteRuleSet(&buf, rules); err != nil {
		t.Fatalf("WriteRuleSet: %v", err)
	}
	back, err := ReadRuleSet(&buf)
	if err != nil {
		t.Fatalf("ReadRuleSet: %v", err)
	}
	if back.NumRules() != rules.NumRules() {
		t.Fatalf("rules %d, want %d", back.NumRules(), rules.NumRules())
	}
	if back.YAttr != rules.YAttr || back.Fallback != rules.Fallback {
		t.Error("metadata changed in round trip")
	}
	if back.Schema.Len() != rules.Schema.Len() {
		t.Fatal("schema width changed")
	}
	// Predictions identical tuple-by-tuple, including builtin application.
	for _, tp := range rel.Tuples {
		p1, ok1 := rules.Predict(tp)
		p2, ok2 := back.Predict(tp)
		if ok1 != ok2 || absDiff(p1, p2) > 1e-12 {
			t.Fatalf("round trip changed prediction: %v/%v vs %v/%v", p1, ok1, p2, ok2)
		}
	}
}

func TestRuleSetCodecWithBuiltinsAndCategorical(t *testing.T) {
	conj := predicate.NewConjunction(
		predicate.NumPred(0, predicate.Ge, 5),
		predicate.StrPred(2, "Maria"),
	)
	conj.Builtin = conj.Builtin.WithXShift(0, 365).WithYShift(-2)
	rs := &RuleSet{
		Schema:   lineSchema(),
		XAttrs:   []int{0},
		YAttr:    1,
		Fallback: 9,
		Rules: []CRR{{
			Model: regress.NewLinear(1, 2), Rho: 0.25,
			Cond:   predicate.NewDNF(conj),
			XAttrs: []int{0}, YAttr: 1,
		}},
	}
	var buf bytes.Buffer
	if err := WriteRuleSet(&buf, rs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRuleSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c := back.Rules[0].Cond.Conjs[0]
	if c.Builtin.Shift(0) != 365 || c.Builtin.YShift != -2 {
		t.Errorf("builtin lost: %v", c.Builtin)
	}
	if len(c.Preds) != 2 || !c.Preds[1].Categorical || c.Preds[1].Str != "Maria" {
		t.Errorf("predicates lost: %v", c.Preds)
	}
	// The shifted application survives: f(x+365)−2 at x=10 is 1+2·375−2.
	pred, ok := back.Predict(lineTuple(10, 0, "Maria"))
	if !ok || pred != 1+2*375-2 {
		t.Errorf("Predict = %v, %v", pred, ok)
	}
}

func TestReadRuleSetRejectsBadInput(t *testing.T) {
	cases := []string{
		`not json`,
		`{"version":99}`,
		`{"version":1,"schema":[{"name":"A"}],"x_attrs":[5],"y_attr":0}`,
		`{"version":1,"schema":[{"name":"A"}],"x_attrs":[0],"y_attr":7}`,
		`{"version":1,"schema":[{"name":"A"},{"name":"B"}],"x_attrs":[0],"y_attr":1,
		  "rules":[{"model":{"family":"linear","linear":{"weights":[1,2,3]}},"rho":1,"cond":[]}]}`, // width 2 model for 1 xattr
	}
	for i, c := range cases {
		if _, err := ReadRuleSet(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRuleSetCodecEmpty(t *testing.T) {
	rs := &RuleSet{Schema: lineSchema(), XAttrs: []int{0}, YAttr: 1, Fallback: 3}
	var buf bytes.Buffer
	if err := WriteRuleSet(&buf, rs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRuleSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRules() != 0 || back.Fallback != 3 {
		t.Error("empty rule set round trip failed")
	}
}

// Property: WriteRuleSet → ReadRuleSet is prediction-preserving for random
// rule sets with mixed window shapes and builtins.
func TestRuleSetCodecProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := randomRuleSet(rng)
		var buf bytes.Buffer
		if err := WriteRuleSet(&buf, rs); err != nil {
			return false
		}
		back, err := ReadRuleSet(&buf)
		if err != nil {
			return false
		}
		for trial := 0; trial < 100; trial++ {
			tp := lineTuple(float64(rng.Intn(30)-15)+rng.Float64(), 0,
				[]string{"a", "b"}[rng.Intn(2)])
			p1, ok1 := rs.Predict(tp)
			p2, ok2 := back.Predict(tp)
			if ok1 != ok2 || p1 != p2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
