package core

import (
	"math"
	"sort"
	"strings"

	"github.com/crrlab/crr/internal/predicate"
)

// MergeWindows collapses chains of touching condition windows within each
// rule whose y = δ builtins agree within deltaTol, replacing them by one
// window carrying the midpoint shift and widening the rule's ρ by half the
// δ spread. The rewrite is sound: a tuple previously guaranteed
// |y − (f+δᵢ)| ≤ ρ satisfies |y − (f+δ*)| ≤ ρ + |δᵢ − δ*| ≤ ρ + spread/2
// (Generalization, Proposition 4). Windows carrying x = Δ shifts, bounded on
// several attributes, or under different categorical contexts pass through
// untouched. deltaTol ≤ 0 merges only exactly-equal shifts.
//
// The returned set replaces s; the input is not modified.
func MergeWindows(s *RuleSet, deltaTol float64) *RuleSet {
	out := &RuleSet{
		Schema:   s.Schema,
		XAttrs:   append([]int(nil), s.XAttrs...),
		YAttr:    s.YAttr,
		Fallback: s.Fallback,
	}
	out.Rules = make([]CRR, len(s.Rules))
	for i := range s.Rules {
		out.Rules[i] = s.Rules[i]
		cond, extra := mergeRuleWindows(s.Rules[i].Cond, deltaTol)
		out.Rules[i].Cond = cond
		out.Rules[i].Rho = s.Rules[i].Rho + extra
	}
	return out
}

type deltaWindow struct {
	attr               int
	lo, hi             float64
	loClosed, hiClosed bool
	delta              float64
	context            string
	tmpl               predicate.Conjunction // source conjunction (context preds)
}

// mergeRuleWindows merges one rule's condition; extra is the ρ widening.
func mergeRuleWindows(d predicate.DNF, deltaTol float64) (predicate.DNF, float64) {
	var windows []deltaWindow
	var passthrough []predicate.Conjunction
	for _, c := range d.Conjs {
		w, ok := asDeltaWindow(c)
		if !ok {
			passthrough = append(passthrough, c)
			continue
		}
		windows = append(windows, w)
	}
	if len(windows) < 2 {
		return d, 0
	}
	sort.SliceStable(windows, func(i, j int) bool {
		if windows[i].context != windows[j].context {
			return windows[i].context < windows[j].context
		}
		if windows[i].attr != windows[j].attr {
			return windows[i].attr < windows[j].attr
		}
		if windows[i].lo != windows[j].lo {
			return windows[i].lo < windows[j].lo
		}
		return windows[i].hi < windows[j].hi
	})

	var out predicate.DNF
	var extra float64
	emit := func(run []deltaWindow) {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, w := range run {
			if w.delta < lo {
				lo = w.delta
			}
			if w.delta > hi {
				hi = w.delta
			}
		}
		mid := (lo + hi) / 2
		if half := (hi - lo) / 2; half > extra {
			extra = half
		}
		merged := run[0]
		for _, w := range run[1:] {
			if w.hi > merged.hi || (w.hi == merged.hi && w.hiClosed) {
				merged.hi, merged.hiClosed = w.hi, w.hiClosed
			}
		}
		conj := rebuildDeltaWindow(merged, mid)
		out.Conjs = append(out.Conjs, conj)
	}

	run := []deltaWindow{windows[0]}
	runLo, runHi := windows[0].delta, windows[0].delta
	// Running right edge of the run (windows may nest, so the last window's
	// hi is not necessarily the run's).
	edge, edgeClosed := windows[0].hi, windows[0].hiClosed
	for _, w := range windows[1:] {
		prev := run[len(run)-1]
		lo, hi := runLo, runHi
		if w.delta < lo {
			lo = w.delta
		}
		if w.delta > hi {
			hi = w.delta
		}
		joinable := w.context == prev.context && w.attr == prev.attr &&
			edgeTouches(edge, edgeClosed, w) && hi-lo <= deltaTol
		if joinable {
			run = append(run, w)
			runLo, runHi = lo, hi
			if w.hi > edge || (w.hi == edge && w.hiClosed) {
				edge, edgeClosed = w.hi, w.hiClosed
			}
			continue
		}
		emit(run)
		run = []deltaWindow{w}
		runLo, runHi = w.delta, w.delta
		edge, edgeClosed = w.hi, w.hiClosed
	}
	emit(run)
	out.Conjs = append(out.Conjs, passthrough...)
	return out, extra
}

// edgeTouches reports whether window b connects to a run whose right edge is
// (edge, edgeClosed): overlap, or exact adjacency with at least one side
// including the boundary point.
func edgeTouches(edge float64, edgeClosed bool, b deltaWindow) bool {
	if b.lo < edge {
		return true
	}
	if b.lo > edge {
		return false
	}
	return edgeClosed || b.loClosed
}

// asDeltaWindow decomposes a conjunction into (context, single numeric
// interval, pure y shift); ok is false when the shape doesn't fit.
func asDeltaWindow(c predicate.Conjunction) (deltaWindow, bool) {
	if len(c.Builtin.XShift) > 0 && !pureY(c.Builtin) {
		return deltaWindow{}, false
	}
	attrs := map[int]bool{}
	for _, p := range c.Preds {
		if !p.Categorical {
			attrs[p.Attr] = true
		}
	}
	if len(attrs) != 1 {
		return deltaWindow{}, false
	}
	var attr int
	for a := range attrs {
		attr = a
	}
	lo, hi, ok := c.NumericBounds(attr)
	if !ok {
		return deltaWindow{}, false
	}
	// Recover closedness from the predicates (NumericBounds drops it).
	loClosed, hiClosed := true, true
	for _, p := range c.Preds {
		if p.Attr != attr || p.Categorical {
			continue
		}
		switch p.Op {
		case predicate.Gt:
			if p.Num == lo {
				loClosed = false
			}
		case predicate.Lt:
			if p.Num == hi {
				hiClosed = false
			}
		}
	}
	var ctx []string
	for _, p := range c.Preds {
		if p.Categorical {
			ctx = append(ctx, p.String())
		}
	}
	sort.Strings(ctx)
	return deltaWindow{
		attr: attr, lo: lo, hi: hi, loClosed: loClosed, hiClosed: hiClosed,
		delta: c.Builtin.YShift, context: strings.Join(ctx, "&"), tmpl: c,
	}, true
}

func pureY(b predicate.Builtin) bool {
	for _, v := range b.XShift {
		if v != 0 {
			return false
		}
	}
	return true
}

// rebuildDeltaWindow reconstructs the conjunction of a merged window,
// copying the categorical context from the template.
func rebuildDeltaWindow(w deltaWindow, delta float64) predicate.Conjunction {
	conj := predicate.NewConjunction()
	for _, p := range w.tmpl.Preds {
		if p.Categorical {
			conj.Preds = append(conj.Preds, p)
		}
	}
	if w.lo == w.hi {
		conj.Preds = append(conj.Preds, predicate.NumPred(w.attr, predicate.Eq, w.lo))
	} else {
		if !math.IsInf(w.lo, -1) {
			op := predicate.Gt
			if w.loClosed {
				op = predicate.Ge
			}
			conj.Preds = append(conj.Preds, predicate.NumPred(w.attr, op, w.lo))
		}
		if !math.IsInf(w.hi, 1) {
			op := predicate.Lt
			if w.hiClosed {
				op = predicate.Le
			}
			conj.Preds = append(conj.Preds, predicate.NumPred(w.attr, op, w.hi))
		}
	}
	if delta != 0 {
		conj.Builtin = conj.Builtin.WithYShift(delta)
	}
	return conj
}
