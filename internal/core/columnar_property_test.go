package core_test

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/experiments"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

// The columnar execution core's parity contract, asserted property-style
// across all five synthetic generators with randomized predicate sets and
// injected nulls: vectorized Conjunction/DNF filters must equal Sat row
// scans, ViolationsColumns must equal ViolationsRows, PredictBatch must
// equal per-tuple Predict, and ExplainView must equal per-tuple Explain.

func propertySpecs() []experiments.DatasetSpec {
	return []experiments.DatasetSpec{
		experiments.TaxSpec(), experiments.ElectricitySpec(), experiments.AbaloneSpec(),
		experiments.AirQualitySpec(), experiments.BirdMapSpec(),
	}
}

// maskedRelation generates n rows of the spec's dataset and masks a slice of
// the target and first condition attribute, so every parity check crosses
// null handling.
func maskedRelation(spec experiments.DatasetSpec, n int, rng *rand.Rand) *dataset.Relation {
	rel := spec.Gen(n).Clone()
	rel.MaskMissing(spec.YAttr, 0.05, rng)
	for _, a := range spec.CondAttrs {
		if rel.Schema.Attr(a).Kind == dataset.Numeric {
			rel.MaskMissing(a, 0.05, rng)
			break
		}
	}
	return rel
}

// randConjunction draws up to three predicates from the generated space.
func randConjunction(preds []predicate.Predicate, rng *rand.Rand) predicate.Conjunction {
	c := predicate.NewConjunction()
	for i, k := 0, 1+rng.Intn(3); i < k; i++ {
		c = c.And(preds[rng.Intn(len(preds))])
	}
	return c
}

func sameSelection(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFilterParityAcrossGenerators: vectorized Conjunction and DNF filters
// vs Sat row scans over every generator's value distribution.
func TestFilterParityAcrossGenerators(t *testing.T) {
	for _, spec := range propertySpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(23))
			rel := maskedRelation(spec, 400, rng)
			preds := predicate.Generate(rel, spec.CondAttrs, predicate.GeneratorConfig{
				Kind: predicate.Binary, Size: 32,
			})
			if len(preds) == 0 {
				t.Fatal("no predicates generated")
			}
			cs := dataset.NewColumnSet(rel)
			full := cs.View().Sel
			for trial := 0; trial < 60; trial++ {
				conj := randConjunction(preds, rng)
				var want []int
				for _, r := range full {
					if conj.Sat(rel.Tuples[r]) {
						want = append(want, r)
					}
				}
				if got := conj.Filter(cs, full, nil); !sameSelection(got, want) {
					t.Fatalf("trial %d: conjunction %v: filter/Sat mismatch", trial, conj)
				}

				var conjs []predicate.Conjunction
				for i, k := 0, rng.Intn(3); i <= k; i++ {
					conjs = append(conjs, randConjunction(preds, rng))
				}
				d := predicate.NewDNF(conjs...)
				want = want[:0]
				for _, r := range full {
					if d.Sat(rel.Tuples[r]) {
						want = append(want, r)
					}
				}
				if got := d.Filter(cs, full, nil); !sameSelection(got, want) {
					t.Fatalf("trial %d: dnf %v: filter/Sat mismatch", trial, d)
				}
			}
		})
	}
}

// discoverRules mines a small rule set for the parity checks.
func discoverRules(t *testing.T, spec experiments.DatasetSpec, rel *dataset.Relation) *core.RuleSet {
	t.Helper()
	preds := predicate.Generate(rel, spec.CondAttrs, predicate.GeneratorConfig{
		Kind: predicate.Binary, Size: 32,
	})
	res, err := core.Discover(context.Background(), rel, core.WithConfig(core.DiscoverConfig{
		XAttrs:  spec.XAttrs,
		YAttr:   spec.YAttr,
		RhoM:    spec.RhoM,
		Preds:   preds,
		Trainer: regress.LinearTrainer{},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rules.NumRules() == 0 {
		t.Fatal("no rules discovered")
	}
	return res.Rules
}

// TestViolationsColumnarParity: ViolationsColumns (the engine behind
// Violations) must equal the ViolationsRows reference on every generator,
// including masked-null relations.
func TestViolationsColumnarParity(t *testing.T) {
	for _, spec := range propertySpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(29))
			train := spec.Gen(500)
			rules := discoverRules(t, spec, train)
			// Check a shifted, masked slice so violations actually occur.
			check := maskedRelation(spec, 400, rng)
			for i, tp := range check.Tuples {
				if i%7 == 0 && !tp[spec.YAttr].Null {
					nt := tp.Clone()
					nt[spec.YAttr] = dataset.Num(tp[spec.YAttr].Num + 10*spec.RhoM)
					check.Tuples[i] = nt
				}
			}
			want := core.ViolationsRows(check, rules)
			got := core.Violations(check, rules)
			if len(got) != len(want) {
				t.Fatalf("violations: columnar %d, rows %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("violation %d: columnar %+v, rows %+v", i, got[i], want[i])
				}
			}
			if len(want) == 0 {
				t.Fatal("no violations produced; parity check vacuous")
			}
		})
	}
}

// TestPredictBatchParity: PredictBatch must equal per-tuple Predict —
// bitwise — on every generator, nulls included.
func TestPredictBatchParity(t *testing.T) {
	for _, spec := range propertySpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(31))
			train := spec.Gen(500)
			rules := discoverRules(t, spec, train)
			check := maskedRelation(spec, 400, rng)
			preds, covered := rules.PredictBatch(check)
			for i, tp := range check.Tuples {
				v, ok := rules.Predict(tp)
				if covered[i] != ok || preds[i] != v {
					t.Fatalf("tuple %d: batch (%v, %v), row (%v, %v)", i, preds[i], covered[i], v, ok)
				}
			}
		})
	}
}

// TestExplainViewParity: ExplainView must equal per-tuple Explain.
func TestExplainViewParity(t *testing.T) {
	for _, spec := range propertySpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(37))
			train := spec.Gen(500)
			rules := discoverRules(t, spec, train)
			check := maskedRelation(spec, 200, rng)
			got := core.ExplainView(dataset.NewColumnSet(check).View(), rules)
			for i, tp := range check.Tuples {
				want := core.Explain(rules, tp)
				g := got[i]
				if g.Covered != want.Covered || g.Prediction != want.Prediction || len(g.Matches) != len(want.Matches) {
					t.Fatalf("tuple %d: view %+v, row %+v", i, g, want)
				}
				for j := range want.Matches {
					a, b := g.Matches[j], want.Matches[j]
					sameDev := a.Deviation == b.Deviation || (math.IsNaN(a.Deviation) && math.IsNaN(b.Deviation))
					if a.RuleIndex != b.RuleIndex || a.ConjIndex != b.ConjIndex ||
						a.Prediction != b.Prediction || !sameDev || a.Satisfied != b.Satisfied {
						t.Fatalf("tuple %d match %d: view %+v, row %+v", i, j, a, b)
					}
				}
			}
		})
	}
}

// TestDiscoveryRowScanBitwise: sequential discovery on the columnar scan
// engine vs the RowScan reference must be bitwise-identical (weights
// compared with tolerance 0) under a randomized predicate space.
func TestDiscoveryRowScanBitwise(t *testing.T) {
	for _, spec := range propertySpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			rel := spec.Gen(500)
			preds := predicate.Generate(rel, spec.CondAttrs, predicate.GeneratorConfig{
				Kind: predicate.Binary, Size: 48, Seed: 17,
			})
			cfg := core.DiscoverConfig{
				XAttrs:  spec.XAttrs,
				YAttr:   spec.YAttr,
				RhoM:    spec.RhoM,
				Preds:   preds,
				Trainer: regress.LinearTrainer{},
			}
			colRes, err := core.Discover(context.Background(), rel, core.WithConfig(cfg))
			if err != nil {
				t.Fatal(err)
			}
			cfg.RowScan = true
			rowRes, err := core.Discover(context.Background(), rel, core.WithConfig(cfg))
			if err != nil {
				t.Fatal(err)
			}
			if !experiments.SameRules(colRes.Rules, rowRes.Rules, 0) {
				t.Fatal("columnar and row-scan discovery output not bitwise-identical")
			}
		})
	}
}
