package core

import (
	"bytes"
	"math"
	"testing"

	"github.com/crrlab/crr/internal/regress"
)

// TestCodecRoundTripCompactedRuleSet round-trips a rule set whose builtins
// were produced by the compaction engine itself (Translation δ composition,
// Fusion of translated disjuncts) — not hand-assembled — and requires the
// decoded set to classify bitwise identically. This is the shape the serving
// layer loads after `crrdiscover -compact -save`.
func TestCodecRoundTripCompactedRuleSet(t *testing.T) {
	rs := &RuleSet{Schema: lineSchema(), XAttrs: []int{0}, YAttr: 1, Fallback: 3}
	// Two translation families; compaction rewrites all but one rule per
	// family through built-in y = δ predicates and fuses the conditions.
	for i := 0; i < 4; i++ {
		lo := float64(i * 10)
		rs.Rules = append(rs.Rules, ruleOn(
			regress.NewLinear(float64(i)*7, 2), 0.4+0.05*float64(i), condRange(lo, lo+10)))
	}
	for i := 0; i < 3; i++ {
		lo := 100 + float64(i*10)
		rs.Rules = append(rs.Rules, ruleOn(
			regress.NewLinear(float64(i)*-3, 0.5), 0.2, condRange(lo, lo+10)))
	}
	compacted, stats := Compact(rs)
	if stats.Translations == 0 || stats.Fusions == 0 {
		t.Fatalf("setup produced no inferences: %+v", stats)
	}
	hasShift := false
	for ri := range compacted.Rules {
		for _, conj := range compacted.Rules[ri].Cond.Conjs {
			if conj.Builtin.YShift != 0 {
				hasShift = true
			}
		}
	}
	if !hasShift {
		t.Fatal("setup produced no built-in δ predicates")
	}

	var buf bytes.Buffer
	if err := WriteRuleSet(&buf, compacted); err != nil {
		t.Fatalf("encode: %v", err)
	}
	decoded, err := ReadRuleSet(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}

	if decoded.NumRules() != compacted.NumRules() {
		t.Fatalf("rule count %d vs %d", decoded.NumRules(), compacted.NumRules())
	}
	for ri := range compacted.Rules {
		a, b := &compacted.Rules[ri], &decoded.Rules[ri]
		if a.Cond.String() != b.Cond.String() {
			t.Fatalf("rule %d condition %q vs %q", ri, a.Cond.String(), b.Cond.String())
		}
		if math.Float64bits(a.Rho) != math.Float64bits(b.Rho) {
			t.Fatalf("rule %d ρ %v vs %v", ri, a.Rho, b.Rho)
		}
		if !a.Model.Equal(b.Model, 0) {
			t.Fatalf("rule %d model changed across the round trip", ri)
		}
		for ci := range a.Cond.Conjs {
			if !a.Cond.Conjs[ci].Builtin.Equal(b.Cond.Conjs[ci].Builtin) {
				t.Fatalf("rule %d conjunction %d builtin %v vs %v",
					ri, ci, a.Cond.Conjs[ci].Builtin, b.Cond.Conjs[ci].Builtin)
			}
		}
	}
	// Bitwise classification parity across the translated ranges, the gaps
	// and the fallback region.
	for x := -5.0; x <= 140; x += 0.5 {
		tp := lineTuple(x, 0, "a")
		p1, ok1 := compacted.Predict(tp)
		p2, ok2 := decoded.Predict(tp)
		if ok1 != ok2 || math.Float64bits(p1) != math.Float64bits(p2) {
			t.Fatalf("x=%v: original (%v,%v) vs decoded (%v,%v)", x, p1, ok1, p2, ok2)
		}
	}
}
