package core

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
)

// This file persists discovered rule sets as JSON so rules mined once (the
// expensive step) can be reused for prediction, imputation and constraint
// checking without re-learning.

// ruleSetJSON is the on-disk form of a RuleSet. Since format version 2 the
// artifact also names its attributes explicitly (XNames, YName, CondAttrs)
// so consumers such as crrserve can validate request payloads by name
// instead of trusting positional field order; version-1 files without the
// fields remain readable.
type ruleSetJSON struct {
	Version   int        `json:"version"`
	Schema    []attrJSON `json:"schema"`
	XAttrs    []int      `json:"x_attrs"`
	YAttr     int        `json:"y_attr"`
	XNames    []string   `json:"x_names,omitempty"`
	YName     string     `json:"y_name,omitempty"`
	CondAttrs []string   `json:"cond_attrs,omitempty"`
	Fallback  float64    `json:"fallback"`
	Rules     []ruleJSON `json:"rules"`
}

type attrJSON struct {
	Name        string `json:"name"`
	Categorical bool   `json:"categorical,omitempty"`
}

type ruleJSON struct {
	Model json.RawMessage `json:"model"`
	Rho   float64         `json:"rho"`
	Cond  []conjJSON      `json:"cond"`
}

type conjJSON struct {
	Preds  []predJSON      `json:"preds,omitempty"`
	XShift map[int]float64 `json:"x_shift,omitempty"`
	YShift float64         `json:"y_shift,omitempty"`
}

type predJSON struct {
	Attr int     `json:"attr"`
	Op   int     `json:"op"`
	Num  float64 `json:"num,omitempty"`
	Str  string  `json:"str,omitempty"`
	Cat  bool    `json:"cat,omitempty"`
}

// codecVersion is bumped on format changes. Version 2 added the named
// schema metadata (x_names, y_name, cond_attrs); ReadRuleSet still accepts
// version-1 files, which simply lack the fields.
const (
	codecVersionLegacy = 1
	codecVersion       = 2
)

// WriteRuleSet serializes the rule set as indented JSON.
func WriteRuleSet(w io.Writer, s *RuleSet) error {
	out := ruleSetJSON{
		Version:  codecVersion,
		XAttrs:   s.XAttrs,
		YAttr:    s.YAttr,
		Fallback: s.Fallback,
	}
	if s.Schema != nil {
		for i := 0; i < s.Schema.Len(); i++ {
			a := s.Schema.Attr(i)
			out.Schema = append(out.Schema, attrJSON{
				Name:        a.Name,
				Categorical: a.Kind == dataset.Categorical,
			})
		}
		out.XNames = s.XNames()
		out.YName = s.YName()
		for _, a := range s.CondAttrs() {
			out.CondAttrs = append(out.CondAttrs, s.Schema.Attr(a).Name)
		}
	}
	for i := range s.Rules {
		r := &s.Rules[i]
		model, err := regress.EncodeModel(r.Model)
		if err != nil {
			return fmt.Errorf("core: rule %d: %w", i, err)
		}
		rj := ruleJSON{Model: model, Rho: r.Rho}
		for _, c := range r.Cond.Conjs {
			cj := conjJSON{YShift: c.Builtin.YShift}
			if len(c.Builtin.XShift) > 0 {
				cj.XShift = c.Builtin.XShift
			}
			for _, p := range c.Preds {
				cj.Preds = append(cj.Preds, predJSON{
					Attr: p.Attr, Op: int(p.Op), Num: p.Num, Str: p.Str, Cat: p.Categorical,
				})
			}
			rj.Cond = append(rj.Cond, cj)
		}
		out.Rules = append(out.Rules, rj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadRuleSet deserializes a rule set written by WriteRuleSet. The returned
// set is ready to Predict; XAttrs/YAttr/conditions are validated against the
// embedded schema, and when the version-2 name metadata is present it must
// agree with the positional fields. Legacy version-1 files (without name
// metadata) are accepted unchanged.
func ReadRuleSet(r io.Reader) (*RuleSet, error) {
	var in ruleSetJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: decode rule set: %w", err)
	}
	if in.Version != codecVersionLegacy && in.Version != codecVersion {
		return nil, fmt.Errorf("core: rule set version %d, want %d or %d",
			in.Version, codecVersionLegacy, codecVersion)
	}
	attrs := make([]dataset.Attribute, len(in.Schema))
	for i, a := range in.Schema {
		kind := dataset.Numeric
		if a.Categorical {
			kind = dataset.Categorical
		}
		attrs[i] = dataset.Attribute{Name: a.Name, Kind: kind}
	}
	schema, err := dataset.NewSchema(attrs...)
	if err != nil {
		return nil, err
	}
	checkAttr := func(a int) error {
		if a < 0 || a >= schema.Len() {
			return fmt.Errorf("core: attribute index %d outside schema of %d columns", a, schema.Len())
		}
		return nil
	}
	for _, a := range in.XAttrs {
		if err := checkAttr(a); err != nil {
			return nil, err
		}
	}
	if err := checkAttr(in.YAttr); err != nil {
		return nil, err
	}
	if err := checkNameMetadata(&in, schema); err != nil {
		return nil, err
	}
	out := &RuleSet{
		Schema:   schema,
		XAttrs:   in.XAttrs,
		YAttr:    in.YAttr,
		Fallback: in.Fallback,
	}
	for ri, rj := range in.Rules {
		model, err := regress.DecodeModel(rj.Model)
		if err != nil {
			return nil, fmt.Errorf("core: rule %d: %w", ri, err)
		}
		if model.Dim() != len(in.XAttrs) {
			return nil, fmt.Errorf("core: rule %d model width %d, want %d", ri, model.Dim(), len(in.XAttrs))
		}
		rule := CRR{Model: model, Rho: rj.Rho, XAttrs: out.XAttrs, YAttr: out.YAttr}
		for _, cj := range rj.Cond {
			conj := predicate.NewConjunction()
			for _, pj := range cj.Preds {
				if err := checkAttr(pj.Attr); err != nil {
					return nil, err
				}
				if pj.Op < int(predicate.Eq) || pj.Op > int(predicate.Le) {
					return nil, fmt.Errorf("core: rule %d: unknown predicate operator %d", ri, pj.Op)
				}
				conj.Preds = append(conj.Preds, predicate.Predicate{
					Attr: pj.Attr, Op: predicate.Op(pj.Op), Num: pj.Num, Str: pj.Str, Categorical: pj.Cat,
				})
			}
			b := predicate.ZeroBuiltin().WithYShift(cj.YShift)
			for attr, d := range cj.XShift {
				if err := checkAttr(attr); err != nil {
					return nil, err
				}
				b = b.WithXShift(attr, d)
			}
			conj.Builtin = b
			rule.Cond.Conjs = append(rule.Cond.Conjs, conj)
		}
		out.Rules = append(out.Rules, rule)
	}
	if len(in.CondAttrs) > 0 {
		declared := make(map[string]bool, len(in.CondAttrs))
		for _, name := range in.CondAttrs {
			declared[name] = true
		}
		for _, a := range out.CondAttrs() {
			if name := schema.Attr(a).Name; !declared[name] {
				return nil, fmt.Errorf("core: condition references attribute %q not declared in cond_attrs", name)
			}
		}
	}
	return out, nil
}

// checkNameMetadata validates the version-2 named schema metadata against
// the positional fields: every declared name must exist in the schema and
// agree with the corresponding index. All three fields are optional (legacy
// version-1 files omit them), but a present field must be consistent.
func checkNameMetadata(in *ruleSetJSON, schema *dataset.Schema) error {
	if len(in.XNames) > 0 {
		if len(in.XNames) != len(in.XAttrs) {
			return fmt.Errorf("core: x_names has %d entries, x_attrs has %d", len(in.XNames), len(in.XAttrs))
		}
		for i, name := range in.XNames {
			if got := schema.Attr(in.XAttrs[i]).Name; got != name {
				return fmt.Errorf("core: x_names[%d] = %q but x_attrs[%d] names column %q", i, name, i, got)
			}
		}
	}
	if in.YName != "" {
		if got := schema.Attr(in.YAttr).Name; got != in.YName {
			return fmt.Errorf("core: y_name = %q but y_attr names column %q", in.YName, got)
		}
	}
	for _, name := range in.CondAttrs {
		if _, err := schema.Index(name); err != nil {
			return fmt.Errorf("core: cond_attrs: %w", err)
		}
	}
	return nil
}
