package core

import (
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	rel := piecewiseRelation(600, 0.2, 17)
	res, err := DiscoverWithConfig(rel, discoverCfg(rel, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(res.Rules)
	if sum.Rules != res.Rules.NumRules() || sum.Models != res.Rules.NumModels() {
		t.Errorf("summary counts off: %+v", sum)
	}
	if sum.Conjunctions < sum.Rules {
		t.Errorf("conjunctions %d < rules %d", sum.Conjunctions, sum.Rules)
	}
	if sum.Translated == 0 {
		t.Error("no translated windows despite model sharing")
	}
	// ρ exceeds ρ_M only on forced coverage rules (regime-boundary slivers
	// that no predicate can split).
	if sum.MinRho < 0 || sum.MaxRho < sum.MinRho {
		t.Errorf("ρ range [%v, %v] malformed", sum.MinRho, sum.MaxRho)
	}
	if sum.MaxRho > 0.5+1e-9 && res.Stats.ForcedRules == 0 {
		t.Errorf("ρ %v beyond ρ_M without any forced rule", sum.MaxRho)
	}
	if sum.PredsPerConj <= 0 {
		t.Errorf("PredsPerConj = %v", sum.PredsPerConj)
	}
	if !strings.Contains(sum.String(), "rules over") {
		t.Error("String rendering")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	sum := Summarize(&RuleSet{Schema: lineSchema(), XAttrs: []int{0}, YAttr: 1})
	if sum != (Summary{}) {
		t.Errorf("empty summary = %+v", sum)
	}
}

func TestCompareOnEquivalentAfterCompaction(t *testing.T) {
	rel := piecewiseRelation(600, 0.2, 18)
	res, err := DiscoverWithConfig(rel, discoverCfg(rel, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	compacted, _ := Compact(res.Rules)
	d := CompareOn(rel, res.Rules, compacted, 1e-9)
	if !d.Equivalent() {
		t.Errorf("compaction not equivalent: %+v", d)
	}
	if d.Agree != rel.Len() {
		t.Errorf("agree = %d of %d", d.Agree, rel.Len())
	}
}

func TestCompareOnDetectsMismatch(t *testing.T) {
	rel := piecewiseRelation(200, 0.2, 19)
	res, err := DiscoverWithConfig(rel, discoverCfg(rel, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	// An empty rule set disagrees on coverage everywhere a rule matched.
	empty := &RuleSet{Schema: rel.Schema, XAttrs: res.Rules.XAttrs, YAttr: res.Rules.YAttr}
	d := CompareOn(rel, res.Rules, empty, 1e-9)
	if d.Equivalent() || d.CoverageMismatch == 0 {
		t.Errorf("diff missed the coverage gap: %+v", d)
	}
}
