package core

import (
	"fmt"
	"math"
	"strings"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
)

// Explanation reports how a rule set treats one tuple: every covering rule
// with the conjunction that matched, the builtins it applied, the prediction
// and the margin to ρ. It is the debugging surface behind crrcheck and rule
// inspection.
type Explanation struct {
	// Covered reports whether any rule's condition matched.
	Covered bool
	// Prediction is the rule set's prediction (first covering rule) or the
	// fallback when uncovered.
	Prediction float64
	// Matches lists every covering rule in rule order; Matches[0] is the one
	// Predict used.
	Matches []MatchInfo
}

// MatchInfo is one covering rule's view of the tuple.
type MatchInfo struct {
	RuleIndex int
	ConjIndex int
	// Builtin holds the applied shifts (x = Δ, y = δ).
	Builtin predicate.Builtin
	// Prediction is f(t.X + Δ) + δ for this rule.
	Prediction float64
	// Deviation is |t.Y − Prediction|; NaN when the target is null.
	Deviation float64
	// Satisfied reports Deviation ≤ ρ (true when the target is null).
	Satisfied bool
}

// Explain evaluates every rule of s against t.
func Explain(s *RuleSet, t dataset.Tuple) Explanation {
	out := Explanation{Prediction: s.Fallback}
	for ri := range s.Rules {
		r := &s.Rules[ri]
		conj, ok := r.Cond.MatchConjunction(t)
		if !ok {
			continue
		}
		pred, ok := r.Predict(t)
		if !ok {
			continue // null X cell
		}
		m := MatchInfo{
			RuleIndex:  ri,
			ConjIndex:  conjIndexOf(r, t),
			Builtin:    conj.Builtin,
			Prediction: pred,
			Deviation:  math.NaN(),
			Satisfied:  true,
		}
		if !t[s.YAttr].Null {
			m.Deviation = math.Abs(t[s.YAttr].Num - pred)
			m.Satisfied = m.Deviation <= r.Rho+satSlack
		}
		if !out.Covered {
			out.Covered = true
			out.Prediction = pred
		}
		out.Matches = append(out.Matches, m)
	}
	return out
}

func conjIndexOf(r *CRR, t dataset.Tuple) int {
	for ci, c := range r.Cond.Conjs {
		if c.Sat(t) {
			return ci
		}
	}
	return -1
}

// Format renders the explanation for human consumption.
func (e Explanation) Format(s *RuleSet) string {
	var b strings.Builder
	if !e.Covered {
		fmt.Fprintf(&b, "uncovered; fallback prediction %.6g\n", e.Prediction)
		return b.String()
	}
	fmt.Fprintf(&b, "prediction %.6g via rule %d\n", e.Prediction, e.Matches[0].RuleIndex+1)
	for _, m := range e.Matches {
		rule := &s.Rules[m.RuleIndex]
		status := "satisfied"
		if !m.Satisfied {
			status = fmt.Sprintf("VIOLATED (deviation %.4g > ρ %.4g)", m.Deviation, rule.Rho)
		}
		shift := m.Builtin.String()
		if shift == "" {
			shift = "x=0,y=0"
		}
		fmt.Fprintf(&b, "  rule %d conj %d [%s]: f→%.6g, %s\n",
			m.RuleIndex+1, m.ConjIndex+1, shift, m.Prediction, status)
	}
	return b.String()
}
