// Package core implements conditional regression rules (CRRs): the rule form
// φ : (f, ρ, ℂ) of Definition 1, the five inference rules of §IV
// (Reflexivity, Induction, Fusion, Generalization, Translation), the
// discovery algorithm with model sharing (Algorithm 1, §V-A) and the
// compaction algorithm (Algorithm 2, §V-B) of
//
//	Kang, Song, Wang. "Conditional Regression Rules". ICDE 2022.
package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
	"github.com/crrlab/crr/internal/telemetry"
)

// CRR is a conditional regression rule φ : (f, ρ, ℂ). The regression
// function f maps the values of attributes XAttrs to a prediction of YAttr;
// ρ bounds |t.Y − (f(t.X + x) + y)| on tuples satisfying ℂ, where the
// built-in shifts x, y are read from the conjunction of ℂ the tuple matches
// (§III-B).
type CRR struct {
	Model  regress.Model
	Rho    float64
	Cond   predicate.DNF
	XAttrs []int
	YAttr  int
}

// Covers reports whether tuple t satisfies the rule's condition ℂ.
func (r *CRR) Covers(t dataset.Tuple) bool { return r.Cond.Sat(t) }

// Predict evaluates f(t.X + x) + y for tuple t using the built-in predicates
// of the first conjunction of ℂ that t satisfies. ok is false when t does
// not satisfy ℂ or has a null X cell.
func (r *CRR) Predict(t dataset.Tuple) (pred float64, ok bool) {
	conj, ok := r.Cond.MatchConjunction(t)
	if !ok {
		return 0, false
	}
	x := make([]float64, len(r.XAttrs))
	for i, attr := range r.XAttrs {
		if t[attr].Null {
			return 0, false
		}
		x[i] = t[attr].Num + conj.Builtin.Shift(attr)
	}
	return r.Model.Predict(x) + conj.Builtin.YShift, true
}

// Sat implements the CRR semantics t ⊨ φ: vacuously true when t ⊭ ℂ,
// otherwise |t.Y − (f(t.X + x) + y)| ≤ ρ. Tuples with a null Y or X cell
// under a matching condition count as violations only when the prediction is
// checkable; a null Y cannot be checked and is treated as satisfying
// (missing data is what CRRs are later used to impute).
func (r *CRR) Sat(t dataset.Tuple) bool {
	pred, ok := r.Predict(t)
	if !ok {
		return true
	}
	if t[r.YAttr].Null {
		return true
	}
	return math.Abs(t[r.YAttr].Num-pred) <= r.Rho+satSlack
}

// satSlack absorbs float rounding in the ≤ ρ comparison; ρ itself is
// computed from the same float pipeline, so exact ties are common.
const satSlack = 1e-9

// Trivial implements the Reflexivity check (Proposition 1): a rule whose
// target also appears among its inputs is trivially satisfiable and must be
// excluded from discovery output.
func (r *CRR) Trivial() bool {
	for _, a := range r.XAttrs {
		if a == r.YAttr {
			return true
		}
	}
	return false
}

// String renders the rule without schema names.
func (r *CRR) String() string {
	return fmt.Sprintf("(%s, ρ=%.4g, %s)", r.Model.Family(), r.Rho, r.Cond.String())
}

// Format renders the rule with attribute names.
func (r *CRR) Format(schema *dataset.Schema) string {
	return fmt.Sprintf("f:%s→%s [%s], ρ=%.4g, ℂ=%s",
		attrNames(schema, r.XAttrs), schema.Attr(r.YAttr).Name,
		r.Model.Family(), r.Rho, r.Cond.Format(schema))
}

func attrNames(schema *dataset.Schema, idxs []int) string {
	s := ""
	for i, idx := range idxs {
		if i > 0 {
			s += ","
		}
		s += schema.Attr(idx).Name
	}
	return s
}

// RuleSet is a discovered set Σ of CRRs over one (X, Y) attribute choice,
// with a constant fallback for tuples no rule covers.
//
// Predict lazily builds an interval index over the conjunctions' bounds on
// the first X attribute; concurrent Predict calls are safe, but mutating
// Rules requires calling Invalidate before the next Predict.
type RuleSet struct {
	Schema   *dataset.Schema
	XAttrs   []int
	YAttr    int
	Rules    []CRR
	Fallback float64 // prediction for uncovered tuples (training mean of Y)

	idx   atomic.Pointer[ruleIndex]
	idxMu sync.Mutex

	lookups, misses        *telemetry.Counter
	colsBuild, rowsScanned *telemetry.Counter
	filterSel              *telemetry.Distribution
}

// Invalidate discards the lazily built prediction index; call it after
// mutating Rules.
func (s *RuleSet) Invalidate() { s.idx.Store(nil) }

// SetTelemetry attaches a metrics registry to the prediction path: every
// Predict increments predict.index_lookups, and lookups that fall back to
// the training mean increment predict.index_misses. The columnar batch path
// (PredictBatch/PredictView) reports the same two counters per row plus the
// columnar-engine metrics columns.build_ns, filter.rows_scanned and
// filter.selectivity. A nil registry detaches (nil handles no-op, so both
// paths stay branch-free).
func (s *RuleSet) SetTelemetry(r *telemetry.Registry) {
	if r == nil {
		s.lookups, s.misses = nil, nil
		s.colsBuild, s.rowsScanned, s.filterSel = nil, nil, nil
		return
	}
	s.lookups = r.Counter(telemetry.MetricIndexLookups)
	s.misses = r.Counter(telemetry.MetricIndexMisses)
	s.colsBuild = r.Counter(telemetry.MetricColumnsBuild)
	s.rowsScanned = r.Counter(telemetry.MetricFilterRowsScanned)
	s.filterSel = r.Distribution(telemetry.MetricFilterSelectivity)
}

// index returns the prediction index, building it once under a mutex so
// concurrent Predict calls are safe.
func (s *RuleSet) index() *ruleIndex {
	if idx := s.idx.Load(); idx != nil {
		return idx
	}
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	if idx := s.idx.Load(); idx != nil {
		return idx
	}
	idx := buildRuleIndex(s)
	s.idx.Store(idx)
	return idx
}

// Predict returns the prediction of the first covering rule, falling back to
// the training mean when no rule covers t. covered reports which case
// applied. First-rule/first-conjunction semantics match a linear scan.
func (s *RuleSet) Predict(t dataset.Tuple) (pred float64, covered bool) {
	s.lookups.Inc()
	e, ok := s.index().lookup(s, t)
	if !ok {
		s.misses.Inc()
		return s.Fallback, false
	}
	rule := &s.Rules[e.rule]
	conj := rule.Cond.Conjs[e.conj]
	x := make([]float64, len(rule.XAttrs))
	for i, attr := range rule.XAttrs {
		x[i] = t[attr].Num + conj.Builtin.Shift(attr)
	}
	return rule.Model.Predict(x) + conj.Builtin.YShift, true
}

// indexEntry addresses one conjunction of one rule.
type indexEntry struct {
	rule, conj int
}

// ruleIndex is a uniform-grid interval index over the conjunction bounds on
// one numeric attribute. Conjunctions without numeric bounds on that
// attribute live in overflow and are checked for every lookup. For the
// disjoint condition windows discovery produces, lookups touch O(1)
// candidates instead of scanning every disjunct.
type ruleIndex struct {
	attr     int
	lo, hi   float64
	width    float64
	buckets  [][]indexEntry
	overflow []indexEntry
}

func buildRuleIndex(s *RuleSet) *ruleIndex {
	idx := &ruleIndex{attr: -1}
	if len(s.XAttrs) > 0 {
		idx.attr = s.XAttrs[0]
	}
	type span struct {
		e      indexEntry
		lo, hi float64
	}
	var spans []span
	for ri := range s.Rules {
		for ci, conj := range s.Rules[ri].Cond.Conjs {
			e := indexEntry{ri, ci}
			if idx.attr < 0 {
				idx.overflow = append(idx.overflow, e)
				continue
			}
			lo, hi, ok := conj.NumericBounds(idx.attr)
			if !ok || (math.IsInf(lo, -1) && math.IsInf(hi, 1)) {
				idx.overflow = append(idx.overflow, e)
				continue
			}
			spans = append(spans, span{e, lo, hi})
		}
	}
	if len(spans) == 0 {
		return idx
	}
	idx.lo, idx.hi = math.Inf(1), math.Inf(-1)
	for _, sp := range spans {
		if !math.IsInf(sp.lo, -1) && sp.lo < idx.lo {
			idx.lo = sp.lo
		}
		if !math.IsInf(sp.hi, 1) && sp.hi > idx.hi {
			idx.hi = sp.hi
		}
	}
	if math.IsInf(idx.lo, 1) || math.IsInf(idx.hi, -1) || idx.lo >= idx.hi {
		// Degenerate grid: every span becomes overflow.
		for _, sp := range spans {
			idx.overflow = append(idx.overflow, sp.e)
		}
		sortEntries(idx.overflow)
		return idx
	}
	n := len(spans)
	if n < 16 {
		n = 16
	}
	idx.buckets = make([][]indexEntry, n)
	idx.width = (idx.hi - idx.lo) / float64(n)
	for _, sp := range spans {
		b0 := idx.bucketOf(sp.lo)
		b1 := idx.bucketOf(sp.hi)
		for b := b0; b <= b1; b++ {
			idx.buckets[b] = append(idx.buckets[b], sp.e)
		}
	}
	for b := range idx.buckets {
		sortEntries(idx.buckets[b])
	}
	sortEntries(idx.overflow)
	return idx
}

func sortEntries(es []indexEntry) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].rule != es[j].rule {
			return es[i].rule < es[j].rule
		}
		return es[i].conj < es[j].conj
	})
}

func (idx *ruleIndex) bucketOf(v float64) int {
	if math.IsInf(v, -1) || v < idx.lo {
		return 0
	}
	if math.IsInf(v, 1) || v >= idx.hi {
		return len(idx.buckets) - 1
	}
	b := int((v - idx.lo) / idx.width)
	if b >= len(idx.buckets) {
		b = len(idx.buckets) - 1
	}
	return b
}

// lookup returns the first-match entry for t, merging the candidate bucket
// with the overflow list in (rule, conj) order so semantics equal a full
// linear scan.
func (idx *ruleIndex) lookup(s *RuleSet, t dataset.Tuple) (indexEntry, bool) {
	var bucket []indexEntry
	if len(idx.buckets) > 0 && idx.attr >= 0 && !t[idx.attr].Null {
		bucket = idx.buckets[idx.bucketOf(t[idx.attr].Num)]
	}
	over := idx.overflow
	match := func(e indexEntry) bool {
		rule := &s.Rules[e.rule]
		conj := rule.Cond.Conjs[e.conj]
		if !conj.Sat(t) {
			return false
		}
		for _, attr := range rule.XAttrs {
			if t[attr].Null {
				return false
			}
		}
		return true
	}
	i, j := 0, 0
	for i < len(bucket) || j < len(over) {
		var e indexEntry
		if j >= len(over) || (i < len(bucket) && lessEntry(bucket[i], over[j])) {
			e = bucket[i]
			i++
		} else {
			e = over[j]
			j++
		}
		if match(e) {
			return e, true
		}
	}
	return indexEntry{}, false
}

func lessEntry(a, b indexEntry) bool {
	if a.rule != b.rule {
		return a.rule < b.rule
	}
	return a.conj < b.conj
}

// Coverage returns the fraction of tuples in rel covered by some rule. It
// classifies columnar-first (one PredictBatch pass); coverage flags equal
// the per-tuple Predict outcome.
func (s *RuleSet) Coverage(rel *dataset.Relation) float64 {
	if rel.Len() == 0 {
		return 1
	}
	_, covered := s.PredictBatch(rel)
	n := 0
	for _, c := range covered {
		if c {
			n++
		}
	}
	return float64(n) / float64(rel.Len())
}

// RMSE evaluates the rule set's root-mean-square error on rel, skipping
// tuples with a null target.
func (s *RuleSet) RMSE(rel *dataset.Relation) float64 {
	var sum float64
	n := 0
	for _, t := range rel.Tuples {
		if t[s.YAttr].Null {
			continue
		}
		p, _ := s.Predict(t)
		d := t[s.YAttr].Num - p
		sum += d * d
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(n))
}

// NumRules returns |Σ|.
func (s *RuleSet) NumRules() int { return len(s.Rules) }

// XNames returns the ordered names of the regression input attributes, or
// nil when the set carries no schema.
func (s *RuleSet) XNames() []string {
	if s.Schema == nil {
		return nil
	}
	out := make([]string, len(s.XAttrs))
	for i, a := range s.XAttrs {
		out[i] = s.Schema.Attr(a).Name
	}
	return out
}

// YName returns the target attribute's name, or "" when the set carries no
// schema.
func (s *RuleSet) YName() string {
	if s.Schema == nil {
		return ""
	}
	return s.Schema.Attr(s.YAttr).Name
}

// CondAttrs returns the sorted set of attribute indices referenced by any
// rule condition — ordinary predicates and built-in shift predicates alike.
// These are the columns a payload must be allowed to constrain.
func (s *RuleSet) CondAttrs() []int {
	seen := make(map[int]bool)
	for i := range s.Rules {
		for _, c := range s.Rules[i].Cond.Conjs {
			for _, p := range c.Preds {
				seen[p.Attr] = true
			}
			for attr := range c.Builtin.XShift {
				seen[attr] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

// NumModels returns the number of distinct regression models among the
// rules, where distinct means not Equal within modelTol. This is the
// quantity model sharing minimizes.
func (s *RuleSet) NumModels() int {
	var models []regress.Model
outer:
	for i := range s.Rules {
		for _, m := range models {
			if s.Rules[i].Model.Equal(m, modelTol) {
				continue outer
			}
		}
		models = append(models, s.Rules[i].Model)
	}
	return len(models)
}

// modelTol is the parameter tolerance under which two models count as the
// same regression function for sharing and fusion purposes.
const modelTol = 1e-6

// Holds reports whether every tuple of rel satisfies every rule of the set
// (the data-satisfaction invariant Σ must keep after discovery and
// compaction).
func (s *RuleSet) Holds(rel *dataset.Relation) bool {
	for _, t := range rel.Tuples {
		for i := range s.Rules {
			if !s.Rules[i].Sat(t) {
				return false
			}
		}
	}
	return true
}

// FeatureRows extracts the X design matrix and Y target for the given tuple
// indices of rel, skipping tuples with a null X or Y cell. The returned
// kept slice holds the relation indices actually used.
func FeatureRows(rel *dataset.Relation, idxs []int, xattrs []int, yattr int) (x [][]float64, y []float64, kept []int) {
	for _, ti := range idxs {
		t := rel.Tuples[ti]
		if t[yattr].Null {
			continue
		}
		row := make([]float64, len(xattrs))
		null := false
		for i, a := range xattrs {
			if t[a].Null {
				null = true
				break
			}
			row[i] = t[a].Num
		}
		if null {
			continue
		}
		x = append(x, row)
		y = append(y, t[yattr].Num)
		kept = append(kept, ti)
	}
	return x, y, kept
}
