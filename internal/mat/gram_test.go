package mat

import (
	"math/rand"
	"testing"
)

// TestGramMatchesMul pins the bitwise contract of the one-pass kernel: for
// any design matrix, Gram(x, y) must equal Mul(xᵀ, x) and MulVec(xᵀ, y)
// entry for entry — same addition order, same zero-skip semantics — so the
// normal-equation solves downstream are bit-identical either way.
func TestGramMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		n, d := 1+rng.Intn(50), 1+rng.Intn(5)
		x := NewDense(n, d)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < d; j++ {
				v := 10 * (rng.Float64() - 0.5)
				if rng.Intn(4) == 0 {
					v = 0 // exercise the zero-skip path
				}
				x.Set(i, j, v)
			}
			y[i] = rng.NormFloat64()
		}

		xtx, xty, err := Gram(x, y)
		if err != nil {
			t.Fatalf("Gram: %v", err)
		}
		xt := x.T()
		wantXtX, err := Mul(xt, x)
		if err != nil {
			t.Fatal(err)
		}
		wantXtY, err := MulVec(xt, y)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				if xtx.At(i, j) != wantXtX.At(i, j) {
					t.Fatalf("trial %d: XtX[%d,%d] = %v, want %v (must be bitwise equal)",
						trial, i, j, xtx.At(i, j), wantXtX.At(i, j))
				}
			}
			if xty[i] != wantXtY[i] {
				t.Fatalf("trial %d: XtY[%d] = %v, want %v", trial, i, xty[i], wantXtY[i])
			}
		}
	}
}

func TestGramShapeMismatch(t *testing.T) {
	if _, _, err := Gram(NewDense(3, 2), make([]float64, 2)); err == nil {
		t.Error("Gram accepted mismatched y length")
	}
}
