package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatalf("FromRows: %v", err)
	}
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape = %dx%d, want 3x2", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 {
		t.Errorf("At(2,1) = %v, want 6", m.At(2, 1))
	}
}

func TestFromRowsRagged(t *testing.T) {
	_, err := FromRows([][]float64{{1, 2}, {3}})
	if !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m, err := FromRows(nil)
	if err != nil || m.Rows != 0 || m.Cols != 0 {
		t.Fatalf("FromRows(nil) = %v,%v", m, err)
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := Mul(a, b)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("c[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulShapeMismatch(t *testing.T) {
	a := NewDense(2, 3)
	b := NewDense(2, 3)
	if _, err := Mul(a, b); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 0, 2}, {0, 3, 0}})
	v, err := MulVec(a, []float64{1, 2, 3})
	if err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	if v[0] != 7 || v[1] != 6 {
		t.Errorf("MulVec = %v, want [7 6]", v)
	}
}

func TestMulVecShape(t *testing.T) {
	a := NewDense(2, 3)
	if _, err := MulVec(a, []float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestTranspose(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("T shape = %dx%d", at.Rows, at.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Errorf("transpose mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	// SPD matrix and a known solution.
	a, _ := FromRows([][]float64{{4, 2, 0}, {2, 5, 1}, {0, 1, 3}})
	want := []float64{1, -2, 3}
	b, err := MulVec(a, want)
	if err != nil {
		t.Fatal(err)
	}
	x, err := SolveSPD(a, b)
	if err != nil {
		t.Fatalf("SolveSPD: %v", err)
	}
	for i := range want {
		if !almostEq(x[i], want[i], 1e-9) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestCholeskySingular(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 1}, {1, 1}})
	if _, err := Cholesky(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestCholeskyNonSquare(t *testing.T) {
	if _, err := Cholesky(NewDense(2, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// y = 2 + 3x fitted exactly through a design with intercept column.
	xs := []float64{0, 1, 2, 3, 4}
	rows := make([][]float64, len(xs))
	y := make([]float64, len(xs))
	for i, x := range xs {
		rows[i] = []float64{1, x}
		y[i] = 2 + 3*x
	}
	design, _ := FromRows(rows)
	w, err := LeastSquares(design, y, 0)
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	if !almostEq(w[0], 2, 1e-9) || !almostEq(w[1], 3, 1e-9) {
		t.Errorf("w = %v, want [2 3]", w)
	}
}

func TestLeastSquaresRidgeShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows := make([][]float64, 50)
	y := make([]float64, 50)
	for i := range rows {
		x := rng.Float64() * 10
		rows[i] = []float64{1, x}
		y[i] = 5*x + rng.NormFloat64()
	}
	design, _ := FromRows(rows)
	w0, err := LeastSquares(design, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	wr, err := LeastSquares(design, y, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wr[1]) >= math.Abs(w0[1]) {
		t.Errorf("ridge slope %v not shrunk vs OLS slope %v", wr[1], w0[1])
	}
}

func TestLeastSquaresCollinearJitter(t *testing.T) {
	// Perfectly collinear columns: the jitter retry must still produce a
	// finite solution with small residual.
	rows := make([][]float64, 10)
	y := make([]float64, 10)
	for i := range rows {
		x := float64(i)
		rows[i] = []float64{1, x, 2 * x}
		y[i] = 3 * x
	}
	design, _ := FromRows(rows)
	w, err := LeastSquares(design, y, 0)
	if err != nil {
		t.Fatalf("LeastSquares on collinear design: %v", err)
	}
	pred, err := MulVec(design, w)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(pred, y); d > 1e-4 {
		t.Errorf("residual max = %v, want ~0", d)
	}
}

func TestLeastSquaresShape(t *testing.T) {
	if _, err := LeastSquares(NewDense(3, 2), []float64{1, 2}, 0); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestAddDiagNonSquare(t *testing.T) {
	if err := AddDiag(NewDense(2, 3), 1); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestNorm2AndMaxAbsDiff(t *testing.T) {
	if n := Norm2([]float64{3, 4}); !almostEq(n, 5, 1e-12) {
		t.Errorf("Norm2 = %v, want 5", n)
	}
	if d := MaxAbsDiff([]float64{1, 2, 3}, []float64{1, 5, 2}); d != 3 {
		t.Errorf("MaxAbsDiff = %v, want 3", d)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot did not panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestCloneIndependent(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}})
	b := a.Clone()
	b.Set(0, 0, 9)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares backing storage")
	}
}

// Property: solving a·x=b for random SPD a (built as MᵀM+I) recovers x.
func TestSolveSPDProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		m := NewDense(n, n)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		gram, err := Mul(m.T(), m)
		if err != nil {
			return false
		}
		if err := AddDiag(gram, 1); err != nil {
			return false
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b, err := MulVec(gram, want)
		if err != nil {
			return false
		}
		got, err := SolveSPD(gram, b)
		if err != nil {
			return false
		}
		return MaxAbsDiff(got, want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: (aᵀ)ᵀ == a.
func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(5), 1+rng.Intn(5)
		a := NewDense(r, c)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		tt := a.T().T()
		if tt.Rows != a.Rows || tt.Cols != a.Cols {
			return false
		}
		return MaxAbsDiff(tt.Data, a.Data) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
