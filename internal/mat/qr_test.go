package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveQRExact(t *testing.T) {
	// Overdetermined consistent system: y = 2 + 3x.
	rows := make([][]float64, 6)
	y := make([]float64, 6)
	for i := range rows {
		x := float64(i)
		rows[i] = []float64{1, x}
		y[i] = 2 + 3*x
	}
	a, _ := FromRows(rows)
	w, err := SolveQR(a, y)
	if err != nil {
		t.Fatalf("SolveQR: %v", err)
	}
	if !almostEq(w[0], 2, 1e-9) || !almostEq(w[1], 3, 1e-9) {
		t.Errorf("w = %v, want [2 3]", w)
	}
}

func TestSolveQRMatchesNormalEquations(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows := make([][]float64, 60)
	y := make([]float64, 60)
	for i := range rows {
		x1, x2 := rng.NormFloat64(), rng.NormFloat64()
		rows[i] = []float64{1, x1, x2}
		y[i] = 5 + 2*x1 - x2 + rng.NormFloat64()
	}
	a, _ := FromRows(rows)
	wq, err := SolveQR(a, y)
	if err != nil {
		t.Fatal(err)
	}
	wn, err := LeastSquares(a, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(wq, wn); d > 1e-8 {
		t.Errorf("QR vs normal equations differ by %v", d)
	}
}

func TestSolveQRIllConditioned(t *testing.T) {
	// Nearly collinear columns that defeat the raw normal equations: the
	// Gram matrix condition number is squared, QR's is not.
	const eps = 1e-8
	rows := make([][]float64, 20)
	y := make([]float64, 20)
	for i := range rows {
		x := float64(i) / 19
		rows[i] = []float64{1, x, x + eps*float64(i%2)}
		y[i] = 1 + x // representable with w = [1, 1, 0]
	}
	a, _ := FromRows(rows)
	w, err := SolveQR(a, y)
	if err != nil {
		t.Fatalf("SolveQR: %v", err)
	}
	pred, _ := MulVec(a, w)
	if d := MaxAbsDiff(pred, y); d > 1e-6 {
		t.Errorf("ill-conditioned residual = %v", d)
	}
}

func TestSolveQRRankDeficient(t *testing.T) {
	rows := [][]float64{{1, 2}, {2, 4}, {3, 6}} // rank 1
	a, _ := FromRows(rows)
	if _, err := SolveQR(a, []float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Errorf("rank-deficient err = %v, want ErrSingular", err)
	}
}

func TestFactorQRShape(t *testing.T) {
	if _, err := FactorQR(NewDense(2, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("m < n err = %v, want ErrShape", err)
	}
	f, err := FactorQR(NewDense(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("bad rhs err = %v, want ErrShape", err)
	}
}

// Property: for random full-rank tall designs, QR reproduces a known
// solution of a consistent system.
func TestSolveQRProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		m := n + 1 + rng.Intn(10)
		a := NewDense(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b, err := MulVec(a, want)
		if err != nil {
			return false
		}
		got, err := SolveQR(a, b)
		if err != nil {
			// Random Gaussian designs are almost surely full rank; treat a
			// singular draw as a vacuous case.
			return errors.Is(err, ErrSingular)
		}
		return MaxAbsDiff(got, want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the QR residual is orthogonal to the column space (first-order
// optimality of least squares): ‖Aᵀ(Ax − b)‖ ≈ 0.
func TestSolveQROrthogonalResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		m := n + 2 + rng.Intn(8)
		a := NewDense(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveQR(a, b)
		if err != nil {
			return errors.Is(err, ErrSingular)
		}
		pred, err := MulVec(a, x)
		if err != nil {
			return false
		}
		res := make([]float64, m)
		for i := range res {
			res[i] = pred[i] - b[i]
		}
		grad, err := MulVec(a.T(), res)
		if err != nil {
			return false
		}
		var scale float64
		for _, v := range b {
			scale += math.Abs(v)
		}
		return Norm2(grad) < 1e-8*(1+scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
