// Package mat provides the small dense linear-algebra kernel used by the
// regression substrate: column-major-free dense matrices, Cholesky and QR
// factorizations, and least-squares solvers via the normal equations.
//
// The package is deliberately minimal — it implements exactly what OLS,
// ridge regression and a small MLP need, with no external dependencies.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization meets a (numerically)
// singular matrix.
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// ErrShape is returned when operand dimensions do not conform.
var ErrShape = errors.New("mat: dimension mismatch")

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewDense allocates an r×c zero matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic("mat: negative dimension")
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 {
		return NewDense(0, 0), nil
	}
	c := len(rows[0])
	m := NewDense(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("%w: row %d has %d entries, want %d", ErrShape, i, len(row), c)
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// At returns the (i,j) element.
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the (i,j) element.
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared backing array).
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns a*b, or ErrShape if the inner dimensions differ.
func Mul(a, b *Dense) (*Dense, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("%w: (%dx%d)·(%dx%d)", ErrShape, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// MulVec returns a·x for a vector x, or ErrShape.
func MulVec(a *Dense, x []float64) ([]float64, error) {
	if a.Cols != len(x) {
		return nil, fmt.Errorf("%w: (%dx%d)·vec(%d)", ErrShape, a.Rows, a.Cols, len(x))
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		out[i] = Dot(a.Row(i), x)
	}
	return out, nil
}

// Dot returns the inner product of two equal-length vectors.
// It panics if the lengths differ, matching the behaviour of slice indexing.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// AddDiag adds lambda to every diagonal element of square m, in place.
func AddDiag(m *Dense, lambda float64) error {
	if m.Rows != m.Cols {
		return fmt.Errorf("%w: AddDiag on %dx%d", ErrShape, m.Rows, m.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] += lambda
	}
	return nil
}

// Cholesky computes the lower-triangular L with L·Lᵀ = a for a symmetric
// positive-definite a. It returns ErrSingular when a pivot collapses.
func Cholesky(a *Dense) (*Dense, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: Cholesky on %dx%d", ErrShape, a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrSingular
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return l, nil
}

// SolveCholesky solves a·x = b given the Cholesky factor L of a.
func SolveCholesky(l *Dense, b []float64) ([]float64, error) {
	n := l.Rows
	if len(b) != n {
		return nil, fmt.Errorf("%w: SolveCholesky rhs %d, want %d", ErrShape, len(b), n)
	}
	// Forward solve L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back solve Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// SolveSPD solves a·x = b for symmetric positive-definite a.
func SolveSPD(a *Dense, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return SolveCholesky(l, b)
}

// Gram computes XᵀX and Xᵀy in a single pass over the rows of x, without
// materializing the transpose. Per Gram-matrix entry the accumulation order
// is the row order of x, exactly the order Mul(x.T(), x) produces, so the
// result is bitwise identical to the two-matrix formulation — discovery's
// sufficient-statistics fast path relies on that equivalence.
func Gram(x *Dense, y []float64) (xtx *Dense, xty []float64, err error) {
	if x.Rows != len(y) {
		return nil, nil, fmt.Errorf("%w: design %dx%d vs target %d", ErrShape, x.Rows, x.Cols, len(y))
	}
	d := x.Cols
	xtx = NewDense(d, d)
	xty = make([]float64, d)
	for k := 0; k < x.Rows; k++ {
		row := x.Row(k)
		yk := y[k]
		for i, vi := range row {
			// The zero skip mirrors Mul's, so entries agree bitwise even for
			// non-finite operands; xty takes every term like Dot does.
			xty[i] += vi * yk
			if vi == 0 {
				continue
			}
			grow := xtx.Row(i)
			for j, vj := range row {
				grow[j] += vi * vj
			}
		}
	}
	return xtx, xty, nil
}

// LeastSquares solves min_w ‖X·w − y‖² (+ lambda‖w‖² when lambda > 0) via the
// normal equations (Xᵀ X + λI) w = Xᵀ y. When the Gram matrix is singular it
// falls back to Householder QR (condition number enters once, not squared);
// a genuinely rank-deficient design finally solves through a tiny ridge
// jitter so discovery on degenerate parts (e.g. a single tuple) still yields
// a covering model.
func LeastSquares(x *Dense, y []float64, lambda float64) ([]float64, error) {
	gram, rhs, err := Gram(x, y)
	if err != nil {
		return nil, err
	}
	if lambda > 0 {
		if err := AddDiag(gram, lambda); err != nil {
			return nil, err
		}
	}
	w, err := SolveSPD(gram, rhs)
	if err == nil {
		return w, nil
	}
	if !errors.Is(err, ErrSingular) || lambda > 0 {
		return nil, err
	}
	if x.Rows >= x.Cols {
		if w, err := SolveQR(x, y); err == nil {
			return w, nil
		}
	}
	// Jitter retry: scale to the magnitude of the diagonal.
	var trace float64
	for i := 0; i < gram.Rows; i++ {
		trace += gram.At(i, i)
	}
	jitter := 1e-10*trace/float64(gram.Rows) + 1e-12
	if err := AddDiag(gram, jitter); err != nil {
		return nil, err
	}
	return SolveSPD(gram, rhs)
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns max_i |a[i]−b[i]|; it panics on length mismatch.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: MaxAbsDiff length mismatch")
	}
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}
