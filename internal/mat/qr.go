package mat

import "math"

// QR holds a Householder QR factorization of an m×n matrix (m ≥ n):
// a = Q·R with orthonormal Q (m×n, thin) and upper-triangular R (n×n).
// Storage is compact: Householder vectors in the lower trapezoid of qr,
// R strictly above the diagonal, and R's diagonal in rdiag.
type QR struct {
	qr    *Dense
	rdiag []float64
	m, n  int
}

// FactorQR computes the Householder QR factorization of a. It requires
// m ≥ n and returns ErrShape otherwise. Rank deficiency is tolerated at
// factorization time; Solve reports ErrSingular when a zero R pivot blocks
// the back substitution.
func FactorQR(a *Dense) (*QR, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, ErrShape
	}
	qr := a.Clone()
	rdiag := make([]float64, n)
	for k := 0; k < n; k++ {
		var nrm float64
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm != 0 {
			// Sign chosen so the pivot of the Householder vector is ≥ 1,
			// avoiding cancellation.
			if qr.At(k, k) < 0 {
				nrm = -nrm
			}
			for i := k; i < m; i++ {
				qr.Set(i, k, qr.At(i, k)/nrm)
			}
			qr.Set(k, k, qr.At(k, k)+1)
			for j := k + 1; j < n; j++ {
				var s float64
				for i := k; i < m; i++ {
					s += qr.At(i, k) * qr.At(i, j)
				}
				s = -s / qr.At(k, k)
				for i := k; i < m; i++ {
					qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
				}
			}
		}
		rdiag[k] = -nrm
	}
	return &QR{qr: qr, rdiag: rdiag, m: m, n: n}, nil
}

// Solve computes the least-squares solution x of a·x = b using the stored
// factorization. It returns ErrSingular when R has a zero diagonal element
// (rank-deficient design) and ErrShape when len(b) ≠ m.
func (f *QR) Solve(b []float64) ([]float64, error) {
	if len(b) != f.m {
		return nil, ErrShape
	}
	// y = Qᵀ·b applied reflector by reflector.
	y := append([]float64(nil), b...)
	for k := 0; k < f.n; k++ {
		if f.qr.At(k, k) == 0 {
			continue // skipped (zero) reflector
		}
		var s float64
		for i := k; i < f.m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < f.m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back substitution R·x = y[:n]. A pivot is treated as zero below a
	// tolerance relative to the largest pivot — rank deficiency leaves
	// round-off residue, not exact zeros.
	var maxDiag float64
	for _, d := range f.rdiag {
		if a := math.Abs(d); a > maxDiag {
			maxDiag = a
		}
	}
	tol := 1e-12 * maxDiag
	x := make([]float64, f.n)
	for i := f.n - 1; i >= 0; i-- {
		d := f.rdiag[i]
		if math.Abs(d) <= tol || math.IsNaN(d) {
			return nil, ErrSingular
		}
		s := y[i]
		for j := i + 1; j < f.n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		x[i] = s / d
	}
	return x, nil
}

// SolveQR solves the least-squares problem min ‖a·x − b‖₂ by Householder QR —
// numerically more robust than the normal equations for ill-conditioned
// designs (the condition number enters once, not squared).
func SolveQR(a *Dense, b []float64) ([]float64, error) {
	f, err := FactorQR(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}
