package router

import (
	"context"
	"testing"

	"github.com/crrlab/crr/internal/cliutil"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/serve"
	"github.com/crrlab/crr/pkg/client"
)

// Router overhead: the same 1k-row binary columnar batch predict through the
// SDK, once straight at the owning node and once through the router front
// door. Both paths cross real TCP loopback sockets, so the delta is the
// router's own cost — admit, ring lookup, body buffering, one extra hop.
// BENCH_cluster.json records the measured pair; the acceptance bar is a
// routed/direct ns/op ratio ≤ 1.15 on this workload.

// benchPredictLoop drives binary batch predicts at the given base URL.
func benchPredictLoop(b *testing.B, url string, rel *dataset.Relation) {
	b.Helper()
	c := client.New(url, client.WithFormat(client.FormatBinary))
	ctx := context.Background()
	// One warm-up call so connection setup and format negotiation happen
	// outside the timed region on both paths.
	warm, err := cliutil.ClientBatch(rel)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.Predict(ctx, warm); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch, err := cliutil.ClientBatch(rel)
		if err != nil {
			b.Fatal(err)
		}
		res, err := c.Predict(ctx, batch)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Values) != rel.Len() {
			b.Fatalf("%d predictions for %d rows", len(res.Values), rel.Len())
		}
	}
}

// BenchmarkDirectBatchPredictBinary is the baseline: SDK → owning node.
func BenchmarkDirectBatchPredictBinary(b *testing.B) {
	rel, rules := mineTax(b, 1000)
	f := newFleet(b, Config{}, rules)
	cands := f.tracker.Route(serve.DefaultTenant)
	if len(cands) == 0 {
		b.Fatal("no candidates for default tenant")
	}
	benchPredictLoop(b, cands[0].URL, rel)
}

// BenchmarkRouterBatchPredictBinary is the same workload through the router.
func BenchmarkRouterBatchPredictBinary(b *testing.B) {
	rel, rules := mineTax(b, 1000)
	f := newFleet(b, Config{}, rules)
	benchPredictLoop(b, f.rts.URL, rel)
}
