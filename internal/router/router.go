// Package router is the stateless front door of a rule-serving cluster: it
// resolves the tenant a request addresses, picks the owning serve node from
// the consistent-hash ring (internal/cluster), and forwards the request
// without touching the body — both codecs (JSON and binary columnar) pass
// through byte-for-byte, so router-path responses are bitwise-identical to
// direct-node responses.
//
// Reliability behaviors, all per request:
//
//   - a forwarding deadline (Config.RequestTimeout);
//   - single-retry failover: a transport-level failure (connection refused,
//     reset) marks the node down in the tracker and replays the buffered
//     body against the next ring replica — node answers, including errors,
//     are never retried (the node spoke; the router relays);
//   - per-tenant token-bucket quotas (429 + Retry-After when drained);
//   - per-tenant in-flight caps, bounding how much of the fleet one tenant
//     can occupy, plus bounded-load candidate reordering: when the primary
//     is much busier than its replicas the router prefers a less-loaded
//     replica.
//
// The router owns no artifact state. Everything it knows — membership, ring,
// liveness — lives in the cluster.Tracker, and clients can fetch the same
// view from GET /v1/shardmap (ETag/If-None-Match cached) to route directly.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/crrlab/crr/internal/cluster"
	"github.com/crrlab/crr/internal/serve"
	"github.com/crrlab/crr/internal/telemetry"
)

// Config parameterizes a Router. Zero values of optional fields take the
// documented defaults.
type Config struct {
	// Tracker supplies membership, liveness and the ring. Required.
	Tracker *cluster.Tracker

	// RequestTimeout bounds one forwarded request, all failover attempts
	// included. Default 30s.
	RequestTimeout time.Duration

	// MaxBodyBytes bounds buffered request bodies. Default 32 MiB.
	MaxBodyBytes int64

	// QuotaRPS is the per-tenant token-bucket refill rate in requests per
	// second; 0 disables rate limiting.
	QuotaRPS float64

	// QuotaBurst is the bucket depth. Default max(1, ceil(QuotaRPS)).
	QuotaBurst int

	// TenantMaxInFlight caps one tenant's concurrently forwarded requests;
	// 0 disables the cap.
	TenantMaxInFlight int

	// LoadBoundC is the bounded-load factor c: a primary whose in-flight
	// count exceeds c × the fleet mean is skipped in favor of a less-loaded
	// replica. 0 disables reordering.
	LoadBoundC float64

	// Transport performs the upstream round trips. Default: a dedicated
	// keep-alive transport.
	Transport http.RoundTripper

	// Registry receives router.* metrics. Default: a fresh registry.
	Registry *telemetry.Registry

	// Logf, when set, receives one line per lifecycle event. Default: silent.
	Logf func(format string, args ...any)

	// Now is the clock the token buckets read (injectable for tests).
	// Default time.Now.
	Now func() time.Time
}

// tenantCtl is one tenant's quota state.
type tenantCtl struct {
	mu       sync.Mutex
	tokens   float64
	last     time.Time
	inflight int64
}

// Router is the stateless forwarding tier. Create with New, expose via
// Handler.
type Router struct {
	cfg     Config
	tracker *cluster.Tracker
	reg     *telemetry.Registry
	rt      http.RoundTripper
	now     func() time.Time

	tmu     sync.Mutex
	tenants map[string]*tenantCtl

	// nodeLoad tracks per-node in-flight forwards for bounded-load
	// candidate reordering.
	nmu      sync.Mutex
	nodeLoad map[string]int

	mux *http.ServeMux

	ctrForwards   *telemetry.Counter
	ctrFailovers  *telemetry.Counter
	ctrQuota      *telemetry.Counter
	ctrUpstream   *telemetry.Counter
	gaugeInflight *telemetry.Gauge
}

// New builds a router over an already-constructed tracker.
func New(cfg Config) (*Router, error) {
	if cfg.Tracker == nil {
		return nil, fmt.Errorf("router: Config.Tracker is required")
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	if cfg.QuotaRPS > 0 && cfg.QuotaBurst == 0 {
		cfg.QuotaBurst = int(math.Ceil(cfg.QuotaRPS))
		if cfg.QuotaBurst < 1 {
			cfg.QuotaBurst = 1
		}
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.New()
	}
	if cfg.Transport == nil {
		// Large socket buffers matter here: data-plane bodies run to
		// hundreds of kilobytes, and the default 4 KiB buffers turn one
		// forwarded batch into dozens of write syscalls.
		cfg.Transport = &http.Transport{
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
			WriteBufferSize:     64 << 10,
			ReadBufferSize:      64 << 10,
		}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	r := &Router{
		cfg:      cfg,
		tracker:  cfg.Tracker,
		reg:      cfg.Registry,
		rt:       cfg.Transport,
		now:      cfg.Now,
		tenants:  map[string]*tenantCtl{},
		nodeLoad: map[string]int{},
		mux:      http.NewServeMux(),

		ctrForwards:   cfg.Registry.Counter(telemetry.MetricRouterForwards),
		ctrFailovers:  cfg.Registry.Counter(telemetry.MetricRouterFailovers),
		ctrQuota:      cfg.Registry.Counter(telemetry.MetricRouterQuotaRejections),
		ctrUpstream:   cfg.Registry.Counter(telemetry.MetricRouterUpstreamErrors),
		gaugeInflight: cfg.Registry.Gauge(telemetry.MetricRouterTenantInFlight),
	}
	r.mux.HandleFunc("/v1/shardmap", r.handleShardMap)
	r.mux.HandleFunc("/healthz", r.handleHealthz)
	r.mux.HandleFunc("/metrics", r.handleMetrics)
	r.mux.HandleFunc("/", r.handleForward)
	return r, nil
}

func (r *Router) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// Handler returns the router's HTTP handler.
func (r *Router) Handler() http.Handler { return r.mux }

// tenantOf resolves the tenant a request addresses: /t/{tenant}/... wins,
// then the X-CRR-Tenant header, then serve.DefaultTenant. The returned path
// is the node-side path (tenant prefix stripped — the tenant travels in the
// header so the body and path reach the node in canonical form).
func tenantOf(req *http.Request) (tenant, path string) {
	if rest, ok := strings.CutPrefix(req.URL.Path, "/t/"); ok {
		if t, sub, found := strings.Cut(rest, "/"); found && t != "" {
			return t, "/" + sub
		}
	}
	if t := req.Header.Get(serve.TenantHeader); t != "" {
		return t, req.URL.Path
	}
	return serve.DefaultTenant, req.URL.Path
}

// ctl returns the tenant's quota state, creating it at full burst.
func (r *Router) ctl(tenant string) *tenantCtl {
	r.tmu.Lock()
	defer r.tmu.Unlock()
	c := r.tenants[tenant]
	if c == nil {
		c = &tenantCtl{tokens: float64(r.cfg.QuotaBurst), last: r.now()}
		r.tenants[tenant] = c
	}
	return c
}

// admit runs the tenant through the token bucket and the in-flight cap. It
// returns (release, retryAfterSeconds, ok): on ok the caller must call
// release, otherwise retryAfter says how long the client should back off.
func (r *Router) admit(tenant string) (func(), int, bool) {
	c := r.ctl(tenant)
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.cfg.QuotaRPS > 0 {
		now := r.now()
		c.tokens = math.Min(float64(r.cfg.QuotaBurst), c.tokens+now.Sub(c.last).Seconds()*r.cfg.QuotaRPS)
		c.last = now
		if c.tokens < 1 {
			wait := int(math.Ceil((1 - c.tokens) / r.cfg.QuotaRPS))
			if wait < 1 {
				wait = 1
			}
			return nil, wait, false
		}
		c.tokens--
	}
	if r.cfg.TenantMaxInFlight > 0 && c.inflight >= int64(r.cfg.TenantMaxInFlight) {
		// Refund the token: the request never ran.
		if r.cfg.QuotaRPS > 0 {
			c.tokens++
		}
		return nil, 1, false
	}
	c.inflight++
	r.gaugeInflight.Set(float64(c.inflight))
	return func() {
		c.mu.Lock()
		c.inflight--
		r.gaugeInflight.Set(float64(c.inflight))
		c.mu.Unlock()
	}, 0, true
}

// nodeEnter/nodeExit maintain the per-node in-flight table feeding the
// bounded-load reordering.
func (r *Router) nodeEnter(name string) {
	r.nmu.Lock()
	r.nodeLoad[name]++
	r.nmu.Unlock()
}

func (r *Router) nodeExit(name string) {
	r.nmu.Lock()
	r.nodeLoad[name]--
	r.nmu.Unlock()
}

// orderCandidates applies the bounded-load variant to the ring's candidate
// list: when the primary's in-flight count is at or above c × the mean, the
// first candidate under the bound is promoted. Order is otherwise preserved,
// so failover still walks the ring clockwise.
func (r *Router) orderCandidates(cands []cluster.NodeInfo) []cluster.NodeInfo {
	if r.cfg.LoadBoundC <= 0 || len(cands) < 2 {
		return cands
	}
	r.nmu.Lock()
	total := 0
	for _, n := range r.nodeLoad {
		total += n
	}
	bound := int(math.Ceil(r.cfg.LoadBoundC * (float64(total) + 1) / float64(len(cands))))
	pick := -1
	for i, c := range cands {
		if r.nodeLoad[c.Name] < bound {
			pick = i
			break
		}
	}
	r.nmu.Unlock()
	if pick <= 0 {
		return cands // primary fine, or everyone saturated: keep ring order
	}
	out := make([]cluster.NodeInfo, 0, len(cands))
	out = append(out, cands[pick])
	for i, c := range cands {
		if i != pick {
			out = append(out, c)
		}
	}
	return out
}

// writeError emits serve's JSON error envelope so router rejections look
// exactly like node rejections to clients.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	type errBody struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	}
	_ = json.NewEncoder(w).Encode(struct {
		Error errBody `json:"error"`
	}{errBody{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// CodeNoNodes is the router's "no live node owns this tenant" error code.
const CodeNoNodes = "no_nodes"

// CodeQuotaExceeded is the router's per-tenant quota rejection code.
const CodeQuotaExceeded = "quota_exceeded"

// handleForward is the data path: resolve tenant → quota → pick candidates →
// forward with single-retry failover, relaying the node's response bytes
// untouched.
func (r *Router) handleForward(w http.ResponseWriter, req *http.Request) {
	tenant, path := tenantOf(req)

	release, retryAfter, ok := r.admit(tenant)
	if !ok {
		r.ctrQuota.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		writeError(w, http.StatusTooManyRequests, CodeQuotaExceeded,
			"tenant %q over quota, retry in %ds", tenant, retryAfter)
		return
	}
	defer release()

	cands := r.orderCandidates(r.tracker.Route(tenant))
	if len(cands) == 0 {
		writeError(w, http.StatusServiceUnavailable, CodeNoNodes,
			"no live serve node for tenant %q", tenant)
		return
	}

	// Buffer the body once so a failover can replay it. Data-plane bodies
	// are bounded; the buffer also gives upstreams a Content-Length.
	body, putBody, err := r.readBody(w, req)
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "body_too_large", "%v", err)
		return
	}
	defer putBody()

	ctx, cancel := context.WithTimeout(req.Context(), r.cfg.RequestTimeout)
	defer cancel()

	// Single-retry failover: the primary plus at most one replica.
	attempts := len(cands)
	if attempts > 2 {
		attempts = 2
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		node := cands[i]
		if i > 0 {
			r.ctrFailovers.Inc()
			r.logf("router: tenant %s failing over to %s after: %v", tenant, node.Name, lastErr)
		}
		resp, err := r.forwardOnce(ctx, node, tenant, path, req, body)
		if err != nil {
			lastErr = err
			r.ctrUpstream.Inc()
			// The node never answered: mark it down so the ring stops
			// assigning to it until a probe resurrects it, then try the
			// next replica. Nothing was relayed, so the retry is safe for
			// idempotent and non-idempotent requests alike.
			r.tracker.MarkDown(node.Name)
			if ctx.Err() != nil {
				break
			}
			continue
		}
		defer resp.Body.Close()
		r.ctrForwards.Inc()
		relay(w, resp)
		return
	}
	if ctx.Err() != nil {
		writeError(w, http.StatusGatewayTimeout, "deadline_exceeded",
			"forwarding for tenant %q timed out: %v", tenant, lastErr)
		return
	}
	writeError(w, http.StatusBadGateway, "upstream_unreachable",
		"all candidates for tenant %q failed, last: %v", tenant, lastErr)
}

// bodyPool recycles request-body buffers across forwards; data-plane batch
// bodies run to hundreds of kilobytes and allocating one per request is the
// single biggest router-side cost. Buffers keep their grown capacity across
// requests, so steady-state forwarding reads bodies without allocating.
var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// readBody buffers the request body for replay into a pooled buffer. put
// returns the buffer to the pool and must be called after the last replay
// attempt (the returned slice aliases the buffer).
func (r *Router) readBody(w http.ResponseWriter, req *http.Request) (body []byte, put func(), err error) {
	bb := bodyPool.Get().(*bytes.Buffer)
	bb.Reset()
	if n := req.ContentLength; n > 0 && n <= r.cfg.MaxBodyBytes {
		bb.Grow(int(n))
	}
	if _, err := bb.ReadFrom(http.MaxBytesReader(w, req.Body, r.cfg.MaxBodyBytes)); err != nil {
		bodyPool.Put(bb)
		return nil, nil, err
	}
	return bb.Bytes(), func() { bodyPool.Put(bb) }, nil
}

// forwardOnce sends one upstream attempt. The request is rebuilt from the
// buffered body; headers are copied as-is (minus hop-by-hop), so content
// negotiation happens end-to-end between client and node.
func (r *Router) forwardOnce(ctx context.Context, node cluster.NodeInfo,
	tenant, path string, orig *http.Request, body []byte) (*http.Response, error) {
	u := node.URL + path
	if q := orig.URL.RawQuery; q != "" {
		u += "?" + q
	}
	req, err := http.NewRequestWithContext(ctx, orig.Method, u, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.ContentLength = int64(len(body))
	for k, vs := range orig.Header {
		switch http.CanonicalHeaderKey(k) {
		case "Connection", "Keep-Alive", "Transfer-Encoding", "Upgrade", "Host":
			continue
		}
		req.Header[http.CanonicalHeaderKey(k)] = vs
	}
	req.Header.Set(serve.TenantHeader, tenant)

	r.nodeEnter(node.Name)
	defer r.nodeExit(node.Name)
	return r.rt.RoundTrip(req)
}

// relay copies the node's response to the client byte-for-byte.
func relay(w http.ResponseWriter, resp *http.Response) {
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// handleShardMap answers GET /v1/shardmap with the tracker's current view.
// The ETag is the shard-map version; If-None-Match short-circuits to 304 so
// SDK clients can poll cheaply.
func (r *Router) handleShardMap(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	m := r.tracker.Snapshot()
	etag := m.ETag()
	w.Header().Set("ETag", etag)
	if req.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(m)
}

// handleHealthz reports the router's own liveness plus the fleet view.
func (r *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	m := r.tracker.Snapshot()
	up := 0
	for _, n := range m.Nodes {
		if n.State == cluster.NodeUp {
			up++
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Status   string `json:"status"`
		Nodes    int    `json:"nodes"`
		NodesUp  int    `json:"nodes_up"`
		MapVer   uint64 `json:"shardmap_version"`
		Replicas int    `json:"replicas"`
	}{"ok", len(m.Nodes), up, m.Version, m.Replicas})
}

// handleMetrics exposes the router's telemetry registry.
func (r *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.reg.Snapshot().WriteText(w)
}
