package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/crrlab/crr/internal/cluster"
	"github.com/crrlab/crr/internal/core"
	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/internal/predicate"
	"github.com/crrlab/crr/internal/regress"
	"github.com/crrlab/crr/internal/serve"
	"github.com/crrlab/crr/internal/telemetry"
)

// mineTax mines a small Tax rule set for the node fixtures.
func mineTax(t testing.TB, rows int) (*dataset.Relation, *core.RuleSet) {
	t.Helper()
	rel := dataset.GenerateTax(dataset.TaxConfig{Rows: rows, Noise: 0.5, Seed: 4})
	preds := predicate.Generate(rel, []int{rel.Schema.MustIndex("State")}, predicate.GeneratorConfig{})
	res, err := core.Discover(context.Background(), rel, core.WithConfig(core.DiscoverConfig{
		XAttrs:  []int{rel.Schema.MustIndex("Salary")},
		YAttr:   rel.Schema.MustIndex("Tax"),
		RhoM:    60,
		Preds:   preds,
		Trainer: regress.LinearTrainer{},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rules.NumRules() == 0 {
		t.Fatal("mine produced no rules")
	}
	return rel, res.Rules
}

// fleet is two in-process tenant-aware serve nodes plus a router in front.
type fleet struct {
	nodes   []*httptest.Server
	servers []*serve.Server
	tracker *cluster.Tracker
	router  *Router
	rts     *httptest.Server
	reg     *telemetry.Registry
}

func newFleet(t testing.TB, cfg Config, rules *core.RuleSet, tenants ...string) *fleet {
	t.Helper()
	f := &fleet{reg: telemetry.New()}
	specs := make([]cluster.NodeSpec, 2)
	for i := 0; i < 2; i++ {
		srv, err := serve.NewFromRuleSet(serve.Config{}, rules, "test")
		if err != nil {
			t.Fatal(err)
		}
		for _, tn := range tenants {
			if _, err := srv.InstallTenant(tn, rules, "test"); err != nil {
				t.Fatal(err)
			}
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		f.servers = append(f.servers, srv)
		f.nodes = append(f.nodes, ts)
		specs[i] = cluster.NodeSpec{Name: fmt.Sprintf("n%d", i+1), URL: ts.URL}
	}
	var err error
	f.tracker, err = cluster.NewTracker(specs, cluster.TrackerConfig{Registry: f.reg})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tracker = f.tracker
	if cfg.Registry == nil {
		cfg.Registry = f.reg
	}
	f.router, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.rts = httptest.NewServer(f.router.Handler())
	t.Cleanup(f.rts.Close)
	return f
}

// predictBody builds a one-tuple JSON predict payload from rel's first row.
func predictBody(t testing.TB, rel *dataset.Relation) []byte {
	t.Helper()
	tuple := map[string]any{}
	for i, a := range rel.Schema.Attrs() {
		v := rel.Tuples[0][i]
		switch a.Kind {
		case dataset.Numeric:
			tuple[a.Name] = v.Num
		default:
			tuple[a.Name] = v.Str
		}
	}
	body, err := json.Marshal(map[string]any{"tuple": tuple})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func doPredict(t testing.TB, url, tenant string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/predict", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(serve.TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestRouterBitwiseIdenticalToDirect: the router relays node responses
// byte-for-byte, for the default tenant, a named tenant, and the /t/ path
// form.
func TestRouterBitwiseIdenticalToDirect(t *testing.T) {
	rel, rules := mineTax(t, 600)
	f := newFleet(t, Config{}, rules, "acme")
	body := predictBody(t, rel)

	_, direct := doPredict(t, f.nodes[0].URL, "", body)
	_, routed := doPredict(t, f.rts.URL, "", body)
	if !bytes.Equal(direct, routed) {
		t.Fatalf("router response differs from direct:\n%s\n%s", direct, routed)
	}

	_, directT := doPredict(t, f.nodes[0].URL, "acme", body)
	_, routedT := doPredict(t, f.rts.URL, "acme", body)
	if !bytes.Equal(directT, routedT) {
		t.Fatal("tenant-addressed router response differs from direct")
	}

	resp, err := http.Post(f.rts.URL+"/t/acme/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	pathForm, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(directT, pathForm) {
		t.Fatal("/t/ path form differs from direct")
	}

	if got := f.reg.Snapshot().Counters[telemetry.MetricRouterForwards]; got < 3 {
		t.Fatalf("forwards counter %d", got)
	}
}

// TestRouterFailoverOnKilledNode: with one of two nodes dead, every request
// still succeeds via single-retry failover, and the dead node is marked
// down so later requests skip it entirely.
func TestRouterFailoverOnKilledNode(t *testing.T) {
	rel, rules := mineTax(t, 600)
	f := newFleet(t, Config{}, rules, "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7")
	body := predictBody(t, rel)

	// Kill node 2 without telling the tracker: forwards must discover the
	// corpse and fail over.
	f.nodes[1].Close()

	for i := 0; i < 8; i++ {
		tenant := fmt.Sprintf("t%d", i)
		resp, out := doPredict(t, f.rts.URL, tenant, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tenant %s: status %d after node kill: %s", tenant, resp.StatusCode, out)
		}
	}

	snap := f.reg.Snapshot()
	if snap.Counters[telemetry.MetricRouterFailovers] == 0 {
		t.Fatal("no failovers counted — every tenant landed on the live node?")
	}
	// The first transport error marks the node down; from then on Route
	// excludes it, so failovers stop accumulating per-request.
	m := f.tracker.Snapshot()
	if m.Nodes[1].State != cluster.NodeDown {
		t.Fatalf("killed node state %s, want down", m.Nodes[1].State)
	}

	// With the ring now routing around the corpse, requests still succeed.
	resp, _ := doPredict(t, f.rts.URL, "t0", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-markdown status %d", resp.StatusCode)
	}
}

// TestRouterQuota: a drained token bucket answers 429 with Retry-After and
// the stable quota_exceeded code; refilling the clock re-admits, and other
// tenants are unaffected.
func TestRouterQuota(t *testing.T) {
	rel, rules := mineTax(t, 600)
	now := time.Unix(1700000000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	f := newFleet(t, Config{QuotaRPS: 1, QuotaBurst: 2, Now: clock}, rules, "acme", "other")
	body := predictBody(t, rel)

	for i := 0; i < 2; i++ {
		resp, out := doPredict(t, f.rts.URL, "acme", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("burst request %d: %d %s", i, resp.StatusCode, out)
		}
	}
	resp, out := doPredict(t, f.rts.URL, "acme", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status %d: %s", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(out, &env); err != nil || env.Error.Code != CodeQuotaExceeded {
		t.Fatalf("quota error envelope %s (%v)", out, err)
	}

	// Another tenant has its own bucket.
	if resp, _ := doPredict(t, f.rts.URL, "other", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant throttled too: %d", resp.StatusCode)
	}

	// One second of refill buys one more request.
	advance(time.Second)
	if resp, _ := doPredict(t, f.rts.URL, "acme", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-refill status %d", resp.StatusCode)
	}
	if f.reg.Snapshot().Counters[telemetry.MetricRouterQuotaRejections] == 0 {
		t.Fatal("quota rejections not counted")
	}
}

// TestRouterTenantInFlightCap: the per-tenant cap rejects the N+1st
// concurrent request with 429 while a slow request holds a slot.
func TestRouterTenantInFlightCap(t *testing.T) {
	rel, rules := mineTax(t, 600)

	// A blocking upstream: the first data request signals its arrival, then
	// parks until released (or until its client gives up, so an aborted
	// forward can never wedge slow.Close).
	gate := make(chan struct{})
	arrived := make(chan struct{}, 1)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			_ = json.NewEncoder(w).Encode(map[string]any{"status": "ok", "generation": 1})
			return
		}
		select {
		case arrived <- struct{}{}:
		default:
		}
		select {
		case <-gate:
			w.WriteHeader(http.StatusOK)
		case <-r.Context().Done():
		}
	}))
	defer slow.Close()
	_ = rel

	tracker, err := cluster.NewTracker([]cluster.NodeSpec{{Name: "slow", URL: slow.URL}},
		cluster.TrackerConfig{Registry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	rtr, err := New(Config{Tracker: tracker, TenantMaxInFlight: 1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rtr.Handler())
	defer rts.Close()
	_ = rules

	body := predictBody(t, rel)
	done := make(chan int, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodPost, rts.URL+"/v1/predict", bytes.NewReader(body))
		req.Header.Set(serve.TenantHeader, "acme")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	// The slot is provably occupied once the forwarded request reaches the
	// upstream: admission happened strictly before the forward.
	select {
	case <-arrived:
	case <-time.After(10 * time.Second):
		t.Fatal("parked request never reached the upstream")
	}
	resp, out := doPredict(t, rts.URL, "acme", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("in-flight cap not enforced: %d %s", resp.StatusCode, out)
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	_ = json.Unmarshal(out, &env)
	if env.Error.Code != CodeQuotaExceeded {
		t.Fatalf("cap rejection code %q", env.Error.Code)
	}
	close(gate)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("parked request finished with %d", code)
	}
}

// TestShardMapEndpoint: the router serves the tracker's shard map with an
// ETag, honors If-None-Match with 304, and bumps the ETag when membership
// changes.
func TestShardMapEndpoint(t *testing.T) {
	_, rules := mineTax(t, 600)
	f := newFleet(t, Config{}, rules)

	resp, err := http.Get(f.rts.URL + "/v1/shardmap")
	if err != nil {
		t.Fatal(err)
	}
	etag := resp.Header.Get("ETag")
	var m cluster.ShardMap
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if etag == "" || len(m.Nodes) != 2 {
		t.Fatalf("shardmap etag=%q nodes=%d", etag, len(m.Nodes))
	}

	req, _ := http.NewRequest(http.MethodGet, f.rts.URL+"/v1/shardmap", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match status %d", resp.StatusCode)
	}

	f.tracker.MarkDown("n2")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale ETag after membership change: %d", resp.StatusCode)
	}
}

// TestRouterMetricsExposition: the router's /metrics carries the new
// counters in Prometheus text form.
func TestRouterMetricsExposition(t *testing.T) {
	rel, rules := mineTax(t, 600)
	f := newFleet(t, Config{}, rules)
	_, _ = doPredict(t, f.rts.URL, "", predictBody(t, rel))

	resp, err := http.Get(f.rts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"crr_router_forwards", "crr_cluster_nodes_up", "crr_cluster_ring_rebuilds"} {
		if !bytes.Contains(text, []byte(want)) {
			t.Fatalf("/metrics missing %s:\n%s", want, text)
		}
	}
}
