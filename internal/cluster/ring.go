// Package cluster holds the sharding plane of the rule-serving fleet: a
// consistent-hash ring mapping tenant keys onto serve nodes (virtual nodes
// for balance, a bounded-load variant for hot-key protection), a versioned
// shard-map document routers and SDK clients exchange, and a liveness
// tracker that probes each node's /healthz and rebuilds the ring as nodes
// come up, drain, or die.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the virtual-node count per physical node. 128 vnodes
// keeps the per-node load spread within a few percent of uniform for the
// fleet sizes this plane targets while keeping ring rebuilds cheap.
const DefaultVNodes = 128

// Ring is an immutable consistent-hash ring over a set of node names.
// Lookup walks clockwise from the key's hash and returns distinct nodes in
// ring order, so key→node assignments move minimally when membership
// changes: only keys whose arc gained or lost a vnode re-home.
type Ring struct {
	nodes  []string
	vnodes int
	hashes []uint64 // sorted vnode positions
	owner  []int    // hashes[i] belongs to nodes[owner[i]]
}

// hashKey positions a key on the ring: FNV-1a 64 for a fast, stable,
// dependency-free digest, then a splitmix64 avalanche so the short,
// near-identical keys routed here ("tenant-0017", "node#42") spread
// uniformly over the full 64-bit circle — raw FNV leaves the high bits
// correlated for such keys, which skews arc lengths badly.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewRing builds a ring over nodes with the given virtual-node count per
// node (≤ 0 means DefaultVNodes). Node order does not matter; duplicate
// names are rejected.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := map[string]bool{}
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node name")
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate node %q", n)
		}
		seen[n] = true
	}
	sorted := append([]string{}, nodes...)
	sort.Strings(sorted)
	r := &Ring{
		nodes:  sorted,
		vnodes: vnodes,
		hashes: make([]uint64, 0, len(sorted)*vnodes),
		owner:  make([]int, 0, len(sorted)*vnodes),
	}
	type vn struct {
		h     uint64
		owner int
	}
	all := make([]vn, 0, len(sorted)*vnodes)
	for i, n := range sorted {
		for v := 0; v < vnodes; v++ {
			all = append(all, vn{hashKey(fmt.Sprintf("%s#%d", n, v)), i})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].h != all[b].h {
			return all[a].h < all[b].h
		}
		// Ties (astronomically rare) break on owner so the ring is
		// deterministic whatever the input order was.
		return all[a].owner < all[b].owner
	})
	for _, v := range all {
		r.hashes = append(r.hashes, v.h)
		r.owner = append(r.owner, v.owner)
	}
	return r, nil
}

// Nodes returns the member names, sorted.
func (r *Ring) Nodes() []string { return append([]string{}, r.nodes...) }

// VNodes returns the virtual-node count per node.
func (r *Ring) VNodes() int { return r.vnodes }

// Len returns the physical node count.
func (r *Ring) Len() int { return len(r.nodes) }

// Lookup returns up to n distinct nodes for key in ring order: the first is
// the primary owner, the rest are the failover replicas a router retries in
// sequence. n ≤ 0 returns every node in ring order.
func (r *Ring) Lookup(key string, n int) []string {
	if len(r.nodes) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hashKey(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	out := make([]string, 0, n)
	taken := make(map[int]bool, n)
	for i := 0; i < len(r.hashes) && len(out) < n; i++ {
		o := r.owner[(start+i)%len(r.hashes)]
		if !taken[o] {
			taken[o] = true
			out = append(out, r.nodes[o])
		}
	}
	return out
}

// Primary returns the key's owning node ("" on an empty ring).
func (r *Ring) Primary(key string) string {
	owners := r.Lookup(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// LookupBounded is the bounded-load variant (consistent hashing with
// bounded loads): it walks the ring from the key's position and returns the
// first node whose current load, as reported by load, is below bound. When
// every node is at the bound the plain primary is returned, so the bound
// degrades to ordinary consistent hashing instead of failing. load is
// typically the router's per-node in-flight count and bound
// ceil(c · total/nodes) for some c > 1.
func (r *Ring) LookupBounded(key string, load func(node string) int, bound int) string {
	if len(r.nodes) == 0 {
		return ""
	}
	for _, n := range r.Lookup(key, 0) {
		if load(n) < bound {
			return n
		}
	}
	return r.Primary(key)
}

// LoadBound computes the bounded-load capacity ceil(c · keys / nodes) for a
// ring of this size; c ≤ 1 is lifted to the canonical 1.25.
func (r *Ring) LoadBound(keys int, c float64) int {
	if len(r.nodes) == 0 {
		return 0
	}
	if c <= 1 {
		c = 1.25
	}
	per := c * float64(keys) / float64(len(r.nodes))
	b := int(per)
	if per > float64(b) {
		b++
	}
	if b < 1 {
		b = 1
	}
	return b
}
