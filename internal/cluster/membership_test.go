package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"github.com/crrlab/crr/internal/telemetry"
)

// fakeNode is a minimal /healthz endpoint with a switchable status.
type fakeNode struct {
	status atomic.Value // string: "ok" | "draining"
	gen    atomic.Uint64
	ts     *httptest.Server
}

func newFakeNode(t *testing.T) *fakeNode {
	t.Helper()
	n := &fakeNode{}
	n.status.Store("ok")
	n.gen.Store(1)
	n.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			http.NotFound(w, r)
			return
		}
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status":     n.status.Load(),
			"generation": n.gen.Load(),
		})
	}))
	t.Cleanup(n.ts.Close)
	return n
}

func trackerT(t *testing.T, specs []NodeSpec, cfg TrackerConfig) *Tracker {
	t.Helper()
	tr, err := NewTracker(specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTrackerStates(t *testing.T) {
	a, b := newFakeNode(t), newFakeNode(t)
	reg := telemetry.New()
	tr := trackerT(t, []NodeSpec{
		{Name: "a", URL: a.ts.URL},
		{Name: "b", URL: b.ts.URL},
	}, TrackerConfig{FailThreshold: 2, Registry: reg})

	v0 := tr.Version()
	tr.ProbeOnce(context.Background())
	m := tr.Snapshot()
	for _, n := range m.Nodes {
		if n.State != NodeUp || n.Generation != 1 {
			t.Fatalf("node %s: %+v after healthy probe", n.Name, n)
		}
	}
	if m.Version != v0 {
		t.Fatalf("healthy probe of already-up nodes bumped version %d → %d", v0, m.Version)
	}
	if got := reg.Snapshot().Gauges[telemetry.MetricClusterNodesUp].Last; got != 2 {
		t.Fatalf("nodes_up gauge %v", got)
	}

	// Draining is observed on the next probe and removes the node from the
	// ring while keeping it as a read fallback.
	b.status.Store("draining")
	tr.ProbeOnce(context.Background())
	m = tr.Snapshot()
	if m.Version == v0 {
		t.Fatal("drain transition did not bump the shard-map version")
	}
	var states []NodeState
	for _, n := range m.Nodes {
		states = append(states, n.State)
	}
	if states[0] != NodeUp || states[1] != NodeDraining {
		t.Fatalf("states %v", states)
	}
	for _, tenant := range []string{"t1", "t2", "t3", "t4"} {
		cands := tr.Route(tenant)
		if len(cands) == 0 || cands[0].Name != "a" {
			t.Fatalf("tenant %s: draining node still takes assignments: %+v", tenant, cands)
		}
		last := cands[len(cands)-1]
		if last.Name != "b" || last.State != NodeDraining {
			t.Fatalf("tenant %s: draining node not readable as fallback: %+v", tenant, cands)
		}
	}

	// A dead node needs FailThreshold consecutive failures to go down.
	a.ts.Close()
	tr.ProbeOnce(context.Background())
	if s := tr.Snapshot().Nodes[0].State; s != NodeUp {
		t.Fatalf("one failed probe already moved node a to %s", s)
	}
	tr.ProbeOnce(context.Background())
	if s := tr.Snapshot().Nodes[0].State; s != NodeDown {
		t.Fatalf("node a is %s after %d failed probes", s, 2)
	}
	if got := reg.Snapshot().Gauges[telemetry.MetricClusterNodesUp].Last; got != 0 {
		t.Fatalf("nodes_up gauge %v with a down and b draining", got)
	}
	if reg.Snapshot().Counters[telemetry.MetricClusterRingRebuilds] < 2 {
		t.Fatal("ring rebuilds not counted")
	}
}

func TestTrackerMarkDownAndRecovery(t *testing.T) {
	a, b := newFakeNode(t), newFakeNode(t)
	tr := trackerT(t, []NodeSpec{
		{Name: "a", URL: a.ts.URL},
		{Name: "b", URL: b.ts.URL},
	}, TrackerConfig{})

	v0 := tr.Version()
	tr.MarkDown("a")
	if tr.Version() == v0 {
		t.Fatal("MarkDown did not bump the version")
	}
	for _, tenant := range []string{"x", "y", "z"} {
		cands := tr.Route(tenant)
		if len(cands) != 1 || cands[0].Name != "b" {
			t.Fatalf("tenant %s routed to %+v with a down", tenant, cands)
		}
	}
	// A successful probe resurrects the node.
	tr.ProbeOnce(context.Background())
	if s := tr.Snapshot().Nodes[0].State; s != NodeUp {
		t.Fatalf("node a did not recover: %s", s)
	}
}

func TestShardMapRouteAndETag(t *testing.T) {
	m := ShardMap{
		Version:  7,
		VNodes:   64,
		Replicas: 2,
		Nodes: []NodeInfo{
			{Name: "a", URL: "http://a", State: NodeUp},
			{Name: "b", URL: "http://b", State: NodeUp},
			{Name: "c", URL: "http://c", State: NodeDown},
		},
	}
	cands := m.Route("tenant-1")
	if len(cands) != 2 {
		t.Fatalf("route returned %d candidates", len(cands))
	}
	for _, c := range cands {
		if c.Name == "c" {
			t.Fatal("down node routed")
		}
	}
	if m.ETag() != `"crr-shardmap-v7"` {
		t.Fatalf("etag %s", m.ETag())
	}
}

func TestParseNodeSpec(t *testing.T) {
	s, err := ParseNodeSpec("n1=http://10.0.0.1:8080/")
	if err != nil || s.Name != "n1" || s.URL != "http://10.0.0.1:8080" {
		t.Fatalf("%+v, %v", s, err)
	}
	s, err = ParseNodeSpec("http://10.0.0.2:9090")
	if err != nil || s.Name != "10.0.0.2:9090" || s.URL != "http://10.0.0.2:9090" {
		t.Fatalf("%+v, %v", s, err)
	}
	if _, err := ParseNodeSpec("=x"); err == nil {
		t.Fatal("empty name accepted")
	}
}
