package cluster

import (
	"fmt"
	"testing"
)

func ringT(t *testing.T, nodes []string) *Ring {
	t.Helper()
	r, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func tenantKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("tenant-%04d", i)
	}
	return keys
}

func TestRingDeterministicAndDistinct(t *testing.T) {
	a := ringT(t, []string{"n1", "n2", "n3"})
	b := ringT(t, []string{"n3", "n1", "n2"}) // input order must not matter
	for _, key := range tenantKeys(64) {
		ca, cb := a.Lookup(key, 0), b.Lookup(key, 0)
		if len(ca) != 3 || len(cb) != 3 {
			t.Fatalf("lookup %q returned %d/%d candidates", key, len(ca), len(cb))
		}
		seen := map[string]bool{}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("key %q: candidate order depends on input order: %v vs %v", key, ca, cb)
			}
			if seen[ca[i]] {
				t.Fatalf("key %q: duplicate candidate %q", key, ca[i])
			}
			seen[ca[i]] = true
		}
	}
}

// TestRingMinimalMovementOnJoin asserts the consistent-hashing contract:
// adding one node to N re-homes roughly 1/(N+1) of the keys and never moves
// a key between two pre-existing nodes.
func TestRingMinimalMovementOnJoin(t *testing.T) {
	const keys = 4000
	nodes := []string{"n1", "n2", "n3", "n4"}
	before := ringT(t, nodes)
	after := ringT(t, append(append([]string{}, nodes...), "n5"))

	moved := 0
	for _, key := range tenantKeys(keys) {
		b, a := before.Primary(key), after.Primary(key)
		if b != a {
			moved++
			if a != "n5" {
				t.Fatalf("key %q moved between pre-existing nodes %q → %q", key, b, a)
			}
		}
	}
	// Expected fraction 1/5 = 20%; allow vnode-placement slack.
	if frac := float64(moved) / keys; frac > 0.30 {
		t.Fatalf("join moved %.1f%% of keys (want ≈20%%)", 100*frac)
	}
}

// TestRingMinimalMovementOnLeave is the symmetric property: removing a node
// re-homes only the keys it owned.
func TestRingMinimalMovementOnLeave(t *testing.T) {
	const keys = 4000
	before := ringT(t, []string{"n1", "n2", "n3", "n4", "n5"})
	after := ringT(t, []string{"n1", "n2", "n3", "n4"})
	for _, key := range tenantKeys(keys) {
		b, a := before.Primary(key), after.Primary(key)
		if b != "n5" && b != a {
			t.Fatalf("key %q owned by surviving node %q re-homed to %q", key, b, a)
		}
		if b == "n5" && a == "n5" {
			t.Fatalf("key %q still routed to the removed node", key)
		}
	}
}

// TestRingBalance holds the vnode spread: with 128 vnodes per node, no node
// owns more than twice the fair share of a large key population.
func TestRingBalance(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	r := ringT(t, nodes)
	counts := map[string]int{}
	const keys = 20000
	for _, key := range tenantKeys(keys) {
		counts[r.Primary(key)]++
	}
	fair := keys / len(nodes)
	for n, c := range counts {
		if c > 2*fair || c < fair/2 {
			t.Fatalf("node %s owns %d of %d keys (fair share %d)", n, c, keys, fair)
		}
	}
}

// TestRingBoundedLoad drives the bounded-load variant with a live load table
// and asserts no node exceeds the ceil(c·K/N) bound while every key still
// lands somewhere.
func TestRingBoundedLoad(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4"}
	r := ringT(t, nodes)
	const keys = 1000
	bound := r.LoadBound(keys, 1.25)
	load := map[string]int{}
	for _, key := range tenantKeys(keys) {
		n := r.LookupBounded(key, func(n string) int { return load[n] }, bound)
		if n == "" {
			t.Fatalf("key %q unassigned", key)
		}
		load[n]++
	}
	total := 0
	for n, c := range load {
		total += c
		if c > bound {
			t.Fatalf("node %s load %d exceeds bound %d", n, c, bound)
		}
	}
	if total != keys {
		t.Fatalf("assigned %d of %d keys", total, keys)
	}
}

// TestRingBoundedLoadSaturated: when every node sits at the bound, the
// variant degrades to plain consistent hashing instead of failing.
func TestRingBoundedLoadSaturated(t *testing.T) {
	r := ringT(t, []string{"n1", "n2"})
	got := r.LookupBounded("tenant-a", func(string) int { return 100 }, 10)
	if got != r.Primary("tenant-a") {
		t.Fatalf("saturated lookup %q, want primary %q", got, r.Primary("tenant-a"))
	}
}

func TestRingEdgeCases(t *testing.T) {
	if _, err := NewRing([]string{"a", "a"}, 8); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if _, err := NewRing([]string{""}, 8); err == nil {
		t.Fatal("empty node name accepted")
	}
	empty := ringT(t, nil)
	if got := empty.Lookup("k", 3); got != nil {
		t.Fatalf("empty ring lookup returned %v", got)
	}
	if empty.Primary("k") != "" {
		t.Fatal("empty ring primary non-empty")
	}
	one := ringT(t, []string{"solo"})
	if got := one.Lookup("k", 5); len(got) != 1 || got[0] != "solo" {
		t.Fatalf("single-node lookup %v", got)
	}
}
