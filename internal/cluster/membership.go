package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/crrlab/crr/internal/telemetry"
)

// NodeState is a member's liveness state.
type NodeState string

const (
	// NodeUp: probing healthy; takes assignments and serves reads.
	NodeUp NodeState = "up"
	// NodeDraining: announced a graceful shutdown via /healthz. The node
	// stays readable (it still answers, and in-flight artifacts remain
	// valid) but takes no new assignments — it is out of the hash ring and
	// only used as a last-resort read fallback.
	NodeDraining NodeState = "draining"
	// NodeDown: failed its probe threshold or was reported dead by a
	// forwarding failure. Excluded from routing until a probe succeeds.
	NodeDown NodeState = "down"
)

// NodeInfo is one member as published in the shard map.
type NodeInfo struct {
	// Name is the stable ring identity (assignment moves with the name, not
	// the address).
	Name string `json:"name"`
	// URL is the node's base URL, e.g. "http://10.0.0.7:8080".
	URL string `json:"url"`
	// State is the tracked liveness state.
	State NodeState `json:"state"`
	// Generation is the artifact generation the node reported on its last
	// successful probe (0 before the first one).
	Generation uint64 `json:"generation,omitempty"`
}

// ShardMap is the versioned routing document: everything a router or a
// shard-map-aware SDK client needs to route tenants itself. Version
// increments on every membership or state change, and doubles as the ETag
// of GET /v1/shardmap.
type ShardMap struct {
	Version  uint64     `json:"version"`
	VNodes   int        `json:"vnodes"`
	Replicas int        `json:"replicas"`
	Nodes    []NodeInfo `json:"nodes"`
}

// ETag renders the map version as a strong HTTP entity tag.
func (m *ShardMap) ETag() string {
	return fmt.Sprintf("%q", fmt.Sprintf("crr-shardmap-v%d", m.Version))
}

// Ring builds the assignment ring over the map's up nodes.
func (m *ShardMap) Ring() (*Ring, error) {
	var up []string
	for _, n := range m.Nodes {
		if n.State == NodeUp {
			up = append(up, n.Name)
		}
	}
	return NewRing(up, m.VNodes)
}

// Route resolves the candidate nodes for a tenant key: the owning up-node
// first, then up-replicas in ring order, then draining nodes as last-resort
// read fallbacks. Returns nil when no node is reachable.
func (m *ShardMap) Route(tenant string) []NodeInfo {
	ring, err := m.Ring()
	if err != nil {
		return nil
	}
	byName := make(map[string]NodeInfo, len(m.Nodes))
	for _, n := range m.Nodes {
		byName[n.Name] = n
	}
	var out []NodeInfo
	limit := m.Replicas
	if limit <= 0 {
		limit = 2
	}
	for _, name := range ring.Lookup(tenant, limit) {
		out = append(out, byName[name])
	}
	for _, n := range m.Nodes {
		if n.State == NodeDraining {
			out = append(out, n)
		}
	}
	return out
}

// NodeSpec names one static cluster member for NewTracker.
type NodeSpec struct {
	Name string
	URL  string
}

// ParseNodeSpec parses "name=url" (or a bare URL, whose name is the
// host:port) — the -node flag grammar of crrrouter.
func ParseNodeSpec(s string) (NodeSpec, error) {
	if name, url, ok := strings.Cut(s, "="); ok && !strings.Contains(name, "/") {
		if name == "" || url == "" {
			return NodeSpec{}, fmt.Errorf("cluster: malformed node spec %q (want name=url)", s)
		}
		return NodeSpec{Name: name, URL: strings.TrimRight(url, "/")}, nil
	}
	url := strings.TrimRight(s, "/")
	name := strings.TrimPrefix(strings.TrimPrefix(url, "https://"), "http://")
	if name == "" {
		return NodeSpec{}, fmt.Errorf("cluster: malformed node spec %q", s)
	}
	return NodeSpec{Name: name, URL: url}, nil
}

// TrackerConfig parameterizes a Tracker; zero values take the documented
// defaults.
type TrackerConfig struct {
	// ProbeInterval is the periodic /healthz cadence of Run. Default 2s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip. Default 1s.
	ProbeTimeout time.Duration
	// FailThreshold is the consecutive probe failures that mark a node down.
	// Default 2 (one blip does not reshard the fleet).
	FailThreshold int
	// VNodes is the ring's virtual-node count per node. Default DefaultVNodes.
	VNodes int
	// Replicas is the failover depth published in the shard map. Default 2.
	Replicas int
	// HTTPClient performs the probes. Default: a dedicated client.
	HTTPClient *http.Client
	// Registry receives cluster.nodes_up / cluster.ring_rebuilds.
	Registry *telemetry.Registry
	// Logf, when set, receives one line per state transition.
	Logf func(format string, args ...any)
}

// Tracker maintains the live membership view: per-node liveness from
// periodic /healthz probes (plus passive MarkDown feedback from forwarding
// failures) and the consistent-hash ring over the up nodes. Nodes start
// optimistically up; the first probe round corrects.
type Tracker struct {
	cfg   TrackerConfig
	httpc *http.Client

	mu      sync.Mutex
	nodes   []*trackedNode // sorted by name
	ring    *Ring
	version uint64

	gaugeUp     *telemetry.Gauge
	ctrRebuilds *telemetry.Counter
}

type trackedNode struct {
	info  NodeInfo
	fails int
}

// NewTracker builds a tracker over the static member set.
func NewTracker(specs []NodeSpec, cfg TrackerConfig) (*Tracker, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("cluster: at least one node is required")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 2
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	httpc := cfg.HTTPClient
	if httpc == nil {
		httpc = &http.Client{Timeout: cfg.ProbeTimeout}
	}
	t := &Tracker{
		cfg:         cfg,
		httpc:       httpc,
		version:     1,
		gaugeUp:     cfg.Registry.Gauge(telemetry.MetricClusterNodesUp),
		ctrRebuilds: cfg.Registry.Counter(telemetry.MetricClusterRingRebuilds),
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if s.Name == "" || s.URL == "" {
			return nil, fmt.Errorf("cluster: node spec needs name and url, got %+v", s)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("cluster: duplicate node name %q", s.Name)
		}
		seen[s.Name] = true
		t.nodes = append(t.nodes, &trackedNode{info: NodeInfo{
			Name: s.Name, URL: strings.TrimRight(s.URL, "/"), State: NodeUp,
		}})
	}
	sort.Slice(t.nodes, func(i, j int) bool { return t.nodes[i].info.Name < t.nodes[j].info.Name })
	if err := t.rebuildLocked(); err != nil {
		return nil, err
	}
	return t, nil
}

// rebuildLocked recomputes the ring over the up nodes. Callers hold mu.
func (t *Tracker) rebuildLocked() error {
	var up []string
	for _, n := range t.nodes {
		if n.info.State == NodeUp {
			up = append(up, n.info.Name)
		}
	}
	ring, err := NewRing(up, t.cfg.VNodes)
	if err != nil {
		return err
	}
	t.ring = ring
	t.ctrRebuilds.Inc()
	t.gaugeUp.Set(float64(len(up)))
	return nil
}

func (t *Tracker) logf(format string, args ...any) {
	if t.cfg.Logf != nil {
		t.cfg.Logf(format, args...)
	}
}

// Version returns the current shard-map version.
func (t *Tracker) Version() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.version
}

// Snapshot publishes the current membership as a versioned shard map.
func (t *Tracker) Snapshot() ShardMap {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := ShardMap{
		Version:  t.version,
		VNodes:   t.cfg.VNodes,
		Replicas: t.cfg.Replicas,
		Nodes:    make([]NodeInfo, len(t.nodes)),
	}
	for i, n := range t.nodes {
		m.Nodes[i] = n.info
	}
	return m
}

// Route resolves the forwarding candidates for a tenant: the owning up-node,
// its up-replicas in ring order, then draining nodes as read fallbacks.
func (t *Tracker) Route(tenant string) []NodeInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	byName := make(map[string]NodeInfo, len(t.nodes))
	for _, n := range t.nodes {
		byName[n.info.Name] = n.info
	}
	var out []NodeInfo
	for _, name := range t.ring.Lookup(tenant, t.cfg.Replicas) {
		out = append(out, byName[name])
	}
	for _, n := range t.nodes {
		if n.info.State == NodeDraining {
			out = append(out, n.info)
		}
	}
	return out
}

// MarkDown records a forwarding failure against the named node — passive
// liveness feedback so traffic re-homes immediately instead of waiting for
// the next probe round. A later successful probe brings the node back.
func (t *Tracker) MarkDown(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, n := range t.nodes {
		if n.info.Name != name || n.info.State == NodeDown {
			continue
		}
		n.info.State = NodeDown
		n.fails = t.cfg.FailThreshold
		t.version++
		_ = t.rebuildLocked()
		t.logf("cluster: node %s marked down by forwarding failure", name)
	}
}

// healthzBody mirrors the serve /healthz answer.
type healthzBody struct {
	Status     string `json:"status"`
	Generation uint64 `json:"generation"`
}

// ProbeOnce probes every node's /healthz once, concurrently, and applies the
// observed states. Deterministic enough for tests to drive without Run.
func (t *Tracker) ProbeOnce(ctx context.Context) {
	t.mu.Lock()
	targets := make([]NodeInfo, len(t.nodes))
	for i, n := range t.nodes {
		targets[i] = n.info
	}
	t.mu.Unlock()

	results := make([]probeResult, len(targets))
	var wg sync.WaitGroup
	for i, n := range targets {
		wg.Add(1)
		go func(i int, n NodeInfo) {
			defer wg.Done()
			results[i] = t.probe(ctx, n)
		}(i, n)
	}
	wg.Wait()

	t.mu.Lock()
	defer t.mu.Unlock()
	changed := false
	for i, res := range results {
		n := t.nodes[i]
		if n.info.Name != targets[i].Name {
			continue // membership is static; defensive only
		}
		prev := n.info.State
		switch {
		case res.err != nil:
			n.fails++
			if n.fails >= t.cfg.FailThreshold {
				n.info.State = NodeDown
			}
		case res.draining:
			n.fails = 0
			n.info.State = NodeDraining
			n.info.Generation = res.generation
		default:
			n.fails = 0
			n.info.State = NodeUp
			n.info.Generation = res.generation
		}
		if n.info.State != prev {
			changed = true
			t.logf("cluster: node %s %s → %s", n.info.Name, prev, n.info.State)
		}
	}
	if changed {
		t.version++
		_ = t.rebuildLocked()
	}
}

type probeResult struct {
	err        error
	draining   bool
	generation uint64
}

func (t *Tracker) probe(ctx context.Context, n NodeInfo) probeResult {
	ctx, cancel := context.WithTimeout(ctx, t.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.URL+"/healthz", nil)
	if err != nil {
		return probeResult{err: err}
	}
	resp, err := t.httpc.Do(req)
	if err != nil {
		return probeResult{err: err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return probeResult{err: err}
	}
	if resp.StatusCode != http.StatusOK {
		return probeResult{err: fmt.Errorf("healthz %s: HTTP %d", n.Name, resp.StatusCode)}
	}
	var h healthzBody
	if err := json.Unmarshal(body, &h); err != nil {
		return probeResult{err: fmt.Errorf("healthz %s: %w", n.Name, err)}
	}
	return probeResult{draining: h.Status == "draining", generation: h.Generation}
}

// Run probes on the configured cadence until ctx is canceled.
func (t *Tracker) Run(ctx context.Context) {
	ticker := time.NewTicker(t.cfg.ProbeInterval)
	defer ticker.Stop()
	t.ProbeOnce(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			t.ProbeOnce(ctx)
		}
	}
}
