// Package cliutil holds the small conversions the CLIs share when talking
// to a remote crrserve through pkg/client: dataset.Relation ⇄ the SDK's
// public batch/tuple shapes. They live here (not in pkg/client) so the
// public SDK surface stays free of internal types.
package cliutil

import (
	"fmt"

	"github.com/crrlab/crr/internal/dataset"
	"github.com/crrlab/crr/pkg/client"
)

// ClientBatch columnarizes rel into an SDK batch, nulls preserved.
func ClientBatch(rel *dataset.Relation) (*client.Batch, error) {
	b := client.NewBatch()
	n := rel.Len()
	for a := 0; a < rel.Schema.Len(); a++ {
		attr := rel.Schema.Attr(a)
		var nulls []bool
		for r := 0; r < n; r++ {
			if rel.Tuples[r][a].Null {
				if nulls == nil {
					nulls = make([]bool, n)
				}
				nulls[r] = true
			}
		}
		if attr.Kind == dataset.Numeric {
			vals := make([]float64, n)
			for r := 0; r < n; r++ {
				vals[r] = rel.Tuples[r][a].Num
			}
			b.Float64(attr.Name, vals, nulls)
		} else {
			vals := make([]string, n)
			for r := 0; r < n; r++ {
				vals[r] = rel.Tuples[r][a].Str
			}
			b.String(attr.Name, vals, nulls)
		}
	}
	return b, b.Err()
}

// RelationFromMaps rebuilds a relation over schema from the SDK's
// name-keyed tuples (an impute response), so the result can go back out
// through dataset.WriteCSV. Unknown keys are rejected; absent or nil values
// become nulls.
func RelationFromMaps(schema *dataset.Schema, tuples []map[string]any) (*dataset.Relation, error) {
	rel := &dataset.Relation{Schema: schema, Tuples: make([]dataset.Tuple, len(tuples))}
	for i, obj := range tuples {
		for name := range obj {
			if _, err := schema.Index(name); err != nil {
				return nil, fmt.Errorf("tuple %d: unknown attribute %q", i, name)
			}
		}
		t := make(dataset.Tuple, schema.Len())
		for a := 0; a < schema.Len(); a++ {
			attr := schema.Attr(a)
			raw, ok := obj[attr.Name]
			if !ok || raw == nil {
				t[a] = dataset.Null()
				continue
			}
			switch v := raw.(type) {
			case float64:
				if attr.Kind != dataset.Numeric {
					return nil, fmt.Errorf("tuple %d: attribute %q is categorical, got number", i, attr.Name)
				}
				t[a] = dataset.Num(v)
			case string:
				if attr.Kind != dataset.Categorical {
					return nil, fmt.Errorf("tuple %d: attribute %q is numeric, got string", i, attr.Name)
				}
				t[a] = dataset.Str(v)
			default:
				return nil, fmt.Errorf("tuple %d: attribute %q has unsupported type %T", i, attr.Name, raw)
			}
		}
		rel.Tuples[i] = t
	}
	return rel, nil
}
