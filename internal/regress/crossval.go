package regress

import (
	"fmt"
	"math"
)

// CrossValidate scores a trainer by k-fold cross-validation RMSE on (x, y),
// with contiguous folds (appropriate for the ordered parts CRR discovery
// produces; shuffle beforehand for i.i.d. data). It returns the mean
// held-out RMSE across folds.
func CrossValidate(t Trainer, x [][]float64, y []float64, k int) (float64, error) {
	if _, err := validateSample(x, y); err != nil {
		return 0, err
	}
	if k < 2 {
		return 0, fmt.Errorf("regress: cross-validation needs k ≥ 2, got %d", k)
	}
	n := len(x)
	if k > n {
		k = n
	}
	var total float64
	folds := 0
	for f := 0; f < k; f++ {
		lo := n * f / k
		hi := n * (f + 1) / k
		if lo == hi {
			continue
		}
		var trX [][]float64
		var trY []float64
		trX = append(trX, x[:lo]...)
		trX = append(trX, x[hi:]...)
		trY = append(trY, y[:lo]...)
		trY = append(trY, y[hi:]...)
		if len(trX) == 0 {
			continue
		}
		m, err := t.Train(trX, trY)
		if err != nil {
			return 0, fmt.Errorf("regress: fold %d: %w", f, err)
		}
		total += RMSE(m, x[lo:hi], y[lo:hi])
		folds++
	}
	if folds == 0 {
		return 0, fmt.Errorf("regress: no usable folds for n=%d, k=%d", n, k)
	}
	return total / float64(folds), nil
}

// SelectRidge picks the ridge penalty λ minimizing k-fold cross-validation
// RMSE over the given candidates (F2's hyper-parameter). It returns the
// winning trainer and its CV score. An empty candidate list defaults to a
// logarithmic grid from 0 (plain OLS) to 100.
func SelectRidge(x [][]float64, y []float64, candidates []float64, k int) (LinearTrainer, float64, error) {
	if len(candidates) == 0 {
		candidates = []float64{0, 0.01, 0.1, 1, 10, 100}
	}
	best := LinearTrainer{}
	bestScore := math.Inf(1)
	for _, lambda := range candidates {
		t := LinearTrainer{Ridge: lambda}
		score, err := CrossValidate(t, x, y, k)
		if err != nil {
			return LinearTrainer{}, 0, err
		}
		if score < bestScore {
			best, bestScore = t, score
		}
	}
	return best, bestScore, nil
}
