package regress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShareTestExactShift(t *testing.T) {
	// f(x) = x; data is y = x + 3: share with δ0 = 3, zero residual spread.
	f := NewLinear(0, 1)
	x := [][]float64{{0}, {1}, {2}}
	y := []float64{3, 4, 5}
	r := ShareTest(f, x, y, 0.5)
	if !r.OK || r.Delta0 != 3 || r.MaxErr != 0 || r.FitFraction != 1 {
		t.Errorf("ShareTest = %+v", r)
	}
}

func TestShareTestRejectsWideSpread(t *testing.T) {
	// Residuals {0, 10}: midpoint 5, max error 5 > ρ_M = 1.
	f := NewLinear(0, 1)
	x := [][]float64{{0}, {1}}
	y := []float64{0, 11}
	r := ShareTest(f, x, y, 1)
	if r.OK {
		t.Error("sharing accepted with residual spread 10")
	}
	if r.Delta0 != 5 || r.MaxErr != 5 {
		t.Errorf("δ0/MaxErr = %v/%v, want 5/5", r.Delta0, r.MaxErr)
	}
	if r.FitFraction != 0 {
		t.Errorf("FitFraction = %v, want 0 (both residuals 5 from midpoint, ρ=1)", r.FitFraction)
	}
}

func TestShareTestFitFraction(t *testing.T) {
	// Three residuals 0, 0, 4 ⇒ δ0 = 2; |r−δ0| = 2,2,2; with ρ_M = 2 all fit.
	f := NewLinear(0, 1)
	x := [][]float64{{0}, {1}, {2}}
	y := []float64{0, 1, 6}
	r := ShareTest(f, x, y, 2)
	if !r.OK || r.FitFraction != 1 {
		t.Errorf("ShareTest = %+v", r)
	}
	// With ρ_M = 1 none fit at the midpoint.
	r = ShareTest(f, x, y, 1)
	if r.OK || r.FitFraction != 0 {
		t.Errorf("ShareTest = %+v", r)
	}
}

func TestShareTestEmpty(t *testing.T) {
	r := ShareTest(NewLinear(0), nil, nil, 1)
	if !r.OK || r.FitFraction != 1 {
		t.Errorf("empty sample ShareTest = %+v", r)
	}
}

// Property (Proposition 6): δ0 is minimax-optimal — no other shift achieves
// smaller maximum absolute error than the residual midpoint.
func TestDelta0MinimaxOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		model := NewLinear(rng.NormFloat64(), rng.NormFloat64())
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = []float64{rng.NormFloat64() * 5}
			y[i] = model.Predict(x[i]) + rng.NormFloat64()*3
		}
		r := ShareTest(model, x, y, 1)
		// Any alternative shift must do no better on max error.
		for trial := 0; trial < 20; trial++ {
			alt := r.Delta0 + rng.NormFloat64()
			var m float64
			for i := range x {
				if d := math.Abs(y[i] - (model.Predict(x[i]) + alt)); d > m {
					m = d
				}
			}
			if m < r.MaxErr-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: ShareTest.OK ⇔ the semantics hold, i.e. all residuals are within
// ρ_M of δ0.
func TestShareTestConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		model := NewLinear(rng.NormFloat64())
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = []float64{}
			y[i] = rng.NormFloat64() * 2
		}
		rhoM := rng.Float64() * 3
		r := ShareTest(model, x, y, rhoM)
		all := true
		for i := range x {
			if math.Abs(y[i]-(model.Predict(x[i])+r.Delta0)) > rhoM {
				all = false
			}
		}
		return r.OK == all
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMaxAbsErrorAndRMSE(t *testing.T) {
	f := NewLinear(0, 1)
	x := [][]float64{{0}, {1}, {2}}
	y := []float64{0, 2, 2}
	if got := MaxAbsError(f, x, y); got != 1 {
		t.Errorf("MaxAbsError = %v, want 1", got)
	}
	want := math.Sqrt((0 + 1 + 0) / 3.0)
	if got := RMSE(f, x, y); math.Abs(got-want) > 1e-12 {
		t.Errorf("RMSE = %v, want %v", got, want)
	}
	if RMSE(f, nil, nil) != 0 {
		t.Error("RMSE of empty sample should be 0")
	}
}
