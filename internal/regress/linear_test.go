package regress

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearPredict(t *testing.T) {
	m := NewLinear(2, 3, -1) // 2 + 3x0 - x1
	if got := m.Predict([]float64{1, 4}); got != 1 {
		t.Errorf("Predict = %v, want 1", got)
	}
	if m.Dim() != 2 || m.Family() != "linear" {
		t.Errorf("Dim/Family = %d/%s", m.Dim(), m.Family())
	}
}

func TestLinearPredictPanicsOnDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dim mismatch")
		}
	}()
	NewLinear(0, 1).Predict([]float64{1, 2})
}

func TestNewConstant(t *testing.T) {
	m := NewConstant(60.10, 3)
	if got := m.Predict([]float64{1, 2, 3}); got != 60.10 {
		t.Errorf("constant Predict = %v", got)
	}
	if !m.IsConstant(0) {
		t.Error("constant model not reported constant")
	}
	if NewLinear(1, 0.5).IsConstant(0.1) {
		t.Error("sloped model reported constant")
	}
}

func TestLinearTrainerRecovers(t *testing.T) {
	tr := LinearTrainer{}
	x := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{5, 7, 9, 11} // 5 + 2x
	m, err := tr.Train(x, y)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	lin := m.(*Linear)
	if math.Abs(lin.W[0]-5) > 1e-9 || math.Abs(lin.W[1]-2) > 1e-9 {
		t.Errorf("W = %v, want [5 2]", lin.W)
	}
	if tr.Name() != "F1" {
		t.Errorf("Name = %s", tr.Name())
	}
}

func TestLinearTrainerSingleTuple(t *testing.T) {
	// The paper's edge case: a single tuple still yields a model covering it.
	m, err := LinearTrainer{}.Train([][]float64{{4}}, []float64{9})
	if err != nil {
		t.Fatalf("Train single tuple: %v", err)
	}
	if math.Abs(m.Predict([]float64{4})-9) > 1e-6 {
		t.Errorf("single-tuple model misses its own tuple: %v", m.Predict([]float64{4}))
	}
}

func TestLinearTrainerZeroDim(t *testing.T) {
	m, err := LinearTrainer{}.Train([][]float64{{}, {}, {}}, []float64{1, 5, 3})
	if err != nil {
		t.Fatalf("Train zero-dim: %v", err)
	}
	// Midpoint of [1,5] minimizes the max error.
	if got := m.Predict(nil); got != 3 {
		t.Errorf("zero-dim prediction = %v, want midpoint 3", got)
	}
}

func TestLinearTrainerErrors(t *testing.T) {
	if _, err := (LinearTrainer{}).Train(nil, nil); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v, want ErrNoData", err)
	}
	if _, err := (LinearTrainer{}).Train([][]float64{{1}}, []float64{1, 2}); !errors.Is(err, ErrBadSample) {
		t.Errorf("err = %v, want ErrBadSample", err)
	}
	if _, err := (LinearTrainer{}).Train([][]float64{{1}, {1, 2}}, []float64{1, 2}); !errors.Is(err, ErrBadSample) {
		t.Errorf("ragged err = %v, want ErrBadSample", err)
	}
}

func TestRidgeTrainerFamilyAndName(t *testing.T) {
	tr := LinearTrainer{Ridge: 0.1}
	if tr.Name() != "F2" {
		t.Errorf("Name = %s, want F2", tr.Name())
	}
	m, err := tr.Train([][]float64{{0}, {1}, {2}}, []float64{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Family() != "ridge" {
		t.Errorf("Family = %s, want ridge", m.Family())
	}
}

func TestLinearEqual(t *testing.T) {
	a := NewLinear(1, 2)
	b := NewLinear(1.0000001, 2)
	if !a.Equal(b, 1e-3) {
		t.Error("near-identical models not equal at loose tol")
	}
	if a.Equal(b, 1e-9) {
		t.Error("models equal at tight tol")
	}
	if a.Equal(NewLinear(1, 2, 3), 1) {
		t.Error("different widths equal")
	}
	ridge, _ := LinearTrainer{Ridge: 1}.Train([][]float64{{0}, {1}}, []float64{0, 0})
	if a.Equal(ridge, 100) {
		t.Error("different families equal")
	}
}

func TestSolveTranslationLinear(t *testing.T) {
	// The paper's Tax example: f4(S) = 0.04S, f5(S) = 0.04S − 230 ⇒ δ = −230.
	f4 := NewLinear(0, 0.04)
	f5 := NewLinear(-230, 0.04)
	tr, ok := f4.SolveTranslation(f5, 1e-9)
	if !ok {
		t.Fatal("translation not found")
	}
	if tr.DeltaY != -230 || !tr.IsPureY() {
		t.Errorf("translation = %+v, want δ = −230", tr)
	}
	// Verify the defining equation on samples.
	for s := 0.0; s < 1e5; s += 2.5e4 {
		if math.Abs(f5.Predict([]float64{s})-PredictShifted(f4, []float64{s}, tr)) > 1e-9 {
			t.Fatal("translation equation violated")
		}
	}
}

func TestSolveTranslationRejectsDifferentSlopes(t *testing.T) {
	a := NewLinear(0, 1)
	b := NewLinear(0, 2)
	if _, ok := a.SolveTranslation(b, 1e-6); ok {
		t.Error("translation found across different slopes")
	}
	if _, ok := a.SolveTranslation(NewLinear(0, 1, 1), 1e-6); ok {
		t.Error("translation found across widths")
	}
}

// Property: for random linear models differing only in intercept,
// SolveTranslation recovers the exact δ.
func TestSolveTranslationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(3)
		slopes := make([]float64, dim)
		for i := range slopes {
			slopes[i] = rng.NormFloat64()
		}
		a := NewLinear(rng.NormFloat64(), slopes...)
		delta := rng.NormFloat64() * 10
		b := NewLinear(a.W[0]+delta, slopes...)
		tr, ok := a.SolveTranslation(b, 1e-12)
		return ok && math.Abs(tr.DeltaY-delta) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPredictShiftedInputDelta(t *testing.T) {
	// f(x) = 2x; shifting the input by Δ=3 must evaluate f(x+3).
	f := NewLinear(0, 2)
	got := PredictShifted(f, []float64{1}, Translation{DeltaX: []float64{3}, DeltaY: 5})
	if got != 2*(1+3)+5 {
		t.Errorf("PredictShifted = %v, want 13", got)
	}
	// nil DeltaX means Δ = 0.
	if got := PredictShifted(f, []float64{1}, Translation{DeltaY: 1}); got != 3 {
		t.Errorf("PredictShifted nil Δ = %v, want 3", got)
	}
}

func TestLinearString(t *testing.T) {
	if s := NewLinear(1, -2).String(); s == "" {
		t.Error("empty String")
	}
}
