package regress_test

import (
	"fmt"

	"github.com/crrlab/crr/internal/regress"
)

// ExampleLinear_SolveTranslation reproduces the paper's §IV Tax example:
// f5(Salary) = 0.04·Salary − 230 is a pure-output translation of
// f4(Salary) = 0.04·Salary.
func ExampleLinear_SolveTranslation() {
	f4 := regress.NewLinear(0, 0.04)
	f5 := regress.NewLinear(-230, 0.04)
	tr, ok := f4.SolveTranslation(f5, 1e-9)
	fmt.Println(ok, tr.DeltaY, tr.IsPureY())
	// Output: true -230 true
}

// ExampleShareTest shows Proposition 6's δ0 midpoint test: a model fits a
// foreign data part after an output shift exactly when the post-shift
// maximum error stays within ρ_M.
func ExampleShareTest() {
	f := regress.NewLinear(0, 2) // f(x) = 2x
	// Data follows 2x + 30 — the same slope, shifted.
	x := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{30, 32.1, 33.9, 36}
	res := regress.ShareTest(f, x, y, 0.5)
	fmt.Printf("share=%v δ0=%.1f maxErr=%.1f\n", res.OK, res.Delta0, res.MaxErr)
	// Output: share=true δ0=30.0 maxErr=0.1
}

// ExampleLinearTrainer fits F1 (OLS) and F2 (ridge).
func ExampleLinearTrainer() {
	x := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{1, 3, 5, 7} // 1 + 2x
	m, err := regress.LinearTrainer{}.Train(x, y)
	if err != nil {
		panic(err)
	}
	fmt.Printf("f(10) = %.0f\n", m.Predict([]float64{10}))
	// Output: f(10) = 21
}
