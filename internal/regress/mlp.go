package regress

import (
	"fmt"
	"math"
	"math/rand"
)

// MLP is the paper's F3 family: a one-hidden-layer perceptron with tanh
// activation and a linear output, trained by Adam. As in the paper, F3 only
// supports output translation (y = δ): SolveTranslation is deliberately not
// implemented, so Algorithm 2 can never derive an x = Δ built-in for it,
// while Algorithm 1's data-based sharing (which only needs Predict) still
// applies.
type MLP struct {
	InDim  int
	W1     [][]float64 // hidden × in
	B1     []float64   // hidden
	W2     []float64   // hidden
	B2     float64
	inMean []float64 // feature standardization
	inStd  []float64
}

// Predict implements Model.
func (m *MLP) Predict(x []float64) float64 {
	if len(x) != m.InDim {
		panic(fmt.Sprintf("regress: MLP.Predict dim %d, want %d", len(x), m.InDim))
	}
	y := m.B2
	for h := range m.W2 {
		a := m.B1[h]
		for i, v := range x {
			a += m.W1[h][i] * (v - m.inMean[i]) / m.inStd[i]
		}
		y += m.W2[h] * math.Tanh(a)
	}
	return y
}

// Dim implements Model.
func (m *MLP) Dim() int { return m.InDim }

// Family implements Model.
func (m *MLP) Family() string { return "mlp" }

// Equal implements Model: identical architecture and all parameters within
// tol. Two independently trained MLPs essentially never compare equal, which
// matches the paper's observation that F3 shares only through the data-based
// y = δ path.
func (m *MLP) Equal(other Model, tol float64) bool {
	o, ok := other.(*MLP)
	if !ok || o.InDim != m.InDim || len(o.W2) != len(m.W2) {
		return false
	}
	if math.Abs(m.B2-o.B2) > tol {
		return false
	}
	for h := range m.W2 {
		if math.Abs(m.W2[h]-o.W2[h]) > tol || math.Abs(m.B1[h]-o.B1[h]) > tol {
			return false
		}
		for i := range m.W1[h] {
			if math.Abs(m.W1[h][i]-o.W1[h][i]) > tol {
				return false
			}
		}
	}
	for i := 0; i < m.InDim; i++ {
		if math.Abs(m.inMean[i]-o.inMean[i]) > tol || math.Abs(m.inStd[i]-o.inStd[i]) > tol {
			return false
		}
	}
	return true
}

// MLPTrainer fits an MLP with Adam full-batch updates. The zero value is not
// useful; use NewMLPTrainer for sensible defaults.
type MLPTrainer struct {
	Hidden int
	Epochs int
	LR     float64
	Seed   int64
}

// NewMLPTrainer returns the default F3 configuration: 8 hidden units,
// 300 epochs, learning rate 0.02.
func NewMLPTrainer(seed int64) MLPTrainer {
	return MLPTrainer{Hidden: 8, Epochs: 300, LR: 0.02, Seed: seed}
}

// Name implements Trainer.
func (t MLPTrainer) Name() string { return "F3" }

// Train implements Trainer.
func (t MLPTrainer) Train(x [][]float64, y []float64) (Model, error) {
	dim, err := validateSample(x, y)
	if err != nil {
		return nil, err
	}
	hidden := t.Hidden
	if hidden <= 0 {
		hidden = 8
	}
	epochs := t.Epochs
	if epochs <= 0 {
		epochs = 300
	}
	lr := t.LR
	if lr <= 0 {
		lr = 0.02
	}
	rng := rand.New(rand.NewSource(t.Seed))

	m := &MLP{
		InDim:  dim,
		W1:     make([][]float64, hidden),
		B1:     make([]float64, hidden),
		W2:     make([]float64, hidden),
		inMean: make([]float64, dim),
		inStd:  make([]float64, dim),
	}
	// Standardize inputs so tanh units are in range.
	for i := 0; i < dim; i++ {
		var s float64
		for _, row := range x {
			s += row[i]
		}
		mean := s / float64(len(x))
		var ss float64
		for _, row := range x {
			d := row[i] - mean
			ss += d * d
		}
		std := math.Sqrt(ss / float64(len(x)))
		if std < 1e-9 {
			std = 1
		}
		m.inMean[i], m.inStd[i] = mean, std
	}
	scale := 1 / math.Sqrt(float64(dim))
	for h := 0; h < hidden; h++ {
		m.W1[h] = make([]float64, dim)
		for i := range m.W1[h] {
			m.W1[h][i] = rng.NormFloat64() * scale
		}
		m.B1[h] = rng.NormFloat64() * 0.1
		m.W2[h] = rng.NormFloat64() / math.Sqrt(float64(hidden))
	}
	// Center the output on the target mean for faster convergence.
	var ymean float64
	for _, v := range y {
		ymean += v
	}
	m.B2 = ymean / float64(len(y))

	adam := newAdam(hidden*dim + 2*hidden + 1)
	grads := make([]float64, hidden*dim+2*hidden+1)
	zstd := make([][]float64, len(x)) // pre-standardized inputs
	for r, row := range x {
		z := make([]float64, dim)
		for i, v := range row {
			z[i] = (v - m.inMean[i]) / m.inStd[i]
		}
		zstd[r] = z
	}
	act := make([]float64, hidden)
	for epoch := 0; epoch < epochs; epoch++ {
		for i := range grads {
			grads[i] = 0
		}
		for r, z := range zstd {
			pred := m.B2
			for h := 0; h < hidden; h++ {
				a := m.B1[h]
				for i, v := range z {
					a += m.W1[h][i] * v
				}
				act[h] = math.Tanh(a)
				pred += m.W2[h] * act[h]
			}
			e := 2 * (pred - y[r]) / float64(len(x))
			g := grads
			for h := 0; h < hidden; h++ {
				g[hidden*dim+h] += e * act[h] // dW2
				da := e * m.W2[h] * (1 - act[h]*act[h])
				g[hidden*dim+hidden+h] += da // dB1
				for i, v := range z {
					g[h*dim+i] += da * v // dW1
				}
			}
			g[len(g)-1] += e // dB2
		}
		adam.step(grads, lr)
		u := adam.update
		for h := 0; h < hidden; h++ {
			for i := 0; i < dim; i++ {
				m.W1[h][i] -= u[h*dim+i]
			}
			m.W2[h] -= u[hidden*dim+h]
			m.B1[h] -= u[hidden*dim+hidden+h]
		}
		m.B2 -= u[len(u)-1]
	}
	return m, nil
}

// adam holds Adam optimizer state over a flat parameter vector.
type adam struct {
	m, v, update []float64
	t            int
}

func newAdam(n int) *adam {
	return &adam{m: make([]float64, n), v: make([]float64, n), update: make([]float64, n)}
}

func (a *adam) step(grads []float64, lr float64) {
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	a.t++
	bc1 := 1 - math.Pow(beta1, float64(a.t))
	bc2 := 1 - math.Pow(beta2, float64(a.t))
	for i, g := range grads {
		a.m[i] = beta1*a.m[i] + (1-beta1)*g
		a.v[i] = beta2*a.v[i] + (1-beta2)*g*g
		a.update[i] = lr * (a.m[i] / bc1) / (math.Sqrt(a.v[i]/bc2) + eps)
	}
}
