package regress

import (
	"errors"
	"math"

	"github.com/crrlab/crr/internal/mat"
)

// Gram holds the sufficient statistics of a least-squares fit over one data
// part: the Gram matrix XᵀX of the intercept-augmented design, the moment
// vector Xᵀy and the target second moment yᵀy, plus the row count. They are
// everything OLS/ridge training needs, so a part whose Gram is known trains
// in O(d³) (one normal-equation solve) instead of the O(n·d²) design pass.
//
// Discovery maintains Grams incrementally: a part's statistics are
// accumulated while its rows are filtered during splitting, and a sibling's
// come for free as parent − child (Sub). Accumulation order is the part's
// row order, matching mat.Gram over the materialized design bitwise, so the
// fast path reproduces the full-pass fit exactly whenever no subtraction was
// involved (and to ~ulp precision when one was).
type Gram struct {
	// N is the number of accumulated rows.
	N int
	// XtX is the (d+1)×(d+1) Gram matrix of the intercept-augmented design.
	XtX *mat.Dense
	// XtY is the (d+1)-vector Xᵀy of the augmented design.
	XtY []float64
	// YtY is Σ y².
	YtY float64
}

// ErrGramUnsupported is returned by TrainGram when the statistics cannot
// serve the requested fit (degenerate width, empty part, singular system);
// callers fall back to the full-pass Train.
var ErrGramUnsupported = errors.New("regress: sufficient statistics cannot serve this fit")

// NewGram allocates empty statistics for a dim-feature design (the intercept
// column is added internally).
func NewGram(dim int) *Gram {
	return &Gram{
		XtX: mat.NewDense(dim+1, dim+1),
		XtY: make([]float64, dim+1),
	}
}

// Dim returns the feature width (excluding the intercept).
func (g *Gram) Dim() int { return len(g.XtY) - 1 }

// Add accumulates one observation. row must have length Dim().
func (g *Gram) Add(row []float64, y float64) {
	d1 := len(row) + 1
	data := g.XtX.Data
	// Intercept terms: the augmented row is (1, row...).
	data[0]++
	for j, v := range row {
		data[j+1] += v
		data[(j+1)*d1] += v
	}
	for i, vi := range row {
		base := (i+1)*d1 + 1
		for j, vj := range row {
			data[base+j] += vi * vj
		}
	}
	g.XtY[0] += y
	for i, v := range row {
		g.XtY[i+1] += v * y
	}
	g.YtY += y * y
	g.N++
}

// Downdate removes one observation previously accumulated with Add — the
// rank-1 inverse of Add, used by windowed stream maintenance when a row
// expires from the sliding window. Like Sub, the subtraction cancels in
// floating point: repeated update/downdate cycles drift the carried
// statistics by ulps per cycle and can even leave the Gram matrix
// indefinite. Callers that keep a Gram alive across many cycles must watch
// Degenerate() (or a failed SPD solve) and fall back to fresh accumulation
// over the surviving rows. row must have length Dim().
func (g *Gram) Downdate(row []float64, y float64) {
	d1 := len(row) + 1
	data := g.XtX.Data
	data[0]--
	for j, v := range row {
		data[j+1] -= v
		data[(j+1)*d1] -= v
	}
	for i, vi := range row {
		base := (i+1)*d1 + 1
		for j, vj := range row {
			data[base+j] -= vi * vj
		}
	}
	g.XtY[0] -= y
	for i, v := range row {
		g.XtY[i+1] -= v * y
	}
	g.YtY -= y * y
	g.N--
}

// Degenerate reports whether the carried statistics have lost the shape a
// sufficient-statistics fit needs: a non-positive row count, a diagonal
// entry of XᵀX that cancellation has driven negative (the Gram matrix of any
// real design has Σ v² ≥ 0 on the diagonal, so a negative entry is pure
// floating-point debris and the SPD solve would consume garbage), a target
// second moment below zero, or an intercept count drifted away from N. It is
// a cheap O(d) guard, not a full positive-definiteness test — the Cholesky
// pivot check inside the SPD solve remains the authoritative gate, and
// callers should treat a solve failure exactly like Degenerate() == true:
// rebuild the statistics fresh from the surviving rows.
func (g *Gram) Degenerate() bool {
	if g.N <= 0 || g.YtY < 0 {
		return true
	}
	d1 := len(g.XtY)
	data := g.XtX.Data
	for i := 0; i < d1; i++ {
		if !(data[i*d1+i] >= 0) { // catches negatives and NaN
			return true
		}
	}
	// The [0,0] entry accumulates exactly 1 per Add, so it must track N;
	// drifting off by more than ½ means update/downdate cycles have chewed
	// through the integer range where float64 is exact.
	return math.Abs(data[0]-float64(g.N)) > 0.5
}

// Clone deep-copies the statistics.
func (g *Gram) Clone() *Gram {
	return &Gram{N: g.N, XtX: g.XtX.Clone(), XtY: append([]float64(nil), g.XtY...), YtY: g.YtY}
}

// Sub removes a child part's statistics in place: g becomes parent − child,
// the sibling of a partition. The subtraction cancels in floating point, so
// sibling-derived fits can drift from the full-pass fit by a few ulps; the
// engine's property test bounds the drift at 1e-9 on same-scale data. It
// panics on mismatched widths.
func (g *Gram) Sub(child *Gram) {
	if len(g.XtY) != len(child.XtY) {
		panic("regress: Gram.Sub width mismatch")
	}
	g.N -= child.N
	for i := range g.XtX.Data {
		g.XtX.Data[i] -= child.XtX.Data[i]
	}
	for i := range g.XtY {
		g.XtY[i] -= child.XtY[i]
	}
	g.YtY -= child.YtY
}
