package regress

import (
	"errors"

	"github.com/crrlab/crr/internal/mat"
)

// Gram holds the sufficient statistics of a least-squares fit over one data
// part: the Gram matrix XᵀX of the intercept-augmented design, the moment
// vector Xᵀy and the target second moment yᵀy, plus the row count. They are
// everything OLS/ridge training needs, so a part whose Gram is known trains
// in O(d³) (one normal-equation solve) instead of the O(n·d²) design pass.
//
// Discovery maintains Grams incrementally: a part's statistics are
// accumulated while its rows are filtered during splitting, and a sibling's
// come for free as parent − child (Sub). Accumulation order is the part's
// row order, matching mat.Gram over the materialized design bitwise, so the
// fast path reproduces the full-pass fit exactly whenever no subtraction was
// involved (and to ~ulp precision when one was).
type Gram struct {
	// N is the number of accumulated rows.
	N int
	// XtX is the (d+1)×(d+1) Gram matrix of the intercept-augmented design.
	XtX *mat.Dense
	// XtY is the (d+1)-vector Xᵀy of the augmented design.
	XtY []float64
	// YtY is Σ y².
	YtY float64
}

// ErrGramUnsupported is returned by TrainGram when the statistics cannot
// serve the requested fit (degenerate width, empty part, singular system);
// callers fall back to the full-pass Train.
var ErrGramUnsupported = errors.New("regress: sufficient statistics cannot serve this fit")

// NewGram allocates empty statistics for a dim-feature design (the intercept
// column is added internally).
func NewGram(dim int) *Gram {
	return &Gram{
		XtX: mat.NewDense(dim+1, dim+1),
		XtY: make([]float64, dim+1),
	}
}

// Dim returns the feature width (excluding the intercept).
func (g *Gram) Dim() int { return len(g.XtY) - 1 }

// Add accumulates one observation. row must have length Dim().
func (g *Gram) Add(row []float64, y float64) {
	d1 := len(row) + 1
	data := g.XtX.Data
	// Intercept terms: the augmented row is (1, row...).
	data[0]++
	for j, v := range row {
		data[j+1] += v
		data[(j+1)*d1] += v
	}
	for i, vi := range row {
		base := (i+1)*d1 + 1
		for j, vj := range row {
			data[base+j] += vi * vj
		}
	}
	g.XtY[0] += y
	for i, v := range row {
		g.XtY[i+1] += v * y
	}
	g.YtY += y * y
	g.N++
}

// Clone deep-copies the statistics.
func (g *Gram) Clone() *Gram {
	return &Gram{N: g.N, XtX: g.XtX.Clone(), XtY: append([]float64(nil), g.XtY...), YtY: g.YtY}
}

// Sub removes a child part's statistics in place: g becomes parent − child,
// the sibling of a partition. The subtraction cancels in floating point, so
// sibling-derived fits can drift from the full-pass fit by a few ulps; the
// engine's property test bounds the drift at 1e-9 on same-scale data. It
// panics on mismatched widths.
func (g *Gram) Sub(child *Gram) {
	if len(g.XtY) != len(child.XtY) {
		panic("regress: Gram.Sub width mismatch")
	}
	g.N -= child.N
	for i := range g.XtX.Data {
		g.XtX.Data[i] -= child.XtX.Data[i]
	}
	for i := range g.XtY {
		g.XtY[i] -= child.XtY[i]
	}
	g.YtY -= child.YtY
}
