package regress

import (
	"encoding/json"
	"fmt"
)

// modelJSON is the serialized form of a Model: a family tag plus the
// family-specific payload. Only one payload field is populated.
type modelJSON struct {
	Family string          `json:"family"`
	Linear *linearJSON     `json:"linear,omitempty"`
	MLP    *mlpJSON        `json:"mlp,omitempty"`
	Extra  json.RawMessage `json:"extra,omitempty"`
}

type linearJSON struct {
	Weights []float64 `json:"weights"`
	Family  string    `json:"subfamily"` // "linear" or "ridge"
}

type mlpJSON struct {
	InDim  int         `json:"in_dim"`
	W1     [][]float64 `json:"w1"`
	B1     []float64   `json:"b1"`
	W2     []float64   `json:"w2"`
	B2     float64     `json:"b2"`
	InMean []float64   `json:"in_mean"`
	InStd  []float64   `json:"in_std"`
}

// EncodeModel serializes a model to JSON. Linear (OLS and ridge) and MLP
// families are supported — the F1/F2/F3 set of the paper.
func EncodeModel(m Model) ([]byte, error) {
	switch v := m.(type) {
	case *Linear:
		return json.Marshal(modelJSON{
			Family: "linear",
			Linear: &linearJSON{Weights: v.W, Family: v.family},
		})
	case *MLP:
		return json.Marshal(modelJSON{
			Family: "mlp",
			MLP: &mlpJSON{
				InDim: v.InDim, W1: v.W1, B1: v.B1, W2: v.W2, B2: v.B2,
				InMean: v.inMean, InStd: v.inStd,
			},
		})
	default:
		return nil, fmt.Errorf("regress: cannot encode model family %q", m.Family())
	}
}

// DecodeModel deserializes a model encoded by EncodeModel.
func DecodeModel(data []byte) (Model, error) {
	var mj modelJSON
	if err := json.Unmarshal(data, &mj); err != nil {
		return nil, fmt.Errorf("regress: decode model: %w", err)
	}
	switch mj.Family {
	case "linear":
		if mj.Linear == nil || len(mj.Linear.Weights) == 0 {
			return nil, fmt.Errorf("regress: linear payload missing or empty")
		}
		fam := mj.Linear.Family
		if fam != "ridge" {
			fam = "linear"
		}
		return &Linear{W: mj.Linear.Weights, family: fam}, nil
	case "mlp":
		p := mj.MLP
		if p == nil {
			return nil, fmt.Errorf("regress: mlp payload missing")
		}
		if err := validateMLPPayload(p); err != nil {
			return nil, err
		}
		return &MLP{
			InDim: p.InDim, W1: p.W1, B1: p.B1, W2: p.W2, B2: p.B2,
			inMean: p.InMean, inStd: p.InStd,
		}, nil
	default:
		return nil, fmt.Errorf("regress: unknown model family %q", mj.Family)
	}
}

func validateMLPPayload(p *mlpJSON) error {
	h := len(p.W2)
	if len(p.W1) != h || len(p.B1) != h {
		return fmt.Errorf("regress: mlp payload layer sizes disagree (w1=%d b1=%d w2=%d)", len(p.W1), len(p.B1), h)
	}
	for i, row := range p.W1 {
		if len(row) != p.InDim {
			return fmt.Errorf("regress: mlp payload w1 row %d width %d, want %d", i, len(row), p.InDim)
		}
	}
	if len(p.InMean) != p.InDim || len(p.InStd) != p.InDim {
		return fmt.Errorf("regress: mlp payload standardization width mismatch")
	}
	for i, s := range p.InStd {
		if s == 0 {
			return fmt.Errorf("regress: mlp payload in_std[%d] is zero", i)
		}
	}
	return nil
}
