package regress

import (
	"math"
	"math/rand"
	"testing"
)

// windowRows generates a correlated regression sample: y = 2 + 3·x0 − x1 + ε.
func windowRows(rng *rand.Rand, n int) (x [][]float64, y []float64) {
	for i := 0; i < n; i++ {
		row := []float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		x = append(x, row)
		y = append(y, 2+3*row[0]-row[1]+rng.NormFloat64()*0.1)
	}
	return x, y
}

// TestDowndateInvertsAdd: Add then Downdate of the same row restores the
// carried statistics to the prior fit within tolerance.
func TestDowndateInvertsAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := windowRows(rng, 50)
	g := NewGram(2)
	for i := range x {
		g.Add(x[i], y[i])
	}
	before, err := LinearTrainer{}.TrainGram(g)
	if err != nil {
		t.Fatalf("TrainGram: %v", err)
	}
	extra := []float64{123.4, -56.7}
	g.Add(extra, 999)
	g.Downdate(extra, 999)
	if g.N != 50 {
		t.Fatalf("N = %d after add+downdate, want 50", g.N)
	}
	after, err := LinearTrainer{}.TrainGram(g)
	if err != nil {
		t.Fatalf("TrainGram after downdate: %v", err)
	}
	if !after.Equal(before, 1e-9) {
		t.Fatalf("fit drifted past 1e-9 after one add/downdate cycle:\n  before %v\n  after  %v", before, after)
	}
}

// TestDowndateCyclesMatchFreshAccumulation is the numerical-safety
// regression test of the stream bugfix sweep: a sliding window driven
// through thousands of add/downdate cycles must either keep producing fits
// that match a from-scratch TrainGram over the surviving rows within
// tolerance, or flag itself via Degenerate() so the maintainer rebuilds.
func TestDowndateCyclesMatchFreshAccumulation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const window = 64
	var ring [][]float64
	var ys []float64
	g := NewGram(2)

	fresh := func() *Gram {
		f := NewGram(2)
		for i := range ring {
			f.Add(ring[i], ys[i])
		}
		return f
	}

	cycles := 0
	for step := 0; step < 5000; step++ {
		row := []float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		y := 2 + 3*row[0] - row[1] + rng.NormFloat64()*0.1
		ring = append(ring, row)
		ys = append(ys, y)
		g.Add(row, y)
		if len(ring) > window {
			g.Downdate(ring[0], ys[0])
			ring = ring[1:]
			ys = ys[1:]
			cycles++
		}
		if step%500 != 499 {
			continue
		}
		if g.Degenerate() {
			// Allowed escape hatch: the maintainer would rebuild here. On
			// same-scale data 5000 cycles must not reach this, so treat it
			// as a failure — the guard firing this early means Add/Downdate
			// are not inverse enough.
			t.Fatalf("Gram degenerate after %d cycles on well-scaled data", cycles)
		}
		got, err := LinearTrainer{}.TrainGram(g)
		if err != nil {
			t.Fatalf("TrainGram after %d cycles: %v", cycles, err)
		}
		want, err := LinearTrainer{}.TrainGram(fresh())
		if err != nil {
			t.Fatalf("fresh TrainGram: %v", err)
		}
		if !got.Equal(want, 1e-6) {
			t.Fatalf("carried fit drifted from fresh accumulation after %d cycles:\n  carried %v\n  fresh   %v", cycles, got, want)
		}
	}
	if cycles < 4000 {
		t.Fatalf("expected thousands of add/downdate cycles, got %d", cycles)
	}
}

// TestDegenerateDetectsCancellation drives the carried statistics through a
// scale shock — huge rows added and removed around tiny ones — and asserts
// the degeneracy guard (or the SPD solve) catches the resulting loss of
// positive-definiteness instead of returning garbage weights.
func TestDegenerateDetectsCancellation(t *testing.T) {
	g := NewGram(1)
	// A tiny surviving sample…
	g.Add([]float64{1e-8}, 1e-8)
	g.Add([]float64{2e-8}, 2e-8)
	g.Add([]float64{3e-8}, 3e-8)
	// …swamped by a huge transient that is then removed. (1e12)² = 1e24
	// absorbs the 1e-16-scale diagonal mass entirely, so the subtraction
	// leaves the true signal destroyed.
	g.Add([]float64{1e12}, 1e12)
	g.Downdate([]float64{1e12}, 1e12)

	if g.Degenerate() {
		return // diagonal check caught it
	}
	m, err := LinearTrainer{}.TrainGram(g)
	if err != nil {
		return // Cholesky pivot check caught it
	}
	// Neither guard fired: the fit must then actually be sane.
	lin := m.(*Linear)
	if math.Abs(lin.W[1]-1) > 0.5 {
		t.Fatalf("cancellation produced garbage slope %v and no guard fired", lin.W)
	}
}

// TestDegenerateFlags covers the individual degeneracy conditions.
func TestDegenerateFlags(t *testing.T) {
	mk := func() *Gram {
		g := NewGram(1)
		g.Add([]float64{1}, 2)
		g.Add([]float64{2}, 3)
		g.Add([]float64{3}, 5)
		return g
	}
	if mk().Degenerate() {
		t.Fatal("healthy Gram flagged degenerate")
	}
	g := mk()
	g.Downdate([]float64{1}, 2)
	g.Downdate([]float64{2}, 3)
	g.Downdate([]float64{3}, 5)
	if !g.Degenerate() {
		t.Fatal("N == 0 not flagged")
	}
	g = mk()
	g.XtX.Data[0] = -0.5
	if !g.Degenerate() {
		t.Fatal("negative diagonal not flagged")
	}
	g = mk()
	g.XtX.Data[3] = math.NaN() // diagonal entry of the feature block
	if !g.Degenerate() {
		t.Fatal("NaN diagonal not flagged")
	}
	g = mk()
	g.YtY = -1e-9
	if !g.Degenerate() {
		t.Fatal("negative YtY not flagged")
	}
	g = mk()
	g.XtX.Data[0] = float64(g.N) + 1
	if !g.Degenerate() {
		t.Fatal("intercept-count drift not flagged")
	}
}
