package regress

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeLinear(t *testing.T) {
	m := NewLinear(1.5, -2, 3)
	data, err := EncodeModel(m)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	back, err := DecodeModel(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !m.Equal(back, 0) {
		t.Errorf("round trip changed the model: %v vs %v", m, back)
	}
	if back.Family() != "linear" {
		t.Errorf("family = %s", back.Family())
	}
}

func TestEncodeDecodeRidgePreservesFamily(t *testing.T) {
	m, err := LinearTrainer{Ridge: 1}.Train([][]float64{{0}, {1}, {2}}, []float64{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeModel(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Family() != "ridge" {
		t.Errorf("family = %s, want ridge", back.Family())
	}
	if !m.Equal(back, 0) {
		t.Error("ridge round trip changed weights")
	}
}

func TestEncodeDecodeMLP(t *testing.T) {
	m, err := MLPTrainer{Hidden: 4, Epochs: 30, LR: 0.05, Seed: 3}.Train(
		[][]float64{{0, 1}, {1, 0}, {2, 2}, {3, 1}}, []float64{0, 1, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeModel(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(back, 0) {
		t.Error("MLP round trip changed parameters")
	}
	// Predictions identical.
	probe := []float64{1.5, 0.5}
	if m.Predict(probe) != back.Predict(probe) {
		t.Error("MLP round trip changed predictions")
	}
}

func TestDecodeModelErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"family":"quantum"}`,
		`{"family":"linear"}`,
		`{"family":"linear","linear":{"weights":[]}}`,
		`{"family":"mlp"}`,
		`{"family":"mlp","mlp":{"in_dim":2,"w1":[[1]],"b1":[0],"w2":[1],"in_mean":[0,0],"in_std":[1,1]}}`,
		`{"family":"mlp","mlp":{"in_dim":1,"w1":[[1]],"b1":[0],"w2":[1],"in_mean":[0],"in_std":[0]}}`,
	}
	for _, c := range cases {
		if _, err := DecodeModel([]byte(c)); err == nil {
			t.Errorf("DecodeModel accepted %q", c)
		}
	}
}

func TestEncodeModelUnknownFamily(t *testing.T) {
	if _, err := EncodeModel(fakeModel{}); err == nil || !strings.Contains(err.Error(), "cannot encode") {
		t.Errorf("err = %v", err)
	}
}

type fakeModel struct{}

func (fakeModel) Predict([]float64) float64 { return 0 }
func (fakeModel) Dim() int                  { return 0 }
func (fakeModel) Family() string            { return "fake" }
func (fakeModel) Equal(Model, float64) bool { return false }

// Property: linear round trips preserve predictions exactly.
func TestLinearCodecProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(4)
		slopes := make([]float64, dim)
		for i := range slopes {
			slopes[i] = rng.NormFloat64() * 10
		}
		m := NewLinear(rng.NormFloat64()*10, slopes...)
		data, err := EncodeModel(m)
		if err != nil {
			return false
		}
		back, err := DecodeModel(data)
		if err != nil {
			return false
		}
		x := make([]float64, dim)
		for i := range x {
			x[i] = rng.NormFloat64() * 5
		}
		return m.Predict(x) == back.Predict(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
