package regress

import (
	"math"
	"math/rand"
	"testing"
)

// referenceScan is the pre-optimization two-pass semantics: newest-first
// ShareTest until the first OK, then (independently) the full max fit
// fraction. The single-pass scanner must reproduce both.
func referenceScan(models []Model, x [][]float64, y []float64, rhoM float64) (idx int, res ShareResult) {
	for i := len(models) - 1; i >= 0; i-- {
		if r := ShareTest(models[i], x, y, rhoM); r.OK {
			return i, r
		}
	}
	return -1, ShareResult{}
}

func referenceIndex(models []Model, x [][]float64, y []float64, rhoM float64) float64 {
	var best float64
	for _, f := range models {
		if fr := ShareTest(f, x, y, rhoM).FitFraction; fr > best {
			best = fr
		}
	}
	return best
}

func randomPool(rng *rand.Rand, k, d int) []Model {
	pool := make([]Model, k)
	for i := range pool {
		w := make([]float64, d+1)
		for j := range w {
			w[j] = 4 * (rng.Float64() - 0.5)
		}
		pool[i] = &Linear{W: w, family: "linear"}
	}
	return pool
}

func TestShareScannerMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var sc ShareScanner
	for trial := 0; trial < 200; trial++ {
		d := 1 + rng.Intn(3)
		x, y := randomSample(rng, 3+rng.Intn(30), d)
		pool := randomPool(rng, rng.Intn(6), d)
		rhoM := 0.5 + 4*rng.Float64()

		wantIdx, wantRes := referenceScan(pool, x, y, rhoM)
		idx, res, ind, tried := sc.Scan(pool, x, y, rhoM)
		if idx != wantIdx {
			t.Fatalf("trial %d: hit index %d, want %d", trial, idx, wantIdx)
		}
		if idx >= 0 {
			if res != wantRes {
				t.Fatalf("trial %d: result %+v, want %+v", trial, res, wantRes)
			}
			if tried != len(pool)-idx {
				t.Fatalf("trial %d: tried %d, want %d (early exit)", trial, tried, len(pool)-idx)
			}
		} else {
			// On a miss the scan covered all of F, so ind is exactly Line
			// 12's sharing index.
			if want := referenceIndex(pool, x, y, rhoM); ind != want {
				t.Fatalf("trial %d: ind %v, want %v", trial, ind, want)
			}
			if tried != len(pool) {
				t.Fatalf("trial %d: tried %d, want %d", trial, tried, len(pool))
			}
		}
		if got := sc.Index(pool, x, y, rhoM); got != referenceIndex(pool, x, y, rhoM) {
			t.Fatalf("trial %d: Index %v, want %v", trial, got, referenceIndex(pool, x, y, rhoM))
		}
	}
}

func TestShareScannerEmpty(t *testing.T) {
	var sc ShareScanner
	idx, _, ind, tried := sc.Scan(nil, [][]float64{{1}}, []float64{1}, 1)
	if idx != -1 || ind != 0 || tried != 0 {
		t.Errorf("empty pool scan = %d, %v, %d", idx, ind, tried)
	}
	// An empty part shares with any model (vacuous Proposition 6).
	idx, res, _, _ := sc.Scan(randomPool(rand.New(rand.NewSource(1)), 2, 1), nil, nil, 1)
	if idx != 1 || !res.OK || res.FitFraction != 1 {
		t.Errorf("empty part scan = %d, %+v", idx, res)
	}
}

// TestShareScannerReusesBuffer pins the zero-allocation property the hot
// path relies on: repeated scans over same-size parts must not allocate.
func TestShareScannerReusesBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x, y := randomSample(rng, 64, 2)
	pool := randomPool(rng, 4, 2)
	var sc ShareScanner
	sc.Scan(pool, x, y, 0.1) // warm the buffer
	allocs := testing.AllocsPerRun(20, func() {
		sc.Scan(pool, x, y, 0.1)
	})
	if allocs > 0 {
		t.Errorf("Scan allocates %v per run after warm-up", allocs)
	}
}

func TestShareTestIntoMatchesShareTest(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	buf := make([]float64, 128)
	for trial := 0; trial < 50; trial++ {
		x, y := randomSample(rng, 1+rng.Intn(100), 2)
		f := randomPool(rng, 1, 2)[0]
		rhoM := 3 * rng.Float64()
		a := ShareTest(f, x, y, rhoM)
		b := shareTestInto(f, x, y, rhoM, buf)
		if a != b {
			t.Fatalf("trial %d: %+v vs %+v", trial, a, b)
		}
		if math.IsNaN(a.Delta0) {
			t.Fatalf("trial %d: NaN delta", trial)
		}
	}
}
