package regress

import "math"

// ShareResult is the outcome of the data-based model-sharing test of
// Algorithm 1 Line 7 / Proposition 6.
type ShareResult struct {
	// Delta0 is the residual midpoint δ0 = (max r + min r)/2, the optimal
	// output shift under the max-error criterion (Proposition 6).
	Delta0 float64
	// MaxErr is the maximum absolute error after shifting by Delta0,
	// i.e. (max r − min r)/2.
	MaxErr float64
	// OK reports whether MaxErr ≤ ρ_M, i.e. whether f can be shared on this
	// data part with built-in predicate y = δ0.
	OK bool
	// FitFraction is |{t : |t.Y − (f(t.X)+δ0)| ≤ ρ_M}| / |D_C| — the
	// ingredient of the sharing index ind(C) (Algorithm 1 Line 12).
	FitFraction float64
}

// ShareTest evaluates whether model f can be shared over the sample (x, y)
// within maximum bias rhoM, per Proposition 6: compute residuals
// rᵢ = yᵢ − f(xᵢ), the midpoint shift δ0, and check the post-shift maximum
// error. The midpoint is the *minimax-optimal* shift, so failing at δ0 means
// no shift succeeds — exactly the "only if" of the proposition.
func ShareTest(f Model, x [][]float64, y []float64, rhoM float64) ShareResult {
	if len(x) == 0 {
		return ShareResult{OK: true, FitFraction: 1}
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	res := make([]float64, len(x))
	for i, row := range x {
		r := y[i] - f.Predict(row)
		res[i] = r
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	d0 := (lo + hi) / 2
	maxErr := (hi - lo) / 2
	fit := 0
	for _, r := range res {
		if math.Abs(r-d0) <= rhoM {
			fit++
		}
	}
	return ShareResult{
		Delta0:      d0,
		MaxErr:      maxErr,
		OK:          maxErr <= rhoM,
		FitFraction: float64(fit) / float64(len(x)),
	}
}

// MaxAbsError returns max_i |yᵢ − f(xᵢ)| — the bias ρ a freshly trained
// model earns on its own data part (Algorithm 1 Lines 14–15).
func MaxAbsError(f Model, x [][]float64, y []float64) float64 {
	var m float64
	for i, row := range x {
		if d := math.Abs(y[i] - f.Predict(row)); d > m {
			m = d
		}
	}
	return m
}

// RMSE returns the root-mean-square prediction error of f on (x, y).
func RMSE(f Model, x [][]float64, y []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for i, row := range x {
		d := y[i] - f.Predict(row)
		s += d * d
	}
	return math.Sqrt(s / float64(len(x)))
}
