package regress

import "math"

// ShareResult is the outcome of the data-based model-sharing test of
// Algorithm 1 Line 7 / Proposition 6.
type ShareResult struct {
	// Delta0 is the residual midpoint δ0 = (max r + min r)/2, the optimal
	// output shift under the max-error criterion (Proposition 6).
	Delta0 float64
	// MaxErr is the maximum absolute error after shifting by Delta0,
	// i.e. (max r − min r)/2.
	MaxErr float64
	// OK reports whether MaxErr ≤ ρ_M, i.e. whether f can be shared on this
	// data part with built-in predicate y = δ0.
	OK bool
	// FitFraction is |{t : |t.Y − (f(t.X)+δ0)| ≤ ρ_M}| / |D_C| — the
	// ingredient of the sharing index ind(C) (Algorithm 1 Line 12).
	FitFraction float64
}

// ShareTest evaluates whether model f can be shared over the sample (x, y)
// within maximum bias rhoM, per Proposition 6: compute residuals
// rᵢ = yᵢ − f(xᵢ), the midpoint shift δ0, and check the post-shift maximum
// error. The midpoint is the *minimax-optimal* shift, so failing at δ0 means
// no shift succeeds — exactly the "only if" of the proposition.
func ShareTest(f Model, x [][]float64, y []float64, rhoM float64) ShareResult {
	return shareTestInto(f, x, y, rhoM, make([]float64, len(x)))
}

// shareTestInto is ShareTest over a caller-provided residual buffer (len ≥
// len(x)), so steady-state scans allocate nothing. One sweep of model
// predictions fills the buffer and the residual envelope; the fit count then
// reads the buffer back instead of predicting again.
func shareTestInto(f Model, x [][]float64, y []float64, rhoM float64, buf []float64) ShareResult {
	if len(x) == 0 {
		return ShareResult{OK: true, FitFraction: 1}
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	res := buf[:len(x)]
	for i, row := range x {
		r := y[i] - f.Predict(row)
		res[i] = r
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	d0 := (lo + hi) / 2
	maxErr := (hi - lo) / 2
	fit := 0
	for _, r := range res {
		if math.Abs(r-d0) <= rhoM {
			fit++
		}
	}
	return ShareResult{
		Delta0:      d0,
		MaxErr:      maxErr,
		OK:          maxErr <= rhoM,
		FitFraction: float64(fit) / float64(len(x)),
	}
}

// ShareScanner runs the discovery hot path's single-pass share scan: one
// sweep over the model set F computes, per model, the residual envelope
// (δ0, post-shift max error) and the fit fraction together, so Algorithm 1's
// Line-7 share test and Line-12 sharing index ind(C) come out of the same
// scan instead of two ShareTest passes over F. The scanner owns a reusable
// residual buffer, so steady-state scans do not allocate. It is not safe for
// concurrent use — give each worker its own.
type ShareScanner struct{ buf []float64 }

// Scan tries the models newest-first (the most recently learned local models
// are the likeliest to recur in neighboring parts) and stops at the first
// shareable one. It returns that model's index with its ShareResult, the
// maximum fit fraction among the models actually scanned, and their count.
// idx is -1 when no model shares; ind then ranges over the whole set and
// equals Line 12's ind(C). On a hit the scan stops early, so ind covers only
// the scanned suffix — Algorithm 1 never consumes ind on that path.
func (s *ShareScanner) Scan(models []Model, x [][]float64, y []float64, rhoM float64) (idx int, res ShareResult, ind float64, tried int) {
	if cap(s.buf) < len(x) {
		s.buf = make([]float64, len(x))
	}
	for i := len(models) - 1; i >= 0; i-- {
		r := shareTestInto(models[i], x, y, rhoM, s.buf)
		tried++
		if r.FitFraction > ind {
			ind = r.FitFraction
		}
		if r.OK {
			return i, r, ind, tried
		}
	}
	return -1, ShareResult{}, ind, tried
}

// Index computes ind(C) alone: a full scan with no early exit. The
// DisableSharing ablation still orders the condition queue by ind, so it
// needs the index without the hit test.
func (s *ShareScanner) Index(models []Model, x [][]float64, y []float64, rhoM float64) float64 {
	if cap(s.buf) < len(x) {
		s.buf = make([]float64, len(x))
	}
	var best float64
	for _, f := range models {
		if fr := shareTestInto(f, x, y, rhoM, s.buf).FitFraction; fr > best {
			best = fr
		}
	}
	return best
}

// MaxAbsError returns max_i |yᵢ − f(xᵢ)| — the bias ρ a freshly trained
// model earns on its own data part (Algorithm 1 Lines 14–15).
func MaxAbsError(f Model, x [][]float64, y []float64) float64 {
	var m float64
	for i, row := range x {
		if d := math.Abs(y[i] - f.Predict(row)); d > m {
			m = d
		}
	}
	return m
}

// RMSE returns the root-mean-square prediction error of f on (x, y).
func RMSE(f Model, x [][]float64, y []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for i, row := range x {
		d := y[i] - f.Predict(row)
		s += d * d
	}
	return math.Sqrt(s / float64(len(x)))
}
