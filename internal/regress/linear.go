package regress

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/crrlab/crr/internal/mat"
)

// Linear is an affine model f(x) = W[0] + Σ W[i+1]·x[i]. It covers both the
// paper's F1 (OLS) and F2 (ridge) fits as well as constant models (all-zero
// slopes), which express the paper's constant-target rules such as
// "Latitude = 60.10".
type Linear struct {
	W      []float64 // W[0] is the intercept, W[1:] the slopes
	family string
}

// NewLinear builds a linear model from explicit weights.
func NewLinear(intercept float64, slopes ...float64) *Linear {
	return &Linear{W: append([]float64{intercept}, slopes...), family: "linear"}
}

// NewConstant builds the constant model f(x) = c of the given width.
func NewConstant(c float64, dim int) *Linear {
	return &Linear{W: append([]float64{c}, make([]float64, dim)...), family: "linear"}
}

// Predict implements Model.
func (m *Linear) Predict(x []float64) float64 {
	if len(x) != m.Dim() {
		panic(fmt.Sprintf("regress: Linear.Predict dim %d, want %d", len(x), m.Dim()))
	}
	y := m.W[0]
	for i, v := range x {
		y += m.W[i+1] * v
	}
	return y
}

// Dim implements Model.
func (m *Linear) Dim() int { return len(m.W) - 1 }

// Family implements Model.
func (m *Linear) Family() string { return m.family }

// Equal implements Model: same family, same width, all weights within tol.
// The comparison is NaN-robust: a non-finite weight on either side (or an
// Inf−Inf difference) never compares equal — math.Abs(NaN) > tol is false,
// so the naive form would silently treat NaN weights as identical and leak
// unsound model sharing into discovery and compaction.
func (m *Linear) Equal(other Model, tol float64) bool {
	o, ok := other.(*Linear)
	if !ok || o.family != m.family || len(o.W) != len(m.W) {
		return false
	}
	for i := range m.W {
		if !(math.Abs(m.W[i]-o.W[i]) <= tol) {
			return false
		}
	}
	return true
}

// IsConstant reports whether all slopes are zero within tol.
func (m *Linear) IsConstant(tol float64) bool {
	for _, w := range m.W[1:] {
		if math.Abs(w) > tol {
			return false
		}
	}
	return true
}

// SolveTranslation implements Translatable. Two affine models are
// translations of each other exactly when their slopes agree: then
// other(X) = m(X+Δ)+δ holds for any Δ, δ with Σ aᵢΔᵢ + δ = b₀ − a₀. We
// return the canonical pure-output solution Δ = 0, δ = b₀ − a₀ (matching
// the paper's Tax example, where f5 = f4 − 230 gives y = −230).
// Non-finite weights never solve: the slope comparison is NaN-robust (see
// Equal) and a non-finite δ — e.g. from an Inf intercept — would make the
// Translation inference unsound, so it is rejected.
func (m *Linear) SolveTranslation(other Model, tol float64) (Translation, bool) {
	o, ok := other.(*Linear)
	if !ok || len(o.W) != len(m.W) {
		return Translation{}, false
	}
	for i := 1; i < len(m.W); i++ {
		if !(math.Abs(m.W[i]-o.W[i]) <= tol) {
			return Translation{}, false
		}
	}
	dy := o.W[0] - m.W[0]
	if math.IsNaN(dy) || math.IsInf(dy, 0) {
		return Translation{}, false
	}
	return Translation{DeltaY: dy}, true
}

// String renders the model equation.
func (m *Linear) String() string {
	var b strings.Builder
	b.WriteString(m.family)
	b.WriteString("(")
	b.WriteString(strconv.FormatFloat(m.W[0], 'g', 6, 64))
	for i, w := range m.W[1:] {
		fmt.Fprintf(&b, "%+s·x%d", strconv.FormatFloat(w, 'g', 6, 64), i)
	}
	b.WriteString(")")
	return b.String()
}

// LinearTrainer fits affine models by least squares; Ridge > 0 selects the
// F2 ridge-regression family, Ridge == 0 the F1 OLS family.
type LinearTrainer struct {
	Ridge float64
}

// Name implements Trainer.
func (t LinearTrainer) Name() string {
	if t.Ridge > 0 {
		return "F2"
	}
	return "F1"
}

// Train implements Trainer. Samples smaller than the parameter count still
// fit thanks to the jittered normal-equation solve — the paper's edge case
// where "any tuple (the smallest data part) could learn a regression model".
func (t LinearTrainer) Train(x [][]float64, y []float64) (Model, error) {
	dim, err := validateSample(x, y)
	if err != nil {
		return nil, err
	}
	family := "linear"
	if t.Ridge > 0 {
		family = "ridge"
	}
	if dim == 0 {
		// No features: the best max-bias constant is the residual midpoint.
		lo, hi := minMax(y)
		return &Linear{W: []float64{(lo + hi) / 2}, family: family}, nil
	}
	design := mat.NewDense(len(x), dim+1)
	for i, row := range x {
		design.Set(i, 0, 1)
		copy(design.Row(i)[1:], row)
	}
	w, err := mat.LeastSquares(design, y, t.Ridge)
	if err != nil {
		return nil, fmt.Errorf("regress: linear fit: %w", err)
	}
	return &Linear{W: w, family: family}, nil
}

// TrainGram implements GramTrainer: the O(d³) normal-equation solve from
// sufficient statistics, skipping the O(n·d²) design pass. The solved system
// is exactly the one Train assembles — (XᵀX + λI) w = Xᵀy over the
// intercept-augmented design — so when the Gram was accumulated in row order
// the result is bitwise identical to the full pass. Degenerate widths and
// singular systems return an error (ErrGramUnsupported, mat.ErrSingular):
// those cases need the design matrix (midpoint constant, QR, jitter), so the
// caller must fall back to Train.
func (t LinearTrainer) TrainGram(g *Gram) (Model, error) {
	if g == nil || g.N == 0 || g.Dim() == 0 {
		// Train fits width-0 samples with the minimax midpoint, not the mean
		// the normal equations would give; only the full pass knows min/max.
		return nil, ErrGramUnsupported
	}
	if g.N <= g.Dim() {
		// Underdetermined: the true Gram matrix is singular, but a Gram
		// derived by subtraction (sibling = parent − child) carries
		// cancellation noise that can slip past Cholesky and yield garbage
		// weights. Only the full pass (QR / jitter over the design matrix)
		// handles these parts correctly.
		return nil, ErrGramUnsupported
	}
	a := g.XtX.Clone()
	if t.Ridge > 0 {
		if err := mat.AddDiag(a, t.Ridge); err != nil {
			return nil, err
		}
	}
	w, err := mat.SolveSPD(a, g.XtY)
	if err != nil {
		return nil, err
	}
	family := "linear"
	if t.Ridge > 0 {
		family = "ridge"
	}
	return &Linear{W: w, family: family}, nil
}

func minMax(v []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
