package regress

import (
	"math"
	"testing"
)

// Non-finite model parameters must never compare as "equal" or produce a
// translation: math.Abs(NaN) > tol is false, so a naively written tolerance
// comparison silently treats NaN weights as matching everything.

func TestLinearEqualNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name string
		a, b *Linear
		tol  float64
		want bool
	}{
		{"identical", NewLinear(1, 2), NewLinear(1, 2), 0, true},
		{"within-tol", NewLinear(1, 2), NewLinear(1+1e-9, 2), 1e-6, true},
		{"outside-tol", NewLinear(1, 2), NewLinear(1.1, 2), 1e-6, false},
		{"nan-intercept-left", NewLinear(nan, 2), NewLinear(1, 2), 1e-6, false},
		{"nan-intercept-right", NewLinear(1, 2), NewLinear(nan, 2), 1e-6, false},
		{"nan-both", NewLinear(nan, 2), NewLinear(nan, 2), 1e-6, false},
		{"nan-slope", NewLinear(1, nan), NewLinear(1, 2), 1e-6, false},
		{"inf-intercept", NewLinear(inf, 2), NewLinear(1, 2), 1e-6, false},
		{"inf-both", NewLinear(inf, 2), NewLinear(inf, 2), 1e-6, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.Equal(tc.b, tc.tol); got != tc.want {
				t.Errorf("Equal(%v, %v, %g) = %v, want %v", tc.a, tc.b, tc.tol, got, tc.want)
			}
		})
	}
}

func TestSolveTranslationNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name  string
		pivot *Linear
		other *Linear
		ok    bool
		dy    float64
	}{
		{"plain-shift", NewLinear(1, 2), NewLinear(4, 2), true, 3},
		{"slope-mismatch", NewLinear(1, 2), NewLinear(4, 3), false, 0},
		{"nan-pivot-intercept", NewLinear(nan, 2), NewLinear(4, 2), false, 0},
		{"nan-other-intercept", NewLinear(1, 2), NewLinear(nan, 2), false, 0},
		{"nan-slope", NewLinear(1, nan), NewLinear(4, nan), false, 0},
		{"inf-intercept", NewLinear(inf, 2), NewLinear(4, 2), false, 0},
		{"both-inf-intercepts", NewLinear(inf, 2), NewLinear(inf, 2), false, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr, ok := tc.pivot.SolveTranslation(tc.other, 1e-6)
			if ok != tc.ok {
				t.Fatalf("SolveTranslation ok = %v, want %v (tr %+v)", ok, tc.ok, tr)
			}
			if ok && tr.DeltaY != tc.dy {
				t.Errorf("DeltaY = %g, want %g", tr.DeltaY, tc.dy)
			}
			if ok && (math.IsNaN(tr.DeltaY) || math.IsInf(tr.DeltaY, 0)) {
				t.Errorf("accepted translation carries non-finite δ: %+v", tr)
			}
		})
	}
}
