package regress

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func randomSample(rng *rand.Rand, n, d int) ([][]float64, []float64) {
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, d)
		for j := range row {
			row[j] = 20 * (rng.Float64() - 0.5)
		}
		x[i] = row
		y[i] = 3 + rng.NormFloat64()
		for j, v := range row {
			y[i] += float64(j+1) * v
		}
	}
	return x, y
}

func gramOf(x [][]float64, y []float64, d int) *Gram {
	g := NewGram(d)
	for i, row := range x {
		g.Add(row, y[i])
	}
	return g
}

// TestTrainGramMatchesTrain is the fast-path property test: on random
// well-conditioned parts, the O(d³) sufficient-statistics solve must agree
// with the full design-matrix pass within 1e-9 — for OLS and ridge alike.
func TestTrainGramMatchesTrain(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, trainer := range []LinearTrainer{{}, {Ridge: 0.25}} {
		for trial := 0; trial < 50; trial++ {
			n := 5 + rng.Intn(60)
			d := 1 + rng.Intn(4)
			x, y := randomSample(rng, n, d)

			full, err := trainer.Train(x, y)
			if err != nil {
				t.Fatalf("Train: %v", err)
			}
			fast, err := trainer.TrainGram(gramOf(x, y, d))
			if err != nil {
				t.Fatalf("TrainGram: %v", err)
			}
			fw, gw := full.(*Linear).W, fast.(*Linear).W
			for i := range fw {
				if math.Abs(fw[i]-gw[i]) > 1e-9 {
					t.Fatalf("trainer %s trial %d: weight %d differs: full %v fast %v",
						trainer.Name(), trial, i, fw[i], gw[i])
				}
			}
			if full.Family() != fast.Family() {
				t.Fatalf("family mismatch: %s vs %s", full.Family(), fast.Family())
			}
		}
	}
}

// TestGramRowOrderBitwiseIdentical pins the stronger claim the discovery
// engine relies on for byte-identical output: a Gram accumulated in row
// order yields *bitwise* the same weights as Train on the same rows.
func TestGramRowOrderBitwiseIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	trainer := LinearTrainer{}
	for trial := 0; trial < 20; trial++ {
		x, y := randomSample(rng, 30, 3)
		full, err := trainer.Train(x, y)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := trainer.TrainGram(gramOf(x, y, 3))
		if err != nil {
			t.Fatal(err)
		}
		fw, gw := full.(*Linear).W, fast.(*Linear).W
		for i := range fw {
			if fw[i] != gw[i] {
				t.Fatalf("trial %d: weight %d not bitwise equal: %v vs %v", trial, i, fw[i], gw[i])
			}
		}
	}
}

// TestGramSubSibling checks the parent − child derivation: subtracting one
// child's statistics from the parent's must match the directly accumulated
// sibling within floating-point cancellation tolerance, and a model trained
// from the derived statistics must stay within 1e-9 of the full pass.
func TestGramSubSibling(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	trainer := LinearTrainer{}
	for trial := 0; trial < 30; trial++ {
		n, d := 40+rng.Intn(40), 1+rng.Intn(3)
		x, y := randomSample(rng, n, d)
		// Both sides stay comfortably overdetermined; tiny siblings are
		// rejected by TrainGram (see TestTrainGramUnderdetermined) and served
		// by the full pass instead.
		margin := d + 5
		cut := margin + rng.Intn(n-2*margin)

		parent := gramOf(x, y, d)
		child := gramOf(x[:cut], y[:cut], d)
		derived := parent.Clone()
		derived.Sub(child)

		direct := gramOf(x[cut:], y[cut:], d)
		if derived.N != direct.N {
			t.Fatalf("N = %d, want %d", derived.N, direct.N)
		}
		fromDerived, err := trainer.TrainGram(derived)
		if err != nil {
			t.Fatalf("TrainGram(derived): %v", err)
		}
		full, err := trainer.Train(x[cut:], y[cut:])
		if err != nil {
			t.Fatal(err)
		}
		fw, dw := full.(*Linear).W, fromDerived.(*Linear).W
		for i := range fw {
			if math.Abs(fw[i]-dw[i]) > 1e-9 {
				t.Fatalf("trial %d: derived sibling weight %d drifted: %v vs %v", trial, i, fw[i], dw[i])
			}
		}
	}
}

func TestGramSubWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sub across widths did not panic")
		}
	}()
	NewGram(2).Sub(NewGram(3))
}

func TestTrainGramDegenerate(t *testing.T) {
	trainer := LinearTrainer{}
	if _, err := trainer.TrainGram(nil); !errors.Is(err, ErrGramUnsupported) {
		t.Errorf("nil gram err = %v", err)
	}
	if _, err := trainer.TrainGram(NewGram(2)); !errors.Is(err, ErrGramUnsupported) {
		t.Errorf("empty gram err = %v", err)
	}
	if _, err := trainer.TrainGram(gramOf([][]float64{{}, {}}, []float64{1, 2}, 0)); !errors.Is(err, ErrGramUnsupported) {
		t.Errorf("width-0 gram err = %v (the minimax constant needs the full pass)", err)
	}
	// A rank-deficient part (duplicate rows) must error so the caller falls
	// back to the design-matrix QR/jitter path instead of a bogus solve.
	x := [][]float64{{1, 2}, {1, 2}, {1, 2}, {1, 2}}
	y := []float64{1, 2, 3, 4}
	if _, err := trainer.TrainGram(gramOf(x, y, 2)); err == nil {
		t.Error("singular gram did not error")
	}
}

// TestTrainGramUnderdetermined pins the guard against tiny parts: with
// fewer rows than parameters the true Gram matrix is singular, and a
// subtraction-derived Gram could pass Cholesky on cancellation noise alone,
// so TrainGram must refuse and leave these parts to the full pass.
func TestTrainGramUnderdetermined(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := randomSample(rng, 2, 2) // 2 rows, 3 parameters
	if _, err := (LinearTrainer{}).TrainGram(gramOf(x, y, 2)); !errors.Is(err, ErrGramUnsupported) {
		t.Errorf("underdetermined gram err = %v, want ErrGramUnsupported", err)
	}
}

// TestFullPassWrapper pins that FullPass hides the fast path: it trains
// identically but does not satisfy GramTrainer, which is what the
// before/after comparison mode relies on.
func TestFullPassWrapper(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := randomSample(rng, 25, 2)
	wrapped := FullPass{T: LinearTrainer{}}
	if _, ok := interface{}(wrapped).(GramTrainer); ok {
		t.Fatal("FullPass must not implement GramTrainer")
	}
	if wrapped.Name() != (LinearTrainer{}).Name() {
		t.Errorf("Name = %q", wrapped.Name())
	}
	a, err := wrapped.Train(x, y)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LinearTrainer{}.Train(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b, 0) {
		t.Error("FullPass changed the fit")
	}
}
