package regress

import (
	"math/rand"
	"testing"
)

func cvData(n int, noise float64, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		v := rng.Float64() * 10
		x[i] = []float64{v}
		y[i] = 3*v + 1 + noise*rng.NormFloat64()
	}
	return x, y
}

func TestCrossValidateNearNoiseLevel(t *testing.T) {
	x, y := cvData(200, 0.5, 1)
	score, err := CrossValidate(LinearTrainer{}, x, y, 5)
	if err != nil {
		t.Fatalf("CrossValidate: %v", err)
	}
	if score < 0.3 || score > 0.8 {
		t.Errorf("CV RMSE = %v, want near the noise level 0.5", score)
	}
}

func TestCrossValidateErrors(t *testing.T) {
	x, y := cvData(10, 0.1, 2)
	if _, err := CrossValidate(LinearTrainer{}, x, y, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := CrossValidate(LinearTrainer{}, nil, nil, 5); err == nil {
		t.Error("empty sample accepted")
	}
	// k > n clamps rather than failing.
	if _, err := CrossValidate(LinearTrainer{}, x[:3], y[:3], 10); err != nil {
		t.Errorf("k > n: %v", err)
	}
}

func TestSelectRidgePrefersOLSOnCleanData(t *testing.T) {
	x, y := cvData(300, 0.1, 3)
	trainer, score, err := SelectRidge(x, y, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if trainer.Ridge > 1 {
		t.Errorf("clean linear data selected λ = %v, want small", trainer.Ridge)
	}
	if score > 0.3 {
		t.Errorf("winning CV score = %v", score)
	}
}

func TestSelectRidgeShrinksOnTinyNoisySample(t *testing.T) {
	// With p ≈ n and heavy noise, some ridge beats OLS on held-out folds.
	rng := rand.New(rand.NewSource(4))
	n := 12
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		y[i] = x[i][0] + 5*rng.NormFloat64()
	}
	trainer, _, err := SelectRidge(x, y, []float64{0, 10, 1000}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if trainer.Ridge == 0 {
		t.Error("tiny noisy sample selected plain OLS over any ridge")
	}
}

func TestSelectRidgeCustomCandidates(t *testing.T) {
	x, y := cvData(100, 0.2, 5)
	trainer, _, err := SelectRidge(x, y, []float64{7}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if trainer.Ridge != 7 {
		t.Errorf("single-candidate selection returned λ = %v", trainer.Ridge)
	}
}
