// Package regress implements the regression substrate of CRR discovery: the
// basic model families the paper selects (§VI-A3) — F1 linear regression, F2
// ridge regression, F3 multi-layer perceptron — together with the translation
// solver behind the Translation inference (Proposition 5) and the data-based
// δ0 sharing test (Proposition 6).
package regress

import "errors"

// Model is a trained regression function f : X → Y over a fixed-width
// feature vector.
type Model interface {
	// Predict evaluates f(x). It panics if len(x) differs from Dim().
	Predict(x []float64) float64
	// Dim returns the expected feature-vector width.
	Dim() int
	// Family returns the model family name ("linear", "ridge", "mlp").
	Family() string
	// Equal reports whether the other model has identical family and
	// parameters within tol (used by rule fusion, which requires f = f').
	Equal(other Model, tol float64) bool
}

// Trainer fits a Model to a design matrix.
type Trainer interface {
	// Train fits a model on rows x (each of equal width) and targets y.
	Train(x [][]float64, y []float64) (Model, error)
	// Name returns the paper's identifier for the family (F1, F2, F3).
	Name() string
}

// GramTrainer is implemented by trainers that can fit from sufficient
// statistics alone (XᵀX, Xᵀy, yᵀy), enabling the discovery engine's O(d³)
// stat-reuse fast path: parts whose Gram was accumulated during split
// filtering train without another pass over their rows. TrainGram returns
// an error (typically ErrGramUnsupported or mat.ErrSingular) when the
// statistics cannot serve the fit; callers then fall back to Train.
type GramTrainer interface {
	Trainer
	// TrainGram fits a model from sufficient statistics.
	TrainGram(g *Gram) (Model, error)
}

// FullPass wraps a trainer so that engines cannot reach a sufficient-
// statistics fast path through it: the wrapper deliberately does not
// implement GramTrainer. It is the reference configuration for before/after
// benchmarking (crrbench -compare) and for cross-checking the fast path in
// tests.
type FullPass struct{ T Trainer }

// Train implements Trainer by delegating.
func (f FullPass) Train(x [][]float64, y []float64) (Model, error) { return f.T.Train(x, y) }

// Name implements Trainer by delegating.
func (f FullPass) Name() string { return f.T.Name() }

// ErrNoData is returned when Train receives an empty sample.
var ErrNoData = errors.New("regress: empty training sample")

// ErrBadSample is returned when the design matrix is ragged or the target
// length differs from the row count.
var ErrBadSample = errors.New("regress: malformed training sample")

// Translation is the (Δ, δ) pair of Proposition 5: to(X) = from(X+Δ) + δ.
type Translation struct {
	DeltaX []float64 // per-feature input shift Δ
	DeltaY float64   // output shift δ
}

// IsPureY reports whether the translation shifts only the output.
func (tr Translation) IsPureY() bool {
	for _, d := range tr.DeltaX {
		if d != 0 {
			return false
		}
	}
	return true
}

// Translatable is implemented by model families that can solve the
// Translation equation f2(X) = f1(X+Δ)+δ in closed form (linear families).
type Translatable interface {
	// SolveTranslation returns Δ, δ with other(X) = m(X+Δ)+δ when the two
	// models are translations of each other within tol; ok is false
	// otherwise.
	SolveTranslation(other Model, tol float64) (Translation, bool)
}

// PredictShifted evaluates f(x + Δ) + δ, the shifted application a CRR's
// built-in predicates prescribe (§III-A3). A nil DeltaX means Δ = 0.
func PredictShifted(m Model, x []float64, tr Translation) float64 {
	if len(tr.DeltaX) == 0 {
		return m.Predict(x) + tr.DeltaY
	}
	shifted := make([]float64, len(x))
	for i, v := range x {
		d := 0.0
		if i < len(tr.DeltaX) {
			d = tr.DeltaX[i]
		}
		shifted[i] = v + d
	}
	return m.Predict(shifted) + tr.DeltaY
}

func validateSample(x [][]float64, y []float64) (dim int, err error) {
	if len(x) == 0 {
		return 0, ErrNoData
	}
	if len(x) != len(y) {
		return 0, ErrBadSample
	}
	dim = len(x[0])
	for _, row := range x {
		if len(row) != dim {
			return 0, ErrBadSample
		}
	}
	return dim, nil
}
