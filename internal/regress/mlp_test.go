package regress

import (
	"errors"
	"math"
	"testing"
)

func TestMLPLearnsLinearFunction(t *testing.T) {
	tr := NewMLPTrainer(1)
	var x [][]float64
	var y []float64
	for i := 0; i < 60; i++ {
		v := float64(i) / 10
		x = append(x, []float64{v})
		y = append(y, 2*v+1)
	}
	m, err := tr.Train(x, y)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if m.Family() != "mlp" || m.Dim() != 1 {
		t.Fatalf("Family/Dim = %s/%d", m.Family(), m.Dim())
	}
	if r := RMSE(m, x, y); r > 0.25 {
		t.Errorf("MLP train RMSE = %v, want < 0.25", r)
	}
	if tr.Name() != "F3" {
		t.Errorf("Name = %s", tr.Name())
	}
}

func TestMLPLearnsNonlinear(t *testing.T) {
	tr := MLPTrainer{Hidden: 12, Epochs: 800, LR: 0.02, Seed: 2}
	var x [][]float64
	var y []float64
	for i := 0; i < 80; i++ {
		v := float64(i)/40 - 1 // [-1, 1)
		x = append(x, []float64{v})
		y = append(y, v*v)
	}
	m, err := tr.Train(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if r := RMSE(m, x, y); r > 0.1 {
		t.Errorf("MLP nonlinear RMSE = %v, want < 0.1", r)
	}
}

func TestMLPDeterministicForSeed(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{0, 1, 2, 3}
	a, err := NewMLPTrainer(5).Train(x, y)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMLPTrainer(5).Train(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b, 0) {
		t.Error("same-seed trainings differ")
	}
	c, err := NewMLPTrainer(6).Train(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(c, 1e-12) {
		t.Error("different seeds produced identical networks")
	}
}

func TestMLPPredictPanicsOnDim(t *testing.T) {
	m, err := NewMLPTrainer(1).Train([][]float64{{1, 2}}, []float64{3})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dim mismatch")
		}
	}()
	m.Predict([]float64{1})
}

func TestMLPTrainErrors(t *testing.T) {
	if _, err := NewMLPTrainer(1).Train(nil, nil); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v, want ErrNoData", err)
	}
	if _, err := NewMLPTrainer(1).Train([][]float64{{1}}, []float64{1, 2}); !errors.Is(err, ErrBadSample) {
		t.Errorf("err = %v, want ErrBadSample", err)
	}
}

func TestMLPNotTranslatable(t *testing.T) {
	m, err := NewMLPTrainer(1).Train([][]float64{{0}, {1}}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := Model(m).(Translatable); ok {
		t.Error("MLP must not implement Translatable (F3 supports only y=δ sharing)")
	}
}

func TestMLPEqualDifferentShapes(t *testing.T) {
	a, _ := NewMLPTrainer(1).Train([][]float64{{0}, {1}}, []float64{0, 1})
	b, _ := MLPTrainer{Hidden: 4, Epochs: 10, LR: 0.01, Seed: 1}.Train([][]float64{{0}, {1}}, []float64{0, 1})
	if a.Equal(b, 1e9) {
		t.Error("different hidden sizes compare equal")
	}
	lin := NewLinear(0, 1)
	if a.Equal(lin, 1e9) {
		t.Error("MLP equal to linear")
	}
}

func TestMLPConstantFeature(t *testing.T) {
	// A zero-variance feature must not produce NaNs (std clamps to 1).
	x := [][]float64{{5, 0}, {5, 1}, {5, 2}, {5, 3}}
	y := []float64{0, 1, 2, 3}
	m, err := NewMLPTrainer(3).Train(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range x {
		if math.IsNaN(m.Predict(row)) {
			t.Fatal("NaN prediction with constant feature")
		}
	}
}
