package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// testScale shrinks the paper's sizes so the whole suite stays fast; shape
// assertions below hold at this scale and at 1.0.
const testScale = 0.1

// rowsBy indexes rows by method name prefix.
func rowsBy(rows []Row, methodPrefix string) []Row {
	var out []Row
	for _, r := range rows {
		if strings.HasPrefix(r.Method, methodPrefix) {
			out = append(out, r)
		}
	}
	return out
}

func TestRegistryCoversEveryArtifact(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Registry() {
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
		if e.Run == nil || e.Artifact == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	// Every evaluation artifact of the paper must be present.
	for _, want := range []string{"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "tab3", "tab4"} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("fig2"); err != nil {
		t.Errorf("Lookup(fig2): %v", err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup accepted an unknown id")
	}
}

func TestFig2Shapes(t *testing.T) {
	rows, err := Fig2AirQuality(context.Background(), testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*9 {
		t.Fatalf("rows = %d, want 36 (4 sizes × 9 methods)", len(rows))
	}
	// At the largest size, CRR uses fewer rules than the rule-per-partition
	// baselines and lands at competitive RMSE vs RegTree.
	last := rows[len(rows)-9:]
	var crr, tree, forest Row
	for _, r := range last {
		switch r.Method {
		case "CRR":
			crr = r
		case "RegTree":
			tree = r
		case "Forest":
			forest = r
		}
	}
	if crr.Rules >= tree.Rules || crr.Rules >= forest.Rules {
		t.Errorf("CRR rules %d not below RegTree %d / Forest %d", crr.Rules, tree.Rules, forest.Rules)
	}
	if crr.RMSE > 2*tree.RMSE+1 {
		t.Errorf("CRR RMSE %v far above RegTree %v", crr.RMSE, tree.RMSE)
	}
}

func TestFig4TaxShapes(t *testing.T) {
	rows, err := Fig4Tax(context.Background(), testScale)
	if err != nil {
		t.Fatal(err)
	}
	// CRR must dominate on the relational dataset: the state-conditional
	// formulas are exactly CRR's hypothesis class.
	for _, size := range []float64{rows[0].Value, rows[len(rows)-1].Value} {
		var crr, samp Row
		for _, r := range rows {
			if r.Value != size {
				continue
			}
			switch r.Method {
			case "CRR":
				crr = r
			case "SampLR":
				samp = r
			}
		}
		if crr.RMSE >= samp.RMSE {
			t.Errorf("size %v: CRR RMSE %v not below SampLR %v", size, crr.RMSE, samp.RMSE)
		}
	}
}

func TestFig5CRRBeatsRR(t *testing.T) {
	rows, err := Fig5InstanceScalability(context.Background(), testScale)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 5's core claim: conditions beat a single unconditioned model.
	// Compare per family at the largest size.
	lastValue := rows[len(rows)-1].Value
	for _, fam := range []string{"F1", "F3"} {
		var crr, rr Row
		for _, r := range rows {
			if r.Value != lastValue {
				continue
			}
			if r.Method == "CRR-"+fam {
				crr = r
			}
			if r.Method == "RR-"+fam {
				rr = r
			}
		}
		if crr.RMSE >= rr.RMSE {
			t.Errorf("%s: CRR RMSE %v not below RR %v", fam, crr.RMSE, rr.RMSE)
		}
	}
}

func TestFig6MorePredicatesLowerRMSE(t *testing.T) {
	rows, err := Fig6PredicateScalability(context.Background(), testScale)
	if err != nil {
		t.Fatal(err)
	}
	f1 := rowsBy(rows, "CRR-F1")
	if len(f1) < 3 {
		t.Fatalf("F1 rows = %d", len(f1))
	}
	first, last := f1[0], f1[len(f1)-1]
	if last.RMSE >= first.RMSE {
		t.Errorf("RMSE did not improve with predicates: %v → %v", first.RMSE, last.RMSE)
	}
}

func TestFig8UShapeEndpointsWorse(t *testing.T) {
	rows, err := Fig8BiasSensitivity(context.Background(), testScale)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's observation: very large ρ_M hurts (sloppy models accepted).
	abalone := make(map[float64]Row)
	for _, r := range rows {
		if r.Dataset == "Abalone" {
			abalone[r.Value] = r
		}
	}
	if abalone[5].RMSE <= abalone[0.5].RMSE {
		t.Errorf("ρ_M=5 RMSE %v not above ρ_M=0.5 RMSE %v", abalone[5].RMSE, abalone[0.5].RMSE)
	}
}

func TestTable3AllGeneratorsCoverAndFit(t *testing.T) {
	rows, err := Table3PredicateGenerators(context.Background(), testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 (2 datasets × 3 generators)", len(rows))
	}
	for _, r := range rows {
		if r.Rules == 0 {
			t.Errorf("%s/%s produced no rules", r.Dataset, r.Method)
		}
	}
}

func TestTable4AllOrdersAgreeOnQuality(t *testing.T) {
	rows, err := Table4ConjunctionOrdering(context.Background(), testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Ordering affects time, not validity: every order must land near the
	// same RMSE per dataset (within a generous factor).
	byDS := map[string][]Row{}
	for _, r := range rows {
		byDS[r.Dataset] = append(byDS[r.Dataset], r)
	}
	for ds, rs := range byDS {
		lo, hi := rs[0].RMSE, rs[0].RMSE
		for _, r := range rs {
			if r.RMSE < lo {
				lo = r.RMSE
			}
			if r.RMSE > hi {
				hi = r.RMSE
			}
		}
		if hi > 3*lo+0.5 {
			t.Errorf("%s: ordering changed RMSE too much: [%v, %v]", ds, lo, hi)
		}
	}
}

func TestFig9CompactionReducesLinearTrees(t *testing.T) {
	rows, err := Fig9RuleCompaction(context.Background(), testScale)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Row{}
	for _, r := range rows {
		byKey[r.Dataset+"/"+r.Method] = r
	}
	for _, ds := range []string{"BirdMap", "Abalone"} {
		for _, fam := range []string{"F1", "F2"} { // F3 cannot translate (MLP)
			tree := byKey[ds+"/RegTree-"+fam]
			comp := byKey[ds+"/RegTree+Compact-"+fam]
			if comp.Rules > tree.Rules {
				t.Errorf("%s/%s: compaction grew rules %d → %d", ds, fam, tree.Rules, comp.Rules)
			}
			if tree.Rules > 8 && comp.Rules >= tree.Rules {
				t.Errorf("%s/%s: compaction did not reduce a %d-leaf tree", ds, fam, tree.Rules)
			}
		}
	}
}

func TestFig10CompactionKeepsRMSE(t *testing.T) {
	rows, err := Fig10Imputation(context.Background(), testScale)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Row{}
	for _, r := range rows {
		byKey[r.Dataset+"/"+r.Method] = r
	}
	for _, ds := range []string{"BirdMap", "Abalone"} {
		for _, fam := range []string{"F1", "F2", "F3"} {
			tree := byKey[ds+"/RegTree-"+fam]
			comp := byKey[ds+"/RegTree+Compact-"+fam]
			if comp.Rules > tree.Rules {
				t.Errorf("%s/%s: compacted rules %d > tree rules %d", ds, fam, comp.Rules, tree.Rules)
			}
			// "The imputation RMSE is somewhat comparable": allow drift from
			// tolerant translation but not collapse.
			if comp.RMSE > 3*tree.RMSE+1 {
				t.Errorf("%s/%s: compaction destroyed imputation RMSE: %v vs %v", ds, fam, comp.RMSE, tree.RMSE)
			}
		}
	}
}

func TestAblationSharingTrainsFewerModels(t *testing.T) {
	spec := ElectricitySpec()
	rel := spec.Gen(4000)
	on := crrFor(spec)
	if err := on.Fit(rel, spec.XAttrs, spec.YAttr); err != nil {
		t.Fatal(err)
	}
	off := crrFor(spec)
	off.DisableSharing = true
	if err := off.Fit(rel, spec.XAttrs, spec.YAttr); err != nil {
		t.Fatal(err)
	}
	if off.Stats().ShareHits != 0 {
		t.Error("sharing-off still shared")
	}
	if on.Stats().ShareHits == 0 {
		t.Error("sharing-on never shared on a recurring-regime dataset")
	}
	if on.Stats().ModelsTrained > off.Stats().ModelsTrained {
		t.Errorf("sharing increased trained models: %d vs %d",
			on.Stats().ModelsTrained, off.Stats().ModelsTrained)
	}
}

func TestAblationDelta0MidpointAtLeastLS(t *testing.T) {
	rows, err := AblationDelta0(context.Background(), testScale)
	if err != nil {
		t.Fatal(err)
	}
	byDS := map[string]map[string]int{}
	for _, r := range rows {
		if byDS[r.Dataset] == nil {
			byDS[r.Dataset] = map[string]int{}
		}
		byDS[r.Dataset][r.Method] = r.Rules
	}
	for ds, m := range byDS {
		if m["midpoint-δ0"] < m["least-squares-δ"] {
			t.Errorf("%s: midpoint accepts %d < LS accepts %d — contradicts Proposition 6 optimality",
				ds, m["midpoint-δ0"], m["least-squares-δ"])
		}
	}
}

func TestCRRMethodAccessors(t *testing.T) {
	spec := AbaloneSpec()
	rel := spec.Gen(600)
	m := crrFor(spec)
	if m.Name() != "CRR" {
		t.Errorf("Name = %s", m.Name())
	}
	if _, ok := m.Predict(rel.Tuples[0]); ok {
		t.Error("Predict before Fit succeeded")
	}
	if m.NumRules() != 0 {
		t.Error("NumRules before Fit")
	}
	if err := m.Fit(rel, spec.XAttrs, spec.YAttr); err != nil {
		t.Fatal(err)
	}
	if m.NumRules() == 0 || m.Rules() == nil {
		t.Error("no rules after Fit")
	}
	if _, ok := m.Predict(rel.Tuples[0]); !ok {
		t.Error("Predict after Fit failed on a training tuple")
	}
}

func TestRRMethod(t *testing.T) {
	spec := AbaloneSpec()
	rel := spec.Gen(600)
	m := &RRMethod{}
	if err := m.Fit(rel, spec.XAttrs, spec.YAttr); err != nil {
		t.Fatal(err)
	}
	if m.Name() != "RR" || m.NumRules() != 1 {
		t.Errorf("Name/NumRules = %s/%d", m.Name(), m.NumRules())
	}
	if _, ok := m.Predict(rel.Tuples[0]); !ok {
		t.Error("RR Predict failed")
	}
}

func TestSplitInterleaved(t *testing.T) {
	spec := AbaloneSpec()
	rel := spec.Gen(100)
	train, test := splitInterleaved(rel, 5)
	if train.Len() != 80 || test.Len() != 20 {
		t.Errorf("split = %d/%d, want 80/20", train.Len(), test.Len())
	}
}

func TestRenderRows(t *testing.T) {
	rows := []Row{{Experiment: "x", Dataset: "D", Method: "M", Param: "size", Value: 10, RMSE: 0.5, Rules: 3}}
	var buf bytes.Buffer
	if err := RenderRows(&buf, "Title", rows); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Title", "D", "M", "0.5", "3"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestScaledHelper(t *testing.T) {
	if scaled(1000, 0.5, 10) != 500 {
		t.Error("scaled(1000, 0.5) != 500")
	}
	if scaled(1000, 0.001, 100) != 100 {
		t.Error("scaled floor not applied")
	}
	if scaled(1000, 0, 10) != 1000 {
		t.Error("scale 0 should mean full size")
	}
	if scaled(1000, 7, 10) != 1000 {
		t.Error("scale > 1 should clamp to full size")
	}
}

func TestFig3ElectricityShapes(t *testing.T) {
	rows, err := Fig3Electricity(context.Background(), testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*9 {
		t.Fatalf("rows = %d, want 36", len(rows))
	}
	// CRR compresses the few daily regimes into very few rules at every size.
	for _, r := range rows {
		if r.Method == "CRR" && r.Rules > 10 {
			t.Errorf("size %v: CRR rules = %d, want few", r.Value, r.Rules)
		}
	}
}

func TestFig7ColumnShapes(t *testing.T) {
	rows, err := Fig7ColumnScalability(context.Background(), testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Learning time grows with the number of target columns.
	if rows[len(rows)-1].Learn <= rows[0].Learn {
		t.Errorf("total learn time did not grow: %v → %v", rows[0].Learn, rows[len(rows)-1].Learn)
	}
}

func TestAblationRegistryRunsAll(t *testing.T) {
	for _, id := range []string{"ablation-sharing", "ablation-fuse", "ablation-prune"} {
		e, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := e.Run(context.Background(), testScale)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rows) == 0 {
			t.Errorf("%s produced no rows", id)
		}
	}
}

func TestWriteRowsCSV(t *testing.T) {
	rows := []Row{{Experiment: "x", Dataset: "D", Method: "M", Param: "size", Value: 10, RMSE: 0.5, Rules: 3}}
	var buf bytes.Buffer
	if err := WriteRowsCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "experiment,dataset,method") {
		t.Errorf("missing header: %q", out)
	}
	if !strings.Contains(out, "x,D,M,size,10,0,0,0.5,3,0,0,0") {
		t.Errorf("row not rendered: %q", out)
	}
}

func TestDefaultCondAttrs(t *testing.T) {
	spec := TaxSpec()
	rel := spec.Gen(50)
	got := defaultCondAttrs(rel.Schema, []int{0}, 4)
	// Salary (x) plus every categorical column (State, MaritalStatus, City),
	// never Tax (y=4).
	want := map[int]bool{0: true, 1: true, 2: true, 12: true}
	if len(got) != len(want) {
		t.Fatalf("cond attrs = %v", got)
	}
	for _, a := range got {
		if !want[a] {
			t.Errorf("unexpected cond attr %d", a)
		}
	}
}

func TestExtraExperiments(t *testing.T) {
	for _, id := range []string{"extra-birdmap", "extra-abalone"} {
		e, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := e.Run(context.Background(), testScale)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		// CRR stays the fewest-rules conditional method at the largest size.
		last := rows[len(rows)-1].Value
		var crr, tree Row
		for _, r := range rows {
			if r.Value != last {
				continue
			}
			switch r.Method {
			case "CRR":
				crr = r
			case "RegTree":
				tree = r
			}
		}
		if crr.Rules == 0 || tree.Rules == 0 {
			t.Fatalf("%s: missing methods in rows", id)
		}
		if crr.Rules > tree.Rules {
			t.Errorf("%s: CRR rules %d above RegTree %d", id, crr.Rules, tree.Rules)
		}
	}
}
